// Ablation study (beyond the paper's figures): how much each mechanism in the
// deployed controller contributes, measured on the §5.1.1 staggered scenario
// and on the Fig. 14 coexistence-with-CUBIC scenario.
//
//   full            — the shipped configuration
//   no-drain-probe  — epoch drains disabled (min-RTT can stay contaminated)
//   low-gain/high-gain — backlog loop gain 0.1 / 0.8 (default 0.4)
//   small-K/large-K — per-flow backlog target 3 / 15 packets (default 7)

#include <cstdio>

#include "bench/harness/metrics.h"
#include "bench/harness/scenario.h"
#include "bench/harness/table.h"
#include "src/core/astraea_controller.h"

namespace astraea {
namespace {

struct Variant {
  const char* name;
  AstraeaHyperparameters hp;
  DistilledPolicyConfig policy;
};

std::vector<Variant> Variants() {
  std::vector<Variant> out;
  out.push_back({"full", {}, {}});
  {
    Variant v{"no-drain-probe", {}, {}};
    v.hp.probe_epoch = Seconds(1e9);
    out.push_back(v);
  }
  {
    Variant v{"low-gain (0.1)", {}, {}};
    v.policy.gain = 0.1;
    out.push_back(v);
  }
  {
    Variant v{"high-gain (0.8)", {}, {}};
    v.policy.gain = 0.8;
    out.push_back(v);
  }
  {
    Variant v{"small-K (3)", {}, {}};
    v.policy.target_backlog_pkts = 3.0;
    out.push_back(v);
  }
  {
    Variant v{"large-K (15)", {}, {}};
    v.policy.target_backlog_pkts = 15.0;
    out.push_back(v);
  }
  return out;
}

CcFactory VariantFactory(const Variant& v) {
  auto policy = std::make_shared<DistilledPolicy>(v.policy);
  const AstraeaHyperparameters hp = v.hp;
  return [policy, hp] { return std::make_unique<AstraeaController>(policy, hp); };
}

int Main(int argc, char** argv) {
  PrintBenchHeader("Ablation", "Contribution of each controller mechanism");
  const bool quick = QuickMode(argc, argv);
  const TimeNs interval = Seconds(quick ? 8.0 : 15.0);
  const TimeNs until = interval * 2 + Seconds(quick ? 20.0 : 45.0);

  ConsoleTable table({"variant", "Jain (3 flows)", "conv (s)", "stability (Mbps)",
                      "mean RTT (ms)", "util", "thr vs cubic"});
  for (const Variant& v : Variants()) {
    // Scenario A: 3 staggered homogeneous flows.
    DumbbellConfig config;
    config.bandwidth = Mbps(100);
    config.base_rtt = Milliseconds(30);
    config.buffer_bdp = 1.0;
    DumbbellScenario scenario(config);
    for (int i = 0; i < 3; ++i) {
      scenario.AddFlowWithFactory("astraea", VariantFactory(v), interval * i);
    }
    scenario.Run(until);
    const Network& net = scenario.network();
    const double jain = AverageJain(net, interval * 2, until, Milliseconds(500));
    const ConvergenceMeasurement m =
        MeasureConvergence(net, 2, interval * 2, 100.0 / 3.0, 0.10, Seconds(1.0), until);
    const double rtt = MeanRttMs(net, interval * 2, until);
    const double util = LinkUtilization(net, 0, interval * 2, until);

    // Scenario B: coexistence with one CUBIC flow.
    DumbbellScenario coexist(config);
    coexist.AddFlowWithFactory("astraea", VariantFactory(v), 0);
    coexist.AddFlow("cubic", 0);
    coexist.Run(Seconds(quick ? 25.0 : 40.0));
    const auto thr =
        FlowMeanThroughputs(coexist.network(), Seconds(10.0), Seconds(quick ? 25.0 : 40.0));
    const double friendliness = thr[0] / std::max(thr[1], 0.1);

    table.AddRow({v.name, ConsoleTable::Num(jain, 3),
                  m.convergence_time < 0 ? "never"
                                         : ConsoleTable::Num(ToSeconds(m.convergence_time), 2),
                  ConsoleTable::Num(m.stability_mbps, 2), ConsoleTable::Num(rtt, 1),
                  ConsoleTable::Num(util, 3), ConsoleTable::Num(friendliness, 2)});
  }
  table.Print();
  std::printf("\nexpected: removing the drain probe costs fairness under staggered arrivals "
              "and collapses the CUBIC coexistence ratio; gain trades convergence speed vs "
              "stability; K trades latency vs robustness in small-BDP regimes\n");
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
