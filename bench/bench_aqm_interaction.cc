// AQM interaction study (extension beyond the paper's figures, exercising the
// §3.2 "user-defined queuing policies" environment feature): how each scheme
// behaves when the bottleneck runs DropTail, RED or CoDel with a deep (4xBDP)
// buffer. AQMs bound the delay of buffer-filling schemes; delay-based schemes
// barely notice them.

#include <cstdio>

#include "bench/harness/metrics.h"
#include "bench/harness/scenario.h"
#include "bench/harness/table.h"
#include "src/sim/queue_disc.h"

namespace astraea {
namespace {

QueueFactory MakeAqm(const std::string& name, uint64_t capacity) {
  if (name == "red") {
    return [capacity](Rng rng) -> std::unique_ptr<QueueDiscipline> {
      RedConfig config;
      config.capacity_bytes = capacity;
      return std::make_unique<RedQueue>(config, rng);
    };
  }
  if (name == "codel") {
    return [capacity](Rng) -> std::unique_ptr<QueueDiscipline> {
      CoDelConfig config;
      config.capacity_bytes = capacity;
      return std::make_unique<CoDelQueue>(config);
    };
  }
  return nullptr;  // DropTail default
}

int Main(int argc, char** argv) {
  PrintBenchHeader("AQM interaction",
                   "Per-scheme throughput / delay under DropTail, RED and CoDel "
                   "(100 Mbps, 30 ms, 4xBDP buffer)");
  const bool quick = QuickMode(argc, argv);
  const TimeNs until = Seconds(quick ? 15.0 : 30.0);
  const uint64_t capacity = 4 * BdpBytes(Mbps(100), Milliseconds(30));

  for (const char* metric : {"utilization", "mean RTT (ms)"}) {
    std::printf("\n[%s]\n", metric);
    ConsoleTable table({"scheme", "droptail", "red", "codel"});
    for (const char* scheme : {"cubic", "bbr", "vegas", "copa", "vivace", "aurora", "orca",
                               "astraea"}) {
      std::vector<std::string> row = {scheme};
      for (const char* aqm : {"droptail", "red", "codel"}) {
        DumbbellConfig config;
        config.bandwidth = Mbps(100);
        config.base_rtt = Milliseconds(30);
        config.buffer_bdp = 4.0;
        config.queue_factory = MakeAqm(aqm, capacity);
        DumbbellScenario scenario(config);
        scenario.AddFlow(scheme, 0);
        scenario.Run(until);
        const double value = std::string(metric) == "utilization"
                                 ? LinkUtilization(scenario.network(), 0, until / 3, until)
                                 : MeanRttMs(scenario.network(), until / 3, until);
        row.push_back(ConsoleTable::Num(value, std::string(metric) == "utilization" ? 3 : 1));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  std::printf("\nexpected: CoDel pins every scheme's delay near the base RTT (cost: some "
              "throughput for the loss-insensitive schemes); Astraea/Copa/Vegas already sit "
              "near the floor under DropTail\n");
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
