// Figure 10 — fairness with many competing flows: 600 Mbps / 20 ms bottleneck
// with 10..50 concurrent Astraea flows (and a reduced-duration 100-flow probe
// standing in for the paper's TC-qdisc large-N extension).

#include <cstdio>

#include "bench/harness/metrics.h"
#include "bench/harness/scenario.h"
#include "bench/harness/table.h"

namespace astraea {
namespace {

int Main(int argc, char** argv) {
  PrintBenchHeader("Figure 10", "Astraea fairness vs number of competing flows (600 Mbps, 20 ms)");
  const bool quick = QuickMode(argc, argv);
  const int reps = BenchReps(2);

  ConsoleTable table({"flows", "avg Jain", "utilization", "mean RTT (ms)"});
  std::vector<int> counts = {10, 20, 30, 40, 50};
  if (!quick) {
    counts.push_back(100);
  }
  for (int n : counts) {
    const TimeNs until = Seconds(quick ? 15.0 : (n > 50 ? 20.0 : 30.0));
    double jain = 0.0;
    double util = 0.0;
    double rtt = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      DumbbellConfig config;
      config.bandwidth = Mbps(600);
      config.base_rtt = Milliseconds(20);
      config.buffer_bdp = 1.0;
      config.seed = 400 + static_cast<uint64_t>(rep);
      DumbbellScenario scenario(config);
      Rng stagger(500 + static_cast<uint64_t>(rep));
      for (int i = 0; i < n; ++i) {
        // Small random offsets so flows do not start in lockstep.
        scenario.AddFlow("astraea", Seconds(stagger.Uniform(0.0, 1.0)));
      }
      scenario.Run(until);
      jain += AverageJain(scenario.network(), until / 3, until, Seconds(1.0)) / reps;
      util += LinkUtilization(scenario.network(), 0, until / 3, until) / reps;
      rtt += MeanRttMs(scenario.network(), until / 3, until) / reps;
    }
    table.AddRow({std::to_string(n), ConsoleTable::Num(jain, 3), ConsoleTable::Num(util, 3),
                  ConsoleTable::Num(rtt, 1)});
  }
  table.Print();
  std::printf("\npaper: high Jain indices sustained from 10 to 50 (and up to 1000) flows\n");
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
