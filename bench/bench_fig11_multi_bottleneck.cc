// Figure 11 — max-min fairness in a multi-bottleneck topology: flow set 1
// (FS-1, varying size) uses only Link 1 (100 Mbps); flow set 2 (FS-2, two
// flows) traverses Link 1 then Link 2 (20 Mbps). Both sets start together.
//
// Ideal max-min: while |FS-1| < 8, FS-2 is bottlenecked at Link 2 (10 Mbps
// each) and FS-1 splits the remaining 80 Mbps; beyond that Link 1 is the
// common bottleneck and everyone gets 100/(|FS-1|+2).

#include <cstdio>

#include "bench/harness/metrics.h"
#include "bench/harness/table.h"
#include "src/core/schemes.h"

namespace astraea {
namespace {

int Main(int argc, char** argv) {
  PrintBenchHeader("Figure 11", "Fairness in the two-bottleneck topology (Link1 100, Link2 20 Mbps)");
  const bool quick = QuickMode(argc, argv);
  const TimeNs until = Seconds(quick ? 25.0 : 60.0);
  const int reps = BenchReps(2);

  ConsoleTable table({"|FS-1|", "FS-1 avg (Mbps)", "ideal", "FS-2 avg (Mbps)", "ideal"});
  for (int fs1 : {1, 2, 4, 6, 8, 12, 16}) {
    double fs1_avg = 0.0;
    double fs2_avg = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      Network net(600 + static_cast<uint64_t>(rep));
      SchemeOptions options;
      LinkConfig l1;
      l1.name = "link1";
      l1.rate = Mbps(100);
      l1.propagation_delay = Milliseconds(15);
      l1.buffer_bytes = 2 * BdpBytes(Mbps(100), Milliseconds(30));
      net.AddLink(l1);
      LinkConfig l2;
      l2.name = "link2";
      l2.rate = Mbps(20);
      l2.propagation_delay = Milliseconds(1);
      l2.buffer_bytes = 2 * BdpBytes(Mbps(20), Milliseconds(32));
      net.AddLink(l2);

      CcFactory factory = MakeSchemeFactory("astraea", &options);
      for (int i = 0; i < fs1; ++i) {
        FlowSpec spec;
        spec.scheme = "fs1";
        spec.make_cc = factory;
        spec.link_path = {0};
        net.AddFlow(spec);
      }
      for (int i = 0; i < 2; ++i) {
        FlowSpec spec;
        spec.scheme = "fs2";
        spec.make_cc = factory;
        spec.link_path = {0, 1};
        net.AddFlow(spec);
      }
      net.Run(until);
      const auto thr = FlowMeanThroughputs(net, until / 3, until);
      for (int i = 0; i < fs1; ++i) {
        fs1_avg += thr[static_cast<size_t>(i)] / fs1 / reps;
      }
      fs2_avg += (thr[static_cast<size_t>(fs1)] + thr[static_cast<size_t>(fs1) + 1]) / 2 / reps;
    }
    // Max-min ideals.
    const double fs2_ideal = fs1 < 8 ? 10.0 : 100.0 / (fs1 + 2);
    const double fs1_ideal = fs1 < 8 ? 80.0 / fs1 : 100.0 / (fs1 + 2);
    table.AddRow({std::to_string(fs1), ConsoleTable::Num(fs1_avg, 1),
                  ConsoleTable::Num(fs1_ideal, 1), ConsoleTable::Num(fs2_avg, 1),
                  ConsoleTable::Num(fs2_ideal, 1)});
  }
  table.Print();
  std::printf("\npaper: both sets closely follow the max-min ideal, with the crossover at "
              "|FS-1| = 8\n");
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
