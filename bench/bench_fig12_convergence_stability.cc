// Figure 12 — convergence time vs stability scatter: after every flow event
// in the §5.1.1 scenario, the time until the affected flow holds within +-10%
// of its fair share, and the post-convergence throughput stddev.

#include <cstdio>

#include "bench/harness/experiments.h"
#include "bench/harness/table.h"

namespace astraea {
namespace {

int Main(int argc, char** argv) {
  PrintBenchHeader("Figure 12", "Convergence time vs stability (Fig. 6 scenario)");
  StaggeredConfig config = DefaultStaggeredConfig();
  if (QuickMode(argc, argv)) {
    config.start_interval = Seconds(15.0);
    config.flow_duration = Seconds(45.0);
    config.until = Seconds(75.0);
  }
  const int reps = BenchReps(2);

  ConsoleTable table({"scheme", "conv time (s)", "stability (Mbps)", "converged/total",
                      "paper conv", "paper stab"});
  struct PaperRef {
    const char* scheme;
    const char* conv;
    const char* stab;
  };
  const PaperRef refs[] = {
      {"cubic", "-", "-"},       {"vegas", "-", "-"},   {"bbr", "-", "-"},
      {"copa", "~0.4", "-"},     {"vivace", "3.438", "6.016"},
      {"orca", "1.497", "5.519"}, {"astraea", "0.408", "2.124"},
  };
  for (const PaperRef& ref : refs) {
    const SchemeConvergenceSummary s = MeasureStaggeredConvergence(ref.scheme, config, reps);
    table.AddRow({ref.scheme,
                  s.avg_convergence_s < 0 ? "never" : ConsoleTable::Num(s.avg_convergence_s, 2),
                  s.avg_stability_mbps < 0 ? "n/a" : ConsoleTable::Num(s.avg_stability_mbps, 2),
                  std::to_string(s.converged_events) + "/" + std::to_string(s.total_events),
                  ref.conv, ref.stab});
  }
  table.Print();
  std::printf("\npaper: Astraea fastest (0.408s, comparable to Copa) and most stable "
              "(2.124 Mbps); Vivace slowest; Orca in between\n");
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
