// Figures 13 & 21 — cellular (LTE-like) networks: a trace-driven link whose
// capacity swings drastically at millisecond scale, 40 ms RTT, deep buffer.
// Fig. 13 is the Astraea-vs-Vivace adaptation timeline; Fig. 21 the
// throughput vs normalized-delay summary for all schemes.
//
// Substitution note (DESIGN.md): the Verizon LTE trace is replaced by a
// synthetic LTE-like trace with the same qualitative dynamics. Pass
// --trace[=PATH] to replay a Mahimahi capture instead (default: the bundled
// traces/cellular.trace).

#include <cstdio>
#include <cstring>
#include <string>

#include "bench/harness/metrics.h"
#include "bench/harness/scenario.h"
#include "bench/harness/table.h"

#ifndef ASTRAEA_SOURCE_DIR
#define ASTRAEA_SOURCE_DIR "."
#endif

namespace astraea {
namespace {

int Main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  const TimeNs until = Seconds(quick ? 25.0 : 60.0);
  const int reps = BenchReps(2);

  // --trace[=PATH]: replay a Mahimahi capture instead of the synthetic trace.
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = std::string(ASTRAEA_SOURCE_DIR) + "/traces/cellular.trace";
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    }
  }
  auto cell_trace = [&](TimeNs duration, uint64_t seed) {
    if (!trace_path.empty()) {
      return std::make_shared<RateTrace>(LoadMahimahiTrace(trace_path));
    }
    Rng rng(seed);
    return std::make_shared<RateTrace>(
        MakeLteLikeTrace(duration, Milliseconds(20), Mbps(1), Mbps(60), &rng));
  };
  if (!trace_path.empty()) {
    std::printf("replaying Mahimahi trace: %s\n\n", trace_path.c_str());
  }

  PrintBenchHeader("Figure 13", "Adaptation to rapidly changing cellular capacity "
                                "(Astraea vs Vivace timeline)");
  {
    auto trace = cell_trace(until, 99);
    std::printf("%7s  %12s  %14s  %13s\n", "t(s)", "capacity(Mbps)", "astraea(Mbps)",
                "vivace(Mbps)");
    auto run = [&](const std::string& scheme) {
      DumbbellConfig config;
      config.base_rtt = Milliseconds(40);
      config.buffer_bdp = 20.0;  // very deep buffer (paper setup)
      config.trace = trace;
      auto scenario = std::make_unique<DumbbellScenario>(config);
      scenario->AddFlow(scheme, 0);
      scenario->Run(until);
      return scenario;
    };
    auto astraea_run = run("astraea");
    auto vivace_run = run("vivace");
    for (TimeNs t = 0; t + Seconds(1.0) <= until; t += Seconds(1.0)) {
      const double cap = trace->CapacityBits(t, t + Seconds(1.0)) / 1e6;
      std::printf("%7.0f  %12.1f  %14.2f  %13.2f\n", ToSeconds(t), cap,
                  astraea_run->network().flow_stats(0).throughput_mbps.MeanOver(t, t + Seconds(1.0)),
                  vivace_run->network().flow_stats(0).throughput_mbps.MeanOver(t, t + Seconds(1.0)));
    }
    std::printf("\npaper: Astraea tracks the capacity swings; Vivace lags and inflates "
                "latency\n\n");
  }

  PrintBenchHeader("Figure 21", "Cellular summary: throughput vs delay normalized to base RTT");
  ConsoleTable table({"scheme", "avg thr (Mbps)", "norm delay (p95 rtt / base)", "loss %"});
  for (const char* scheme :
       {"cubic", "vegas", "bbr", "copa", "vivace", "aurora", "orca", "astraea"}) {
    double thr = 0.0;
    double norm_delay = 0.0;
    double loss = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      DumbbellConfig config;
      config.base_rtt = Milliseconds(40);
      config.buffer_bdp = 20.0;
      config.trace = cell_trace(until, 200 + static_cast<uint64_t>(rep));
      config.seed = 77 + static_cast<uint64_t>(rep);
      DumbbellScenario scenario(config);
      scenario.AddFlow(scheme, 0);
      scenario.Run(until);
      thr += FlowMeanThroughputs(scenario.network(), Seconds(2.0), until)[0] / reps;
      norm_delay += P95RttMs(scenario.network(), Seconds(2.0), until) / 40.0 / reps;
      loss += 100.0 * AggregateLossRatio(scenario.network()) / reps;
    }
    table.AddRow({scheme, ConsoleTable::Num(thr, 1), ConsoleTable::Num(norm_delay, 2),
                  ConsoleTable::Num(loss, 2)});
  }
  table.Print();
  std::printf("\npaper: Astraea holds high throughput with low latency inflation; "
              "Aurora/Vivace pay heavy delay; Copa/Vegas sacrifice utilization\n");
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
