// Figure 14 — TCP friendliness: one evaluated flow against an increasing
// number of CUBIC flows on 100 Mbps / 30 ms / 1 BDP. Reported value is the
// evaluated flow's throughput divided by the mean CUBIC throughput
// (1.0 = perfectly friendly).

#include <cstdio>

#include "bench/harness/metrics.h"
#include "bench/harness/scenario.h"
#include "bench/harness/table.h"

namespace astraea {
namespace {

int Main(int argc, char** argv) {
  PrintBenchHeader("Figure 14", "Throughput ratio to CUBIC (1.0 = optimal friendliness)");
  const bool quick = QuickMode(argc, argv);
  const TimeNs until = Seconds(quick ? 30.0 : 60.0);
  const int reps = BenchReps(2);

  ConsoleTable table({"scheme", "vs 1 cubic", "vs 2 cubic", "vs 3 cubic", "vs 4 cubic"});
  for (const char* scheme :
       {"vegas", "bbr", "copa", "vivace", "aurora", "orca", "astraea"}) {
    std::vector<std::string> row = {scheme};
    for (int cubics = 1; cubics <= 4; ++cubics) {
      double ratio = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        DumbbellConfig config;
        config.bandwidth = Mbps(100);
        config.base_rtt = Milliseconds(30);
        config.buffer_bdp = 1.0;
        config.seed = 800 + static_cast<uint64_t>(rep);
        DumbbellScenario scenario(config);
        scenario.AddFlow(scheme, 0);
        for (int i = 0; i < cubics; ++i) {
          scenario.AddFlow("cubic", 0);
        }
        scenario.Run(until);
        const auto thr = FlowMeanThroughputs(scenario.network(), until / 3, until);
        double cubic_mean = 0.0;
        for (int i = 1; i <= cubics; ++i) {
          cubic_mean += thr[static_cast<size_t>(i)] / cubics;
        }
        ratio += thr[0] / std::max(cubic_mean, 0.1) / reps;
      }
      row.push_back(ConsoleTable::Num(ratio, 2));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\npaper: Aurora/BBR 10-60x (unfriendly); Vivace well below 1 (starved); "
              "Astraea acceptable, between the delay-based schemes and CUBIC\n");
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
