// Figure 15 — real-world Internet experiments (intra- and inter-continental
// paths), reproduced on emulated WAN paths per the DESIGN.md substitution:
// stochastic cross traffic (on/off CUBIC flows), light non-congestive loss
// and a shared bottleneck. Reported per scheme: average throughput and mean
// one-way delay (rtt/2), the two axes of the paper's frontier plot.

#include <cstdio>

#include "bench/harness/metrics.h"
#include "bench/harness/scenario.h"
#include "bench/harness/table.h"

namespace astraea {
namespace {

struct WanProfile {
  const char* name;
  RateBps bandwidth;
  TimeNs rtt;
  double loss;
  int cross_flows;
};

int Main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  const TimeNs until = Seconds(quick ? 30.0 : 60.0);
  const int reps = BenchReps(2);

  // Residential->AWS paths are mostly idle with episodic interference and
  // moderate (sub-BDP) switch buffers; heavy persistent competition would
  // make throughput reflect the fight, not the scheme.
  const WanProfile profiles[] = {
      {"intra-continental", Mbps(300), Milliseconds(25), 0.0002, 2},
      {"inter-continental", Mbps(1000), Milliseconds(150), 0.0005, 3},
  };

  for (const WanProfile& profile : profiles) {
    PrintBenchHeader(std::string("Figure 15 — ") + profile.name,
                     "Emulated WAN path with stochastic cross traffic (see DESIGN.md "
                     "substitution table)");
    ConsoleTable table({"scheme", "avg thr (Mbps)", "one-way delay (ms)", "loss %"});
    for (const char* scheme :
         {"cubic", "vegas", "bbr", "copa", "remy", "vivace", "aurora", "orca", "astraea"}) {
      double thr = 0.0;
      double delay = 0.0;
      double loss = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        DumbbellConfig config;
        config.bandwidth = profile.bandwidth;
        config.base_rtt = profile.rtt;
        config.buffer_bdp = 0.3;
        config.random_loss = profile.loss;
        config.seed = 900 + static_cast<uint64_t>(rep);
        DumbbellScenario scenario(config);
        scenario.AddFlow(scheme, 0);
        // On/off cross traffic: short CUBIC bursts through the same bottleneck.
        Rng cross(40 + static_cast<uint64_t>(rep));
        for (int i = 0; i < profile.cross_flows; ++i) {
          TimeNs t = Seconds(cross.Uniform(0.0, 6.0));
          while (t < until) {
            const TimeNs burst = Seconds(cross.Uniform(1.0, 3.0));
            scenario.AddFlow("cubic", t, burst);
            t += burst + Seconds(cross.Uniform(5.0, 15.0));
          }
        }
        scenario.Run(until);
        thr += FlowMeanThroughputs(scenario.network(), Seconds(2.0), until)[0] / reps;
        // One-way delay of the evaluated flow (rtt / 2, as in Pantheon plots).
        const double rtt_ms = scenario.network().flow_stats(0).rtt_ms.MeanOver(Seconds(2.0), until);
        delay += rtt_ms / 2.0 / reps;
        loss += 100.0 * AggregateLossRatio(scenario.network()) / reps;
      }
      table.AddRow({scheme, ConsoleTable::Num(thr, 1), ConsoleTable::Num(delay, 1),
                    ConsoleTable::Num(loss, 2)});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("paper: Astraea defines the frontier — e.g. inter-continental 731.8 Mbps, "
              "1.6x Vivace, 3.1x Orca; BBR highest throughput but with latency inflation\n");
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
