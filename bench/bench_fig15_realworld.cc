// Figure 15 — real-world Internet experiments (intra- and inter-continental
// paths), reproduced on emulated WAN paths per the DESIGN.md substitution:
// stochastic cross traffic (on/off CUBIC flows), light non-congestive loss
// and a shared bottleneck. Reported per scheme: average throughput and mean
// one-way delay (rtt/2), the two axes of the paper's frontier plot.
//
// `--real` switches to the real-socket validation mode (DESIGN.md §13): each
// WAN profile is run twice with a single Astraea flow — once in the discrete
// simulator, once over real kernel UDP sockets through the userspace link
// emulator at the same bandwidth/RTT/buffer/loss — and the two are compared
// on throughput and p95 RTT. This is the sim-to-real transfer check: the
// same policy and the same MtpReport contract must produce comparable
// behavior on both planes. Bandwidth is capped at 100 Mbps in this mode (for
// both planes, so the comparison stays apples-to-apples): the benchmark
// validates the data plane's control behavior, not the host's UDP packet
// rate. `--real-json <path>` writes the comparison as a JSON artifact.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/harness/metrics.h"
#include "bench/harness/scenario.h"
#include "bench/harness/table.h"
#include "src/core/astraea_controller.h"
#include "src/core/policy.h"
#include "src/net/loopback.h"
#include "src/util/stats.h"

namespace astraea {
namespace {

struct WanProfile {
  const char* name;
  RateBps bandwidth;
  TimeNs rtt;
  double loss;
  int cross_flows;
};

// ------------------------------------------------------------- --real mode

struct PlaneResult {
  double throughput_mbps = 0.0;
  double rtt_p95_ms = 0.0;
};

PlaneResult RunSimPlane(const WanProfile& profile, RateBps bandwidth, TimeNs until,
                        TimeNs warmup) {
  DumbbellConfig config;
  config.bandwidth = bandwidth;
  config.base_rtt = profile.rtt;
  config.buffer_bdp = 0.3;
  config.random_loss = profile.loss;
  config.seed = 950;
  DumbbellScenario scenario(config);
  // Match the real plane's controller configuration (a single flow owns its
  // RTT floor, so the fresh-floor drain skip applies on both planes).
  scenario.scheme_options().astraea_hp.skip_drain_on_fresh_floor = true;
  scenario.AddFlow("astraea", 0);
  scenario.Run(until);

  PlaneResult result;
  result.throughput_mbps = FlowMeanThroughputs(scenario.network(), warmup, until)[0];
  std::vector<double> rtts;
  for (const auto& [t, v] : scenario.network().flow_stats(0).rtt_ms.points()) {
    if (t >= warmup && t < until) {
      rtts.push_back(v);
    }
  }
  result.rtt_p95_ms = rtts.empty() ? 0.0 : EmpiricalCdf(std::move(rtts)).Quantile(0.95);
  return result;
}

PlaneResult RunRealPlane(const WanProfile& profile, RateBps bandwidth, TimeNs duration,
                         net::LoopbackResult* raw) {
  net::LoopbackConfig config;
  config.shaped = true;
  config.emulator.rate = bandwidth;
  config.emulator.one_way_delay = profile.rtt / 2;
  config.emulator.buffer_bytes = static_cast<uint64_t>(
      0.3 * static_cast<double>(bandwidth) / 8.0 * ToSeconds(profile.rtt));
  config.emulator.random_loss = profile.loss;
  config.emulator.seed = 950;
  config.sender.total_bytes = 0;  // stream until the clock runs out
  config.sender.max_runtime = duration;
  config.receiver.idle_timeout = duration + Seconds(10.0);
  auto policy = LoadDefaultPolicy("");
  config.make_cc = [policy] {
    AstraeaHyperparameters hp;
    hp.skip_drain_on_fresh_floor = true;
    return std::make_unique<AstraeaController>(policy, hp);
  };
  const net::LoopbackResult result = net::RunLoopbackTransfer(config);
  if (raw != nullptr) {
    *raw = result;
  }
  PlaneResult out;
  out.throughput_mbps = result.sender.goodput_bps() / 1e6;
  out.rtt_p95_ms = result.sender.rtt_p95_ms;
  return out;
}

double Ratio(double real, double sim) { return sim > 0.0 ? real / sim : 0.0; }

int RealMain(bool quick, const std::string& json_path) {
  // Real sockets burn wall-clock time: keep runs short. The sim plane uses
  // the same horizon so MTP sample counts match.
  const TimeNs duration = Seconds(quick ? 8.0 : 20.0);
  const TimeNs warmup = Seconds(2.0);

  PrintBenchHeader("Figure 15 — sim-vs-real data plane",
                   "Single Astraea flow per WAN profile, discrete simulator vs real "
                   "kernel UDP sockets through the userspace link emulator at identical "
                   "path parameters (bandwidth capped at 100 Mbps on both planes)");
  ConsoleTable table({"profile", "plane", "thr (Mbps)", "p95 RTT (ms)", "thr ratio",
                      "rtt ratio"});

  const WanProfile profiles[] = {
      {"intra-continental", Mbps(300), Milliseconds(25), 0.0002, 2},
      {"inter-continental", Mbps(1000), Milliseconds(150), 0.0005, 3},
  };
  std::string json = "{\n  \"duration_s\": " + std::to_string(ToSeconds(duration)) +
                     ",\n  \"profiles\": [\n";
  bool first = true;
  bool transfer_ok = true;
  for (const WanProfile& profile : profiles) {
    const RateBps bandwidth = std::min<RateBps>(profile.bandwidth, Mbps(100));
    const PlaneResult sim = RunSimPlane(profile, bandwidth, duration, warmup);
    net::LoopbackResult raw;
    const PlaneResult real = RunRealPlane(profile, bandwidth, duration, &raw);
    if (!raw.ok || raw.receiver.corrupt_frames != 0) {
      std::fprintf(stderr, "real plane failed for %s: %s (corrupt=%llu)\n", profile.name,
                   raw.error.c_str(),
                   static_cast<unsigned long long>(raw.receiver.corrupt_frames));
      transfer_ok = false;
    }
    const double thr_ratio = Ratio(real.throughput_mbps, sim.throughput_mbps);
    const double rtt_ratio = Ratio(real.rtt_p95_ms, sim.rtt_p95_ms);
    table.AddRow({profile.name, "sim", ConsoleTable::Num(sim.throughput_mbps, 1),
                  ConsoleTable::Num(sim.rtt_p95_ms, 1), "", ""});
    table.AddRow({profile.name, "real", ConsoleTable::Num(real.throughput_mbps, 1),
                  ConsoleTable::Num(real.rtt_p95_ms, 1), ConsoleTable::Num(thr_ratio, 2),
                  ConsoleTable::Num(rtt_ratio, 2)});
    json += std::string(first ? "" : ",\n") + "    {\"name\": \"" + profile.name +
            "\", \"bandwidth_mbps\": " + std::to_string(ToMbps(bandwidth)) +
            ", \"rtt_ms\": " + std::to_string(ToSeconds(profile.rtt) * 1e3) +
            ", \"loss\": " + std::to_string(profile.loss) +
            ",\n     \"sim\": {\"throughput_mbps\": " + std::to_string(sim.throughput_mbps) +
            ", \"rtt_p95_ms\": " + std::to_string(sim.rtt_p95_ms) +
            "},\n     \"real\": {\"throughput_mbps\": " + std::to_string(real.throughput_mbps) +
            ", \"rtt_p95_ms\": " + std::to_string(real.rtt_p95_ms) +
            ", \"corrupt_frames\": " + std::to_string(raw.receiver.corrupt_frames) +
            ", \"bytes_acked\": " + std::to_string(raw.sender.bytes_acked) +
            ", \"rto_fires\": " + std::to_string(raw.sender.rto_fires) +
            "},\n     \"throughput_ratio\": " + std::to_string(thr_ratio) +
            ", \"rtt_p95_ratio\": " + std::to_string(rtt_ratio) + "}";
    first = false;
  }
  json += "\n  ]\n}\n";
  table.Print();
  std::printf("\nacceptance: real within 2x of sim on both axes "
              "(throughput ratio in [0.5, 2], p95 RTT ratio in [0.5, 2])\n");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return transfer_ok ? 0 : 1;
}

int Main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  bool real = false;
  std::string real_json;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--real") == 0) {
      real = true;
    } else if (std::strcmp(argv[i], "--real-json") == 0 && i + 1 < argc) {
      real_json = argv[++i];
    }
  }
  if (real) {
    return RealMain(quick, real_json);
  }
  const TimeNs until = Seconds(quick ? 30.0 : 60.0);
  const int reps = BenchReps(2);

  // Residential->AWS paths are mostly idle with episodic interference and
  // moderate (sub-BDP) switch buffers; heavy persistent competition would
  // make throughput reflect the fight, not the scheme.
  const WanProfile profiles[] = {
      {"intra-continental", Mbps(300), Milliseconds(25), 0.0002, 2},
      {"inter-continental", Mbps(1000), Milliseconds(150), 0.0005, 3},
  };

  for (const WanProfile& profile : profiles) {
    PrintBenchHeader(std::string("Figure 15 — ") + profile.name,
                     "Emulated WAN path with stochastic cross traffic (see DESIGN.md "
                     "substitution table)");
    ConsoleTable table({"scheme", "avg thr (Mbps)", "one-way delay (ms)", "loss %"});
    for (const char* scheme :
         {"cubic", "vegas", "bbr", "copa", "remy", "vivace", "aurora", "orca", "astraea"}) {
      double thr = 0.0;
      double delay = 0.0;
      double loss = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        DumbbellConfig config;
        config.bandwidth = profile.bandwidth;
        config.base_rtt = profile.rtt;
        config.buffer_bdp = 0.3;
        config.random_loss = profile.loss;
        config.seed = 900 + static_cast<uint64_t>(rep);
        DumbbellScenario scenario(config);
        scenario.AddFlow(scheme, 0);
        // On/off cross traffic: short CUBIC bursts through the same bottleneck.
        Rng cross(40 + static_cast<uint64_t>(rep));
        for (int i = 0; i < profile.cross_flows; ++i) {
          TimeNs t = Seconds(cross.Uniform(0.0, 6.0));
          while (t < until) {
            const TimeNs burst = Seconds(cross.Uniform(1.0, 3.0));
            scenario.AddFlow("cubic", t, burst);
            t += burst + Seconds(cross.Uniform(5.0, 15.0));
          }
        }
        scenario.Run(until);
        thr += FlowMeanThroughputs(scenario.network(), Seconds(2.0), until)[0] / reps;
        // One-way delay of the evaluated flow (rtt / 2, as in Pantheon plots).
        const double rtt_ms = scenario.network().flow_stats(0).rtt_ms.MeanOver(Seconds(2.0), until);
        delay += rtt_ms / 2.0 / reps;
        loss += 100.0 * AggregateLossRatio(scenario.network()) / reps;
      }
      table.AddRow({scheme, ConsoleTable::Num(thr, 1), ConsoleTable::Num(delay, 1),
                    ConsoleTable::Num(loss, 2)});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("paper: Astraea defines the frontier — e.g. inter-continental 731.8 Mbps, "
              "1.6x Vivace, 3.1x Orca; BBR highest throughput but with latency inflation\n");
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
