// Figure 16 — CPU overhead and inference-service scalability, as
// google-benchmark microbenchmarks:
//   * per-MTP policy decision cost (distilled and MLP paths),
//   * batched inference cost vs batch size (16a/16b: Astraea's shared batched
//     service vs Orca's one-inference-per-flow design),
//   * simulator event throughput (harness sanity number).

#include <benchmark/benchmark.h>

#include "src/core/astraea_controller.h"
#include "src/core/inference_service.h"
#include "src/core/training_config.h"
#include "src/sim/network.h"

namespace astraea {
namespace {

Mlp PaperActor(uint64_t seed = 1) {
  // The paper's deployment model: 40 inputs (8 features x w=5), 256/128/64.
  Rng rng(seed);
  return Mlp({40, 256, 128, 64, 1}, OutputActivation::kTanh, &rng);
}

std::vector<float> RandomState(Rng* rng, size_t dim = 40) {
  std::vector<float> s(dim);
  for (auto& v : s) {
    v = static_cast<float>(rng->Uniform(0.0, 2.0));
  }
  return s;
}

void BM_MlpPolicyInference(benchmark::State& state) {
  Mlp actor = PaperActor();
  Rng rng(2);
  const std::vector<float> s = RandomState(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(actor.Infer(s));
  }
}
BENCHMARK(BM_MlpPolicyInference);

void BM_DistilledPolicyDecision(benchmark::State& state) {
  DistilledPolicy policy;
  MtpReport report;
  report.cwnd_bytes = 150'000;
  report.avg_rtt = Milliseconds(36);
  report.min_rtt = Milliseconds(30);
  report.acked_packets = 100;
  std::vector<float> vec(40, 0.5f);
  StateView view;
  view.state_vector = vec;
  view.report = &report;
  view.lat_min = Milliseconds(30);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.Act(view));
  }
}
BENCHMARK(BM_DistilledPolicyDecision);

// Fig. 16b: batched service — total cost of serving N flows in one batch.
// Per-flow cost (time/N) drops as N grows, the sublinear-scaling claim.
void BM_BatchedInferenceService(benchmark::State& state) {
  const size_t flows = static_cast<size_t>(state.range(0));
  InferenceService service(PaperActor());
  Rng rng(3);
  std::vector<float> states;
  for (size_t i = 0; i < flows; ++i) {
    const auto s = RandomState(&rng);
    states.insert(states.end(), s.begin(), s.end());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.InferBatch(states, flows));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(flows));
}
BENCHMARK(BM_BatchedInferenceService)->Arg(1)->Arg(10)->Arg(50)->Arg(100)->Arg(500)->Arg(1000);

// The Orca-style counterfactual: one independent inference pass per flow
// (what the paper's Fig. 16b shows scaling linearly and exhausting 80 cores).
void BM_PerFlowInference(benchmark::State& state) {
  const size_t flows = static_cast<size_t>(state.range(0));
  Mlp actor = PaperActor();
  Rng rng(4);
  std::vector<std::vector<float>> states;
  for (size_t i = 0; i < flows; ++i) {
    states.push_back(RandomState(&rng));
  }
  for (auto _ : state) {
    for (const auto& s : states) {
      benchmark::DoNotOptimize(actor.Infer(s));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(flows));
}
BENCHMARK(BM_PerFlowInference)->Arg(1)->Arg(10)->Arg(50)->Arg(100)->Arg(500)->Arg(1000);

// Simulator speed: events per second on a saturated 100 Mbps bottleneck.
void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Network net(1);
    LinkConfig link;
    link.rate = Mbps(100);
    link.propagation_delay = Milliseconds(15);
    link.buffer_bytes = 375'000;
    net.AddLink(link);
    FlowSpec spec;
    spec.scheme = "astraea";
    spec.make_cc = [] {
      return std::make_unique<AstraeaController>(std::make_shared<DistilledPolicy>());
    };
    net.AddFlow(spec);
    net.Run(Seconds(2.0));
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(net.events().executed()));
  }
}
BENCHMARK(BM_SimulatorEventThroughput)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace astraea

BENCHMARK_MAIN();
