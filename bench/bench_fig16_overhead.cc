// Figure 16 — CPU overhead and inference-service scalability, as
// google-benchmark microbenchmarks:
//   * per-MTP policy decision cost (distilled and MLP paths),
//   * batched inference cost vs batch size (16a/16b: Astraea's shared batched
//     service vs Orca's one-inference-per-flow design),
//   * simulator event throughput (harness sanity number).
//
// With --serve-json=PATH the binary additionally benchmarks the
// out-of-process serving path (src/serve/): it forks a real astraea_serve
// process, runs 1..16 concurrent shared-memory clients against it, and
// emits p50/p95/p99 decision latency plus decisions/sec per client count —
// next to the in-process dispatch baseline — as PATH (BENCH_serve.json in
// CI). --serve-quick shrinks the request counts for smoke runs. Both flags
// are stripped before google-benchmark sees the command line.

#include <benchmark/benchmark.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/core/astraea_controller.h"
#include "src/core/inference_service.h"
#include "src/core/training_config.h"
#include "src/ipc/shm_ring.h"
#include "src/serve/inference_server.h"
#include "src/serve/remote_policy.h"
#include "src/sim/network.h"
#include "src/util/serialization.h"

namespace astraea {
namespace {

Mlp PaperActor(uint64_t seed = 1) {
  // The paper's deployment model: 40 inputs (8 features x w=5), 256/128/64.
  Rng rng(seed);
  return Mlp({40, 256, 128, 64, 1}, OutputActivation::kTanh, &rng);
}

std::vector<float> RandomState(Rng* rng, size_t dim = 40) {
  std::vector<float> s(dim);
  for (auto& v : s) {
    v = static_cast<float>(rng->Uniform(0.0, 2.0));
  }
  return s;
}

void BM_MlpPolicyInference(benchmark::State& state) {
  Mlp actor = PaperActor();
  Rng rng(2);
  const std::vector<float> s = RandomState(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(actor.Infer(s));
  }
}
BENCHMARK(BM_MlpPolicyInference);

void BM_DistilledPolicyDecision(benchmark::State& state) {
  DistilledPolicy policy;
  MtpReport report;
  report.cwnd_bytes = 150'000;
  report.avg_rtt = Milliseconds(36);
  report.min_rtt = Milliseconds(30);
  report.acked_packets = 100;
  std::vector<float> vec(40, 0.5f);
  StateView view;
  view.state_vector = vec;
  view.report = &report;
  view.lat_min = Milliseconds(30);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.Act(view));
  }
}
BENCHMARK(BM_DistilledPolicyDecision);

// Fig. 16b: batched service — total cost of serving N flows in one batch.
// Per-flow cost (time/N) drops as N grows, the sublinear-scaling claim.
void BM_BatchedInferenceService(benchmark::State& state) {
  const size_t flows = static_cast<size_t>(state.range(0));
  InferenceService service(PaperActor());
  Rng rng(3);
  std::vector<float> states;
  for (size_t i = 0; i < flows; ++i) {
    const auto s = RandomState(&rng);
    states.insert(states.end(), s.begin(), s.end());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.InferBatch(states, flows));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(flows));
}
BENCHMARK(BM_BatchedInferenceService)->Arg(1)->Arg(10)->Arg(50)->Arg(100)->Arg(500)->Arg(1000);

// The Orca-style counterfactual: one independent inference pass per flow
// (what the paper's Fig. 16b shows scaling linearly and exhausting 80 cores).
void BM_PerFlowInference(benchmark::State& state) {
  const size_t flows = static_cast<size_t>(state.range(0));
  Mlp actor = PaperActor();
  Rng rng(4);
  std::vector<std::vector<float>> states;
  for (size_t i = 0; i < flows; ++i) {
    states.push_back(RandomState(&rng));
  }
  for (auto _ : state) {
    for (const auto& s : states) {
      benchmark::DoNotOptimize(actor.Infer(s));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(flows));
}
BENCHMARK(BM_PerFlowInference)->Arg(1)->Arg(10)->Arg(50)->Arg(100)->Arg(500)->Arg(1000);

// Simulator speed: events per second on a saturated 100 Mbps bottleneck.
void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Network net(1);
    LinkConfig link;
    link.rate = Mbps(100);
    link.propagation_delay = Milliseconds(15);
    link.buffer_bytes = 375'000;
    net.AddLink(link);
    FlowSpec spec;
    spec.scheme = "astraea";
    spec.make_cc = [] {
      return std::make_unique<AstraeaController>(std::make_shared<DistilledPolicy>());
    };
    net.AddFlow(spec);
    net.Run(Seconds(2.0));
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(net.events().executed()));
  }
}
BENCHMARK(BM_SimulatorEventThroughput)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Out-of-process serving comparison (--serve-json=PATH).
// ---------------------------------------------------------------------------

struct LatencyStats {
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double decisions_per_sec = 0.0;
  uint64_t fallbacks = 0;
};

LatencyStats Summarize(std::vector<int64_t> latencies_ns, double wall_seconds,
                       uint64_t fallbacks) {
  LatencyStats stats;
  stats.fallbacks = fallbacks;
  if (latencies_ns.empty()) {
    return stats;
  }
  std::sort(latencies_ns.begin(), latencies_ns.end());
  const auto pct = [&](double p) {
    const size_t idx = static_cast<size_t>(p * static_cast<double>(latencies_ns.size() - 1));
    return static_cast<double>(latencies_ns[idx]) / 1e3;
  };
  stats.p50_us = pct(0.50);
  stats.p95_us = pct(0.95);
  stats.p99_us = pct(0.99);
  double sum = 0.0;
  for (const int64_t ns : latencies_ns) {
    sum += static_cast<double>(ns);
  }
  stats.mean_us = sum / static_cast<double>(latencies_ns.size()) / 1e3;
  if (wall_seconds > 0.0) {
    stats.decisions_per_sec = static_cast<double>(latencies_ns.size()) / wall_seconds;
  }
  return stats;
}

// One client worker: `requests` synchronous decisions over its own ring pair.
void ServeClientWorker(const std::string& socket_path, int requests,
                       std::vector<int64_t>* latencies_ns, std::atomic<uint64_t>* fallbacks) {
  serve::ServeClientConfig config;
  config.socket_path = socket_path;
  config.rpc_timeout = Milliseconds(100);
  std::unique_ptr<serve::ServeClient> client = serve::ServeClient::Connect(config);
  if (client == nullptr) {
    fallbacks->fetch_add(static_cast<uint64_t>(requests));
    return;
  }
  Rng rng(reinterpret_cast<uintptr_t>(latencies_ns));  // distinct per worker
  latencies_ns->reserve(static_cast<size_t>(requests));
  const std::vector<float> state = RandomState(&rng);
  for (int i = 0; i < requests; ++i) {
    const TimeNs t0 = ipc::MonotonicNowNs();
    const std::optional<double> action = client->Request(state);
    if (action.has_value()) {
      latencies_ns->push_back(ipc::MonotonicNowNs() - t0);
    } else {
      fallbacks->fetch_add(1);
    }
  }
}

int RunServingComparison(const std::string& json_path, bool quick) {
  const std::string tag = std::to_string(getpid());
  const std::string model_path = "/tmp/astraea_bench_serve_" + tag + ".ckpt";
  const std::string socket_path = "/tmp/astraea_bench_serve_" + tag + ".sock";
  const Mlp actor = PaperActor();
  {
    BinaryWriter writer(model_path);
    actor.Save(&writer);
    writer.Flush();
  }

  const int requests = quick ? 300 : 2000;
  const unsigned host_cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("\n-- serving comparison: %d requests/client, model 40x256x128x64x1, "
              "%u core(s) --\n",
              requests, host_cores);
  if (host_cores < 4) {
    std::printf("note: clients + server oversubscribe %u core(s); multi-client\n"
                "      latency below is scheduler-bound, not IPC-bound.\n",
                host_cores);
  }

  // In-process dispatch baseline: the cost a sender pays when the model runs
  // inline in its own process.
  LatencyStats in_process;
  {
    Mlp local = PaperActor();
    Rng rng(9);
    const std::vector<float> state = RandomState(&rng);
    std::vector<int64_t> latencies;
    latencies.reserve(static_cast<size_t>(requests));
    const TimeNs start = ipc::MonotonicNowNs();
    for (int i = 0; i < requests; ++i) {
      const TimeNs t0 = ipc::MonotonicNowNs();
      benchmark::DoNotOptimize(local.Infer(state));
      latencies.push_back(ipc::MonotonicNowNs() - t0);
    }
    in_process = Summarize(std::move(latencies), ToSeconds(ipc::MonotonicNowNs() - start), 0);
    std::printf("in-process      p50 %7.1fus  p95 %7.1fus  p99 %7.1fus  %10.0f dec/s\n",
                in_process.p50_us, in_process.p95_us, in_process.p99_us,
                in_process.decisions_per_sec);
  }

  // A real separate server process, exactly as deployed.
  const pid_t server_pid = fork();
  if (server_pid < 0) {
    std::perror("fork");
    return 1;
  }
  if (server_pid == 0) {
    try {
      serve::InferenceServerConfig config;
      config.socket_path = socket_path;
      config.model_path = model_path;
      serve::InferenceServer server(std::move(config));
      server.Run();
    } catch (...) {
    }
    _exit(0);
  }

  const std::vector<int> client_counts = {1, 2, 4, 8, 16};
  std::vector<LatencyStats> served;
  for (const int clients : client_counts) {
    std::vector<std::vector<int64_t>> latencies(static_cast<size_t>(clients));
    std::atomic<uint64_t> fallbacks{0};
    std::vector<std::thread> threads;
    const TimeNs start = ipc::MonotonicNowNs();
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back(ServeClientWorker, socket_path, requests, &latencies[c], &fallbacks);
    }
    for (std::thread& t : threads) {
      t.join();
    }
    const double wall = ToSeconds(ipc::MonotonicNowNs() - start);
    std::vector<int64_t> all;
    for (const auto& per_client : latencies) {
      all.insert(all.end(), per_client.begin(), per_client.end());
    }
    served.push_back(Summarize(std::move(all), wall, fallbacks.load()));
    const LatencyStats& s = served.back();
    std::printf("served x%-2d      p50 %7.1fus  p95 %7.1fus  p99 %7.1fus  %10.0f dec/s"
                "  (%llu fallbacks)\n",
                clients, s.p50_us, s.p95_us, s.p99_us, s.decisions_per_sec,
                static_cast<unsigned long long>(s.fallbacks));
  }

  kill(server_pid, SIGKILL);
  waitpid(server_pid, nullptr, 0);
  std::remove(model_path.c_str());
  unlink(socket_path.c_str());

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"model\": \"40x256x128x64x1\",\n"
               "  \"host_cores\": %u,\n"
               "  \"requests_per_client\": %d,\n"
               "  \"in_process\": {\"p50_us\": %.2f, \"p95_us\": %.2f, \"p99_us\": %.2f, "
               "\"mean_us\": %.2f, \"decisions_per_sec\": %.0f},\n"
               "  \"served\": [\n",
               host_cores, requests, in_process.p50_us, in_process.p95_us,
               in_process.p99_us, in_process.mean_us, in_process.decisions_per_sec);
  for (size_t i = 0; i < served.size(); ++i) {
    const LatencyStats& s = served[i];
    std::fprintf(out,
                 "    {\"clients\": %d, \"p50_us\": %.2f, \"p95_us\": %.2f, "
                 "\"p99_us\": %.2f, \"mean_us\": %.2f, \"decisions_per_sec\": %.0f, "
                 "\"fallbacks\": %llu}%s\n",
                 client_counts[i], s.p50_us, s.p95_us, s.p99_us, s.mean_us,
                 s.decisions_per_sec, static_cast<unsigned long long>(s.fallbacks),
                 i + 1 < served.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) {
  // Strip our serving flags before google-benchmark parses the rest.
  std::string serve_json;
  bool serve_quick = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--serve-json=", 13) == 0) {
      serve_json = argv[i] + 13;
    } else if (std::strcmp(argv[i], "--serve-quick") == 0) {
      serve_quick = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!serve_json.empty()) {
    return astraea::RunServingComparison(serve_json, serve_quick);
  }
  return 0;
}
