// Figure 17 — interpreting Astraea's policy: the state -> action mapping for
// flows at different operating rates as the observed delay varies. Shows the
// two properties §5.5 derives: the action decreases monotonically with delay,
// and each rate has its own zero-crossing (equilibrium delay), which is what
// transfers bandwidth from high-rate to low-rate flows.
//
// Runs the distilled policy always, and additionally the trained checkpoint
// when models/astraea_policy.ckpt (or ASTRAEA_MODEL) is present.

#include <cstdio>

#include "bench/harness/table.h"
#include "src/core/policy.h"

namespace astraea {
namespace {

void PrintMap(const Policy& policy) {
  std::printf("\n[%s] action vs observed RTT (base 40 ms, max-observed thr 200 Mbps)\n",
              policy.name().c_str());
  const double rates_mbps[] = {25, 50, 100, 150, 200};
  std::printf("%10s", "rtt(ms)");
  for (double r : rates_mbps) {
    std::printf("  thr=%3.0fM", r);
  }
  std::printf("\n");
  for (double rtt_ms = 40.0; rtt_ms <= 46.0; rtt_ms += 0.5) {
    std::printf("%10.1f", rtt_ms);
    for (double rate : rates_mbps) {
      // Build the flow's state at this operating point: cwnd = rate * rtt.
      MtpReport report;
      report.mtp = Milliseconds(30);
      report.thr_bps = Mbps(rate);
      report.avg_rtt = static_cast<TimeNs>(rtt_ms * static_cast<double>(kNanosPerMilli));
      report.srtt = report.avg_rtt;
      report.min_rtt = Milliseconds(40);
      report.cwnd_bytes =
          static_cast<uint64_t>(Mbps(rate) / 8.0 * ToSeconds(report.avg_rtt));
      report.inflight_bytes = report.cwnd_bytes;
      report.inflight_packets = report.cwnd_bytes / 1500;
      report.pacing_bps = Mbps(rate);
      report.acked_packets = 50;

      StateBlock sb(5);
      // Prime thr_max to 200 Mbps as in the paper's sweep.
      MtpReport primer = report;
      primer.thr_bps = Mbps(200);
      sb.Update(primer, 1500);
      sb.Update(report, 1500);
      const auto vec = sb.StateVector();

      StateView view;
      view.state_vector = vec;
      view.report = &report;
      view.lat_min = Milliseconds(40);
      view.thr_max_bps = Mbps(200);
      std::printf("  %8.3f", policy.Act(view));
    }
    std::printf("\n");
  }
}

int Main(int, char**) {
  PrintBenchHeader("Figure 17", "Astraea's learned state -> action mapping");
  DistilledPolicy distilled;
  PrintMap(distilled);

  const auto loaded = LoadDefaultPolicy();
  if (loaded->name() != "astraea-distilled") {
    PrintMap(*loaded);
  } else {
    std::printf("\n(no trained checkpoint found; set ASTRAEA_MODEL or run "
                "tools/astraea_train to add the MLP map)\n");
  }
  std::printf("\npaper: actions decrease with delay; higher-rate flows cross zero at lower "
              "delay, so shared queueing delay pushes rates together (fair consensus)\n");
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
