// Figure 18 (Appendix A) — sensitivity of the fairness coefficient c3:
// trains a fresh policy per c3 value for a small episode budget and reports
// the deterministic 3-flow evaluation Jain index.
//
// Note: the paper trains to convergence per point (Jain ~0.99 flat across
// 0.05..0.35); this bench demonstrates the sweep machinery at a single-core
// budget — expect noisier, lower absolute values but no strong trend in c3
// (EXPERIMENTS.md records the caveat). Increase ASTRAEA_FIG18_EPISODES for a
// longer, closer-to-paper run.

#include <cstdio>
#include <cstdlib>

#include "bench/harness/table.h"
#include "src/core/learner.h"

namespace astraea {
namespace {

int Main(int argc, char** argv) {
  PrintBenchHeader("Figure 18", "Fairness-coefficient (c3) sensitivity sweep");
  int episodes = QuickMode(argc, argv) ? 2 : 6;
  if (const char* env = std::getenv("ASTRAEA_FIG18_EPISODES"); env != nullptr) {
    episodes = std::max(1, std::atoi(env));
  }

  ConsoleTable table({"c3", "episodes", "eval Jain (trained)", "mean R_fair during training"});
  for (double c3 : {0.05, 0.15, 0.25, 0.35}) {
    LearnerConfig config;
    config.hp.reward.c3 = c3;
    config.episode_length = Seconds(12.0);
    config.seed = 42;
    Learner learner(config);
    double r_fair_acc = 0.0;
    int n = 0;
    learner.Train(episodes, [&](const EpisodeDiagnostics& d) {
      r_fair_acc += d.env.mean_r_fair;
      ++n;
    });
    const double jain = learner.EvaluateFairness();
    table.AddRow({ConsoleTable::Num(c3, 2), std::to_string(episodes),
                  ConsoleTable::Num(jain, 3), ConsoleTable::Num(r_fair_acc / n, 4)});
  }
  table.Print();
  std::printf("\npaper: Jain stays ~0.99 for c3 in [0.05, 0.35] after full training — the "
              "reward is not hypersensitive to the fairness weight\n");
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
