// Figure 19 (Appendix B.1) — resilience to buffer size: throughput, latency
// inflation and loss on 100 Mbps / 30 ms with the buffer swept from a few
// hundredths of a BDP to 16 BDP.

#include <cstdio>

#include "bench/harness/metrics.h"
#include "bench/harness/scenario.h"
#include "bench/harness/table.h"

namespace astraea {
namespace {

int Main(int argc, char** argv) {
  PrintBenchHeader("Figure 19",
                   "Varying buffer size (100 Mbps / 30 ms): normalized throughput, latency "
                   "inflation, loss");
  const bool quick = QuickMode(argc, argv);
  const TimeNs until = Seconds(quick ? 15.0 : 30.0);

  const double buffers[] = {0.02, 0.1, 0.5, 1.0, 4.0, 16.0};
  const char* schemes[] = {"cubic", "vegas", "bbr", "copa", "vivace", "aurora", "orca",
                           "astraea"};

  for (const char* metric : {"throughput", "latency", "loss"}) {
    std::printf("\n[%s]\n", metric);
    ConsoleTable table({"scheme", "0.02xBDP", "0.1xBDP", "0.5xBDP", "1xBDP", "4xBDP",
                        "16xBDP"});
    for (const char* scheme : schemes) {
      std::vector<std::string> row = {scheme};
      for (double buffer : buffers) {
        DumbbellConfig config;
        config.bandwidth = Mbps(100);
        config.base_rtt = Milliseconds(30);
        config.buffer_bdp = buffer;
        DumbbellScenario scenario(config);
        scenario.AddFlow(scheme, 0);
        scenario.Run(until);
        const Network& net = scenario.network();
        double value = 0.0;
        if (std::string(metric) == "throughput") {
          value = LinkUtilization(net, 0, until / 3, until);
          row.push_back(ConsoleTable::Num(value, 2));
        } else if (std::string(metric) == "latency") {
          value = MeanRttMs(net, until / 3, until) / 30.0;  // normalized to base RTT
          row.push_back(ConsoleTable::Num(value, 2));
        } else {
          value = 100.0 * AggregateLossRatio(net);
          row.push_back(ConsoleTable::Num(value, 3));
        }
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  std::printf("\npaper: Astraea needs only 0.1xBDP for near-full, near-lossless transfer; "
              "Aurora/BBR inflate latency with deep buffers; Orca lossy in shallow ones\n");
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
