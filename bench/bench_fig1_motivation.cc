// Figure 1 — motivation: (a) Aurora is unfair; (b) Vivace converges slowly.

#include <cstdio>

#include "bench/harness/metrics.h"
#include "bench/harness/scenario.h"
#include "bench/harness/table.h"

namespace astraea {
namespace {

void PrintTimeline(const Network& net, TimeNs until, TimeNs step) {
  std::printf("%8s", "t(s)");
  for (size_t i = 0; i < net.flow_count(); ++i) {
    std::printf("  flow%zu(Mbps)", i);
  }
  std::printf("\n");
  for (TimeNs t = 0; t + step <= until; t += step) {
    std::printf("%8.0f", ToSeconds(t));
    for (size_t i = 0; i < net.flow_count(); ++i) {
      std::printf("  %11.2f",
                  net.flow_stats(static_cast<int>(i)).throughput_mbps.MeanOver(t, t + step));
    }
    std::printf("\n");
  }
}

int Main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);

  PrintBenchHeader("Figure 1a",
                   "Aurora is very unfair: 2 flows, 80 Mbps, 60 ms RTT, 4.8 MB buffer");
  {
    DumbbellConfig config;
    config.bandwidth = Mbps(80);
    config.base_rtt = Milliseconds(60);
    // 4.8 MB buffer = 8 BDP at 80 Mbps x 60 ms.
    config.buffer_bdp = 4.8e6 / static_cast<double>(BdpBytes(Mbps(80), Milliseconds(60)));
    DumbbellScenario scenario(config);
    const TimeNs until = quick ? Seconds(40.0) : Seconds(80.0);
    scenario.AddFlow("aurora", 0);
    scenario.AddFlow("aurora", until / 4);
    scenario.Run(until);
    PrintTimeline(scenario.network(), until, Seconds(quick ? 2.0 : 4.0));
    const auto thr = FlowMeanThroughputs(scenario.network(), until / 2, until);
    std::printf("second half: flow0 %.1f Mbps, flow1 %.1f Mbps (paper: incumbent takes all)\n\n",
                thr[0], thr[1]);
  }

  PrintBenchHeader("Figure 1b",
                   "Vivace converges slowly: 3 flows @40 s, 100 Mbps, 120 ms RTT, 1 BDP");
  {
    DumbbellConfig config;
    config.bandwidth = Mbps(100);
    config.base_rtt = Milliseconds(120);
    config.buffer_bdp = 1.0;
    DumbbellScenario scenario(config);
    const TimeNs interval = quick ? Seconds(20.0) : Seconds(40.0);
    const TimeNs duration = quick ? Seconds(60.0) : Seconds(120.0);
    for (int i = 0; i < 3; ++i) {
      scenario.AddFlow("vivace", interval * i, duration);
    }
    const TimeNs until = interval * 2 + duration;
    scenario.Run(until);
    PrintTimeline(scenario.network(), until, Seconds(quick ? 2.0 : 4.0));
    std::printf("avg Jain over 3-flow window: %.3f (paper: far from 1; fairness not reached "
                "before flows end)\n",
                AverageJain(scenario.network(), interval * 2, until, Milliseconds(500)));
  }
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
