// Figure 20 (Appendix B.2) — unreliable satellite link: 42 Mbps, 800 ms RTT,
// 1 BDP buffer, 0.74% stochastic loss. Loss-sensitive schemes collapse;
// loss-resilient ones keep throughput; delay-based ones keep delay.

#include <cstdio>

#include "bench/harness/metrics.h"
#include "bench/harness/scenario.h"
#include "bench/harness/table.h"

namespace astraea {
namespace {

int Main(int argc, char** argv) {
  PrintBenchHeader("Figure 20",
                   "Satellite link: 42 Mbps, 800 ms RTT, 1 BDP, 0.74% random loss");
  const bool quick = QuickMode(argc, argv);
  const TimeNs until = Seconds(quick ? 50.0 : 100.0);
  const int reps = BenchReps(2);

  ConsoleTable table({"scheme", "avg thr (Mbps)", "norm delay (rtt/base)", "observed loss %"});
  for (const char* scheme :
       {"cubic", "vegas", "bbr", "copa", "vivace", "aurora", "orca", "astraea"}) {
    double thr = 0.0;
    double norm_delay = 0.0;
    double loss = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      DumbbellConfig config;
      config.bandwidth = Mbps(42);
      config.base_rtt = Milliseconds(800);
      config.buffer_bdp = 1.0;
      config.random_loss = 0.0074;
      config.seed = 1000 + static_cast<uint64_t>(rep);
      DumbbellScenario scenario(config);
      scenario.AddFlow(scheme, 0);
      scenario.Run(until);
      thr += FlowMeanThroughputs(scenario.network(), until / 4, until)[0] / reps;
      norm_delay += MeanRttMs(scenario.network(), until / 4, until) / 800.0 / reps;
      loss += 100.0 * AggregateLossRatio(scenario.network()) / reps;
    }
    table.AddRow({scheme, ConsoleTable::Num(thr, 1), ConsoleTable::Num(norm_delay, 2),
                  ConsoleTable::Num(loss, 2)});
  }
  table.Print();
  std::printf("\npaper: Cubic/Vegas collapse (respond to loss); Vivace/Copa/Aurora high "
              "throughput; BBR high but oscillating; Astraea moderate throughput with low "
              "delay\n");
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
