// Figure 20 (Appendix B.2) — unreliable satellite link: 42 Mbps, 800 ms RTT,
// 1 BDP buffer, 0.74% stochastic loss. Loss-sensitive schemes collapse;
// loss-resilient ones keep throughput; delay-based ones keep delay.
// Pass --trace[=PATH] to replay a Mahimahi capture of the link's service
// rate (default: the bundled traces/satellite.trace with rain-fade dips)
// instead of the constant 42 Mbps.

#include <cstdio>
#include <cstring>
#include <string>

#include "bench/harness/metrics.h"
#include "bench/harness/scenario.h"
#include "bench/harness/table.h"

#ifndef ASTRAEA_SOURCE_DIR
#define ASTRAEA_SOURCE_DIR "."
#endif

namespace astraea {
namespace {

int Main(int argc, char** argv) {
  PrintBenchHeader("Figure 20",
                   "Satellite link: 42 Mbps, 800 ms RTT, 1 BDP, 0.74% random loss");
  const bool quick = QuickMode(argc, argv);
  const TimeNs until = Seconds(quick ? 50.0 : 100.0);
  const int reps = BenchReps(2);

  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = std::string(ASTRAEA_SOURCE_DIR) + "/traces/satellite.trace";
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    }
  }
  std::shared_ptr<RateTrace> trace;
  if (!trace_path.empty()) {
    trace = std::make_shared<RateTrace>(LoadMahimahiTrace(trace_path));
    std::printf("replaying Mahimahi trace: %s\n\n", trace_path.c_str());
  }

  ConsoleTable table({"scheme", "avg thr (Mbps)", "norm delay (rtt/base)", "observed loss %"});
  for (const char* scheme :
       {"cubic", "vegas", "bbr", "copa", "vivace", "aurora", "orca", "astraea"}) {
    double thr = 0.0;
    double norm_delay = 0.0;
    double loss = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      DumbbellConfig config;
      config.bandwidth = Mbps(42);
      config.base_rtt = Milliseconds(800);
      config.buffer_bdp = 1.0;
      config.random_loss = 0.0074;
      config.trace = trace;
      config.seed = 1000 + static_cast<uint64_t>(rep);
      DumbbellScenario scenario(config);
      scenario.AddFlow(scheme, 0);
      scenario.Run(until);
      thr += FlowMeanThroughputs(scenario.network(), until / 4, until)[0] / reps;
      norm_delay += MeanRttMs(scenario.network(), until / 4, until) / 800.0 / reps;
      loss += 100.0 * AggregateLossRatio(scenario.network()) / reps;
    }
    table.AddRow({scheme, ConsoleTable::Num(thr, 1), ConsoleTable::Num(norm_delay, 2),
                  ConsoleTable::Num(loss, 2)});
  }
  table.Print();
  std::printf("\npaper: Cubic/Vegas collapse (respond to loss); Vivace/Copa/Aurora high "
              "throughput; BBR high but oscillating; Astraea moderate throughput with low "
              "delay\n");
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
