// Figure 22 (Appendix B.4) — high-speed WAN: 10 Gbps bandwidth, 10 ms base
// RTT. Fast convergence to the link rate determines utilization here.

#include <cstdio>

#include "bench/harness/metrics.h"
#include "bench/harness/scenario.h"
#include "bench/harness/table.h"

namespace astraea {
namespace {

int Main(int argc, char** argv) {
  PrintBenchHeader("Figure 22", "High-speed WAN: 10 Gbps, 10 ms base RTT");
  const bool quick = QuickMode(argc, argv);
  const TimeNs until = Seconds(quick ? 4.0 : 8.0);

  ConsoleTable table({"scheme", "avg thr (Gbps)", "mean RTT (ms)", "loss %"});
  for (const char* scheme : {"cubic", "bbr", "vivace", "orca", "astraea"}) {
    DumbbellConfig config;
    config.bandwidth = Gbps(10);
    config.base_rtt = Milliseconds(10);
    config.buffer_bdp = 1.0;
    DumbbellScenario scenario(config);
    scenario.AddFlow(scheme, 0);
    scenario.Run(until);
    const Network& net = scenario.network();
    table.AddRow({scheme,
                  ConsoleTable::Num(FlowMeanThroughputs(net, until / 4, until)[0] / 1000.0, 2),
                  ConsoleTable::Num(MeanRttMs(net, until / 4, until), 1),
                  ConsoleTable::Num(100.0 * AggregateLossRatio(net), 3)});
  }
  table.Print();
  std::printf("\npaper: Astraea delivers higher throughput than Orca and Vivace with low "
              "latency (fast convergence to link bandwidth + latency penalty in reward)\n");
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
