// Figure 2 — tuning Vivace's conversion factor theta0 trades responsiveness
// for stability: the enlarged theta0 converges quickly at 120 ms RTT (2a) but
// oscillates badly at 12 ms RTT (2b).

#include <cstdio>

#include "bench/harness/experiments.h"
#include "bench/harness/metrics.h"
#include "bench/harness/scenario.h"
#include "bench/harness/table.h"

namespace astraea {
namespace {

struct Outcome {
  double jain;
  double stddev_mbps;  // mean per-flow post-warmup throughput stddev
  double util;
  double conv_s;       // convergence time of the last arrival (-1: never)
};

Outcome RunVivace(double theta0, TimeNs rtt, TimeNs interval, TimeNs until, int flows) {
  DumbbellConfig config;
  config.bandwidth = Mbps(100);
  config.base_rtt = rtt;
  config.buffer_bdp = 1.0;
  DumbbellScenario scenario(config);
  VivaceConfig& vivace = scenario.scheme_options().vivace;
  vivace.theta0 = theta0;
  // "Putting more rate increment on each probing step" also requires lifting
  // the dynamic change boundary, which otherwise clips large theta0 steps.
  if (theta0 > 1.0) {
    vivace.epsilon = 0.15;
    vivace.omega_base = 0.10;
    vivace.omega_step = 0.10;
  }
  for (int i = 0; i < flows; ++i) {
    scenario.AddFlow("vivace", interval * i);
  }
  scenario.Run(until);
  const Network& net = scenario.network();
  Outcome out;
  out.jain = AverageJain(net, interval * (flows - 1), until, Milliseconds(500));
  double stddev = 0.0;
  for (int i = 0; i < flows; ++i) {
    stddev += net.flow_stats(i).throughput_mbps.StdDevOver(until / 2, until);
  }
  out.stddev_mbps = stddev / flows;
  out.util = LinkUtilization(net, 0, interval * (flows - 1), until);
  const ConvergenceMeasurement m =
      MeasureConvergence(net, flows - 1, interval * (flows - 1),
                         ToMbps(config.bandwidth) / flows, 0.15, Seconds(1.0), until);
  out.conv_s = m.convergence_time < 0 ? -1.0 : ToSeconds(m.convergence_time);
  return out;
}

int Main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  const TimeNs interval = quick ? Seconds(15.0) : Seconds(40.0);
  const TimeNs until = quick ? Seconds(60.0) : Seconds(160.0);

  PrintBenchHeader("Figure 2", "Enhanced Vivace (enlarged theta0) performs diversely");
  ConsoleTable table({"setting", "RTT", "theta0", "avg Jain", "conv time (s)",
                      "thr stddev (Mbps)", "utilization"});
  struct Case {
    const char* label;
    TimeNs rtt;
    double theta0;
  };
  const Case cases[] = {
      {"default, high RTT (Fig 1b)", Milliseconds(120), 0.8},
      {"tuned,   high RTT (Fig 2a)", Milliseconds(120), 2.0},
      {"default, low RTT", Milliseconds(12), 0.8},
      {"tuned,   low RTT  (Fig 2b)", Milliseconds(12), 2.0},
  };
  for (const Case& c : cases) {
    const Outcome out = RunVivace(c.theta0, c.rtt, interval, until, 3);
    table.AddRow({c.label, ConsoleTable::Num(ToMillis(c.rtt), 0) + "ms",
                  ConsoleTable::Num(c.theta0, 1), ConsoleTable::Num(out.jain, 3),
                  out.conv_s < 0 ? "never" : ConsoleTable::Num(out.conv_s, 1),
                  ConsoleTable::Num(out.stddev_mbps), ConsoleTable::Num(out.util, 3)});
  }
  table.Print();
  std::printf("\npaper: tuned theta0 converges quickly at 120 ms but is unstable at 12 ms\n");
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
