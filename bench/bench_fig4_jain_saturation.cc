// Figure 4 — why the reward does not use the Jain index: Jain saturates as
// two flows' throughputs approach each other, while Astraea's R_fair stays
// linearly sensitive. Pure computation over the production reward block.

#include <cstdio>

#include "bench/harness/table.h"
#include "src/core/reward.h"
#include "src/util/stats.h"

namespace astraea {
namespace {

int Main(int, char**) {
  PrintBenchHeader("Figure 4",
                   "Jain index vs (1 - R_fair) as the throughput gap of two flows sharing "
                   "100 Mbps varies");
  ConsoleTable table({"gap (Mbps)", "Jain index", "1 - R_fair", "dJain/d(gap)",
                      "dR_fair/d(gap)"});
  double prev_jain = 1.0;
  double prev_rfair = 0.0;
  for (int gap = 0; gap <= 100; gap += 10) {
    const double hi = 50.0 + gap / 2.0;
    const double lo = 50.0 - gap / 2.0;
    const std::vector<double> rates = {hi, lo};
    const double jain = JainIndex(rates);
    FlowRewardInput a;
    a.avg_thr_bps = Mbps(hi);
    FlowRewardInput b;
    b.avg_thr_bps = Mbps(lo);
    const std::vector<FlowRewardInput> flows = {a, b};
    const double rfair = RewardFairness(flows);
    table.AddRow({std::to_string(gap), ConsoleTable::Num(jain, 4),
                  ConsoleTable::Num(1.0 - rfair, 4),
                  gap == 0 ? "-" : ConsoleTable::Num((prev_jain - jain) / 10.0, 5),
                  gap == 0 ? "-" : ConsoleTable::Num((rfair - prev_rfair) / 10.0, 5)});
    prev_jain = jain;
    prev_rfair = rfair;
  }
  table.Print();
  std::printf("\npaper: gap 0->20 moves Jain by only ~0.04 while R_fair moves linearly —\n"
              "R_fair keeps gradient signal near the fair point where Jain has none\n");
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
