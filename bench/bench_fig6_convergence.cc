// Figure 6 — temporal convergence behaviour of all evaluated schemes:
// 3 flows starting at 40 s intervals (120 s each) on 100 Mbps / 30 ms / 1 BDP.
// Prints each scheme's per-flow throughput timeline plus a summary row.

#include <cstdio>
#include <vector>

#include "bench/harness/experiments.h"
#include "bench/harness/table.h"
#include "src/util/thread_pool.h"

namespace astraea {
namespace {

int Main(int argc, char** argv) {
  PrintBenchHeader("Figure 6",
                   "Temporal convergence of CC schemes (3 staggered flows, 100 Mbps / 30 ms "
                   "/ 1 BDP)");
  StaggeredConfig config = DefaultStaggeredConfig();
  TimeNs step = Seconds(4.0);
  if (QuickMode(argc, argv)) {
    config.start_interval = Seconds(15.0);
    config.flow_duration = Seconds(45.0);
    config.until = Seconds(75.0);
    step = Seconds(2.0);
  }

  const std::vector<const char*> schemes = {"newreno", "cubic",  "vegas", "bbr",
                                            "copa",    "vivace", "orca",  "astraea"};
  // All scheme scenarios run concurrently on the pool; printing stays in
  // scheme order below.
  const auto scenarios = ParallelMap(schemes.size(), [&](size_t i) {
    return RunStaggeredScenario(schemes[i], config, 1);
  });

  ConsoleTable summary({"scheme", "avg Jain", "utilization", "mean RTT (ms)", "loss %"});
  for (size_t s = 0; s < schemes.size(); ++s) {
    const char* scheme = schemes[s];
    const Network& net = scenarios[s]->network();

    std::printf("\n--- %s ---\n%8s  f0(Mbps)  f1(Mbps)  f2(Mbps)\n", scheme, "t(s)");
    for (TimeNs t = 0; t + step <= config.until; t += step) {
      std::printf("%8.0f  %8.2f  %8.2f  %8.2f\n", ToSeconds(t),
                  net.flow_stats(0).throughput_mbps.MeanOver(t, t + step),
                  net.flow_stats(1).throughput_mbps.MeanOver(t, t + step),
                  net.flow_stats(2).throughput_mbps.MeanOver(t, t + step));
    }
    summary.AddRow({scheme,
                    ConsoleTable::Num(AverageJain(net, 0, config.until, Milliseconds(500)), 3),
                    ConsoleTable::Num(LinkUtilization(net, 0, Seconds(1.0), config.until), 3),
                    ConsoleTable::Num(MeanRttMs(net, 0, config.until), 1),
                    ConsoleTable::Num(100.0 * AggregateLossRatio(net), 2)});
  }
  std::printf("\n");
  summary.Print();
  std::printf("\npaper: TCPs respond fast but oscillate; Copa unstable; Vivace slow; Orca "
              "suboptimal; Astraea converges fast, fairly and stably\n");
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
