// Figure 7 — CDF of Jain indices computed at every 500 ms timeslot with at
// least two active flows, pooled over repeated runs of the Fig. 6 scenario.

#include <cstdio>

#include "bench/harness/experiments.h"
#include "bench/harness/table.h"

namespace astraea {
namespace {

int Main(int argc, char** argv) {
  PrintBenchHeader("Figure 7", "CDF of per-timeslot Jain indices (Fig. 6 scenario)");
  StaggeredConfig config = DefaultStaggeredConfig();
  if (QuickMode(argc, argv)) {
    config.start_interval = Seconds(15.0);
    config.flow_duration = Seconds(45.0);
    config.until = Seconds(75.0);
  }
  const int reps = BenchReps(3);

  // Fan the full scheme x rep grid out across the pool, then regroup per
  // scheme in order — maximum parallelism with deterministic output.
  const std::vector<const char*> schemes = {"cubic", "vegas",  "bbr",    "copa",
                                            "vivace", "orca", "astraea"};
  const auto per_point =
      ParallelMap(schemes.size() * static_cast<size_t>(reps), [&](size_t point) {
        const size_t scheme_idx = point / static_cast<size_t>(reps);
        const int rep = static_cast<int>(point % static_cast<size_t>(reps));
        return CollectJainSamplesRep(schemes[scheme_idx], config, rep);
      });

  ConsoleTable table({"scheme", "p10", "p25", "p50", "p75", "p90", "mean", "frac>0.95"});
  for (size_t scheme_idx = 0; scheme_idx < schemes.size(); ++scheme_idx) {
    const char* scheme = schemes[scheme_idx];
    std::vector<double> samples;
    for (int rep = 0; rep < reps; ++rep) {
      const auto& part = per_point[scheme_idx * static_cast<size_t>(reps) +
                                   static_cast<size_t>(rep)];
      samples.insert(samples.end(), part.begin(), part.end());
    }
    EmpiricalCdf cdf(samples);
    double above = 0.0;
    for (double s : samples) {
      above += s > 0.95 ? 1.0 : 0.0;
    }
    table.AddRow({scheme, ConsoleTable::Num(cdf.Quantile(0.10), 3),
                  ConsoleTable::Num(cdf.Quantile(0.25), 3), ConsoleTable::Num(cdf.Quantile(0.50), 3),
                  ConsoleTable::Num(cdf.Quantile(0.75), 3), ConsoleTable::Num(cdf.Quantile(0.90), 3),
                  ConsoleTable::Num(Mean(samples), 3),
                  ConsoleTable::Num(samples.empty() ? 0.0 : above / samples.size(), 3)});
  }
  table.Print();
  std::printf("\npaper: Astraea's Jain CDF hugs 1.0 (average 0.991); others trail\n");
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
