// Figure 8 — RTT fairness: 5 long-running flows with base RTTs evenly spaced
// between 40 ms and 200 ms share a 100 Mbps link (1 BDP buffer sized at the
// 200 ms RTT). Optimal sharing gives every flow 20 Mbps.

#include <cstdio>

#include "bench/harness/metrics.h"
#include "bench/harness/scenario.h"
#include "bench/harness/table.h"

namespace astraea {
namespace {

int Main(int argc, char** argv) {
  PrintBenchHeader("Figure 8",
                   "RTT fairness: 5 flows, base RTTs 40..200 ms, 100 Mbps (20 Mbps each is "
                   "optimal)");
  const bool quick = QuickMode(argc, argv);
  const TimeNs until = quick ? Seconds(40.0) : Seconds(90.0);
  const int reps = BenchReps(2);

  ConsoleTable table({"scheme", "40ms", "80ms", "120ms", "160ms", "200ms", "Jain"});
  for (const char* scheme :
       {"cubic", "vegas", "bbr", "copa", "vivace", "aurora", "orca", "astraea"}) {
    std::vector<double> avg(5, 0.0);
    double jain = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      DumbbellConfig config;
      config.bandwidth = Mbps(100);
      config.base_rtt = Milliseconds(40);
      // 1 BDP buffer computed with the 200 ms RTT (paper setup).
      config.buffer_bdp = 200.0 / 40.0;
      config.seed = 100 + static_cast<uint64_t>(rep);
      DumbbellScenario scenario(config);
      for (int i = 0; i < 5; ++i) {
        // Flow i's base RTT: 40 + 40*i ms (extra delay on the return path).
        scenario.AddFlow(scheme, 0, -1, Milliseconds(40) * i);
      }
      scenario.Run(until);
      const auto thr = FlowMeanThroughputs(scenario.network(), until / 3, until);
      for (int i = 0; i < 5; ++i) {
        avg[static_cast<size_t>(i)] += thr[static_cast<size_t>(i)] / reps;
      }
      jain += JainIndex(thr) / reps;
    }
    table.AddRow({scheme, ConsoleTable::Num(avg[0], 1), ConsoleTable::Num(avg[1], 1),
                  ConsoleTable::Num(avg[2], 1), ConsoleTable::Num(avg[3], 1),
                  ConsoleTable::Num(avg[4], 1), ConsoleTable::Num(jain, 3)});
  }
  table.Print();
  std::printf("\npaper: Astraea comparable to Copa/Vivace, better than Aurora/Orca/TCPs; "
              "mild small-RTT advantage remains\n");
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
