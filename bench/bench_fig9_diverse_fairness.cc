// Figure 9 — Astraea's fairness across diverse network scenarios: bandwidth
// 20..200 Mbps x base RTT 30..200 ms (wider than the training range), random
// 2..8 flows starting every 20 s.

#include <cstdio>

#include "bench/harness/metrics.h"
#include "bench/harness/scenario.h"
#include "bench/harness/table.h"
#include "src/util/rng.h"

namespace astraea {
namespace {

int Main(int argc, char** argv) {
  PrintBenchHeader("Figure 9", "Astraea's average Jain index across bandwidth x RTT grid");
  const bool quick = QuickMode(argc, argv);
  const int reps = BenchReps(2);

  const double bws[] = {20, 50, 100, 150, 200};
  const int rtts[] = {30, 50, 100, 150, 200};

  ConsoleTable table({"bw\\rtt", "30ms", "50ms", "100ms", "150ms", "200ms"});
  Rng rng(7);
  for (double bw : bws) {
    std::vector<std::string> row = {ConsoleTable::Num(bw, 0) + "Mbps"};
    for (int rtt : rtts) {
      double jain_acc = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        const int flows = quick ? 3 : static_cast<int>(rng.UniformInt(2, 8));
        const TimeNs interval = quick ? Seconds(8.0) : Seconds(20.0);
        // Flows staggered every 20s; total long enough for all to compete.
        const TimeNs until = interval * flows + Seconds(quick ? 15.0 : 40.0);
        DumbbellConfig config;
        config.bandwidth = Mbps(bw);
        config.base_rtt = Milliseconds(rtt);
        config.buffer_bdp = 1.0;
        config.seed = 300 + static_cast<uint64_t>(rep);
        DumbbellScenario scenario(config);
        for (int i = 0; i < flows; ++i) {
          scenario.AddFlow("astraea", interval * i);
        }
        scenario.Run(until);
        jain_acc +=
            AverageJain(scenario.network(), interval * (flows - 1), until, Milliseconds(500));
      }
      row.push_back(ConsoleTable::Num(jain_acc / reps, 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\npaper: Jain > 0.95 across the grid; mild degradation at very large RTTs and "
              "in small-BDP corners\n");
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
