// Kernel and harness performance trajectory for this repo: per-step actor
// inference latency, TD3 training throughput on the batched vs the per-sample
// reference path, batched inference-service cost, and parallel experiment
// harness scenario throughput (1 worker vs all cores).
//
// Prints a table and emits BENCH_kernels.json (override with --out=PATH) so
// successive PRs can track the numbers. `--quick` shrinks the harness stage.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness/experiments.h"
#include "bench/harness/table.h"
#include "src/core/inference_service.h"
#include "src/rl/replay_buffer.h"
#include "src/rl/td3.h"
#include "src/util/thread_pool.h"

namespace astraea {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Runs fn() repeatedly until ~min_time elapses (after one warmup call) and
// returns the mean seconds per call. Takes the best of three such trials so a
// scheduler hiccup during one trial doesn't distort the reading — the same
// discipline is applied to every code path being compared.
template <typename Fn>
double TimePerCall(double min_time, Fn&& fn) {
  fn();  // warmup
  double best = 0.0;
  for (int trial = 0; trial < 3; ++trial) {
    int64_t calls = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
      fn();
      ++calls;
      elapsed = SecondsSince(start);
    } while (elapsed < min_time / 3.0);
    const double per_call = elapsed / static_cast<double>(calls);
    if (trial == 0 || per_call < best) {
      best = per_call;
    }
  }
  return best;
}

// The paper's deployment shapes: 40 local features (8 x w=5), 12 global
// features, 256/128/64 hidden, scalar action.
constexpr int kLocalDim = 40;
constexpr int kGlobalDim = 12;
constexpr size_t kTrainBatch = 256;

Mlp PaperActor(uint64_t seed = 1) {
  Rng rng(seed);
  return Mlp({kLocalDim, 256, 128, 64, 1}, OutputActivation::kTanh, &rng);
}

Td3Trainer MakeTrainer(uint64_t seed) {
  Td3Config config;
  config.local_state_dim = kLocalDim;
  config.global_state_dim = kGlobalDim;
  config.action_dim = 1;
  config.batch_size = kTrainBatch;
  Rng rng(seed);
  return Td3Trainer(config, &rng);
}

ReplayBuffer MakeBuffer(uint64_t seed) {
  ReplayBuffer buffer(8192);
  Rng rng(seed);
  for (int i = 0; i < 2048; ++i) {
    Transition t;
    t.global_state.resize(kGlobalDim);
    t.local_state.resize(kLocalDim);
    t.next_global_state.resize(kGlobalDim);
    t.next_local_state.resize(kLocalDim);
    for (auto* v : {&t.global_state, &t.local_state, &t.next_global_state,
                    &t.next_local_state}) {
      for (auto& x : *v) {
        x = static_cast<float>(rng.Uniform(-1.0, 1.0));
      }
    }
    t.action = {static_cast<float>(rng.Uniform(-1.0, 1.0))};
    t.reward = static_cast<float>(rng.Uniform(-1.0, 1.0));
    t.terminal = rng.Bernoulli(0.05);
    buffer.Add(std::move(t));
  }
  return buffer;
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }
  const bool quick = QuickMode(argc, argv);
  PrintBenchHeader("Kernels", "Batched NN kernel and parallel-harness performance");

  // ---- Per-step actor inference (the Fig. 16 tens-of-microseconds budget).
  Mlp actor = PaperActor();
  Rng data_rng(2);
  std::vector<float> state(kLocalDim);
  for (auto& v : state) {
    v = static_cast<float>(data_rng.Uniform(0.0, 2.0));
  }
  const double infer_s = TimePerCall(0.3, [&] { actor.Infer(state); });

  // ---- Batched forward, per row at the training batch size.
  std::vector<float> batch_states(kTrainBatch * kLocalDim);
  for (auto& v : batch_states) {
    v = static_cast<float>(data_rng.Uniform(0.0, 2.0));
  }
  const double fwd_batch_s =
      TimePerCall(0.3, [&] { actor.ForwardBatch(batch_states, kTrainBatch); });

  // ---- Inference-service flush at 256 pending flows.
  InferenceService service(PaperActor());
  const double flush_s = TimePerCall(0.3, [&] {
    for (size_t i = 0; i < kTrainBatch; ++i) {
      service.Submit(
          std::vector<float>(batch_states.begin() + static_cast<long>(i * kLocalDim),
                             batch_states.begin() + static_cast<long>((i + 1) * kLocalDim)),
          [](double) {});
    }
    service.Flush();
  });

  // ---- TD3 training throughput: batched kernels vs per-sample reference.
  Td3Trainer batched = MakeTrainer(3);
  ReplayBuffer buffer = MakeBuffer(4);
  Rng rng_batched(5);
  const double update_batched_s =
      TimePerCall(1.0, [&] { batched.Update(buffer, &rng_batched); });
  Td3Trainer reference = MakeTrainer(3);
  Rng rng_reference(5);
  const double update_reference_s =
      TimePerCall(1.0, [&] { reference.UpdateReference(buffer, &rng_reference); });
  const double td3_speedup = update_reference_s / update_batched_s;

  // ---- Harness scenario throughput: 8 staggered-scenario reps, 1 worker vs
  // every core (astraea flows, so the NN inference path is exercised too).
  StaggeredConfig config = DefaultStaggeredConfig();
  config.start_interval = Seconds(quick ? 3.0 : 6.0);
  config.flow_duration = Seconds(quick ? 9.0 : 18.0);
  config.until = Seconds(quick ? 15.0 : 30.0);
  const int harness_reps = 8;
  const size_t cores = ThreadPool::DefaultWorkerCount();

  const auto serial_start = Clock::now();
  CollectJainSamples("astraea", config, harness_reps, /*workers=*/1);
  const double serial_s = SecondsSince(serial_start);
  const auto parallel_start = Clock::now();
  CollectJainSamples("astraea", config, harness_reps, /*workers=*/cores);
  const double parallel_s = SecondsSince(parallel_start);
  const double harness_speedup = serial_s / parallel_s;
  const double scaling_efficiency =
      harness_speedup / static_cast<double>(std::min<size_t>(cores, harness_reps));

  ConsoleTable table({"metric", "value"});
  table.AddRow({"actor inference (us/step)", ConsoleTable::Num(infer_s * 1e6)});
  table.AddRow({"actor ForwardBatch-256 (us/row)",
                ConsoleTable::Num(fwd_batch_s * 1e6 / kTrainBatch)});
  table.AddRow({"service flush-256 (us/flow)",
                ConsoleTable::Num(flush_s * 1e6 / kTrainBatch)});
  table.AddRow({"TD3 updates/s (batched, B=256)", ConsoleTable::Num(1.0 / update_batched_s, 1)});
  table.AddRow(
      {"TD3 updates/s (reference, B=256)", ConsoleTable::Num(1.0 / update_reference_s, 1)});
  table.AddRow({"TD3 batched speedup", ConsoleTable::Num(td3_speedup)});
  table.AddRow({"harness 8 reps, 1 worker (s)", ConsoleTable::Num(serial_s)});
  table.AddRow({"harness 8 reps, " + std::to_string(cores) + " workers (s)",
                ConsoleTable::Num(parallel_s)});
  table.AddRow({"harness scaling efficiency", ConsoleTable::Num(scaling_efficiency)});
  table.Print();

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"host_cores\": %zu,\n"
               "  \"actor_infer_us\": %.3f,\n"
               "  \"actor_forward_batch256_us_per_row\": %.4f,\n"
               "  \"service_flush256_us_per_flow\": %.4f,\n"
               "  \"td3_updates_per_sec_batched\": %.2f,\n"
               "  \"td3_updates_per_sec_reference\": %.2f,\n"
               "  \"td3_batched_speedup\": %.3f,\n"
               "  \"harness\": {\n"
               "    \"reps\": %d,\n"
               "    \"workers\": %zu,\n"
               "    \"serial_seconds\": %.3f,\n"
               "    \"parallel_seconds\": %.3f,\n"
               "    \"speedup\": %.3f,\n"
               "    \"scaling_efficiency\": %.3f\n"
               "  }\n"
               "}\n",
               cores, infer_s * 1e6, fwd_batch_s * 1e6 / kTrainBatch,
               flush_s * 1e6 / kTrainBatch, 1.0 / update_batched_s,
               1.0 / update_reference_s, td3_speedup, harness_reps, cores, serial_s,
               parallel_s, harness_speedup, scaling_efficiency);
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
