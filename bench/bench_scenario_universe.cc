// Scenario universe summary bench (ROADMAP item 4): runs the three workload
// families from bench/harness/scenario_universe.h —
//
//  1. Datacenter incast: fan-in sweep on a shallow-buffer 1 Gbps bottleneck,
//     DCTCP behind an ECN marking queue vs cubic on plain DropTail.
//  2. Trace-driven links: the bundled Mahimahi cellular/satellite captures
//     (traces/) replayed under several schemes.
//  3. Adversarial mixes: Pareto on/off churn plus periodic UDP blasts over
//     long-lived foreground flows, and the full cross-scheme competition
//     matrix scored with Jain/worst-flow/harm (Fair-Aurora style).
//
// Every family also runs the 1-vs-N-worker sharded fingerprint check, and
// the process-wide invariant-violation counter is reported (CI runs this
// under ASTRAEA_CHECK_INVARIANTS=1 and asserts zero). Prints tables and
// emits BENCH_scenario_universe.json (--out=PATH overrides); --quick shrinks
// every axis for CI smoke; --traces=DIR overrides the bundled trace dir.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/harness/metrics.h"
#include "bench/harness/scenario_universe.h"
#include "bench/harness/table.h"
#include "src/sim/invariants.h"
#include "src/util/thread_pool.h"

#ifndef ASTRAEA_SOURCE_DIR
#define ASTRAEA_SOURCE_DIR "."
#endif

namespace astraea {
namespace {

struct FamilyRow {
  std::string family;
  std::string scenario;
  std::string scheme;
  UniverseMetrics metrics;
  // Extras (zero when not applicable).
  size_t requests = 0;
  size_t completed = 0;
  double p95_fct_ms = 0.0;
  uint64_t ecn_marked = 0;
  double blast_share = 0.0;
  size_t churn_flows = 0;
};

struct PairRow {
  std::string a, b;
  double thr_a = 0.0, thr_b = 0.0;
  double jain = 0.0;
  double worst_flow_share = 0.0;
  double harm_a_on_b = 0.0;  // harm inflicted on b by competing with a
  double harm_b_on_a = 0.0;
};

struct DeterminismRow {
  std::string family;
  bool match = false;
  uint64_t fingerprint = 0;
};

// One dumbbell competition run: one flow of `a` vs one flow of `b` (fig14's
// setup generalized to the full matrix). Returns mean throughputs in flow
// order.
std::pair<double, double> RunPair(const std::string& a, const std::string& b, TimeNs duration,
                                  uint64_t seed) {
  DumbbellConfig config;
  config.bandwidth = Mbps(100);
  config.base_rtt = Milliseconds(30);
  config.buffer_bdp = 1.0;
  config.seed = seed;
  DumbbellScenario scenario(config);
  scenario.AddFlow(a, 0, duration);
  scenario.AddFlow(b, 0, duration);
  scenario.Run(duration + Milliseconds(50));
  const TimeNs begin = duration / 5;  // skip startup transient
  const std::vector<double> thr = FlowMeanThroughputs(scenario.network(), begin, duration);
  return {thr[0], thr[1]};
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_scenario_universe.json";
  std::string traces_dir = std::string(ASTRAEA_SOURCE_DIR) + "/traces";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--traces=", 9) == 0) {
      traces_dir = argv[i] + 9;
    }
  }
  const bool quick = QuickMode(argc, argv);
  PrintBenchHeader("ScenarioUniverse",
                   "Datacenter incast, trace-driven links, adversarial mixes");
  const uint64_t violations_before = invariants::ViolationCount();

  std::vector<FamilyRow> rows;

  // ---- Family 1: datacenter incast.
  const std::vector<size_t> fan_ins = quick ? std::vector<size_t>{8} : std::vector<size_t>{8, 32};
  for (const size_t fan_in : fan_ins) {
    for (const bool ecn : {true, false}) {
      IncastConfig config;
      config.fan_in = fan_in;
      config.waves = quick ? 1 : 2;
      config.scheme = ecn ? "dctcp" : "cubic";
      config.ecn = ecn;
      config.seed = 40 + fan_in;
      const IncastResult result = RunIncast(config);
      FamilyRow row;
      row.family = "datacenter";
      row.scenario = "incast_f" + std::to_string(fan_in) + (ecn ? "_ecn" : "_droptail");
      row.scheme = config.scheme;
      row.metrics = result.metrics;
      row.requests = result.requests;
      row.completed = result.completed;
      row.p95_fct_ms = result.p95_fct_ms;
      row.ecn_marked = result.ecn_marked;
      rows.push_back(row);
      std::printf("  incast fan-in %2zu %-8s (%s): %zu/%zu done, p95 FCT %7.1f ms,"
                  " loss %5.2f%%, %llu marks\n",
                  fan_in, config.scheme.c_str(), ecn ? "ecn" : "droptail", result.completed,
                  result.requests, result.p95_fct_ms, 100.0 * result.metrics.loss_ratio,
                  static_cast<unsigned long long>(result.ecn_marked));
      std::fflush(stdout);
    }
  }

  // ---- Family 2: trace-driven links.
  const std::vector<std::string> trace_schemes =
      quick ? std::vector<std::string>{"cubic"}
            : std::vector<std::string>{"cubic", "bbr", "astraea"};
  const std::vector<std::pair<std::string, std::string>> captures = {
      {"cellular", traces_dir + "/cellular.trace"},
      {"satellite", traces_dir + "/satellite.trace"},
  };
  for (const auto& [name, path] : captures) {
    for (const std::string& scheme : trace_schemes) {
      TraceDrivenConfig config;
      config.trace_path = path;
      config.scheme = scheme;
      config.duration = quick ? Seconds(3.0) : Seconds(8.0);
      if (name == "satellite") {
        config.base_rtt = Milliseconds(600);
        config.buffer_bdp = 1.0;
        config.random_loss = 0.0074;
      }
      config.seed = 7;
      const TraceDrivenResult result = RunTraceDriven(config);
      FamilyRow row;
      row.family = "trace_driven";
      row.scenario = name;
      row.scheme = scheme;
      row.metrics = result.metrics;
      rows.push_back(row);
      std::printf("  trace %-9s %-8s: util %5.1f%%, p95 delay %7.1f ms, loss %5.2f%%\n",
                  name.c_str(), scheme.c_str(), 100.0 * result.metrics.utilization,
                  result.metrics.p95_delay_ms, 100.0 * result.metrics.loss_ratio);
      std::fflush(stdout);
    }
  }

  // ---- Family 3: adversarial churn + blasts.
  const std::vector<std::string> adv_schemes =
      quick ? std::vector<std::string>{"cubic"}
            : std::vector<std::string>{"cubic", "bbr", "astraea"};
  for (const std::string& scheme : adv_schemes) {
    AdversarialConfig config;
    config.scheme = scheme;
    config.duration = quick ? Seconds(4.0) : Seconds(10.0);
    config.seed = 11;
    const AdversarialResult result = RunAdversarial(config);
    FamilyRow row;
    row.family = "adversarial";
    row.scenario = "churn_blast";
    row.scheme = scheme;
    row.metrics = result.metrics;
    row.blast_share = result.blast_share;
    row.churn_flows = result.churn_flows;
    rows.push_back(row);
    std::printf("  adversarial %-8s: fg goodput %6.1f Mbps, jain %.3f, p95 delay %7.1f ms,"
                " blast share %4.1f%%, %zu churn flows\n",
                scheme.c_str(), result.metrics.goodput_mbps, result.metrics.jain,
                result.metrics.p95_delay_ms, 100.0 * result.blast_share, result.churn_flows);
    std::fflush(stdout);
  }

  // ---- Cross-scheme competition matrix (Fair-Aurora scoring).
  const std::vector<std::string> matrix_schemes =
      quick ? std::vector<std::string>{"cubic", "bbr"}
            : std::vector<std::string>{"newreno", "cubic", "bbr", "vivace", "astraea"};
  const TimeNs pair_duration = quick ? Seconds(3.0) : Seconds(8.0);
  // Self-competition baselines: what a flow of X gets against another X is
  // its fair-share demand (the harm denominator).
  std::map<std::string, double> baseline;
  for (const std::string& s : matrix_schemes) {
    const auto [x, y] = RunPair(s, s, pair_duration, 900);
    baseline[s] = (x + y) / 2.0;
    std::printf("  matrix baseline %-8s: %6.1f Mbps self-competition share\n", s.c_str(),
                baseline[s]);
    std::fflush(stdout);
  }
  std::vector<PairRow> pairs;
  for (size_t i = 0; i < matrix_schemes.size(); ++i) {
    for (size_t j = i + 1; j < matrix_schemes.size(); ++j) {
      const std::string& a = matrix_schemes[i];
      const std::string& b = matrix_schemes[j];
      const auto [thr_a, thr_b] = RunPair(a, b, pair_duration, 900);
      PairRow row;
      row.a = a;
      row.b = b;
      row.thr_a = thr_a;
      row.thr_b = thr_b;
      const std::vector<double> thr = {thr_a, thr_b};
      row.jain = JainIndex(thr);
      row.worst_flow_share = WorstFlowShare(thr);
      row.harm_a_on_b = HarmIndex(baseline[b], thr_b);
      row.harm_b_on_a = HarmIndex(baseline[a], thr_a);
      pairs.push_back(row);
      std::printf("  matrix %-8s vs %-8s: %6.1f / %6.1f Mbps, jain %.3f, worst %.2f,"
                  " harm %.2f/%.2f\n",
                  a.c_str(), b.c_str(), thr_a, thr_b, row.jain, row.worst_flow_share,
                  row.harm_a_on_b, row.harm_b_on_a);
      std::fflush(stdout);
    }
  }

  // ---- Worker invariance: every family's sharded aggregate must be
  // bit-identical at 1 and N workers (the PR-6 shard protocol).
  std::vector<DeterminismRow> determinism;
  bool determinism_ok = true;
  for (const UniverseFamily family :
       {UniverseFamily::kIncast, UniverseFamily::kTraceDriven, UniverseFamily::kAdversarial}) {
    ShardedUniverseConfig config;
    config.family = family;
    config.shards = quick ? 2 : 4;
    config.incast.fan_in = 8;
    config.incast.waves = 1;
    config.trace_driven.trace_path = traces_dir + "/cellular.trace";
    config.trace_driven.scheme = "cubic";
    config.trace_driven.duration = Seconds(1.0);
    config.adversarial.duration = Seconds(2.0);
    config.workers = 1;
    const ShardedRunResult serial = RunShardedUniverse(config);
    config.workers = ThreadPool::DefaultWorkerCount();
    const ShardedRunResult parallel = RunShardedUniverse(config);
    DeterminismRow row;
    row.family = UniverseFamilyName(family);
    row.match = serial.fingerprint == parallel.fingerprint &&
                serial.events_executed == parallel.events_executed;
    row.fingerprint = serial.fingerprint;
    determinism.push_back(row);
    determinism_ok = determinism_ok && row.match;
    std::printf("  determinism %-12s: %s (%016llx)\n", row.family.c_str(),
                row.match ? "bit-identical" : "DIVERGED",
                static_cast<unsigned long long>(row.fingerprint));
    std::fflush(stdout);
  }

  const uint64_t violations = invariants::ViolationCount() - violations_before;

  ConsoleTable table({"family", "scenario", "scheme", "util", "jain", "p95 ms", "loss"});
  for (const FamilyRow& row : rows) {
    table.AddRow({row.family, row.scenario, row.scheme,
                  ConsoleTable::Num(row.metrics.utilization, 3),
                  ConsoleTable::Num(row.metrics.jain, 3),
                  ConsoleTable::Num(row.metrics.p95_delay_ms, 1),
                  ConsoleTable::Num(row.metrics.loss_ratio, 4)});
  }
  table.Print();

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"quick\": %s,\n  \"families\": [\n", quick ? "true" : "false");
  for (size_t i = 0; i < rows.size(); ++i) {
    const FamilyRow& row = rows[i];
    std::fprintf(out,
                 "    {\"family\": \"%s\", \"scenario\": \"%s\", \"scheme\": \"%s\",\n"
                 "     \"utilization\": %.4f, \"jain\": %.4f, \"p95_delay_ms\": %.2f,"
                 " \"loss_ratio\": %.5f, \"goodput_mbps\": %.2f,\n"
                 "     \"requests\": %zu, \"completed\": %zu, \"p95_fct_ms\": %.2f,"
                 " \"ecn_marked\": %llu, \"blast_share\": %.4f, \"churn_flows\": %zu,\n"
                 "     \"fingerprint\": \"%016llx\"}%s\n",
                 row.family.c_str(), row.scenario.c_str(), row.scheme.c_str(),
                 row.metrics.utilization, row.metrics.jain, row.metrics.p95_delay_ms,
                 row.metrics.loss_ratio, row.metrics.goodput_mbps, row.requests, row.completed,
                 row.p95_fct_ms, static_cast<unsigned long long>(row.ecn_marked),
                 row.blast_share, row.churn_flows,
                 static_cast<unsigned long long>(row.metrics.fingerprint),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"competition\": {\n    \"baselines\": {");
  bool first = true;
  for (const auto& [scheme, mbps] : baseline) {
    std::fprintf(out, "%s\"%s\": %.2f", first ? "" : ", ", scheme.c_str(), mbps);
    first = false;
  }
  std::fprintf(out, "},\n    \"pairs\": [\n");
  for (size_t i = 0; i < pairs.size(); ++i) {
    const PairRow& row = pairs[i];
    std::fprintf(out,
                 "      {\"a\": \"%s\", \"b\": \"%s\", \"thr_a_mbps\": %.2f,"
                 " \"thr_b_mbps\": %.2f, \"jain\": %.4f, \"worst_flow_share\": %.4f,"
                 " \"harm_a_on_b\": %.4f, \"harm_b_on_a\": %.4f}%s\n",
                 row.a.c_str(), row.b.c_str(), row.thr_a, row.thr_b, row.jain,
                 row.worst_flow_share, row.harm_a_on_b, row.harm_b_on_a,
                 i + 1 < pairs.size() ? "," : "");
  }
  std::fprintf(out, "    ]\n  },\n  \"determinism\": [\n");
  for (size_t i = 0; i < determinism.size(); ++i) {
    const DeterminismRow& row = determinism[i];
    std::fprintf(out,
                 "    {\"family\": \"%s\", \"fingerprint_match\": %s,"
                 " \"fingerprint\": \"%016llx\"}%s\n",
                 row.family.c_str(), row.match ? "true" : "false",
                 static_cast<unsigned long long>(row.fingerprint),
                 i + 1 < determinism.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"invariant_violations\": %llu\n}\n",
               static_cast<unsigned long long>(violations));
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  if (violations > 0) {
    std::fprintf(stderr, "invariant violations observed: %llu\n",
                 static_cast<unsigned long long>(violations));
  }
  return (determinism_ok && violations == 0) ? 0 : 1;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
