// Overload + chaos benchmark for the inference-serving boundary.
//
// Three phases against a real InferenceServer:
//   A  calibrate: closed-loop clients saturate the server to measure its
//      serving capacity (req/s) and steady-state flush cost; the per-request
//      rpc timeout is derived from the flush cost so the shed threshold
//      (~27 batches of queue) sits below the client population on any
//      machine speed.
//   B  paced load at 1x / 2x / 4x capacity across many concurrent
//      synchronous clients (1000, --quick: 320), recording per-outcome
//      latency: served p50/p95/p99, shed fast-fail p50/p95, timeout and
//      deadline-violation counts. The acceptance criterion lives here: at
//      4x capacity, shed responses must resolve in <10% of the rpc timeout.
//   C  chaos: a supervised server under a seeded crash/corrupt/stall storm
//      with self-healing RemotePolicy clients — reconnect counts, fallback
//      decisions, and the max decision latency against the soak budget.
//
// Emits BENCH_serve_overload.json (path via --out) for CI assertions.

#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness/table.h"
#include "src/core/policy.h"
#include "src/ipc/shm_ring.h"
#include "src/nn/mlp.h"
#include "src/serve/inference_server.h"
#include "src/serve/remote_policy.h"
#include "src/serve/supervisor.h"
#include "src/util/chaos.h"
#include "src/util/metrics.h"
#include "src/util/rng.h"
#include "src/util/serialization.h"
#include "src/util/time.h"

namespace astraea {
namespace {

using serve::InferenceServer;
using serve::InferenceServerConfig;
using serve::ReconnectConfig;
using serve::RemotePolicy;
using serve::RequestOutcome;
using serve::RequestResult;
using serve::ServeClient;
using serve::ServeClientConfig;
using serve::Supervisor;
using serve::SupervisorConfig;

constexpr int kDim = 30;
constexpr double kFallbackValue = 2.0;  // outside [-1, 1]: unmistakably local

std::string UniquePath(const char* tag) {
  return "/tmp/astraea_bench_overload_" + std::to_string(getpid()) + "_" + tag;
}

std::string WriteModel(const std::string& path) {
  // Hidden layers sized so a max_batch flush costs a few milliseconds. That
  // does two things: the server is saturable by a realistic client count, and
  // the shed fast-fail budget (a fixed multiple of the flush cost, see the
  // rpc-timeout derivation) dwarfs client-thread scheduling noise even on a
  // single-core machine driving hundreds of client threads.
  Rng rng(7);
  const Mlp model({kDim, 768, 768, 1}, OutputActivation::kTanh, &rng);
  BinaryWriter writer(path);
  model.Save(&writer);
  writer.Flush();
  return path;
}

// Lift RLIMIT_NOFILE to its hard cap: each client costs a handful of fds
// (socket, memfd, doorbell dup) on each side of the boundary, and the default
// 1024 soft limit cannot hold 1000 clients in one process.
size_t RaiseFdLimit() {
  struct rlimit rl{};
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) {
    return 1024;
  }
  rl.rlim_cur = rl.rlim_max;
  setrlimit(RLIMIT_NOFILE, &rl);
  getrlimit(RLIMIT_NOFILE, &rl);
  return static_cast<size_t>(rl.rlim_cur);
}

double Percentile(std::vector<double> v, double q) {
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

class ConstantPolicy : public Policy {
 public:
  explicit ConstantPolicy(double value) : value_(value) {}
  double Act(const StateView&) const override { return value_; }
  std::string name() const override { return "constant"; }

 private:
  double value_;
};

struct Sample {
  TimeNs at;
  TimeNs dt;
  RequestOutcome outcome;
};

struct LoadPoint {
  double multiplier = 0.0;
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
  uint64_t attempts = 0;
  uint64_t served = 0;
  uint64_t shed = 0;
  uint64_t timeouts = 0;
  uint64_t errors = 0;
  uint64_t deadline_violations = 0;  // served latency > 1.5 * rpc_timeout
  double served_p50 = 0.0, served_p95 = 0.0, served_p99 = 0.0;
  double shed_p50 = 0.0, shed_p95 = 0.0;
};

// Paced open-loop-with-loss worker: one request per slot, skipping slots the
// previous (synchronous) request is still blocking through.
void LoadWorker(ServeClient* client, TimeNs start, TimeNs offset, TimeNs period, TimeNs until,
                uint64_t seed, std::vector<Sample>* out) {
  Rng rng(seed);
  std::vector<float> state(kDim);
  uint64_t slot = 0;
  while (true) {
    const TimeNs next = start + offset + static_cast<TimeNs>(slot) * period;
    if (next >= until) {
      return;
    }
    const TimeNs now = ipc::MonotonicNowNs();
    if (now < next) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(next - now));
    }
    for (float& v : state) {
      v = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
    }
    const TimeNs t0 = ipc::MonotonicNowNs();
    const RequestResult result = client->RequestDetailed(state);
    const TimeNs t1 = ipc::MonotonicNowNs();
    out->push_back(Sample{t0, t1 - t0, result.outcome});
    // Next slot strictly after the request resolved: at most one outstanding.
    slot = static_cast<uint64_t>((t1 - start - offset) / period) + 1;
  }
}

LoadPoint RunLoadPoint(std::vector<std::unique_ptr<ServeClient>>& clients, double multiplier,
                       double capacity_rps, TimeNs duration, TimeNs rpc_timeout) {
  const size_t n = clients.size();
  const double offered = multiplier * capacity_rps;
  const TimeNs period = static_cast<TimeNs>(static_cast<double>(n) * 1e9 / offered);
  std::vector<std::vector<Sample>> samples(n);
  const TimeNs start = ipc::MonotonicNowNs();
  const TimeNs until = start + duration;
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    samples[i].reserve(static_cast<size_t>(duration / period) + 4);
    const TimeNs offset = static_cast<TimeNs>(i) * period / static_cast<TimeNs>(n);
    threads.emplace_back(LoadWorker, clients[i].get(), start, offset, period, until,
                         9000 + static_cast<uint64_t>(i), &samples[i]);
  }
  for (std::thread& t : threads) {
    t.join();
  }

  // Drop the ramp: the queue (and therefore the shed regime) needs a moment
  // to reach steady state after the load step.
  const TimeNs cutoff = start + duration / 5;
  LoadPoint point;
  point.multiplier = multiplier;
  point.offered_rps = offered;
  std::vector<double> served_lat;
  std::vector<double> shed_lat;
  for (const auto& vec : samples) {
    for (const Sample& s : vec) {
      if (s.at < cutoff) {
        continue;
      }
      ++point.attempts;
      switch (s.outcome) {
        case RequestOutcome::kOk:
          ++point.served;
          served_lat.push_back(ToSeconds(s.dt));
          if (s.dt > rpc_timeout + rpc_timeout / 2) {
            ++point.deadline_violations;
          }
          break;
        case RequestOutcome::kRejected:
          ++point.shed;
          shed_lat.push_back(ToSeconds(s.dt));
          break;
        case RequestOutcome::kTimeout:
          ++point.timeouts;
          break;
        default:
          ++point.errors;
          break;
      }
    }
  }
  const double window_s = ToSeconds(until - cutoff);
  point.achieved_rps = window_s > 0 ? static_cast<double>(point.attempts) / window_s : 0.0;
  point.served_p50 = Percentile(served_lat, 0.50);
  point.served_p95 = Percentile(served_lat, 0.95);
  point.served_p99 = Percentile(served_lat, 0.99);
  point.shed_p50 = Percentile(shed_lat, 0.50);
  point.shed_p95 = Percentile(shed_lat, 0.95);
  return point;
}

struct ChaosResult {
  uint64_t restarts = 0;
  uint64_t reconnects = 0;
  uint64_t decisions = 0;
  uint64_t fallback_decisions = 0;
  uint64_t budget_violations = 0;
  double max_decision_s = 0.0;
  double budget_s = 0.0;
  bool all_reattached = false;
};

ChaosResult RunChaosPhase(const std::string& model_path, TimeNs storm_duration,
                          size_t max_batch) {
  const std::string socket_path = UniquePath("chaos.sock");
  const chaos::ChaosSchedule storm =
      chaos::ChaosSchedule::RandomServeStorm(42, storm_duration, Milliseconds(400));

  SupervisorConfig sup_config;
  sup_config.restart_backoff = {Milliseconds(2), Milliseconds(100), 2.0, 0.25};
  sup_config.healthy_uptime = Seconds(1.0);
  sup_config.seed = 77;
  Supervisor supervisor(sup_config, [&](TimeNs elapsed) {
    try {
      InferenceServerConfig config;
      config.socket_path = socket_path;
      config.model_path = model_path;
      config.max_batch = max_batch;
      InferenceServer server(config);
      chaos::ChaosRunner runner(storm, elapsed);
      server.Run();  // exits via chaos crash (_exit) or supervisor SIGTERM
    } catch (const std::exception&) {
      return 1;
    }
    return 0;
  });
  std::thread sup_thread([&] { supervisor.Run(); });

  const TimeNs rpc_timeout = Milliseconds(20);
  const TimeNs connect_timeout = Milliseconds(150);
  // One decision may pay a request (<= rpc_timeout) plus one reconnect probe
  // (<= connect_timeout); the slack absorbs scheduler noise on loaded hosts.
  const TimeNs budget = rpc_timeout + connect_timeout + Milliseconds(500);

  constexpr size_t kClients = 8;
  std::vector<std::unique_ptr<RemotePolicy>> policies;
  for (size_t c = 0; c < kClients; ++c) {
    ReconnectConfig reconnect;
    reconnect.client.socket_path = socket_path;
    reconnect.client.rpc_timeout = rpc_timeout;
    reconnect.client.connect_timeout = connect_timeout;
    reconnect.backoff = {Milliseconds(2), Milliseconds(100), 2.0, 0.25};
    reconnect.seed = 900 + static_cast<uint64_t>(c);
    policies.push_back(std::make_unique<RemotePolicy>(
        nullptr, std::make_shared<ConstantPolicy>(kFallbackValue), reconnect));
  }

  ChaosResult result;
  result.budget_s = ToSeconds(budget);
  std::atomic<uint64_t> decisions{0};
  std::atomic<uint64_t> fallbacks{0};
  std::atomic<uint64_t> violations{0};
  std::atomic<TimeNs> max_dt{0};
  const TimeNs start = ipc::MonotonicNowNs();
  const TimeNs until = start + storm_duration + Seconds(1.0);
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(500 + static_cast<uint64_t>(c));
      std::vector<float> state(kDim);
      StateView view;
      view.state_vector = state;
      while (ipc::MonotonicNowNs() < until) {
        for (float& v : state) {
          v = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
        }
        const TimeNs t0 = ipc::MonotonicNowNs();
        const double action = policies[c]->Act(view);
        const TimeNs dt = ipc::MonotonicNowNs() - t0;
        decisions.fetch_add(1);
        if (action == kFallbackValue) {
          fallbacks.fetch_add(1);
        }
        if (dt > budget) {
          violations.fetch_add(1);
        }
        TimeNs seen = max_dt.load();
        while (dt > seen && !max_dt.compare_exchange_weak(seen, dt)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  // Storm over, server stays up: every policy must settle back to served
  // decisions (the re-attach half of the state machine).
  const TimeNs settle_deadline = ipc::MonotonicNowNs() + Seconds(15.0);
  size_t attached = 0;
  while (attached < kClients && ipc::MonotonicNowNs() < settle_deadline) {
    attached = 0;
    std::vector<float> state(kDim, 0.1f);
    StateView view;
    view.state_vector = state;
    for (auto& policy : policies) {
      if (policy->Act(view) != kFallbackValue) {
        ++attached;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  result.all_reattached = attached == kClients;

  supervisor.Stop();
  sup_thread.join();
  result.restarts = supervisor.restarts();
  for (auto& policy : policies) {
    result.reconnects += policy->reconnects();
  }
  result.decisions = decisions.load();
  result.fallback_decisions = fallbacks.load();
  result.budget_violations = violations.load();
  result.max_decision_s = ToSeconds(max_dt.load());
  std::remove(socket_path.c_str());
  return result;
}

int Main(int argc, char** argv) {
  PrintBenchHeader("serve_overload",
                   "serving boundary under overload (admission shed) and chaos (self-healing)");
  const bool quick = QuickMode(argc, argv);
  std::string out_path = "BENCH_serve_overload.json";
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      out_path = argv[i + 1];
    }
  }

  // clients >> 27 * max_batch so the shed threshold (~27 queued batches, set
  // by the rpc-timeout derivation and shed margin below) is reachable by the
  // synchronous client population.
  size_t n_clients = quick ? 320 : 1000;
  // Same batch bound in both modes: a larger batch amortizes the per-row
  // inference cost and pushes capacity (and with it the 4x offered rate)
  // past what a small machine can generate while also serving.
  const size_t max_batch = 8;
  const TimeNs point_duration = quick ? Seconds(1.0) : Seconds(2.0);

  const size_t fd_limit = RaiseFdLimit();
  const size_t fd_budget = fd_limit > 256 ? (fd_limit - 256) / 6 : 16;
  if (n_clients > fd_budget) {
    std::printf("fd limit %zu: reducing clients %zu -> %zu\n", fd_limit, n_clients, fd_budget);
    n_clients = fd_budget;
  }

  const std::string model_path = WriteModel(UniquePath("actor.ckpt"));
  const std::string socket_path = UniquePath("load.sock");

  InferenceServerConfig server_config;
  server_config.socket_path = socket_path;
  server_config.model_path = model_path;
  server_config.max_batch = max_batch;
  // Bias admission toward shedding: a request projected to land within 2/3 of
  // its deadline is admitted, anything tighter fast-fails. Without the bias,
  // requests admitted right at the boundary straggle past their deadline and
  // burn the client's whole rpc timeout instead.
  server_config.shed_margin = 1.5;
  auto server = std::make_unique<InferenceServer>(server_config);
  std::thread server_thread([&] {
    // On a small machine the load generators outnumber the serving thread by
    // three orders of magnitude; without a scheduling edge the server starves
    // at >1x offered load and even sheds stall. Needs root / CAP_SYS_NICE;
    // silently degrades without.
    setpriority(PRIO_PROCESS, static_cast<id_t>(syscall(SYS_gettid)), -10);
    server->Run();
  });

  // --- Phase A: capacity calibration (closed loop, batch-filling). ---
  const TimeNs calib_duration = quick ? Seconds(0.5) : Seconds(1.0);
  std::atomic<uint64_t> calib_ok{0};
  {
    std::vector<std::thread> threads;
    for (size_t i = 0; i < max_batch; ++i) {
      threads.emplace_back([&, i] {
        ServeClientConfig config;
        config.socket_path = socket_path;
        config.rpc_timeout = Milliseconds(200);
        auto client = ServeClient::Connect(config);
        if (!client) {
          return;
        }
        Rng rng(100 + static_cast<uint64_t>(i));
        std::vector<float> state(kDim);
        const TimeNs until = ipc::MonotonicNowNs() + calib_duration;
        while (ipc::MonotonicNowNs() < until) {
          for (float& v : state) {
            v = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
          }
          if (client->RequestDetailed(state).ok()) {
            calib_ok.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }
  const double capacity_rps =
      static_cast<double>(calib_ok.load()) / ToSeconds(calib_duration);
  double flush_est_s =
      MetricsRegistry::Global().GetGauge("serve.est_batch_latency_seconds").Value();
  if (flush_est_s <= 0.0) {
    flush_est_s = 1e-3;
  }
  // Deadline = 40 flushes of queue: the shed threshold lands at ~40/1.5 = 27
  // batches (the server sheds with margin 1.5) regardless of machine speed —
  // far below the client population — while one in-flight flush (the shed
  // response's typical wait) stays well under 10% of the timeout.
  const TimeNs rpc_timeout = std::clamp<TimeNs>(
      static_cast<TimeNs>(40.0 * flush_est_s * 1e9), Milliseconds(1), Milliseconds(250));
  std::printf("capacity %.0f req/s, flush est %.3f ms, rpc timeout %.1f ms, %zu clients\n",
              capacity_rps, flush_est_s * 1e3, ToSeconds(rpc_timeout) * 1e3, n_clients);

  // --- Phase B: paced load at 1x / 2x / 4x capacity. ---
  std::vector<std::unique_ptr<ServeClient>> clients(n_clients);
  {
    std::vector<std::thread> connectors;
    const size_t lanes = 8;
    for (size_t lane = 0; lane < lanes; ++lane) {
      connectors.emplace_back([&, lane] {
        ServeClientConfig config;
        config.socket_path = socket_path;
        config.rpc_timeout = rpc_timeout;
        for (size_t i = lane; i < n_clients; i += lanes) {
          clients[i] = ServeClient::Connect(config);
        }
      });
    }
    for (std::thread& t : connectors) {
      t.join();
    }
  }
  size_t attached = 0;
  for (auto& client : clients) {
    attached += client ? 1 : 0;
  }
  if (attached < n_clients) {
    std::printf("WARNING: only %zu/%zu clients attached\n", attached, n_clients);
    clients.erase(std::remove_if(clients.begin(), clients.end(),
                                 [](const std::unique_ptr<ServeClient>& c) { return !c; }),
                  clients.end());
  }

  ConsoleTable table({"load", "offered rps", "served", "shed", "timeout", "served p95 (ms)",
                      "shed p95 (ms)"});
  std::vector<LoadPoint> points;
  for (const double mult : {1.0, 2.0, 4.0}) {
    points.push_back(RunLoadPoint(clients, mult, capacity_rps, point_duration, rpc_timeout));
    const LoadPoint& p = points.back();
    table.AddRow({ConsoleTable::Num(p.multiplier, 0) + "x", ConsoleTable::Num(p.offered_rps, 0),
                  std::to_string(p.served), std::to_string(p.shed), std::to_string(p.timeouts),
                  ConsoleTable::Num(p.served_p95 * 1e3, 2),
                  ConsoleTable::Num(p.shed_p95 * 1e3, 2)});
  }
  table.Print();

  clients.clear();
  server->Stop();
  server_thread.join();
  server.reset();

  // --- Phase C: supervised crash storm with self-healing clients. ---
  const ChaosResult chaos = RunChaosPhase(model_path, quick ? Seconds(2.0) : Seconds(3.0),
                                          max_batch);
  std::printf("chaos: %llu restarts, %llu reconnects, %llu/%llu fallback decisions, "
              "max decision %.1f ms (budget %.0f ms), %llu budget violations%s\n",
              static_cast<unsigned long long>(chaos.restarts),
              static_cast<unsigned long long>(chaos.reconnects),
              static_cast<unsigned long long>(chaos.fallback_decisions),
              static_cast<unsigned long long>(chaos.decisions), chaos.max_decision_s * 1e3,
              chaos.budget_s * 1e3, static_cast<unsigned long long>(chaos.budget_violations),
              chaos.all_reattached ? "" : " (NOT all re-attached)");

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"serve_overload\",\n  \"quick\": %s,\n",
               quick ? "true" : "false");
  std::fprintf(out, "  \"clients\": %zu,\n  \"max_batch\": %zu,\n", attached, max_batch);
  std::fprintf(out, "  \"capacity_rps\": %.1f,\n  \"flush_est_s\": %.6f,\n", capacity_rps,
               flush_est_s);
  std::fprintf(out, "  \"rpc_timeout_s\": %.6f,\n  \"load_points\": [\n",
               ToSeconds(rpc_timeout));
  for (size_t i = 0; i < points.size(); ++i) {
    const LoadPoint& p = points[i];
    std::fprintf(out,
                 "    {\"multiplier\": %.0f, \"offered_rps\": %.1f, \"achieved_rps\": %.1f,\n"
                 "     \"attempts\": %llu, \"served\": %llu, \"shed\": %llu, "
                 "\"timeouts\": %llu, \"errors\": %llu,\n"
                 "     \"deadline_violations\": %llu,\n"
                 "     \"served_latency_s\": {\"p50\": %.6f, \"p95\": %.6f, \"p99\": %.6f},\n"
                 "     \"shed_latency_s\": {\"p50\": %.6f, \"p95\": %.6f}}%s\n",
                 p.multiplier, p.offered_rps, p.achieved_rps,
                 static_cast<unsigned long long>(p.attempts),
                 static_cast<unsigned long long>(p.served),
                 static_cast<unsigned long long>(p.shed),
                 static_cast<unsigned long long>(p.timeouts),
                 static_cast<unsigned long long>(p.errors),
                 static_cast<unsigned long long>(p.deadline_violations), p.served_p50,
                 p.served_p95, p.served_p99, p.shed_p50, p.shed_p95,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"chaos\": {\"restarts\": %llu, \"reconnects\": %llu, "
               "\"decisions\": %llu, \"fallback_decisions\": %llu,\n"
               "    \"budget_violations\": %llu, \"max_decision_s\": %.6f, "
               "\"decision_budget_s\": %.6f, \"all_reattached\": %s}\n}\n",
               static_cast<unsigned long long>(chaos.restarts),
               static_cast<unsigned long long>(chaos.reconnects),
               static_cast<unsigned long long>(chaos.decisions),
               static_cast<unsigned long long>(chaos.fallback_decisions),
               static_cast<unsigned long long>(chaos.budget_violations), chaos.max_decision_s,
               chaos.budget_s, chaos.all_reattached ? "true" : "false");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());

  std::remove(model_path.c_str());
  std::remove(socket_path.c_str());
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
