// Million-flow simulator-core scaling. Two parts:
//
//  1. Scheduler microbench: the in-tree calendar EventQueue against the
//     original binary-heap scheduler (bench/harness/heap_event_queue.h) on a
//     sim-shaped timer workload — per-flow self-rescheduling ack timers, and
//     a variant where every ack also cancels and re-arms the flow's RTO timer
//     (exactly what Sender does). Both queues run the identical deterministic
//     event sequence; a digest over the first `target` firings cross-checks
//     that the speedup is not a behaviour change. Slow configurations are
//     wall-clock capped and reported as such.
//
//  2. End-to-end sharded scenarios: RunShardedDumbbell at 1k/10k/100k/1M
//     total flows (cubic, independent bottlenecks), reporting events/sec and
//     flow-seconds/sec, plus a 1-vs-N-worker fingerprint check proving the
//     sharded aggregate is worker-count invariant.
//
// Prints a table and emits BENCH_sim_scale.json (--out=PATH overrides).
// `--quick` restricts both parts to the 1k/10k sizes for CI smoke.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness/heap_event_queue.h"
#include "bench/harness/scenario.h"
#include "bench/harness/table.h"
#include "src/sim/event_queue.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace astraea {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

uint64_t MixDigest(uint64_t h, uint64_t v) {
  return h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
}

// Per-flow timer churn mirroring the sender: an ack-clocked timer firing
// every ~[50us, 2ms] (deterministic per-flow LCG), and in churn mode an RTO
// timer at +300ms that every firing cancels and re-arms — so cancelled
// entries dominate, which is precisely where the heap's linear cancel scan
// collapses and the calendar queue's pooled O(1) Cancel does not.
template <typename Queue>
class TimerWorkload {
 public:
  TimerWorkload(size_t flows, uint64_t digest_events, bool rto_churn)
      : digest_events_(digest_events), rto_churn_(rto_churn), prng_(flows), rto_(flows, 0) {
    for (size_t i = 0; i < flows; ++i) {
      prng_[i] = Rng::DeriveSeed(0xBE9C5CA1EULL, i);
      ScheduleAck(i);
      if (rto_churn_) {
        rto_[i] = queue_.Schedule(queue_.now() + kRtoDelay, [] {});
      }
    }
  }

  Queue& queue() { return queue_; }
  uint64_t digest() const { return digest_; }

 private:
  static constexpr TimeNs kRtoDelay = Milliseconds(300);

  void ScheduleAck(size_t flow) {
    queue_.ScheduleAfter(NextDelay(flow), [this, flow] { Fire(flow); });
  }

  void Fire(size_t flow) {
    if (fires_ < digest_events_) {
      digest_ = MixDigest(digest_, (static_cast<uint64_t>(queue_.now()) << 8) ^ flow);
    }
    ++fires_;
    if (rto_churn_) {
      queue_.Cancel(rto_[flow]);
      rto_[flow] = queue_.ScheduleAfter(kRtoDelay, [] {});
    }
    ScheduleAck(flow);
  }

  TimeNs NextDelay(size_t flow) {
    uint64_t& x = prng_[flow];
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    return Microseconds(50) + static_cast<TimeNs>((x >> 33) % 1'950'000);
  }

  Queue queue_;
  const uint64_t digest_events_;
  const bool rto_churn_;
  std::vector<uint64_t> prng_;
  std::vector<uint64_t> rto_;
  uint64_t fires_ = 0;
  uint64_t digest_ = 0;
};

struct SchedulerRun {
  uint64_t events = 0;
  double seconds = 0.0;
  double events_per_sec = 0.0;
  bool capped = false;       // hit the wall-clock cap before `target` events
  uint64_t digest = 0;
};

template <typename Queue>
SchedulerRun DriveScheduler(size_t flows, uint64_t target, double wall_cap_s,
                            bool rto_churn) {
  TimerWorkload<Queue> workload(flows, target, rto_churn);
  Queue& q = workload.queue();
  const auto start = Clock::now();
  while (q.executed() < target) {
    q.RunUntil(q.now() + Milliseconds(1));
    if (SecondsSince(start) > wall_cap_s && q.executed() < target) {
      break;
    }
  }
  SchedulerRun run;
  run.seconds = SecondsSince(start);
  run.events = q.executed();
  run.events_per_sec = static_cast<double>(run.events) / run.seconds;
  run.capped = run.events < target;
  run.digest = workload.digest();
  return run;
}

struct SchedulerRow {
  size_t flows = 0;
  const char* workload = nullptr;
  SchedulerRun calendar;
  SchedulerRun seed_heap;
  double speedup = 0.0;
  bool digest_match = false;  // only meaningful when neither run was capped
};

struct EndToEndRow {
  size_t total_flows = 0;
  size_t shards = 0;
  size_t flows_per_shard = 0;
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;
  uint64_t events = 0;
  double events_per_sec = 0.0;
  double flow_seconds_per_sec = 0.0;
  size_t max_packet_slots = 0;
  uint64_t fingerprint = 0;
};

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_sim_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }
  const bool quick = QuickMode(argc, argv);
  PrintBenchHeader("SimScale",
                   "Calendar event queue vs seed heap; sharded million-flow scenarios");

  // ---- Part 1: scheduler microbench.
  const std::vector<size_t> sched_sizes =
      quick ? std::vector<size_t>{1'000, 10'000}
            : std::vector<size_t>{1'000, 10'000, 100'000, 1'000'000};
  const double wall_cap_s = quick ? 5.0 : 10.0;
  std::vector<SchedulerRow> sched_rows;
  for (const bool churn : {true, false}) {
    for (const size_t flows : sched_sizes) {
      // Enough events for a stable rate without dwarfing setup; ~2 ack
      // rounds per flow at the largest sizes.
      const uint64_t target =
          std::max<uint64_t>(200'000, std::min<uint64_t>(20 * flows, 2'000'000));
      SchedulerRow row;
      row.flows = flows;
      row.workload = churn ? "rto_churn" : "steady";
      row.calendar = DriveScheduler<EventQueue>(flows, target, wall_cap_s, churn);
      row.seed_heap = DriveScheduler<SeedHeapEventQueue>(flows, target, wall_cap_s, churn);
      row.speedup = row.calendar.events_per_sec / row.seed_heap.events_per_sec;
      row.digest_match = !row.calendar.capped && !row.seed_heap.capped &&
                         row.calendar.digest == row.seed_heap.digest;
      sched_rows.push_back(row);
      std::printf("  scheduler %-9s %8zu flows: calendar %10.0f ev/s, seed heap %10.0f ev/s%s"
                  " (%.1fx)%s\n",
                  row.workload, flows, row.calendar.events_per_sec,
                  row.seed_heap.events_per_sec, row.seed_heap.capped ? " [capped]" : "",
                  row.speedup,
                  row.digest_match ? "" : (row.seed_heap.capped || row.calendar.capped
                                               ? ""
                                               : "  DIGEST MISMATCH"));
      std::fflush(stdout);
    }
  }

  // ---- Part 2: end-to-end sharded scenarios.
  struct Shape {
    size_t total, shards, per_shard;
    double sim_seconds;
  };
  const std::vector<Shape> shapes =
      quick ? std::vector<Shape>{{1'000, 10, 100, 0.5}, {10'000, 100, 100, 0.2}}
            : std::vector<Shape>{{1'000, 10, 100, 2.0},
                                 {10'000, 100, 100, 1.0},
                                 {100'000, 1'000, 100, 0.5},
                                 {1'000'000, 10'000, 100, 0.2}};
  std::vector<EndToEndRow> e2e_rows;
  for (const Shape& shape : shapes) {
    ShardedDumbbellConfig config;
    config.scheme = "cubic";
    config.shards = shape.shards;
    config.flows_per_shard = shape.per_shard;
    config.flow_duration = Seconds(shape.sim_seconds);
    config.workers = ThreadPool::DefaultWorkerCount();
    const auto start = Clock::now();
    const ShardedRunResult result = RunShardedDumbbell(config);
    EndToEndRow row;
    row.total_flows = shape.total;
    row.shards = shape.shards;
    row.flows_per_shard = shape.per_shard;
    row.sim_seconds = shape.sim_seconds;
    row.wall_seconds = SecondsSince(start);
    row.events = result.events_executed;
    row.events_per_sec = static_cast<double>(row.events) / row.wall_seconds;
    row.flow_seconds_per_sec = result.flow_seconds / row.wall_seconds;
    row.max_packet_slots = result.max_packet_slots;
    row.fingerprint = result.fingerprint;
    e2e_rows.push_back(row);
    std::printf("  end-to-end %8zu flows (%5zu shards x %zu): %10.0f ev/s, %8.1f"
                " flow-s/s, max pool %zu slots\n",
                row.total_flows, row.shards, row.flows_per_shard, row.events_per_sec,
                row.flow_seconds_per_sec, row.max_packet_slots);
    std::fflush(stdout);
  }

  // ---- Worker-count invariance: the sharded aggregate must be bit-identical
  // whether shards run serially or across the pool.
  ShardedDumbbellConfig det_config;
  det_config.scheme = "cubic";
  det_config.shards = 8;
  det_config.flows_per_shard = 20;
  det_config.flow_duration = Seconds(0.3);
  det_config.workers = 1;
  const ShardedRunResult serial = RunShardedDumbbell(det_config);
  det_config.workers = 4;
  const ShardedRunResult parallel = RunShardedDumbbell(det_config);
  const bool determinism_ok = serial.fingerprint == parallel.fingerprint &&
                              serial.events_executed == parallel.events_executed &&
                              serial.bytes_acked == parallel.bytes_acked;

  ConsoleTable table({"metric", "value"});
  for (const SchedulerRow& row : sched_rows) {
    table.AddRow({"sched " + std::string(row.workload) + " " + std::to_string(row.flows) +
                      " flows speedup",
                  ConsoleTable::Num(row.speedup, 1) +
                      (row.seed_heap.capped ? " (heap capped)" : "")});
  }
  for (const EndToEndRow& row : e2e_rows) {
    table.AddRow({"e2e " + std::to_string(row.total_flows) + " flows (Mev/s)",
                  ConsoleTable::Num(row.events_per_sec / 1e6)});
  }
  table.AddRow({"1-vs-4-worker shard aggregate", determinism_ok ? "bit-identical" : "DIVERGED"});
  table.Print();

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"quick\": %s,\n  \"scheduler\": [\n", quick ? "true" : "false");
  for (size_t i = 0; i < sched_rows.size(); ++i) {
    const SchedulerRow& row = sched_rows[i];
    std::fprintf(
        out,
        "    {\"flows\": %zu, \"workload\": \"%s\",\n"
        "     \"calendar\": {\"events\": %llu, \"seconds\": %.3f, \"events_per_sec\": %.0f,"
        " \"capped\": %s},\n"
        "     \"seed_heap\": {\"events\": %llu, \"seconds\": %.3f, \"events_per_sec\": %.0f,"
        " \"capped\": %s},\n"
        "     \"speedup\": %.2f, \"digest_match\": %s}%s\n",
        row.flows, row.workload, static_cast<unsigned long long>(row.calendar.events),
        row.calendar.seconds, row.calendar.events_per_sec,
        row.calendar.capped ? "true" : "false",
        static_cast<unsigned long long>(row.seed_heap.events), row.seed_heap.seconds,
        row.seed_heap.events_per_sec, row.seed_heap.capped ? "true" : "false", row.speedup,
        row.digest_match ? "true" : "false", i + 1 < sched_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"end_to_end\": [\n");
  for (size_t i = 0; i < e2e_rows.size(); ++i) {
    const EndToEndRow& row = e2e_rows[i];
    std::fprintf(out,
                 "    {\"flows\": %zu, \"shards\": %zu, \"flows_per_shard\": %zu,"
                 " \"sim_seconds_per_flow\": %.2f,\n"
                 "     \"events\": %llu, \"wall_seconds\": %.3f, \"events_per_sec\": %.0f,"
                 " \"flow_seconds_per_sec\": %.1f,\n"
                 "     \"max_packet_pool_slots\": %zu, \"fingerprint\": \"%016llx\"}%s\n",
                 row.total_flows, row.shards, row.flows_per_shard, row.sim_seconds,
                 static_cast<unsigned long long>(row.events), row.wall_seconds,
                 row.events_per_sec, row.flow_seconds_per_sec, row.max_packet_slots,
                 static_cast<unsigned long long>(row.fingerprint),
                 i + 1 < e2e_rows.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"determinism\": {\"shards\": 8, \"flows_per_shard\": 20,"
               " \"workers_compared\": [1, 4],\n"
               "    \"fingerprint_match\": %s, \"fingerprint\": \"%016llx\"}\n}\n",
               determinism_ok ? "true" : "false",
               static_cast<unsigned long long>(serial.fingerprint));
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  return determinism_ok ? 0 : 1;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
