// Table 1 — qualitative comparison of learning-based CC algorithms.
//
// The paper's matrix (fairness / fast convergence / stability) is derived
// here from measurements in the §5.1.1 scenario rather than asserted:
//   fairness        = average Jain index > 0.9
//   fast convergence = mean convergence time < 2 s
//   stability       = post-convergence throughput stddev < 2 Mbps

#include <cstdio>

#include "bench/harness/experiments.h"
#include "bench/harness/table.h"

namespace astraea {
namespace {

int Main(int argc, char** argv) {
  PrintBenchHeader("Table 1",
                   "Property matrix for learning-based schemes, derived from the Fig. 6 "
                   "scenario (100 Mbps / 30 ms / 1 BDP, 3 staggered flows)");
  StaggeredConfig config = DefaultStaggeredConfig();
  if (QuickMode(argc, argv)) {
    config.start_interval = Seconds(15.0);
    config.flow_duration = Seconds(45.0);
    config.until = Seconds(75.0);
  }
  const int reps = BenchReps(2);

  // Scheme x rep points all run concurrently: the outer map fans out schemes
  // and each summary fans its reps across the same machine (workers = 1 inside
  // keeps the pool from oversubscribing).
  const std::vector<const char*> schemes = {"aurora", "vivace", "orca", "astraea"};
  const auto summaries = ParallelMap(schemes.size(), [&](size_t i) {
    return MeasureStaggeredConvergence(schemes[i], config, reps, 0.10, /*workers=*/1);
  });

  ConsoleTable table({"algorithm", "fairness", "fast convergence", "stability", "jain",
                      "conv (s)", "stddev (Mbps)"});
  for (size_t i = 0; i < schemes.size(); ++i) {
    const char* scheme = schemes[i];
    const SchemeConvergenceSummary& s = summaries[i];
    const bool fair = s.avg_jain > 0.9;
    const bool fast = s.avg_convergence_s >= 0 && s.avg_convergence_s < 2.0 &&
                      s.converged_events * 2 >= s.total_events;
    const bool stable = s.avg_stability_mbps >= 0 && s.avg_stability_mbps < 2.0;
    table.AddRow({scheme, fair ? "yes" : "no", fast ? "yes" : "no", stable ? "yes" : "no",
                  ConsoleTable::Num(s.avg_jain, 3),
                  s.avg_convergence_s < 0 ? "n/a" : ConsoleTable::Num(s.avg_convergence_s),
                  s.avg_stability_mbps < 0 ? "n/a" : ConsoleTable::Num(s.avg_stability_mbps)});
  }
  table.Print();
  std::printf("\npaper: Aurora none; Vivace fairness only; Orca fairness+fast; Astraea all\n");
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
