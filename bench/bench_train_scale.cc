// Vectorized-training scaling (DESIGN.md §14 acceptance): the same training
// run — identical seed, envs, episodes — executed at 1, 2 and 4 workers must
// produce a bit-identical final state fingerprint, and on a multi-core host
// the 4-worker run must collect env steps at least 3x faster than serial.
//
// The fingerprint check is unconditional (it holds on any host, including
// nproc=1 CI sandboxes). The speedup assertion only applies when the host
// actually has >= 4 cores, mirroring the bench_sim_scale / serve-overload
// precedent: a single-core box time-slices the workers and measures nothing.
//
// Prints a table and emits BENCH_train_scale.json (--out=PATH overrides).
// --quick shrinks episodes for CI smoke. Exit is nonzero iff fingerprints
// diverge — the determinism claim, not the throughput one, is the hard gate.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness/table.h"
#include "src/train/vectorized_trainer.h"

namespace astraea {
namespace {

using Clock = std::chrono::steady_clock;

struct ScaleRun {
  size_t workers = 0;
  uint64_t env_steps = 0;
  double wall_s = 0.0;
  double steps_per_s = 0.0;
  uint32_t fingerprint = 0;
};

VectorizedTrainerConfig BenchConfig(int episodes) {
  VectorizedTrainerConfig config;
  config.seed = 11;
  config.num_envs = 4;
  config.replay_capacity = 50'000;
  config.episode_length = Seconds(4.0);
  config.exploration_decay_episodes = episodes;
  // Short model-update rounds: many barriers per episode, so the interleave
  // and snapshot machinery is exercised, not amortized away.
  config.hp.model_update_interval = Milliseconds(500);
  config.hp.model_update_steps = 2;
  config.hp.batch_size = 64;
  // Narrow, low-rate links keep per-step simulation cost small and uniform.
  config.domain.base.bandwidth_lo = Mbps(12);
  config.domain.base.bandwidth_hi = Mbps(24);
  config.domain.base.rtt_lo = Milliseconds(20);
  config.domain.base.rtt_hi = Milliseconds(50);
  config.domain.base.buffer_bdp_lo = 0.5;
  config.domain.base.buffer_bdp_hi = 2.0;
  return config;
}

ScaleRun RunAt(size_t workers, int episodes) {
  VectorizedTrainerConfig config = BenchConfig(episodes);
  config.workers = workers;
  VectorizedTrainer trainer(config);
  const auto start = Clock::now();
  trainer.Train(episodes, [](const EpisodeDiagnostics&) {});
  ScaleRun run;
  run.workers = workers;
  run.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  run.env_steps = trainer.total_env_steps();
  run.steps_per_s = static_cast<double>(run.env_steps) / run.wall_s;
  run.fingerprint = trainer.StateFingerprint();
  return run;
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_train_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }
  const bool quick = QuickMode(argc, argv);
  const int episodes = quick ? 2 : 6;
  const unsigned host_cores = std::thread::hardware_concurrency();
  PrintBenchHeader("TrainScale",
                   "Vectorized actor/learner scaling and worker-count bit-identity");
  std::printf("  host cores: %u, envs: 4, episodes: %d\n", host_cores, episodes);

  std::vector<ScaleRun> runs;
  for (const size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
    runs.push_back(RunAt(workers, episodes));
    const ScaleRun& run = runs.back();
    std::printf("  workers %zu: %8llu env steps in %6.2fs (%8.0f steps/s), fingerprint %08x\n",
                run.workers, static_cast<unsigned long long>(run.env_steps), run.wall_s,
                run.steps_per_s, run.fingerprint);
    std::fflush(stdout);
  }

  bool fingerprints_identical = true;
  for (const ScaleRun& run : runs) {
    fingerprints_identical &= run.fingerprint == runs.front().fingerprint &&
                              run.env_steps == runs.front().env_steps;
  }
  const double speedup = runs.back().steps_per_s / runs.front().steps_per_s;
  const bool speedup_applicable = host_cores >= 4;
  const bool speedup_ok = !speedup_applicable || speedup >= 3.0;

  ConsoleTable table({"metric", "value"});
  for (const ScaleRun& run : runs) {
    table.AddRow({"steps/s @ " + std::to_string(run.workers) + " workers",
                  ConsoleTable::Num(run.steps_per_s, 0)});
  }
  table.AddRow({"4-vs-1 worker speedup", ConsoleTable::Num(speedup, 2) +
                                             (speedup_applicable ? "" : " (host < 4 cores)")});
  table.AddRow({"1/2/4-worker state", fingerprints_identical ? "bit-identical" : "DIVERGED"});
  table.Print();

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"quick\": %s,\n  \"host_cores\": %u,\n  \"envs\": 4,\n"
               "  \"episodes\": %d,\n  \"runs\": [\n",
               quick ? "true" : "false", host_cores, episodes);
  for (size_t i = 0; i < runs.size(); ++i) {
    const ScaleRun& run = runs[i];
    std::fprintf(out,
                 "    {\"workers\": %zu, \"env_steps\": %llu, \"wall_s\": %.3f,"
                 " \"steps_per_s\": %.0f, \"fingerprint\": \"%08x\"}%s\n",
                 run.workers, static_cast<unsigned long long>(run.env_steps), run.wall_s,
                 run.steps_per_s, run.fingerprint, i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"speedup_4v1\": %.2f,\n  \"speedup_applicable\": %s,\n"
               "  \"speedup_ok\": %s,\n  \"fingerprints_identical\": %s\n}\n",
               speedup, speedup_applicable ? "true" : "false", speedup_ok ? "true" : "false",
               fingerprints_identical ? "true" : "false");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!fingerprints_identical) {
    std::fprintf(stderr, "FAIL: training state diverged across worker counts\n");
    return 1;
  }
  if (!speedup_ok) {
    std::fprintf(stderr, "FAIL: 4-worker speedup %.2fx below the 3x floor on a %u-core host\n",
                 speedup, host_cores);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
