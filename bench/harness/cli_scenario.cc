#include "bench/harness/cli_scenario.h"

#include <cstdio>
#include <cstdlib>

#include "src/serve/remote_policy.h"
#include "src/sim/queue_disc.h"

namespace astraea {

DumbbellConfig BuildDumbbellConfig(const ScenarioCliOptions& opts) {
  DumbbellConfig config;
  config.bandwidth = Mbps(opts.bw_mbps);
  config.base_rtt = Milliseconds(static_cast<int64_t>(opts.rtt_ms));
  config.buffer_bdp = opts.buffer_bdp;
  config.random_loss = opts.loss;
  config.seed = opts.seed;
  if (!opts.trace_file.empty()) {
    config.trace = std::make_shared<RateTrace>(LoadMahimahiTrace(opts.trace_file));
  }
  // AQM selection; capacity mirrors the DropTail sizing (buffer_bdp x BDP).
  const uint64_t capacity = std::max<uint64_t>(
      static_cast<uint64_t>(config.buffer_bdp *
                            static_cast<double>(BdpBytes(config.bandwidth, config.base_rtt))),
      3000);
  if (opts.qdisc == "red") {
    config.queue_factory = [capacity](Rng rng) -> std::unique_ptr<QueueDiscipline> {
      RedConfig red;
      red.capacity_bytes = capacity;
      return std::make_unique<RedQueue>(red, rng);
    };
  } else if (opts.qdisc == "codel") {
    config.queue_factory = [capacity](Rng) -> std::unique_ptr<QueueDiscipline> {
      CoDelConfig codel;
      codel.capacity_bytes = capacity;
      return std::make_unique<CoDelQueue>(codel);
    };
  } else if (opts.qdisc != "droptail") {
    std::fprintf(stderr, "unknown qdisc: %s\n", opts.qdisc.c_str());
    std::exit(1);
  }
  return config;
}

std::shared_ptr<const Policy> MakeCliPolicy(const PolicyCliOptions& opts) {
  std::shared_ptr<const Policy> local = LoadDefaultPolicy(opts.model);
  if (opts.serve_socket.empty()) {
    return local;
  }
  return serve::MakeServedPolicy(opts.serve_socket, opts.rpc_timeout, std::move(local),
                                 opts.connect_timeout);
}

}  // namespace astraea
