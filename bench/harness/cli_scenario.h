// Scenario- and policy-construction helpers shared by the CLI tools
// (run_scenario, astraea_eval). Previously each tool hand-rolled its own
// DumbbellConfig assembly (AQM factory, buffer sizing, trace loading) and its
// own policy resolution; centralizing both here means a new capability —
// like serving inference from an out-of-process `astraea_serve` via
// --serve-socket — lands in every tool at once.
//
// These helpers follow the cli_flags.h contract: invalid user input prints
// one clear line and exits. CLI-only by design.

#ifndef BENCH_HARNESS_CLI_SCENARIO_H_
#define BENCH_HARNESS_CLI_SCENARIO_H_

#include <memory>
#include <string>

#include "bench/harness/scenario.h"
#include "src/core/policy.h"
#include "src/util/time.h"

namespace astraea {

// Dumbbell parameters as tools accept them on the command line.
struct ScenarioCliOptions {
  double bw_mbps = 100.0;
  double rtt_ms = 30.0;
  double buffer_bdp = 1.0;
  double loss = 0.0;
  uint64_t seed = 1;
  std::string qdisc = "droptail";  // droptail | red | codel
  std::string trace_file;          // mahimahi trace; overrides bandwidth
};

// Builds the DumbbellConfig, including the AQM queue factory (sized like the
// DropTail default: buffer_bdp x BDP, floor 3000 bytes) and trace loading.
// Exits with a CLI error on an unknown qdisc name.
DumbbellConfig BuildDumbbellConfig(const ScenarioCliOptions& opts);

// Astraea policy selection as tools accept it on the command line.
struct PolicyCliOptions {
  std::string model;         // checkpoint path; "" = default resolution
  std::string serve_socket;  // when set, serve decisions from astraea_serve
  TimeNs rpc_timeout = Milliseconds(20);
  TimeNs connect_timeout = Milliseconds(500);  // handshake/reconnect-probe bound
};

// Resolves the policy: with --serve-socket, a self-healing RemotePolicy
// against the server with the locally-resolved policy as its degradation
// fallback; otherwise the local policy itself. Never fails (an unreachable
// server degrades to pure fallback with a warning and re-attaches when one
// appears).
std::shared_ptr<const Policy> MakeCliPolicy(const PolicyCliOptions& opts);

}  // namespace astraea

#endif  // BENCH_HARNESS_CLI_SCENARIO_H_
