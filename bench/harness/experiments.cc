#include "bench/harness/experiments.h"

#include <algorithm>

namespace astraea {

StaggeredConfig DefaultStaggeredConfig() {
  StaggeredConfig config;
  config.link.bandwidth = Mbps(100);
  config.link.base_rtt = Milliseconds(30);
  config.link.buffer_bdp = 1.0;
  return config;
}

std::unique_ptr<DumbbellScenario> RunStaggeredScenario(const std::string& scheme,
                                                       const StaggeredConfig& config,
                                                       uint64_t seed) {
  DumbbellConfig link = config.link;
  link.seed = seed;
  auto scenario = std::make_unique<DumbbellScenario>(link);
  for (int i = 0; i < config.flows; ++i) {
    scenario->AddFlow(scheme, config.start_interval * i, config.flow_duration);
  }
  scenario->Run(config.until);
  return scenario;
}

namespace {

// All flow arrival/departure instants in the staggered schedule, except the
// very first arrival (a lone flow "converging" to the link rate is measured
// too, matching §5.2 which counts all flow events).
struct FlowEvent {
  TimeNs when;
  int active_after;
};

std::vector<FlowEvent> EventsOf(const StaggeredConfig& config) {
  std::vector<std::pair<TimeNs, int>> deltas;
  for (int i = 0; i < config.flows; ++i) {
    deltas.emplace_back(config.start_interval * i, +1);
    deltas.emplace_back(config.start_interval * i + config.flow_duration, -1);
  }
  std::sort(deltas.begin(), deltas.end());
  std::vector<FlowEvent> events;
  int active = 0;
  for (const auto& [when, delta] : deltas) {
    active += delta;
    if (when < config.until && active > 0) {
      events.push_back({when, active});
    }
  }
  return events;
}

bool FlowActiveDuring(const StaggeredConfig& config, int flow, TimeNs begin, TimeNs end) {
  const TimeNs start = config.start_interval * flow;
  const TimeNs stop = start + config.flow_duration;
  return start <= begin && stop >= end;
}

}  // namespace

namespace {

// Everything one rep contributes to the Fig. 12 aggregate; reps run on worker
// threads and the reduction happens sequentially in rep order afterwards, so
// the floating-point result is independent of the worker count.
struct ConvergenceRepStats {
  double convergence_acc = 0.0;
  double stability_acc = 0.0;
  int stability_n = 0;
  int converged_events = 0;
  int total_events = 0;
  double jain = 0.0;
  double utilization = 0.0;
};

}  // namespace

SchemeConvergenceSummary MeasureStaggeredConvergence(const std::string& scheme,
                                                     const StaggeredConfig& config, int reps,
                                                     double tol, size_t workers) {
  SchemeConvergenceSummary summary;
  summary.scheme = scheme;

  const std::vector<FlowEvent> events = EventsOf(config);

  const std::vector<ConvergenceRepStats> per_rep = RunReps<ConvergenceRepStats>(
      reps, kConvergenceSeedStream,
      [&](int /*rep*/, uint64_t seed) {
        ConvergenceRepStats stats;
        auto scenario = RunStaggeredScenario(scheme, config, seed);
        const Network& net = scenario->network();

        for (size_t e = 0; e < events.size(); ++e) {
          const FlowEvent& event = events[e];
          const TimeNs next_event = e + 1 < events.size() ? events[e + 1].when : config.until;
          const double fair_share = ToMbps(config.link.bandwidth) / event.active_after;
          // Measure the youngest flow active across the whole inter-event window.
          for (int flow = config.flows - 1; flow >= 0; --flow) {
            if (!FlowActiveDuring(config, flow, event.when, next_event)) {
              continue;
            }
            const ConvergenceMeasurement m = MeasureConvergence(
                net, flow, event.when, fair_share, tol, Seconds(1.0), next_event);
            ++stats.total_events;
            if (m.convergence_time >= 0 && m.convergence_time < next_event - event.when) {
              ++stats.converged_events;
              stats.convergence_acc += ToSeconds(m.convergence_time);
              stats.stability_acc += m.stability_mbps;
              ++stats.stability_n;
            }
            break;
          }
        }
        stats.jain = AverageJain(net, 0, config.until, Milliseconds(500));
        stats.utilization = LinkUtilization(net, 0, Seconds(1.0), config.until);
        return stats;
      },
      workers);

  double convergence_acc = 0.0;
  double stability_acc = 0.0;
  int stability_n = 0;
  double jain_acc = 0.0;
  double util_acc = 0.0;
  for (const ConvergenceRepStats& stats : per_rep) {
    summary.total_events += stats.total_events;
    summary.converged_events += stats.converged_events;
    convergence_acc += stats.convergence_acc;
    stability_acc += stats.stability_acc;
    stability_n += stats.stability_n;
    jain_acc += stats.jain;
    util_acc += stats.utilization;
  }

  summary.avg_convergence_s =
      summary.converged_events > 0 ? convergence_acc / summary.converged_events : -1.0;
  summary.avg_stability_mbps = stability_n > 0 ? stability_acc / stability_n : -1.0;
  summary.avg_jain = jain_acc / reps;
  summary.utilization = util_acc / reps;
  return summary;
}

std::vector<double> CollectJainSamplesRep(const std::string& scheme,
                                          const StaggeredConfig& config, int rep) {
  auto scenario = RunStaggeredScenario(
      scheme, config, Rng::DeriveSeed(kJainSeedStream, static_cast<uint64_t>(rep)));
  return JainPerTimeslot(scenario->network(), 0, config.until, Milliseconds(500));
}

std::vector<double> CollectJainSamples(const std::string& scheme, const StaggeredConfig& config,
                                       int reps, size_t workers) {
  const std::vector<std::vector<double>> per_rep = ParallelMap(
      static_cast<size_t>(reps),
      [&](size_t rep) { return CollectJainSamplesRep(scheme, config, static_cast<int>(rep)); },
      workers);
  std::vector<double> samples;
  for (const auto& jains : per_rep) {
    samples.insert(samples.end(), jains.begin(), jains.end());
  }
  return samples;
}

}  // namespace astraea
