// Canned experiment drivers shared by several benches: the §5.1.1 staggered
// three-flow scenario (Figs. 6, 7, 12, Table 1) and its convergence /
// stability summaries (the paper's Fig. 12 definitions).
//
// Repeated runs fan out across a worker pool (RunReps / ParallelMap). Each rep
// derives its seed as Rng::DeriveSeed(stream, rep), so (a) distinct experiment
// families can never collide whatever the rep count, and (b) results are
// bit-identical for any worker count — per-rep outputs are reduced in rep
// order after the parallel section.

#ifndef BENCH_HARNESS_EXPERIMENTS_H_
#define BENCH_HARNESS_EXPERIMENTS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness/metrics.h"
#include "bench/harness/scenario.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace astraea {

// Seed streams for the canned experiment families. Any new repeated
// experiment should claim its own constant here instead of inventing an
// additive seed base.
inline constexpr uint64_t kConvergenceSeedStream = 0xA57AEA01;
inline constexpr uint64_t kJainSeedStream = 0xA57AEA02;

// Runs body(rep, seed) for rep in [0, reps) across `workers` threads
// (0 = ThreadPool::DefaultWorkerCount(), 1 = inline); seeds come from
// Rng::DeriveSeed(stream, rep). Results are returned in rep order.
template <typename T>
std::vector<T> RunReps(int reps, uint64_t stream,
                       const std::function<T(int rep, uint64_t seed)>& body,
                       size_t workers = 0) {
  return ParallelMap(
      static_cast<size_t>(reps),
      [&](size_t rep) {
        return body(static_cast<int>(rep), Rng::DeriveSeed(stream, rep));
      },
      workers);
}

struct StaggeredConfig {
  DumbbellConfig link;            // bandwidth / RTT / buffer
  int flows = 3;
  TimeNs start_interval = Seconds(40.0);
  TimeNs flow_duration = Seconds(120.0);
  TimeNs until = Seconds(200.0);
};

// The paper's default §5.1.1 setup: 100 Mbps, 30 ms, 1 BDP; 3 flows starting
// every 40 s, each running 120 s.
StaggeredConfig DefaultStaggeredConfig();

// Builds and runs the staggered scenario for `scheme`. Returns the scenario
// (which owns the Network with all per-flow statistics).
std::unique_ptr<DumbbellScenario> RunStaggeredScenario(const std::string& scheme,
                                                       const StaggeredConfig& config,
                                                       uint64_t seed);

struct SchemeConvergenceSummary {
  std::string scheme;
  double avg_convergence_s = 0.0;   // over events that did converge
  double avg_stability_mbps = 0.0;  // post-convergence stddev
  double avg_jain = 0.0;            // over >=2-flow timeslots
  double utilization = 0.0;
  int converged_events = 0;
  int total_events = 0;
};

// Runs `reps` staggered scenarios (in parallel across `workers`) and
// aggregates the Fig. 12 metrics: after each flow arrival/departure, every
// active flow should converge to the new fair share within +-`tol`. The
// result is identical for any worker count.
SchemeConvergenceSummary MeasureStaggeredConvergence(const std::string& scheme,
                                                     const StaggeredConfig& config, int reps,
                                                     double tol = 0.10, size_t workers = 0);

// All per-timeslot Jain samples pooled over `reps` runs (Fig. 7's CDF input),
// reps fanned out across `workers`, samples concatenated in rep order.
std::vector<double> CollectJainSamples(const std::string& scheme,
                                       const StaggeredConfig& config, int reps,
                                       size_t workers = 0);

// One rep of the Fig. 7 Jain collection (seed derived from kJainSeedStream);
// benches that fan out over scheme x rep pairs call this directly.
std::vector<double> CollectJainSamplesRep(const std::string& scheme,
                                          const StaggeredConfig& config, int rep);

}  // namespace astraea

#endif  // BENCH_HARNESS_EXPERIMENTS_H_
