// Canned experiment drivers shared by several benches: the §5.1.1 staggered
// three-flow scenario (Figs. 6, 7, 12, Table 1) and its convergence /
// stability summaries (the paper's Fig. 12 definitions).

#ifndef BENCH_HARNESS_EXPERIMENTS_H_
#define BENCH_HARNESS_EXPERIMENTS_H_

#include <memory>
#include <string>
#include <vector>

#include "bench/harness/metrics.h"
#include "bench/harness/scenario.h"

namespace astraea {

struct StaggeredConfig {
  DumbbellConfig link;            // bandwidth / RTT / buffer
  int flows = 3;
  TimeNs start_interval = Seconds(40.0);
  TimeNs flow_duration = Seconds(120.0);
  TimeNs until = Seconds(200.0);
};

// The paper's default §5.1.1 setup: 100 Mbps, 30 ms, 1 BDP; 3 flows starting
// every 40 s, each running 120 s.
StaggeredConfig DefaultStaggeredConfig();

// Builds and runs the staggered scenario for `scheme`. Returns the scenario
// (which owns the Network with all per-flow statistics).
std::unique_ptr<DumbbellScenario> RunStaggeredScenario(const std::string& scheme,
                                                       const StaggeredConfig& config,
                                                       uint64_t seed);

struct SchemeConvergenceSummary {
  std::string scheme;
  double avg_convergence_s = 0.0;   // over events that did converge
  double avg_stability_mbps = 0.0;  // post-convergence stddev
  double avg_jain = 0.0;            // over >=2-flow timeslots
  double utilization = 0.0;
  int converged_events = 0;
  int total_events = 0;
};

// Runs `reps` staggered scenarios and aggregates the Fig. 12 metrics: after
// each flow arrival/departure, every active flow should converge to the new
// fair share within +-`tol`.
SchemeConvergenceSummary MeasureStaggeredConvergence(const std::string& scheme,
                                                     const StaggeredConfig& config, int reps,
                                                     double tol = 0.10);

// All per-timeslot Jain samples pooled over `reps` runs (Fig. 7's CDF input).
std::vector<double> CollectJainSamples(const std::string& scheme,
                                       const StaggeredConfig& config, int reps);

}  // namespace astraea

#endif  // BENCH_HARNESS_EXPERIMENTS_H_
