// The repo's original event scheduler, preserved verbatim as the baseline for
// bench_sim_scale: a binary heap of std::function closures with lazy
// cancellation through a linear scan of the cancelled-id list. The in-tree
// EventQueue (src/sim/event_queue.h) replaced this with a calendar queue and
// a pooled-slot O(1) Cancel; keeping the old implementation here lets every
// run of the bench measure the replacement against the real predecessor
// instead of a remembered number.
//
// Bench-only code: nothing under src/ may include this.

#ifndef BENCH_HARNESS_HEAP_EVENT_QUEUE_H_
#define BENCH_HARNESS_HEAP_EVENT_QUEUE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/util/logging.h"
#include "src/util/time.h"

namespace astraea {

class SeedHeapEventQueue {
 public:
  using Callback = std::function<void()>;

  uint64_t Schedule(TimeNs when, Callback fn) {
    ASTRAEA_CHECK(when >= now_);
    const uint64_t seq = next_seq_++;
    heap_.push(Entry{when, seq, std::move(fn)});
    return seq;
  }
  uint64_t ScheduleAfter(TimeNs delay, Callback fn) {
    return Schedule(now_ + delay, std::move(fn));
  }

  void Cancel(uint64_t id) {
    cancelled_.push_back(id);
    ++cancelled_count_;
  }

  void RunUntil(TimeNs until) {
    while (!heap_.empty() && heap_.top().when <= until) {
      Entry entry = std::move(const_cast<Entry&>(heap_.top()));
      heap_.pop();
      if (!cancelled_.empty() && IsCancelled(entry.seq)) {
        cancelled_.erase(std::remove(cancelled_.begin(), cancelled_.end(), entry.seq),
                         cancelled_.end());
        --cancelled_count_;
        continue;
      }
      now_ = entry.when;
      ++executed_;
      entry.fn();
    }
    now_ = std::max(now_, until);
  }

  void RunAll() {
    while (!heap_.empty()) {
      RunUntil(heap_.top().when);
    }
  }

  TimeNs now() const { return now_; }
  size_t pending() const { return heap_.size() - cancelled_count_; }
  uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    TimeNs when;
    uint64_t seq;
    Callback fn;
    bool operator>(const Entry& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  bool IsCancelled(uint64_t seq) const {
    return std::find(cancelled_.begin(), cancelled_.end(), seq) != cancelled_.end();
  }

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::vector<uint64_t> cancelled_;
  size_t cancelled_count_ = 0;
  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace astraea

#endif  // BENCH_HARNESS_HEAP_EVENT_QUEUE_H_
