#include "bench/harness/metrics.h"

#include <algorithm>
#include <fstream>

#include "src/util/serialization.h"
#include "src/util/stats.h"

namespace astraea {

namespace {

// Is the flow transmitting at time t?
bool FlowActiveAt(const FlowStats& stats, const FlowSpec& spec, TimeNs t) {
  const TimeNs start = spec.start;
  const TimeNs stop = spec.duration >= 0 ? spec.start + spec.duration : INT64_MAX;
  (void)stats;
  return t >= start && t < stop;
}

}  // namespace

std::vector<double> JainPerTimeslot(const Network& net, TimeNs begin, TimeNs end, TimeNs slot) {
  std::vector<double> out;
  for (TimeNs t = begin; t + slot <= end; t += slot) {
    std::vector<double> rates;
    for (size_t i = 0; i < net.flow_count(); ++i) {
      const int id = static_cast<int>(i);
      if (!FlowActiveAt(net.flow_stats(id), net.flow_spec(id), t)) {
        continue;
      }
      rates.push_back(net.flow_stats(id).throughput_mbps.MeanOver(t, t + slot));
    }
    if (rates.size() >= 2) {
      out.push_back(JainIndex(rates));
    }
  }
  return out;
}

double AverageJain(const Network& net, TimeNs begin, TimeNs end, TimeNs slot) {
  const std::vector<double> jains = JainPerTimeslot(net, begin, end, slot);
  return jains.empty() ? 1.0 : Mean(jains);
}

double LinkUtilization(const Network& net, size_t link_index, TimeNs begin, TimeNs end) {
  if (end <= begin) {
    return 0.0;
  }
  double delivered_bits = 0.0;
  for (size_t i = 0; i < net.flow_count(); ++i) {
    const int id = static_cast<int>(i);
    const FlowSpec& spec = net.flow_spec(id);
    const TimeNs f_begin = std::max(begin, spec.start);
    const TimeNs f_end =
        std::min(end, spec.duration >= 0 ? spec.start + spec.duration : end);
    if (f_end <= f_begin) {
      continue;
    }
    const double mean_mbps = net.flow_stats(id).throughput_mbps.MeanOver(f_begin, f_end);
    delivered_bits += mean_mbps * 1e6 * ToSeconds(f_end - f_begin);
  }
  const double capacity_bits = net.link(link_index).provider().CapacityBits(begin, end);
  return capacity_bits > 0.0 ? delivered_bits / capacity_bits : 0.0;
}

namespace {
std::vector<double> CollectRtts(const Network& net, TimeNs begin, TimeNs end) {
  std::vector<double> rtts;
  for (size_t i = 0; i < net.flow_count(); ++i) {
    for (const auto& [t, v] : net.flow_stats(static_cast<int>(i)).rtt_ms.points()) {
      if (t >= begin && t < end) {
        rtts.push_back(v);
      }
    }
  }
  return rtts;
}
}  // namespace

double MeanRttMs(const Network& net, TimeNs begin, TimeNs end) {
  return Mean(CollectRtts(net, begin, end));
}

double P95RttMs(const Network& net, TimeNs begin, TimeNs end) {
  return Percentile(CollectRtts(net, begin, end), 95.0);
}

double AggregateLossRatio(const Network& net) {
  uint64_t lost = 0;
  uint64_t acked = 0;
  for (size_t i = 0; i < net.flow_count(); ++i) {
    lost += net.flow_stats(static_cast<int>(i)).bytes_lost;
    acked += net.flow_stats(static_cast<int>(i)).bytes_acked;
  }
  const uint64_t total = lost + acked;
  return total == 0 ? 0.0 : static_cast<double>(lost) / static_cast<double>(total);
}

std::vector<double> FlowMeanThroughputs(const Network& net, TimeNs begin, TimeNs end) {
  std::vector<double> out;
  for (size_t i = 0; i < net.flow_count(); ++i) {
    out.push_back(net.flow_stats(static_cast<int>(i)).throughput_mbps.MeanOver(begin, end));
  }
  return out;
}

double WorstFlowShare(const std::vector<double>& throughputs_mbps) {
  if (throughputs_mbps.empty()) {
    return 1.0;
  }
  double sum = 0.0;
  double worst = throughputs_mbps.front();
  for (const double thr : throughputs_mbps) {
    sum += thr;
    worst = std::min(worst, thr);
  }
  const double fair = sum / static_cast<double>(throughputs_mbps.size());
  return fair > 0.0 ? worst / fair : 1.0;
}

double HarmIndex(double baseline_mbps, double actual_mbps) {
  if (baseline_mbps <= 0.0) {
    return 0.0;
  }
  return std::max(0.0, 1.0 - actual_mbps / baseline_mbps);
}

void WriteFlowStatsCsv(const Network& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw SerializationError("cannot open CSV for writing: " + path);
  }
  out << "time_s,flow,scheme,throughput_mbps,rtt_ms,cwnd_pkts\n";
  for (size_t i = 0; i < net.flow_count(); ++i) {
    const int id = static_cast<int>(i);
    const FlowStats& stats = net.flow_stats(id);
    const std::string& scheme = net.flow_spec(id).scheme;
    for (const auto& [t, thr] : stats.throughput_mbps.points()) {
      out << ToSeconds(t) << ',' << i << ',' << scheme << ',' << thr << ','
          << stats.rtt_ms.ValueAt(t) << ',' << stats.cwnd_packets.ValueAt(t) << "\n";
    }
  }
}

ConvergenceMeasurement MeasureConvergence(const Network& net, int flow_id, TimeNs event_time,
                                          double fair_share_mbps, double tol, TimeNs hold,
                                          TimeNs measure_until) {
  ConvergenceMeasurement m;
  m.event_time = event_time;
  m.flow_id = flow_id;
  m.fair_share_mbps = fair_share_mbps;

  const TimeSeries& thr = net.flow_stats(flow_id).throughput_mbps;
  const TimeNs entered = thr.FirstStableEntry(event_time, fair_share_mbps, tol, hold);
  if (entered < 0) {
    m.convergence_time = -1;
    m.stability_mbps = thr.StdDevOver(event_time, measure_until);
    return m;
  }
  m.convergence_time = entered - event_time;
  m.stability_mbps = thr.StdDevOver(entered, measure_until);
  return m;
}

}  // namespace astraea
