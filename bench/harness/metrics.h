// Evaluation metrics matching §5: per-timeslot Jain indices, link utilization,
// convergence time / stability around flow events (Fig. 12's definitions),
// and latency/loss summaries.

#ifndef BENCH_HARNESS_METRICS_H_
#define BENCH_HARNESS_METRICS_H_

#include <string>
#include <vector>

#include "src/sim/network.h"

namespace astraea {

// Jain index of the active flows' throughputs, sampled every `slot` over
// [begin, end); slots with fewer than two active flows are skipped (§5.1.1).
std::vector<double> JainPerTimeslot(const Network& net, TimeNs begin, TimeNs end, TimeNs slot);

// Mean of JainPerTimeslot (the "average Jain index" reported in Figs. 9/10).
double AverageJain(const Network& net, TimeNs begin, TimeNs end, TimeNs slot);

// Fraction of the link's capacity delivered over [begin, end).
double LinkUtilization(const Network& net, size_t link_index, TimeNs begin, TimeNs end);

// Mean per-flow average RTT (ms) over the window, weighted by sample count.
double MeanRttMs(const Network& net, TimeNs begin, TimeNs end);
double P95RttMs(const Network& net, TimeNs begin, TimeNs end);

// Aggregate loss ratio: lost / (lost + acked) bytes across all flows.
double AggregateLossRatio(const Network& net);

// Per-flow mean throughput (Mbps) over [begin, end).
std::vector<double> FlowMeanThroughputs(const Network& net, TimeNs begin, TimeNs end);

// Fair-Aurora-style fairness scores for the cross-scheme competition matrix.
//
// Worst-flow share: min(throughput) / fair share (= mean). 1.0 is perfectly
// fair; 0.0 means some flow was starved outright. Complements Jain, which
// can stay high while one of many flows starves.
double WorstFlowShare(const std::vector<double>& throughputs_mbps);

// Harm of the competition on a flow: how far `actual` falls below the
// `baseline` it achieves against an equal-RTT copy of itself (the
// self-competition fair share). 0 = unharmed, 1 = starved; negative harm
// (doing better than baseline) clamps to 0.
double HarmIndex(double baseline_mbps, double actual_mbps);

// Dumps every flow's per-MTP series as CSV (columns: time_s, flow, scheme,
// throughput_mbps, rtt_ms, cwnd_pkts) for offline plotting.
void WriteFlowStatsCsv(const Network& net, const std::string& path);

// Fig. 12 definitions. A "flow event" is an arrival or departure; after each
// event the *younger* affected flows should converge to the new fair share.
struct ConvergenceMeasurement {
  TimeNs event_time = 0;
  int flow_id = -1;
  double fair_share_mbps = 0.0;
  TimeNs convergence_time = -1;     // event -> sustained entry into +-tol band
  double stability_mbps = 0.0;      // post-convergence throughput stddev
};

// Measures convergence of flow `flow_id` after `event_time` toward
// `fair_share_mbps` with tolerance `tol` (paper: 0.10); the band must hold
// for `hold` (we use 1s) to count. Stability is measured from convergence to
// `measure_until`.
ConvergenceMeasurement MeasureConvergence(const Network& net, int flow_id, TimeNs event_time,
                                          double fair_share_mbps, double tol, TimeNs hold,
                                          TimeNs measure_until);

}  // namespace astraea

#endif  // BENCH_HARNESS_METRICS_H_
