#include "bench/harness/scenario.h"

#include <algorithm>

namespace astraea {

DumbbellScenario::DumbbellScenario(DumbbellConfig config) : config_(std::move(config)) {
  network_ = std::make_unique<Network>(config_.seed);

  RateBps nominal = config_.bandwidth;
  if (config_.trace != nullptr) {
    // Size the buffer from the trace's mean-ish level via its first slot; the
    // cellular experiments use explicit deep buffers anyway.
    nominal = config_.trace->RateAt(0);
  }
  buffer_bytes_ = std::max<uint64_t>(
      static_cast<uint64_t>(config_.buffer_bdp *
                            static_cast<double>(BdpBytes(nominal, config_.base_rtt))),
      2 * 1500);

  LinkConfig link;
  link.name = "bottleneck";
  link.rate = config_.bandwidth;
  link.trace = config_.trace;
  link.propagation_delay = config_.base_rtt / 2;  // symmetric path
  link.buffer_bytes = buffer_bytes_;
  link.random_loss = config_.random_loss;
  link.queue_factory = config_.queue_factory;
  network_->AddLink(link);
}

int DumbbellScenario::AddFlow(const std::string& scheme, TimeNs start, TimeNs duration,
                              TimeNs extra_rtt) {
  return AddFlowWithFactory(scheme, MakeSchemeFactory(scheme, &options_), start, duration,
                            extra_rtt);
}

int DumbbellScenario::AddFlowWithFactory(const std::string& label, CcFactory factory,
                                         TimeNs start, TimeNs duration, TimeNs extra_rtt) {
  FlowSpec spec;
  spec.scheme = label;
  spec.make_cc = std::move(factory);
  spec.start = start;
  spec.duration = duration;
  spec.extra_one_way_delay = extra_rtt;
  spec.link_path = {0};
  return network_->AddFlow(spec);
}

void DumbbellScenario::Run(TimeNs until) { network_->Run(until); }

}  // namespace astraea
