#include "bench/harness/scenario.h"

#include <algorithm>

#include "src/util/thread_pool.h"

namespace astraea {

DumbbellScenario::DumbbellScenario(DumbbellConfig config) : config_(std::move(config)) {
  network_ = std::make_unique<Network>(config_.seed);

  RateBps nominal = config_.bandwidth;
  if (config_.trace != nullptr) {
    // Size the buffer from the trace's mean-ish level via its first slot; the
    // cellular experiments use explicit deep buffers anyway.
    nominal = config_.trace->RateAt(0);
  }
  buffer_bytes_ = std::max<uint64_t>(
      static_cast<uint64_t>(config_.buffer_bdp *
                            static_cast<double>(BdpBytes(nominal, config_.base_rtt))),
      2 * 1500);

  LinkConfig link;
  link.name = "bottleneck";
  link.rate = config_.bandwidth;
  link.trace = config_.trace;
  link.propagation_delay = config_.base_rtt / 2;  // symmetric path
  link.buffer_bytes = buffer_bytes_;
  link.random_loss = config_.random_loss;
  link.queue_factory = config_.queue_factory;
  network_->AddLink(link);
}

int DumbbellScenario::AddFlow(const std::string& scheme, TimeNs start, TimeNs duration,
                              TimeNs extra_rtt) {
  return AddFlowWithFactory(scheme, MakeSchemeFactory(scheme, &options_), start, duration,
                            extra_rtt);
}

int DumbbellScenario::AddFlowWithFactory(const std::string& label, CcFactory factory,
                                         TimeNs start, TimeNs duration, TimeNs extra_rtt) {
  FlowSpec spec;
  spec.scheme = label;
  spec.make_cc = std::move(factory);
  spec.start = start;
  spec.duration = duration;
  spec.extra_one_way_delay = extra_rtt;
  spec.link_path = {0};
  return network_->AddFlow(spec);
}

int DumbbellScenario::AddFlowWithConfig(const std::string& scheme, SenderConfig sender,
                                        TimeNs start, TimeNs duration, TimeNs extra_rtt) {
  FlowSpec spec;
  spec.scheme = scheme;
  spec.make_cc = MakeSchemeFactory(scheme, &options_);
  spec.start = start;
  spec.duration = duration;
  spec.extra_one_way_delay = extra_rtt;
  spec.link_path = {0};
  spec.sender = sender;
  return network_->AddFlow(spec);
}

void DumbbellScenario::Run(TimeNs until) { network_->Run(until); }

ShardResult RunDumbbellShard(const ShardedDumbbellConfig& config, size_t shard_index) {
  DumbbellConfig shard_config = config.shard;
  shard_config.seed = Rng::DeriveSeed(config.seed_stream, shard_index);
  DumbbellScenario scenario(shard_config);

  // Stagger starts from a stream derived off the same (stream, shard) pair —
  // decorrelated from the Network's seed but equally a pure function of the
  // shard index.
  Rng starts(Rng::DeriveSeed(config.seed_stream ^ 0x5747A6E5ULL, shard_index));
  TimeNs latest_start = 0;
  for (size_t i = 0; i < config.flows_per_shard; ++i) {
    const TimeNs start =
        config.max_start_stagger > 0 ? starts.UniformInt(0, config.max_start_stagger) : 0;
    latest_start = std::max(latest_start, start);
    scenario.AddFlow(config.scheme, start, config.flow_duration);
  }
  // Run past the last stop so every flow gets its full duration; the extra
  // tail also lets in-flight packets drain back to the pool.
  scenario.Run(latest_start + config.flow_duration + Milliseconds(10));

  Network& net = scenario.network();
  ShardResult result;
  result.events_executed = net.events().executed();
  result.packet_slots = net.packet_pool().capacity();
  result.packets_live = net.packet_pool().live();
  result.packets_recycled = net.packet_pool().recycled();
  uint64_t fp = 0xA57AEA0300000000ULL + shard_index;
  for (int flow = 0; flow < static_cast<int>(net.flow_count()); ++flow) {
    const FlowStats& stats = net.flow_stats(flow);
    result.bytes_acked += stats.bytes_acked;
    result.bytes_lost += stats.bytes_lost;
    fp = MixFingerprint(fp, stats.bytes_sent);
    fp = MixFingerprint(fp, stats.bytes_acked);
    fp = MixFingerprint(fp, stats.bytes_lost);
  }
  fp = MixFingerprint(fp, result.events_executed);
  result.fingerprint = fp;
  return result;
}

ShardedRunResult RunShardedDumbbell(const ShardedDumbbellConfig& config) {
  ShardedRunResult result;
  result.shards = ParallelMap(
      config.shards, [&config](size_t shard) { return RunDumbbellShard(config, shard); },
      config.workers);
  // Aggregate strictly in shard-index order (ParallelMap already returns
  // index-ordered results), so the combined fingerprint is worker-invariant.
  for (const ShardResult& shard : result.shards) {
    result.events_executed += shard.events_executed;
    result.bytes_acked += shard.bytes_acked;
    result.bytes_lost += shard.bytes_lost;
    result.max_packet_slots = std::max(result.max_packet_slots, shard.packet_slots);
    result.fingerprint = MixFingerprint(result.fingerprint, shard.fingerprint);
  }
  result.flow_seconds = static_cast<double>(config.shards) *
                        static_cast<double>(config.flows_per_shard) *
                        ToSeconds(config.flow_duration);
  return result;
}

}  // namespace astraea
