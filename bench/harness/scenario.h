// Scenario harness shared by the benches, examples and the run_scenario CLI:
// a single-bottleneck ("dumbbell") builder with the paper's parameterization
// (bandwidth, base RTT, buffer in BDP multiples, optional random loss or a
// rate trace), plus flow schedule helpers.

#ifndef BENCH_HARNESS_SCENARIO_H_
#define BENCH_HARNESS_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/schemes.h"
#include "src/sim/network.h"
#include "src/sim/rate_provider.h"

namespace astraea {

struct DumbbellConfig {
  RateBps bandwidth = Mbps(100);
  TimeNs base_rtt = Milliseconds(30);   // full round trip (propagation)
  double buffer_bdp = 1.0;              // bottleneck buffer as a BDP multiple
  double random_loss = 0.0;
  std::shared_ptr<RateProvider> trace;  // overrides bandwidth when set
  QueueFactory queue_factory;           // AQM override (default DropTail)
  uint64_t seed = 1;
};

// Seed stream for the sharded scale-out runs (bench_sim_scale and the
// sim_scale tests); shard i simulates with Rng::DeriveSeed(stream, i).
inline constexpr uint64_t kSimScaleSeedStream = 0xA57AEA03;

// Order-sensitive 64-bit combiner (boost::hash_combine layout over a
// SplitMix-style constant) shared by every sharded runner. Not cryptographic
// — just collision-resistant enough that a perturbed simulation can't
// plausibly produce the same digest.
inline uint64_t MixFingerprint(uint64_t h, uint64_t v) {
  return h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
}

class DumbbellScenario {
 public:
  explicit DumbbellScenario(DumbbellConfig config);

  // Adds a flow of the named scheme; returns its flow id. `extra_rtt` adds
  // one-way return delay for RTT-heterogeneity experiments.
  int AddFlow(const std::string& scheme, TimeNs start, TimeNs duration = -1,
              TimeNs extra_rtt = 0);
  int AddFlowWithFactory(const std::string& label, CcFactory factory, TimeNs start,
                         TimeNs duration = -1, TimeNs extra_rtt = 0);
  // Full control over the per-flow SenderConfig (budgeted incast requests,
  // non-default MTP/MSS).
  int AddFlowWithConfig(const std::string& scheme, SenderConfig sender, TimeNs start,
                        TimeNs duration = -1, TimeNs extra_rtt = 0);

  void Run(TimeNs until);

  Network& network() { return *network_; }
  const Network& network() const { return *network_; }
  const DumbbellConfig& config() const { return config_; }
  SchemeOptions& scheme_options() { return options_; }
  Link& bottleneck() { return network_->link(0); }

  uint64_t BufferBytes() const { return buffer_bytes_; }

 private:
  DumbbellConfig config_;
  SchemeOptions options_;
  std::unique_ptr<Network> network_;
  uint64_t buffer_bytes_ = 0;
};

// ---------------------------------------------------------------------------
// Sharded scale-out: N independent dumbbell bottlenecks, each a self-contained
// Network seeded with Rng::DeriveSeed(seed_stream, shard). Because shards
// share no state, they can run on any number of ThreadPool workers and the
// aggregate — assembled in shard-index order — is bit-identical to a serial
// run. This is how the simulator reaches million-flow scenarios on one box.

struct ShardedDumbbellConfig {
  DumbbellConfig shard;        // per-shard template; its seed is overridden
  std::string scheme = "cubic";
  size_t shards = 1;
  size_t flows_per_shard = 1;
  TimeNs flow_duration = Seconds(1.0);
  // Flow starts are staggered uniformly in [0, max_start_stagger] by the
  // shard's own Rng stream, so shards don't tick in lockstep.
  TimeNs max_start_stagger = Milliseconds(100);
  uint64_t seed_stream = kSimScaleSeedStream;
  size_t workers = 1;  // <=1 runs inline on the calling thread
};

// Everything a shard reports is a pure function of (seed_stream, shard index,
// config), so equal fingerprints mean equal simulations.
struct ShardResult {
  uint64_t events_executed = 0;
  uint64_t bytes_acked = 0;
  uint64_t bytes_lost = 0;
  size_t packet_slots = 0;       // pool capacity at the horizon
  size_t packets_live = 0;       // still in flight/queued at the horizon
  uint64_t packets_recycled = 0;
  uint64_t fingerprint = 0;      // order-sensitive digest of per-flow outcomes
};

struct ShardedRunResult {
  std::vector<ShardResult> shards;  // shard-index order, whatever the workers
  uint64_t events_executed = 0;
  uint64_t bytes_acked = 0;
  uint64_t bytes_lost = 0;
  size_t max_packet_slots = 0;      // worst single-shard pool footprint
  double flow_seconds = 0.0;        // shards * flows_per_shard * duration
  uint64_t fingerprint = 0;         // shard fingerprints combined in order
};

// Runs one shard (used by tests to cross-check determinism shard by shard).
ShardResult RunDumbbellShard(const ShardedDumbbellConfig& config, size_t shard_index);

// Runs all shards on `config.workers` threads and aggregates in shard order.
ShardedRunResult RunShardedDumbbell(const ShardedDumbbellConfig& config);

}  // namespace astraea

#endif  // BENCH_HARNESS_SCENARIO_H_
