// Scenario harness shared by the benches, examples and the run_scenario CLI:
// a single-bottleneck ("dumbbell") builder with the paper's parameterization
// (bandwidth, base RTT, buffer in BDP multiples, optional random loss or a
// rate trace), plus flow schedule helpers.

#ifndef BENCH_HARNESS_SCENARIO_H_
#define BENCH_HARNESS_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/schemes.h"
#include "src/sim/network.h"
#include "src/sim/rate_provider.h"

namespace astraea {

struct DumbbellConfig {
  RateBps bandwidth = Mbps(100);
  TimeNs base_rtt = Milliseconds(30);   // full round trip (propagation)
  double buffer_bdp = 1.0;              // bottleneck buffer as a BDP multiple
  double random_loss = 0.0;
  std::shared_ptr<RateProvider> trace;  // overrides bandwidth when set
  QueueFactory queue_factory;           // AQM override (default DropTail)
  uint64_t seed = 1;
};

class DumbbellScenario {
 public:
  explicit DumbbellScenario(DumbbellConfig config);

  // Adds a flow of the named scheme; returns its flow id. `extra_rtt` adds
  // one-way return delay for RTT-heterogeneity experiments.
  int AddFlow(const std::string& scheme, TimeNs start, TimeNs duration = -1,
              TimeNs extra_rtt = 0);
  int AddFlowWithFactory(const std::string& label, CcFactory factory, TimeNs start,
                         TimeNs duration = -1, TimeNs extra_rtt = 0);

  void Run(TimeNs until);

  Network& network() { return *network_; }
  const Network& network() const { return *network_; }
  const DumbbellConfig& config() const { return config_; }
  SchemeOptions& scheme_options() { return options_; }
  Link& bottleneck() { return network_->link(0); }

  uint64_t BufferBytes() const { return buffer_bytes_; }

 private:
  DumbbellConfig config_;
  SchemeOptions options_;
  std::unique_ptr<Network> network_;
  uint64_t buffer_bytes_ = 0;
};

}  // namespace astraea

#endif  // BENCH_HARNESS_SCENARIO_H_
