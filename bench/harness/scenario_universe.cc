#include "bench/harness/scenario_universe.h"

#include <algorithm>
#include <cmath>

#include "bench/harness/metrics.h"
#include "src/util/logging.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"

namespace astraea {

namespace {

// Pareto sample via inverse transform: min * (1-u)^(-1/alpha). Heavy-tailed
// ON durations are what makes the churn adversarial — a few elephants among
// many mice.
TimeNs ParetoDuration(Rng* rng, TimeNs min_on, double alpha) {
  const double u = rng->Uniform();
  const double scale = std::pow(1.0 - u, -1.0 / alpha);
  // Cap at 1000x the minimum so one astronomically heavy draw cannot swallow
  // the whole horizon (the tail is still three decades wide).
  return static_cast<TimeNs>(static_cast<double>(min_on) * std::min(scale, 1000.0));
}

std::unique_ptr<DumbbellScenario> MakeScenario(DumbbellConfig config,
                                               const SchemeOptions* base_options) {
  auto scenario = std::make_unique<DumbbellScenario>(std::move(config));
  if (base_options != nullptr) {
    scenario->scheme_options() = *base_options;
  }
  return scenario;
}

}  // namespace

uint64_t FingerprintScenario(const Network& net, uint64_t salt) {
  uint64_t fp = salt;
  for (int flow = 0; flow < static_cast<int>(net.flow_count()); ++flow) {
    const FlowStats& stats = net.flow_stats(flow);
    fp = MixFingerprint(fp, stats.bytes_sent);
    fp = MixFingerprint(fp, stats.bytes_acked);
    fp = MixFingerprint(fp, stats.bytes_lost);
    fp = MixFingerprint(fp, static_cast<uint64_t>(stats.completed_at + 1));
  }
  fp = MixFingerprint(fp, net.events().executed());
  return fp;
}

UniverseMetrics ScoreUniverseWindow(DumbbellScenario& scenario, TimeNs begin, TimeNs end,
                                    int first_flow, int last_flow, uint64_t fp_salt) {
  const Network& net = scenario.network();
  UniverseMetrics m;
  m.utilization = LinkUtilization(net, 0, begin, end);

  std::vector<double> throughputs;
  std::vector<double> rtts;
  uint64_t acked = 0;
  uint64_t lost = 0;
  for (int flow = first_flow; flow < last_flow; ++flow) {
    const FlowStats& stats = net.flow_stats(flow);
    throughputs.push_back(stats.throughput_mbps.MeanOver(begin, end));
    for (const auto& [t, rtt_ms] : stats.rtt_ms.points()) {
      if (t >= begin && t < end) {
        rtts.push_back(rtt_ms);
      }
    }
    acked += stats.bytes_acked;
    lost += stats.bytes_lost;
  }
  m.jain = throughputs.size() >= 2 ? JainIndex(throughputs) : 1.0;
  m.p95_delay_ms = rtts.empty() ? 0.0 : Percentile(rtts, 95.0);
  m.loss_ratio =
      (acked + lost) > 0 ? static_cast<double>(lost) / static_cast<double>(acked + lost) : 0.0;
  double goodput = 0.0;
  for (const double thr : throughputs) {
    goodput += thr;
  }
  m.goodput_mbps = goodput;
  m.fingerprint = FingerprintScenario(net, fp_salt);
  return m;
}

// ------------------------------------------------------------- datacenter

std::unique_ptr<DumbbellScenario> BuildIncast(const IncastConfig& config,
                                              const SchemeOptions* base_options) {
  ASTRAEA_CHECK(config.fan_in > 0 && config.waves > 0);
  DumbbellConfig dc;
  dc.bandwidth = config.bandwidth;
  dc.base_rtt = config.base_rtt;
  dc.seed = config.seed;
  // Explicit shallow buffer (not a BDP multiple) behind an optional
  // DCTCP-style marking stage. The factory ignores the Rng: DropTail and the
  // marker are deterministic.
  const uint64_t buffer = config.buffer_bytes;
  if (config.ecn) {
    const EcnConfig ecn{config.ecn_threshold_bytes};
    dc.queue_factory = [buffer, ecn](Rng /*rng*/) -> std::unique_ptr<QueueDiscipline> {
      return std::make_unique<EcnMarkingQueue>(std::make_unique<DropTailQueue>(buffer), ecn);
    };
  } else {
    dc.queue_factory = [buffer](Rng /*rng*/) -> std::unique_ptr<QueueDiscipline> {
      return std::make_unique<DropTailQueue>(buffer);
    };
  }
  auto scenario = MakeScenario(std::move(dc), base_options);

  // One budgeted flow per (sender, wave); all of a wave's requests land
  // within start_jitter of the wave boundary — the synchronized burst that
  // makes incast incast.
  Rng jitter(Rng::DeriveSeed(config.seed, 0x1CA57));
  SenderConfig sender;
  sender.max_transfer_bytes = config.request_bytes;
  for (size_t wave = 0; wave < config.waves; ++wave) {
    const TimeNs wave_start = static_cast<TimeNs>(wave) * config.wave_interval;
    for (size_t i = 0; i < config.fan_in; ++i) {
      const TimeNs start =
          wave_start +
          (config.start_jitter > 0 ? jitter.UniformInt(0, config.start_jitter) : 0);
      scenario->AddFlowWithConfig(config.scheme, sender, start);
    }
  }
  return scenario;
}

TimeNs IncastHorizon(const IncastConfig& config) {
  // Last wave plus a generous drain window: incast collapse resolves through
  // 200ms-floor RTOs, so give stragglers several of those.
  return static_cast<TimeNs>(config.waves - 1) * config.wave_interval + Seconds(1.0);
}

IncastResult RunIncast(const IncastConfig& config) {
  auto scenario = BuildIncast(config);
  const TimeNs horizon = IncastHorizon(config);
  scenario->Run(horizon);

  IncastResult result;
  result.requests = config.fan_in * config.waves;
  const Network& net = scenario->network();
  std::vector<double> fcts;
  for (int flow = 0; flow < static_cast<int>(net.flow_count()); ++flow) {
    const FlowStats& stats = net.flow_stats(flow);
    if (stats.completed_at >= 0) {
      ++result.completed;
      fcts.push_back(ToMillis(stats.completed_at - net.flow_spec(flow).start));
    }
  }
  if (!fcts.empty()) {
    result.p95_fct_ms = Percentile(fcts, 95.0);
    result.max_fct_ms = *std::max_element(fcts.begin(), fcts.end());
  }
  if (const auto* ecn = dynamic_cast<const EcnMarkingQueue*>(&net.link(0).queue())) {
    result.ecn_marked = ecn->marked_packets();
  }
  result.metrics = ScoreUniverseWindow(*scenario, 0, horizon, 0,
                                       static_cast<int>(net.flow_count()), config.seed);
  return result;
}

// ------------------------------------------------------------ trace-driven

std::unique_ptr<DumbbellScenario> BuildTraceDriven(const TraceDrivenConfig& config,
                                                   const SchemeOptions* base_options) {
  std::shared_ptr<RateProvider> trace = config.trace;
  if (trace == nullptr) {
    ASTRAEA_CHECK(!config.trace_path.empty());
    trace = std::make_shared<RateTrace>(ToRateTrace(LoadLinkRateTraceFile(config.trace_path),
                                                    config.mtu_bytes, config.granularity));
  }
  DumbbellConfig dc;
  dc.bandwidth = trace->RateAt(0);  // nominal; the trace drives service
  dc.base_rtt = config.base_rtt;
  dc.buffer_bdp = config.buffer_bdp;
  dc.random_loss = config.random_loss;
  dc.trace = trace;
  dc.seed = config.seed;
  auto scenario = MakeScenario(std::move(dc), base_options);
  for (size_t i = 0; i < config.flows; ++i) {
    // Fixed stagger keeps multi-flow runs deterministic without an Rng draw.
    scenario->AddFlow(config.scheme, static_cast<TimeNs>(i) * Milliseconds(100),
                      config.duration);
  }
  return scenario;
}

TraceDrivenResult RunTraceDriven(const TraceDrivenConfig& config) {
  auto scenario = BuildTraceDriven(config);
  const TimeNs horizon = config.duration + Milliseconds(50);
  scenario->Run(horizon);
  TraceDrivenResult result;
  result.metrics =
      ScoreUniverseWindow(*scenario, 0, horizon, 0,
                          static_cast<int>(scenario->network().flow_count()), config.seed);
  return result;
}

// ------------------------------------------------------------- adversarial

std::unique_ptr<DumbbellScenario> BuildAdversarial(const AdversarialConfig& config,
                                                   const SchemeOptions* base_options) {
  DumbbellConfig dc;
  dc.bandwidth = config.bandwidth;
  dc.base_rtt = config.base_rtt;
  dc.buffer_bdp = config.buffer_bdp;
  dc.seed = config.seed;
  auto scenario = MakeScenario(std::move(dc), base_options);

  // Foreground flows first (ids [0, long_flows)): the scored victims.
  for (size_t i = 0; i < config.long_flows; ++i) {
    scenario->AddFlow(config.scheme, 0, config.duration);
  }

  // Heavy-tailed churn, precomputed from the seed: each slot alternates
  // Pareto ON periods (one flow each) and exponential OFF gaps.
  Rng churn(Rng::DeriveSeed(config.seed, 0xC4u));
  for (size_t slot = 0; slot < config.churn_slots; ++slot) {
    TimeNs t = static_cast<TimeNs>(
        churn.UniformInt(0, std::max<TimeNs>(config.mean_off, Milliseconds(1))));
    while (t < config.duration) {
      const TimeNs on =
          std::min(ParetoDuration(&churn, config.pareto_min_on, config.pareto_alpha),
                   config.duration - t);
      scenario->AddFlow(config.churn_scheme, t, on);
      const TimeNs off = static_cast<TimeNs>(churn.Exponential(ToSeconds(config.mean_off)) *
                                             1e9);
      t += on + std::max<TimeNs>(off, Milliseconds(1));
    }
  }

  // Periodic unresponsive blasts at a fixed fraction of the bottleneck rate.
  if (config.blast_fraction > 0.0) {
    scenario->scheme_options().blast_rate_bps = config.blast_fraction * config.bandwidth;
    for (TimeNs t = config.blast_period / 2; t < config.duration; t += config.blast_period) {
      scenario->AddFlow("blast", t, std::min(config.blast_on, config.duration - t));
    }
  }
  return scenario;
}

AdversarialResult RunAdversarial(const AdversarialConfig& config) {
  auto scenario = BuildAdversarial(config);
  const TimeNs horizon = config.duration + Milliseconds(50);
  scenario->Run(horizon);

  AdversarialResult result;
  const Network& net = scenario->network();
  uint64_t blast_acked = 0;
  uint64_t total_acked = 0;
  for (int flow = 0; flow < static_cast<int>(net.flow_count()); ++flow) {
    const FlowStats& stats = net.flow_stats(flow);
    total_acked += stats.bytes_acked;
    const std::string& scheme = net.flow_spec(flow).scheme;
    if (scheme == "blast") {
      blast_acked += stats.bytes_acked;
    } else if (flow >= static_cast<int>(config.long_flows)) {
      ++result.churn_flows;
    }
  }
  result.blast_share =
      total_acked > 0 ? static_cast<double>(blast_acked) / static_cast<double>(total_acked)
                      : 0.0;
  // Score the long-lived foreground flows over the steady window (skip the
  // first second of slow start).
  const TimeNs begin = std::min(Seconds(1.0), config.duration / 10);
  result.metrics = ScoreUniverseWindow(*scenario, begin, horizon, 0,
                                       static_cast<int>(config.long_flows), config.seed);
  return result;
}

// ----------------------------------------------------------- shard protocol

const char* UniverseFamilyName(UniverseFamily family) {
  switch (family) {
    case UniverseFamily::kIncast:
      return "incast";
    case UniverseFamily::kTraceDriven:
      return "trace_driven";
    case UniverseFamily::kAdversarial:
      return "adversarial";
  }
  return "unknown";
}

ShardResult RunUniverseShard(const ShardedUniverseConfig& config, size_t shard_index) {
  const uint64_t shard_seed = Rng::DeriveSeed(config.seed_stream, shard_index);
  std::unique_ptr<DumbbellScenario> scenario;
  TimeNs horizon = 0;
  switch (config.family) {
    case UniverseFamily::kIncast: {
      IncastConfig c = config.incast;
      c.seed = shard_seed;
      scenario = BuildIncast(c);
      horizon = IncastHorizon(c);
      break;
    }
    case UniverseFamily::kTraceDriven: {
      TraceDrivenConfig c = config.trace_driven;
      c.seed = shard_seed;
      scenario = BuildTraceDriven(c);
      horizon = c.duration + Milliseconds(50);
      break;
    }
    case UniverseFamily::kAdversarial: {
      AdversarialConfig c = config.adversarial;
      c.seed = shard_seed;
      scenario = BuildAdversarial(c);
      horizon = c.duration + Milliseconds(50);
      break;
    }
  }
  scenario->Run(horizon);

  Network& net = scenario->network();
  ShardResult result;
  result.events_executed = net.events().executed();
  result.packet_slots = net.packet_pool().capacity();
  result.packets_live = net.packet_pool().live();
  result.packets_recycled = net.packet_pool().recycled();
  for (int flow = 0; flow < static_cast<int>(net.flow_count()); ++flow) {
    const FlowStats& stats = net.flow_stats(flow);
    result.bytes_acked += stats.bytes_acked;
    result.bytes_lost += stats.bytes_lost;
  }
  result.fingerprint = FingerprintScenario(net, 0xA57AEA0400000000ULL + shard_index);
  return result;
}

ShardedRunResult RunShardedUniverse(const ShardedUniverseConfig& config) {
  ShardedRunResult result;
  result.shards = ParallelMap(
      config.shards, [&config](size_t shard) { return RunUniverseShard(config, shard); },
      config.workers);
  for (const ShardResult& shard : result.shards) {
    result.events_executed += shard.events_executed;
    result.bytes_acked += shard.bytes_acked;
    result.bytes_lost += shard.bytes_lost;
    result.max_packet_slots = std::max(result.max_packet_slots, shard.packet_slots);
    result.fingerprint = MixFingerprint(result.fingerprint, shard.fingerprint);
  }
  return result;
}

}  // namespace astraea
