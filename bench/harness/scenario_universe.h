// Scenario universe (ROADMAP item 4): three workload families that stress the
// controllers beyond the paper's figures, built on the PR-6 sharded scenario
// harness so every family is deterministic, invariant-checkable and
// worker-invariant (1-vs-N fingerprint equality).
//
//  * Datacenter — N-to-1 incast with synchronized request waves on a
//    shallow-buffer, high-bandwidth, microsecond-RTT bottleneck, optionally
//    behind a DCTCP-style EcnMarkingQueue (ECN-blind schemes keep the
//    delay/drop signal: the marking queue never touches non-ECT packets).
//  * Trace-driven — the bottleneck's service rate replayed from a
//    Mahimahi-compatible capture (src/sim/link_trace.h; bundled
//    cellular/satellite traces under traces/).
//  * Adversarial — heavy-tailed (Pareto on/off) flow churn plus periodic
//    unresponsive UDP blasts that induce bufferbloat under long-lived
//    foreground flows.
//
// Each Build* function returns a ready-to-run DumbbellScenario; Run* wraps it
// with the family's scoring. RunUniverseShard/RunShardedUniverse apply the
// PR-6 shard protocol (Rng::DeriveSeed per shard, MixFingerprint aggregation
// in shard-index order) to any family.

#ifndef BENCH_HARNESS_SCENARIO_UNIVERSE_H_
#define BENCH_HARNESS_SCENARIO_UNIVERSE_H_

#include <memory>
#include <string>
#include <vector>

#include "bench/harness/scenario.h"
#include "src/sim/link_trace.h"

namespace astraea {

// Seed stream for the universe's sharded runs (distinct from
// kSimScaleSeedStream so the families never alias the scale bench).
inline constexpr uint64_t kUniverseSeedStream = 0xA57AEA04;

// Shared score columns (the BENCH_scenario_universe.json schema).
struct UniverseMetrics {
  double utilization = 0.0;    // delivered / capacity over the scored window
  double jain = 1.0;           // average Jain index over the scored window
  double p95_delay_ms = 0.0;   // p95 of per-MTP mean RTTs
  double loss_ratio = 0.0;     // lost / (lost + acked) bytes
  double goodput_mbps = 0.0;   // aggregate ACKed rate
  uint64_t fingerprint = 0;    // order-sensitive digest of per-flow outcomes
};

// ------------------------------------------------------------- datacenter

struct IncastConfig {
  RateBps bandwidth = Gbps(1);
  TimeNs base_rtt = Microseconds(500);
  uint64_t buffer_bytes = 128 * 1024;  // shallow: ~1/10 BDP at these defaults
  size_t fan_in = 32;                  // N synchronized senders to one sink
  uint64_t request_bytes = 64 * 1024;  // per-sender response size
  size_t waves = 2;                    // synchronized request rounds
  TimeNs wave_interval = Milliseconds(100);
  // Tiny per-flow start jitter inside a wave (switch arbitration, not
  // pacing): drawn per flow from the scenario seed.
  TimeNs start_jitter = Microseconds(50);
  std::string scheme = "dctcp";
  bool ecn = true;
  uint64_t ecn_threshold_bytes = 30'000;  // DCTCP K, below the buffer limit
  uint64_t seed = 1;
};

struct IncastResult {
  UniverseMetrics metrics;
  size_t requests = 0;        // fan_in * waves
  size_t completed = 0;       // requests fully resolved before the horizon
  double p95_fct_ms = 0.0;    // p95 flow completion time over completed
  double max_fct_ms = 0.0;
  uint64_t ecn_marked = 0;    // CE marks applied at the bottleneck
};

// Builds the incast dumbbell: one budgeted flow per (sender, wave), all of a
// wave starting within start_jitter of the wave boundary. `base_options`
// (when non-null) seeds the scenario's SchemeOptions before flows are added —
// how golden_trace pins the Astraea policy.
std::unique_ptr<DumbbellScenario> BuildIncast(const IncastConfig& config,
                                              const SchemeOptions* base_options = nullptr);
// The simulated horizon RunIncast uses (last wave + drain time).
TimeNs IncastHorizon(const IncastConfig& config);
IncastResult RunIncast(const IncastConfig& config);

// ------------------------------------------------------------ trace-driven

struct TraceDrivenConfig {
  std::string trace_path;                    // Mahimahi file, loaded when set
  std::shared_ptr<RateProvider> trace;       // pre-built override (tests)
  uint32_t mtu_bytes = 1500;
  TimeNs granularity = Milliseconds(20);     // bucketing for loaded traces
  TimeNs base_rtt = Milliseconds(40);
  double buffer_bdp = 20.0;                  // cellular-style deep buffer
  double random_loss = 0.0;
  std::string scheme = "astraea";
  size_t flows = 1;
  TimeNs duration = Seconds(10.0);
  uint64_t seed = 1;
};

struct TraceDrivenResult {
  UniverseMetrics metrics;
};

std::unique_ptr<DumbbellScenario> BuildTraceDriven(const TraceDrivenConfig& config,
                                                   const SchemeOptions* base_options = nullptr);
TraceDrivenResult RunTraceDriven(const TraceDrivenConfig& config);

// ------------------------------------------------------------- adversarial

struct AdversarialConfig {
  RateBps bandwidth = Mbps(100);
  TimeNs base_rtt = Milliseconds(30);
  double buffer_bdp = 2.0;
  std::string scheme = "cubic";        // long-lived foreground flows
  size_t long_flows = 2;
  // Heavy-tailed churn: churn_slots independent on/off processes, each ON
  // period one `churn_scheme` flow with Pareto(alpha, min_on) duration and
  // Exponential(mean_off) gaps. All periods are precomputed from the seed,
  // so the schedule is deterministic.
  size_t churn_slots = 4;
  std::string churn_scheme = "newreno";
  double pareto_alpha = 1.5;           // heavy-tailed but finite-mean
  TimeNs pareto_min_on = Milliseconds(200);
  TimeNs mean_off = Milliseconds(300);
  // Bufferbloat blasts: an unresponsive UDP flow at blast_fraction of the
  // bottleneck rate, ON for blast_on at every blast_period boundary.
  double blast_fraction = 0.5;         // 0 disables the blaster
  TimeNs blast_period = Seconds(4.0);
  TimeNs blast_on = Seconds(1.0);
  TimeNs duration = Seconds(10.0);
  uint64_t seed = 1;
};

struct AdversarialResult {
  UniverseMetrics metrics;   // scored over the foreground (long-lived) flows
  size_t churn_flows = 0;    // ON periods scheduled across all slots
  double blast_share = 0.0;  // fraction of delivered bytes taken by blasts
};

std::unique_ptr<DumbbellScenario> BuildAdversarial(const AdversarialConfig& config,
                                                   const SchemeOptions* base_options = nullptr);
AdversarialResult RunAdversarial(const AdversarialConfig& config);

// ----------------------------------------------------------- shard protocol

enum class UniverseFamily { kIncast, kTraceDriven, kAdversarial };

const char* UniverseFamilyName(UniverseFamily family);

// One sharded universe run: `shards` independent copies of the chosen family,
// shard i seeded with Rng::DeriveSeed(seed_stream, i) (overriding the family
// config's own seed). Reuses ShardResult/ShardedRunResult from scenario.h so
// the PR-6 worker-invariance tests and tooling apply unchanged.
struct ShardedUniverseConfig {
  UniverseFamily family = UniverseFamily::kIncast;
  IncastConfig incast;
  TraceDrivenConfig trace_driven;
  AdversarialConfig adversarial;
  size_t shards = 1;
  size_t workers = 1;  // <=1 runs inline on the calling thread
  uint64_t seed_stream = kUniverseSeedStream;
};

ShardResult RunUniverseShard(const ShardedUniverseConfig& config, size_t shard_index);
ShardedRunResult RunShardedUniverse(const ShardedUniverseConfig& config);

// Digest of a finished scenario's per-flow outcomes (bytes sent/acked/lost,
// completion times) and event count — the fingerprint every family reports.
uint64_t FingerprintScenario(const Network& net, uint64_t salt);

// Scores the shared metric columns over [begin, end), restricted to flows
// [first_flow, last_flow) (so adversarial runs can score foreground flows
// only). Jain uses MTP-sized slots; p95 delay uses per-MTP mean RTTs.
UniverseMetrics ScoreUniverseWindow(DumbbellScenario& scenario, TimeNs begin, TimeNs end,
                                    int first_flow, int last_flow, uint64_t fp_salt);

}  // namespace astraea

#endif  // BENCH_HARNESS_SCENARIO_UNIVERSE_H_
