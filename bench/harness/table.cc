#include "bench/harness/table.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace astraea {

ConsoleTable::ConsoleTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void ConsoleTable::AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string ConsoleTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void ConsoleTable::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf("%-*s  ", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  for (size_t i = 0; i < total; ++i) {
    std::printf("-");
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void PrintBenchHeader(const std::string& artifact, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("Astraea reproduction — %s\n", artifact.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("==============================================================\n");
}

int BenchReps(int fallback) {
  if (const char* env = std::getenv("ASTRAEA_BENCH_REPS"); env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) {
      return v;
    }
  }
  return fallback;
}

bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace astraea
