// Fixed-width console table printer for the bench binaries, so every bench
// emits paper-style rows without hand-formatting.

#ifndef BENCH_HARNESS_TABLE_H_
#define BENCH_HARNESS_TABLE_H_

#include <string>
#include <vector>

namespace astraea {

class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);

  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a bench banner: which paper artifact this binary regenerates.
void PrintBenchHeader(const std::string& artifact, const std::string& description);

// Bench repetition count: ASTRAEA_BENCH_REPS env var, default `fallback`.
int BenchReps(int fallback = 3);

// True when --quick was passed (benches shrink durations).
bool QuickMode(int argc, char** argv);

}  // namespace astraea

#endif  // BENCH_HARNESS_TABLE_H_
