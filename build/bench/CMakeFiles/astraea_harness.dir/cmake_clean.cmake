file(REMOVE_RECURSE
  "CMakeFiles/astraea_harness.dir/harness/experiments.cc.o"
  "CMakeFiles/astraea_harness.dir/harness/experiments.cc.o.d"
  "CMakeFiles/astraea_harness.dir/harness/metrics.cc.o"
  "CMakeFiles/astraea_harness.dir/harness/metrics.cc.o.d"
  "CMakeFiles/astraea_harness.dir/harness/scenario.cc.o"
  "CMakeFiles/astraea_harness.dir/harness/scenario.cc.o.d"
  "CMakeFiles/astraea_harness.dir/harness/table.cc.o"
  "CMakeFiles/astraea_harness.dir/harness/table.cc.o.d"
  "libastraea_harness.a"
  "libastraea_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astraea_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
