file(REMOVE_RECURSE
  "libastraea_harness.a"
)
