# Empty dependencies file for astraea_harness.
# This may be replaced when dependencies are built.
