file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_astraea.dir/bench_ablation_astraea.cc.o"
  "CMakeFiles/bench_ablation_astraea.dir/bench_ablation_astraea.cc.o.d"
  "bench_ablation_astraea"
  "bench_ablation_astraea.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_astraea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
