# Empty dependencies file for bench_ablation_astraea.
# This may be replaced when dependencies are built.
