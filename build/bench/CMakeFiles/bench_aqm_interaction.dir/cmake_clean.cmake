file(REMOVE_RECURSE
  "CMakeFiles/bench_aqm_interaction.dir/bench_aqm_interaction.cc.o"
  "CMakeFiles/bench_aqm_interaction.dir/bench_aqm_interaction.cc.o.d"
  "bench_aqm_interaction"
  "bench_aqm_interaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aqm_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
