# Empty dependencies file for bench_fig10_many_flows.
# This may be replaced when dependencies are built.
