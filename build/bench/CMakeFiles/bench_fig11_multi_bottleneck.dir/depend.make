# Empty dependencies file for bench_fig11_multi_bottleneck.
# This may be replaced when dependencies are built.
