# Empty dependencies file for bench_fig12_convergence_stability.
# This may be replaced when dependencies are built.
