file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_cellular.dir/bench_fig13_cellular.cc.o"
  "CMakeFiles/bench_fig13_cellular.dir/bench_fig13_cellular.cc.o.d"
  "bench_fig13_cellular"
  "bench_fig13_cellular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_cellular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
