file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_friendliness.dir/bench_fig14_friendliness.cc.o"
  "CMakeFiles/bench_fig14_friendliness.dir/bench_fig14_friendliness.cc.o.d"
  "bench_fig14_friendliness"
  "bench_fig14_friendliness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_friendliness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
