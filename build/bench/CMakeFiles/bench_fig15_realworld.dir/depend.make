# Empty dependencies file for bench_fig15_realworld.
# This may be replaced when dependencies are built.
