# Empty dependencies file for bench_fig17_policy_map.
# This may be replaced when dependencies are built.
