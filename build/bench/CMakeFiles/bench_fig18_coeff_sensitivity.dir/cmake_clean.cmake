file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_coeff_sensitivity.dir/bench_fig18_coeff_sensitivity.cc.o"
  "CMakeFiles/bench_fig18_coeff_sensitivity.dir/bench_fig18_coeff_sensitivity.cc.o.d"
  "bench_fig18_coeff_sensitivity"
  "bench_fig18_coeff_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_coeff_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
