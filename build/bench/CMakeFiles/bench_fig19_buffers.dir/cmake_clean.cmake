file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_buffers.dir/bench_fig19_buffers.cc.o"
  "CMakeFiles/bench_fig19_buffers.dir/bench_fig19_buffers.cc.o.d"
  "bench_fig19_buffers"
  "bench_fig19_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
