# Empty dependencies file for bench_fig19_buffers.
# This may be replaced when dependencies are built.
