file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_satellite.dir/bench_fig20_satellite.cc.o"
  "CMakeFiles/bench_fig20_satellite.dir/bench_fig20_satellite.cc.o.d"
  "bench_fig20_satellite"
  "bench_fig20_satellite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_satellite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
