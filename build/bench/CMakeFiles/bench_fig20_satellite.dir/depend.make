# Empty dependencies file for bench_fig20_satellite.
# This may be replaced when dependencies are built.
