file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_highspeed.dir/bench_fig22_highspeed.cc.o"
  "CMakeFiles/bench_fig22_highspeed.dir/bench_fig22_highspeed.cc.o.d"
  "bench_fig22_highspeed"
  "bench_fig22_highspeed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_highspeed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
