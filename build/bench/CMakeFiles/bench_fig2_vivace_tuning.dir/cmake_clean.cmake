file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_vivace_tuning.dir/bench_fig2_vivace_tuning.cc.o"
  "CMakeFiles/bench_fig2_vivace_tuning.dir/bench_fig2_vivace_tuning.cc.o.d"
  "bench_fig2_vivace_tuning"
  "bench_fig2_vivace_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_vivace_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
