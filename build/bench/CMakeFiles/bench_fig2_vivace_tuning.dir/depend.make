# Empty dependencies file for bench_fig2_vivace_tuning.
# This may be replaced when dependencies are built.
