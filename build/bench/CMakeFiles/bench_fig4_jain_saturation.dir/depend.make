# Empty dependencies file for bench_fig4_jain_saturation.
# This may be replaced when dependencies are built.
