# Empty compiler generated dependencies file for bench_fig7_jain_cdf.
# This may be replaced when dependencies are built.
