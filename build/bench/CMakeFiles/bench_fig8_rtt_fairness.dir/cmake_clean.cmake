file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_rtt_fairness.dir/bench_fig8_rtt_fairness.cc.o"
  "CMakeFiles/bench_fig8_rtt_fairness.dir/bench_fig8_rtt_fairness.cc.o.d"
  "bench_fig8_rtt_fairness"
  "bench_fig8_rtt_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_rtt_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
