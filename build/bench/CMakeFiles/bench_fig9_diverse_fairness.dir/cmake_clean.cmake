file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_diverse_fairness.dir/bench_fig9_diverse_fairness.cc.o"
  "CMakeFiles/bench_fig9_diverse_fairness.dir/bench_fig9_diverse_fairness.cc.o.d"
  "bench_fig9_diverse_fairness"
  "bench_fig9_diverse_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_diverse_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
