# Empty dependencies file for bench_fig9_diverse_fairness.
# This may be replaced when dependencies are built.
