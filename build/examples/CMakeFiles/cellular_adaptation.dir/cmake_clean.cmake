file(REMOVE_RECURSE
  "CMakeFiles/cellular_adaptation.dir/cellular_adaptation.cpp.o"
  "CMakeFiles/cellular_adaptation.dir/cellular_adaptation.cpp.o.d"
  "cellular_adaptation"
  "cellular_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellular_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
