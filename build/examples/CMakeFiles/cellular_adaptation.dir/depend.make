# Empty dependencies file for cellular_adaptation.
# This may be replaced when dependencies are built.
