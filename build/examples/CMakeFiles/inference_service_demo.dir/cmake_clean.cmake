file(REMOVE_RECURSE
  "CMakeFiles/inference_service_demo.dir/inference_service_demo.cpp.o"
  "CMakeFiles/inference_service_demo.dir/inference_service_demo.cpp.o.d"
  "inference_service_demo"
  "inference_service_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inference_service_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
