# Empty compiler generated dependencies file for inference_service_demo.
# This may be replaced when dependencies are built.
