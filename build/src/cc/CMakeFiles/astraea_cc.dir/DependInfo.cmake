
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/aurora.cc" "src/cc/CMakeFiles/astraea_cc.dir/aurora.cc.o" "gcc" "src/cc/CMakeFiles/astraea_cc.dir/aurora.cc.o.d"
  "/root/repo/src/cc/bbr.cc" "src/cc/CMakeFiles/astraea_cc.dir/bbr.cc.o" "gcc" "src/cc/CMakeFiles/astraea_cc.dir/bbr.cc.o.d"
  "/root/repo/src/cc/copa.cc" "src/cc/CMakeFiles/astraea_cc.dir/copa.cc.o" "gcc" "src/cc/CMakeFiles/astraea_cc.dir/copa.cc.o.d"
  "/root/repo/src/cc/cubic.cc" "src/cc/CMakeFiles/astraea_cc.dir/cubic.cc.o" "gcc" "src/cc/CMakeFiles/astraea_cc.dir/cubic.cc.o.d"
  "/root/repo/src/cc/newreno.cc" "src/cc/CMakeFiles/astraea_cc.dir/newreno.cc.o" "gcc" "src/cc/CMakeFiles/astraea_cc.dir/newreno.cc.o.d"
  "/root/repo/src/cc/orca.cc" "src/cc/CMakeFiles/astraea_cc.dir/orca.cc.o" "gcc" "src/cc/CMakeFiles/astraea_cc.dir/orca.cc.o.d"
  "/root/repo/src/cc/remy.cc" "src/cc/CMakeFiles/astraea_cc.dir/remy.cc.o" "gcc" "src/cc/CMakeFiles/astraea_cc.dir/remy.cc.o.d"
  "/root/repo/src/cc/vegas.cc" "src/cc/CMakeFiles/astraea_cc.dir/vegas.cc.o" "gcc" "src/cc/CMakeFiles/astraea_cc.dir/vegas.cc.o.d"
  "/root/repo/src/cc/vivace.cc" "src/cc/CMakeFiles/astraea_cc.dir/vivace.cc.o" "gcc" "src/cc/CMakeFiles/astraea_cc.dir/vivace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/astraea_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/astraea_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/astraea_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
