file(REMOVE_RECURSE
  "CMakeFiles/astraea_cc.dir/aurora.cc.o"
  "CMakeFiles/astraea_cc.dir/aurora.cc.o.d"
  "CMakeFiles/astraea_cc.dir/bbr.cc.o"
  "CMakeFiles/astraea_cc.dir/bbr.cc.o.d"
  "CMakeFiles/astraea_cc.dir/copa.cc.o"
  "CMakeFiles/astraea_cc.dir/copa.cc.o.d"
  "CMakeFiles/astraea_cc.dir/cubic.cc.o"
  "CMakeFiles/astraea_cc.dir/cubic.cc.o.d"
  "CMakeFiles/astraea_cc.dir/newreno.cc.o"
  "CMakeFiles/astraea_cc.dir/newreno.cc.o.d"
  "CMakeFiles/astraea_cc.dir/orca.cc.o"
  "CMakeFiles/astraea_cc.dir/orca.cc.o.d"
  "CMakeFiles/astraea_cc.dir/remy.cc.o"
  "CMakeFiles/astraea_cc.dir/remy.cc.o.d"
  "CMakeFiles/astraea_cc.dir/vegas.cc.o"
  "CMakeFiles/astraea_cc.dir/vegas.cc.o.d"
  "CMakeFiles/astraea_cc.dir/vivace.cc.o"
  "CMakeFiles/astraea_cc.dir/vivace.cc.o.d"
  "libastraea_cc.a"
  "libastraea_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astraea_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
