file(REMOVE_RECURSE
  "libastraea_cc.a"
)
