# Empty compiler generated dependencies file for astraea_cc.
# This may be replaced when dependencies are built.
