
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/astraea_controller.cc" "src/core/CMakeFiles/astraea_core.dir/astraea_controller.cc.o" "gcc" "src/core/CMakeFiles/astraea_core.dir/astraea_controller.cc.o.d"
  "/root/repo/src/core/inference_service.cc" "src/core/CMakeFiles/astraea_core.dir/inference_service.cc.o" "gcc" "src/core/CMakeFiles/astraea_core.dir/inference_service.cc.o.d"
  "/root/repo/src/core/learner.cc" "src/core/CMakeFiles/astraea_core.dir/learner.cc.o" "gcc" "src/core/CMakeFiles/astraea_core.dir/learner.cc.o.d"
  "/root/repo/src/core/multi_flow_env.cc" "src/core/CMakeFiles/astraea_core.dir/multi_flow_env.cc.o" "gcc" "src/core/CMakeFiles/astraea_core.dir/multi_flow_env.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/core/CMakeFiles/astraea_core.dir/policy.cc.o" "gcc" "src/core/CMakeFiles/astraea_core.dir/policy.cc.o.d"
  "/root/repo/src/core/reward.cc" "src/core/CMakeFiles/astraea_core.dir/reward.cc.o" "gcc" "src/core/CMakeFiles/astraea_core.dir/reward.cc.o.d"
  "/root/repo/src/core/schemes.cc" "src/core/CMakeFiles/astraea_core.dir/schemes.cc.o" "gcc" "src/core/CMakeFiles/astraea_core.dir/schemes.cc.o.d"
  "/root/repo/src/core/state_block.cc" "src/core/CMakeFiles/astraea_core.dir/state_block.cc.o" "gcc" "src/core/CMakeFiles/astraea_core.dir/state_block.cc.o.d"
  "/root/repo/src/core/training_config.cc" "src/core/CMakeFiles/astraea_core.dir/training_config.cc.o" "gcc" "src/core/CMakeFiles/astraea_core.dir/training_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cc/CMakeFiles/astraea_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/astraea_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/astraea_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/astraea_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/astraea_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
