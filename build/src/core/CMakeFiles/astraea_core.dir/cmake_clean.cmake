file(REMOVE_RECURSE
  "CMakeFiles/astraea_core.dir/astraea_controller.cc.o"
  "CMakeFiles/astraea_core.dir/astraea_controller.cc.o.d"
  "CMakeFiles/astraea_core.dir/inference_service.cc.o"
  "CMakeFiles/astraea_core.dir/inference_service.cc.o.d"
  "CMakeFiles/astraea_core.dir/learner.cc.o"
  "CMakeFiles/astraea_core.dir/learner.cc.o.d"
  "CMakeFiles/astraea_core.dir/multi_flow_env.cc.o"
  "CMakeFiles/astraea_core.dir/multi_flow_env.cc.o.d"
  "CMakeFiles/astraea_core.dir/policy.cc.o"
  "CMakeFiles/astraea_core.dir/policy.cc.o.d"
  "CMakeFiles/astraea_core.dir/reward.cc.o"
  "CMakeFiles/astraea_core.dir/reward.cc.o.d"
  "CMakeFiles/astraea_core.dir/schemes.cc.o"
  "CMakeFiles/astraea_core.dir/schemes.cc.o.d"
  "CMakeFiles/astraea_core.dir/state_block.cc.o"
  "CMakeFiles/astraea_core.dir/state_block.cc.o.d"
  "CMakeFiles/astraea_core.dir/training_config.cc.o"
  "CMakeFiles/astraea_core.dir/training_config.cc.o.d"
  "libastraea_core.a"
  "libastraea_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astraea_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
