file(REMOVE_RECURSE
  "libastraea_core.a"
)
