# Empty compiler generated dependencies file for astraea_core.
# This may be replaced when dependencies are built.
