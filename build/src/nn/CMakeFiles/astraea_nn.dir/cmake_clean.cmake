file(REMOVE_RECURSE
  "CMakeFiles/astraea_nn.dir/mlp.cc.o"
  "CMakeFiles/astraea_nn.dir/mlp.cc.o.d"
  "libastraea_nn.a"
  "libastraea_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astraea_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
