file(REMOVE_RECURSE
  "libastraea_nn.a"
)
