# Empty dependencies file for astraea_nn.
# This may be replaced when dependencies are built.
