file(REMOVE_RECURSE
  "CMakeFiles/astraea_rl.dir/td3.cc.o"
  "CMakeFiles/astraea_rl.dir/td3.cc.o.d"
  "libastraea_rl.a"
  "libastraea_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astraea_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
