file(REMOVE_RECURSE
  "libastraea_rl.a"
)
