# Empty compiler generated dependencies file for astraea_rl.
# This may be replaced when dependencies are built.
