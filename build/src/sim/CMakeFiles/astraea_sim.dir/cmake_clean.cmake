file(REMOVE_RECURSE
  "CMakeFiles/astraea_sim.dir/endpoint.cc.o"
  "CMakeFiles/astraea_sim.dir/endpoint.cc.o.d"
  "CMakeFiles/astraea_sim.dir/event_queue.cc.o"
  "CMakeFiles/astraea_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/astraea_sim.dir/link.cc.o"
  "CMakeFiles/astraea_sim.dir/link.cc.o.d"
  "CMakeFiles/astraea_sim.dir/network.cc.o"
  "CMakeFiles/astraea_sim.dir/network.cc.o.d"
  "CMakeFiles/astraea_sim.dir/queue_disc.cc.o"
  "CMakeFiles/astraea_sim.dir/queue_disc.cc.o.d"
  "CMakeFiles/astraea_sim.dir/rate_provider.cc.o"
  "CMakeFiles/astraea_sim.dir/rate_provider.cc.o.d"
  "libastraea_sim.a"
  "libastraea_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astraea_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
