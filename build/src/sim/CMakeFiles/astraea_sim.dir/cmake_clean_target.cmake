file(REMOVE_RECURSE
  "libastraea_sim.a"
)
