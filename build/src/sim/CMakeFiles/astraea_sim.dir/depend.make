# Empty dependencies file for astraea_sim.
# This may be replaced when dependencies are built.
