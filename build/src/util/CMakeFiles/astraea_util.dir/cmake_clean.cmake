file(REMOVE_RECURSE
  "CMakeFiles/astraea_util.dir/logging.cc.o"
  "CMakeFiles/astraea_util.dir/logging.cc.o.d"
  "CMakeFiles/astraea_util.dir/serialization.cc.o"
  "CMakeFiles/astraea_util.dir/serialization.cc.o.d"
  "CMakeFiles/astraea_util.dir/stats.cc.o"
  "CMakeFiles/astraea_util.dir/stats.cc.o.d"
  "CMakeFiles/astraea_util.dir/time.cc.o"
  "CMakeFiles/astraea_util.dir/time.cc.o.d"
  "libastraea_util.a"
  "libastraea_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astraea_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
