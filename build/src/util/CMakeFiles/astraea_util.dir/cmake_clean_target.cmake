file(REMOVE_RECURSE
  "libastraea_util.a"
)
