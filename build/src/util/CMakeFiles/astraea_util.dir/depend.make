# Empty dependencies file for astraea_util.
# This may be replaced when dependencies are built.
