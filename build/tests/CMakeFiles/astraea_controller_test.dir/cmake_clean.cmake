file(REMOVE_RECURSE
  "CMakeFiles/astraea_controller_test.dir/astraea_controller_test.cc.o"
  "CMakeFiles/astraea_controller_test.dir/astraea_controller_test.cc.o.d"
  "astraea_controller_test"
  "astraea_controller_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astraea_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
