# Empty dependencies file for astraea_controller_test.
# This may be replaced when dependencies are built.
