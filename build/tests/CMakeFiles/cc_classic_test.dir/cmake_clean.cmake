file(REMOVE_RECURSE
  "CMakeFiles/cc_classic_test.dir/cc_classic_test.cc.o"
  "CMakeFiles/cc_classic_test.dir/cc_classic_test.cc.o.d"
  "cc_classic_test"
  "cc_classic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_classic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
