# Empty dependencies file for cc_classic_test.
# This may be replaced when dependencies are built.
