file(REMOVE_RECURSE
  "CMakeFiles/cc_learning_test.dir/cc_learning_test.cc.o"
  "CMakeFiles/cc_learning_test.dir/cc_learning_test.cc.o.d"
  "cc_learning_test"
  "cc_learning_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_learning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
