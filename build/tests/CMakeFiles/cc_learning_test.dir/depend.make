# Empty dependencies file for cc_learning_test.
# This may be replaced when dependencies are built.
