file(REMOVE_RECURSE
  "CMakeFiles/cc_property_test.dir/cc_property_test.cc.o"
  "CMakeFiles/cc_property_test.dir/cc_property_test.cc.o.d"
  "cc_property_test"
  "cc_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
