# Empty dependencies file for cc_property_test.
# This may be replaced when dependencies are built.
