file(REMOVE_RECURSE
  "CMakeFiles/controller_corners_test.dir/controller_corners_test.cc.o"
  "CMakeFiles/controller_corners_test.dir/controller_corners_test.cc.o.d"
  "controller_corners_test"
  "controller_corners_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_corners_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
