# Empty dependencies file for controller_corners_test.
# This may be replaced when dependencies are built.
