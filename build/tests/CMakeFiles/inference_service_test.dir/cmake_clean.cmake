file(REMOVE_RECURSE
  "CMakeFiles/inference_service_test.dir/inference_service_test.cc.o"
  "CMakeFiles/inference_service_test.dir/inference_service_test.cc.o.d"
  "inference_service_test"
  "inference_service_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inference_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
