# Empty dependencies file for inference_service_test.
# This may be replaced when dependencies are built.
