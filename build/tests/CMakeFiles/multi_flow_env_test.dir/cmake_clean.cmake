file(REMOVE_RECURSE
  "CMakeFiles/multi_flow_env_test.dir/multi_flow_env_test.cc.o"
  "CMakeFiles/multi_flow_env_test.dir/multi_flow_env_test.cc.o.d"
  "multi_flow_env_test"
  "multi_flow_env_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_flow_env_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
