# Empty dependencies file for multi_flow_env_test.
# This may be replaced when dependencies are built.
