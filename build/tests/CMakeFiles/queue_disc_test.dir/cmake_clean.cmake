file(REMOVE_RECURSE
  "CMakeFiles/queue_disc_test.dir/queue_disc_test.cc.o"
  "CMakeFiles/queue_disc_test.dir/queue_disc_test.cc.o.d"
  "queue_disc_test"
  "queue_disc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_disc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
