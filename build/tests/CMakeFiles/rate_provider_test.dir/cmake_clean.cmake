file(REMOVE_RECURSE
  "CMakeFiles/rate_provider_test.dir/rate_provider_test.cc.o"
  "CMakeFiles/rate_provider_test.dir/rate_provider_test.cc.o.d"
  "rate_provider_test"
  "rate_provider_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rate_provider_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
