# Empty compiler generated dependencies file for rate_provider_test.
# This may be replaced when dependencies are built.
