file(REMOVE_RECURSE
  "CMakeFiles/state_block_test.dir/state_block_test.cc.o"
  "CMakeFiles/state_block_test.dir/state_block_test.cc.o.d"
  "state_block_test"
  "state_block_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_block_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
