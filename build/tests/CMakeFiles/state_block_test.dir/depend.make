# Empty dependencies file for state_block_test.
# This may be replaced when dependencies are built.
