file(REMOVE_RECURSE
  "CMakeFiles/td3_test.dir/td3_test.cc.o"
  "CMakeFiles/td3_test.dir/td3_test.cc.o.d"
  "td3_test"
  "td3_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/td3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
