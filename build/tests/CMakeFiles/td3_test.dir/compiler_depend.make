# Empty compiler generated dependencies file for td3_test.
# This may be replaced when dependencies are built.
