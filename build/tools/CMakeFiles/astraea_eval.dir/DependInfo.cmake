
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/astraea_eval.cc" "tools/CMakeFiles/astraea_eval.dir/astraea_eval.cc.o" "gcc" "tools/CMakeFiles/astraea_eval.dir/astraea_eval.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/astraea_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/astraea_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/astraea_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/astraea_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/astraea_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/astraea_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/astraea_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
