file(REMOVE_RECURSE
  "CMakeFiles/astraea_eval.dir/astraea_eval.cc.o"
  "CMakeFiles/astraea_eval.dir/astraea_eval.cc.o.d"
  "astraea_eval"
  "astraea_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astraea_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
