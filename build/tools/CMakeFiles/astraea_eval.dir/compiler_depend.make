# Empty compiler generated dependencies file for astraea_eval.
# This may be replaced when dependencies are built.
