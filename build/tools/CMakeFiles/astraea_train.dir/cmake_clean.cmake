file(REMOVE_RECURSE
  "CMakeFiles/astraea_train.dir/astraea_train.cc.o"
  "CMakeFiles/astraea_train.dir/astraea_train.cc.o.d"
  "astraea_train"
  "astraea_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astraea_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
