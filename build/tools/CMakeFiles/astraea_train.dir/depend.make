# Empty dependencies file for astraea_train.
# This may be replaced when dependencies are built.
