file(REMOVE_RECURSE
  "CMakeFiles/aurora_train.dir/aurora_train.cc.o"
  "CMakeFiles/aurora_train.dir/aurora_train.cc.o.d"
  "aurora_train"
  "aurora_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aurora_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
