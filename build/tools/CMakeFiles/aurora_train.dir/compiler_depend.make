# Empty compiler generated dependencies file for aurora_train.
# This may be replaced when dependencies are built.
