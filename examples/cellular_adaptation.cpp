// Cellular adaptation demo: an Astraea flow rides an LTE-like trace-driven
// link whose capacity swings at millisecond scale (the Fig. 13 workload).
// Prints capacity vs achieved rate side by side, plus latency inflation.

#include <cstdio>

#include "bench/harness/metrics.h"
#include "bench/harness/scenario.h"

int main(int argc, char** argv) {
  using namespace astraea;
  const std::string scheme = argc > 1 ? argv[1] : "astraea";

  const TimeNs until = Seconds(30.0);
  Rng trace_rng(5);
  auto trace = std::make_shared<RateTrace>(
      MakeLteLikeTrace(until, Milliseconds(20), Mbps(1), Mbps(60), &trace_rng));

  DumbbellConfig config;
  config.base_rtt = Milliseconds(40);
  config.buffer_bdp = 20.0;  // deep cellular buffer
  config.trace = trace;
  DumbbellScenario scenario(config);
  scenario.AddFlow(scheme, 0);
  scenario.Run(until);

  const Network& net = scenario.network();
  std::printf("scheme: %s\n\n  t(s)  capacity  achieved  rtt(ms)\n", scheme.c_str());
  for (TimeNs t = 0; t + Seconds(1.0) <= until; t += Seconds(1.0)) {
    std::printf("%6.0f  %8.1f  %8.1f  %7.1f\n", ToSeconds(t),
                trace->CapacityBits(t, t + Seconds(1.0)) / 1e6,
                net.flow_stats(0).throughput_mbps.MeanOver(t, t + Seconds(1.0)),
                net.flow_stats(0).rtt_ms.MeanOver(t, t + Seconds(1.0)));
  }
  const double achieved = net.flow_stats(0).throughput_mbps.MeanOver(Seconds(2.0), until);
  const double capacity = trace->CapacityBits(Seconds(2.0), until) / ToSeconds(until - Seconds(2.0)) / 1e6;
  std::printf("\nmean capacity %.1f Mbps, achieved %.1f Mbps (%.0f%%), p95 RTT %.0f ms "
              "(base 40)\n",
              capacity, achieved, 100.0 * achieved / capacity,
              P95RttMs(net, Seconds(2.0), until));
  return 0;
}
