// Fairness & convergence demo: the paper's headline scenario. Three Astraea
// flows join a 100 Mbps / 30 ms bottleneck 10 s apart; watch the bandwidth
// re-divide fairly at each arrival, then print the convergence metrics.
// Compare with `./fairness_convergence cubic` (or any registered scheme).

#include <cstdio>
#include <string>

#include "bench/harness/metrics.h"
#include "bench/harness/scenario.h"

int main(int argc, char** argv) {
  using namespace astraea;
  const std::string scheme = argc > 1 ? argv[1] : "astraea";

  DumbbellConfig config;
  config.bandwidth = Mbps(100);
  config.base_rtt = Milliseconds(30);
  config.buffer_bdp = 1.0;
  DumbbellScenario scenario(config);
  for (int i = 0; i < 3; ++i) {
    scenario.AddFlow(scheme, Seconds(10.0 * i));
  }
  const TimeNs until = Seconds(45.0);
  scenario.Run(until);

  const Network& net = scenario.network();
  std::printf("scheme: %s\n\n  t(s)  flow0  flow1  flow2   (Mbps)\n", scheme.c_str());
  for (TimeNs t = 0; t + Seconds(1.0) <= until; t += Seconds(1.0)) {
    std::printf("%6.0f  %5.1f  %5.1f  %5.1f\n", ToSeconds(t),
                net.flow_stats(0).throughput_mbps.MeanOver(t, t + Seconds(1.0)),
                net.flow_stats(1).throughput_mbps.MeanOver(t, t + Seconds(1.0)),
                net.flow_stats(2).throughput_mbps.MeanOver(t, t + Seconds(1.0)));
  }

  // Convergence of the last arrival toward its 33.3 Mbps fair share.
  const ConvergenceMeasurement m =
      MeasureConvergence(net, 2, Seconds(20.0), 100.0 / 3.0, 0.10, Seconds(1.0), until);
  std::printf("\navg Jain index (3-flow window): %.3f\n",
              AverageJain(net, Seconds(20.0), until, Milliseconds(500)));
  std::printf("flow2 convergence to fair share: %s\n",
              m.convergence_time < 0 ? "did not converge"
                                     : FormatTime(m.convergence_time).c_str());
  std::printf("flow2 post-convergence stddev:   %.2f Mbps\n", m.stability_mbps);
  std::printf("link utilization:                %.3f\n",
              LinkUtilization(net, 0, Seconds(20.0), until));
  return 0;
}
