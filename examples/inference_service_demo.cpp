// Inference-service demo (§4): one shared model server answering many
// senders' per-MTP requests in 5 ms batches. Shows how callers integrate the
// Submit/Flush API and how batched scoring amortizes model cost.

#include <chrono>
#include <cstdio>
#include <vector>

#include "src/core/inference_service.h"
#include "src/core/training_config.h"
#include "src/util/rng.h"

int main() {
  using namespace astraea;

  // The paper's deployment model shape: 8 features x w=5 inputs, 256/128/64.
  Rng rng(1);
  Mlp actor({40, 256, 128, 64, 1}, OutputActivation::kTanh, &rng);
  InferenceService service(std::move(actor));

  constexpr int kFlows = 200;
  std::vector<double> actions(kFlows, 0.0);

  // Each "sender" submits its state; the service answers the whole MTP's
  // worth of requests in one batched pass at the 5 ms window boundary.
  const auto t0 = std::chrono::steady_clock::now();
  Rng state_rng(2);
  for (int round = 0; round < 10; ++round) {
    for (int flow = 0; flow < kFlows; ++flow) {
      std::vector<float> state(40);
      for (auto& v : state) {
        v = static_cast<float>(state_rng.Uniform(0.0, 2.0));
      }
      service.Submit(std::move(state), [&actions, flow](double a) { actions[flow] = a; });
    }
    service.Flush();
  }
  const auto elapsed = std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - t0)
                           .count();

  std::printf("served %llu requests in %llu batches (max batch %zu)\n",
              static_cast<unsigned long long>(service.total_requests()),
              static_cast<unsigned long long>(service.total_batches()), service.max_batch());
  std::printf("total %.1f us -> %.2f us per decision (amortized)\n", elapsed,
              elapsed / static_cast<double>(service.total_requests()));
  std::printf("sample actions: %.3f %.3f %.3f (all in [-1, 1])\n", actions[0], actions[1],
              actions[2]);
  std::printf("\nthis is the §4 mechanism behind Fig. 16b: one service instance scales to "
              "hundreds of flows where per-flow inference processes cannot\n");
  return 0;
}
