// Multi-bottleneck demo: the Fig. 11 parking-lot topology built directly
// against the Network API. Flow set 1 crosses only the 100 Mbps Link 1;
// flow set 2 continues through the 20 Mbps Link 2. Astraea's shares follow
// the max-min ideal.

#include <cstdio>

#include "bench/harness/metrics.h"
#include "src/core/schemes.h"

int main(int argc, char** argv) {
  using namespace astraea;
  const int fs1_flows = argc > 1 ? std::atoi(argv[1]) : 4;

  Network net(1);
  LinkConfig link1;
  link1.name = "link1";
  link1.rate = Mbps(100);
  link1.propagation_delay = Milliseconds(15);
  link1.buffer_bytes = 2 * BdpBytes(Mbps(100), Milliseconds(30));
  net.AddLink(link1);

  LinkConfig link2;
  link2.name = "link2";
  link2.rate = Mbps(20);
  link2.propagation_delay = Milliseconds(1);
  link2.buffer_bytes = 2 * BdpBytes(Mbps(20), Milliseconds(32));
  net.AddLink(link2);

  SchemeOptions options;
  const CcFactory astraea = MakeSchemeFactory("astraea", &options);
  for (int i = 0; i < fs1_flows; ++i) {
    FlowSpec spec;
    spec.scheme = "fs1";
    spec.make_cc = astraea;
    spec.link_path = {0};
    net.AddFlow(spec);
  }
  for (int i = 0; i < 2; ++i) {
    FlowSpec spec;
    spec.scheme = "fs2";
    spec.make_cc = astraea;
    spec.link_path = {0, 1};  // both bottlenecks
    net.AddFlow(spec);
  }

  const TimeNs until = Seconds(40.0);
  net.Run(until);

  const auto thr = FlowMeanThroughputs(net, until / 3, until);
  const double fs2_ideal = fs1_flows < 8 ? 10.0 : 100.0 / (fs1_flows + 2);
  const double fs1_ideal = fs1_flows < 8 ? 80.0 / fs1_flows : 100.0 / (fs1_flows + 2);
  std::printf("topology: FS-1 (%d flows) on Link1 only; FS-2 (2 flows) on Link1+Link2\n\n",
              fs1_flows);
  for (size_t i = 0; i < thr.size(); ++i) {
    const bool is_fs1 = i < static_cast<size_t>(fs1_flows);
    std::printf("flow %zu [%s]  %6.2f Mbps  (max-min ideal %.2f)\n", i,
                is_fs1 ? "FS-1" : "FS-2", thr[i], is_fs1 ? fs1_ideal : fs2_ideal);
  }
  std::printf("\nlink1 delivered %.1f Mbps, link2 delivered %.1f Mbps\n",
              ToMbps(net.link(0).delivered_bytes() * 8.0 / ToSeconds(until)),
              ToMbps(net.link(1).delivered_bytes() * 8.0 / ToSeconds(until)));
  return 0;
}
