// Quickstart: simulate one Astraea flow on an emulated bottleneck and print
// what it achieves. This is the smallest useful program against the public
// API: build a Network, add a link, attach a flow driven by a
// CongestionController, run, read statistics.

#include <cstdio>
#include <memory>

#include "src/core/astraea_controller.h"
#include "src/core/policy.h"
#include "src/sim/network.h"

int main() {
  using namespace astraea;

  // 1. A network with one bottleneck: 100 Mbps, 30 ms base RTT, 1 BDP buffer.
  Network net(/*seed=*/1);
  LinkConfig link;
  link.rate = Mbps(100);
  link.propagation_delay = Milliseconds(15);
  link.buffer_bytes = BdpBytes(Mbps(100), Milliseconds(30));
  net.AddLink(link);

  // 2. One Astraea flow. LoadDefaultPolicy() picks up a trained checkpoint
  //    (ASTRAEA_MODEL / models/astraea_policy.ckpt) or falls back to the
  //    distilled reference policy.
  const std::shared_ptr<const Policy> policy = LoadDefaultPolicy();
  FlowSpec flow;
  flow.scheme = "astraea";
  flow.make_cc = [policy] { return std::make_unique<AstraeaController>(policy); };
  const int flow_id = net.AddFlow(flow);

  // 3. Run 20 simulated seconds.
  net.Run(Seconds(20.0));

  // 4. Read the results.
  const FlowStats& stats = net.flow_stats(flow_id);
  std::printf("policy:          %s\n", policy->name().c_str());
  std::printf("mean throughput: %.1f Mbps (link: 100)\n",
              stats.throughput_mbps.MeanOver(Seconds(2.0), Seconds(20.0)));
  std::printf("mean RTT:        %.1f ms (base: 30)\n",
              stats.rtt_ms.MeanOver(Seconds(2.0), Seconds(20.0)));
  std::printf("bytes acked:     %.1f MB, lost: %.3f MB\n", stats.bytes_acked / 1e6,
              stats.bytes_lost / 1e6);
  return 0;
}
