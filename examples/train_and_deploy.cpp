// Train-and-deploy walkthrough: the full Astraea lifecycle against the public
// API — train a (tiny-budget) policy with the multi-agent learner, checkpoint
// it, load it back as a deployable MlpPolicy, and race it on an emulated link.
//
// The two-episode budget keeps the example fast. A policy this young can
// already hold an easy two-flow link (slow start hands over near saturation),
// but it has not generalized — compare against the distilled reference on the
// harder scorecard with tools/astraea_eval. Use tools/astraea_train for real
// training runs.

#include <cstdio>

#include "bench/harness/metrics.h"
#include "bench/harness/scenario.h"
#include "src/core/learner.h"

int main() {
  using namespace astraea;

  // 1. Train: two 8-second episodes sampled from the paper's Table-3 ranges.
  LearnerConfig config;
  config.episode_length = Seconds(8.0);
  config.env_instances = 2;  // Appendix A: parallel environment instances
  config.seed = 3;
  Learner learner(config);
  std::printf("training (2 episodes x 8s, 2 env instances)...\n");
  learner.Train(2, [](const EpisodeDiagnostics& d) {
    std::printf("  episode %d: mean reward %+.4f, R_fair %.4f, critic loss %.5f\n", d.episode,
                d.env.mean_reward, d.env.mean_r_fair, d.td3.critic_loss);
  });

  // 2. Checkpoint and reload as a deployable policy.
  const std::string ckpt = "/tmp/astraea_example_policy.ckpt";
  learner.SaveCheckpoint(ckpt);
  const auto trained = LoadDefaultPolicy(ckpt);
  std::printf("checkpoint saved and reloaded: %s\n\n", trained->name().c_str());

  // 3. Deploy: two flows of each policy variant on 60 Mbps / 30 ms.
  auto race = [](std::shared_ptr<const Policy> policy) {
    DumbbellConfig link;
    link.bandwidth = Mbps(60);
    DumbbellScenario scenario(link);
    scenario.scheme_options().astraea_policy = std::move(policy);
    scenario.AddFlow("astraea", 0);
    scenario.AddFlow("astraea", Seconds(5.0));
    scenario.Run(Seconds(25.0));
    const auto thr = FlowMeanThroughputs(scenario.network(), Seconds(10.0), Seconds(25.0));
    std::printf("  flows: %.1f + %.1f Mbps, Jain %.3f, utilization %.3f\n", thr[0], thr[1],
                JainIndex(thr),
                LinkUtilization(scenario.network(), 0, Seconds(10.0), Seconds(25.0)));
  };
  std::printf("trained policy (2-episode budget):\n");
  race(trained);
  std::printf("distilled reference policy (what a full training run converges toward):\n");
  race(std::make_shared<DistilledPolicy>());
  return 0;
}
