// Fuzz target: the checkpoint container format (src/util/checkpoint.h).
// Contract under arbitrary bytes: VerifyCheckpointBlob either returns the
// payload or throws SerializationError — never crashes, never reads out of
// bounds. A returned payload must additionally be consistent with the
// footer's own size claim (round-trip property).

#include <cstdint>
#include <cstdlib>
#include <string>

#include "src/util/checkpoint.h"
#include "src/util/serialization.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string blob(reinterpret_cast<const char*>(data), size);
  try {
    const std::string payload = astraea::VerifyCheckpointBlob(blob, "fuzz");
    if (payload.size() != size - astraea::kCheckpointFooterSize) {
      std::abort();  // verifier accepted a size-inconsistent container
    }
  } catch (const astraea::SerializationError&) {
    // Expected for malformed input.
  }
  return 0;
}
