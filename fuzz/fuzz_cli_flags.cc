// Fuzz target: the CLI flag/duration parsers (src/util/cli_flags.h), via
// their non-exiting TryParse* cores. Contracts under arbitrary
// (NUL-terminated) text: no crash, no exit, and any accepted value sits
// inside the caller-declared range.

#include <cstdint>
#include <cstdlib>
#include <string>

#include "src/util/cli_flags.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  std::string why;

  int64_t i = 0;
  if (astraea::cli::TryParseInt(text.c_str(), -100, 100, &i, &why) && (i < -100 || i > 100)) {
    std::abort();
  }
  uint64_t u = 0;
  astraea::cli::TryParseU64(text.c_str(), &u, &why);
  double d = 0.0;
  if (astraea::cli::TryParseDouble(text.c_str(), 0.0, 1.0, &d, &why) && !(d >= 0.0 && d <= 1.0)) {
    std::abort();
  }
  astraea::TimeNs t = 0;
  if (astraea::cli::TryParseDuration(text.c_str(), astraea::Microseconds(10),
                                     astraea::Seconds(60.0), &t, &why) &&
      (t < astraea::Microseconds(10) || t > astraea::Seconds(60.0))) {
    std::abort();
  }
  return 0;
}
