// Fuzz target: the Mahimahi link-trace parser (src/sim/link_trace.h).
// Contract under arbitrary bytes: ParseLinkRateTrace either returns a valid
// trace or throws SerializationError — never crashes. A returned trace must
// satisfy the format's invariants (non-empty, non-decreasing, bounded), and
// its canonical text form must parse back to an equal trace (round-trip
// identity), with canonicalization a fixpoint.

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/sim/link_trace.h"
#include "src/util/serialization.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  astraea::LinkRateTrace trace;
  try {
    trace = astraea::ParseLinkRateTrace(data, size);
  } catch (const astraea::SerializationError&) {
    return 0;  // Expected for malformed input.
  }
  // Accepted input: check the parser enforced its own invariants.
  if (trace.opportunities_ms.empty() ||
      trace.opportunities_ms.size() > astraea::kMaxLinkTraceOpportunities) {
    std::abort();
  }
  int64_t prev = 0;
  for (const int64_t t : trace.opportunities_ms) {
    if (t < prev || t > astraea::kMaxLinkTraceMs) {
      std::abort();  // parser let a decreasing/out-of-range timestamp through
    }
    prev = t;
  }
  // Round trip: canonical form must parse back to an equal trace, and must
  // itself be canonical (fixpoint).
  const std::string canon = astraea::CanonicalLinkRateTrace(trace);
  const astraea::LinkRateTrace reparsed =
      astraea::ParseLinkRateTrace(canon.data(), canon.size());
  if (!(reparsed == trace)) {
    std::abort();
  }
  if (astraea::CanonicalLinkRateTrace(reparsed) != canon) {
    std::abort();
  }
  return 0;
}
