// Fuzz target: the Mlp parameter stream (src/nn/mlp.h), through both load
// paths the serving stack uses (see inference_server.cc LoadActorFile): a
// checkpoint-wrapped image when the trailing footer magic matches, a raw
// BinaryReader stream otherwise. Contract under arbitrary bytes: Mlp::Load
// either returns a network or throws SerializationError — never crashes and
// never allocates from unvalidated dimension fields.

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>

#include "src/nn/mlp.h"
#include "src/util/checkpoint.h"
#include "src/util/serialization.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string blob(reinterpret_cast<const char*>(data), size);
  try {
    if (blob.size() >= sizeof(uint32_t)) {
      uint32_t trailer = 0;
      std::memcpy(&trailer, blob.data() + blob.size() - sizeof(trailer), sizeof(trailer));
      if (trailer == astraea::kCheckpointFooterMagic) {
        blob = astraea::VerifyCheckpointBlob(std::move(blob), "fuzz");
      }
    }
    std::istringstream in(blob);
    astraea::BinaryReader reader(&in);
    (void)astraea::Mlp::Load(&reader);
  } catch (const astraea::SerializationError&) {
    // Expected for malformed input.
  }
  return 0;
}
