// Fuzz target: the UDP data-plane wire format (src/net/wire.h).
//
// Contracts under arbitrary bytes:
//   - ParseFrame never reads out of bounds, never crashes, and classifies
//     every rejection with a ParseStatus.
//   - A frame that parses OK re-serializes to the exact input bytes
//     (canonical encoding: parse ∘ serialize = identity), except that data
//     payload bytes are regenerated from (flow_id, seq) — so a data frame
//     only round-trips bit-exactly if its payload matched the pattern, which
//     the CRC already guarantees for frames the sender produced.
//   - Serializers refuse undersized buffers instead of overrunning them.

#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "src/net/wire.h"

namespace {

using astraea::net::AckFrame;
using astraea::net::FrameType;
using astraea::net::kMaxFrameBytes;
using astraea::net::ParsedFrame;
using astraea::net::ParseFrame;
using astraea::net::ParseStatus;
using astraea::net::SerializeAck;
using astraea::net::SerializeData;
using astraea::net::SerializeFin;
using astraea::net::VerifyPayloadPattern;

void RoundTrip(const uint8_t* data, size_t size, const ParsedFrame& frame) {
  uint8_t out[kMaxFrameBytes];
  size_t len = 0;
  switch (frame.type) {
    case FrameType::kData: {
      astraea::net::DataFrame d = frame.data;
      d.payload_len = static_cast<uint16_t>(frame.payload_len);
      len = SerializeData(d, out, sizeof(out));
      // Payload bytes are regenerated from (flow_id, seq); they can only
      // differ from the input if the input's payload deviated from the
      // pattern, in which case skip the bit-exact comparison below.
      if (!VerifyPayloadPattern(d.flow_id, d.seq, frame.payload, frame.payload_len)) {
        if (len != size) {
          std::abort();  // length must still be canonical
        }
        return;
      }
      break;
    }
    case FrameType::kAck:
      len = SerializeAck(frame.ack, out, sizeof(out));
      break;
    case FrameType::kFin:
      len = SerializeFin(frame.fin, /*is_ack=*/false, out, sizeof(out));
      break;
    case FrameType::kFinAck:
      len = SerializeFin(frame.fin, /*is_ack=*/true, out, sizeof(out));
      break;
  }
  if (len != size || std::memcmp(out, data, size) != 0) {
    std::abort();  // accepted frame failed to round-trip canonically
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > kMaxFrameBytes) {
    return 0;
  }
  ParsedFrame frame;
  const ParseStatus status = ParseFrame(data, size, &frame);
  if (status != ParseStatus::kOk) {
    return 0;
  }
  // Touch everything the parser claims is valid.
  if (frame.type == FrameType::kData && frame.payload_len > 0) {
    volatile uint8_t sink = frame.payload[frame.payload_len - 1];
    (void)sink;
  }
  RoundTrip(data, size, frame);
  return 0;
}
