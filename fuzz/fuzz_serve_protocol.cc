// Fuzz target: the astraea_serve shared-memory record formats
// (src/serve/serve_protocol.h). The first input byte selects the record
// kind; the rest is splatted over the record. Contracts: the validators and
// CRC functions never read past the record under any field values (notably
// state_dim far beyond kMaxStateDim), a record that validates has in-range
// fields, and re-stamping a record with its own CRC makes it valid iff its
// structural fields are in range.

#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "src/serve/serve_protocol.h"

namespace {

void FuzzRequest(const uint8_t* data, size_t size) {
  astraea::serve::RequestRecord r{};
  std::memcpy(&r, data, size < sizeof(r) ? size : sizeof(r));
  const bool valid = astraea::serve::ValidRequest(r);
  if (valid && (r.state_dim < 1 || r.state_dim > astraea::serve::kMaxStateDim)) {
    std::abort();  // validator accepted an out-of-range state_dim
  }
  // Round-trip: stamping the true CRC must validate exactly the structurally
  // sound records.
  r.crc = astraea::serve::RequestCrc(r);
  const bool dim_ok = r.state_dim >= 1 && r.state_dim <= astraea::serve::kMaxStateDim;
  if (astraea::serve::ValidRequest(r) != dim_ok) {
    std::abort();
  }
}

void FuzzResponse(const uint8_t* data, size_t size) {
  astraea::serve::ResponseRecord r{};
  std::memcpy(&r, data, size < sizeof(r) ? size : sizeof(r));
  const bool valid = astraea::serve::ValidResponse(r);
  if (valid &&
      r.status > static_cast<uint32_t>(astraea::serve::ResponseStatus::kServerError)) {
    std::abort();  // validator accepted an unknown status
  }
  r.crc = astraea::serve::ResponseCrc(r);
  const bool status_ok =
      r.status <= static_cast<uint32_t>(astraea::serve::ResponseStatus::kServerError);
  if (astraea::serve::ValidResponse(r) != status_ok) {
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 1) {
    return 0;
  }
  if (data[0] % 2 == 0) {
    FuzzRequest(data + 1, size - 1);
  } else {
    FuzzResponse(data + 1, size - 1);
  }
  return 0;
}
