// Fuzz target: the binary trace reader (src/sim/trace.h). Contract under
// arbitrary bytes: ParseBinaryTrace either returns events or throws
// std::runtime_error — never crashes. Every returned event must carry a
// known type tag, and the record arithmetic must account for every byte
// (header + 41 B per record).

#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "src/sim/trace.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  try {
    const std::vector<astraea::TraceEvent> events = astraea::ParseBinaryTrace(data, size);
    constexpr size_t kHeader = 12;   // magic + version + record size
    constexpr size_t kRecord = 41;
    if (size != kHeader + events.size() * kRecord) {
      std::abort();  // parser accepted a partial record
    }
    for (const astraea::TraceEvent& ev : events) {
      if (static_cast<uint8_t>(ev.type) > static_cast<uint8_t>(astraea::TraceEventType::kEcnMark)) {
        std::abort();  // parser let an unknown type tag through
      }
    }
  } catch (const std::runtime_error&) {
    // Expected for malformed input.
  }
  return 0;
}
