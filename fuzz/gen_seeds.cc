// gen_seeds: writes the deterministic seed corpus under fuzz/corpus/.
//
//   gen_seeds <corpus-root>
//
// One directory per fuzz target, seeded with well-formed images (so the
// fuzzer starts from deep in the parser, not at the magic check) plus a few
// canonical near-misses (truncated, bad magic, corrupt CRC). The corpus is
// checked in; regenerate only when a format changes, and re-run the
// <target>_replay ctest tests afterwards.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "src/net/wire.h"
#include "src/nn/mlp.h"
#include "src/serve/serve_protocol.h"
#include "src/sim/trace.h"
#include "src/util/checkpoint.h"
#include "src/util/rng.h"
#include "src/util/serialization.h"

namespace astraea {
namespace {

void WriteFile(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  std::printf("%s (%zu bytes)\n", path.c_str(), bytes.size());
}

template <typename T>
void Append(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

// A valid checkpoint container around `payload`.
std::string WrapCheckpoint(const std::string& payload) {
  std::string blob = payload;
  Append<uint64_t>(&blob, payload.size());
  Append<uint32_t>(&blob, Crc32(payload.data(), payload.size()));
  Append<uint32_t>(&blob, kCheckpointFooterMagic);
  return blob;
}

std::string MlpStream() {
  Rng rng(7);
  const Mlp mlp({5, 8, 1}, OutputActivation::kTanh, &rng);
  std::ostringstream buf;
  BinaryWriter writer(&buf);
  mlp.Save(&writer);
  return buf.str();
}

std::string TraceStream() {
  const std::filesystem::path tmp = std::filesystem::temp_directory_path() / "gen_seeds.trace";
  {
    Tracer tracer(tmp.string(), Tracer::Format::kBinary);
    tracer.Record(0, TraceEventType::kSend, 0, -1, 0, 1500.0, 1500.0);
    tracer.Record(1000, TraceEventType::kEnqueue, 0, 0, 0, 1500.0, 1500.0);
    tracer.Record(2000, TraceEventType::kDequeue, 0, 0, 0, 1500.0, 0.0);
    tracer.Record(3000, TraceEventType::kAck, 0, -1, 0, 20.0, 0.0);
    tracer.Close();
  }
  std::ifstream in(tmp, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  std::filesystem::remove(tmp);
  return bytes;
}

}  // namespace

int Main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path root = argv[1];

  // fuzz_checkpoint: valid container, truncation, magic and CRC near-misses.
  const auto ckpt_dir = root / "fuzz_checkpoint";
  std::filesystem::create_directories(ckpt_dir);
  const std::string ckpt = WrapCheckpoint("astraea checkpoint payload");
  WriteFile(ckpt_dir / "valid.ckpt", ckpt);
  WriteFile(ckpt_dir / "truncated.ckpt", ckpt.substr(0, ckpt.size() - 1));
  std::string bad_magic = ckpt;
  bad_magic.back() ^= 0x01;
  WriteFile(ckpt_dir / "bad_magic.ckpt", bad_magic);
  std::string bad_crc = ckpt;
  bad_crc.front() ^= 0x01;
  WriteFile(ckpt_dir / "bad_crc.ckpt", bad_crc);
  WriteFile(ckpt_dir / "empty.ckpt", "");

  // fuzz_mlp: raw parameter stream, checkpoint-wrapped stream, corrupt dim.
  const auto mlp_dir = root / "fuzz_mlp";
  std::filesystem::create_directories(mlp_dir);
  const std::string mlp = MlpStream();
  WriteFile(mlp_dir / "raw.mlp", mlp);
  WriteFile(mlp_dir / "wrapped.mlp", WrapCheckpoint(mlp));
  std::string bad_dim = mlp;
  bad_dim[4] = static_cast<char>(0xFF);  // clobber inside the dims block
  WriteFile(mlp_dir / "bad_dim.mlp", bad_dim);
  WriteFile(mlp_dir / "truncated.mlp", mlp.substr(0, mlp.size() / 2));

  // fuzz_trace: valid stream, header-only, bad magic, partial record.
  const auto trace_dir = root / "fuzz_trace";
  std::filesystem::create_directories(trace_dir);
  const std::string trace = TraceStream();
  WriteFile(trace_dir / "valid.trace", trace);
  WriteFile(trace_dir / "header_only.trace", trace.substr(0, 12));
  std::string trace_bad_magic = trace;
  trace_bad_magic[0] ^= 0x01;
  WriteFile(trace_dir / "bad_magic.trace", trace_bad_magic);
  WriteFile(trace_dir / "partial_record.trace", trace.substr(0, trace.size() - 7));

  // fuzz_serve_protocol: selector byte + record bytes (see the target).
  const auto serve_dir = root / "fuzz_serve_protocol";
  std::filesystem::create_directories(serve_dir);
  serve::RequestRecord req{};
  req.req_id = 42;
  req.state_dim = 5;
  for (size_t i = 0; i < req.state_dim; ++i) {
    req.state[i] = static_cast<float>(i) * 0.25f;
  }
  req.crc = serve::RequestCrc(req);
  std::string req_bytes(1, '\0');  // selector 0 = request
  req_bytes.append(reinterpret_cast<const char*>(&req), sizeof(req));
  WriteFile(serve_dir / "request_valid.bin", req_bytes);
  std::string req_corrupt = req_bytes;
  req_corrupt[16] ^= 0x01;  // flip a CRC byte
  WriteFile(serve_dir / "request_bad_crc.bin", req_corrupt);
  serve::ResponseRecord resp{};
  resp.req_id = 42;
  resp.status = 0;
  resp.action = 1.5f;
  resp.crc = serve::ResponseCrc(resp);
  std::string resp_bytes(1, '\x01');  // selector 1 = response
  resp_bytes.append(reinterpret_cast<const char*>(&resp), sizeof(resp));
  WriteFile(serve_dir / "response_valid.bin", resp_bytes);
  WriteFile(serve_dir / "short.bin", std::string(1, '\0'));

  // fuzz_net_wire: one valid frame of each type plus canonical near-misses.
  const auto net_dir = root / "fuzz_net_wire";
  std::filesystem::create_directories(net_dir);
  {
    uint8_t buf[net::kMaxFrameBytes];
    net::DataFrame data;
    data.flow_id = 1;
    data.seq = 17;
    data.send_time = Milliseconds(250);
    data.sent_bytes_total = 21600;
    data.sent_frames_total = 18;
    data.payload_len = 1152;  // mss 1200 - data header
    size_t len = net::SerializeData(data, buf, sizeof(buf));
    WriteFile(net_dir / "data_valid.bin",
              std::string(reinterpret_cast<char*>(buf), len));
    std::string data_bad_crc(reinterpret_cast<char*>(buf), len);
    data_bad_crc[20] ^= 0x01;
    WriteFile(net_dir / "data_bad_crc.bin", data_bad_crc);
    WriteFile(net_dir / "data_truncated.bin",
              std::string(reinterpret_cast<char*>(buf), len / 2));

    net::AckFrame ack;
    ack.flow_id = 1;
    ack.cum_ack = 15;
    ack.ack_seq = 17;
    ack.echo_send_time = Milliseconds(250);
    ack.ack_delay = Milliseconds(2);
    ack.sack_bitmap = 0x5ULL;  // hole at ack_seq - 2
    ack.acked_count = 2;
    ack.received_bytes_total = 19584;
    ack.received_frames_total = 17;
    len = net::SerializeAck(ack, buf, sizeof(buf));
    WriteFile(net_dir / "ack_valid.bin",
              std::string(reinterpret_cast<char*>(buf), len));
    std::string ack_bad_magic(reinterpret_cast<char*>(buf), len);
    ack_bad_magic[0] ^= 0x01;
    WriteFile(net_dir / "ack_bad_magic.bin", ack_bad_magic);

    net::FinFrame fin;
    fin.flow_id = 1;
    fin.final_seq = 18;
    len = net::SerializeFin(fin, /*is_ack=*/false, buf, sizeof(buf));
    WriteFile(net_dir / "fin_valid.bin",
              std::string(reinterpret_cast<char*>(buf), len));
    len = net::SerializeFin(fin, /*is_ack=*/true, buf, sizeof(buf));
    WriteFile(net_dir / "finack_valid.bin",
              std::string(reinterpret_cast<char*>(buf), len));
    std::string fin_trailing(reinterpret_cast<char*>(buf), len);
    fin_trailing.push_back('\0');
    WriteFile(net_dir / "fin_trailing_byte.bin", fin_trailing);
  }

  // fuzz_link_trace: well-formed Mahimahi traces plus canonical rejects
  // (comments/CRLF are accepted on input; the rest must throw).
  const auto lt_dir = root / "fuzz_link_trace";
  std::filesystem::create_directories(lt_dir);
  WriteFile(lt_dir / "valid.trace", "0\n0\n3\n3\n3\n20\n40\n40\n");
  WriteFile(lt_dir / "comments_crlf.trace", "# capture\r\n\r\n5\r\n7\r\n# mid\r\n9\r\n");
  WriteFile(lt_dir / "single.trace", "17\n");
  WriteFile(lt_dir / "no_trailing_newline.trace", "1\n2\n3");
  WriteFile(lt_dir / "decreasing.trace", "5\n4\n");
  WriteFile(lt_dir / "garbage.trace", "12monkeys\n");
  WriteFile(lt_dir / "negative.trace", "-3\n");
  WriteFile(lt_dir / "too_large.trace", "99999999999\n");
  WriteFile(lt_dir / "empty.trace", "");
  WriteFile(lt_dir / "comment_only.trace", "# nothing here\n");

  // fuzz_cli_flags: representative accepted/rejected tokens.
  const auto cli_dir = root / "fuzz_cli_flags";
  std::filesystem::create_directories(cli_dir);
  WriteFile(cli_dir / "int.txt", "42");
  WriteFile(cli_dir / "negative.txt", "-7");
  WriteFile(cli_dir / "double.txt", "0.125");
  WriteFile(cli_dir / "duration_us.txt", "500us");
  WriteFile(cli_dir / "duration_s.txt", "1.5s");
  WriteFile(cli_dir / "duration_no_unit.txt", "1500");
  WriteFile(cli_dir / "nan.txt", "nan");
  WriteFile(cli_dir / "huge.txt", "1e308s");
  WriteFile(cli_dir / "garbage.txt", "12monkeys");
  return 0;
}

}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
