// Replay driver linked into every fuzz target when ASTRAEA_FUZZ is OFF (the
// default, and the only option on gcc-only machines — libFuzzer needs clang).
// Each command-line argument is a corpus file; its bytes are fed once through
// the target's LLVMFuzzerTestOneInput. This is how ctest runs the checked-in
// seed corpus deterministically in every build, fuzzing engine or not; with
// ASTRAEA_FUZZ=ON libFuzzer's own main provides the same file-replay
// behavior plus mutation.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s corpus-file...\n", argv[0]);
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open corpus file: %s\n", argv[i]);
      return 2;
    }
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
    std::printf("replayed %s (%zu bytes)\n", argv[i], bytes.size());
  }
  return 0;
}
