#include "src/cc/aurora.h"

#include <algorithm>
#include <cmath>

namespace astraea {

double PretrainedAuroraPolicy::Act(std::span<const float> state) const {
  // Latest feature triple is at the end of the stacked history.
  const float latency_gradient = state[state.size() - 3];
  const float send_ratio = state[state.size() - 1];

  // Published Aurora behaviour (see the Aurora paper's analysis and this
  // paper's Fig. 1a): the reward's throughput term dominates, so the learned
  // policy keeps increasing the rate as long as latency is not inflating
  // *rapidly*, shrugs off moderate loss, and never deliberately yields
  // capacity to a competitor. Both signals the policy brakes on — the
  // latency *gradient* and the loss rate — are shared by all flows on the
  // bottleneck, so competing Aurora flows scale multiplicatively in lockstep
  // and their throughput ratio stays frozen at whatever it was when the link
  // saturated: the incumbent keeps (almost) everything.
  const float loss_fraction = send_ratio > 1.0f ? 1.0f - 1.0f / send_ratio : 0.0f;
  if (loss_fraction > 0.005f) {
    // On a full DropTail buffer the trained policy equilibrates slightly above
    // capacity: proportional control around a small standing loss rate
    // (the -2000*loss reward term).
    return std::clamp(30.0 * (0.03 - static_cast<double>(loss_fraction)), -1.0, 1.0);
  }
  if (latency_gradient > 0.02f) {
    // Queue growing quickly: brake (the -1000*latency reward term).
    return std::clamp(-5.0 * (latency_gradient - 0.02f), -0.4, 0.0);
  }
  return 1.0;  // grab
}

double MlpAuroraPolicy::Act(std::span<const float> state) const {
  return std::clamp(static_cast<double>(actor_.Infer(state)[0]), -1.0, 1.0);
}

Aurora::Aurora(std::shared_ptr<const AuroraPolicy> policy, double delta)
    : policy_(policy != nullptr ? std::move(policy)
                                : std::make_shared<PretrainedAuroraPolicy>()),
      delta_(delta) {}

void Aurora::OnFlowStart(TimeNs /*now*/, uint32_t mss) {
  mss_ = mss;
  rate_ = Mbps(2.0);
  history_.clear();
}

uint64_t Aurora::cwnd_bytes() const {
  const double rtt = ToSeconds(std::max<TimeNs>(srtt_hint_, Milliseconds(1)));
  return std::max<uint64_t>(static_cast<uint64_t>(2.0 * rate_ * rtt / 8.0), 4ULL * mss_);
}

void Aurora::PushFeatures(const MtpReport& report) {
  const double rtt_ms = ToMillis(report.avg_rtt);
  const double min_rtt_ms = std::max(ToMillis(report.min_rtt), 0.1);
  float latency_gradient = 0.0f;
  if (prev_rtt_ms_ > 0.0 && rtt_ms > 0.0) {
    latency_gradient =
        static_cast<float>((rtt_ms - prev_rtt_ms_) / 1000.0 / ToSeconds(report.mtp));
  }
  if (rtt_ms > 0.0) {
    prev_rtt_ms_ = rtt_ms;
  }
  const float latency_ratio = rtt_ms > 0.0 ? static_cast<float>(rtt_ms / min_rtt_ms) : 1.0f;
  const double acked_plus_lost = report.thr_bps + report.loss_bps;
  const float send_ratio =
      report.thr_bps > 0.0 ? static_cast<float>(acked_plus_lost / report.thr_bps) : 1.0f;
  history_.push_back({latency_gradient, latency_ratio, send_ratio});
  while (history_.size() > kAuroraHistory) {
    history_.pop_front();
  }
}

std::vector<float> Aurora::CurrentState() const {
  std::vector<float> state(kAuroraStateDim, 0.0f);
  // Oldest first; zero-padded on the left until the history fills.
  size_t offset = kAuroraStateDim - history_.size() * kAuroraFeatures;
  for (const auto& triple : history_) {
    for (float f : triple) {
      state[offset++] = f;
    }
  }
  // Pad missing leading ratios with neutral values.
  for (size_t i = 0; i < kAuroraStateDim - history_.size() * kAuroraFeatures; i += 3) {
    state[i + 1] = 1.0f;  // latency ratio
    state[i + 2] = 1.0f;  // send ratio
  }
  return state;
}

void Aurora::OnMtpTick(const MtpReport& report) {
  srtt_hint_ = std::max<TimeNs>(report.srtt, Milliseconds(1));
  PushFeatures(report);
  const std::vector<float> state = CurrentState();
  const double a = std::clamp(policy_->Act(state), -1.0, 1.0);
  if (a >= 0.0) {
    rate_ *= 1.0 + delta_ * a;
  } else {
    rate_ /= 1.0 - delta_ * a;
  }
  rate_ = std::clamp(rate_, Kbps(100.0), Gbps(20.0));
}

void Aurora::OnLoss(const LossEvent& ev) {
  if (ev.is_timeout) {
    rate_ = std::max(rate_ / 2.0, Kbps(100.0));
  }
}

}  // namespace astraea
