// Aurora (Jay et al., ICML 2019): single-agent DRL congestion control.
//
// Aurora observes a history of (latency gradient, latency ratio, sending
// ratio) statistics and outputs an action a in (-1, 1) mapped multiplicatively
// onto the sending rate. It is trained offline against the reward
//
//   r = 10 * throughput - 1000 * latency - 2000 * loss              (Eq. 1)
//
// which is throughput-dominated and fairness-agnostic — the behaviour the
// paper's Fig. 1a demonstrates (an Aurora incumbent never yields bandwidth).
//
// The policy is pluggable: `MlpAuroraPolicy` runs a checkpoint produced by
// tools/aurora_train; `PretrainedAuroraPolicy` is a deterministic stand-in
// that encodes the published qualitative behaviour of the trained model
// (monotone rate growth, indifference to moderate loss and queueing) so the
// motivation and comparison benches are reproducible without a training run.
// See DESIGN.md's substitution table.

#ifndef SRC_CC_AURORA_H_
#define SRC_CC_AURORA_H_

#include <array>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "src/nn/mlp.h"
#include "src/sim/congestion_controller.h"

namespace astraea {

class AuroraPolicy {
 public:
  virtual ~AuroraPolicy() = default;
  // `state` is the stacked history (kAuroraHistory x kAuroraFeatures).
  virtual double Act(std::span<const float> state) const = 0;
};

inline constexpr int kAuroraFeatures = 3;  // latency gradient, latency ratio, send ratio
inline constexpr int kAuroraHistory = 10;
inline constexpr int kAuroraStateDim = kAuroraFeatures * kAuroraHistory;

// Deterministic surrogate for the published pretrained model.
class PretrainedAuroraPolicy : public AuroraPolicy {
 public:
  double Act(std::span<const float> state) const override;
};

class MlpAuroraPolicy : public AuroraPolicy {
 public:
  explicit MlpAuroraPolicy(Mlp actor) : actor_(std::move(actor)) {}
  double Act(std::span<const float> state) const override;

 private:
  Mlp actor_;
};

class Aurora : public CongestionController {
 public:
  // Uses the pretrained surrogate when `policy` is null.
  explicit Aurora(std::shared_ptr<const AuroraPolicy> policy = nullptr, double delta = 0.025);

  void OnFlowStart(TimeNs now, uint32_t mss) override;
  void OnMtpTick(const MtpReport& report) override;
  void OnLoss(const LossEvent& ev) override;

  uint64_t cwnd_bytes() const override;
  std::optional<double> pacing_bps() const override { return rate_; }
  std::string name() const override { return "aurora"; }

  double rate_bps() const { return rate_; }
  std::vector<float> CurrentState() const;  // exposed for tests/training

 private:
  void PushFeatures(const MtpReport& report);

  std::shared_ptr<const AuroraPolicy> policy_;
  double delta_;
  uint32_t mss_ = 1500;
  double rate_ = 0.0;
  TimeNs srtt_hint_ = Milliseconds(40);
  double prev_rtt_ms_ = 0.0;
  std::deque<std::array<float, kAuroraFeatures>> history_;
};

}  // namespace astraea

#endif  // SRC_CC_AURORA_H_
