#include "src/cc/bbr.h"

#include <algorithm>

namespace astraea {

namespace {
constexpr double kStartupGain = 2.885;        // 2/ln(2)
constexpr double kDrainGain = 1.0 / 2.885;
constexpr double kProbeBwGains[8] = {1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
constexpr TimeNs kMinRttExpiry = Seconds(10.0);
constexpr TimeNs kProbeRttDuration = Milliseconds(200);
constexpr double kStartupGrowthTarget = 1.25;  // <25% growth for 3 rounds => full pipe
}  // namespace

Bbr::Bbr() = default;

void Bbr::OnFlowStart(TimeNs now, uint32_t mss) {
  mss_ = mss;
  mode_ = Mode::kStartup;
  pacing_gain_ = kStartupGain;
  cwnd_gain_ = kStartupGain;
  min_rtt_stamp_ = now;
}

uint64_t Bbr::BdpBytesNow() const {
  if (bw_estimate_ <= 0.0 || min_rtt_ <= 0) {
    return 10ULL * mss_;
  }
  return static_cast<uint64_t>(bw_estimate_ * ToSeconds(min_rtt_) / 8.0);
}

uint64_t Bbr::cwnd_bytes() const {
  if (mode_ == Mode::kProbeRtt) {
    return 4ULL * mss_;
  }
  const uint64_t bdp = BdpBytesNow();
  return std::max<uint64_t>(static_cast<uint64_t>(cwnd_gain_ * static_cast<double>(bdp)),
                            4ULL * mss_);
}

std::optional<double> Bbr::pacing_bps() const {
  if (bw_estimate_ <= 0.0) {
    // No bandwidth sample yet: pace at an arbitrary startup rate; the cwnd cap
    // and the rapidly-updating filter take over within an RTT.
    return Mbps(1.0) * kStartupGain;
  }
  return pacing_gain_ * bw_estimate_;
}

void Bbr::CheckStartupDone(const AckEvent& ev) {
  // Declare the pipe full after 3 RTT rounds without 25% bandwidth growth.
  // The round boundary matters: evaluating per ACK would exit startup after
  // three back-to-back ACKs long before the pipe fills.
  if (ev.now - round_start_ < std::max<TimeNs>(min_rtt_, Milliseconds(1))) {
    return;
  }
  round_start_ = ev.now;
  if (bw_estimate_ > full_bw_ * kStartupGrowthTarget) {
    full_bw_ = bw_estimate_;
    full_bw_rounds_ = 0;
    return;
  }
  ++full_bw_rounds_;
  if (full_bw_rounds_ >= 3) {
    mode_ = Mode::kDrain;
    pacing_gain_ = kDrainGain;
    cwnd_gain_ = 2.0;
  }
}

void Bbr::AdvanceProbeBwPhase(TimeNs now) {
  if (now - cycle_stamp_ < std::max<TimeNs>(min_rtt_, Milliseconds(10))) {
    return;
  }
  cycle_stamp_ = now;
  cycle_index_ = (cycle_index_ + 1) % 8;
  pacing_gain_ = kProbeBwGains[cycle_index_];
}

void Bbr::MaybeEnterProbeRtt(const AckEvent& ev) {
  if (mode_ == Mode::kProbeRtt) {
    if (ev.now >= probe_rtt_done_) {
      min_rtt_stamp_ = ev.now;
      mode_ = mode_before_probe_rtt_;
      pacing_gain_ = mode_ == Mode::kStartup ? kStartupGain : kProbeBwGains[cycle_index_];
    }
    return;
  }
  if (ev.now - min_rtt_stamp_ > kMinRttExpiry) {
    mode_before_probe_rtt_ = (mode_ == Mode::kDrain) ? Mode::kProbeBw : mode_;
    mode_ = Mode::kProbeRtt;
    probe_rtt_done_ = ev.now + kProbeRttDuration;
  }
}

void Bbr::OnAck(const AckEvent& ev) {
  inflight_hint_ = ev.inflight_bytes;

  if (min_rtt_ == 0 || ev.rtt <= min_rtt_) {
    min_rtt_ = ev.rtt;
    min_rtt_stamp_ = ev.now;
  }

  // Bandwidth filter over ~10 RTTs.
  bw_filter_.set_window(std::max<TimeNs>(10 * std::max<TimeNs>(min_rtt_, Milliseconds(1)),
                                         Milliseconds(100)));
  if (ev.delivery_rate_bps > 0.0) {
    bw_filter_.Update(ev.now, ev.delivery_rate_bps);
  }
  bw_estimate_ = bw_filter_.Get(ev.now, bw_estimate_);

  switch (mode_) {
    case Mode::kStartup:
      CheckStartupDone(ev);
      break;
    case Mode::kDrain:
      if (ev.inflight_bytes <= BdpBytesNow()) {
        mode_ = Mode::kProbeBw;
        cycle_index_ = 0;
        cycle_stamp_ = ev.now;
        pacing_gain_ = kProbeBwGains[0];
        cwnd_gain_ = 2.0;
      }
      break;
    case Mode::kProbeBw:
      AdvanceProbeBwPhase(ev.now);
      break;
    case Mode::kProbeRtt:
      break;
  }
  MaybeEnterProbeRtt(ev);
}

void Bbr::OnLoss(const LossEvent& ev) {
  // BBR v1 does not react to individual losses; an RTO resets the model.
  if (ev.is_timeout) {
    full_bw_ = 0.0;
    full_bw_rounds_ = 0;
    mode_ = Mode::kStartup;
    pacing_gain_ = kStartupGain;
    cwnd_gain_ = kStartupGain;
  }
}

}  // namespace astraea
