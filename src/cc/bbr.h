// BBR v1 (Cardwell et al. 2016), simplified to the published state machine:
// STARTUP / DRAIN / PROBE_BW (8-phase gain cycle) / PROBE_RTT, driven by a
// windowed-max bandwidth filter and a windowed-min RTT filter. Pacing-based;
// cwnd caps inflight at cwnd_gain x BDP.

#ifndef SRC_CC_BBR_H_
#define SRC_CC_BBR_H_

#include "src/util/windowed_filter.h"
#include "src/sim/congestion_controller.h"

namespace astraea {

class Bbr : public CongestionController {
 public:
  Bbr();

  void OnFlowStart(TimeNs now, uint32_t mss) override;
  void OnAck(const AckEvent& ev) override;
  void OnLoss(const LossEvent& ev) override;

  uint64_t cwnd_bytes() const override;
  std::optional<double> pacing_bps() const override;
  std::string name() const override { return "bbr"; }

  enum class Mode { kStartup, kDrain, kProbeBw, kProbeRtt };
  Mode mode() const { return mode_; }
  double bw_estimate_bps() const { return bw_estimate_; }

 private:
  uint64_t BdpBytesNow() const;
  void CheckStartupDone(const AckEvent& ev);
  void AdvanceProbeBwPhase(TimeNs now);
  void MaybeEnterProbeRtt(const AckEvent& ev);

  uint32_t mss_ = 1500;
  Mode mode_ = Mode::kStartup;

  WindowedMax<double> bw_filter_{Seconds(1.0)};  // window reset per-RTT count below
  double bw_estimate_ = 0.0;
  TimeNs min_rtt_ = 0;
  TimeNs min_rtt_stamp_ = 0;

  double pacing_gain_ = 2.885;
  double cwnd_gain_ = 2.885;

  // STARTUP plateau detection (evaluated once per RTT-round, not per ACK).
  double full_bw_ = 0.0;
  int full_bw_rounds_ = 0;
  TimeNs round_start_ = 0;

  // PROBE_BW gain cycling.
  int cycle_index_ = 0;
  TimeNs cycle_stamp_ = 0;

  // PROBE_RTT bookkeeping.
  TimeNs probe_rtt_done_ = 0;
  Mode mode_before_probe_rtt_ = Mode::kProbeBw;

  uint64_t inflight_hint_ = 0;
};

}  // namespace astraea

#endif  // SRC_CC_BBR_H_
