#include "src/cc/copa.h"

#include <algorithm>

namespace astraea {

void Copa::OnFlowStart(TimeNs now, uint32_t mss) {
  mss_ = mss;
  cwnd_pkts_ = 10.0;
  direction_since_ = now;
  last_near_empty_queue_ = now;
}

std::optional<double> Copa::pacing_bps() const {
  // Copa paces at 2 * cwnd / RTT to avoid self-induced bursts.
  const double rtt = ToSeconds(std::max<TimeNs>(srtt_hint_, Milliseconds(1)));
  return 2.0 * cwnd_pkts_ * mss_ * 8.0 / rtt;
}

void Copa::UpdateVelocity(bool direction_up, TimeNs now, TimeNs srtt) {
  if (direction_up != last_direction_up_) {
    velocity_ = 1.0;
    same_direction_rtts_ = 0;
    last_direction_up_ = direction_up;
    last_velocity_update_ = now;
    return;
  }
  if (now - last_velocity_update_ >= srtt) {
    last_velocity_update_ = now;
    ++same_direction_rtts_;
    // Velocity doubles once the direction has been stable for 3 RTTs.
    if (same_direction_rtts_ >= 3) {
      velocity_ = std::min(velocity_ * 2.0, cwnd_pkts_ / 2.0);
    }
  }
}

void Copa::UpdateMode(TimeNs now, TimeNs /*srtt*/, TimeNs standing, TimeNs min_rtt) {
  if (!enable_mode_switching_) {
    return;
  }
  // "Nearly empty" means the standing queue is below 10% of min RTT.
  if (standing - min_rtt < min_rtt / 10) {
    last_near_empty_queue_ = now;
  }
  const TimeNs window = 5 * std::max<TimeNs>(srtt_hint_, Milliseconds(1));
  const bool competitor_detected = (now - last_near_empty_queue_) > window;
  if (competitor_detected && !competitive_) {
    competitive_ = true;
  } else if (!competitor_detected && competitive_) {
    competitive_ = false;
    delta_ = default_delta_;
  }
  if (competitive_) {
    // Loss/competition mode: behave like AIMD by shrinking delta (more
    // aggressive). Copa halves delta down to a floor.
    delta_ = std::max(delta_ / 2.0, 0.05);
  }
}

void Copa::OnAck(const AckEvent& ev) {
  srtt_hint_ = ev.srtt;
  standing_rtt_.set_window(std::max<TimeNs>(ev.srtt / 2, Milliseconds(5)));
  standing_rtt_.Update(ev.now, ev.rtt);
  const TimeNs standing = standing_rtt_.Get(ev.now, ev.rtt);

  UpdateMode(ev.now, ev.srtt, standing, ev.min_rtt);

  const double dq = ToSeconds(std::max<TimeNs>(standing - ev.min_rtt, 0));
  const double rtt_sec = ToSeconds(std::max<TimeNs>(ev.srtt, Milliseconds(1)));

  double target_rate_pps;
  if (dq <= 1e-6) {
    target_rate_pps = 1e12;  // queue empty: always increase
  } else {
    target_rate_pps = 1.0 / (delta_ * dq);
  }
  const double current_rate_pps = cwnd_pkts_ / rtt_sec;

  const bool direction_up = current_rate_pps < target_rate_pps;
  UpdateVelocity(direction_up, ev.now, ev.srtt);

  const double step = velocity_ / (delta_ * cwnd_pkts_);  // packets, per ACK
  if (direction_up) {
    cwnd_pkts_ += step;
  } else {
    cwnd_pkts_ = std::max(cwnd_pkts_ - step, 2.0);
  }
}

void Copa::OnLoss(const LossEvent& ev) {
  if (ev.is_timeout) {
    cwnd_pkts_ = 2.0;
    velocity_ = 1.0;
  }
  // Copa's default mode does not react to individual packet losses.
}

}  // namespace astraea
