// Copa (Arun & Balakrishnan, NSDI 2018): delay-based control toward the
// target rate lambda* = 1 / (delta * d_q), where d_q is the standing queuing
// delay. Velocity doubling accelerates convergence; direction flips reset it.
// This implementation runs Copa's default mode (the paper notes the erroneous
// competitive-mode switches as Copa's instability source; we expose the mode
// switch as an option to reproduce that oscillation).

#ifndef SRC_CC_COPA_H_
#define SRC_CC_COPA_H_

#include "src/util/windowed_filter.h"
#include "src/sim/congestion_controller.h"

namespace astraea {

class Copa : public CongestionController {
 public:
  explicit Copa(double delta = 0.5, bool enable_mode_switching = true)
      : default_delta_(delta), delta_(delta), enable_mode_switching_(enable_mode_switching) {}

  void OnFlowStart(TimeNs now, uint32_t mss) override;
  void OnAck(const AckEvent& ev) override;
  void OnLoss(const LossEvent& ev) override;

  uint64_t cwnd_bytes() const override { return static_cast<uint64_t>(cwnd_pkts_ * mss_); }
  std::optional<double> pacing_bps() const override;
  std::string name() const override { return "copa"; }

  double velocity() const { return velocity_; }
  bool in_competitive_mode() const { return competitive_; }

 private:
  void UpdateVelocity(bool direction_up, TimeNs now, TimeNs srtt);
  void UpdateMode(TimeNs now, TimeNs srtt, TimeNs standing, TimeNs min_rtt);

  double default_delta_;
  double delta_;
  bool enable_mode_switching_;
  uint32_t mss_ = 1500;
  double cwnd_pkts_ = 10.0;
  TimeNs srtt_hint_ = Milliseconds(40);

  WindowedMin<TimeNs> standing_rtt_{Milliseconds(20)};  // window = srtt/2, set per ACK

  double velocity_ = 1.0;
  bool last_direction_up_ = true;
  TimeNs direction_since_ = 0;
  int same_direction_rtts_ = 0;
  TimeNs last_velocity_update_ = 0;

  // Competitive-mode detection: if the standing queue has not drained to near
  // the minimum over ~5 RTTs, assume a buffer-filling competitor.
  bool competitive_ = false;
  TimeNs last_near_empty_queue_ = 0;
};

}  // namespace astraea

#endif  // SRC_CC_COPA_H_
