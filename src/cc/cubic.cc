#include "src/cc/cubic.h"

#include <algorithm>
#include <cmath>

namespace astraea {

void Cubic::OnFlowStart(TimeNs /*now*/, uint32_t mss) {
  mss_ = mss;
  cwnd_ = 10ULL * mss_;
  ssthresh_ = UINT64_MAX;
  epoch_start_ = -1;
}

double Cubic::CubicWindow(double t_sec) const {
  const double dt = t_sec - k_;
  return c_ * dt * dt * dt + w_max_;
}

void Cubic::OnAck(const AckEvent& ev) {
  srtt_ = ev.srtt;
  if (ev.now < recovery_until_) {
    return;
  }
  if (in_slow_start()) {
    cwnd_ += ev.acked_bytes;
    return;
  }

  if (epoch_start_ < 0) {
    // First congestion-avoidance ACK of this epoch.
    epoch_start_ = ev.now;
    const double cwnd_pkts = static_cast<double>(cwnd_) / mss_;
    if (cwnd_pkts < w_max_) {
      k_ = std::cbrt((w_max_ - cwnd_pkts) / c_);
    } else {
      k_ = 0.0;
      w_max_ = cwnd_pkts;
    }
    w_est_ = cwnd_pkts;
  }

  const double t = ToSeconds(ev.now - epoch_start_);
  const double rtt_sec = ToSeconds(std::max<TimeNs>(ev.srtt, Milliseconds(1)));
  const double target = CubicWindow(t + rtt_sec);

  // TCP-friendly region (RFC 8312 §4.2): track what Reno would achieve.
  w_est_ += 3.0 * (1.0 - beta_) / (1.0 + beta_) * static_cast<double>(ev.acked_bytes) /
            static_cast<double>(cwnd_);

  const double cwnd_pkts = static_cast<double>(cwnd_) / mss_;
  double next_pkts = cwnd_pkts;
  if (target > cwnd_pkts) {
    // Approach the cubic target over one RTT's worth of ACKs.
    next_pkts += (target - cwnd_pkts) / cwnd_pkts *
                 (static_cast<double>(ev.acked_bytes) / mss_);
  } else {
    next_pkts += 0.01 * static_cast<double>(ev.acked_bytes) / static_cast<double>(cwnd_);
  }
  next_pkts = std::max(next_pkts, w_est_);
  cwnd_ = std::max<uint64_t>(static_cast<uint64_t>(next_pkts * mss_), 2ULL * mss_);
}

void Cubic::SetCwndBytes(uint64_t cwnd_bytes) {
  cwnd_ = std::max<uint64_t>(cwnd_bytes, 2ULL * mss_);
  // Restart the cubic epoch from the applied window so growth is anchored at
  // the externally-chosen operating point.
  epoch_start_ = -1;
  if (cwnd_ >= ssthresh_ || ssthresh_ == UINT64_MAX) {
    ssthresh_ = cwnd_;
  }
}

void Cubic::OnLoss(const LossEvent& ev) {
  if (ev.is_timeout) {
    w_max_ = static_cast<double>(cwnd_) / mss_;
    ssthresh_ = std::max<uint64_t>(static_cast<uint64_t>(cwnd_ * beta_), 2ULL * mss_);
    cwnd_ = 2ULL * mss_;
    epoch_start_ = -1;
    recovery_until_ = 0;
    return;
  }
  if (ev.now < recovery_until_) {
    return;
  }
  const double cwnd_pkts = static_cast<double>(cwnd_) / mss_;
  // Fast convergence (RFC 8312 §4.6).
  if (cwnd_pkts < w_max_) {
    w_max_ = cwnd_pkts * (1.0 + beta_) / 2.0;
  } else {
    w_max_ = cwnd_pkts;
  }
  cwnd_ = std::max<uint64_t>(static_cast<uint64_t>(cwnd_ * beta_), 2ULL * mss_);
  ssthresh_ = cwnd_;
  epoch_start_ = -1;
  recovery_until_ = ev.now + srtt_;
}

}  // namespace astraea
