// TCP CUBIC (Ha, Rhee, Xu 2008 / RFC 8312): cubic window growth anchored at
// the last loss point W_max, with the TCP-friendly region for low-BDP paths.

#ifndef SRC_CC_CUBIC_H_
#define SRC_CC_CUBIC_H_

#include "src/sim/congestion_controller.h"

namespace astraea {

class Cubic : public CongestionController {
 public:
  // RFC 8312 defaults: C = 0.4, beta_cubic = 0.7.
  explicit Cubic(double c = 0.4, double beta = 0.7) : c_(c), beta_(beta) {}

  void OnFlowStart(TimeNs now, uint32_t mss) override;
  void OnAck(const AckEvent& ev) override;
  void OnLoss(const LossEvent& ev) override;

  uint64_t cwnd_bytes() const override { return cwnd_; }
  std::string name() const override { return "cubic"; }

  bool in_slow_start() const { return cwnd_ < ssthresh_; }
  double w_max_packets() const { return w_max_; }

  // External window override (used by Orca, whose agent rescales the CUBIC
  // window and lets CUBIC continue from the applied value).
  void SetCwndBytes(uint64_t cwnd_bytes);

 private:
  double CubicWindow(double t_sec) const;  // in packets

  double c_;
  double beta_;
  uint32_t mss_ = 1500;
  uint64_t cwnd_ = 0;
  uint64_t ssthresh_ = UINT64_MAX;

  double w_max_ = 0.0;       // window at last loss, packets
  double k_ = 0.0;           // time to regrow to w_max, seconds
  TimeNs epoch_start_ = -1;  // start of the current cubic epoch
  TimeNs recovery_until_ = 0;
  TimeNs srtt_ = Milliseconds(40);

  // TCP-friendly (Reno-tracking) estimate, packets.
  double w_est_ = 0.0;
};

}  // namespace astraea

#endif  // SRC_CC_CUBIC_H_
