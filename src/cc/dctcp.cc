#include "src/cc/dctcp.h"

#include <algorithm>

namespace astraea {

namespace {
// DCTCP's recommended EWMA gain for the marked-fraction estimate.
constexpr double kG = 1.0 / 16.0;
}  // namespace

void Dctcp::OnFlowStart(TimeNs /*now*/, uint32_t mss) {
  mss_ = mss;
  cwnd_ = 10ULL * mss_;
  ssthresh_ = UINT64_MAX;
  alpha_ = 0.0;
  window_acked_bytes_ = 0;
  window_ce_bytes_ = 0;
  window_end_ = 0;
}

void Dctcp::AdvanceWindow(TimeNs now) {
  if (window_end_ == 0) {
    window_end_ = now + srtt_;
    return;
  }
  if (now < window_end_ || window_acked_bytes_ == 0) {
    return;
  }
  const double frac =
      static_cast<double>(window_ce_bytes_) / static_cast<double>(window_acked_bytes_);
  alpha_ = (1.0 - kG) * alpha_ + kG * frac;
  if (window_ce_bytes_ > 0) {
    // One proportional decrease per window of marked data; marks also end
    // slow start the first time they appear.
    const uint64_t reduced =
        static_cast<uint64_t>(static_cast<double>(cwnd_) * (1.0 - alpha_ / 2.0));
    cwnd_ = std::max<uint64_t>(reduced, 2ULL * mss_);
    ssthresh_ = std::min(ssthresh_, cwnd_);
  }
  window_acked_bytes_ = 0;
  window_ce_bytes_ = 0;
  window_end_ = now + srtt_;
}

void Dctcp::OnAck(const AckEvent& ev) {
  srtt_ = std::max<TimeNs>(ev.srtt, 1);
  window_acked_bytes_ += ev.acked_bytes;
  if (ev.ecn_ce) {
    window_ce_bytes_ += ev.acked_bytes;
  }
  AdvanceWindow(ev.now);
  if (ev.now < recovery_until_) {
    return;
  }
  if (in_slow_start()) {
    cwnd_ += ev.acked_bytes;
    return;
  }
  ca_accumulator_ += static_cast<double>(ev.acked_bytes) * mss_ / static_cast<double>(cwnd_);
  if (ca_accumulator_ >= mss_) {
    cwnd_ += mss_;
    ca_accumulator_ -= mss_;
  }
}

void Dctcp::OnLoss(const LossEvent& ev) {
  // Losses still exist under ECN (taildrop above the mark threshold, wire
  // loss); react exactly like NewReno so the scheme is safe without ECN.
  if (ev.is_timeout) {
    ssthresh_ = std::max<uint64_t>(cwnd_ / 2, 2ULL * mss_);
    cwnd_ = 2ULL * mss_;
    recovery_until_ = 0;
    return;
  }
  if (ev.now < recovery_until_) {
    return;
  }
  ssthresh_ = std::max<uint64_t>(cwnd_ / 2, 2ULL * mss_);
  cwnd_ = ssthresh_;
  recovery_until_ = ev.now + srtt_;
}

}  // namespace astraea
