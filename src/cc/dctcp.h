// DCTCP (Alizadeh et al., SIGCOMM 2010): slow start + AIMD like NewReno, but
// the multiplicative decrease is proportional to the *fraction* of CE-marked
// bytes, estimated with the g=1/16 EWMA over one-RTT observation windows.
// The scheme is the ECN consumer of the datacenter scenario family: it
// advertises EcnCapable() so the sender sets ECT and an EcnMarkingQueue can
// mark instead of dropping. On paths without ECN it degrades to NewReno
// behaviour (alpha stays 0, losses halve the window).

#ifndef SRC_CC_DCTCP_H_
#define SRC_CC_DCTCP_H_

#include "src/sim/congestion_controller.h"

namespace astraea {

class Dctcp : public CongestionController {
 public:
  void OnFlowStart(TimeNs now, uint32_t mss) override;
  void OnAck(const AckEvent& ev) override;
  void OnLoss(const LossEvent& ev) override;

  uint64_t cwnd_bytes() const override { return cwnd_; }
  std::string name() const override { return "dctcp"; }
  bool EcnCapable() const override { return true; }

  double alpha() const { return alpha_; }
  bool in_slow_start() const { return cwnd_ < ssthresh_; }

 private:
  void AdvanceWindow(TimeNs now);

  uint32_t mss_ = 1500;
  uint64_t cwnd_ = 0;
  uint64_t ssthresh_ = UINT64_MAX;
  TimeNs recovery_until_ = 0;
  TimeNs srtt_ = Milliseconds(1);
  double ca_accumulator_ = 0.0;

  // Per-observation-window (~one RTT) CE accounting feeding the alpha EWMA.
  double alpha_ = 0.0;
  uint64_t window_acked_bytes_ = 0;
  uint64_t window_ce_bytes_ = 0;
  TimeNs window_end_ = 0;
};

}  // namespace astraea

#endif  // SRC_CC_DCTCP_H_
