#include "src/cc/newreno.h"

#include <algorithm>

namespace astraea {

void NewReno::OnFlowStart(TimeNs /*now*/, uint32_t mss) {
  mss_ = mss;
  cwnd_ = 10ULL * mss_;
  ssthresh_ = UINT64_MAX;
}

void NewReno::OnAck(const AckEvent& ev) {
  srtt_ = ev.srtt;
  if (ev.now < recovery_until_) {
    return;  // in recovery: hold the window
  }
  if (in_slow_start()) {
    cwnd_ += ev.acked_bytes;
    return;
  }
  // Congestion avoidance: one MSS per cwnd's worth of ACKed data.
  ca_accumulator_ += static_cast<double>(ev.acked_bytes) * mss_ / static_cast<double>(cwnd_);
  if (ca_accumulator_ >= mss_) {
    cwnd_ += mss_;
    ca_accumulator_ -= mss_;
  }
}

void NewReno::OnLoss(const LossEvent& ev) {
  if (ev.is_timeout) {
    ssthresh_ = std::max<uint64_t>(cwnd_ / 2, 2ULL * mss_);
    cwnd_ = 2ULL * mss_;
    recovery_until_ = 0;
    return;
  }
  if (ev.now < recovery_until_) {
    return;  // one halving per window of data (per recovery episode)
  }
  ssthresh_ = std::max<uint64_t>(cwnd_ / 2, 2ULL * mss_);
  cwnd_ = ssthresh_;
  // Losses within roughly one RTT belong to the same congestion episode.
  recovery_until_ = ev.now + srtt_;
}

}  // namespace astraea
