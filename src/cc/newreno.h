// TCP NewReno: slow start + AIMD congestion avoidance with fast-recovery-style
// halving on packet loss (RFC 6582 behaviour at the granularity this simulator
// models losses).

#ifndef SRC_CC_NEWRENO_H_
#define SRC_CC_NEWRENO_H_

#include "src/sim/congestion_controller.h"

namespace astraea {

class NewReno : public CongestionController {
 public:
  void OnFlowStart(TimeNs now, uint32_t mss) override;
  void OnAck(const AckEvent& ev) override;
  void OnLoss(const LossEvent& ev) override;

  uint64_t cwnd_bytes() const override { return cwnd_; }
  std::string name() const override { return "newreno"; }

  uint64_t ssthresh_bytes() const { return ssthresh_; }
  bool in_slow_start() const { return cwnd_ < ssthresh_; }

 private:
  uint32_t mss_ = 1500;
  uint64_t cwnd_ = 0;
  uint64_t ssthresh_ = UINT64_MAX;
  TimeNs recovery_until_ = 0;  // ignore further losses until this time passes
  TimeNs srtt_ = Milliseconds(40);
  double ca_accumulator_ = 0.0;
};

}  // namespace astraea

#endif  // SRC_CC_NEWRENO_H_
