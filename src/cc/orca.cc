#include "src/cc/orca.h"

#include <algorithm>
#include <cmath>

namespace astraea {

Orca::Orca() : cubic_(std::make_unique<Cubic>()) {}

void Orca::OnFlowStart(TimeNs now, uint32_t mss) {
  mss_ = mss;
  modulation_ = 1.0;
  cubic_->OnFlowStart(now, mss);
}

void Orca::OnAck(const AckEvent& ev) { cubic_->OnAck(ev); }

void Orca::OnLoss(const LossEvent& ev) { cubic_->OnLoss(ev); }

void Orca::OnMtpTick(const MtpReport& report) {
  // Performance-only agent: push the window up while latency is near the
  // floor, pull it down once queueing builds. The target ratio (1.5x the
  // minimum RTT) mirrors the latency/throughput trade Orca's reward strikes.
  if (report.min_rtt > 0 && (lifetime_min_rtt_ == 0 || report.min_rtt < lifetime_min_rtt_)) {
    lifetime_min_rtt_ = report.min_rtt;
  }
  const double min_rtt_ms = std::max(ToMillis(lifetime_min_rtt_), 0.1);
  const double rtt_ms = report.avg_rtt > 0 ? ToMillis(report.avg_rtt) : min_rtt_ms;
  const double latency_ratio = rtt_ms / min_rtt_ms;
  latency_ratio_ewma_ = 0.6 * latency_ratio_ewma_ + 0.4 * latency_ratio;

  double a = std::clamp(0.9 * (1.5 - latency_ratio_ewma_), -1.0, 1.0);
  if (report.loss_ratio > 0.01) {
    // Any sustained loss: stop boosting and let CUBIC's loss response rule
    // (Orca inherits its loss behaviour from the underlying TCP).
    a = std::min(a, report.loss_ratio > 0.05 ? -0.3 : 0.0);
  }
  modulation_ = std::pow(2.0, a);

  // Orca applies cwnd = cwnd_cubic * 2^a and lets CUBIC continue from the
  // applied window. This write-back is precisely what perturbs AIMD's loss
  // clock and produces the residual instability §2/§5.2 describe. It is
  // applied once per RTT: the agent must observe the previous application's
  // effect before compounding another factor-of-two, or long-RTT paths blow
  // up multiplicatively between feedback arrivals.
  if (report.now - last_apply_ >= std::max<TimeNs>(report.srtt, report.mtp)) {
    last_apply_ = report.now;
    cubic_->SetCwndBytes(static_cast<uint64_t>(
        static_cast<double>(cubic_->cwnd_bytes()) * modulation_));
  }
}

uint64_t Orca::cwnd_bytes() const {
  return std::max<uint64_t>(cubic_->cwnd_bytes(), 2ULL * mss_);
}

}  // namespace astraea
