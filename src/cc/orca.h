// Orca (Abbasloo et al., SIGCOMM 2020): "classic meets modern" — a DRL agent
// periodically scales the congestion window computed by an underlying classic
// TCP (CUBIC by default): cwnd = cwnd_cubic * 2^a, a in [-1, 1].
//
// The agent optimizes a *performance-only* objective (throughput vs latency/
// loss; no fairness term), so the fairness Orca exhibits is inherited from
// CUBIC's AIMD — and, as the paper observes, the RL modulation can suppress
// the loss events AIMD's fairness proof relies on, producing the residual
// instability the Fig. 6/12 experiments measure. The modulation policy here is
// the performance-only distilled controller (see DESIGN.md substitutions).

#ifndef SRC_CC_ORCA_H_
#define SRC_CC_ORCA_H_

#include <memory>

#include "src/cc/cubic.h"
#include "src/sim/congestion_controller.h"

namespace astraea {

class Orca : public CongestionController {
 public:
  Orca();

  void OnFlowStart(TimeNs now, uint32_t mss) override;
  void OnAck(const AckEvent& ev) override;
  void OnLoss(const LossEvent& ev) override;
  void OnMtpTick(const MtpReport& report) override;

  uint64_t cwnd_bytes() const override;
  std::string name() const override { return "orca"; }

  double modulation() const { return modulation_; }  // the agent's 2^a factor

 private:
  std::unique_ptr<Cubic> cubic_;
  uint32_t mss_ = 1500;
  double modulation_ = 1.0;
  double latency_ratio_ewma_ = 1.0;
  TimeNs lifetime_min_rtt_ = 0;  // agent's latency floor (not the windowed min)
  TimeNs last_apply_ = 0;        // modulation applied once per sRTT
};

}  // namespace astraea

#endif  // SRC_CC_ORCA_H_
