#include "src/cc/remy.h"

#include <algorithm>

namespace astraea {

Remy::Remy(std::vector<RemyRule> rules)
    : rules_(rules.empty() ? DefaultRules() : std::move(rules)) {}

std::vector<RemyRule> Remy::DefaultRules() {
  // Five operating regions keyed on rtt/min_rtt, from "queue empty" to
  // "deep bufferbloat". Optimized (by hand, mimicking a Remy search outcome)
  // for 10-200 Mbps / 10-150 ms paths.
  return {
      {0.00, 1.05, 1.00, 2.0, 1.00},  // empty queue: grow fast
      {1.05, 1.30, 1.00, 1.0, 1.00},  // light queueing: grow gently
      {1.30, 1.70, 1.00, 0.0, 1.05},  // target band: hold, slight pace-down
      {1.70, 2.50, 0.96, 0.0, 1.10},  // heavy queueing: shrink
      {2.50, 1e9, 0.85, 0.0, 1.20},   // bufferbloat: shrink hard
  };
}

void Remy::OnFlowStart(TimeNs /*now*/, uint32_t mss) {
  mss_ = mss;
  cwnd_pkts_ = 10.0;
}

const RemyRule& Remy::MatchRule(double rtt_ratio) const {
  for (const RemyRule& rule : rules_) {
    if (rtt_ratio >= rule.rtt_ratio_lo && rtt_ratio < rule.rtt_ratio_hi) {
      return rule;
    }
  }
  return rules_.back();
}

void Remy::OnAck(const AckEvent& ev) {
  srtt_hint_ = ev.srtt;
  const double min_rtt_ms = std::max(ToMillis(ev.min_rtt), 0.1);
  const double rtt_ratio = ToMillis(ev.rtt) / min_rtt_ms;
  const RemyRule& rule = MatchRule(rtt_ratio);
  intersend_multiplier_ = rule.intersend_multiplier;
  if (ev.now - last_window_action_ >= ev.srtt) {
    last_window_action_ = ev.now;
    cwnd_pkts_ = std::max(cwnd_pkts_ * rule.window_multiple + rule.window_increment_pkts, 2.0);
  }
}

void Remy::OnLoss(const LossEvent& ev) {
  if (ev.is_timeout) {
    cwnd_pkts_ = 2.0;
    return;
  }
  cwnd_pkts_ = std::max(cwnd_pkts_ * 0.7, 2.0);
}

uint64_t Remy::cwnd_bytes() const {
  return static_cast<uint64_t>(cwnd_pkts_ * mss_);
}

std::optional<double> Remy::pacing_bps() const {
  const double rtt = ToSeconds(std::max<TimeNs>(srtt_hint_, Milliseconds(1)));
  return cwnd_pkts_ * mss_ * 8.0 / rtt / intersend_multiplier_;
}

}  // namespace astraea
