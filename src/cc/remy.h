// RemyCC (Winstein & Balakrishnan, SIGCOMM 2013): an offline-optimized
// rule-table controller. A real Remy run searches for the table maximizing a
// utility over a modelled network range; here we ship a compact hand-derived
// table optimized for the paper's emulation range (tens of Mbps, tens of ms),
// which reproduces Remy's published trait of performing well inside its
// design range and conservatively outside it (paper Fig. 15).

#ifndef SRC_CC_REMY_H_
#define SRC_CC_REMY_H_

#include <vector>

#include "src/sim/congestion_controller.h"

namespace astraea {

// One Remy rule: matched on the observed RTT ratio and EWMA inter-ACK trend,
// applying (window multiple, window increment, pacing multiplier).
struct RemyRule {
  double rtt_ratio_lo = 0.0;
  double rtt_ratio_hi = 1e9;
  double window_multiple = 1.0;
  double window_increment_pkts = 0.0;  // applied once per RTT
  double intersend_multiplier = 1.0;   // >1 slows sending below the ACK rate
};

class Remy : public CongestionController {
 public:
  // Uses the built-in design-range table when `rules` is empty.
  explicit Remy(std::vector<RemyRule> rules = {});

  void OnFlowStart(TimeNs now, uint32_t mss) override;
  void OnAck(const AckEvent& ev) override;
  void OnLoss(const LossEvent& ev) override;

  uint64_t cwnd_bytes() const override;
  std::optional<double> pacing_bps() const override;
  std::string name() const override { return "remy"; }

  static std::vector<RemyRule> DefaultRules();

 private:
  const RemyRule& MatchRule(double rtt_ratio) const;

  std::vector<RemyRule> rules_;
  uint32_t mss_ = 1500;
  double cwnd_pkts_ = 10.0;
  TimeNs last_window_action_ = 0;
  TimeNs srtt_hint_ = Milliseconds(40);
  double intersend_multiplier_ = 1.0;
};

}  // namespace astraea

#endif  // SRC_CC_REMY_H_
