// Unresponsive constant-rate blaster: ignores every congestion signal and
// paces at a fixed rate with an effectively unbounded window. Models the
// background UDP traffic of the adversarial scenario family (bufferbloat
// blasts) and gives the promotion gate a hostile competitor. Not a TCP
// scheme — it never backs off by design.

#ifndef SRC_CC_UDP_BLAST_H_
#define SRC_CC_UDP_BLAST_H_

#include "src/sim/congestion_controller.h"

namespace astraea {

class UdpBlast : public CongestionController {
 public:
  // `rate_bps` is the constant send rate; the window is capped at roughly
  // one second's worth of data so a dead path cannot queue unbounded state.
  explicit UdpBlast(double rate_bps) : rate_bps_(rate_bps) {}

  void OnFlowStart(TimeNs /*now*/, uint32_t mss) override { mss_ = mss; }

  uint64_t cwnd_bytes() const override {
    return static_cast<uint64_t>(rate_bps_ / 8.0) + 2ULL * mss_;
  }
  std::optional<double> pacing_bps() const override { return rate_bps_; }
  std::string name() const override { return "blast"; }

 private:
  double rate_bps_;
  uint32_t mss_ = 1500;
};

}  // namespace astraea

#endif  // SRC_CC_UDP_BLAST_H_
