#include "src/cc/vegas.h"

#include <algorithm>

namespace astraea {

void Vegas::OnFlowStart(TimeNs /*now*/, uint32_t mss) {
  mss_ = mss;
  cwnd_ = 10ULL * mss_;
  ssthresh_ = UINT64_MAX;
}

double Vegas::QueueEstimate(TimeNs rtt, TimeNs base_rtt) const {
  if (rtt <= 0 || base_rtt <= 0) {
    return 0.0;
  }
  const double cwnd_pkts = static_cast<double>(cwnd_) / mss_;
  const double expected = cwnd_pkts / ToSeconds(base_rtt);  // pkts/s
  const double actual = cwnd_pkts / ToSeconds(rtt);
  return (expected - actual) * ToSeconds(base_rtt);  // packets in the queue
}

void Vegas::OnAck(const AckEvent& ev) {
  rtt_sum_ms_ += ToMillis(ev.rtt);
  ++rtt_samples_;
  if (ev.now - last_adjust_ < ev.srtt || rtt_samples_ == 0) {
    return;
  }
  const TimeNs avg_rtt =
      static_cast<TimeNs>(rtt_sum_ms_ / static_cast<double>(rtt_samples_) *
                          static_cast<double>(kNanosPerMilli));
  rtt_sum_ms_ = 0.0;
  rtt_samples_ = 0;
  last_adjust_ = ev.now;

  const double diff = QueueEstimate(avg_rtt, ev.min_rtt);

  if (cwnd_ < ssthresh_) {
    // Vegas slow start: double every other RTT while diff < gamma (=1).
    if (diff < 1.0) {
      cwnd_ += cwnd_ / 2;
    } else {
      ssthresh_ = cwnd_;
    }
    return;
  }
  if (diff < alpha_) {
    cwnd_ += mss_;
  } else if (diff > beta_) {
    cwnd_ = std::max<uint64_t>(cwnd_ - mss_, 2ULL * mss_);
  }
}

void Vegas::OnLoss(const LossEvent& ev) {
  if (ev.is_timeout) {
    cwnd_ = 2ULL * mss_;
    ssthresh_ = std::max<uint64_t>(cwnd_, 2ULL * mss_);
    return;
  }
  cwnd_ = std::max<uint64_t>(static_cast<uint64_t>(cwnd_ * 0.75), 2ULL * mss_);
  ssthresh_ = cwnd_;
}

}  // namespace astraea
