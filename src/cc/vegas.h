// TCP Vegas (Brakmo & Peterson 1994): delay-based congestion avoidance that
// keeps between alpha and beta packets queued at the bottleneck.

#ifndef SRC_CC_VEGAS_H_
#define SRC_CC_VEGAS_H_

#include "src/sim/congestion_controller.h"

namespace astraea {

class Vegas : public CongestionController {
 public:
  explicit Vegas(double alpha = 2.0, double beta = 4.0) : alpha_(alpha), beta_(beta) {}

  void OnFlowStart(TimeNs now, uint32_t mss) override;
  void OnAck(const AckEvent& ev) override;
  void OnLoss(const LossEvent& ev) override;

  uint64_t cwnd_bytes() const override { return cwnd_; }
  std::string name() const override { return "vegas"; }

  // Estimated packets queued at the bottleneck (the Vegas "diff").
  double QueueEstimate(TimeNs rtt, TimeNs base_rtt) const;

 private:
  double alpha_;
  double beta_;
  uint32_t mss_ = 1500;
  uint64_t cwnd_ = 0;
  uint64_t ssthresh_ = UINT64_MAX;
  TimeNs last_adjust_ = 0;  // Vegas adjusts once per RTT
  double rtt_sum_ms_ = 0.0;
  uint64_t rtt_samples_ = 0;
};

}  // namespace astraea

#endif  // SRC_CC_VEGAS_H_
