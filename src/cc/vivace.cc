#include "src/cc/vivace.h"

#include <algorithm>
#include <cmath>

namespace astraea {

Vivace::Vivace(VivaceConfig config) : config_(config) {}

void Vivace::OnFlowStart(TimeNs now, uint32_t mss) {
  mss_ = mss;
  rate_ = config_.initial_rate;
  phase_ = Phase::kStarting;
  BeginMonitorInterval(now);
}

uint64_t Vivace::cwnd_bytes() const {
  // A loose cap: two RTTs of data at the decision rate. Control is rate-based.
  const double rtt = ToSeconds(std::max<TimeNs>(srtt_hint_, Milliseconds(1)));
  return std::max<uint64_t>(static_cast<uint64_t>(2.0 * rate_ * rtt / 8.0), 4ULL * mss_);
}

std::optional<double> Vivace::pacing_bps() const { return ProbeRate(); }

double Vivace::ProbeRate() const {
  switch (phase_) {
    case Phase::kProbeUp:
      return rate_ * (1.0 + config_.epsilon);
    case Phase::kProbeDown:
      return rate_ * (1.0 - config_.epsilon);
    default:
      return rate_;
  }
}

double Vivace::Utility(const MiStats& mi, double prev_rtt_ms) const {
  const double x = mi.sent_mbps;
  if (x <= 0.0) {
    return 0.0;
  }
  double latency_gradient = 0.0;
  if (prev_rtt_ms > 0.0 && mi.avg_rtt_ms > 0.0 && mi.duration_s > 0.0) {
    latency_gradient = (mi.avg_rtt_ms - prev_rtt_ms) / 1000.0 / mi.duration_s;
  }
  return std::pow(x, config_.throughput_exponent) -
         config_.latency_coeff * x * latency_gradient - config_.loss_coeff * x * mi.loss_ratio;
}

void Vivace::BeginMonitorInterval(TimeNs now) {
  mi_start_ = now;
  mi_settle_ = srtt_hint_ + Milliseconds(10);  // + loss-detection lag margin
  mi_target_len_ = mi_settle_ + std::max<TimeNs>(srtt_hint_, Milliseconds(30));
  mi_acked_bits_ = 0.0;
  mi_rtt_sum_ms_ = 0.0;
  mi_rtt_weight_ = 0.0;
  mi_lost_bits_ = 0.0;
}

void Vivace::OnMtpTick(const MtpReport& report) {
  srtt_hint_ = std::max<TimeNs>(report.srtt, Milliseconds(1));
  if (report.now - mi_start_ > mi_settle_) {
    const double dur_s = ToSeconds(report.mtp);
    mi_acked_bits_ += report.thr_bps * dur_s;
    mi_lost_bits_ += report.loss_bps * dur_s;
    if (report.acked_packets > 0) {
      mi_rtt_sum_ms_ += ToMillis(report.avg_rtt) * static_cast<double>(report.acked_packets);
      mi_rtt_weight_ += static_cast<double>(report.acked_packets);
    }
  }
  if (report.now - mi_start_ >= mi_target_len_) {
    FinishMonitorInterval();
    BeginMonitorInterval(report.now);
  }
}

void Vivace::FinishMonitorInterval() {
  MiStats mi;
  mi.duration_s = ToSeconds(mi_target_len_ - mi_settle_);
  const double total_bits = mi_acked_bits_ + mi_lost_bits_;
  mi.sent_mbps = total_bits / mi.duration_s / 1e6;
  mi.loss_ratio = total_bits > 0.0 ? mi_lost_bits_ / total_bits : 0.0;
  mi.avg_rtt_ms = mi_rtt_weight_ > 0.0 ? mi_rtt_sum_ms_ / mi_rtt_weight_ : 0.0;
  mi.valid = mi_rtt_weight_ > 0.0;
  if (!mi.valid) {
    return;  // nothing ACKed this MI; keep accumulating
  }

  const double u = Utility(mi, prev_mi_rtt_ms_);

  switch (phase_) {
    case Phase::kStarting:
      if (u >= prev_utility_) {
        prev_utility_ = u;
        rate_ *= 2.0;
      } else {
        rate_ = std::max(rate_ / 2.0, config_.min_rate);
        phase_ = Phase::kProbeUp;
      }
      break;
    case Phase::kProbeUp:
      utility_up_ = u;
      phase_ = Phase::kProbeDown;
      break;
    case Phase::kProbeDown: {
      utility_down_ = u;
      const double rate_mbps = rate_ / 1e6;
      const double grad =
          (utility_up_ - utility_down_) / (2.0 * config_.epsilon * std::max(rate_mbps, 1e-3));
      const double sign = grad > 0.0 ? 1.0 : (grad < 0.0 ? -1.0 : 0.0);
      if (sign != 0.0 && sign == last_gradient_sign_) {
        ++consecutive_same_sign_;
      } else {
        consecutive_same_sign_ = 0;
      }
      last_gradient_sign_ = sign;

      const double theta = config_.theta0 * static_cast<double>(1 + consecutive_same_sign_);
      double delta_mbps = theta * grad;
      const double omega =
          config_.omega_base + config_.omega_step * static_cast<double>(consecutive_same_sign_);
      const double bound_mbps = omega * rate_mbps;
      delta_mbps = std::clamp(delta_mbps, -bound_mbps, bound_mbps);
      rate_ = std::max(rate_ + delta_mbps * 1e6, config_.min_rate);
      phase_ = Phase::kProbeUp;
      break;
    }
    case Phase::kDeciding:
      phase_ = Phase::kProbeUp;
      break;
  }
  prev_mi_rtt_ms_ = mi.avg_rtt_ms;
}

void Vivace::OnLoss(const LossEvent& ev) {
  if (ev.is_timeout) {
    rate_ = std::max(rate_ / 2.0, config_.min_rate);
    phase_ = Phase::kProbeUp;
    prev_utility_ = -1e18;
  }
  // Per-packet losses enter the utility via the MI loss ratio.
}

}  // namespace astraea
