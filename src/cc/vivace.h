// PCC Vivace (Dong et al., NSDI 2018): rate-based online learning.
//
// Vivace keeps no model of the network. Each monitor interval (MI, about one
// RTT) it measures the utility
//
//   u(x) = x^0.9 - 900 * x * d(RTT)/dT - 11.25 * x * L        (paper Eq. 2)
//
// (x = sending rate in Mbps, d(RTT)/dT = latency gradient, L = loss ratio)
// and performs gradient ascent: alternate probe MIs at r(1+eps) and r(1-eps),
// estimate the utility gradient, then move the rate by theta * gradient with
// a confidence amplifier (consecutive same-sign moves grow theta) and a
// dynamic change boundary (omega) limiting each step.
//
// The initial conversion factor theta0 is exposed because the paper's Fig. 2
// experiment enlarges it to trade stability for responsiveness.

#ifndef SRC_CC_VIVACE_H_
#define SRC_CC_VIVACE_H_

#include "src/sim/congestion_controller.h"

namespace astraea {

struct VivaceConfig {
  double epsilon = 0.05;          // probe amplitude
  double theta0 = 0.8;            // initial conversion factor, Mbps per utility-gradient unit
  double omega_base = 0.05;       // dynamic boundary start (fraction of rate)
  double omega_step = 0.05;       // boundary growth per consecutive same-sign move
  double initial_rate = 2e6;      // bps
  double min_rate = 0.2e6;        // bps
  double latency_coeff = 900.0;   // Eq. 2 "b"
  double loss_coeff = 11.25;      // Eq. 2 "c"
  double throughput_exponent = 0.9;
};

class Vivace : public CongestionController {
 public:
  explicit Vivace(VivaceConfig config = {});

  void OnFlowStart(TimeNs now, uint32_t mss) override;
  void OnMtpTick(const MtpReport& report) override;
  void OnLoss(const LossEvent& ev) override;

  uint64_t cwnd_bytes() const override;
  std::optional<double> pacing_bps() const override;
  std::string name() const override { return "vivace"; }

  double rate_bps() const { return rate_; }

  enum class Phase { kStarting, kProbeUp, kProbeDown, kDeciding };
  Phase phase() const { return phase_; }

 private:
  struct MiStats {
    double sent_mbps = 0.0;
    double avg_rtt_ms = 0.0;
    double loss_ratio = 0.0;
    double duration_s = 0.0;
    bool valid = false;
  };

  double Utility(const MiStats& mi, double prev_rtt_ms) const;
  void FinishMonitorInterval();
  void BeginMonitorInterval(TimeNs now);
  double ProbeRate() const;

  VivaceConfig config_;
  uint32_t mss_ = 1500;
  double rate_ = 0.0;      // decision rate (bps)
  Phase phase_ = Phase::kStarting;

  // Current MI accumulation. Each MI begins with a one-RTT settle period
  // whose ACKs are excluded: they still reflect packets paced at the previous
  // probe rate (PCC attributes statistics to packets by send time; the settle
  // window is the equivalent at MTP granularity).
  TimeNs mi_start_ = 0;
  TimeNs mi_settle_ = 0;
  TimeNs mi_target_len_ = Milliseconds(30);
  double mi_acked_bits_ = 0.0;
  double mi_rtt_sum_ms_ = 0.0;
  double mi_rtt_weight_ = 0.0;
  double mi_lost_bits_ = 0.0;

  MiStats last_mi_;
  double prev_mi_rtt_ms_ = 0.0;

  // Starting-phase bookkeeping.
  double prev_utility_ = -1e18;

  // Probe-pair results.
  double utility_up_ = 0.0;
  double utility_down_ = 0.0;

  // Gradient-move state.
  int consecutive_same_sign_ = 0;
  double last_gradient_sign_ = 0.0;

  TimeNs srtt_hint_ = Milliseconds(40);
};

}  // namespace astraea

#endif  // SRC_CC_VIVACE_H_
