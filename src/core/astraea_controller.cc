#include "src/core/astraea_controller.h"

#include <algorithm>

#include "src/util/logging.h"

namespace astraea {

AstraeaController::AstraeaController(std::shared_ptr<const Policy> policy,
                                     AstraeaHyperparameters hp)
    : policy_(std::move(policy)), hp_(hp), state_block_(hp.history_length) {
  ASTRAEA_CHECK(policy_ != nullptr);
}

void AstraeaController::OnFlowStart(TimeNs /*now*/, uint32_t mss) {
  mss_ = mss;
  cwnd_ = 10ULL * mss_;
  slow_start_ = true;
}

void AstraeaController::FinishDrain() {
  draining_ = false;
  if (drain_succeeded_) {
    // The queue emptied: no buffer-filling competitor. Relax the appetite
    // gradually (one halving per epoch) so mode changes are damped.
    backlog_target_scale_ = std::max(1.0, backlog_target_scale_ / 2.0);
  } else {
    // The queue stayed pinned despite shrinking the window: a buffer-filling
    // competitor occupies it. Grow the standing-queue appetite, bounded, so
    // our share of the buffer — and thus of the bottleneck — recovers without
    // ever monopolizing it. This is the distilled form of §5.3.1's learned
    // "tolerance to latency inflation when occupying low bandwidth".
    backlog_target_scale_ = std::min(backlog_target_scale_ * 1.5, 8.0);
  }
}

uint64_t AstraeaController::cwnd_bytes() const {
  if (draining_) {
    // Gentle depth by default: with every flow at 85%, the fleet frees ~15%
    // of capacity, which empties the few-packets-per-flow standing queue well
    // within the drain window while barely denting throughput. Once the
    // appetite has escalated, the fleet's standing queue can exceed what a
    // shallow drain can flush in one window — drains that cannot succeed
    // would pin the escalation forever — so escalated flows drain deep (50%)
    // to decisively test whether a real competitor owns the queue.
    const uint64_t num = backlog_target_scale_ > 1.0 ? 1 : 17;
    const uint64_t den = backlog_target_scale_ > 1.0 ? 2 : 20;
    return std::max<uint64_t>(cwnd_ * num / den, 2ULL * mss_);
  }
  return cwnd_;
}

std::optional<double> AstraeaController::pacing_bps() const {
  // cwnd / sRTT pacing (§3.3), with 20% headroom so the window — not the
  // pacer — is the binding constraint in steady state.
  const double rtt = ToSeconds(std::max<TimeNs>(srtt_hint_, Milliseconds(1)));
  return 1.2 * static_cast<double>(cwnd_bytes()) * 8.0 / rtt;
}

void AstraeaController::OnAck(const AckEvent& ev) {
  srtt_hint_ = ev.srtt;
  // A near-floor RTT sample re-anchors the latency floor: no drain needed.
  // Tolerance: 5% of the floor or 2 ms, whichever is larger, so many small
  // per-flow backlogs on a big pipe do not read as a pinned queue.
  const TimeNs tolerance = std::max<TimeNs>(ev.min_rtt / 20, Milliseconds(2));
  if (ev.min_rtt > 0 && ev.rtt <= ev.min_rtt + tolerance) {
    last_min_refresh_ = ev.now;
    if (draining_) {
      drain_succeeded_ = true;
    }
  }
  if (draining_ && ev.now >= drain_until_) {
    FinishDrain();
  }
  if (!slow_start_) {
    return;
  }
  cwnd_ += ev.acked_bytes;
  // Hand over to the agent once queueing is visible: the RTT has inflated by
  // 25% over the floor, meaning the pipe is full.
  if (ev.min_rtt > 0 && ev.rtt > ev.min_rtt + ev.min_rtt / 4) {
    slow_start_ = false;
  }
}

void AstraeaController::OnLoss(const LossEvent& ev) {
  if (ev.is_timeout) {
    // As in kernel TCP, an RTO re-enters slow start so the flow re-probes the
    // (possibly changed) path quickly instead of crawling at 2.5% per MTP.
    cwnd_ = 2ULL * mss_;
    slow_start_ = true;
    return;
  }
  if (slow_start_) {
    slow_start_ = false;
    cwnd_ = std::max<uint64_t>(static_cast<uint64_t>(cwnd_ * 0.7), 2ULL * mss_);
    return;
  }
  // Packet loss reaches the policy via the state/loss features.
}

void AstraeaController::OnMtpTick(const MtpReport& report) {
  state_block_.Update(report, mss_);
  if (slow_start_) {
    return;
  }

  // Base-RTT probe: every epoch, all flows shrink their windows inside the
  // same wall-clock-aligned drain window (BBR's PROBE_RTT, synchronized by
  // construction instead of emergently). The drain is unconditional by
  // default: a flow whose min-RTT was contaminated by an existing standing
  // queue cannot tell that it needs one — its corrupted floor always looks
  // "fresh" — so only a fleet-wide drain reliably empties the queue and
  // re-anchors every floor. skip_drain_on_fresh_floor opts out of the probe
  // when the floor was re-anchored within the last epoch (single-flow real
  // paths, where the floor is trustworthy and a drain only costs throughput).
  if (draining_ && report.now >= drain_until_) {
    FinishDrain();
  }
  const int64_t epoch_index = report.now / hp_.probe_epoch;
  if (!draining_ && epoch_index != last_drain_epoch_ &&
      (report.now % hp_.probe_epoch) < hp_.drain_window) {
    last_drain_epoch_ = epoch_index;
    const bool floor_fresh = hp_.skip_drain_on_fresh_floor && last_min_refresh_ > 0 &&
                             report.now - last_min_refresh_ <= hp_.probe_epoch;
    if (!floor_fresh) {
      draining_ = true;
      drain_succeeded_ = false;
      drain_until_ = report.now + std::max<TimeNs>(srtt_hint_, 2 * hp_.mtp) + hp_.mtp;
    }
  }
  const std::vector<float> state = state_block_.StateVector();
  StateView view;
  view.state_vector = state;
  view.report = &report;
  view.lat_min = state_block_.lat_min();
  view.thr_max_bps = state_block_.thr_max_bps();
  view.mss = mss_;
  view.mtp = hp_.mtp;
  view.action_alpha = hp_.action_alpha;
  view.backlog_target_scale = backlog_target_scale_;

  double action = policy_->Act(view);
  if (hook_) {
    action = std::clamp(hook_(view, action), -1.0, 1.0);
  }
  last_action_ = action;
  cwnd_ = ApplyActionToCwnd(cwnd_, action, hp_.action_alpha, mss_);
  if (tracer_ != nullptr) {
    tracer_->Record(report.now, TraceEventType::kAction, trace_flow_id_, -1,
                    static_cast<uint64_t>(epoch_index), action,
                    static_cast<double>(cwnd_));
  }
}

}  // namespace astraea
