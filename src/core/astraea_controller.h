// AstraeaController: the deployable congestion controller (paper Fig. 3,
// "Evaluation" path). Per MTP it assembles the local state (state block),
// queries the policy for an action, and applies Eq. 3 to the congestion
// window; pacing follows cwnd / sRTT (§3.3).
//
// Like the paper's kernel-TCP integration, a brand-new flow runs standard
// slow start until the first congestion signal (queueing or loss) and then
// hands control to the agent — this is what gives Astraea its fast initial
// convergence while the per-MTP action is bounded by alpha.
//
// During training, an ActionHook lets the learner observe the state, inject
// exploration noise, and record the transition (the Enforcer role in §3.2).

#ifndef SRC_CORE_ASTRAEA_CONTROLLER_H_
#define SRC_CORE_ASTRAEA_CONTROLLER_H_

#include <functional>
#include <memory>

#include "src/core/policy.h"
#include "src/core/state_block.h"
#include "src/core/training_config.h"
#include "src/sim/congestion_controller.h"

namespace astraea {

// Training hook: receives the state view and the policy's proposed action;
// returns the action to actually apply (e.g. with exploration noise).
using ActionHook = std::function<double(const StateView& view, double proposed_action)>;

class AstraeaController : public CongestionController {
 public:
  AstraeaController(std::shared_ptr<const Policy> policy, AstraeaHyperparameters hp = {});

  void set_action_hook(ActionHook hook) { hook_ = std::move(hook); }

  void OnFlowStart(TimeNs now, uint32_t mss) override;
  void OnAck(const AckEvent& ev) override;
  void OnLoss(const LossEvent& ev) override;
  void OnMtpTick(const MtpReport& report) override;

  // Returns the agent's window, halved while a base-RTT drain is in progress.
  uint64_t cwnd_bytes() const override;
  std::optional<double> pacing_bps() const override;
  std::string name() const override { return "astraea"; }

  // Records one kAction event per MTP decision (a = applied action in [-1,1],
  // b = resulting cwnd in bytes).
  void set_tracer(Tracer* tracer, int32_t flow_id) override {
    tracer_ = tracer;
    trace_flow_id_ = flow_id;
  }

  bool in_slow_start() const { return slow_start_; }
  bool draining() const { return draining_; }
  double last_action() const { return last_action_; }
  // Competitive-mode multiplier (1.0 when only well-behaved flows share the
  // bottleneck; grows while drain probes fail to empty the queue).
  double backlog_target_scale() const { return backlog_target_scale_; }
  // True once repeated drain failures indicate a buffer-filling competitor.
  bool in_competitive_mode() const { return backlog_target_scale_ >= 4.0; }
  const StateBlock& state_block() const { return state_block_; }
  const AstraeaHyperparameters& hyperparameters() const { return hp_; }

 private:
  void FinishDrain();

  std::shared_ptr<const Policy> policy_;
  AstraeaHyperparameters hp_;
  StateBlock state_block_;
  ActionHook hook_;
  Tracer* tracer_ = nullptr;
  int32_t trace_flow_id_ = -1;

  uint32_t mss_ = 1500;
  uint64_t cwnd_ = 0;
  bool slow_start_ = true;
  double last_action_ = 0.0;
  TimeNs srtt_hint_ = Milliseconds(40);

  // Base-RTT probe state (see AstraeaHyperparameters::probe_epoch).
  // last_min_refresh_ is the time of the most recent near-floor RTT sample;
  // with hp_.skip_drain_on_fresh_floor set, an epoch drain is skipped while
  // the floor is this fresh (0 = never refreshed).
  TimeNs last_min_refresh_ = 0;
  bool draining_ = false;
  TimeNs drain_until_ = 0;
  // Competitive-mode detection: a drain that empties the queue (an RTT sample
  // near the floor during the drain) halves the appetite back toward 1;
  // a failed drain — the queue is pinned by a buffer-filling competitor —
  // doubles it, Copa-style.
  bool drain_succeeded_ = false;
  int64_t last_drain_epoch_ = -1;
  double backlog_target_scale_ = 1.0;
};

}  // namespace astraea

#endif  // SRC_CORE_ASTRAEA_CONTROLLER_H_
