#include "src/core/inference_service.h"

#include <algorithm>
#include <chrono>

#include "src/util/failpoint.h"
#include "src/util/logging.h"
#include "src/util/metrics.h"

namespace astraea {

InferenceService::InferenceService(Mlp actor, TimeNs batch_window)
    : actor_(std::move(actor)), batch_window_(batch_window) {}

void InferenceService::Submit(std::vector<float> state, Callback callback) {
  ASTRAEA_CHECK(state.size() == state_dim());
  pending_states_.insert(pending_states_.end(), state.begin(), state.end());
  pending_callbacks_.push_back(std::move(callback));
  ++total_requests_;
}

size_t InferenceService::Flush() {
  // Fault-injection site: fires before the pending queues are swapped out,
  // so an injected error leaves every submitted request intact for the next
  // Flush() — tests assert no request is lost across an injected failure.
  ASTRAEA_FAILPOINT("inference.flush");
  const size_t batch = pending_callbacks_.size();
  if (batch == 0) {
    return 0;
  }
  // Swap the pending queues into locals *before* dispatching: a callback may
  // re-Submit (the steady-state MTP pattern) or even re-Flush, and must find
  // the service in a consistent empty state rather than mid-iteration.
  std::vector<float> states;
  std::vector<Callback> callbacks;
  states.swap(pending_states_);
  callbacks.swap(pending_callbacks_);
  ++total_batches_;
  max_batch_ = std::max(max_batch_, batch);

  // Copy the scores out of the actor's scratch so a reentrant Flush cannot
  // clobber them under us (out_dim is 1 for the paper's actor — this is tiny).
  const auto flush_start = std::chrono::steady_clock::now();
  const std::vector<float> out = actor_.InferBatch(states, batch);
  const double flush_us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - flush_start)
                              .count();
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetHistogram("inference.batch_size").Observe(static_cast<double>(batch));
  reg.GetHistogram("inference.flush_latency_us").Observe(flush_us);
  const size_t out_dim = static_cast<size_t>(actor_.output_size());
  for (size_t i = 0; i < batch; ++i) {
    if (callbacks[i]) {
      callbacks[i](std::clamp<double>(out[i * out_dim], -1.0, 1.0));
    }
  }
  return batch;
}

std::vector<float> InferenceService::InferBatch(std::span<const float> states,
                                                size_t batch) const {
  return actor_.InferBatch(states, batch);
}

}  // namespace astraea
