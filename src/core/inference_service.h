// The Astraea inference service (paper §4): one model server shared by many
// senders. Requests arriving within a batching window (default 5 ms) are
// scored together with a single batched forward pass, which is what keeps
// CPU cost sublinear in the number of concurrent flows (Fig. 16b) — unlike
// Orca's one-inference-process-per-flow design.
//
// The production system speaks UNIX/UDP sockets; here the transport is a
// direct call API (Submit + Flush), which is what both the Fig. 16 benchmark
// and the examples drive. The batching semantics are identical.

#ifndef SRC_CORE_INFERENCE_SERVICE_H_
#define SRC_CORE_INFERENCE_SERVICE_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/nn/mlp.h"
#include "src/util/time.h"

namespace astraea {

class InferenceService {
 public:
  // The service owns its copy of the actor network.
  explicit InferenceService(Mlp actor, TimeNs batch_window = Milliseconds(5));

  using Callback = std::function<void(double action)>;

  // Enqueues a request. Requests are answered on the next Flush().
  void Submit(std::vector<float> state, Callback callback);

  // Scores every pending request as one batch and invokes the callbacks.
  // Returns the batch size served.
  size_t Flush();

  // Convenience synchronous path: score a whole batch at once (states is
  // row-major [batch x state_dim]).
  std::vector<float> InferBatch(std::span<const float> states, size_t batch) const;

  TimeNs batch_window() const { return batch_window_; }
  size_t pending() const { return pending_states_.size() / state_dim(); }
  size_t state_dim() const { return static_cast<size_t>(actor_.input_size()); }

  // Cumulative statistics for the overhead benchmarks.
  uint64_t total_requests() const { return total_requests_; }
  uint64_t total_batches() const { return total_batches_; }
  size_t max_batch() const { return max_batch_; }

 private:
  Mlp actor_;
  TimeNs batch_window_;
  std::vector<float> pending_states_;  // row-major
  std::vector<Callback> pending_callbacks_;
  uint64_t total_requests_ = 0;
  uint64_t total_batches_ = 0;
  size_t max_batch_ = 0;
};

}  // namespace astraea

#endif  // SRC_CORE_INFERENCE_SERVICE_H_
