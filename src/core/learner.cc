#include "src/core/learner.h"

#include <algorithm>

#include "src/util/checkpoint.h"
#include "src/util/failpoint.h"
#include "src/util/logging.h"
#include "src/util/metrics.h"

namespace astraea {

Learner::Learner(LearnerConfig config) : config_(config), rng_(config.seed) {
  Td3Config td3;
  td3.local_state_dim = LocalStateDim(config_.hp);
  td3.global_state_dim = kGlobalFeatures;
  td3.action_dim = 1;
  td3.actor_lr = static_cast<float>(config_.hp.learning_rate);
  td3.critic_lr = static_cast<float>(config_.hp.learning_rate);
  td3.gamma = static_cast<float>(config_.hp.gamma);
  td3.batch_size = static_cast<size_t>(config_.hp.batch_size);
  trainer_ = std::make_unique<Td3Trainer>(td3, &rng_);
  buffer_ = std::make_unique<ReplayBuffer>(config_.replay_capacity);
}

void Learner::Train(int episodes,
                    const std::function<void(const EpisodeDiagnostics&)>& on_episode) {
  // Fix the exploration-decay horizon once (first call or config) so the
  // noise at global episode g is the same whether training ran straight
  // through or was checkpointed, killed and resumed.
  if (decay_horizon_ == 0) {
    decay_horizon_ =
        config_.exploration_decay_episodes > 0 ? config_.exploration_decay_episodes : episodes;
  }
  for (int e = 0; e < episodes; ++e) {
    ASTRAEA_FAILPOINT("learner.episode");
    // Linear exploration decay across the global horizon.
    const double frac =
        decay_horizon_ > 1
            ? std::min(1.0, static_cast<double>(episodes_done_) / (decay_horizon_ - 1))
            : 1.0;
    const double noise = config_.exploration_noise +
                         frac * (config_.exploration_noise_final - config_.exploration_noise);

    // Appendix A: several environment instances share the networks and the
    // replay buffer. Instance 0 drives the model-update cadence; the others
    // contribute experience only (they are advanced in lockstep below).
    const int instances = std::max(config_.env_instances, 1);
    std::vector<std::unique_ptr<MultiFlowEnv>> extra_envs;
    for (int i = 1; i < instances; ++i) {
      EnvEpisodeConfig extra = SampleEpisode(config_.ranges, &rng_);
      extra.episode_length = config_.episode_length;
      extra_envs.push_back(std::make_unique<MultiFlowEnv>(extra, config_.hp, trainer_.get(),
                                                          buffer_.get(), noise, &rng_));
    }

    EnvEpisodeConfig env_config = SampleEpisode(config_.ranges, &rng_);
    env_config.episode_length = config_.episode_length;
    MultiFlowEnv env(env_config, config_.hp, trainer_.get(), buffer_.get(), noise, &rng_);

    Td3Diagnostics last_td3;
    TimeNs extra_progress = 0;
    const EpisodeStats stats = env.Run([this, &last_td3, &extra_envs, &extra_progress] {
      extra_progress += config_.hp.model_update_interval;
      for (auto& extra : extra_envs) {
        extra->network().Run(extra_progress);
      }
      for (int step = 0; step < config_.hp.model_update_steps; ++step) {
        last_td3 = trainer_->Update(*buffer_, &rng_);
      }
    });

    ++episodes_done_;
    EpisodeDiagnostics diag;
    diag.episode = episodes_done_;
    diag.env = stats;
    diag.td3 = last_td3;
    diag.replay_size = buffer_->size();
    diag.exploration_noise = noise;
    if (episodes_done_ % 10 == 0) {
      diag.eval_jain = EvaluateFairness();
    }

    // Mirror the episode into the process-wide registry so any embedding
    // binary can scrape training health without threading callbacks through.
    MetricsRegistry& reg = MetricsRegistry::Global();
    reg.GetCounter("learner.episodes").Increment();
    reg.GetGauge("learner.replay_size").Set(static_cast<double>(buffer_->size()));
    reg.GetGauge("learner.exploration_noise").Set(noise);
    reg.GetHistogram("learner.episode_reward").Observe(stats.mean_reward);
    reg.GetHistogram("learner.critic_loss").Observe(last_td3.critic_loss);
    reg.GetHistogram("learner.critic_grad_norm").Observe(last_td3.critic_grad_norm);
    if (last_td3.actor_grad_norm > 0.0) {
      reg.GetHistogram("learner.actor_grad_norm").Observe(last_td3.actor_grad_norm);
    }

    if (on_episode) {
      on_episode(diag);
    }
  }
}

double Learner::EvaluateFairness() {
  EnvEpisodeConfig config;
  config.bandwidth = Mbps(100);
  config.base_rtt = Milliseconds(40);
  config.buffer_bdp = 1.0;
  config.episode_length = Seconds(24.0);
  config.seed = 42;
  for (int i = 0; i < 3; ++i) {
    FlowSchedule f;
    f.start = Seconds(4.0 * i);
    f.duration = -1;
    config.flows.push_back(f);
  }
  // Evaluation uses the deterministic policy: no exploration noise, and a
  // throwaway replay buffer so evaluation does not contaminate training.
  ReplayBuffer scratch(1024);
  MultiFlowEnv env(config, config_.hp, trainer_.get(), &scratch, /*noise_std=*/0.0, &rng_);
  env.Run({});

  // Average Jain over the three-flow window.
  std::vector<double> rates;
  const Network& net = env.network();
  double jain_sum = 0.0;
  int slots = 0;
  for (TimeNs t = Seconds(9.0); t + Seconds(1.0) <= config.episode_length; t += Seconds(1.0)) {
    rates.clear();
    for (size_t i = 0; i < net.flow_count(); ++i) {
      rates.push_back(net.flow_stats(static_cast<int>(i)).throughput_mbps.MeanOver(t, t + Seconds(1.0)));
    }
    jain_sum += JainIndex(rates);
    ++slots;
  }
  return slots > 0 ? jain_sum / slots : 0.0;
}

namespace {

constexpr uint32_t kLearnerStateMagic = 0x41'53'54'4B;  // "ASTK"
constexpr uint32_t kLearnerStateVersion = 1;

}  // namespace

void Learner::SaveState(const std::string& path) const {
  CheckpointWriter ckpt(path);
  BinaryWriter* w = ckpt.payload();
  WriteSchemaHeader(w, {kLearnerStateMagic, kLearnerStateVersion});
  w->WriteU32(static_cast<uint32_t>(episodes_done_));
  w->WriteU32(static_cast<uint32_t>(decay_horizon_));
  rng_.SaveState(w);
  trainer_->SaveState(w);
  buffer_->Save(w);
  ckpt.Commit();
}

void Learner::LoadState(const std::string& path) {
  CheckpointReader ckpt(path);
  BinaryReader* r = ckpt.payload();
  ReadSchemaHeader(r, kLearnerStateMagic, kLearnerStateVersion, kLearnerStateVersion,
                   "learner training-state (" + path + ")");
  const int episodes_done = static_cast<int>(r->ReadU32());
  const int decay_horizon = static_cast<int>(r->ReadU32());
  rng_.LoadState(r);
  trainer_->LoadState(r);
  buffer_->Load(r);
  episodes_done_ = episodes_done;
  decay_horizon_ = decay_horizon;
}

}  // namespace astraea
