// The Learner (paper Fig. 3 / Algorithm 1 / Appendix A): owns the shared
// actor-critic, the replay buffer, and the episode loop over randomized
// environments. Every model_update_interval of environment time it performs
// model_update_steps TD3 gradient updates; the updated policy is implicitly
// "pushed" to all agents because they act through the trainer's actor.

#ifndef SRC_CORE_LEARNER_H_
#define SRC_CORE_LEARNER_H_

#include <functional>
#include <memory>
#include <string>

#include "src/core/multi_flow_env.h"
#include "src/core/training_config.h"
#include "src/rl/replay_buffer.h"
#include "src/rl/td3.h"
#include "src/util/rng.h"

namespace astraea {

struct LearnerConfig {
  AstraeaHyperparameters hp;
  TrainingEnvRanges ranges;
  size_t replay_capacity = 200'000;
  double exploration_noise = 0.15;     // decayed over training
  double exploration_noise_final = 0.03;
  TimeNs episode_length = Seconds(30.0);
  // Appendix A: training runs multiple environment instances that share the
  // actor/critic and the replay buffer (the paper uses 4). Instances are
  // stepped in lockstep per model-update interval; transitions from all of
  // them land in the common buffer.
  int env_instances = 1;
  uint64_t seed = 7;
  // Episode count over which exploration noise decays from exploration_noise
  // to exploration_noise_final. 0 (default) means "the budget of the first
  // Train() call", matching the pre-resume behavior. Runs that will be
  // checkpointed and resumed should set this to the total planned episode
  // count so the decay schedule is a function of the global episode index,
  // not of any single Train() call's budget.
  int exploration_decay_episodes = 0;
};

struct EpisodeDiagnostics {
  int episode = 0;
  EpisodeStats env;
  Td3Diagnostics td3;
  double eval_jain = -1.0;  // filled when an eval ran this episode
  size_t replay_size = 0;   // replay-buffer occupancy after the episode
  double exploration_noise = 0.0;  // noise std used this episode
};

class Learner {
 public:
  explicit Learner(LearnerConfig config);

  // Runs `episodes` training episodes; invokes `on_episode` after each.
  void Train(int episodes, const std::function<void(const EpisodeDiagnostics&)>& on_episode);

  // Deterministic evaluation: 3 staggered flows on a mid-range link; returns
  // the average Jain index over the competition window.
  double EvaluateFairness();

  Td3Trainer& trainer() { return *trainer_; }
  ReplayBuffer& buffer() { return *buffer_; }
  const LearnerConfig& config() const { return config_; }

  // Deployment artifact: actor weights only, loadable by
  // MlpPolicy::LoadFromFile. Not enough to resume training.
  void SaveCheckpoint(const std::string& path) const { trainer_->SaveActor(path); }
  void LoadCheckpoint(const std::string& path) { trainer_->LoadActor(path); }

  // Crash-safe full training state: trainer (networks + optimizers), replay
  // buffer, RNG stream, episode counter and exploration-decay position, in
  // an atomic CRC-protected checkpoint file (src/util/checkpoint.h).
  // Training resumed from such a checkpoint is bit-identical to a run that
  // was never interrupted.
  void SaveState(const std::string& path) const;
  void LoadState(const std::string& path);

  int episodes_done() const { return episodes_done_; }

 private:
  LearnerConfig config_;
  Rng rng_;
  std::unique_ptr<Td3Trainer> trainer_;
  std::unique_ptr<ReplayBuffer> buffer_;
  int episodes_done_ = 0;
  // Exploration-decay horizon in episodes; fixed at the first Train() call
  // (or from config) and carried across checkpoints so resumed runs continue
  // the same noise schedule.
  int decay_horizon_ = 0;
};

}  // namespace astraea

#endif  // SRC_CORE_LEARNER_H_
