#include "src/core/multi_flow_env.h"

#include <algorithm>

#include "src/util/logging.h"

namespace astraea {

EnvEpisodeConfig SampleEpisode(const TrainingEnvRanges& ranges, Rng* rng) {
  EnvEpisodeConfig config;
  config.bandwidth = rng->Uniform(ranges.bandwidth_lo, ranges.bandwidth_hi);
  config.base_rtt = static_cast<TimeNs>(
      rng->Uniform(static_cast<double>(ranges.rtt_lo), static_cast<double>(ranges.rtt_hi)));
  config.buffer_bdp = rng->Uniform(ranges.buffer_bdp_lo, ranges.buffer_bdp_hi);
  config.seed = static_cast<uint64_t>(rng->UniformInt(1, 1'000'000'000));

  const int n = static_cast<int>(rng->UniformInt(ranges.flows_lo, ranges.flows_hi));
  // Poisson arrivals with a mean spacing of 2s, so episodes contain both
  // solo operation and multi-flow competition (§3.2).
  TimeNs t = 0;
  for (int i = 0; i < n; ++i) {
    FlowSchedule f;
    f.start = t;
    f.duration = -1;  // run to episode end
    // RTT heterogeneity: up to +50% extra one-way delay.
    f.extra_one_way_delay =
        static_cast<TimeNs>(rng->Uniform(0.0, 0.5 * static_cast<double>(config.base_rtt)));
    config.flows.push_back(f);
    t += Seconds(rng->Exponential(2.0));
  }
  return config;
}

MultiFlowEnv::MultiFlowEnv(EnvEpisodeConfig config, const AstraeaHyperparameters& hp,
                           Td3Trainer* trainer, TransitionSink* buffer, double noise_std,
                           Rng* rng)
    : config_(std::move(config)),
      hp_(hp),
      buffer_(buffer),
      noise_std_(noise_std),
      own_rng_(rng->Fork()),
      rng_(&own_rng_) {
  Build(std::make_shared<TrainerActorPolicy>(trainer));
}

MultiFlowEnv::MultiFlowEnv(EnvEpisodeConfig config, const AstraeaHyperparameters& hp,
                           std::shared_ptr<const Policy> policy, TransitionSink* buffer,
                           double noise_std, Rng* rng)
    : config_(std::move(config)),
      hp_(hp),
      buffer_(buffer),
      noise_std_(noise_std),
      own_rng_(0),  // unused; noise comes from the caller's persistent stream
      rng_(rng) {
  Build(std::move(policy));
}

void MultiFlowEnv::Build(std::shared_ptr<const Policy> policy) {
  ASTRAEA_CHECK(!config_.flows.empty());
  next_update_ = hp_.model_update_interval;
  network_ = std::make_unique<Network>(config_.seed);

  LinkConfig link;
  link.name = "train-bottleneck";
  link.rate = config_.bandwidth;
  link.propagation_delay = config_.base_rtt / 2;
  link.buffer_bytes = std::max<uint64_t>(
      static_cast<uint64_t>(config_.buffer_bdp *
                            static_cast<double>(BdpBytes(config_.bandwidth, config_.base_rtt))),
      3000);
  link.random_loss = config_.random_loss;
  link.trace = config_.trace;
  link.queue_factory = config_.queue_factory;
  network_->AddLink(link);

  link_info_.base_one_way_delay = config_.base_rtt / 2;
  link_info_.buffer_bytes = link.buffer_bytes;
  link_info_.bandwidth = config_.bandwidth;

  controllers_.resize(config_.flows.size(), nullptr);
  pending_.resize(config_.flows.size());

  for (size_t i = 0; i < config_.flows.size(); ++i) {
    const FlowSchedule& sched = config_.flows[i];
    const int flow_id = static_cast<int>(i);
    FlowSpec spec;
    spec.scheme = "astraea-train";
    spec.start = sched.start;
    spec.duration = sched.duration;
    spec.extra_one_way_delay = sched.extra_one_way_delay;
    spec.link_path = {0};
    spec.make_cc = [this, policy, flow_id] {
      auto cc = std::make_unique<AstraeaController>(policy, hp_);
      cc->set_action_hook([this, flow_id](const StateView& view, double proposed) {
        return OnDecision(flow_id, view, proposed);
      });
      controllers_[flow_id] = cc.get();
      return cc;
    };
    const int assigned = network_->AddFlow(spec);
    ASTRAEA_CHECK(assigned == flow_id);
  }
}

std::vector<float> MultiFlowEnv::ObserveGlobalState() const {
  std::vector<const MtpReport*> reports;
  for (int id : network_->ActiveFlowIds()) {
    const Sender& sender = network_->sender(id);
    if (sender.last_report().now > 0) {
      reports.push_back(&sender.last_report());
    }
  }
  return BuildGlobalState(reports, link_info_, 1500);
}

RewardBreakdown MultiFlowEnv::ComputeGlobalReward() const {
  std::vector<FlowRewardInput> inputs;
  for (int id : network_->ActiveFlowIds()) {
    AstraeaController* cc = controllers_[static_cast<size_t>(id)];
    const Sender& sender = network_->sender(id);
    if (cc == nullptr || sender.last_report().now <= 0) {
      continue;
    }
    const MtpReport& report = sender.last_report();
    FlowRewardInput in;
    in.thr_bps = report.thr_bps;
    in.avg_thr_bps = cc->state_block().AvgThroughputBps();
    in.stability = cc->state_block().ThroughputStability();
    in.loss_bps = report.loss_bps;
    in.avg_lat = report.avg_rtt;
    in.pacing_bps = report.pacing_bps;
    inputs.push_back(in);
  }
  return ComputeReward(inputs, config_.bandwidth, link_info_.base_one_way_delay, hp_.reward);
}

double MultiFlowEnv::OnDecision(int flow_id, const StateView& view, double proposed) {
  const double action =
      std::clamp(proposed + rng_->Normal(0.0, noise_std_), -1.0, 1.0);

  const std::vector<float> global_state = ObserveGlobalState();
  const std::vector<float> local_state(view.state_vector.begin(), view.state_vector.end());
  const RewardBreakdown reward = ComputeGlobalReward();

  PendingDecision& pending = pending_[static_cast<size_t>(flow_id)];
  if (pending.valid) {
    // Complete the previous transition: its reward is the global score of the
    // interval that just elapsed, and (g', s') is what we observe now.
    Transition t;
    t.global_state = pending.global_state;
    t.local_state = pending.local_state;
    t.action = {pending.action};
    t.reward = static_cast<float>(reward.total);
    t.next_global_state = global_state;
    t.next_local_state = local_state;
    t.terminal = false;
    buffer_->Add(std::move(t));

    stats_.mean_reward += reward.total;
    stats_.mean_r_fair += reward.r_fair;
    stats_.mean_r_thr += reward.r_thr;
    stats_.mean_r_lat += reward.r_lat;
    stats_.mean_r_loss += reward.r_loss;
    stats_.mean_r_stab += reward.r_stab;
    ++stats_.decisions;
  }
  pending.valid = true;
  pending.global_state = global_state;
  pending.local_state = local_state;
  pending.action = static_cast<float>(action);
  return action;
}

bool MultiFlowEnv::AdvanceOneInterval() {
  if (done()) {
    return false;
  }
  network_->Run(next_update_);
  next_update_ += hp_.model_update_interval;
  return true;
}

EpisodeStats MultiFlowEnv::Finish() {
  ASTRAEA_CHECK(!finished_);
  finished_ = true;
  network_->Run(config_.episode_length);
  if (stats_.decisions > 0) {
    stats_.mean_reward /= stats_.decisions;
    stats_.mean_r_fair /= stats_.decisions;
    stats_.mean_r_thr /= stats_.decisions;
    stats_.mean_r_lat /= stats_.decisions;
    stats_.mean_r_loss /= stats_.decisions;
    stats_.mean_r_stab /= stats_.decisions;
  }
  return stats_;
}

EpisodeStats MultiFlowEnv::Run(const std::function<void()>& on_update) {
  while (AdvanceOneInterval()) {
    if (on_update) {
      on_update();
    }
  }
  return Finish();
}

}  // namespace astraea
