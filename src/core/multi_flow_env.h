// The multi-flow training environment (paper §3.2): Flow Generator + Runtime
// + Controller (Observer/Enforcer) wired to the RL agents.
//
// Each Astraea flow is an AstraeaController whose ActionHook routes decisions
// through this environment: the proposed action gets exploration noise, the
// Observer assembles the Table-2 global state from every active flow's latest
// MTP report, the reward block scores the elapsed interval for the whole
// link, and the (g, s, a, r, g', s') transition is pushed into the shared
// replay buffer. Policy parameters stay in the Td3Trainer — all agents share
// them (centralized training, decentralized execution).

#ifndef SRC_CORE_MULTI_FLOW_ENV_H_
#define SRC_CORE_MULTI_FLOW_ENV_H_

#include <memory>
#include <vector>

#include "src/core/astraea_controller.h"
#include "src/core/reward.h"
#include "src/core/training_config.h"
#include "src/rl/replay_buffer.h"
#include "src/rl/td3.h"
#include "src/sim/network.h"
#include "src/util/rng.h"

namespace astraea {

struct FlowSchedule {
  TimeNs start = 0;
  TimeNs duration = -1;
  TimeNs extra_one_way_delay = 0;
};

struct EnvEpisodeConfig {
  RateBps bandwidth = Mbps(100);
  TimeNs base_rtt = Milliseconds(30);
  double buffer_bdp = 1.0;
  std::vector<FlowSchedule> flows;
  TimeNs episode_length = Seconds(30.0);
  uint64_t seed = 1;
};

// Samples one training episode from the Table-3 ranges: uniform bandwidth /
// RTT / buffer, 2-5 flows with heterogeneous extra delays and Poisson-spread
// start times (§3.2's arrival randomization).
EnvEpisodeConfig SampleEpisode(const TrainingEnvRanges& ranges, Rng* rng);

// Per-episode means of the total reward and each Eq. 4-8 component, averaged
// over completed transitions.
struct EpisodeStats {
  double mean_reward = 0.0;
  double mean_r_fair = 0.0;
  double mean_r_thr = 0.0;
  double mean_r_lat = 0.0;
  double mean_r_loss = 0.0;
  double mean_r_stab = 0.0;
  int decisions = 0;
};

class MultiFlowEnv {
 public:
  // `trainer` provides the shared actor; `buffer` receives transitions.
  // `noise_std` is the exploration noise added to each proposed action.
  MultiFlowEnv(EnvEpisodeConfig config, const AstraeaHyperparameters& hp, Td3Trainer* trainer,
               ReplayBuffer* buffer, double noise_std, Rng* rng);

  // Runs the episode; `on_update` fires every hp.model_update_interval of
  // environment time (the Learner performs its 20 gradient steps there).
  EpisodeStats Run(const std::function<void()>& on_update);

  Network& network() { return *network_; }

 private:
  struct PendingDecision {
    bool valid = false;
    std::vector<float> global_state;
    std::vector<float> local_state;
    float action = 0.0f;
  };

  double OnDecision(int flow_id, const StateView& view, double proposed);
  std::vector<float> ObserveGlobalState() const;
  RewardBreakdown ComputeGlobalReward() const;

  EnvEpisodeConfig config_;
  AstraeaHyperparameters hp_;
  Td3Trainer* trainer_;
  ReplayBuffer* buffer_;
  double noise_std_;
  Rng rng_;

  std::unique_ptr<Network> network_;
  std::vector<AstraeaController*> controllers_;  // index = flow id
  std::vector<PendingDecision> pending_;
  LinkInfo link_info_;
  EpisodeStats stats_;
};

// Policy adapter exposing the trainer's current actor to AstraeaController.
class TrainerActorPolicy : public Policy {
 public:
  explicit TrainerActorPolicy(const Td3Trainer* trainer) : trainer_(trainer) {}
  double Act(const StateView& view) const override {
    return trainer_->Act(view.state_vector)[0];
  }
  std::string name() const override { return "astraea-train"; }

 private:
  const Td3Trainer* trainer_;
};

}  // namespace astraea

#endif  // SRC_CORE_MULTI_FLOW_ENV_H_
