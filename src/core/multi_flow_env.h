// The multi-flow training environment (paper §3.2): Flow Generator + Runtime
// + Controller (Observer/Enforcer) wired to the RL agents.
//
// Each Astraea flow is an AstraeaController whose ActionHook routes decisions
// through this environment: the proposed action gets exploration noise, the
// Observer assembles the Table-2 global state from every active flow's latest
// MTP report, the reward block scores the elapsed interval for the whole
// link, and the (g, s, a, r, g', s') transition is pushed into the shared
// replay buffer. Policy parameters stay in the Td3Trainer — all agents share
// them (centralized training, decentralized execution).
//
// Two driving modes:
//  * Run(on_update) — the serial Learner's loop: advance one model-update
//    interval, perform gradient steps, repeat.
//  * AdvanceOneInterval()/Finish() — the vectorized trainer's segment API:
//    N environments advance one interval each on the thread pool, a barrier
//    drains their staged transitions in deterministic order, the learner
//    updates, and the next round begins with fresh actor snapshots.

#ifndef SRC_CORE_MULTI_FLOW_ENV_H_
#define SRC_CORE_MULTI_FLOW_ENV_H_

#include <memory>
#include <vector>

#include "src/core/astraea_controller.h"
#include "src/core/reward.h"
#include "src/core/training_config.h"
#include "src/rl/replay_buffer.h"
#include "src/rl/td3.h"
#include "src/sim/network.h"
#include "src/sim/queue_disc.h"
#include "src/sim/rate_provider.h"
#include "src/util/rng.h"

namespace astraea {

struct FlowSchedule {
  TimeNs start = 0;
  TimeNs duration = -1;
  TimeNs extra_one_way_delay = 0;
};

struct EnvEpisodeConfig {
  RateBps bandwidth = Mbps(100);
  TimeNs base_rtt = Milliseconds(30);
  double buffer_bdp = 1.0;
  // Domain-randomization extensions (src/train/domain_sampler.*). Defaults
  // reproduce the original Table-3-only environment byte for byte.
  double random_loss = 0.0;             // iid wire loss on the bottleneck
  QueueFactory queue_factory;           // AQM override (default DropTail)
  std::shared_ptr<RateProvider> trace;  // time-varying rate; overrides bandwidth
  std::vector<FlowSchedule> flows;
  TimeNs episode_length = Seconds(30.0);
  uint64_t seed = 1;
};

// Samples one training episode from the Table-3 ranges: uniform bandwidth /
// RTT / buffer, 2-5 flows with heterogeneous extra delays and Poisson-spread
// start times (§3.2's arrival randomization).
EnvEpisodeConfig SampleEpisode(const TrainingEnvRanges& ranges, Rng* rng);

// Per-episode means of the total reward and each Eq. 4-8 component, averaged
// over completed transitions.
struct EpisodeStats {
  double mean_reward = 0.0;
  double mean_r_fair = 0.0;
  double mean_r_thr = 0.0;
  double mean_r_lat = 0.0;
  double mean_r_loss = 0.0;
  double mean_r_stab = 0.0;
  int decisions = 0;
};

class MultiFlowEnv {
 public:
  // Serial-learner mode: `trainer` provides the shared actor; `buffer`
  // receives transitions; a private noise stream is forked from `rng`.
  // `noise_std` is the exploration noise added to each proposed action.
  MultiFlowEnv(EnvEpisodeConfig config, const AstraeaHyperparameters& hp, Td3Trainer* trainer,
               TransitionSink* buffer, double noise_std, Rng* rng);

  // Vectorized-actor mode: decisions come from `policy` (typically an
  // adapter over a per-actor snapshot of the shared network) and exploration
  // noise is drawn directly from `rng` — NOT forked — so the caller's
  // per-actor stream persists across episodes and can be checkpointed.
  // `rng` must outlive the environment.
  MultiFlowEnv(EnvEpisodeConfig config, const AstraeaHyperparameters& hp,
               std::shared_ptr<const Policy> policy, TransitionSink* buffer, double noise_std,
               Rng* rng);

  // Runs the episode; `on_update` fires every hp.model_update_interval of
  // environment time (the Learner performs its 20 gradient steps there).
  EpisodeStats Run(const std::function<void()>& on_update);

  // Segment API: advances the simulation by one model-update interval and
  // returns true, or returns false once the episode horizon is reached.
  bool AdvanceOneInterval();
  bool done() const { return next_update_ > config_.episode_length; }
  // Runs any residual tail past the last whole interval and returns the
  // episode means. Call exactly once, after AdvanceOneInterval() returns
  // false. Run() == while (AdvanceOneInterval()) on_update(); Finish();
  EpisodeStats Finish();

  Network& network() { return *network_; }
  const EnvEpisodeConfig& config() const { return config_; }

 private:
  struct PendingDecision {
    bool valid = false;
    std::vector<float> global_state;
    std::vector<float> local_state;
    float action = 0.0f;
  };

  void Build(std::shared_ptr<const Policy> policy);
  double OnDecision(int flow_id, const StateView& view, double proposed);
  std::vector<float> ObserveGlobalState() const;
  RewardBreakdown ComputeGlobalReward() const;

  EnvEpisodeConfig config_;
  AstraeaHyperparameters hp_;
  TransitionSink* buffer_;
  double noise_std_;
  Rng own_rng_;   // forked stream backing `rng_` in serial-learner mode
  Rng* rng_;      // the stream exploration noise is drawn from

  std::unique_ptr<Network> network_;
  std::vector<AstraeaController*> controllers_;  // index = flow id
  std::vector<PendingDecision> pending_;
  LinkInfo link_info_;
  EpisodeStats stats_;
  TimeNs next_update_ = 0;
  bool finished_ = false;
};

// Policy adapter exposing the trainer's current actor to AstraeaController.
class TrainerActorPolicy : public Policy {
 public:
  explicit TrainerActorPolicy(const Td3Trainer* trainer) : trainer_(trainer) {}
  double Act(const StateView& view) const override {
    return trainer_->Act(view.state_vector)[0];
  }
  std::string name() const override { return "astraea-train"; }

 private:
  const Td3Trainer* trainer_;
};

// Policy adapter over a caller-owned actor snapshot (vectorized training:
// each actor slot copies the shared parameters at the start of a round, so
// parallel environments never touch the live training networks and every
// decision within a round uses the same weights regardless of worker count).
class SnapshotActorPolicy : public Policy {
 public:
  explicit SnapshotActorPolicy(const Mlp* actor) : actor_(actor) {}
  double Act(const StateView& view) const override {
    return actor_->Infer(view.state_vector)[0];
  }
  std::string name() const override { return "astraea-train-snapshot"; }

 private:
  const Mlp* actor_;
};

}  // namespace astraea

#endif  // SRC_CORE_MULTI_FLOW_ENV_H_
