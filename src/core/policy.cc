#include "src/core/policy.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>

#include "src/util/logging.h"

namespace astraea {

std::shared_ptr<MlpPolicy> MlpPolicy::LoadFromFile(const std::string& path) {
  BinaryReader reader(path);
  return std::make_shared<MlpPolicy>(Mlp::Load(&reader));
}

double MlpPolicy::Act(const StateView& view) const {
  const std::vector<float> out = actor_.Infer(view.state_vector);
  return std::clamp(static_cast<double>(out[0]), -1.0, 1.0);
}

double DistilledPolicy::Act(const StateView& view) const {
  const MtpReport& report = *view.report;
  if (report.acked_packets == 0) {
    // Nothing delivered this MTP (post-drain or just started): probe upward.
    return 1.0;
  }

  const double cwnd_pkts =
      std::max(static_cast<double>(report.cwnd_bytes) / view.mss, 1.0);
  const double lat_s = ToSeconds(std::max<TimeNs>(report.avg_rtt, 1));
  const double lat_min_s = ToSeconds(std::max<TimeNs>(view.lat_min, 1));
  const double rtt_for_loop = std::max(lat_s, lat_min_s);

  // Own standing backlog at the bottleneck (Vegas identity):
  //   backlog = cwnd * (1 - lat_min / lat).
  const double backlog_pkts =
      lat_s > lat_min_s ? cwnd_pkts * (1.0 - lat_min_s / lat_s) : 0.0;

  // Close `gain` of the backlog error per RTT; convert to a per-MTP
  // multiplicative step and normalize by Eq. 3's alpha to get the action.
  const double target_pkts =
      config_.target_backlog_pkts * std::max(view.backlog_target_scale, 1.0);
  const double err_pkts = target_pkts - backlog_pkts;
  const double mtp_s = ToSeconds(view.mtp);
  const double per_mtp_fraction =
      config_.gain * err_pkts * (mtp_s / rtt_for_loop) / cwnd_pkts;
  double action = per_mtp_fraction / view.action_alpha;

  // Far below the target the loop is not in its small-signal regime: probe
  // multiplicatively at full rate (the learned policies show the same
  // saturated action away from equilibrium — Fig. 17's plateaus). Without
  // this, the gain normalization makes ramp-up glacial on large-RTT paths.
  if (backlog_pkts < target_pkts / 2.0) {
    action = 1.0;
  }

  // Congestive-loss guard: sustained loss above the threshold (well above any
  // non-congestive wire-loss rate) forces a decrease even if the latency
  // signal is muted (e.g. tiny buffers that drop before queueing).
  if (report.loss_ratio > config_.loss_backoff_threshold) {
    action = std::min(action, -std::clamp(5.0 * report.loss_ratio, 0.1, 1.0));
  }
  return std::clamp(action, -1.0, 1.0);
}

std::shared_ptr<const Policy> LoadDefaultPolicy(const std::string& path) {
  std::string candidate = path;
  if (candidate.empty()) {
    if (const char* env = std::getenv("ASTRAEA_MODEL"); env != nullptr) {
      candidate = env;
    } else if (std::filesystem::exists("models/astraea_policy.ckpt")) {
      candidate = "models/astraea_policy.ckpt";
    }
  }
  if (!candidate.empty()) {
    try {
      auto policy = MlpPolicy::LoadFromFile(candidate);
      ASTRAEA_LOG(Info) << "loaded Astraea policy checkpoint: " << candidate;
      return policy;
    } catch (const SerializationError& e) {
      ASTRAEA_LOG(Warning) << "failed to load policy '" << candidate << "' (" << e.what()
                           << "); falling back to the distilled policy";
    }
  }
  return std::make_shared<DistilledPolicy>();
}

uint64_t ApplyActionToCwnd(uint64_t cwnd_bytes, double action, double alpha, uint32_t mss) {
  action = std::clamp(action, -1.0, 1.0);
  double next = static_cast<double>(cwnd_bytes);
  if (action >= 0.0) {
    next *= 1.0 + alpha * action;
  } else {
    next /= 1.0 - alpha * action;
  }
  return std::max<uint64_t>(static_cast<uint64_t>(std::llround(next)), 2ULL * mss);
}

}  // namespace astraea
