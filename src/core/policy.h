// Astraea control policies.
//
// `MlpPolicy` executes a trained actor checkpoint (tools/astraea_train).
// `DistilledPolicy` is the closed-form controller distilled from the
// structure the paper reverse-engineers out of the trained model in §5.5 /
// Fig. 17: the action decreases monotonically with observed queueing delay,
// each flow has a rate-dependent equilibrium point, and the differential
// adjustment transfers bandwidth from high-rate to low-rate flows until they
// equalize. Concretely it regulates each flow's own bottleneck backlog toward
// a fixed K packets — since all flows sharing a bottleneck see the same
// queueing delay, backlog_i = rate_i * q_delay, so equal backlogs force equal
// rates (the §5.5 fair consensus) while a positive shared q* keeps the link
// fully utilized. Gain is normalized by cwnd and RTT so the loop is stable
// from kbps to 10 Gbps paths. See DESIGN.md's substitution table for why this
// stands in for the trained network in deterministic benches.

#ifndef SRC_CORE_POLICY_H_
#define SRC_CORE_POLICY_H_

#include <memory>
#include <span>
#include <string>

#include "src/core/state_block.h"
#include "src/core/training_config.h"
#include "src/nn/mlp.h"
#include "src/sim/congestion_controller.h"

namespace astraea {

// Everything a policy may look at when deciding an action. MlpPolicy uses
// only `state_vector` (the deployable path: local state, no global info);
// DistilledPolicy additionally reads the raw report it was derived from.
struct StateView {
  std::span<const float> state_vector;
  const MtpReport* report = nullptr;
  TimeNs lat_min = 0;
  double thr_max_bps = 0.0;
  uint32_t mss = 1500;
  TimeNs mtp = Milliseconds(30);
  double action_alpha = 0.025;
  // Competitive-mode multiplier on the policy's standing-queue appetite, set
  // by the controller from drain-probe outcomes (1.0 = no competition). This
  // is the distilled form of the learned behaviour §5.3.1 describes: "more
  // tolerance to latency inflation when occupying low bandwidth", which is
  // what keeps Astraea from starving next to buffer-filling schemes.
  double backlog_target_scale = 1.0;
};

class Policy {
 public:
  virtual ~Policy() = default;
  // Returns the action a in [-1, 1] (Eq. 3 input).
  virtual double Act(const StateView& view) const = 0;
  virtual std::string name() const = 0;
};

class MlpPolicy : public Policy {
 public:
  explicit MlpPolicy(Mlp actor) : actor_(std::move(actor)) {}
  static std::shared_ptr<MlpPolicy> LoadFromFile(const std::string& path);

  double Act(const StateView& view) const override;
  std::string name() const override { return "astraea-mlp"; }
  const Mlp& actor() const { return actor_; }

 private:
  Mlp actor_;
};

struct DistilledPolicyConfig {
  double target_backlog_pkts = 7.0;  // K: per-flow standing queue target
  double gain = 0.4;                 // fraction of the backlog error closed per RTT
  double loss_backoff_threshold = 0.02;  // congestive-loss reaction threshold
};

class DistilledPolicy : public Policy {
 public:
  explicit DistilledPolicy(DistilledPolicyConfig config = {}) : config_(config) {}

  double Act(const StateView& view) const override;
  std::string name() const override { return "astraea-distilled"; }
  const DistilledPolicyConfig& config() const { return config_; }

 private:
  DistilledPolicyConfig config_;
};

// Resolution order: explicit `path` argument -> ASTRAEA_MODEL env var ->
// models/astraea_policy.ckpt relative to the working directory -> the
// distilled policy. Never fails.
std::shared_ptr<const Policy> LoadDefaultPolicy(const std::string& path = "");

// Eq. 3: multiplicative cwnd update under action a in [-1, 1].
uint64_t ApplyActionToCwnd(uint64_t cwnd_bytes, double action, double alpha, uint32_t mss);

}  // namespace astraea

#endif  // SRC_CORE_POLICY_H_
