#include "src/core/reward.h"

#include <algorithm>
#include <cmath>

#include "src/core/state_block.h"

namespace astraea {

double RewardThroughput(std::span<const FlowRewardInput> flows, RateBps bandwidth) {
  if (bandwidth <= 0.0) {
    return 0.0;
  }
  double sum = 0.0;
  for (const auto& f : flows) {
    sum += f.thr_bps;
  }
  return sum / bandwidth;
}

double RewardLoss(std::span<const FlowRewardInput> flows) {
  if (flows.empty()) {
    return 0.0;
  }
  double acc = 0.0;
  for (const auto& f : flows) {
    if (f.thr_bps > 0.0) {
      acc += f.loss_bps / f.thr_bps;
    } else if (f.loss_bps > 0.0) {
      acc += 1.0;  // everything sent was lost
    }
  }
  return acc / static_cast<double>(flows.size());
}

double RewardLatency(std::span<const FlowRewardInput> flows, TimeNs d0, double beta) {
  if (flows.empty()) {
    return 0.0;
  }
  double lat_sum = 0.0;
  double pacing_sum = 0.0;
  for (const auto& f : flows) {
    lat_sum += ToSeconds(f.avg_lat);
    pacing_sum += f.pacing_bps;
  }
  const double avg_lat = lat_sum / static_cast<double>(flows.size());
  const double base_rtt = 2.0 * ToSeconds(d0);
  const double threshold = (1.0 + beta) * base_rtt;
  if (avg_lat <= threshold || base_rtt <= 0.0) {
    return 0.0;  // small queues are free (Eq. 5's grace band)
  }
  // "Total increased latency of all sending packets": excess delay times the
  // aggregate pacing rate. Normalized by base RTT and by the rate scale so the
  // term's magnitude is comparable across network conditions (§3.3: "these
  // metrics are all normalized").
  const double excess = (avg_lat - threshold) / base_rtt;
  const double pacing_norm = pacing_sum / kThrScaleBps;
  return excess * pacing_norm;
}

double RewardFairness(std::span<const FlowRewardInput> flows) {
  if (flows.size() < 2) {
    return 0.0;
  }
  const double n = static_cast<double>(flows.size());
  double sum = 0.0;
  for (const auto& f : flows) {
    sum += f.avg_thr_bps;
  }
  if (sum <= 0.0) {
    return 0.0;
  }
  const double mean = sum / n;
  double sq = 0.0;
  for (const auto& f : flows) {
    sq += (f.avg_thr_bps - mean) * (f.avg_thr_bps - mean);
  }
  return std::sqrt(sq / (n * sum * sum));
}

double RewardStability(std::span<const FlowRewardInput> flows) {
  if (flows.empty()) {
    return 0.0;
  }
  double acc = 0.0;
  for (const auto& f : flows) {
    acc += f.stability;
  }
  return acc / static_cast<double>(flows.size());
}

RewardBreakdown ComputeReward(std::span<const FlowRewardInput> flows, RateBps bandwidth,
                              TimeNs d0, const RewardCoefficients& coeff) {
  RewardBreakdown out;
  out.r_thr = RewardThroughput(flows, bandwidth);
  out.r_lat = RewardLatency(flows, d0, coeff.beta);
  out.r_loss = RewardLoss(flows);
  out.r_fair = RewardFairness(flows);
  out.r_stab = RewardStability(flows);
  const double raw = coeff.c0 * out.r_thr - coeff.c1 * out.r_lat - coeff.c2 * out.r_loss -
                     coeff.c3 * out.r_fair - coeff.c4 * out.r_stab;
  out.total = std::clamp(raw, -0.1, 0.1);
  return out;
}

}  // namespace astraea
