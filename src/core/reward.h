// The reward block (paper §3.3, Eqs. 4-8): the global training signal that
// encodes throughput, latency (with a grace band), loss, fairness and
// stability. Pure functions over per-flow MTP statistics so every term is
// independently testable (and so Fig. 4's Jain-saturation analysis can reuse
// the exact production R_fair).

#ifndef SRC_CORE_REWARD_H_
#define SRC_CORE_REWARD_H_

#include <span>
#include <vector>

#include "src/core/training_config.h"
#include "src/util/time.h"

namespace astraea {

// Per-flow inputs for one reward evaluation.
struct FlowRewardInput {
  double thr_bps = 0.0;                 // current-MTP throughput
  double avg_thr_bps = 0.0;             // avg over the last w MTPs (Eq. 7)
  double stability = 0.0;               // normalized thr stddev over w (Eq. 6 inner term)
  double loss_bps = 0.0;
  TimeNs avg_lat = 0;                   // mean ACK RTT in the MTP
  double pacing_bps = 0.0;
};

struct RewardBreakdown {
  double r_thr = 0.0;
  double r_lat = 0.0;
  double r_loss = 0.0;
  double r_fair = 0.0;
  double r_stab = 0.0;
  double total = 0.0;  // c0*r_thr - c1*r_lat - c2*r_loss - c3*r_fair - c4*r_stab, clamped
};

// Eq. 4, throughput term: sum(thr_i) / c.
double RewardThroughput(std::span<const FlowRewardInput> flows, RateBps bandwidth);

// Eq. 4, loss term: mean_i(loss_i / thr_i).
double RewardLoss(std::span<const FlowRewardInput> flows);

// Eq. 5, latency term with the (1+beta)*d0 grace band and pacing multiplier.
// d0 is the base one-way delay; latencies are RTTs, compared against 2*d0
// inflated by beta. Normalized so its magnitude is comparable to the other
// terms across network scales.
double RewardLatency(std::span<const FlowRewardInput> flows, TimeNs d0, double beta);

// Eq. 6, fairness term: normalized stddev of the flows' w-averaged
// throughputs. Zero iff all average throughputs are equal.
double RewardFairness(std::span<const FlowRewardInput> flows);

// Eq. 6, stability term: mean over flows of the per-flow normalized stddev.
double RewardStability(std::span<const FlowRewardInput> flows);

// Eq. 8 with the Table-4 coefficients, bounded to (-0.1, 0.1).
RewardBreakdown ComputeReward(std::span<const FlowRewardInput> flows, RateBps bandwidth,
                              TimeNs d0, const RewardCoefficients& coeff);

}  // namespace astraea

#endif  // SRC_CORE_REWARD_H_
