#include "src/core/schemes.h"

#include "src/cc/aurora.h"
#include "src/cc/bbr.h"
#include "src/cc/copa.h"
#include "src/cc/cubic.h"
#include "src/cc/dctcp.h"
#include "src/cc/newreno.h"
#include "src/cc/orca.h"
#include "src/cc/remy.h"
#include "src/cc/udp_blast.h"
#include "src/cc/vegas.h"
#include "src/core/astraea_controller.h"
#include "src/util/logging.h"

namespace astraea {

CcFactory MakeSchemeFactory(const std::string& name, SchemeOptions* options) {
  ASTRAEA_CHECK(options != nullptr);
  if (name == "newreno") {
    return [] { return std::make_unique<NewReno>(); };
  }
  if (name == "cubic") {
    return [] { return std::make_unique<Cubic>(); };
  }
  if (name == "vegas") {
    return [] { return std::make_unique<Vegas>(); };
  }
  if (name == "bbr") {
    return [] { return std::make_unique<Bbr>(); };
  }
  if (name == "copa") {
    return [] { return std::make_unique<Copa>(); };
  }
  if (name == "vivace") {
    const VivaceConfig config = options->vivace;
    return [config] { return std::make_unique<Vivace>(config); };
  }
  if (name == "aurora") {
    return [] { return std::make_unique<Aurora>(); };
  }
  if (name == "orca") {
    return [] { return std::make_unique<Orca>(); };
  }
  if (name == "remy") {
    return [] { return std::make_unique<Remy>(); };
  }
  if (name == "dctcp") {
    return [] { return std::make_unique<Dctcp>(); };
  }
  if (name == "blast") {
    const double rate = options->blast_rate_bps;
    return [rate] { return std::make_unique<UdpBlast>(rate); };
  }
  if (name == "astraea") {
    if (options->astraea_policy == nullptr) {
      options->astraea_policy = LoadDefaultPolicy();
    }
    auto policy = options->astraea_policy;
    const AstraeaHyperparameters hp = options->astraea_hp;
    return [policy, hp] { return std::make_unique<AstraeaController>(policy, hp); };
  }
  ASTRAEA_LOG(Error) << "unknown scheme: " << name;
  std::abort();
}

std::vector<std::string> AllSchemeNames() {
  return {"newreno", "cubic", "vegas",  "bbr",  "copa",
          "vivace",  "aurora", "orca",  "remy", "astraea"};
}

}  // namespace astraea
