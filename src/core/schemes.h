// Name -> CongestionController factory registry used by the benchmark
// harness, the examples and the run_scenario CLI.

#ifndef SRC_CORE_SCHEMES_H_
#define SRC_CORE_SCHEMES_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cc/vivace.h"
#include "src/core/policy.h"
#include "src/sim/network.h"

namespace astraea {

struct SchemeOptions {
  // Shared policy for all Astraea flows (loaded once). Defaults to
  // LoadDefaultPolicy() on first use.
  std::shared_ptr<const Policy> astraea_policy;
  // Overrides for the tuned-Vivace experiments (Fig. 2).
  VivaceConfig vivace;
  AstraeaHyperparameters astraea_hp;
  // Constant send rate of the unresponsive "blast" pseudo-scheme (the
  // adversarial scenarios' background UDP traffic).
  double blast_rate_bps = 20e6;
};

// Returns a factory for `name`; aborts on unknown names (listed below).
// Known names: newreno, cubic, vegas, bbr, copa, vivace, aurora, orca, remy,
// astraea — plus the extras outside the paper's comparison set: dctcp
// (ECN-reactive, datacenter scenarios) and blast (unresponsive UDP blaster,
// adversarial scenarios).
CcFactory MakeSchemeFactory(const std::string& name, SchemeOptions* options);

// All scheme names in the paper's comparison order (the extras dctcp/blast
// are intentionally excluded so figure benches keep their scheme set).
std::vector<std::string> AllSchemeNames();

}  // namespace astraea

#endif  // SRC_CORE_SCHEMES_H_
