#include "src/core/state_block.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"
#include "src/util/stats.h"

namespace astraea {

LocalFeatures StateBlock::Update(const MtpReport& report, uint32_t mss) {
  thr_max_bps_ = std::max(thr_max_bps_, report.thr_bps);
  if (report.min_rtt > 0) {
    // The sender already maintains min_rtt over a sliding window; track it
    // directly so the latency floor can rise again after path changes.
    lat_min_ = report.min_rtt;
  }

  LocalFeatures f;
  const double thr_max = std::max(thr_max_bps_, 1.0);
  const double lat_min_s = std::max(ToSeconds(lat_min_), 1e-4);
  const double lat_s = report.avg_rtt > 0 ? ToSeconds(report.avg_rtt) : lat_min_s;

  f.thr_ratio = report.thr_bps / thr_max;
  f.thr_max_scaled = thr_max / kThrScaleBps;
  f.lat_ratio = lat_s / lat_min_s;
  f.lat_min_scaled = lat_min_s / kLatScaleSec;
  // cwnd (bytes) relative to the historical BDP (thr_max in bytes/s * lat_min).
  f.rel_cwnd = static_cast<double>(report.cwnd_bytes) / (thr_max / 8.0 * lat_min_s);
  f.loss_ratio_thr = report.loss_bps / thr_max;
  const double cwnd_pkts = std::max(static_cast<double>(report.cwnd_bytes) / mss, 1.0);
  f.inflight_ratio = static_cast<double>(report.inflight_packets) / cwnd_pkts;
  f.pacing_ratio = report.pacing_bps / thr_max;

  history_.push_back(f);
  while (static_cast<int>(history_.size()) > history_length_) {
    history_.pop_front();
  }
  thr_history_bps_.push_back(report.thr_bps);
  while (static_cast<int>(thr_history_bps_.size()) > history_length_) {
    thr_history_bps_.pop_front();
  }
  return f;
}

std::vector<float> StateBlock::StateVector() const {
  // Features are clamped to [0, 10]: most live in [0, ~2] by construction,
  // but ratios against a tiny thr_max/lat_min can transiently explode, and
  // unbounded network inputs destabilize critic training.
  auto clamped = [](double v) { return static_cast<float>(std::clamp(v, 0.0, 10.0)); };
  std::vector<float> state(static_cast<size_t>(history_length_) * kLocalFeatures, 0.0f);
  size_t offset = (static_cast<size_t>(history_length_) - history_.size()) * kLocalFeatures;
  for (const LocalFeatures& f : history_) {
    state[offset + 0] = clamped(f.thr_ratio);
    state[offset + 1] = clamped(f.thr_max_scaled);
    state[offset + 2] = clamped(f.lat_ratio);
    state[offset + 3] = clamped(f.lat_min_scaled);
    state[offset + 4] = clamped(f.rel_cwnd);
    state[offset + 5] = clamped(f.loss_ratio_thr);
    state[offset + 6] = clamped(f.inflight_ratio);
    state[offset + 7] = clamped(f.pacing_ratio);
    offset += kLocalFeatures;
  }
  return state;
}

double StateBlock::AvgThroughputBps() const {
  if (thr_history_bps_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : thr_history_bps_) {
    sum += v;
  }
  return sum / static_cast<double>(thr_history_bps_.size());
}

double StateBlock::ThroughputStability() const {
  const double avg = AvgThroughputBps();
  if (avg <= 0.0 || thr_history_bps_.size() < 2) {
    return 0.0;
  }
  double acc = 0.0;
  for (double v : thr_history_bps_) {
    acc += (v - avg) * (v - avg);
  }
  return std::sqrt(acc / static_cast<double>(thr_history_bps_.size())) / avg;
}

std::vector<float> BuildGlobalState(const std::vector<const MtpReport*>& reports,
                                    const LinkInfo& link, uint32_t mss) {
  std::vector<float> g(kGlobalFeatures, 0.0f);
  if (reports.empty()) {
    return g;
  }
  double ovr_thr = 0.0;
  double min_thr = 1e300;
  double max_thr = 0.0;
  double lat_sum = 0.0;
  double min_cwnd = 1e300;
  double max_cwnd = 0.0;
  double cwnd_sum = 0.0;
  double loss_sum = 0.0;
  for (const MtpReport* r : reports) {
    ovr_thr += r->thr_bps;
    min_thr = std::min(min_thr, r->thr_bps);
    max_thr = std::max(max_thr, r->thr_bps);
    lat_sum += r->avg_rtt > 0 ? ToSeconds(r->avg_rtt) : 0.0;
    const double cwnd = static_cast<double>(r->cwnd_bytes);
    min_cwnd = std::min(min_cwnd, cwnd);
    max_cwnd = std::max(max_cwnd, cwnd);
    cwnd_sum += cwnd;
    loss_sum += r->loss_ratio;
  }
  const double n = static_cast<double>(reports.size());
  const double c = std::max(static_cast<double>(link.bandwidth), 1.0);
  const double bdp_bytes =
      std::max(c / 8.0 * ToSeconds(2 * link.base_one_way_delay), static_cast<double>(mss));

  auto clamped = [](double v) { return static_cast<float>(std::clamp(v, 0.0, 10.0)); };
  g[0] = clamped(ovr_thr / c);
  g[1] = clamped(min_thr / c);
  g[2] = clamped(max_thr / c);
  g[3] = clamped(lat_sum / n / kLatScaleSec);
  g[4] = clamped(min_cwnd / bdp_bytes);
  g[5] = clamped(max_cwnd / bdp_bytes);
  g[6] = clamped(cwnd_sum / n / bdp_bytes);
  g[7] = clamped(loss_sum / n);
  g[8] = clamped(n / 8.0);
  g[9] = clamped(ToSeconds(link.base_one_way_delay) / kLatScaleSec);
  g[10] = clamped(static_cast<double>(link.buffer_bytes) / bdp_bytes / 16.0);
  g[11] = clamped(c / kThrScaleBps);
  return g;
}

}  // namespace astraea
