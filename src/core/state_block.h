// The state block (paper §3.3): turns per-MTP packet statistics into the
// agent's local state — eight normalized features stacked over a history
// window w — and, during training, the Table-2 global aggregate the critic
// consumes.

#ifndef SRC_CORE_STATE_BLOCK_H_
#define SRC_CORE_STATE_BLOCK_H_

#include <deque>
#include <vector>

#include "src/core/training_config.h"
#include "src/sim/congestion_controller.h"

namespace astraea {

// Scales that map raw quantities into O(1) ranges for the network inputs. The
// two un-normalized features (thr_max, lat_min) are divided by these so the
// model still sees magnitude information on a bounded scale (§3.3).
inline constexpr double kThrScaleBps = 200e6;    // 200 Mbps
inline constexpr double kLatScaleSec = 0.2;      // 200 ms

// One MTP's worth of features (the eight bullets of §3.3, in order).
struct LocalFeatures {
  double thr_ratio = 0.0;       // thr / thr_max
  double thr_max_scaled = 0.0;  // thr_max / kThrScaleBps
  double lat_ratio = 1.0;       // lat / lat_min
  double lat_min_scaled = 0.0;  // lat_min / kLatScaleSec
  double rel_cwnd = 0.0;        // cwnd / (thr_max * lat_min)
  double loss_ratio_thr = 0.0;  // loss rate / thr_max
  double inflight_ratio = 0.0;  // pkt_in_flight / cwnd_pkts
  double pacing_ratio = 0.0;    // pacing rate / thr_max
};

// Per-flow tracker feeding the RL agent. Owns the flow's running extremes
// (thr_max, lat_min) and the w-deep feature history.
class StateBlock {
 public:
  explicit StateBlock(int history_length) : history_length_(history_length) {}

  // Ingests one MTP report; returns the features just computed.
  LocalFeatures Update(const MtpReport& report, uint32_t mss);

  // Stacked state vector (w * kLocalFeatures floats, oldest first; zero-padded
  // while the history is shorter than w).
  std::vector<float> StateVector() const;

  double thr_max_bps() const { return thr_max_bps_; }
  TimeNs lat_min() const { return lat_min_; }
  const std::deque<LocalFeatures>& history() const { return history_; }
  int history_length() const { return history_length_; }
  bool ready() const { return !history_.empty(); }

  // Average throughput over the last w MTPs (Eq. 7's avg_thr_i), bps.
  double AvgThroughputBps() const;
  // Per-flow stability term: normalized stddev of the thr history (Eq. 6).
  double ThroughputStability() const;

 private:
  int history_length_;
  double thr_max_bps_ = 0.0;
  TimeNs lat_min_ = 0;
  std::deque<LocalFeatures> history_;
  std::deque<double> thr_history_bps_;
};

// Inputs describing the link, needed only at training time (Table 2 tail).
struct LinkInfo {
  TimeNs base_one_way_delay = 0;  // d0
  uint64_t buffer_bytes = 0;
  RateBps bandwidth = 0;
};

// Builds the Table-2 global state from all active flows' latest reports.
std::vector<float> BuildGlobalState(const std::vector<const MtpReport*>& reports,
                                    const LinkInfo& link, uint32_t mss);

}  // namespace astraea

#endif  // SRC_CORE_STATE_BLOCK_H_
