#include "src/core/training_config.h"

#include <sstream>

namespace astraea {

std::string DescribeConfig(const AstraeaHyperparameters& hp, const TrainingEnvRanges& ranges) {
  std::ostringstream os;
  os << "Astraea hyperparameters (paper Table 4)\n"
     << "  learning rate            " << hp.learning_rate << "\n"
     << "  history length (w)       " << hp.history_length << "\n"
     << "  gamma                    " << hp.gamma << "\n"
     << "  batch size               " << hp.batch_size << "\n"
     << "  model update interval    " << FormatTime(hp.model_update_interval) << "\n"
     << "  model update steps       " << hp.model_update_steps << "\n"
     << "  action coefficient alpha " << hp.action_alpha << "\n"
     << "  MTP                      " << FormatTime(hp.mtp) << "\n"
     << "  reward c0..c4            " << hp.reward.c0 << " " << hp.reward.c1 << " "
     << hp.reward.c2 << " " << hp.reward.c3 << " " << hp.reward.c4 << "\n"
     << "Training environment (paper Table 3)\n"
     << "  bandwidth                " << ToMbps(ranges.bandwidth_lo) << " - "
     << ToMbps(ranges.bandwidth_hi) << " Mbps\n"
     << "  base RTT                 " << ToMillis(ranges.rtt_lo) << " - " << ToMillis(ranges.rtt_hi)
     << " ms\n"
     << "  buffer size factor       " << ranges.buffer_bdp_lo << " - " << ranges.buffer_bdp_hi
     << " x BDP\n"
     << "  concurrent flows         " << ranges.flows_lo << " - " << ranges.flows_hi << "\n";
  return os.str();
}

}  // namespace astraea
