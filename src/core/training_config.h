// The paper's published hyperparameters (Table 4) and training-environment
// characteristics (Table 3), kept in one place so the agent, reward block,
// trainer and benches cannot drift apart.

#ifndef SRC_CORE_TRAINING_CONFIG_H_
#define SRC_CORE_TRAINING_CONFIG_H_

#include <string>

#include "src/util/time.h"

namespace astraea {

struct RewardCoefficients {
  double c0 = 0.1;    // throughput
  double c1 = 0.02;   // latency
  double c2 = 1.0;    // loss
  double c3 = 0.02;   // fairness
  double c4 = 0.01;   // stability
  double beta = 0.2;  // latency grace band: no penalty below (1+beta)*d0
};

struct AstraeaHyperparameters {
  double learning_rate = 0.001;      // actor and critic (Table 4)
  int history_length = 5;            // w
  double gamma = 0.98;
  int batch_size = 192;
  TimeNs model_update_interval = Seconds(5.0);
  int model_update_steps = 20;
  double action_alpha = 0.025;       // Eq. 3 coefficient
  TimeNs mtp = Milliseconds(30);
  RewardCoefficients reward;

  // Base-RTT probing: when a flow has not observed a near-floor RTT for one
  // probe epoch, it briefly halves its window inside an epoch-aligned drain
  // window so the bottleneck queue empties and every flow re-anchors its
  // latency floor. This is the controller-level analogue of BBR's PROBE_RTT
  // and is what lets late-arriving flows shed the incumbent queue from their
  // min-RTT estimate (the classic delay-based-CC bias).
  TimeNs probe_epoch = Seconds(2.5);
  TimeNs drain_window = Milliseconds(150);
  // When set, an epoch whose latency floor was re-anchored by a near-floor
  // RTT sample within the last probe_epoch skips its drain: the floor is
  // demonstrably fresh, so shrinking the window would only cost throughput.
  // Default off — in a fleet, a floor contaminated by a standing queue also
  // looks "fresh" (every RTT sits near the corrupted floor), and only the
  // unconditional synchronized drain re-anchors it — but a single-flow
  // deployment on a real path (src/net) has no fleet to synchronize with and
  // can trust its own floor.
  bool skip_drain_on_fresh_floor = false;
};

// Table 3: the environment ranges episodes are sampled from.
struct TrainingEnvRanges {
  RateBps bandwidth_lo = Mbps(40);
  RateBps bandwidth_hi = Mbps(160);
  TimeNs rtt_lo = Milliseconds(10);
  TimeNs rtt_hi = Milliseconds(140);
  double buffer_bdp_lo = 0.1;
  double buffer_bdp_hi = 16.0;
  int flows_lo = 2;
  int flows_hi = 5;
};

// Number of scalar features per MTP in the local state (§3.3 list).
inline constexpr int kLocalFeatures = 8;
// Global state size (Table 2).
inline constexpr int kGlobalFeatures = 12;

inline int LocalStateDim(const AstraeaHyperparameters& hp) {
  return kLocalFeatures * hp.history_length;
}

// Human-readable dump (tools/astraea_train --print-config).
std::string DescribeConfig(const AstraeaHyperparameters& hp, const TrainingEnvRanges& ranges);

}  // namespace astraea

#endif  // SRC_CORE_TRAINING_CONFIG_H_
