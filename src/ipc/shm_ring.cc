#include "src/ipc/shm_ring.h"

#include <linux/futex.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <new>
#include <thread>
#include <utility>

namespace astraea {
namespace ipc {

namespace {

constexpr uint64_t kRingMask = kRingSlots - 1;
static_assert((kRingSlots & (kRingSlots - 1)) == 0, "ring size must be a power of two");

long FutexSyscall(std::atomic<uint32_t>* word, int op, uint32_t val,
                  const struct timespec* timeout) {
  // Non-PRIVATE futex ops so the same word works across processes when the
  // backing page is MAP_SHARED.
  return syscall(SYS_futex, reinterpret_cast<uint32_t*>(word), op, val, timeout, nullptr, 0);
}

#if defined(__x86_64__) || defined(__i386__)
inline void CpuRelax() { __builtin_ia32_pause(); }
#else
inline void CpuRelax() { std::atomic_signal_fence(std::memory_order_seq_cst); }
#endif

int SpinIterations() {
  // On a single-CPU host a spinning waiter only steals the core from the very
  // peer it is waiting on, so park immediately instead.
  static const int iters = std::thread::hardware_concurrency() > 1 ? 4000 : 0;
  return iters;
}

}  // namespace

TimeNs MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SpscRing::Init() {
  head.store(0, std::memory_order_relaxed);
  tail.store(0, std::memory_order_relaxed);
  doorbell.store(0, std::memory_order_relaxed);
  consumer_parked.store(0, std::memory_order_relaxed);
  for (size_t i = 0; i < kRingSlots; ++i) {
    slots[i].seq.store(i, std::memory_order_relaxed);
    std::memset(slots[i].payload, 0, kSlotPayloadBytes);
  }
}

bool SpscRing::TryPush(const void* bytes, size_t n) {
  if (n > kSlotPayloadBytes) {
    return false;
  }
  const uint64_t pos = head.load(std::memory_order_relaxed);
  RingSlot& slot = slots[pos & kRingMask];
  // The slot is free for writing exactly when its seq equals our position;
  // anything else means full — or a corrupted region, which must look the
  // same (backpressure), never be written through.
  if (slot.seq.load(std::memory_order_acquire) != pos) {
    return false;
  }
  std::memcpy(slot.payload, bytes, n);
  slot.seq.store(pos + 1, std::memory_order_release);
  head.store(pos + 1, std::memory_order_relaxed);
  doorbell.fetch_add(1, std::memory_order_release);
  return true;
}

bool SpscRing::TryPop(void* bytes, size_t n) {
  if (n > kSlotPayloadBytes) {
    return false;
  }
  const uint64_t pos = tail.load(std::memory_order_relaxed);
  RingSlot& slot = slots[pos & kRingMask];
  if (slot.seq.load(std::memory_order_acquire) != pos + 1) {
    return false;  // empty (or unreadable after corruption)
  }
  std::memcpy(bytes, slot.payload, n);
  slot.seq.store(pos + kRingSlots, std::memory_order_release);
  tail.store(pos + 1, std::memory_order_relaxed);
  return true;
}

size_t SpscRing::SizeApprox() const {
  const uint64_t h = head.load(std::memory_order_relaxed);
  const uint64_t t = tail.load(std::memory_order_relaxed);
  // Clamp: racy reads (or corruption) can momentarily invert the cursors.
  return h >= t ? std::min<uint64_t>(h - t, kRingSlots) : 0;
}

void FutexWake(std::atomic<uint32_t>* word, int count) {
  if (count > 0) {
    FutexSyscall(word, FUTEX_WAKE, static_cast<uint32_t>(count), nullptr);
  }
}

void WakeConsumer(SpscRing* ring) {
  // Full fence so the doorbell bump in TryPush is globally visible before the
  // parked-flag read (Dekker pattern with the consumer's park sequence). A
  // missed wake is still only a latency bug, never a correctness one: every
  // futex sleep is chunked and deadline-bounded.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (ring->consumer_parked.load(std::memory_order_relaxed) != 0) {
    FutexWake(&ring->doorbell, 1);
  }
}

uint32_t WaitDoorbell(SpscRing* ring, uint32_t seen, TimeNs max_wait) {
  // Phase 1: spin. Covers the common case where the peer responds within a
  // few microseconds, without any syscall. Skipped on single-CPU hosts.
  const int spin_iters = SpinIterations();
  for (int i = 0; i < spin_iters; ++i) {
    const uint32_t now_val = ring->doorbell.load(std::memory_order_acquire);
    if (now_val != seen) {
      return now_val;
    }
    CpuRelax();
  }
  // Phase 2: park on the futex, re-checking around the parked-flag store so
  // a publish racing with the park cannot be lost.
  const TimeNs deadline = MonotonicNowNs() + std::max<TimeNs>(max_wait, 0);
  while (true) {
    ring->consumer_parked.store(1, std::memory_order_seq_cst);
    uint32_t now_val = ring->doorbell.load(std::memory_order_seq_cst);
    if (now_val != seen) {
      ring->consumer_parked.store(0, std::memory_order_release);
      return now_val;
    }
    const TimeNs remaining = deadline - MonotonicNowNs();
    if (remaining <= 0) {
      ring->consumer_parked.store(0, std::memory_order_release);
      return now_val;
    }
    // Cap each sleep so a lost wake (crashed peer) still re-checks promptly.
    const TimeNs chunk = std::min<TimeNs>(remaining, Milliseconds(2));
    struct timespec ts;
    ts.tv_sec = chunk / kNanosPerSec;
    ts.tv_nsec = chunk % kNanosPerSec;
    FutexSyscall(&ring->doorbell, FUTEX_WAIT, seen, &ts);
    ring->consumer_parked.store(0, std::memory_order_release);
    now_val = ring->doorbell.load(std::memory_order_acquire);
    if (now_val != seen || MonotonicNowNs() >= deadline) {
      return now_val;
    }
  }
}

MappedRegion& MappedRegion::operator=(MappedRegion&& other) noexcept {
  if (this != &other) {
    this->~MappedRegion();
    region_ = std::exchange(other.region_, nullptr);
    fd_ = std::exchange(other.fd_, -1);
    bytes_ = std::exchange(other.bytes_, 0);
  }
  return *this;
}

MappedRegion::~MappedRegion() {
  if (region_ != nullptr) {
    munmap(region_, bytes_);
    region_ = nullptr;
  }
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

int MappedRegion::release_fd() { return std::exchange(fd_, -1); }

MappedRegion CreateRegion() {
  const size_t bytes = sizeof(ShmRegion);
  const int fd = static_cast<int>(syscall(SYS_memfd_create, "astraea-serve-ring",
                                          /*MFD_CLOEXEC*/ 0x0001u));
  if (fd < 0) {
    return {};
  }
  if (ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    close(fd);
    return {};
  }
  void* mem = mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (mem == MAP_FAILED) {
    close(fd);
    return {};
  }
  auto* region = new (mem) ShmRegion();
  region->magic = kRegionMagic;
  region->version = kRegionVersion;
  region->ring_slots = kRingSlots;
  region->slot_payload_bytes = kSlotPayloadBytes;
  region->request.Init();
  region->response.Init();
  return MappedRegion(region, fd, bytes);
}

MappedRegion MapRegion(int fd) {
  const size_t bytes = sizeof(ShmRegion);
  struct stat st;
  if (fstat(fd, &st) != 0 || static_cast<size_t>(st.st_size) != bytes) {
    return {};
  }
  void* mem = mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (mem == MAP_FAILED) {
    return {};
  }
  auto* region = static_cast<ShmRegion*>(mem);
  if (region->magic != kRegionMagic || region->version != kRegionVersion ||
      region->ring_slots != kRingSlots || region->slot_payload_bytes != kSlotPayloadBytes) {
    munmap(mem, bytes);
    return {};
  }
  return MappedRegion(region, fd, bytes);
}

}  // namespace ipc
}  // namespace astraea
