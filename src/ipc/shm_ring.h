// Lock-free single-producer / single-consumer ring over a shared-memory
// region, the transport between a sender process and the inference server
// (paper §4: the deployed system serves many concurrent flows over
// shared-memory IPC rather than calling the model inline).
//
// Layout: a `ShmRegion` holds two `SpscRing`s — requests (client -> server)
// and responses (server -> client). Each ring is a fixed array of fixed-size
// slots with a per-slot sequence header (Vyukov-style):
//
//   producer at position p: slot[p & mask].seq must equal p; write payload,
//     then store seq = p + 1 (release) to publish.
//   consumer at position p: slot[p & mask].seq must equal p + 1; copy payload,
//     then store seq = p + kRingSlots (release) to recycle.
//
// Every cursor/seq read is bounds-masked and equality-checked, so *arbitrary*
// corruption of the shared region (a misbehaving or crashed peer, a flipped
// bit) can only make records look "not ready" or fail the protocol-level CRC
// — it can never index out of bounds, loop unboundedly, or fault. Callers
// enforce liveness with deadlines, never with unbounded waits.
//
// Wakeup is spin-then-sleep: the consumer spins briefly on the ring's
// doorbell (a counter the producer bumps on every publish), then parks on a
// futex over that word; the producer issues FUTEX_WAKE only when the
// consumer has advertised itself parked, so the uncontended fast path is
// purely user-space. The server side parks on one eventfd shared by all
// clients instead (see serve/), using the same parked-flag handshake.
//
// The region is created by the client as an anonymous memfd and passed to
// the server over the unix-socket control channel (SCM_RIGHTS), so no
// filesystem names need cleanup and the region dies with its processes.

#ifndef SRC_IPC_SHM_RING_H_
#define SRC_IPC_SHM_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "src/util/time.h"

namespace astraea {
namespace ipc {

inline constexpr uint32_t kRegionMagic = 0x41524E47;  // "ARNG"
inline constexpr uint32_t kRegionVersion = 1;
inline constexpr size_t kRingSlots = 64;  // per direction; power of two
inline constexpr size_t kSlotPayloadBytes = 272;

// Monotonic wall-clock nanoseconds (CLOCK_MONOTONIC); the time base for every
// IPC deadline. Distinct from simulation TimeNs, which is virtual.
TimeNs MonotonicNowNs();

struct alignas(64) RingSlot {
  std::atomic<uint64_t> seq;
  unsigned char payload[kSlotPayloadBytes];
};

// Lives inside shared memory: must stay trivially layout-compatible across
// processes (no virtuals, no pointers, fixed-width members only).
struct SpscRing {
  alignas(64) std::atomic<uint64_t> head;  // producer cursor
  alignas(64) std::atomic<uint64_t> tail;  // consumer cursor
  // Futex word, bumped once per publish; the consumer waits for it to move.
  alignas(64) std::atomic<uint32_t> doorbell;
  // Set (1) by the consumer before sleeping, cleared on wake; the producer
  // only pays a wake syscall when this is set.
  std::atomic<uint32_t> consumer_parked;
  RingSlot slots[kRingSlots];

  void Init();

  // Copies `n` bytes into the next free slot and publishes it (bumping the
  // doorbell). Returns false when the ring is full. `n` must be
  // <= kSlotPayloadBytes. Producer-thread only.
  bool TryPush(const void* bytes, size_t n);

  // Copies the oldest published slot out. Returns false when empty (or when
  // corruption makes the next slot unreadable — indistinguishable by design).
  // Consumer-thread only.
  bool TryPop(void* bytes, size_t n);

  // Occupancy estimate (racy; for metrics/backpressure heuristics only).
  size_t SizeApprox() const;
};

static_assert(std::atomic<uint64_t>::is_always_lock_free);
static_assert(std::atomic<uint32_t>::is_always_lock_free);

// FUTEX_WAKE on `word` (non-private: works across processes on MAP_SHARED
// memory). No-op count<=0.
void FutexWake(std::atomic<uint32_t>* word, int count);

// Wakes the ring's consumer iff it advertised itself parked.
void WakeConsumer(SpscRing* ring);

// Consumer-side doorbell wait: spins briefly, then parks on the futex, until
// the doorbell moves past `seen` or `max_wait` elapses. Returns the latest
// doorbell value (callers re-check their rings regardless — wakeups may be
// spurious, and a corrupted doorbell must never be trusted for correctness).
uint32_t WaitDoorbell(SpscRing* ring, uint32_t seen, TimeNs max_wait);

struct ShmRegion {
  uint32_t magic;
  uint32_t version;
  uint32_t ring_slots;
  uint32_t slot_payload_bytes;
  SpscRing request;   // client -> server
  SpscRing response;  // server -> client
};

// Movable owner of a mapped ShmRegion (munmap + close on destruction).
class MappedRegion {
 public:
  MappedRegion() = default;
  MappedRegion(ShmRegion* region, int fd, size_t bytes)
      : region_(region), fd_(fd), bytes_(bytes) {}
  MappedRegion(MappedRegion&& other) noexcept { *this = std::move(other); }
  MappedRegion& operator=(MappedRegion&& other) noexcept;
  MappedRegion(const MappedRegion&) = delete;
  MappedRegion& operator=(const MappedRegion&) = delete;
  ~MappedRegion();

  ShmRegion* get() const { return region_; }
  ShmRegion* operator->() const { return region_; }
  explicit operator bool() const { return region_ != nullptr; }
  int fd() const { return fd_; }
  // Releases ownership of the fd (e.g. after handing it to the peer).
  int release_fd();

 private:
  ShmRegion* region_ = nullptr;
  int fd_ = -1;
  size_t bytes_ = 0;
};

// Client side: allocates an anonymous memfd region and initializes both
// rings. Returns an empty MappedRegion on failure (errno preserved).
MappedRegion CreateRegion();

// Server side: maps a region fd received from a client, validating its size
// and header before trusting it. Returns empty on any mismatch. Does NOT take
// ownership of `fd` on failure; on success the fd is owned by the mapping.
MappedRegion MapRegion(int fd);

}  // namespace ipc
}  // namespace astraea

#endif  // SRC_IPC_SHM_RING_H_
