#include "src/ipc/uds.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>

#include "src/ipc/shm_ring.h"  // MonotonicNowNs

namespace astraea {
namespace ipc {

namespace {

bool FillSockaddr(const std::string& path, sockaddr_un* addr) {
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
    errno = ENAMETOOLONG;
    return false;
  }
  memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  memcpy(addr->sun_path, path.c_str(), path.size());
  return true;
}

void SetCloexecNonblock(int fd) {
  fcntl(fd, F_SETFD, FD_CLOEXEC);
  fcntl(fd, F_SETFL, fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
}

}  // namespace

int ListenUnix(const std::string& path) {
  sockaddr_un addr;
  if (!FillSockaddr(path, &addr)) {
    return -1;
  }
  const int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return -1;
  }
  unlink(path.c_str());  // stale socket from a previous run
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 || listen(fd, 64) != 0) {
    const int saved = errno;
    close(fd);
    errno = saved;
    return -1;
  }
  SetCloexecNonblock(fd);
  return fd;
}

int ConnectUnix(const std::string& path) {
  sockaddr_un addr;
  if (!FillSockaddr(path, &addr)) {
    return -1;
  }
  const int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return -1;
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

int AcceptNonBlocking(int listen_fd) {
  const int fd = accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
  return fd;  // -1 with EAGAIN when nothing is pending
}

bool SendWithFds(int sock, const void* buf, size_t len, const int* fds, size_t nfds) {
  iovec iov;
  iov.iov_base = const_cast<void*>(buf);
  iov.iov_len = len;

  msghdr msg;
  memset(&msg, 0, sizeof(msg));
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;

  alignas(cmsghdr) char control[CMSG_SPACE(8 * sizeof(int))];
  if (nfds > 0) {
    if (nfds > 8) {
      return false;
    }
    memset(control, 0, sizeof(control));
    msg.msg_control = control;
    msg.msg_controllen = CMSG_SPACE(nfds * sizeof(int));
    cmsghdr* cmsg = CMSG_FIRSTHDR(&msg);
    cmsg->cmsg_level = SOL_SOCKET;
    cmsg->cmsg_type = SCM_RIGHTS;
    cmsg->cmsg_len = CMSG_LEN(nfds * sizeof(int));
    memcpy(CMSG_DATA(cmsg), fds, nfds * sizeof(int));
  }
  const ssize_t sent = sendmsg(sock, &msg, MSG_NOSIGNAL);
  return sent == static_cast<ssize_t>(len);
}

bool RecvWithFds(int sock, void* buf, size_t len, int* fds_out, size_t max_fds,
                 size_t* nfds_out, TimeNs timeout) {
  if (nfds_out != nullptr) {
    *nfds_out = 0;
  }
  size_t got = 0;
  const TimeNs deadline = MonotonicNowNs() + std::max<TimeNs>(timeout, 0);
  while (got < len) {
    const TimeNs remaining = deadline - MonotonicNowNs();
    if (remaining <= 0) {
      return false;
    }
    pollfd pfd{sock, POLLIN, 0};
    const int timeout_ms =
        static_cast<int>(std::clamp<TimeNs>((remaining + kNanosPerMilli - 1) / kNanosPerMilli,
                                            1, 60'000));
    const int rc = poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (rc == 0) {
      continue;  // deadline re-checked at loop top
    }

    iovec iov;
    iov.iov_base = static_cast<char*>(buf) + got;
    iov.iov_len = len - got;
    msghdr msg;
    memset(&msg, 0, sizeof(msg));
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    alignas(cmsghdr) char control[CMSG_SPACE(8 * sizeof(int))];
    msg.msg_control = control;
    msg.msg_controllen = sizeof(control);

    const ssize_t n = recvmsg(sock, &msg, MSG_CMSG_CLOEXEC);
    if (n == 0) {
      return false;  // EOF mid-message
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return false;
    }
    got += static_cast<size_t>(n);
    for (cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr; cmsg = CMSG_NXTHDR(&msg, cmsg)) {
      if (cmsg->cmsg_level != SOL_SOCKET || cmsg->cmsg_type != SCM_RIGHTS) {
        continue;
      }
      const size_t count = (cmsg->cmsg_len - CMSG_LEN(0)) / sizeof(int);
      int received[8];
      memcpy(received, CMSG_DATA(cmsg), std::min(count, size_t{8}) * sizeof(int));
      for (size_t i = 0; i < count && i < 8; ++i) {
        const size_t idx = nfds_out != nullptr ? *nfds_out : max_fds;
        if (fds_out != nullptr && idx < max_fds) {
          fds_out[idx] = received[i];
          ++*nfds_out;
        } else {
          close(received[i]);  // unexpected descriptor: don't leak it
        }
      }
    }
  }
  return true;
}

bool PeerAlive(int sock) {
  if (sock < 0) {
    return false;
  }
  char byte;
  const ssize_t n = recv(sock, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
  if (n == 0) {
    return false;  // orderly shutdown
  }
  if (n < 0) {
    return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
  }
  return true;  // unexpected payload still means the peer is alive
}

}  // namespace ipc
}  // namespace astraea
