// Unix-domain-socket helpers for the inference-serving control channel:
// listen/connect, non-blocking accept, and fixed-size message exchange with
// SCM_RIGHTS file-descriptor passing (the client ships its memfd ring region
// to the server; the server ships its doorbell eventfd back).
//
// All receives take a deadline — the control channel is only used for the
// one-shot handshake and liveness checks, and a stuck peer must never wedge
// the caller.

#ifndef SRC_IPC_UDS_H_
#define SRC_IPC_UDS_H_

#include <cstddef>
#include <string>

#include "src/util/time.h"

namespace astraea {
namespace ipc {

// Binds and listens on `path` (unlinking any stale socket first). Returns the
// listening fd (non-blocking, CLOEXEC) or -1 with errno set.
int ListenUnix(const std::string& path);

// Connects to `path`. Returns a blocking socket fd or -1 with errno set.
int ConnectUnix(const std::string& path);

// Non-blocking accept; returns the connection fd (CLOEXEC) or -1 when no
// client is pending (or on error).
int AcceptNonBlocking(int listen_fd);

// Sends exactly `len` bytes plus up to `nfds` descriptors in one message.
// Returns false on any error (EPIPE included; SIGPIPE is suppressed).
bool SendWithFds(int sock, const void* buf, size_t len, const int* fds, size_t nfds);

// Receives exactly `len` bytes (plus any passed descriptors, up to `max_fds`,
// stored into `fds_out` with the count in `*nfds_out`). Returns true on a
// complete message within `timeout`; false on EOF, error, or deadline. Any
// descriptors received on a failed/partial read are closed.
bool RecvWithFds(int sock, void* buf, size_t len, int* fds_out, size_t max_fds,
                 size_t* nfds_out, TimeNs timeout);

// True while the peer has neither closed nor reset the connection. Performs a
// non-blocking 1-byte MSG_PEEK; the serving protocol never sends payload data
// after the handshake, so readable-with-zero means EOF.
bool PeerAlive(int sock);

}  // namespace ipc
}  // namespace astraea

#endif  // SRC_IPC_UDS_H_
