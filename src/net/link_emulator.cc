#include "src/net/link_emulator.h"

#include <sys/epoll.h>

#include <algorithm>
#include <deque>

#include "src/ipc/shm_ring.h"
#include "src/util/logging.h"

namespace astraea {
namespace net {

bool LinkEmulator::Start() {
  socket_ = CreateUdpSocket(config_.listen_port);
  if (!socket_.valid()) {
    ASTRAEA_LOG(Error) << "link emulator: bind to port " << config_.listen_port << " failed";
    return false;
  }
  stop_event_.Reset(::eventfd(0, EFD_NONBLOCK));
  if (!stop_event_.valid()) {
    socket_.Reset();
    return false;
  }
  port_ = BoundPort(socket_.get());
  stop_requested_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { RunLoop(); });
  return true;
}

void LinkEmulator::Stop() {
  if (!thread_.joinable()) {
    return;
  }
  stop_requested_.store(true, std::memory_order_release);
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(stop_event_.get(), &one, sizeof(one));
  thread_.join();
}

void LinkEmulator::RunLoop() {
  sockaddr_in dest{};
  if (!ResolveIpv4(config_.forward_host, config_.forward_port, &dest)) {
    ASTRAEA_LOG(Error) << "link emulator: bad forward address " << config_.forward_host << ":"
                       << config_.forward_port;
    return;
  }
  UniqueFd epoll(::epoll_create1(0));
  UniqueFd deliver_timer = CreateMonotonicTimer();
  if (!epoll.valid() || !deliver_timer.valid()) {
    return;
  }
  for (int fd : {socket_.get(), stop_event_.get(), deliver_timer.get()}) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll.get(), EPOLL_CTL_ADD, fd, &ev);
  }

  sockaddr_in client{};
  bool have_client = false;

  // Busy-until serialization + droptail occupancy, mirroring the sim Link:
  // a datagram departs the queue at max(now, busy_until); occupancy counts
  // bytes that have not yet departed.
  TimeNs busy_until = 0;
  uint64_t queued_bytes = 0;
  std::deque<std::pair<TimeNs, uint32_t>> departures;  // (depart_time, bytes)

  std::priority_queue<Scheduled, std::vector<Scheduled>, std::greater<Scheduled>> pending;
  uint8_t buf[1 << 16];

  while (!stop_requested_.load(std::memory_order_acquire)) {
    const TimeNs now = ipc::MonotonicNowNs();
    // Deliver everything due.
    while (!pending.empty() && pending.top().deliver_at <= now) {
      const Scheduled& next = pending.top();
      const sockaddr_in& to = next.to_client ? client : dest;
      ::sendto(socket_.get(), next.payload.data(), next.payload.size(), 0,
               reinterpret_cast<const sockaddr*>(&to), sizeof(to));
      if (next.to_client) {
        ++report_.reverse_datagrams;
      } else {
        ++report_.forwarded_datagrams;
      }
      pending.pop();
    }
    // Free queue occupancy for departed datagrams.
    while (!departures.empty() && departures.front().first <= now) {
      queued_bytes -= departures.front().second;
      departures.pop_front();
    }
    if (!pending.empty()) {
      ArmTimerAt(deliver_timer.get(), pending.top().deliver_at);
    } else {
      DisarmTimer(deliver_timer.get());
    }

    epoll_event events[4];
    const int n = ::epoll_wait(epoll.get(), events, 4, /*timeout_ms=*/100);
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == stop_event_.get()) {
        DrainEventFd(stop_event_.get());
        continue;
      }
      if (fd == deliver_timer.get()) {
        DrainEventFd(deliver_timer.get());
        continue;  // deliveries run at the top of the loop
      }
      while (true) {
        sockaddr_in from{};
        socklen_t from_len = sizeof(from);
        const ssize_t got = ::recvfrom(socket_.get(), buf, sizeof(buf), 0,
                                       reinterpret_cast<sockaddr*>(&from), &from_len);
        if (got < 0) {
          break;  // EAGAIN
        }
        const TimeNs arrival = ipc::MonotonicNowNs();
        const bool from_dest = SameAddr(from, dest);
        if (!from_dest) {
          client = from;
          have_client = true;
        }
        if (from_dest) {
          // Reverse (ACK) path: pure propagation delay, uncongested.
          if (!have_client) {
            continue;
          }
          Scheduled s;
          s.deliver_at = arrival + config_.one_way_delay;
          s.to_client = true;
          s.payload.assign(buf, buf + got);
          pending.push(std::move(s));
          continue;
        }
        // Data path: loss, droptail buffer, serialization, propagation.
        if (config_.random_loss > 0.0 && rng_.Bernoulli(config_.random_loss)) {
          ++report_.dropped_random;
          continue;
        }
        while (!departures.empty() && departures.front().first <= arrival) {
          queued_bytes -= departures.front().second;
          departures.pop_front();
        }
        if (config_.buffer_bytes > 0 &&
            queued_bytes + static_cast<uint64_t>(got) > config_.buffer_bytes) {
          ++report_.dropped_buffer;
          continue;
        }
        TimeNs depart = std::max(arrival, busy_until);
        if (config_.rate > 0.0) {
          depart += TransmissionDelay(static_cast<uint64_t>(got), config_.rate);
        }
        busy_until = depart;
        queued_bytes += static_cast<uint64_t>(got);
        departures.emplace_back(depart, static_cast<uint32_t>(got));
        Scheduled s;
        s.deliver_at = depart + config_.one_way_delay;
        s.to_client = false;
        s.payload.assign(buf, buf + got);
        pending.push(std::move(s));
      }
    }
  }
}

}  // namespace net
}  // namespace astraea
