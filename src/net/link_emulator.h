// Userspace WAN link emulator: a bidirectional UDP relay that imposes a
// bottleneck rate, droptail buffer, propagation delay and random loss on the
// data direction — the mahimahi/tc-netem substitution that lets the real
// data plane run at WAN parameters entirely over loopback, without root.
//
// Topology matches the simulator's dumbbell: the first peer to send becomes
// the "client" (sender); its datagrams are shaped (token-free busy-until
// model, identical to the sim Link's serialization + droptail queue) and
// forwarded to the configured destination; traffic from the destination
// (ACKs) returns over a pure one-way delay, uncongested — the paper's
// Pantheon-tunnel setup.

#ifndef SRC_NET_LINK_EMULATOR_H_
#define SRC_NET_LINK_EMULATOR_H_

#include <atomic>
#include <cstdint>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "src/net/socket_util.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace astraea {
namespace net {

struct LinkEmulatorConfig {
  uint16_t listen_port = 0;  // client-facing side; 0 = ephemeral
  std::string forward_host = "127.0.0.1";
  uint16_t forward_port = 0;  // the receiver
  RateBps rate = 0.0;         // bottleneck rate; 0 = unshaped
  TimeNs one_way_delay = 0;   // propagation per direction (base RTT / 2)
  uint64_t buffer_bytes = 0;  // droptail queue bound; 0 = unlimited
  double random_loss = 0.0;   // data direction, non-congestive
  uint64_t seed = 1;
};

struct LinkEmulatorReport {
  uint64_t forwarded_datagrams = 0;  // data direction, delivered
  uint64_t dropped_buffer = 0;
  uint64_t dropped_random = 0;
  uint64_t reverse_datagrams = 0;  // ACK direction (never dropped)
};

class LinkEmulator {
 public:
  explicit LinkEmulator(LinkEmulatorConfig config) : config_(config), rng_(config.seed) {}
  ~LinkEmulator() { Stop(); }

  LinkEmulator(const LinkEmulator&) = delete;
  LinkEmulator& operator=(const LinkEmulator&) = delete;

  // Binds and spawns the relay thread. False on socket errors.
  bool Start();
  // Stops and joins the relay thread (idempotent).
  void Stop();

  uint16_t port() const { return port_; }
  // Stable only after Stop().
  const LinkEmulatorReport& report() const { return report_; }

 private:
  struct Scheduled {
    TimeNs deliver_at;
    bool to_client;  // reverse direction
    std::vector<uint8_t> payload;
    bool operator>(const Scheduled& other) const { return deliver_at > other.deliver_at; }
  };

  void RunLoop();

  LinkEmulatorConfig config_;
  Rng rng_;
  UniqueFd socket_;
  UniqueFd stop_event_;
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_requested_{false};

  LinkEmulatorReport report_;
};

}  // namespace net
}  // namespace astraea

#endif  // SRC_NET_LINK_EMULATOR_H_
