#include "src/net/loopback.h"

#include <thread>
#include <utility>

namespace astraea {
namespace net {

LoopbackResult RunLoopbackTransfer(const LoopbackConfig& config) {
  LoopbackResult result;
  if (!config.make_cc) {
    result.error = "no congestion-controller factory";
    return result;
  }

  UdpReceiver receiver(config.receiver);
  if (!receiver.Bind()) {
    result.error = "receiver bind failed";
    return result;
  }

  LinkEmulatorConfig emu_config = config.emulator;
  emu_config.forward_host = "127.0.0.1";
  emu_config.forward_port = receiver.port();
  LinkEmulator emulator(emu_config);
  uint16_t sender_target = receiver.port();
  if (config.shaped) {
    if (!emulator.Start()) {
      result.error = "link emulator start failed";
      return result;
    }
    sender_target = emulator.port();
  }

  UdpSenderConfig sender_config = config.sender;
  sender_config.host = "127.0.0.1";
  sender_config.port = sender_target;
  UdpSender sender(config.make_cc(), std::move(sender_config));

  std::thread receiver_thread([&receiver] { receiver.Run(); });
  sender.Run();
  // The receiver exits on its own after the FIN linger; force the issue for
  // incomplete transfers (max_runtime stops, streaming mode).
  receiver.RequestStop();
  receiver_thread.join();
  if (config.shaped) {
    emulator.Stop();
  }

  result.ok = true;
  result.sender = sender.report();
  result.receiver = receiver.report();
  result.emulator = emulator.report();
  return result;
}

}  // namespace net
}  // namespace astraea
