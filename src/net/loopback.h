// One-process loopback harness: receiver thread + optional link emulator +
// sender, wired over 127.0.0.1 UDP sockets. Shared by tools/astraea_net, the
// fig15 real-socket benchmark mode and tests/net_test.

#ifndef SRC_NET_LOOPBACK_H_
#define SRC_NET_LOOPBACK_H_

#include <functional>
#include <memory>
#include <string>

#include "src/net/link_emulator.h"
#include "src/net/udp_receiver.h"
#include "src/net/udp_sender.h"
#include "src/sim/congestion_controller.h"

namespace astraea {
namespace net {

struct LoopbackConfig {
  // Sender knobs. host/port are filled in by the harness.
  UdpSenderConfig sender;
  UdpReceiverConfig receiver;
  // When `shaped` is set, sender traffic is relayed through a LinkEmulator
  // at these parameters; otherwise it goes straight to the receiver.
  bool shaped = false;
  LinkEmulatorConfig emulator;
  std::function<std::unique_ptr<CongestionController>()> make_cc;
};

struct LoopbackResult {
  bool ok = false;        // harness ran end to end (sockets bound, threads joined)
  std::string error;      // why not, when !ok
  UdpSenderReport sender;
  UdpReceiverReport receiver;
  LinkEmulatorReport emulator;  // zeros when the path was unshaped
};

LoopbackResult RunLoopbackTransfer(const LoopbackConfig& config);

}  // namespace net
}  // namespace astraea

#endif  // SRC_NET_LOOPBACK_H_
