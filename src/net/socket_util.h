// Small POSIX helpers for the UDP data plane: RAII file descriptors,
// non-blocking UDP socket setup, IPv4 address resolution and CLOCK_MONOTONIC
// timerfd arming. All clocks are ipc::MonotonicNowNs() (steady_clock, which
// glibc implements on CLOCK_MONOTONIC — the same clock timerfd uses), so
// frame timestamps, pacing deadlines and RTO arming share one time base.

#ifndef SRC_NET_SOCKET_UTIL_H_
#define SRC_NET_SOCKET_UTIL_H_

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

#include "src/util/time.h"

namespace astraea {
namespace net {

class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }

  void Reset(int fd = -1) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = fd;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

// Non-blocking IPv4 UDP socket bound to `port` (0 = ephemeral / unbound
// client side). Returns an invalid fd on failure.
inline UniqueFd CreateUdpSocket(uint16_t port) {
  UniqueFd fd(::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0));
  if (!fd.valid()) {
    return fd;
  }
  int reuse = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  // Loopback tests push hundreds of Mbps through one socket; give the kernel
  // room before it tail-drops (best-effort: caps are fine).
  int buf = 4 << 20;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &buf, sizeof(buf));
  ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDBUF, &buf, sizeof(buf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    fd.Reset();
  }
  return fd;
}

// The port a socket actually bound to (resolves ephemeral binds).
inline uint16_t BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

// Dotted-quad IPv4 only (the data plane targets loopback and lab hosts; DNS
// would drag in blocking resolution).
inline bool ResolveIpv4(const std::string& host, uint16_t port, sockaddr_in* out) {
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(port);
  return ::inet_pton(AF_INET, host.c_str(), &out->sin_addr) == 1;
}

inline bool SameAddr(const sockaddr_in& a, const sockaddr_in& b) {
  return a.sin_addr.s_addr == b.sin_addr.s_addr && a.sin_port == b.sin_port;
}

inline UniqueFd CreateMonotonicTimer() {
  return UniqueFd(::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK));
}

// One-shot absolute arming on CLOCK_MONOTONIC; `deadline` in the
// ipc::MonotonicNowNs() time base. A past deadline fires immediately.
inline void ArmTimerAt(int fd, TimeNs deadline) {
  itimerspec spec{};
  if (deadline <= 0) {
    deadline = 1;  // 0 would disarm
  }
  spec.it_value.tv_sec = deadline / kNanosPerSec;
  spec.it_value.tv_nsec = deadline % kNanosPerSec;
  ::timerfd_settime(fd, TFD_TIMER_ABSTIME, &spec, nullptr);
}

inline void DisarmTimer(int fd) {
  itimerspec spec{};
  ::timerfd_settime(fd, 0, &spec, nullptr);
}

// Drains a fired timerfd/eventfd so epoll edge state resets.
inline void DrainEventFd(int fd) {
  uint64_t ticks = 0;
  while (::read(fd, &ticks, sizeof(ticks)) > 0) {
  }
}

}  // namespace net
}  // namespace astraea

#endif  // SRC_NET_SOCKET_UTIL_H_
