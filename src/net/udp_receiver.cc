#include "src/net/udp_receiver.h"

#include <sys/epoll.h>

#include <algorithm>
#include <cstdio>

#include "src/ipc/shm_ring.h"
#include "src/util/logging.h"

namespace astraea {
namespace net {
namespace {

// After a FIN, keep answering retransmitted FINs for this long before
// exiting: a lost FIN-ACK would otherwise strand the sender in its
// retransmit loop until it gives up.
constexpr TimeNs kFinLinger = Milliseconds(250);

// How far behind the newest sequence a hole may trail before the cumulative
// point abandons it (bounds the out-of-order set; must comfortably exceed
// the sender's reorder_threshold and the 64-bit SACK history window).
constexpr uint64_t kGiveUpWindow = 256;

}  // namespace

bool UdpReceiver::Bind() {
  socket_ = CreateUdpSocket(config_.port);
  if (!socket_.valid()) {
    ASTRAEA_LOG(Warning) << "net receiver: bind to port " << config_.port << " failed";
    return false;
  }
  stop_event_.Reset(::eventfd(0, EFD_NONBLOCK));
  port_ = BoundPort(socket_.get());
  return stop_event_.valid() && port_ != 0;
}

void UdpReceiver::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  if (stop_event_.valid()) {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(stop_event_.get(), &one, sizeof(one));
  }
}

bool UdpReceiver::Run() {
  if (!socket_.valid()) {
    return false;
  }
  UniqueFd epoll(::epoll_create1(0));
  if (!epoll.valid()) {
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = socket_.get();
  ::epoll_ctl(epoll.get(), EPOLL_CTL_ADD, socket_.get(), &ev);
  ev.data.fd = stop_event_.get();
  ::epoll_ctl(epoll.get(), EPOLL_CTL_ADD, stop_event_.get(), &ev);

  const TimeNs start = ipc::MonotonicNowNs();
  TimeNs last_activity = start;
  TimeNs fin_deadline = 0;  // set once a FIN arrives

  uint8_t buf[kMaxFrameBytes];
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const TimeNs now = ipc::MonotonicNowNs();
    if (fin_deadline != 0 && now >= fin_deadline) {
      break;
    }
    if (config_.idle_timeout > 0 && now - last_activity >= config_.idle_timeout) {
      break;
    }

    // Next deadline: pending delayed ACK, FIN linger or idle timeout.
    TimeNs deadline = config_.idle_timeout > 0 ? last_activity + config_.idle_timeout
                                               : now + Seconds(1.0);
    if (unacked_frames_ > 0) {
      deadline = std::min(deadline, oldest_unacked_time_ + config_.ack_delay);
    }
    if (fin_deadline != 0) {
      deadline = std::min(deadline, fin_deadline);
    }
    const int timeout_ms =
        deadline <= now ? 0
                        : static_cast<int>(std::min<TimeNs>((deadline - now) / kNanosPerMilli + 1,
                                                            1000));

    epoll_event events[4];
    const int n = ::epoll_wait(epoll.get(), events, 4, timeout_ms);
    const TimeNs wake = ipc::MonotonicNowNs();
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == stop_event_.get()) {
        DrainEventFd(stop_event_.get());
        continue;
      }
      // Drain every queued datagram before re-polling.
      while (true) {
        sockaddr_in from{};
        socklen_t from_len = sizeof(from);
        const ssize_t got = ::recvfrom(socket_.get(), buf, sizeof(buf), 0,
                                       reinterpret_cast<sockaddr*>(&from), &from_len);
        if (got < 0) {
          break;  // EAGAIN
        }
        OnDatagram(buf, static_cast<size_t>(got), from, ipc::MonotonicNowNs());
        last_activity = ipc::MonotonicNowNs();
        if (report_.fin_received && fin_deadline == 0) {
          fin_deadline = last_activity + kFinLinger;
        }
      }
    }
    // Delayed-ACK timer: flush if the oldest pending frame has waited long
    // enough.
    if (unacked_frames_ > 0 && wake - oldest_unacked_time_ >= config_.ack_delay) {
      SendAck(wake);
    }
  }
  // Final flush so the sender is not left waiting an RTO for the tail.
  if (unacked_frames_ > 0) {
    SendAck(ipc::MonotonicNowNs());
  }
  return true;
}

void UdpReceiver::OnDatagram(const uint8_t* buf, size_t len, const sockaddr_in& from,
                             TimeNs now) {
  ParsedFrame frame;
  const ParseStatus status = ParseFrame(buf, len, &frame);
  if (status != ParseStatus::kOk) {
    ++report_.corrupt_frames;
    return;
  }
  peer_ = from;
  have_peer_ = true;
  switch (frame.type) {
    case FrameType::kData:
      break;
    case FrameType::kFin:
    case FrameType::kFinAck:
      // Flush pending ACKs first so the sender sees the final ack point
      // before (or with) the FIN-ACK.
      if (unacked_frames_ > 0) {
        SendAck(now);
      }
      report_.fin_received = true;
      SendFinAck(frame.fin, from);
      return;
    case FrameType::kAck:
      return;  // not ours to consume; ignore
  }

  const DataFrame& data = frame.data;
  if (config_.verify_payload &&
      !VerifyPayloadPattern(data.flow_id, data.seq, frame.payload, frame.payload_len)) {
    ++report_.corrupt_frames;
    return;
  }
  if (!any_data_) {
    any_data_ = true;
    flow_id_ = data.flow_id;
    report_.first_data_time = now;
  }
  report_.last_data_time = now;

  const uint64_t seq = data.seq;
  if (seq < cum_ack_ || ooo_.count(seq) != 0) {
    ++report_.duplicate_frames;
    // Re-ACK duplicates immediately: the original ACK was likely lost.
    SendAck(now);
    return;
  }
  ooo_.insert(seq);
  while (!ooo_.empty() && *ooo_.begin() == cum_ack_) {
    ooo_.erase(ooo_.begin());
    ++cum_ack_;
  }
  max_seq_ = std::max(max_seq_, seq);
  // Data frames are never retransmitted, so a hole never fills once the
  // sender has moved `kGiveUpWindow` frames past it: advance the cumulative
  // point over it (keeps ooo_ bounded; the SACK history bitmap — not
  // cum_ack — is what the sender's accounting uses).
  if (max_seq_ > kGiveUpWindow && cum_ack_ < max_seq_ - kGiveUpWindow) {
    cum_ack_ = max_seq_ - kGiveUpWindow;
    ooo_.erase(ooo_.begin(), ooo_.lower_bound(cum_ack_));
    while (!ooo_.empty() && *ooo_.begin() == cum_ack_) {
      ooo_.erase(ooo_.begin());
      ++cum_ack_;
    }
  }
  ++report_.received_frames;
  report_.received_bytes += frame.payload_len;

  newest_recv_time_ = now;
  newest_send_time_ = data.send_time;
  if (unacked_frames_ == 0) {
    oldest_unacked_time_ = now;
  }
  ++unacked_frames_;
  if (unacked_frames_ >= config_.ack_every) {
    SendAck(now);
  }
}

void UdpReceiver::SendAck(TimeNs now) {
  if (!have_peer_ || !any_data_) {
    return;
  }
  AckFrame ack;
  ack.flow_id = flow_id_;
  ack.cum_ack = cum_ack_;
  ack.ack_seq = max_seq_;
  ack.echo_send_time = newest_send_time_;
  ack.ack_delay = std::max<TimeNs>(now - newest_recv_time_, 0);
  // History window: bit i covers seq max_seq_ - 1 - i. A sequence is
  // "received" when it sits below the cumulative point or in the
  // out-of-order set.
  uint64_t bitmap = 0;
  for (uint64_t i = 0; i < 64 && i < max_seq_; ++i) {
    const uint64_t seq = max_seq_ - 1 - i;
    if (seq < cum_ack_ || ooo_.count(seq) != 0) {
      bitmap |= 1ULL << i;
    }
  }
  ack.sack_bitmap = bitmap;
  ack.acked_count = unacked_frames_;
  ack.received_bytes_total = report_.received_bytes;
  ack.received_frames_total = report_.received_frames;
  ack.corrupt_frames_total = static_cast<uint32_t>(
      std::min<uint64_t>(report_.corrupt_frames, UINT32_MAX));

  uint8_t buf[kAckFrameBytes];
  const size_t len = SerializeAck(ack, buf, sizeof(buf));
  if (len > 0) {
    ::sendto(socket_.get(), buf, len, 0, reinterpret_cast<const sockaddr*>(&peer_),
             sizeof(peer_));
    ++report_.acks_sent;
  }
  unacked_frames_ = 0;
}

void UdpReceiver::SendFinAck(const FinFrame& fin, const sockaddr_in& to) {
  uint8_t buf[kFinFrameBytes];
  const size_t len = SerializeFin(fin, /*is_ack=*/true, buf, sizeof(buf));
  if (len > 0) {
    ::sendto(socket_.get(), buf, len, 0, reinterpret_cast<const sockaddr*>(&to), sizeof(to));
  }
}

}  // namespace net
}  // namespace astraea
