// UDP data-plane receiver: accepts framed data packets, verifies CRC and
// payload pattern, and acknowledges with delayed-ACK aggregation — one ACK
// per `ack_every` new data frames or after `ack_delay`, whichever comes
// first. Each ACK carries the cumulative ack point, a 64-bit SACK bitmap and
// the newest frame's echoed timestamp, so the sender recovers per-packet
// RTT/loss accounting from aggregated ACKs (see src/net/wire.h).

#ifndef SRC_NET_UDP_RECEIVER_H_
#define SRC_NET_UDP_RECEIVER_H_

#include <atomic>
#include <cstdint>
#include <set>

#include "src/net/socket_util.h"
#include "src/net/wire.h"
#include "src/util/time.h"

namespace astraea {
namespace net {

struct UdpReceiverConfig {
  uint16_t port = 0;  // 0 = ephemeral; read back via port() after Bind()
  // Delayed-ACK policy: ACK immediately at every `ack_every`-th new data
  // frame, or `ack_delay` after the first unacknowledged one.
  uint32_t ack_every = 2;
  TimeNs ack_delay = Milliseconds(2);
  // Give up when no data frame arrives for this long (0 = wait forever).
  TimeNs idle_timeout = Seconds(30.0);
  // Check the deterministic payload pattern on every data frame (the
  // end-to-end corruption metric); CRC validation always runs.
  bool verify_payload = true;
};

struct UdpReceiverReport {
  uint64_t received_frames = 0;    // accepted (new, valid) data frames
  uint64_t received_bytes = 0;     // their payload bytes (goodput)
  uint64_t duplicate_frames = 0;   // valid but already-seen sequence numbers
  uint64_t corrupt_frames = 0;     // parse/CRC failures + payload mismatches
  uint64_t acks_sent = 0;
  bool fin_received = false;
  TimeNs first_data_time = 0;  // monotonic; 0 until the first frame
  TimeNs last_data_time = 0;

  double goodput_bps() const {
    const TimeNs span = last_data_time - first_data_time;
    if (span <= 0) {
      return 0.0;
    }
    return static_cast<double>(received_bytes) * 8.0 / ToSeconds(span);
  }
};

class UdpReceiver {
 public:
  explicit UdpReceiver(UdpReceiverConfig config) : config_(config) {}

  UdpReceiver(const UdpReceiver&) = delete;
  UdpReceiver& operator=(const UdpReceiver&) = delete;

  // Binds the socket; must succeed before Run(). Separate from Run() so the
  // caller can read the ephemeral port() before starting the sender.
  bool Bind();
  uint16_t port() const { return port_; }

  // Blocks until FIN (plus a short linger for retransmitted FINs), idle
  // timeout, or RequestStop(). Returns false only on socket errors.
  bool Run();

  // Thread-safe; wakes the Run() loop.
  void RequestStop();

  const UdpReceiverReport& report() const { return report_; }

 private:
  void OnDatagram(const uint8_t* buf, size_t len, const sockaddr_in& from, TimeNs now);
  void SendAck(TimeNs now);
  void SendFinAck(const FinFrame& fin, const sockaddr_in& to);

  UdpReceiverConfig config_;
  UniqueFd socket_;
  UniqueFd stop_event_;
  uint16_t port_ = 0;
  std::atomic<bool> stop_requested_{false};

  // Reassembly state: everything below cum_ack_ has been received;
  // out-of-order arrivals above it wait in ooo_ (bounded by the sender's
  // window; entries fold into cum_ack_ as holes fill).
  uint64_t cum_ack_ = 0;
  std::set<uint64_t> ooo_;
  uint64_t max_seq_ = 0;       // newest sequence seen (valid once any frame arrived)
  bool any_data_ = false;
  uint32_t flow_id_ = 0;       // adopted from the first data frame

  // Pending delayed-ACK state.
  uint32_t unacked_frames_ = 0;     // new frames since the last ACK
  TimeNs oldest_unacked_time_ = 0;  // arrival of the first of those
  TimeNs newest_recv_time_ = 0;     // arrival of the newest data frame
  TimeNs newest_send_time_ = 0;     // its echoed sender timestamp
  sockaddr_in peer_{};
  bool have_peer_ = false;

  UdpReceiverReport report_;
};

}  // namespace net
}  // namespace astraea

#endif  // SRC_NET_UDP_RECEIVER_H_
