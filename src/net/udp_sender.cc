#include "src/net/udp_sender.h"

#include <poll.h>
#include <sys/epoll.h>

#include <algorithm>
#include <cmath>

#include "src/ipc/shm_ring.h"
#include "src/util/logging.h"

namespace astraea {
namespace net {
namespace {

// FIN handshake: retransmit cadence and give-up bound. A dead receiver costs
// kFinRetries * kFinInterval before the sender reports fin_acked = false.
constexpr TimeNs kFinInterval = Milliseconds(100);
constexpr int kFinRetries = 8;

}  // namespace

UdpSender::UdpSender(std::unique_ptr<CongestionController> cc, UdpSenderConfig config)
    : cc_(std::move(cc)), config_(config), meter_(config.min_rtt_window) {
  ASTRAEA_CHECK(config_.mss > kDataHeaderBytes && config_.mss <= kMaxFrameBytes);
  payload_per_frame_ = static_cast<uint16_t>(config_.mss - kDataHeaderBytes);
  if (config_.total_bytes > 0) {
    frames_total_ = (config_.total_bytes + payload_per_frame_ - 1) / payload_per_frame_;
  }
}

UdpSender::~UdpSender() = default;

void UdpSender::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  if (stop_event_.valid()) {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(stop_event_.get(), &one, sizeof(one));
  }
}

uint64_t UdpSender::EffectiveCwnd() const {
  // Same floor as the simulator: never let the controller deadlock the flow.
  return std::max<uint64_t>(cc_->cwnd_bytes(), 2ULL * config_.mss);
}

bool UdpSender::WindowOpen() const {
  return inflight_bytes_ + config_.mss <= EffectiveCwnd();
}

bool UdpSender::HaveDataToSend() const {
  return frames_total_ == 0 || next_seq_ < frames_total_;
}

TimeNs UdpSender::CurrentRto() const {
  if (meter_.srtt() == 0) {
    return Seconds(1.0);  // RFC 6298 initial RTO, as in the simulator
  }
  return std::max(config_.min_rto, meter_.srtt() + 4 * meter_.rttvar());
}

void UdpSender::SendDataFrame(TimeNs now) {
  DataFrame frame;
  frame.flow_id = config_.flow_id;
  frame.seq = next_seq_;
  frame.send_time = now;
  frame.payload_len = payload_per_frame_;
  frame.sent_bytes_total = report_.bytes_sent + config_.mss;
  frame.sent_frames_total = report_.frames_sent + 1;

  uint8_t buf[kMaxFrameBytes];
  const size_t len = SerializeData(frame, buf, sizeof(buf));
  ASTRAEA_CHECK(len == config_.mss);
  // Non-blocking send: if the kernel socket buffer is full (EAGAIN) the
  // datagram is treated as sent-and-dropped — indistinguishable from a
  // first-hop queue drop, which is exactly what it is.
  ::sendto(socket_.get(), buf, len, 0, reinterpret_cast<const sockaddr*>(&dest_),
           sizeof(dest_));

  ++next_seq_;
  outstanding_.push_back({frame.seq, now, config_.mss});
  inflight_bytes_ += config_.mss;
  report_.bytes_sent += config_.mss;
  ++report_.frames_sent;
  meter_.OnPacketSent(config_.mss);
}

void UdpSender::PumpSends(TimeNs now) {
  const bool paced = cc_->pacing_bps().has_value();
  while (HaveDataToSend() && WindowOpen()) {
    if (paced) {
      if (next_send_time_ > now) {
        ArmTimerAt(pace_timer_.get(), next_send_time_);
        return;
      }
      SendDataFrame(now);
      const double rate = cc_->pacing_bps().value_or(0.0);
      if (rate > 0.0) {
        // Allow up to 1ms of catch-up credit so epoll wake-up jitter does
        // not starve the configured rate, but never a larger burst.
        next_send_time_ = std::max(next_send_time_, now - Milliseconds(1)) +
                          TransmissionDelay(config_.mss, rate);
      }
    } else {
      SendDataFrame(now);  // ACK-clocked: fill the window
    }
  }
  DisarmTimer(pace_timer_.get());
}

void UdpSender::AckOutstanding(std::deque<Outstanding>::iterator it, const AckFrame& ack,
                               TimeNs now) {
  const Outstanding pkt = *it;
  outstanding_.erase(it);
  ASTRAEA_CHECK(inflight_bytes_ >= pkt.size_bytes);
  inflight_bytes_ -= pkt.size_bytes;
  report_.bytes_acked += pkt.size_bytes;
  ++report_.frames_acked;
  last_ack_time_ = now;
  any_acked_ = true;
  max_acked_seq_ = std::max(max_acked_seq_, pkt.seq);

  TimeNs rtt = std::max<TimeNs>(now - pkt.sent_time, 1);
  // QUIC-style delayed-ACK correction for the frame the receiver echoed: its
  // hold time is known exactly. Older frames covered by the same ACK keep
  // the uncorrected sample (their hold is bounded by ack_delay anyway).
  if (pkt.seq == ack.ack_seq && ack.ack_delay > 0 && ack.ack_delay < rtt) {
    rtt -= ack.ack_delay;
  }
  meter_.OnPacketAcked(now, rtt, pkt.size_bytes);
  rtt_samples_ms_.push_back(static_cast<float>(ToMillis(rtt)));

  AckEvent ev;
  ev.now = now;
  ev.rtt = rtt;
  ev.srtt = meter_.srtt();
  ev.min_rtt = meter_.min_rtt();
  ev.acked_bytes = pkt.size_bytes;
  ev.inflight_bytes = inflight_bytes_;
  ev.delivery_rate_bps = meter_.WindowedDeliveryRate(now);
  cc_->OnAck(ev);
}

void UdpSender::DetectSackLosses(TimeNs now) {
  // A still-outstanding frame is lost once reorder_threshold frames beyond
  // it have been acknowledged (dup-ACK analogue of the simulator's FIFO gap
  // rule, tolerant of real-network reordering).
  if (!any_acked_ || max_acked_seq_ < config_.reorder_threshold) {
    return;
  }
  const uint64_t horizon = max_acked_seq_ - config_.reorder_threshold;
  uint64_t lost = 0;
  while (!outstanding_.empty() && outstanding_.front().seq < horizon) {
    lost += outstanding_.front().size_bytes;
    outstanding_.pop_front();
  }
  if (lost == 0) {
    return;
  }
  ASTRAEA_CHECK(inflight_bytes_ >= lost);
  inflight_bytes_ -= lost;
  report_.bytes_lost += lost;
  ++report_.gap_loss_events;
  meter_.OnBytesLost(lost);

  LossEvent ev;
  ev.now = now;
  ev.lost_bytes = lost;
  ev.is_timeout = false;
  ev.inflight_bytes = inflight_bytes_;
  cc_->OnLoss(ev);
}

void UdpSender::OnAckFrame(const AckFrame& ack, TimeNs now) {
  ++report_.acks_received;
  if (ack.flow_id != config_.flow_id) {
    return;
  }
  // The ACK covers ack_seq plus the 64-frame history window behind it (bit i
  // => ack_seq - 1 - i received). Outstanding is seq-ordered, so the sweep
  // stops at the first sequence past ack_seq; already-resolved frames simply
  // are not in the list (later redundant coverage is a no-op).
  for (auto it = outstanding_.begin(); it != outstanding_.end();) {
    const uint64_t seq = it->seq;
    if (seq > ack.ack_seq) {
      break;
    }
    bool covered = seq == ack.ack_seq;
    if (!covered && ack.ack_seq - seq - 1 < 64) {
      covered = (ack.sack_bitmap >> (ack.ack_seq - seq - 1)) & 1;
    }
    if (!covered) {
      ++it;
      continue;
    }
    const size_t idx = static_cast<size_t>(it - outstanding_.begin());
    AckOutstanding(it, ack, now);
    it = outstanding_.begin() + static_cast<std::deque<Outstanding>::difference_type>(idx);
  }
  DetectSackLosses(now);
  PumpSends(now);
  ArmTimerAt(rto_timer_.get(), last_ack_time_ + CurrentRto());
}

void UdpSender::OnRtoCheck(TimeNs now) {
  if (outstanding_.empty()) {
    return;
  }
  if (now - last_ack_time_ < CurrentRto()) {
    ArmTimerAt(rto_timer_.get(), last_ack_time_ + CurrentRto());
    return;
  }
  // Timeout: write off everything outstanding, exactly as the simulator.
  uint64_t lost = 0;
  for (const Outstanding& o : outstanding_) {
    lost += o.size_bytes;
  }
  outstanding_.clear();
  inflight_bytes_ = 0;
  report_.bytes_lost += lost;
  ++report_.rto_fires;
  meter_.OnBytesLost(lost);

  LossEvent ev;
  ev.now = now;
  ev.lost_bytes = lost;
  ev.is_timeout = true;
  ev.inflight_bytes = 0;
  cc_->OnLoss(ev);

  last_ack_time_ = now;
  PumpSends(now);
  ArmTimerAt(rto_timer_.get(), last_ack_time_ + CurrentRto());
}

void UdpSender::MtpTick(TimeNs now) {
  const MtpReport mtp_report = meter_.BuildReport(now, config_.mtp, last_ack_time_,
                                                  inflight_bytes_, outstanding_.size(), *cc_);
  meter_.ResetInterval();
  ++report_.mtp_ticks;
  cc_->OnMtpTick(mtp_report);
  PumpSends(now);  // the controller may have opened the window
  // Fixed cadence (catch up if the loop fell behind a full period).
  next_mtp_time_ += config_.mtp;
  if (next_mtp_time_ <= now) {
    next_mtp_time_ = now + config_.mtp;
  }
  ArmTimerAt(mtp_timer_.get(), next_mtp_time_);
}

bool UdpSender::Run() {
  if (!ResolveIpv4(config_.host, config_.port, &dest_)) {
    ASTRAEA_LOG(Error) << "net sender: bad destination " << config_.host << ":" << config_.port;
    return false;
  }
  socket_ = CreateUdpSocket(0);
  stop_event_.Reset(::eventfd(0, EFD_NONBLOCK));
  pace_timer_ = CreateMonotonicTimer();
  mtp_timer_ = CreateMonotonicTimer();
  rto_timer_ = CreateMonotonicTimer();
  if (!socket_.valid() || !stop_event_.valid() || !pace_timer_.valid() || !mtp_timer_.valid() ||
      !rto_timer_.valid()) {
    ASTRAEA_LOG(Error) << "net sender: fd setup failed";
    return false;
  }

  UniqueFd epoll(::epoll_create1(0));
  if (!epoll.valid()) {
    return false;
  }
  for (int fd : {socket_.get(), stop_event_.get(), pace_timer_.get(), mtp_timer_.get(),
                 rto_timer_.get()}) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll.get(), EPOLL_CTL_ADD, fd, &ev);
  }

  const TimeNs started = ipc::MonotonicNowNs();
  last_ack_time_ = started;
  next_send_time_ = started;
  next_mtp_time_ = started + config_.mtp;
  cc_->OnFlowStart(started, config_.mss);
  ArmTimerAt(mtp_timer_.get(), next_mtp_time_);
  ArmTimerAt(rto_timer_.get(), started + CurrentRto());
  PumpSends(started);

  uint8_t buf[kMaxFrameBytes];
  while (!stop_requested_.load(std::memory_order_acquire)) {
    TimeNs now = ipc::MonotonicNowNs();
    if (config_.max_runtime > 0 && now - started >= config_.max_runtime) {
      break;
    }
    if (!HaveDataToSend() && outstanding_.empty()) {
      report_.completed = true;
      break;
    }

    epoll_event events[8];
    const int n = ::epoll_wait(epoll.get(), events, 8, /*timeout_ms=*/250);
    now = ipc::MonotonicNowNs();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == stop_event_.get()) {
        DrainEventFd(stop_event_.get());
      } else if (fd == pace_timer_.get()) {
        DrainEventFd(pace_timer_.get());
        PumpSends(now);
      } else if (fd == mtp_timer_.get()) {
        DrainEventFd(mtp_timer_.get());
        MtpTick(now);
      } else if (fd == rto_timer_.get()) {
        DrainEventFd(rto_timer_.get());
        OnRtoCheck(now);
      } else if (fd == socket_.get()) {
        while (true) {
          const ssize_t got = ::recv(socket_.get(), buf, sizeof(buf), 0);
          if (got < 0) {
            break;  // EAGAIN
          }
          ParsedFrame frame;
          if (ParseFrame(buf, static_cast<size_t>(got), &frame) != ParseStatus::kOk) {
            ++report_.corrupt_acks;
            continue;
          }
          if (frame.type == FrameType::kAck) {
            OnAckFrame(frame.ack, ipc::MonotonicNowNs());
          }
          // Stray FIN-ACKs outside the handshake are ignored.
        }
      }
    }
  }

  if (report_.completed) {
    RunFinHandshake();
  }
  FinishReport(started);
  return report_.completed;
}

void UdpSender::RunFinHandshake() {
  FinFrame fin;
  fin.flow_id = config_.flow_id;
  fin.final_seq = next_seq_;
  uint8_t out[kFinFrameBytes];
  const size_t out_len = SerializeFin(fin, /*is_ack=*/false, out, sizeof(out));
  uint8_t in[kMaxFrameBytes];
  for (int attempt = 0; attempt < kFinRetries && !stop_requested_.load(); ++attempt) {
    ::sendto(socket_.get(), out, out_len, 0, reinterpret_cast<const sockaddr*>(&dest_),
             sizeof(dest_));
    const TimeNs deadline = ipc::MonotonicNowNs() + kFinInterval;
    while (ipc::MonotonicNowNs() < deadline) {
      pollfd pfd{socket_.get(), POLLIN, 0};
      const TimeNs left = deadline - ipc::MonotonicNowNs();
      if (::poll(&pfd, 1, static_cast<int>(std::max<TimeNs>(left / kNanosPerMilli, 1))) <= 0) {
        continue;
      }
      const ssize_t got = ::recv(socket_.get(), in, sizeof(in), 0);
      if (got < 0) {
        continue;
      }
      ParsedFrame frame;
      if (ParseFrame(in, static_cast<size_t>(got), &frame) == ParseStatus::kOk &&
          frame.type == FrameType::kFinAck) {
        report_.fin_acked = true;
        return;
      }
    }
  }
}

void UdpSender::FinishReport(TimeNs started) {
  report_.elapsed = ipc::MonotonicNowNs() - started;
  if (!rtt_samples_ms_.empty()) {
    std::sort(rtt_samples_ms_.begin(), rtt_samples_ms_.end());
    const size_t n = rtt_samples_ms_.size();
    report_.rtt_min_ms = rtt_samples_ms_.front();
    report_.rtt_p50_ms = rtt_samples_ms_[n / 2];
    report_.rtt_p95_ms = rtt_samples_ms_[std::min(n - 1, n * 95 / 100)];
  }
}

}  // namespace net
}  // namespace astraea
