// UDP data-plane sender: drives a CongestionController over a real kernel
// socket exactly the way the simulator's Sender (src/sim/endpoint.cc) drives
// it over virtual links — same FlowMeter measurement engine, same
// OnAck-per-packet / OnLoss / OnMtpTick event contract, same RFC 6298 RTO
// policy and effective-cwnd floor. See DESIGN.md §13 for the equivalence
// contract.
//
// The event loop is epoll over the socket plus three CLOCK_MONOTONIC
// timerfds: pacing (armed at next_send_time when pacing_bps() is set), the
// MTP clock (every SenderConfig-style `mtp`), and the RTO. Loss detection is
// SACK-driven: the 64-bit bitmap in each ACK marks holes, and a hole is
// declared lost once `reorder_threshold` higher sequences are acknowledged
// (real networks reorder, so the simulator's FIFO "any gap is a drop" rule
// gets a dup-ACK-style threshold). An RTO writes off the whole outstanding
// window, mirroring the simulator.
//
// Data frames are not retransmitted (bulk-transfer model shared with the
// simulator): a loss is charged to the controller and the transfer completes
// when every frame has been acknowledged or written off.

#ifndef SRC_NET_UDP_SENDER_H_
#define SRC_NET_UDP_SENDER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/net/socket_util.h"
#include "src/net/wire.h"
#include "src/sim/congestion_controller.h"
#include "src/sim/flow_meter.h"
#include "src/util/time.h"

namespace astraea {
namespace net {

struct UdpSenderConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  uint32_t flow_id = 1;
  // Application payload bytes to deliver; 0 = stream until max_runtime.
  uint64_t total_bytes = 0;
  // Total UDP payload bytes per data frame (wire header + pattern payload).
  // 1200 keeps frames under every sane path MTU (QUIC's choice).
  uint32_t mss = 1200;
  TimeNs mtp = Milliseconds(30);  // Monitoring Time Period (paper Table 4)
  TimeNs min_rto = Milliseconds(200);
  TimeNs min_rtt_window = Seconds(60.0);
  // SACK holes older than this many acknowledged frames are declared lost.
  uint32_t reorder_threshold = 3;
  // Hard wall-clock stop; 0 = run until the transfer resolves.
  TimeNs max_runtime = Seconds(120.0);
};

struct UdpSenderReport {
  // Wire-byte accounting, mirroring sim FlowStats (sent = acked + lost at
  // completion since inflight drains through the FIN phase).
  uint64_t bytes_sent = 0;
  uint64_t bytes_acked = 0;
  uint64_t bytes_lost = 0;
  uint64_t frames_sent = 0;
  uint64_t frames_acked = 0;
  uint64_t acks_received = 0;
  uint64_t corrupt_acks = 0;  // ACK datagrams that failed ParseFrame
  uint64_t gap_loss_events = 0;
  uint64_t rto_fires = 0;
  uint64_t mtp_ticks = 0;
  bool completed = false;  // every data frame acknowledged or written off
  bool fin_acked = false;  // receiver confirmed the FIN
  TimeNs elapsed = 0;
  // From the acked-frame RTT samples (milliseconds).
  double rtt_min_ms = 0.0;
  double rtt_p50_ms = 0.0;
  double rtt_p95_ms = 0.0;

  double goodput_bps() const {
    return elapsed > 0 ? static_cast<double>(bytes_acked) * 8.0 / ToSeconds(elapsed) : 0.0;
  }
};

class UdpSender {
 public:
  UdpSender(std::unique_ptr<CongestionController> cc, UdpSenderConfig config);
  ~UdpSender();

  UdpSender(const UdpSender&) = delete;
  UdpSender& operator=(const UdpSender&) = delete;

  // Blocks until the transfer resolves, max_runtime expires or
  // RequestStop(). Returns report().completed.
  bool Run();

  // Thread-safe; wakes the Run() loop.
  void RequestStop();

  const UdpSenderReport& report() const { return report_; }
  CongestionController& cc() { return *cc_; }
  const CongestionController& cc() const { return *cc_; }
  const FlowMeter& meter() const { return meter_; }

 private:
  struct Outstanding {
    uint64_t seq;
    TimeNs sent_time;
    uint32_t size_bytes;
  };

  uint64_t EffectiveCwnd() const;
  bool WindowOpen() const;
  bool HaveDataToSend() const;
  void PumpSends(TimeNs now);       // paced or window-limited burst
  void SendDataFrame(TimeNs now);
  void OnAckFrame(const AckFrame& ack, TimeNs now);
  void AckOutstanding(std::deque<Outstanding>::iterator it, const AckFrame& ack, TimeNs now);
  void DetectSackLosses(TimeNs now);
  TimeNs CurrentRto() const;
  void OnRtoCheck(TimeNs now);
  void MtpTick(TimeNs now);
  void RunFinHandshake();
  void FinishReport(TimeNs started);

  std::unique_ptr<CongestionController> cc_;
  UdpSenderConfig config_;
  uint16_t payload_per_frame_ = 0;
  uint64_t frames_total_ = 0;  // 0 when config_.total_bytes == 0 (unbounded)

  UniqueFd socket_;
  UniqueFd stop_event_;
  UniqueFd pace_timer_;
  UniqueFd mtp_timer_;
  UniqueFd rto_timer_;
  sockaddr_in dest_{};
  std::atomic<bool> stop_requested_{false};

  uint64_t next_seq_ = 0;
  std::deque<Outstanding> outstanding_;  // ordered by seq
  uint64_t inflight_bytes_ = 0;
  uint64_t max_acked_seq_ = 0;  // highest seq ever acknowledged
  bool any_acked_ = false;

  FlowMeter meter_;
  TimeNs last_ack_time_ = 0;
  TimeNs next_send_time_ = 0;
  TimeNs next_mtp_time_ = 0;

  std::vector<float> rtt_samples_ms_;
  UdpSenderReport report_;
};

}  // namespace net
}  // namespace astraea

#endif  // SRC_NET_UDP_SENDER_H_
