#include "src/net/wire.h"

#include <cstring>

#include "src/util/checkpoint.h"

namespace astraea {
namespace net {
namespace {

// Offset of the CRC field inside the common header. The CRC is computed over
// the whole frame with these four bytes zeroed, then patched in.
constexpr size_t kCrcOffset = 12;

class ByteWriter {
 public:
  ByteWriter(uint8_t* buf, size_t cap) : buf_(buf), cap_(cap) {}

  void U8(uint8_t v) { Put(&v, 1); }
  void U16(uint16_t v) {
    const uint8_t b[2] = {static_cast<uint8_t>(v), static_cast<uint8_t>(v >> 8)};
    Put(b, 2);
  }
  void U32(uint32_t v) {
    uint8_t b[4];
    for (int i = 0; i < 4; ++i) {
      b[i] = static_cast<uint8_t>(v >> (8 * i));
    }
    Put(b, 4);
  }
  void U64(uint64_t v) {
    uint8_t b[8];
    for (int i = 0; i < 8; ++i) {
      b[i] = static_cast<uint8_t>(v >> (8 * i));
    }
    Put(b, 8);
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }

  bool ok() const { return ok_; }
  size_t size() const { return pos_; }

 private:
  void Put(const uint8_t* src, size_t n) {
    if (!ok_ || pos_ + n > cap_) {
      ok_ = false;
      return;
    }
    std::memcpy(buf_ + pos_, src, n);
    pos_ += n;
  }

  uint8_t* buf_;
  size_t cap_;
  size_t pos_ = 0;
  bool ok_ = true;
};

class ByteReader {
 public:
  ByteReader(const uint8_t* buf, size_t len) : buf_(buf), len_(len) {}

  uint8_t U8() { return Get(1) ? buf_[pos_ - 1] : 0; }
  uint16_t U16() {
    if (!Get(2)) {
      return 0;
    }
    const uint8_t* b = buf_ + pos_ - 2;
    return static_cast<uint16_t>(b[0] | (b[1] << 8));
  }
  uint32_t U32() {
    if (!Get(4)) {
      return 0;
    }
    const uint8_t* b = buf_ + pos_ - 4;
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | b[i];
    }
    return v;
  }
  uint64_t U64() {
    if (!Get(8)) {
      return 0;
    }
    const uint8_t* b = buf_ + pos_ - 8;
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | b[i];
    }
    return v;
  }
  int64_t I64() { return static_cast<int64_t>(U64()); }

  bool ok() const { return ok_; }
  size_t pos() const { return pos_; }

 private:
  bool Get(size_t n) {
    if (!ok_ || pos_ + n > len_) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const uint8_t* buf_;
  size_t len_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Writes the common header with a zeroed CRC; PatchCrc fills it in once the
// body is serialized.
void WriteHeader(ByteWriter* w, FrameType type, uint16_t total_len, uint32_t flow_id) {
  w->U32(kWireMagic);
  w->U8(kWireVersion);
  w->U8(static_cast<uint8_t>(type));
  w->U16(total_len);
  w->U32(flow_id);
  w->U32(0);  // CRC placeholder
}

size_t PatchCrc(ByteWriter* w, uint8_t* buf) {
  if (!w->ok()) {
    return 0;
  }
  const size_t len = w->size();
  const uint32_t crc = Crc32(buf, len);
  for (int i = 0; i < 4; ++i) {
    buf[kCrcOffset + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  return len;
}

uint64_t MixPayloadSeed(uint32_t flow_id, uint64_t seq) {
  uint64_t z = seq + 0x9E3779B97F4A7C15ULL * (flow_id + 1ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

size_t SerializeData(const DataFrame& frame, uint8_t* buf, size_t cap) {
  const size_t total = kDataHeaderBytes + frame.payload_len;
  if (total > kMaxFrameBytes || total > cap) {
    return 0;
  }
  ByteWriter w(buf, cap);
  WriteHeader(&w, FrameType::kData, static_cast<uint16_t>(total), frame.flow_id);
  w.U64(frame.seq);
  w.I64(frame.send_time);
  w.U64(frame.sent_bytes_total);
  w.U64(frame.sent_frames_total);
  if (!w.ok()) {
    return 0;
  }
  FillPayloadPattern(frame.flow_id, frame.seq, buf + kDataHeaderBytes, frame.payload_len);
  // CRC over header + body + payload, with the (still-zero) CRC field.
  const uint32_t crc = Crc32(buf, total);
  for (int i = 0; i < 4; ++i) {
    buf[kCrcOffset + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  return total;
}

size_t SerializeAck(const AckFrame& frame, uint8_t* buf, size_t cap) {
  ByteWriter w(buf, cap);
  WriteHeader(&w, FrameType::kAck, kAckFrameBytes, frame.flow_id);
  w.U64(frame.cum_ack);
  w.U64(frame.ack_seq);
  w.I64(frame.echo_send_time);
  w.I64(frame.ack_delay);
  w.U64(frame.sack_bitmap);
  w.U32(frame.acked_count);
  w.U64(frame.received_bytes_total);
  w.U64(frame.received_frames_total);
  w.U32(frame.corrupt_frames_total);
  return PatchCrc(&w, buf);
}

size_t SerializeFin(const FinFrame& frame, bool is_ack, uint8_t* buf, size_t cap) {
  ByteWriter w(buf, cap);
  WriteHeader(&w, is_ack ? FrameType::kFinAck : FrameType::kFin, kFinFrameBytes, frame.flow_id);
  w.U64(frame.final_seq);
  return PatchCrc(&w, buf);
}

ParseStatus ParseFrame(const uint8_t* buf, size_t len, ParsedFrame* out) {
  if (len < kHeaderBytes) {
    return ParseStatus::kTruncated;
  }
  ByteReader r(buf, len);
  if (r.U32() != kWireMagic) {
    return ParseStatus::kBadMagic;
  }
  if (r.U8() != kWireVersion) {
    return ParseStatus::kBadVersion;
  }
  const uint8_t raw_type = r.U8();
  if (raw_type < static_cast<uint8_t>(FrameType::kData) ||
      raw_type > static_cast<uint8_t>(FrameType::kFinAck)) {
    return ParseStatus::kBadType;
  }
  const FrameType type = static_cast<FrameType>(raw_type);
  const uint16_t frame_len = r.U16();
  const uint32_t flow_id = r.U32();
  if (frame_len > len) {
    return ParseStatus::kTruncated;
  }
  if (frame_len != len) {
    return ParseStatus::kBadLength;  // one frame per datagram, no trailer
  }
  const uint32_t claimed_crc = r.U32();
  // Recompute over the frame with the CRC field zeroed. Crc32 has no
  // streaming API, so verify on a stack scratch copy (frames are bounded by
  // the u16 length field).
  uint8_t scratch[kMaxFrameBytes];
  std::memcpy(scratch, buf, frame_len);
  std::memset(scratch + kCrcOffset, 0, 4);
  if (Crc32(scratch, frame_len) != claimed_crc) {
    return ParseStatus::kBadCrc;
  }

  out->type = type;
  switch (type) {
    case FrameType::kData: {
      if (frame_len < kDataHeaderBytes) {
        return ParseStatus::kBadLength;
      }
      DataFrame& d = out->data;
      d = DataFrame{};
      d.flow_id = flow_id;
      d.seq = r.U64();
      d.send_time = r.I64();
      d.sent_bytes_total = r.U64();
      d.sent_frames_total = r.U64();
      d.payload_len = static_cast<uint16_t>(frame_len - kDataHeaderBytes);
      out->payload = buf + kDataHeaderBytes;
      out->payload_len = d.payload_len;
      break;
    }
    case FrameType::kAck: {
      if (frame_len != kAckFrameBytes) {
        return ParseStatus::kBadLength;
      }
      AckFrame& a = out->ack;
      a = AckFrame{};
      a.flow_id = flow_id;
      a.cum_ack = r.U64();
      a.ack_seq = r.U64();
      a.echo_send_time = r.I64();
      a.ack_delay = r.I64();
      a.sack_bitmap = r.U64();
      a.acked_count = r.U32();
      a.received_bytes_total = r.U64();
      a.received_frames_total = r.U64();
      a.corrupt_frames_total = r.U32();
      break;
    }
    case FrameType::kFin:
    case FrameType::kFinAck: {
      if (frame_len != kFinFrameBytes) {
        return ParseStatus::kBadLength;
      }
      out->fin = FinFrame{};
      out->fin.flow_id = flow_id;
      out->fin.final_seq = r.U64();
      break;
    }
  }
  return r.ok() ? ParseStatus::kOk : ParseStatus::kTruncated;
}

const char* ParseStatusName(ParseStatus status) {
  switch (status) {
    case ParseStatus::kOk:
      return "ok";
    case ParseStatus::kTruncated:
      return "truncated";
    case ParseStatus::kBadMagic:
      return "bad-magic";
    case ParseStatus::kBadVersion:
      return "bad-version";
    case ParseStatus::kBadType:
      return "bad-type";
    case ParseStatus::kBadLength:
      return "bad-length";
    case ParseStatus::kBadCrc:
      return "bad-crc";
  }
  return "unknown";
}

void FillPayloadPattern(uint32_t flow_id, uint64_t seq, uint8_t* dst, size_t len) {
  uint64_t state = MixPayloadSeed(flow_id, seq);
  for (size_t i = 0; i < len; ++i) {
    if (i % 8 == 0) {
      // xorshift64* step per 8-byte block: cheap and full-period.
      state ^= state >> 12;
      state ^= state << 25;
      state ^= state >> 27;
    }
    dst[i] = static_cast<uint8_t>((state * 0x2545F4914F6CDD1DULL) >> (8 * (i % 8)));
  }
}

bool VerifyPayloadPattern(uint32_t flow_id, uint64_t seq, const uint8_t* src, size_t len) {
  uint8_t expected[kMaxFrameBytes];
  if (len > sizeof(expected)) {
    return false;
  }
  FillPayloadPattern(flow_id, seq, expected, len);
  return std::memcmp(src, expected, len) == 0;
}

}  // namespace net
}  // namespace astraea
