// Datagram wire format for the real-packet UDP data plane (DESIGN.md §13).
//
// Every frame — data, ACK, FIN, FIN-ACK — carries a fixed 16-byte header
// (magic, version, type, total length, flow id, CRC32 over the whole frame
// with the CRC field zeroed) followed by a fixed-layout little-endian body.
// Data frames additionally carry a deterministic pseudo-random payload
// pattern derived from (flow_id, seq), so the receiver can prove end-to-end
// content integrity independently of the CRC.
//
// Parsing is hostile-byte safe: ParseFrame never reads out of bounds and
// classifies every rejection (fuzz/fuzz_net_wire.cc drives it with arbitrary
// bytes). Serialization is bounds-checked and refuses undersized buffers.
//
// ACK frames carry the newest sequence received (`ack_seq`) plus a 64-bit
// SACK *history* bitmap over the window [ack_seq - 64, ack_seq - 1], so one
// delayed ACK covers many data frames and — because consecutive ACKs overlap
// — every received frame is reported ~32 times, making per-packet
// accounting robust to ACK loss. The window is anchored at the newest
// sequence rather than at a cumulative point because data frames are never
// retransmitted (bulk-transfer model): a cumulative anchor would pin at the
// first hole forever and stop describing later arrivals. `cum_ack` (first
// sequence not received, advanced past holes the receiver has given up on)
// rides along for statistics only. The receiver echoes the newest frame's
// send timestamp with its local hold time (`ack_delay`), letting the sender
// take a QUIC-style RTT sample with the delayed-ACK wait subtracted.

#ifndef SRC_NET_WIRE_H_
#define SRC_NET_WIRE_H_

#include <cstddef>
#include <cstdint>

#include "src/util/time.h"

namespace astraea {
namespace net {

inline constexpr uint32_t kWireMagic = 0x41535452;  // "ASTR"
inline constexpr uint8_t kWireVersion = 1;

// Fixed sizes (bytes). The header is shared by all frame types.
inline constexpr size_t kHeaderBytes = 16;
inline constexpr size_t kDataHeaderBytes = kHeaderBytes + 32;  // + payload
inline constexpr size_t kAckFrameBytes = kHeaderBytes + 64;
inline constexpr size_t kFinFrameBytes = kHeaderBytes + 8;
inline constexpr size_t kMaxFrameBytes = 65535;  // length field is u16

enum class FrameType : uint8_t {
  kData = 1,
  kAck = 2,
  kFin = 3,     // sender -> receiver: transfer complete
  kFinAck = 4,  // receiver -> sender: FIN acknowledged
};

struct DataFrame {
  uint32_t flow_id = 0;
  uint64_t seq = 0;                // dense, starts at 0
  TimeNs send_time = 0;            // sender CLOCK_MONOTONIC at transmission
  uint64_t sent_bytes_total = 0;   // cumulative wire bytes incl. this frame
  uint64_t sent_frames_total = 0;  // cumulative data frames incl. this one
  uint16_t payload_len = 0;        // pattern bytes following the fixed part
};

struct AckFrame {
  uint32_t flow_id = 0;
  uint64_t cum_ack = 0;   // first seq not received (or given up on); stats only
  uint64_t ack_seq = 0;   // newest (highest) sequence received so far
  TimeNs echo_send_time = 0;  // send_time of the newest data frame
  TimeNs ack_delay = 0;       // receiver hold between that arrival and this ACK
  uint64_t sack_bitmap = 0;   // bit i set => seq ack_seq - 1 - i received
  uint32_t acked_count = 0;   // new data frames covered since the previous ACK
  uint64_t received_bytes_total = 0;  // cumulative payload bytes accepted
  uint64_t received_frames_total = 0;
  uint32_t corrupt_frames_total = 0;  // bad parse / CRC / payload pattern
};

struct FinFrame {
  uint32_t flow_id = 0;
  uint64_t final_seq = 0;  // total data frames in the transfer
};

// Why a frame was rejected; kOk means `out` is fully populated.
enum class ParseStatus {
  kOk,
  kTruncated,   // shorter than a header, or shorter than its length field
  kBadMagic,
  kBadVersion,
  kBadType,
  kBadLength,   // length field inconsistent with the frame type
  kBadCrc,
};

struct ParsedFrame {
  FrameType type = FrameType::kData;
  DataFrame data;  // valid when type == kData
  AckFrame ack;    // valid when type == kAck
  FinFrame fin;    // valid when type == kFin / kFinAck
  // Data payload, pointing into the caller's buffer (valid when type == kData).
  const uint8_t* payload = nullptr;
  size_t payload_len = 0;
};

// Each serializer returns the number of bytes written, or 0 when `cap` is too
// small (or the data payload would overflow the u16 length field). For data
// frames the payload pattern is generated in place from (flow_id, seq).
size_t SerializeData(const DataFrame& frame, uint8_t* buf, size_t cap);
size_t SerializeAck(const AckFrame& frame, uint8_t* buf, size_t cap);
size_t SerializeFin(const FinFrame& frame, bool is_ack, uint8_t* buf, size_t cap);

// Bounds-checked parse of one datagram. Never throws, never reads past
// buf + len. Trailing bytes beyond the frame's length field are rejected as
// kBadLength (a datagram carries exactly one frame).
ParseStatus ParseFrame(const uint8_t* buf, size_t len, ParsedFrame* out);

const char* ParseStatusName(ParseStatus status);

// Deterministic payload pattern: byte j of frame (flow_id, seq) is
// a SplitMix-style mix of the three, so any reordering, truncation or
// corruption that survives the CRC still trips the content check.
void FillPayloadPattern(uint32_t flow_id, uint64_t seq, uint8_t* dst, size_t len);
bool VerifyPayloadPattern(uint32_t flow_id, uint64_t seq, const uint8_t* src, size_t len);

}  // namespace net
}  // namespace astraea

#endif  // SRC_NET_WIRE_H_
