#include "src/nn/mlp.h"

#include <cmath>
#include <utility>

#include "src/util/logging.h"

namespace astraea {

namespace {
constexpr uint32_t kCheckpointMagic = 0x41'53'4D'4C;  // "ASML"
constexpr uint32_t kCheckpointVersion = 1;
}  // namespace

Mlp::Mlp(std::vector<int> dims, OutputActivation output_activation, Rng* rng)
    : dims_(std::move(dims)), output_activation_(output_activation) {
  ASTRAEA_CHECK(dims_.size() >= 3);  // input, >=1 hidden, output
  for (int d : dims_) {
    ASTRAEA_CHECK(d > 0);
  }
  BuildLayout();
  InitParams(rng);
}

void Mlp::BuildLayout() {
  size_t offset = 0;
  layers_.clear();
  for (size_t i = 0; i + 1 < dims_.size(); ++i) {
    LayerView layer;
    layer.in = dims_[i];
    layer.out = dims_[i + 1];
    layer.w_offset = offset;
    offset += static_cast<size_t>(layer.in) * static_cast<size_t>(layer.out);
    layer.b_offset = offset;
    offset += static_cast<size_t>(layer.out);
    layers_.push_back(layer);
  }
  params_.assign(offset, 0.0f);
  grads_.assign(offset, 0.0f);
}

void Mlp::InitParams(Rng* rng) {
  // Xavier/Glorot uniform: U(-sqrt(6/(in+out)), +sqrt(6/(in+out))); zero bias.
  for (const LayerView& layer : layers_) {
    const float bound = std::sqrt(6.0f / static_cast<float>(layer.in + layer.out));
    for (size_t i = 0; i < static_cast<size_t>(layer.in) * layer.out; ++i) {
      params_[layer.w_offset + i] = static_cast<float>(rng->Uniform(-bound, bound));
    }
  }
}

void Mlp::ForwardInto(std::span<const float> input, std::vector<std::vector<float>>* pre,
                      std::vector<std::vector<float>>* post) const {
  ASTRAEA_CHECK(static_cast<int>(input.size()) == dims_.front());
  pre->resize(layers_.size());
  post->resize(layers_.size());
  const float* x = input.data();
  size_t x_len = input.size();
  for (size_t l = 0; l < layers_.size(); ++l) {
    const LayerView& layer = layers_[l];
    auto& z = (*pre)[l];
    z.assign(static_cast<size_t>(layer.out), 0.0f);
    const float* w = params_.data() + layer.w_offset;
    const float* b = params_.data() + layer.b_offset;
    for (int o = 0; o < layer.out; ++o) {
      float acc = b[o];
      const float* row = w + static_cast<size_t>(o) * layer.in;
      for (size_t i = 0; i < x_len; ++i) {
        acc += row[i] * x[i];
      }
      z[static_cast<size_t>(o)] = acc;
    }
    auto& a = (*post)[l];
    a = z;
    const bool is_last = (l + 1 == layers_.size());
    if (!is_last) {
      for (float& v : a) {
        v = v > 0.0f ? v : 0.0f;  // ReLU
      }
    } else if (output_activation_ == OutputActivation::kTanh) {
      for (float& v : a) {
        v = std::tanh(v);
      }
    }
    x = a.data();
    x_len = a.size();
  }
}

std::vector<float> Mlp::Forward(std::span<const float> input) {
  cached_input_.assign(input.begin(), input.end());
  ForwardInto(input, &cached_pre_, &cached_post_);
  return cached_post_.back();
}

std::vector<float> Mlp::Infer(std::span<const float> input) const {
  std::vector<std::vector<float>> pre;
  std::vector<std::vector<float>> post;
  ForwardInto(input, &pre, &post);
  return post.back();
}

std::vector<float> Mlp::InferBatch(std::span<const float> inputs, size_t batch) const {
  ASTRAEA_CHECK(inputs.size() == batch * static_cast<size_t>(dims_.front()));
  std::vector<float> x(inputs.begin(), inputs.end());
  size_t x_cols = static_cast<size_t>(dims_.front());
  std::vector<float> y;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const LayerView& layer = layers_[l];
    y.assign(batch * static_cast<size_t>(layer.out), 0.0f);
    const float* w = params_.data() + layer.w_offset;
    const float* b = params_.data() + layer.b_offset;
    for (size_t row = 0; row < batch; ++row) {
      const float* xin = x.data() + row * x_cols;
      float* yout = y.data() + row * static_cast<size_t>(layer.out);
      for (int o = 0; o < layer.out; ++o) {
        float acc = b[o];
        const float* wrow = w + static_cast<size_t>(o) * layer.in;
        for (int i = 0; i < layer.in; ++i) {
          acc += wrow[i] * xin[i];
        }
        yout[o] = acc;
      }
    }
    const bool is_last = (l + 1 == layers_.size());
    if (!is_last) {
      for (float& v : y) {
        v = v > 0.0f ? v : 0.0f;
      }
    } else if (output_activation_ == OutputActivation::kTanh) {
      for (float& v : y) {
        v = std::tanh(v);
      }
    }
    x = y;
    x_cols = static_cast<size_t>(layer.out);
  }
  return x;
}

std::vector<float> Mlp::Backward(std::span<const float> output_grad) {
  ASTRAEA_CHECK(!cached_post_.empty());
  ASTRAEA_CHECK(output_grad.size() == cached_post_.back().size());

  std::vector<float> delta(output_grad.begin(), output_grad.end());
  // Chain through the output activation.
  if (output_activation_ == OutputActivation::kTanh) {
    const auto& y = cached_post_.back();
    for (size_t i = 0; i < delta.size(); ++i) {
      delta[i] *= 1.0f - y[i] * y[i];
    }
  }

  for (size_t l = layers_.size(); l-- > 0;) {
    const LayerView& layer = layers_[l];
    const std::vector<float>& layer_input =
        (l == 0) ? cached_input_ : cached_post_[l - 1];
    float* gw = grads_.data() + layer.w_offset;
    float* gb = grads_.data() + layer.b_offset;
    const float* w = params_.data() + layer.w_offset;

    // Parameter gradients.
    for (int o = 0; o < layer.out; ++o) {
      const float d = delta[static_cast<size_t>(o)];
      gb[o] += d;
      float* grow = gw + static_cast<size_t>(o) * layer.in;
      for (int i = 0; i < layer.in; ++i) {
        grow[i] += d * layer_input[static_cast<size_t>(i)];
      }
    }

    // Input gradient for the layer below (or the caller, when l == 0).
    std::vector<float> prev_delta(static_cast<size_t>(layer.in), 0.0f);
    for (int o = 0; o < layer.out; ++o) {
      const float d = delta[static_cast<size_t>(o)];
      const float* row = w + static_cast<size_t>(o) * layer.in;
      for (int i = 0; i < layer.in; ++i) {
        prev_delta[static_cast<size_t>(i)] += d * row[i];
      }
    }
    if (l > 0) {
      // Chain through the ReLU of the layer below.
      const auto& z = cached_pre_[l - 1];
      for (size_t i = 0; i < prev_delta.size(); ++i) {
        if (z[i] <= 0.0f) {
          prev_delta[i] = 0.0f;
        }
      }
    }
    delta = std::move(prev_delta);
  }
  return delta;
}

void Mlp::ZeroGrad() { std::fill(grads_.begin(), grads_.end(), 0.0f); }

void Mlp::CopyParamsFrom(const Mlp& other) {
  ASTRAEA_CHECK(other.params_.size() == params_.size());
  params_ = other.params_;
}

void Mlp::PolyakUpdateFrom(const Mlp& other, float tau) {
  ASTRAEA_CHECK(other.params_.size() == params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    params_[i] = tau * other.params_[i] + (1.0f - tau) * params_[i];
  }
}

void Mlp::Save(BinaryWriter* writer) const {
  writer->WriteU32(kCheckpointMagic);
  writer->WriteU32(kCheckpointVersion);
  writer->WriteU32(static_cast<uint32_t>(output_activation_));
  writer->WriteU64(dims_.size());
  for (int d : dims_) {
    writer->WriteU32(static_cast<uint32_t>(d));
  }
  writer->WriteFloatVec(params_);
}

Mlp Mlp::Load(BinaryReader* reader) {
  if (reader->ReadU32() != kCheckpointMagic) {
    throw SerializationError("bad MLP checkpoint magic");
  }
  if (reader->ReadU32() != kCheckpointVersion) {
    throw SerializationError("unsupported MLP checkpoint version");
  }
  Mlp net;
  net.output_activation_ = static_cast<OutputActivation>(reader->ReadU32());
  const uint64_t ndims = reader->ReadU64();
  if (ndims < 3 || ndims > 64) {
    throw SerializationError("implausible MLP dimension count");
  }
  net.dims_.resize(ndims);
  for (auto& d : net.dims_) {
    d = static_cast<int>(reader->ReadU32());
  }
  net.BuildLayout();
  std::vector<float> params = reader->ReadFloatVec();
  if (params.size() != net.params_.size()) {
    throw SerializationError("MLP checkpoint parameter count mismatch");
  }
  net.params_ = std::move(params);
  return net;
}

Adam::Adam(size_t parameter_count, float lr, float beta1, float beta2, float eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps), m_(parameter_count, 0.0f),
      v_(parameter_count, 0.0f) {}

void Adam::Step(std::span<float> params, std::span<const float> grads, float scale) {
  ASTRAEA_CHECK(params.size() == m_.size());
  ASTRAEA_CHECK(grads.size() == m_.size());
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  const float inv_scale = 1.0f / scale;
  for (size_t i = 0; i < params.size(); ++i) {
    const float g = grads[i] * inv_scale;
    m_[i] = beta1_ * m_[i] + (1.0f - beta1_) * g;
    v_[i] = beta2_ * v_[i] + (1.0f - beta2_) * g * g;
    const float m_hat = m_[i] / bc1;
    const float v_hat = v_[i] / bc2;
    params[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
  }
}

}  // namespace astraea
