#include "src/nn/mlp.h"

#include <cmath>
#include <utility>

#include "src/util/logging.h"

namespace astraea {

namespace {
constexpr uint32_t kCheckpointMagic = 0x41'53'4D'4C;  // "ASML"
constexpr uint32_t kCheckpointVersion = 1;
}  // namespace

// Runtime-dispatched AVX2 variants of the hot batched kernels. The avx2 clone
// runs the same multiplies and adds in the same order as the baseline — AVX2
// does not enable FMA, so there is no fused rounding — it only widens how many
// of the independent tile lanes execute per instruction. Results stay
// bit-identical across clones and to the per-sample reference path. Disabled
// under sanitizers (ifunc resolvers run before their runtimes initialize).
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
#define ASTRAEA_HOT_CLONES __attribute__((target_clones("default", "avx2")))
#else
#define ASTRAEA_HOT_CLONES
#endif

Mlp::Mlp(std::vector<int> dims, OutputActivation output_activation, Rng* rng)
    : dims_(std::move(dims)), output_activation_(output_activation) {
  ASTRAEA_CHECK(dims_.size() >= 3);  // input, >=1 hidden, output
  for (int d : dims_) {
    ASTRAEA_CHECK(d > 0);
  }
  BuildLayout();
  InitParams(rng);
}

void Mlp::BuildLayout() {
  size_t offset = 0;
  layers_.clear();
  for (size_t i = 0; i + 1 < dims_.size(); ++i) {
    LayerView layer;
    layer.in = dims_[i];
    layer.out = dims_[i + 1];
    layer.w_offset = offset;
    offset += static_cast<size_t>(layer.in) * static_cast<size_t>(layer.out);
    layer.b_offset = offset;
    offset += static_cast<size_t>(layer.out);
    layers_.push_back(layer);
  }
  params_.assign(offset, 0.0f);
  grads_.assign(offset, 0.0f);
}

void Mlp::InitParams(Rng* rng) {
  // Xavier/Glorot uniform: U(-sqrt(6/(in+out)), +sqrt(6/(in+out))); zero bias.
  for (const LayerView& layer : layers_) {
    const float bound = std::sqrt(6.0f / static_cast<float>(layer.in + layer.out));
    for (size_t i = 0; i < static_cast<size_t>(layer.in) * layer.out; ++i) {
      params_[layer.w_offset + i] = static_cast<float>(rng->Uniform(-bound, bound));
    }
  }
}

void Mlp::ForwardInto(std::span<const float> input, std::vector<std::vector<float>>* pre,
                      std::vector<std::vector<float>>* post) const {
  ASTRAEA_CHECK(static_cast<int>(input.size()) == dims_.front());
  pre->resize(layers_.size());
  post->resize(layers_.size());
  const float* x = input.data();
  size_t x_len = input.size();
  for (size_t l = 0; l < layers_.size(); ++l) {
    const LayerView& layer = layers_[l];
    auto& z = (*pre)[l];
    z.assign(static_cast<size_t>(layer.out), 0.0f);
    const float* w = params_.data() + layer.w_offset;
    const float* b = params_.data() + layer.b_offset;
    for (int o = 0; o < layer.out; ++o) {
      float acc = b[o];
      const float* row = w + static_cast<size_t>(o) * layer.in;
      for (size_t i = 0; i < x_len; ++i) {
        acc += row[i] * x[i];
      }
      z[static_cast<size_t>(o)] = acc;
    }
    auto& a = (*post)[l];
    a = z;
    const bool is_last = (l + 1 == layers_.size());
    if (!is_last) {
      for (float& v : a) {
        v = v > 0.0f ? v : 0.0f;  // ReLU
      }
    } else if (output_activation_ == OutputActivation::kTanh) {
      for (float& v : a) {
        v = std::tanh(v);
      }
    }
    x = a.data();
    x_len = a.size();
  }
}

std::vector<float> Mlp::Forward(std::span<const float> input) {
  cached_input_.assign(input.begin(), input.end());
  ForwardInto(input, &cached_pre_, &cached_post_);
  return cached_post_.back();
}

void Mlp::ApplyOutputActivation(bool is_last, float* y, size_t n) const {
  if (!is_last) {
    for (size_t i = 0; i < n; ++i) {
      y[i] = y[i] > 0.0f ? y[i] : 0.0f;  // ReLU
    }
  } else if (output_activation_ == OutputActivation::kTanh) {
    for (size_t i = 0; i < n; ++i) {
      y[i] = std::tanh(y[i]);
    }
  }
}

ASTRAEA_HOT_CLONES
void Mlp::LayerForwardBatch(const LayerView& layer, bool is_last, const float* x, size_t batch,
                            float* y, float* pre) const {
  const float* w = params_.data() + layer.w_offset;
  const float* b = params_.data() + layer.b_offset;
  const size_t in = static_cast<size_t>(layer.in);
  const size_t out = static_cast<size_t>(layer.out);

  // Small batches (the per-step inference path) don't amortize a weight
  // transpose; plain row-major dot products win there. Both branches add each
  // output's terms in ascending-i order, so they agree bit-for-bit.
  constexpr size_t kTransposeBatchThreshold = 16;
  if (batch < kTransposeBatchThreshold) {
    for (size_t r = 0; r < batch; ++r) {
      const float* xr = x + r * in;
      float* yr = y + r * out;
      for (size_t o = 0; o < out; ++o) {
        const float* wrow = w + o * in;
        float acc = b[o];
        for (size_t i = 0; i < in; ++i) {
          acc += wrow[i] * xr[i];
        }
        yr[o] = acc;
      }
    }
    if (pre != nullptr) {
      std::copy(y, y + batch * out, pre);
    }
    ApplyOutputActivation(is_last, y, batch * out);
    return;
  }

  // Re-transpose the weights into [in x out] scratch: one pass over the
  // matrix, amortized across the batch, and it turns the inner loops below
  // into unit-stride AXPYs the compiler can vectorize. Each output still
  // accumulates its terms in ascending-i order, so results stay bit-identical
  // to the per-sample reference path (naive dot products).
  if (wt_scratch_.size() < in * out) {
    wt_scratch_.resize(in * out);
  }
  float* wt = wt_scratch_.data();
  {
    // 8x8-blocked transpose: full cache-line use on both the reads and the
    // strided writes.
    constexpr size_t kTB = 8;
    for (size_t ob = 0; ob < out; ob += kTB) {
      const size_t oend = ob + kTB <= out ? ob + kTB : out;
      for (size_t ib = 0; ib < in; ib += kTB) {
        const size_t iend = ib + kTB <= in ? ib + kTB : in;
        for (size_t o = ob; o < oend; ++o) {
          const float* wrow = w + o * in;
          for (size_t i = ib; i < iend; ++i) {
            wt[i * out + o] = wrow[i];
          }
        }
      }
    }
  }

  // 4-row x 16-output register tiles: the accumulator tile starts at the bias,
  // gathers the whole i-reduction without touching y, and is stored once. Each
  // output still sums b[o] + terms in ascending-i order — bit-identical to the
  // naive dot — while y traffic drops from O(batch*in*out) to O(batch*out).
  constexpr size_t kOTile = 16;
  size_t r = 0;
  for (; r + 4 <= batch; r += 4) {
    const float* x0 = x + (r + 0) * in;
    const float* x1 = x + (r + 1) * in;
    const float* x2 = x + (r + 2) * in;
    const float* x3 = x + (r + 3) * in;
    float* y0 = y + (r + 0) * out;
    float* y1 = y + (r + 1) * out;
    float* y2 = y + (r + 2) * out;
    float* y3 = y + (r + 3) * out;
    size_t o = 0;
    for (; o + kOTile <= out; o += kOTile) {
      float acc0[kOTile], acc1[kOTile], acc2[kOTile], acc3[kOTile];
      for (size_t k = 0; k < kOTile; ++k) {
        acc0[k] = b[o + k];
        acc1[k] = b[o + k];
        acc2[k] = b[o + k];
        acc3[k] = b[o + k];
      }
      for (size_t i = 0; i < in; ++i) {
        const float* wti = wt + i * out + o;
        const float a0 = x0[i];
        const float a1 = x1[i];
        const float a2 = x2[i];
        const float a3 = x3[i];
        for (size_t k = 0; k < kOTile; ++k) {
          acc0[k] += a0 * wti[k];
          acc1[k] += a1 * wti[k];
          acc2[k] += a2 * wti[k];
          acc3[k] += a3 * wti[k];
        }
      }
      for (size_t k = 0; k < kOTile; ++k) {
        y0[o + k] = acc0[k];
        y1[o + k] = acc1[k];
        y2[o + k] = acc2[k];
        y3[o + k] = acc3[k];
      }
    }
    for (; o < out; ++o) {
      const float* wrow = w + o * in;
      float acc0 = b[o], acc1 = b[o], acc2 = b[o], acc3 = b[o];
      for (size_t i = 0; i < in; ++i) {
        acc0 += wrow[i] * x0[i];
        acc1 += wrow[i] * x1[i];
        acc2 += wrow[i] * x2[i];
        acc3 += wrow[i] * x3[i];
      }
      y0[o] = acc0;
      y1[o] = acc1;
      y2[o] = acc2;
      y3[o] = acc3;
    }
  }
  for (; r < batch; ++r) {
    const float* xr = x + r * in;
    float* yr = y + r * out;
    for (size_t o = 0; o < out; ++o) {
      const float* wrow = w + o * in;
      float acc = b[o];
      for (size_t i = 0; i < in; ++i) {
        acc += wrow[i] * xr[i];
      }
      yr[o] = acc;
    }
  }

  if (pre != nullptr) {
    std::copy(y, y + batch * out, pre);
  }
  ApplyOutputActivation(is_last, y, batch * out);
}

std::vector<float> Mlp::Infer(std::span<const float> input) const {
  const auto out = InferBatchSpan(input, 1);
  return std::vector<float>(out.begin(), out.end());
}

std::vector<float> Mlp::InferBatch(std::span<const float> inputs, size_t batch) const {
  const auto out = InferBatchSpan(inputs, batch);
  return std::vector<float>(out.begin(), out.end());
}

std::span<const float> Mlp::InferBatchSpan(std::span<const float> inputs, size_t batch) const {
  ASTRAEA_CHECK(inputs.size() == batch * static_cast<size_t>(dims_.front()));
  // Ping-pong between two grow-only scratch buffers; the input itself serves
  // as the first layer's source, so nothing is copied between layers.
  const float* x = inputs.data();
  float* y = nullptr;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const LayerView& layer = layers_[l];
    std::vector<float>& dst = (l % 2 == 0) ? infer_scratch_a_ : infer_scratch_b_;
    const size_t need = batch * static_cast<size_t>(layer.out);
    if (dst.size() < need) {
      dst.resize(need);
    }
    y = dst.data();
    LayerForwardBatch(layer, /*is_last=*/l + 1 == layers_.size(), x, batch, y, nullptr);
    x = y;
  }
  return {y, batch * static_cast<size_t>(dims_.back())};
}

std::span<const float> Mlp::ForwardBatch(std::span<const float> inputs, size_t batch) {
  ASTRAEA_CHECK(inputs.size() == batch * static_cast<size_t>(dims_.front()));
  batch_cached_ = batch;
  batch_input_.assign(inputs.begin(), inputs.end());
  batch_pre_.resize(layers_.size());
  batch_post_.resize(layers_.size());
  const float* x = batch_input_.data();
  for (size_t l = 0; l < layers_.size(); ++l) {
    const LayerView& layer = layers_[l];
    const size_t need = batch * static_cast<size_t>(layer.out);
    if (batch_pre_[l].size() < need) {
      batch_pre_[l].resize(need);
    }
    if (batch_post_[l].size() < need) {
      batch_post_[l].resize(need);
    }
    LayerForwardBatch(layer, /*is_last=*/l + 1 == layers_.size(), x, batch,
                      batch_post_[l].data(), batch_pre_[l].data());
    x = batch_post_[l].data();
  }
  return {batch_post_.back().data(), batch * static_cast<size_t>(dims_.back())};
}

ASTRAEA_HOT_CLONES
std::span<const float> Mlp::BackwardBatch(std::span<const float> output_grads, size_t batch,
                                          bool need_input_grad) {
  ASTRAEA_CHECK(batch_cached_ == batch && batch > 0);
  const size_t out_dim = static_cast<size_t>(dims_.back());
  ASTRAEA_CHECK(output_grads.size() == batch * out_dim);

  std::vector<float>* delta_buf = &batch_delta_a_;
  std::vector<float>* prev_buf = &batch_delta_b_;
  if (delta_buf->size() < batch * out_dim) {
    delta_buf->resize(batch * out_dim);
  }
  std::copy(output_grads.begin(), output_grads.end(), delta_buf->begin());
  // Chain through the output activation.
  if (output_activation_ == OutputActivation::kTanh) {
    const float* y = batch_post_.back().data();
    float* d = delta_buf->data();
    for (size_t i = 0; i < batch * out_dim; ++i) {
      d[i] *= 1.0f - y[i] * y[i];
    }
  }

  for (size_t l = layers_.size(); l-- > 0;) {
    const LayerView& layer = layers_[l];
    const size_t in = static_cast<size_t>(layer.in);
    const size_t out = static_cast<size_t>(layer.out);
    const float* layer_input = (l == 0) ? batch_input_.data() : batch_post_[l - 1].data();
    const float* delta = delta_buf->data();
    float* gw = grads_.data() + layer.w_offset;
    float* gb = grads_.data() + layer.b_offset;
    const float* w = params_.data() + layer.w_offset;

    // Parameter gradients: G[o] += sum_r delta[r,o] * x[r], computed in
    // 4-output x 16-input register tiles. The deltas are first transposed to
    // column-major so the r-reduction reads them unit-stride (a [r,o] walk
    // strides by `out` and wastes 3/4 of every cache line). Each tile loads
    // the current gradient values once, adds the per-sample terms in row order
    // (row 0, row 1, ...), and stores once — the same accumulation sequence as
    // calling the per-sample Backward() in a loop, so results agree
    // bit-for-bit.
    if (dt_scratch_.size() < batch * out) {
      dt_scratch_.resize(batch * out);
    }
    float* dt = dt_scratch_.data();
    {
      // 8x8-blocked transpose: both the [r,o] reads and the [o,r] writes use
      // full cache lines instead of one element per line.
      constexpr size_t kTB = 8;
      for (size_t rb = 0; rb < batch; rb += kTB) {
        const size_t rend = rb + kTB <= batch ? rb + kTB : batch;
        for (size_t ob = 0; ob < out; ob += kTB) {
          const size_t oend = ob + kTB <= out ? ob + kTB : out;
          for (size_t rr = rb; rr < rend; ++rr) {
            const float* dr = delta + rr * out;
            for (size_t oo = ob; oo < oend; ++oo) {
              dt[oo * batch + rr] = dr[oo];
            }
          }
        }
      }
    }
    constexpr size_t kITile = 16;
    size_t o = 0;
    for (; o + 4 <= out; o += 4) {
      float* g0 = gw + (o + 0) * in;
      float* g1 = gw + (o + 1) * in;
      float* g2 = gw + (o + 2) * in;
      float* g3 = gw + (o + 3) * in;
      const float* dt0 = dt + (o + 0) * batch;
      const float* dt1 = dt + (o + 1) * batch;
      const float* dt2 = dt + (o + 2) * batch;
      const float* dt3 = dt + (o + 3) * batch;
      size_t i = 0;
      for (; i + kITile <= in; i += kITile) {
        float a0[kITile], a1[kITile], a2[kITile], a3[kITile];
        for (size_t k = 0; k < kITile; ++k) {
          a0[k] = g0[i + k];
          a1[k] = g1[i + k];
          a2[k] = g2[i + k];
          a3[k] = g3[i + k];
        }
        for (size_t r = 0; r < batch; ++r) {
          const float d0 = dt0[r];
          const float d1 = dt1[r];
          const float d2 = dt2[r];
          const float d3 = dt3[r];
          const float* xr = layer_input + r * in + i;
          for (size_t k = 0; k < kITile; ++k) {
            a0[k] += d0 * xr[k];
            a1[k] += d1 * xr[k];
            a2[k] += d2 * xr[k];
            a3[k] += d3 * xr[k];
          }
        }
        for (size_t k = 0; k < kITile; ++k) {
          g0[i + k] = a0[k];
          g1[i + k] = a1[k];
          g2[i + k] = a2[k];
          g3[i + k] = a3[k];
        }
      }
      for (size_t r = 0; r < batch; ++r) {
        const float* dr = delta + r * out + o;
        const float d0 = dr[0];
        const float d1 = dr[1];
        const float d2 = dr[2];
        const float d3 = dr[3];
        gb[o + 0] += d0;
        gb[o + 1] += d1;
        gb[o + 2] += d2;
        gb[o + 3] += d3;
        const float* xr = layer_input + r * in;
        for (size_t k = i; k < in; ++k) {
          g0[k] += d0 * xr[k];
          g1[k] += d1 * xr[k];
          g2[k] += d2 * xr[k];
          g3[k] += d3 * xr[k];
        }
      }
    }
    for (; o < out; ++o) {
      float* grow = gw + o * in;
      for (size_t r = 0; r < batch; ++r) {
        const float d = delta[r * out + o];
        gb[o] += d;
        const float* xr = layer_input + r * in;
        for (size_t i = 0; i < in; ++i) {
          grow[i] += d * xr[i];
        }
      }
    }

    // Input gradient for the layer below (or the caller, when l == 0):
    // prev[r] = sum_o delta[r,o] * W[o], computed in 4-row x 16-input register
    // tiles over the o-reduction. Per-element terms add from zero in
    // ascending-o order, matching the reference path exactly. Skipped at the
    // first layer when the caller doesn't want input gradients.
    if (l == 0 && !need_input_grad) {
      break;
    }
    if (prev_buf->size() < batch * in) {
      prev_buf->resize(batch * in);
    }
    float* prev = prev_buf->data();
    size_t r = 0;
    for (; r + 4 <= batch; r += 4) {
      float* p0 = prev + (r + 0) * in;
      float* p1 = prev + (r + 1) * in;
      float* p2 = prev + (r + 2) * in;
      float* p3 = prev + (r + 3) * in;
      const float* d0 = delta + (r + 0) * out;
      const float* d1 = delta + (r + 1) * out;
      const float* d2 = delta + (r + 2) * out;
      const float* d3 = delta + (r + 3) * out;
      size_t i = 0;
      for (; i + kITile <= in; i += kITile) {
        float a0[kITile] = {}, a1[kITile] = {}, a2[kITile] = {}, a3[kITile] = {};
        for (size_t oo = 0; oo < out; ++oo) {
          const float* row = w + oo * in + i;
          const float c0 = d0[oo];
          const float c1 = d1[oo];
          const float c2 = d2[oo];
          const float c3 = d3[oo];
          for (size_t k = 0; k < kITile; ++k) {
            a0[k] += c0 * row[k];
            a1[k] += c1 * row[k];
            a2[k] += c2 * row[k];
            a3[k] += c3 * row[k];
          }
        }
        for (size_t k = 0; k < kITile; ++k) {
          p0[i + k] = a0[k];
          p1[i + k] = a1[k];
          p2[i + k] = a2[k];
          p3[i + k] = a3[k];
        }
      }
      for (; i < in; ++i) {
        float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
        for (size_t oo = 0; oo < out; ++oo) {
          const float wv = w[oo * in + i];
          a0 += d0[oo] * wv;
          a1 += d1[oo] * wv;
          a2 += d2[oo] * wv;
          a3 += d3[oo] * wv;
        }
        p0[i] = a0;
        p1[i] = a1;
        p2[i] = a2;
        p3[i] = a3;
      }
    }
    for (; r < batch; ++r) {
      float* pr = prev + r * in;
      const float* dr = delta + r * out;
      std::fill(pr, pr + in, 0.0f);
      for (size_t oo = 0; oo < out; ++oo) {
        const float d = dr[oo];
        const float* row = w + oo * in;
        for (size_t i = 0; i < in; ++i) {
          pr[i] += d * row[i];
        }
      }
    }
    if (l > 0) {
      // Chain through the ReLU of the layer below.
      const float* z = batch_pre_[l - 1].data();
      for (size_t i = 0; i < batch * in; ++i) {
        if (z[i] <= 0.0f) {
          prev[i] = 0.0f;
        }
      }
    }
    std::swap(delta_buf, prev_buf);
  }
  if (!need_input_grad) {
    return {};
  }
  return {delta_buf->data(), batch * static_cast<size_t>(dims_.front())};
}

std::vector<float> Mlp::Backward(std::span<const float> output_grad) {
  ASTRAEA_CHECK(!cached_post_.empty());
  ASTRAEA_CHECK(output_grad.size() == cached_post_.back().size());

  std::vector<float> delta(output_grad.begin(), output_grad.end());
  // Chain through the output activation.
  if (output_activation_ == OutputActivation::kTanh) {
    const auto& y = cached_post_.back();
    for (size_t i = 0; i < delta.size(); ++i) {
      delta[i] *= 1.0f - y[i] * y[i];
    }
  }

  for (size_t l = layers_.size(); l-- > 0;) {
    const LayerView& layer = layers_[l];
    const std::vector<float>& layer_input =
        (l == 0) ? cached_input_ : cached_post_[l - 1];
    float* gw = grads_.data() + layer.w_offset;
    float* gb = grads_.data() + layer.b_offset;
    const float* w = params_.data() + layer.w_offset;

    // Parameter gradients.
    for (int o = 0; o < layer.out; ++o) {
      const float d = delta[static_cast<size_t>(o)];
      gb[o] += d;
      float* grow = gw + static_cast<size_t>(o) * layer.in;
      for (int i = 0; i < layer.in; ++i) {
        grow[i] += d * layer_input[static_cast<size_t>(i)];
      }
    }

    // Input gradient for the layer below (or the caller, when l == 0).
    std::vector<float> prev_delta(static_cast<size_t>(layer.in), 0.0f);
    for (int o = 0; o < layer.out; ++o) {
      const float d = delta[static_cast<size_t>(o)];
      const float* row = w + static_cast<size_t>(o) * layer.in;
      for (int i = 0; i < layer.in; ++i) {
        prev_delta[static_cast<size_t>(i)] += d * row[i];
      }
    }
    if (l > 0) {
      // Chain through the ReLU of the layer below.
      const auto& z = cached_pre_[l - 1];
      for (size_t i = 0; i < prev_delta.size(); ++i) {
        if (z[i] <= 0.0f) {
          prev_delta[i] = 0.0f;
        }
      }
    }
    delta = std::move(prev_delta);
  }
  return delta;
}

void Mlp::ZeroGrad() { std::fill(grads_.begin(), grads_.end(), 0.0f); }

void Mlp::CopyParamsFrom(const Mlp& other) {
  ASTRAEA_CHECK(other.params_.size() == params_.size());
  params_ = other.params_;
}

void Mlp::PolyakUpdateFrom(const Mlp& other, float tau) {
  ASTRAEA_CHECK(other.params_.size() == params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    params_[i] = tau * other.params_[i] + (1.0f - tau) * params_[i];
  }
}

void Mlp::Save(BinaryWriter* writer) const {
  writer->WriteU32(kCheckpointMagic);
  writer->WriteU32(kCheckpointVersion);
  writer->WriteU32(static_cast<uint32_t>(output_activation_));
  writer->WriteU64(dims_.size());
  for (int d : dims_) {
    writer->WriteU32(static_cast<uint32_t>(d));
  }
  writer->WriteFloatVec(params_);
}

Mlp Mlp::Load(BinaryReader* reader) {
  if (reader->ReadU32() != kCheckpointMagic) {
    throw SerializationError("bad MLP checkpoint magic");
  }
  if (reader->ReadU32() != kCheckpointVersion) {
    throw SerializationError("unsupported MLP checkpoint version");
  }
  Mlp net;
  net.output_activation_ = static_cast<OutputActivation>(reader->ReadU32());
  const uint64_t ndims = reader->ReadU64();
  if (ndims < 3 || ndims > 64) {
    throw SerializationError("implausible MLP dimension count");
  }
  net.dims_.resize(ndims);
  for (auto& d : net.dims_) {
    d = static_cast<int>(reader->ReadU32());
  }
  // Validate the layer sizes before BuildLayout allocates anything: a
  // truncated or corrupt checkpoint (stale file, failed hot-reload source)
  // must surface as SerializationError — which every caller handles with a
  // fallback — not as bad_alloc from a multi-gigabyte resize.
  uint64_t expected_params = 0;
  for (size_t i = 0; i + 1 < net.dims_.size(); ++i) {
    const int in = net.dims_[i];
    const int out = net.dims_[i + 1];
    if (in < 1 || out < 1 || in > (1 << 20) || out > (1 << 20)) {
      throw SerializationError("implausible MLP layer size in checkpoint");
    }
    expected_params += (static_cast<uint64_t>(in) + 1) * static_cast<uint64_t>(out);
  }
  if (expected_params * sizeof(float) > reader->remaining()) {
    throw SerializationError("MLP checkpoint truncated: fewer bytes than parameters");
  }
  net.BuildLayout();
  std::vector<float> params = reader->ReadFloatVec();
  if (params.size() != net.params_.size()) {
    throw SerializationError("MLP checkpoint parameter count mismatch");
  }
  net.params_ = std::move(params);
  return net;
}

Adam::Adam(size_t parameter_count, float lr, float beta1, float beta2, float eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps), m_(parameter_count, 0.0f),
      v_(parameter_count, 0.0f) {}

void Adam::SaveState(BinaryWriter* writer) const {
  writer->WriteF32(lr_);
  writer->WriteF32(beta1_);
  writer->WriteF32(beta2_);
  writer->WriteF32(eps_);
  writer->WriteU64(static_cast<uint64_t>(t_));
  writer->WriteFloatVec(m_);
  writer->WriteFloatVec(v_);
}

void Adam::LoadState(BinaryReader* reader) {
  const float lr = reader->ReadF32();
  const float beta1 = reader->ReadF32();
  const float beta2 = reader->ReadF32();
  const float eps = reader->ReadF32();
  const uint64_t t = reader->ReadU64();
  std::vector<float> m = reader->ReadFloatVec();
  std::vector<float> v = reader->ReadFloatVec();
  if (m.size() != m_.size() || v.size() != v_.size()) {
    throw SerializationError("Adam state size mismatch in checkpoint");
  }
  lr_ = lr;
  beta1_ = beta1;
  beta2_ = beta2;
  eps_ = eps;
  t_ = static_cast<int64_t>(t);
  m_ = std::move(m);
  v_ = std::move(v);
}

ASTRAEA_HOT_CLONES
void Adam::Step(std::span<float> params, std::span<const float> grads, float scale) {
  ASTRAEA_CHECK(params.size() == m_.size());
  ASTRAEA_CHECK(grads.size() == m_.size());
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  const float inv_scale = 1.0f / scale;
  for (size_t i = 0; i < params.size(); ++i) {
    const float g = grads[i] * inv_scale;
    m_[i] = beta1_ * m_[i] + (1.0f - beta1_) * g;
    v_[i] = beta2_ * v_[i] + (1.0f - beta2_) * g * g;
    const float m_hat = m_[i] / bc1;
    const float v_hat = v_[i] / bc2;
    params[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
  }
}

}  // namespace astraea
