// A small fully-connected network with ReLU hidden layers and a configurable
// output activation, storing all parameters in one flat array so the optimizer
// can treat the model as a single vector.
//
// Backward() both accumulates parameter gradients and returns the gradient
// with respect to the input — the latter is what lets the deterministic policy
// gradient flow from the critic's output through its action input into the
// actor (paper Eq. 9 / DDPG-style chain rule).

#ifndef SRC_NN_MLP_H_
#define SRC_NN_MLP_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/util/rng.h"
#include "src/util/serialization.h"

namespace astraea {

enum class OutputActivation : uint32_t { kIdentity = 0, kTanh = 1 };

class Mlp {
 public:
  // `dims` = {input, hidden..., output}; at least one hidden layer.
  Mlp(std::vector<int> dims, OutputActivation output_activation, Rng* rng);

  // Runs the network; caches activations for a subsequent Backward().
  std::vector<float> Forward(std::span<const float> input);

  // Inference-only forward (no caches touched); usable on a const model.
  std::vector<float> Infer(std::span<const float> input) const;

  // Batched inference: `inputs` is row-major [batch x input_size]; returns
  // [batch x output_size]. Processes layer-by-layer across the whole batch so
  // the weight matrices stay cache-resident — the mechanism behind the
  // inference service's sublinear scaling (paper §4 / Fig. 16).
  std::vector<float> InferBatch(std::span<const float> inputs, size_t batch) const;

  // Backpropagates dL/d(output); accumulates into the gradient buffer and
  // returns dL/d(input). Must follow a Forward() with the same input.
  std::vector<float> Backward(std::span<const float> output_grad);

  void ZeroGrad();

  std::span<float> params() { return params_; }
  std::span<const float> params() const { return params_; }
  std::span<float> grads() { return grads_; }

  int input_size() const { return dims_.front(); }
  int output_size() const { return dims_.back(); }
  const std::vector<int>& dims() const { return dims_; }
  size_t parameter_count() const { return params_.size(); }

  // Hard copy of parameters from a same-shaped network.
  void CopyParamsFrom(const Mlp& other);
  // Polyak averaging: params = tau * other + (1 - tau) * params.
  void PolyakUpdateFrom(const Mlp& other, float tau);

  void Save(BinaryWriter* writer) const;
  static Mlp Load(BinaryReader* reader);

 private:
  Mlp() = default;  // for Load

  struct LayerView {
    size_t w_offset;  // row-major [out x in]
    size_t b_offset;
    int in;
    int out;
  };

  void BuildLayout();
  void InitParams(Rng* rng);
  void ForwardInto(std::span<const float> input, std::vector<std::vector<float>>* pre,
                   std::vector<std::vector<float>>* post) const;

  std::vector<int> dims_;
  OutputActivation output_activation_ = OutputActivation::kIdentity;
  std::vector<LayerView> layers_;
  std::vector<float> params_;
  std::vector<float> grads_;

  // Caches from the last Forward() (input copy + per-layer pre/post activations).
  std::vector<float> cached_input_;
  std::vector<std::vector<float>> cached_pre_;
  std::vector<std::vector<float>> cached_post_;
};

// Adam optimizer over a flat parameter vector.
class Adam {
 public:
  Adam(size_t parameter_count, float lr, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f);

  // Applies one step using `grads` (same length as params), scaled by 1/scale
  // (pass the batch size when gradients were accumulated over a batch).
  void Step(std::span<float> params, std::span<const float> grads, float scale = 1.0f);

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }
  int64_t steps() const { return t_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  int64_t t_ = 0;
  std::vector<float> m_;
  std::vector<float> v_;
};

}  // namespace astraea

#endif  // SRC_NN_MLP_H_
