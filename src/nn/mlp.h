// A small fully-connected network with ReLU hidden layers and a configurable
// output activation, storing all parameters in one flat array so the optimizer
// can treat the model as a single vector.
//
// Backward() both accumulates parameter gradients and returns the gradient
// with respect to the input — the latter is what lets the deterministic policy
// gradient flow from the critic's output through its action input into the
// actor (paper Eq. 9 / DDPG-style chain rule).
//
// The batched entry points (ForwardBatch / BackwardBatch / InferBatch) operate
// on contiguous row-major [batch x dim] buffers and reuse internal scratch and
// activation caches across calls, so steady-state batched work performs no heap
// allocation and each weight matrix is streamed once per batch instead of once
// per sample. The per-sample Forward()/Backward() pair is retained as the
// reference implementation that the batched kernels are parity-tested against.
//
// Thread-safety: one Mlp instance may be used by one thread at a time (even
// Infer/InferBatch use mutable scratch); use per-thread copies to parallelize.

#ifndef SRC_NN_MLP_H_
#define SRC_NN_MLP_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/util/rng.h"
#include "src/util/serialization.h"

namespace astraea {

enum class OutputActivation : uint32_t { kIdentity = 0, kTanh = 1 };

class Mlp {
 public:
  // `dims` = {input, hidden..., output}; at least one hidden layer.
  Mlp(std::vector<int> dims, OutputActivation output_activation, Rng* rng);

  // Runs the network; caches activations for a subsequent Backward().
  std::vector<float> Forward(std::span<const float> input);

  // Inference-only forward (no caches touched); usable on a const model.
  std::vector<float> Infer(std::span<const float> input) const;

  // Batched inference: `inputs` is row-major [batch x input_size]; returns
  // [batch x output_size]. Processes layer-by-layer across the whole batch so
  // the weight matrices stay cache-resident — the mechanism behind the
  // inference service's sublinear scaling (paper §4 / Fig. 16).
  std::vector<float> InferBatch(std::span<const float> inputs, size_t batch) const;

  // Allocation-free variant of InferBatch: the returned span points into a
  // ping-pong scratch buffer owned by the network and stays valid until the
  // next batched call on this instance.
  std::span<const float> InferBatchSpan(std::span<const float> inputs, size_t batch) const;

  // Batched training forward: caches flat per-layer activations for a
  // subsequent BackwardBatch(). Returns a [batch x output_size] view valid
  // until the next batched call on this instance.
  std::span<const float> ForwardBatch(std::span<const float> inputs, size_t batch);

  // Backpropagates dL/d(output); accumulates into the gradient buffer and
  // returns dL/d(input). Must follow a Forward() with the same input.
  std::vector<float> Backward(std::span<const float> output_grad);

  // Batched backprop: `output_grads` is row-major [batch x output_size].
  // Accumulates parameter gradients (identical accumulation order to calling
  // Backward() per sample) and returns a [batch x input_size] view of the
  // input gradients, valid until the next batched call. Must follow a
  // ForwardBatch() with the same batch. Callers that only want parameter
  // gradients (e.g. a critic fit) pass need_input_grad = false to skip the
  // first layer's input-gradient pass; the returned span is then empty.
  std::span<const float> BackwardBatch(std::span<const float> output_grads, size_t batch,
                                       bool need_input_grad = true);

  void ZeroGrad();

  std::span<float> params() { return params_; }
  std::span<const float> params() const { return params_; }
  std::span<float> grads() { return grads_; }

  int input_size() const { return dims_.front(); }
  int output_size() const { return dims_.back(); }
  const std::vector<int>& dims() const { return dims_; }
  size_t parameter_count() const { return params_.size(); }

  // Hard copy of parameters from a same-shaped network.
  void CopyParamsFrom(const Mlp& other);
  // Polyak averaging: params = tau * other + (1 - tau) * params.
  void PolyakUpdateFrom(const Mlp& other, float tau);

  void Save(BinaryWriter* writer) const;
  static Mlp Load(BinaryReader* reader);

 private:
  Mlp() = default;  // for Load

  struct LayerView {
    size_t w_offset;  // row-major [out x in]
    size_t b_offset;
    int in;
    int out;
  };

  void BuildLayout();
  void InitParams(Rng* rng);
  void ForwardInto(std::span<const float> input, std::vector<std::vector<float>>* pre,
                   std::vector<std::vector<float>>* post) const;
  // One dense layer over a whole batch: y[r] = W x[r] + b, then the layer's
  // activation. `pre` (optional) receives the pre-activation values.
  void LayerForwardBatch(const LayerView& layer, bool is_last, const float* x, size_t batch,
                         float* y, float* pre) const;
  void ApplyOutputActivation(bool is_last, float* y, size_t n) const;

  std::vector<int> dims_;
  OutputActivation output_activation_ = OutputActivation::kIdentity;
  std::vector<LayerView> layers_;
  std::vector<float> params_;
  std::vector<float> grads_;

  // Caches from the last Forward() (input copy + per-layer pre/post activations).
  std::vector<float> cached_input_;
  std::vector<std::vector<float>> cached_pre_;
  std::vector<std::vector<float>> cached_post_;

  // Flat caches from the last ForwardBatch() (row-major [batch x width]).
  size_t batch_cached_ = 0;
  std::vector<float> batch_input_;
  std::vector<std::vector<float>> batch_pre_;
  std::vector<std::vector<float>> batch_post_;
  // Ping-pong delta buffers for BackwardBatch (result aliases one of them).
  std::vector<float> batch_delta_a_;
  std::vector<float> batch_delta_b_;
  // Ping-pong scratch for inference-only batched passes; mutable so Infer /
  // InferBatch stay const (they still make the instance single-thread only).
  mutable std::vector<float> infer_scratch_a_;
  mutable std::vector<float> infer_scratch_b_;
  // Per-layer transposed weights, rebuilt on each batched layer pass.
  mutable std::vector<float> wt_scratch_;
  // Column-major copy of the current deltas ([out x batch]), rebuilt per layer
  // in BackwardBatch so the parameter-gradient tiles read them unit-stride.
  std::vector<float> dt_scratch_;
};

// Adam optimizer over a flat parameter vector.
class Adam {
 public:
  Adam(size_t parameter_count, float lr, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f);

  // Applies one step using `grads` (same length as params), scaled by 1/scale
  // (pass the batch size when gradients were accumulated over a batch).
  void Step(std::span<float> params, std::span<const float> grads, float scale = 1.0f);

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }
  int64_t steps() const { return t_; }

  // Full optimizer-state (de)serialization: hyperparameters, step count and
  // both moment vectors. LoadState validates the moment-vector length against
  // this instance's parameter count and throws SerializationError on mismatch.
  void SaveState(BinaryWriter* writer) const;
  void LoadState(BinaryReader* reader);

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  int64_t t_ = 0;
  std::vector<float> m_;
  std::vector<float> v_;
};

}  // namespace astraea

#endif  // SRC_NN_MLP_H_
