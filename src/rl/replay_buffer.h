// Uniform-sampling experience replay for the multi-agent trainer.
//
// One transition per (flow, MTP): the flow's local state s, the aggregated
// global state g (critic-only input, Table 2), the action a, the shared global
// reward r, and the successor states. All flow agents share this buffer —
// that is the "centralized training" half of the paper's CTDE design.

#ifndef SRC_RL_REPLAY_BUFFER_H_
#define SRC_RL_REPLAY_BUFFER_H_

#include <cstddef>
#include <vector>

#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/serialization.h"

namespace astraea {

struct Transition {
  std::vector<float> global_state;
  std::vector<float> local_state;
  std::vector<float> action;
  float reward = 0.0f;
  std::vector<float> next_global_state;
  std::vector<float> next_local_state;
  bool terminal = false;
};

// Write side of experience collection. Environments push transitions through
// this so the same MultiFlowEnv can feed the serial ReplayBuffer directly or
// a per-actor staging vector that the vectorized trainer later interleaves
// into its sharded buffer in a deterministic order.
class TransitionSink {
 public:
  virtual ~TransitionSink() = default;
  virtual void Add(Transition t) = 0;
};

// Read/sampling side consumed by Td3Trainer::Update. Implemented by the
// serial ReplayBuffer and by the vectorized trainer's ShardedReplayBuffer;
// both sample uniformly with replacement using the caller's Rng, so the
// learner's random stream is identical whichever backing store is in use.
class ReplaySource {
 public:
  virtual ~ReplaySource() = default;
  virtual size_t size() const = 0;
  virtual const Transition& at(size_t i) const = 0;
  // Uniformly samples `n` indices in [0, size()) with replacement.
  virtual std::vector<size_t> SampleIndices(size_t n, Rng* rng) const = 0;
};

// Appends into a caller-owned vector; the vectorized trainer's per-actor
// staging area between the parallel advance and the interleaved drain.
class VectorSink : public TransitionSink {
 public:
  explicit VectorSink(std::vector<Transition>* out) : out_(out) {}
  void Add(Transition t) override { out_->push_back(std::move(t)); }

 private:
  std::vector<Transition>* out_;
};

class ReplayBuffer : public TransitionSink, public ReplaySource {
 public:
  explicit ReplayBuffer(size_t capacity) : capacity_(capacity) {
    ASTRAEA_CHECK(capacity_ > 0);
  }

  void Add(Transition t) override {
    if (entries_.size() < capacity_) {
      entries_.push_back(std::move(t));
    } else {
      entries_[write_pos_] = std::move(t);
    }
    write_pos_ = (write_pos_ + 1) % capacity_;
    ++total_added_;
  }

  size_t size() const override { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t total_added() const { return total_added_; }
  bool empty() const { return entries_.empty(); }

  const Transition& at(size_t i) const override { return entries_[i]; }

  // Uniformly samples `n` indices (with replacement).
  std::vector<size_t> SampleIndices(size_t n, Rng* rng) const override {
    ASTRAEA_CHECK(!entries_.empty());
    std::vector<size_t> out(n);
    for (auto& idx : out) {
      idx = static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(entries_.size()) - 1));
    }
    return out;
  }

  // Serializes the entire buffer — ring contents, write cursor and lifetime
  // counter — so a resumed training run samples exactly what an uninterrupted
  // one would.
  void Save(BinaryWriter* writer) const {
    writer->WriteU64(capacity_);
    writer->WriteU64(write_pos_);
    writer->WriteU64(total_added_);
    writer->WriteU64(entries_.size());
    for (const Transition& t : entries_) {
      writer->WriteFloatVec(t.global_state);
      writer->WriteFloatVec(t.local_state);
      writer->WriteFloatVec(t.action);
      writer->WriteF32(t.reward);
      writer->WriteFloatVec(t.next_global_state);
      writer->WriteFloatVec(t.next_local_state);
      writer->WriteU32(t.terminal ? 1 : 0);
    }
  }

  void Load(BinaryReader* reader) {
    const uint64_t capacity = reader->ReadU64();
    const uint64_t write_pos = reader->ReadU64();
    const uint64_t total_added = reader->ReadU64();
    const uint64_t count = reader->ReadU64();
    if (capacity == 0 || count > capacity || write_pos >= capacity) {
      throw SerializationError("inconsistent replay buffer geometry in checkpoint");
    }
    std::vector<Transition> entries;
    entries.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      Transition t;
      t.global_state = reader->ReadFloatVec();
      t.local_state = reader->ReadFloatVec();
      t.action = reader->ReadFloatVec();
      t.reward = reader->ReadF32();
      t.next_global_state = reader->ReadFloatVec();
      t.next_local_state = reader->ReadFloatVec();
      t.terminal = reader->ReadU32() != 0;
      entries.push_back(std::move(t));
    }
    capacity_ = capacity;
    write_pos_ = write_pos;
    total_added_ = total_added;
    entries_ = std::move(entries);
  }

 private:
  size_t capacity_;
  size_t write_pos_ = 0;
  uint64_t total_added_ = 0;
  std::vector<Transition> entries_;
};

}  // namespace astraea

#endif  // SRC_RL_REPLAY_BUFFER_H_
