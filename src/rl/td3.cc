#include "src/rl/td3.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace astraea {

namespace {

// Scales `grads` in place so its global L2 norm is at most `max_norm`
// (after dividing by `scale`, the batch size). Returns the pre-clip norm.
double ClipGradNorm(std::span<float> grads, float max_norm, float scale) {
  double sq = 0.0;
  for (float g : grads) {
    const double v = g / scale;
    sq += v * v;
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm) {
    const float factor = static_cast<float>(max_norm / norm);
    for (float& g : grads) {
      g *= factor;
    }
  }
  return norm;
}

std::vector<int> WithEndpoints(int in, const std::vector<int>& hidden, int out) {
  std::vector<int> dims;
  dims.push_back(in);
  dims.insert(dims.end(), hidden.begin(), hidden.end());
  dims.push_back(out);
  return dims;
}

}  // namespace

Td3Trainer::Td3Trainer(Td3Config config, Rng* rng) : config_(config) {
  ASTRAEA_CHECK(config_.local_state_dim > 0);
  ASTRAEA_CHECK(config_.global_state_dim >= 0);
  ASTRAEA_CHECK(config_.action_dim > 0);

  const auto actor_dims =
      WithEndpoints(config_.local_state_dim, config_.hidden, config_.action_dim);
  const int critic_in = config_.global_state_dim + config_.local_state_dim + config_.action_dim;
  const auto critic_dims = WithEndpoints(critic_in, config_.hidden, 1);

  actor_ = std::make_unique<Mlp>(actor_dims, OutputActivation::kTanh, rng);
  critic1_ = std::make_unique<Mlp>(critic_dims, OutputActivation::kIdentity, rng);
  critic2_ = std::make_unique<Mlp>(critic_dims, OutputActivation::kIdentity, rng);
  target_actor_ = std::make_unique<Mlp>(actor_dims, OutputActivation::kTanh, rng);
  target_critic1_ = std::make_unique<Mlp>(critic_dims, OutputActivation::kIdentity, rng);
  target_critic2_ = std::make_unique<Mlp>(critic_dims, OutputActivation::kIdentity, rng);
  target_actor_->CopyParamsFrom(*actor_);
  target_critic1_->CopyParamsFrom(*critic1_);
  target_critic2_->CopyParamsFrom(*critic2_);

  actor_opt_ = std::make_unique<Adam>(actor_->parameter_count(), config_.actor_lr);
  critic1_opt_ = std::make_unique<Adam>(critic1_->parameter_count(), config_.critic_lr);
  critic2_opt_ = std::make_unique<Adam>(critic2_->parameter_count(), config_.critic_lr);
}

std::vector<float> Td3Trainer::CriticInput(const std::vector<float>& g,
                                           const std::vector<float>& s,
                                           std::span<const float> a) const {
  std::vector<float> in;
  in.reserve(g.size() + s.size() + a.size());
  in.insert(in.end(), g.begin(), g.end());
  in.insert(in.end(), s.begin(), s.end());
  in.insert(in.end(), a.begin(), a.end());
  ASTRAEA_CHECK(static_cast<int>(in.size()) ==
                config_.global_state_dim + config_.local_state_dim + config_.action_dim);
  return in;
}

std::vector<float> Td3Trainer::Act(std::span<const float> local_state) const {
  return actor_->Infer(local_state);
}

std::vector<float> Td3Trainer::ActWithNoise(std::span<const float> local_state, float noise_std,
                                            Rng* rng) const {
  std::vector<float> action = Act(local_state);
  for (float& a : action) {
    a = std::clamp(a + static_cast<float>(rng->Normal(0.0, noise_std)), -1.0f, 1.0f);
  }
  return action;
}

Td3Diagnostics Td3Trainer::Update(const ReplaySource& buffer, Rng* rng) {
  Td3Diagnostics diag;
  if (buffer.size() < config_.batch_size) {
    return diag;
  }
  const std::vector<size_t> batch = buffer.SampleIndices(config_.batch_size, rng);
  const size_t B = config_.batch_size;
  const size_t sdim = static_cast<size_t>(config_.local_state_dim);
  const size_t gdim = static_cast<size_t>(config_.global_state_dim);
  const size_t adim = static_cast<size_t>(config_.action_dim);
  const size_t cdim = gdim + sdim + adim;

  // ---- Gather the batch into flat row-major buffers.
  scratch_.local.resize(B * sdim);
  scratch_.next_local.resize(B * sdim);
  scratch_.next_in.resize(B * cdim);
  scratch_.in.resize(B * cdim);
  scratch_.actor_in.resize(B * cdim);
  scratch_.y.resize(B);
  scratch_.dq.resize(B);
  for (size_t r = 0; r < B; ++r) {
    const Transition& t = buffer.at(batch[r]);
    ASTRAEA_CHECK(t.local_state.size() == sdim && t.next_local_state.size() == sdim);
    ASTRAEA_CHECK(t.global_state.size() == gdim && t.next_global_state.size() == gdim);
    ASTRAEA_CHECK(t.action.size() == adim);
    std::copy(t.local_state.begin(), t.local_state.end(), scratch_.local.begin() + r * sdim);
    std::copy(t.next_local_state.begin(), t.next_local_state.end(),
              scratch_.next_local.begin() + r * sdim);
    float* in = scratch_.in.data() + r * cdim;
    std::copy(t.global_state.begin(), t.global_state.end(), in);
    std::copy(t.local_state.begin(), t.local_state.end(), in + gdim);
    std::copy(t.action.begin(), t.action.end(), in + gdim + sdim);
    float* nin = scratch_.next_in.data() + r * cdim;
    std::copy(t.next_global_state.begin(), t.next_global_state.end(), nin);
    std::copy(t.next_local_state.begin(), t.next_local_state.end(), nin + gdim);
    // Actor-probe inputs share the (g, s) prefix; the action slot is filled
    // after the actor's batched forward below.
    float* ain = scratch_.actor_in.data() + r * cdim;
    std::copy(t.global_state.begin(), t.global_state.end(), ain);
    std::copy(t.local_state.begin(), t.local_state.end(), ain + gdim);
  }

  // ---- TD targets: y = r + gamma * (1 - done) * min(Q1', Q2')(g', s', a~).
  const auto next_action = target_actor_->InferBatchSpan(scratch_.next_local, B);
  scratch_.next_action.assign(next_action.begin(), next_action.end());
  for (size_t r = 0; r < B; ++r) {
    float* a = scratch_.next_action.data() + r * adim;
    for (size_t k = 0; k < adim; ++k) {
      const float noise =
          std::clamp(static_cast<float>(rng->Normal(0.0, config_.target_noise_std)),
                     -config_.target_noise_clip, config_.target_noise_clip);
      a[k] = std::clamp(a[k] + noise, -1.0f, 1.0f);
    }
    std::copy(a, a + adim, scratch_.next_in.data() + r * cdim + gdim + sdim);
  }
  // The two target-critic passes ping-pong over the same scratch, so copy the
  // first result out before running the second.
  const auto q1_next_view = target_critic1_->InferBatchSpan(scratch_.next_in, B);
  scratch_.dq.assign(q1_next_view.begin(), q1_next_view.end());  // borrow as q1' store
  const auto q2_next = target_critic2_->InferBatchSpan(scratch_.next_in, B);
  for (size_t r = 0; r < B; ++r) {
    const Transition& t = buffer.at(batch[r]);
    scratch_.y[r] =
        t.reward +
        (t.terminal ? 0.0f : config_.gamma * std::min(scratch_.dq[r], q2_next[r]));
  }

  // ---- Critic fit.
  critic1_->ZeroGrad();
  critic2_->ZeroGrad();
  const auto q1 = critic1_->ForwardBatch(scratch_.in, B);
  for (size_t r = 0; r < B; ++r) {
    scratch_.dq[r] = 2.0f * (q1[r] - scratch_.y[r]);
  }
  double loss1_acc = 0.0;
  for (size_t r = 0; r < B; ++r) {
    loss1_acc += 0.5 * (q1[r] - scratch_.y[r]) * (q1[r] - scratch_.y[r]);
  }
  critic1_->BackwardBatch(scratch_.dq, B, /*need_input_grad=*/false);
  const auto q2 = critic2_->ForwardBatch(scratch_.in, B);
  double loss2_acc = 0.0;
  for (size_t r = 0; r < B; ++r) {
    loss2_acc += 0.5 * (q2[r] - scratch_.y[r]) * (q2[r] - scratch_.y[r]);
    scratch_.dq[r] = 2.0f * (q2[r] - scratch_.y[r]);
  }
  critic2_->BackwardBatch(scratch_.dq, B, /*need_input_grad=*/false);
  const float batch_scale = static_cast<float>(B);
  const double c1_norm = ClipGradNorm(critic1_->grads(), config_.grad_clip_norm, batch_scale);
  const double c2_norm = ClipGradNorm(critic2_->grads(), config_.grad_clip_norm, batch_scale);
  critic1_opt_->Step(critic1_->params(), critic1_->grads(), batch_scale);
  critic2_opt_->Step(critic2_->params(), critic2_->grads(), batch_scale);
  diag.critic_loss = (loss1_acc + loss2_acc) / static_cast<double>(B);
  diag.critic_grad_norm = 0.5 * (c1_norm + c2_norm);

  ++update_count_;
  diag.updates = update_count_;

  // ---- Delayed actor update + target sync (TD3).
  if (update_count_ % config_.policy_delay == 0) {
    actor_->ZeroGrad();
    const auto actions = actor_->ForwardBatch(scratch_.local, B);
    for (size_t r = 0; r < B; ++r) {
      std::copy(actions.begin() + r * adim, actions.begin() + (r + 1) * adim,
                scratch_.actor_in.begin() + r * cdim + gdim + sdim);
    }
    const auto q = critic1_->ForwardBatch(scratch_.actor_in, B);
    double q_acc = 0.0;
    for (size_t r = 0; r < B; ++r) {
      q_acc += q[r];
      scratch_.dq[r] = 1.0f;
    }
    // dQ/d(input) of the critic; the action slice drives the actor update.
    // We maximize Q, so the actor receives -dQ/da as its loss gradient.
    critic1_->ZeroGrad();  // this probe's critic grads are discarded
    const auto dq_din = critic1_->BackwardBatch(scratch_.dq, B);
    scratch_.next_action.resize(B * adim);  // reuse as the -dQ/da buffer
    for (size_t r = 0; r < B; ++r) {
      const float* da = dq_din.data() + r * cdim + gdim + sdim;
      for (size_t k = 0; k < adim; ++k) {
        scratch_.next_action[r * adim + k] = -da[k];
      }
    }
    actor_->BackwardBatch(scratch_.next_action, B, /*need_input_grad=*/false);
    diag.actor_grad_norm = ClipGradNorm(actor_->grads(), config_.grad_clip_norm, batch_scale);
    actor_opt_->Step(actor_->params(), actor_->grads(), batch_scale);
    diag.actor_objective = q_acc / static_cast<double>(B);

    target_actor_->PolyakUpdateFrom(*actor_, config_.tau);
    target_critic1_->PolyakUpdateFrom(*critic1_, config_.tau);
    target_critic2_->PolyakUpdateFrom(*critic2_, config_.tau);
  }
  return diag;
}

Td3Diagnostics Td3Trainer::UpdateReference(const ReplaySource& buffer, Rng* rng) {
  Td3Diagnostics diag;
  if (buffer.size() < config_.batch_size) {
    return diag;
  }
  const std::vector<size_t> batch = buffer.SampleIndices(config_.batch_size, rng);

  // ---- Critic update: y = r + gamma * (1 - done) * min(Q1', Q2')(g', s', a~).
  critic1_->ZeroGrad();
  critic2_->ZeroGrad();
  double loss_acc = 0.0;
  for (size_t idx : batch) {
    const Transition& t = buffer.at(idx);

    std::vector<float> next_action = target_actor_->Infer(t.next_local_state);
    for (float& a : next_action) {
      const float noise =
          std::clamp(static_cast<float>(rng->Normal(0.0, config_.target_noise_std)),
                     -config_.target_noise_clip, config_.target_noise_clip);
      a = std::clamp(a + noise, -1.0f, 1.0f);
    }
    const std::vector<float> next_in =
        CriticInput(t.next_global_state, t.next_local_state, next_action);
    const float q1_next = target_critic1_->Infer(next_in)[0];
    const float q2_next = target_critic2_->Infer(next_in)[0];
    const float y =
        t.reward + (t.terminal ? 0.0f : config_.gamma * std::min(q1_next, q2_next));

    const std::vector<float> in = CriticInput(t.global_state, t.local_state, t.action);
    const float q1 = critic1_->Forward(in)[0];
    {
      const float dq1[1] = {2.0f * (q1 - y)};
      critic1_->Backward(dq1);
    }
    const float q2 = critic2_->Forward(in)[0];
    {
      const float dq2[1] = {2.0f * (q2 - y)};
      critic2_->Backward(dq2);
    }
    loss_acc += 0.5 * ((q1 - y) * (q1 - y) + (q2 - y) * (q2 - y));
  }
  const float batch_scale = static_cast<float>(config_.batch_size);
  const double c1_norm = ClipGradNorm(critic1_->grads(), config_.grad_clip_norm, batch_scale);
  const double c2_norm = ClipGradNorm(critic2_->grads(), config_.grad_clip_norm, batch_scale);
  critic1_opt_->Step(critic1_->params(), critic1_->grads(), batch_scale);
  critic2_opt_->Step(critic2_->params(), critic2_->grads(), batch_scale);
  diag.critic_loss = loss_acc / config_.batch_size;
  diag.critic_grad_norm = 0.5 * (c1_norm + c2_norm);

  ++update_count_;
  diag.updates = update_count_;

  // ---- Delayed actor update + target sync (TD3).
  if (update_count_ % config_.policy_delay == 0) {
    actor_->ZeroGrad();
    double q_acc = 0.0;
    for (size_t idx : batch) {
      const Transition& t = buffer.at(idx);
      const std::vector<float> action = actor_->Forward(t.local_state);
      const std::vector<float> in = CriticInput(t.global_state, t.local_state, action);
      const float q = critic1_->Forward(in)[0];
      q_acc += q;

      // dQ/d(input) of the critic; the action slice drives the actor update.
      // We maximize Q, so the actor receives -dQ/da as its loss gradient.
      critic1_->ZeroGrad();  // discard critic grads from this probe
      const float dq[1] = {1.0f};
      const std::vector<float> dq_din = critic1_->Backward(dq);
      std::vector<float> dq_da(
          dq_din.begin() + config_.global_state_dim + config_.local_state_dim, dq_din.end());
      ASTRAEA_CHECK(static_cast<int>(dq_da.size()) == config_.action_dim);
      for (float& g : dq_da) {
        g = -g;
      }
      actor_->Backward(dq_da);
    }
    diag.actor_grad_norm = ClipGradNorm(actor_->grads(), config_.grad_clip_norm, batch_scale);
    actor_opt_->Step(actor_->params(), actor_->grads(), batch_scale);
    diag.actor_objective = q_acc / config_.batch_size;

    target_actor_->PolyakUpdateFrom(*actor_, config_.tau);
    target_critic1_->PolyakUpdateFrom(*critic1_, config_.tau);
    target_critic2_->PolyakUpdateFrom(*critic2_, config_.tau);
  }
  return diag;
}

void Td3Trainer::SaveActor(const std::string& path) const {
  BinaryWriter writer(path);
  actor_->Save(&writer);
  // Write* throws as soon as the stream goes bad, but buffered bytes can
  // still fail at the final flush (disk full) — surface that too instead of
  // leaving a silently truncated checkpoint behind.
  writer.Flush();
  if (!writer.ok()) {
    throw SerializationError("actor checkpoint left in bad state: " + path);
  }
}

void Td3Trainer::LoadActor(const std::string& path) {
  BinaryReader reader(path);
  Mlp loaded = Mlp::Load(&reader);
  actor_->CopyParamsFrom(loaded);
  target_actor_->CopyParamsFrom(loaded);
}

namespace {

constexpr uint32_t kTd3StateMagic = 0x41'53'54'44;  // "ASTD"
constexpr uint32_t kTd3StateVersion = 1;

// Loads one network section and copies it into `dst`, enforcing shape match.
void LoadInto(BinaryReader* reader, Mlp* dst, const char* which) {
  Mlp loaded = Mlp::Load(reader);
  if (loaded.dims() != dst->dims()) {
    throw SerializationError(std::string("TD3 checkpoint shape mismatch for ") + which);
  }
  dst->CopyParamsFrom(loaded);
}

}  // namespace

void Td3Trainer::SaveState(BinaryWriter* writer) const {
  writer->WriteU32(kTd3StateMagic);
  writer->WriteU32(kTd3StateVersion);
  actor_->Save(writer);
  critic1_->Save(writer);
  critic2_->Save(writer);
  target_actor_->Save(writer);
  target_critic1_->Save(writer);
  target_critic2_->Save(writer);
  actor_opt_->SaveState(writer);
  critic1_opt_->SaveState(writer);
  critic2_opt_->SaveState(writer);
  writer->WriteU64(static_cast<uint64_t>(update_count_));
}

void Td3Trainer::LoadState(BinaryReader* reader) {
  if (reader->ReadU32() != kTd3StateMagic) {
    throw SerializationError("bad TD3 training-state magic");
  }
  if (reader->ReadU32() != kTd3StateVersion) {
    throw SerializationError("unsupported TD3 training-state version");
  }
  LoadInto(reader, actor_.get(), "actor");
  LoadInto(reader, critic1_.get(), "critic1");
  LoadInto(reader, critic2_.get(), "critic2");
  LoadInto(reader, target_actor_.get(), "target actor");
  LoadInto(reader, target_critic1_.get(), "target critic1");
  LoadInto(reader, target_critic2_.get(), "target critic2");
  actor_opt_->LoadState(reader);
  critic1_opt_->LoadState(reader);
  critic2_opt_->LoadState(reader);
  update_count_ = static_cast<int64_t>(reader->ReadU64());
}

}  // namespace astraea
