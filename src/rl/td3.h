// TD3-style actor–critic trainer, the learning core of Astraea's Learner.
//
// This implements Algorithm 1 of the paper plus the Appendix-A optimizations
// borrowed from TD3 (Fujimoto et al.): target networks with Polyak averaging,
// clipped double-Q learning, delayed policy updates and target-policy
// smoothing. The multi-agent (MADDPG-style) aspect is in the inputs, not the
// update rule: the critic consumes the *global* state g aggregated over all
// active flows while the actor sees only the flow-local state s, and all flow
// agents share one set of parameters and one replay buffer.

#ifndef SRC_RL_TD3_H_
#define SRC_RL_TD3_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/nn/mlp.h"
#include "src/rl/replay_buffer.h"
#include "src/util/rng.h"

namespace astraea {

struct Td3Config {
  int local_state_dim = 0;
  int global_state_dim = 0;
  int action_dim = 1;
  std::vector<int> hidden = {256, 128, 64};  // paper §4
  float actor_lr = 1e-3f;                    // Table 4 (α)
  float critic_lr = 1e-3f;
  float gamma = 0.98f;                       // Table 4 (γ)
  float tau = 0.01f;                         // Polyak factor
  int policy_delay = 2;                      // TD3 delayed actor updates
  float target_noise_std = 0.1f;             // target policy smoothing
  float target_noise_clip = 0.3f;
  size_t batch_size = 192;                   // Table 4
  float grad_clip_norm = 5.0f;               // global-norm gradient clipping
};

struct Td3Diagnostics {
  double critic_loss = 0.0;
  double actor_objective = 0.0;  // mean Q under the current policy
  // Pre-clip global L2 gradient norms (per-sample scale). critic_grad_norm is
  // the mean of the two critics'; actor_grad_norm stays 0 on non-delayed steps.
  double critic_grad_norm = 0.0;
  double actor_grad_norm = 0.0;
  int64_t updates = 0;
};

class Td3Trainer {
 public:
  Td3Trainer(Td3Config config, Rng* rng);

  // One gradient update (Algorithm 1, lines 3-6). No-op when the buffer has
  // fewer than batch_size transitions. Runs on the flat batched kernels
  // (Mlp::ForwardBatch / BackwardBatch); draws from `rng` in the same order as
  // UpdateReference so both paths consume identical random streams.
  Td3Diagnostics Update(const ReplaySource& buffer, Rng* rng);

  // Per-sample reference implementation of the same update, kept for parity
  // testing the batched path (and as executable documentation of Algorithm 1).
  Td3Diagnostics UpdateReference(const ReplaySource& buffer, Rng* rng);

  // Deterministic action from the current policy (deployment path).
  std::vector<float> Act(std::span<const float> local_state) const;

  // Exploratory action: policy output + clipped Gaussian noise.
  std::vector<float> ActWithNoise(std::span<const float> local_state, float noise_std,
                                  Rng* rng) const;

  const Mlp& actor() const { return *actor_; }
  Mlp& mutable_actor() { return *actor_; }
  const Mlp& critic1() const { return *critic1_; }

  // Deployment/policy artifact: actor weights only, in the stable MLP format
  // consumed by MlpPolicy::LoadFromFile. Throws SerializationError if the
  // write cannot be completed (disk full, bad path).
  void SaveActor(const std::string& path) const;
  void LoadActor(const std::string& path);

  // Full training state — actor, both critics, all three target networks,
  // all three Adam optimizers and the update counter — for crash-safe
  // resume. Streams (not files) so the Learner can embed this in its own
  // checkpoint payload. LoadState validates network shapes against this
  // instance and throws SerializationError on any mismatch.
  void SaveState(BinaryWriter* writer) const;
  void LoadState(BinaryReader* reader);

  int64_t update_count() const { return update_count_; }

 private:
  std::vector<float> CriticInput(const std::vector<float>& g, const std::vector<float>& s,
                                 std::span<const float> a) const;

  Td3Config config_;
  std::unique_ptr<Mlp> actor_;
  std::unique_ptr<Mlp> critic1_;
  std::unique_ptr<Mlp> critic2_;
  std::unique_ptr<Mlp> target_actor_;
  std::unique_ptr<Mlp> target_critic1_;
  std::unique_ptr<Mlp> target_critic2_;
  std::unique_ptr<Adam> actor_opt_;
  std::unique_ptr<Adam> critic1_opt_;
  std::unique_ptr<Adam> critic2_opt_;
  int64_t update_count_ = 0;

  // Grow-only gather buffers reused across Update() calls so the steady-state
  // training loop performs no heap allocation.
  struct Scratch {
    std::vector<float> local;        // [B x s]
    std::vector<float> next_local;   // [B x s]
    std::vector<float> next_action;  // [B x a]
    std::vector<float> next_in;      // [B x (g+s+a)]
    std::vector<float> in;           // [B x (g+s+a)] — critic fit inputs
    std::vector<float> actor_in;     // [B x (g+s+a)] — actor-probe inputs
    std::vector<float> y;            // [B] TD targets
    std::vector<float> dq;           // [B] critic output grads
  };
  Scratch scratch_;
};

}  // namespace astraea

#endif  // SRC_RL_TD3_H_
