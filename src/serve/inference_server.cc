#include "src/serve/inference_server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <unordered_set>

#include "src/ipc/uds.h"
#include "src/serve/serve_protocol.h"
#include "src/util/checkpoint.h"
#include "src/util/failpoint.h"
#include "src/util/logging.h"
#include "src/util/metrics.h"

namespace astraea {
namespace serve {

Mlp LoadActorFile(const std::string& path) {
  // Sniff the trailing footer magic to decide between the durable checkpoint
  // container (Learner::SaveState-style) and the raw actor stream that
  // astraea_train --out writes.
  bool container = false;
  {
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    if (!f) {
      throw SerializationError("cannot open actor checkpoint: " + path);
    }
    const std::streamoff size = f.tellg();
    if (size >= static_cast<std::streamoff>(kCheckpointFooterSize)) {
      f.seekg(size - 4);
      uint32_t magic = 0;
      f.read(reinterpret_cast<char*>(&magic), sizeof(magic));
      container = f.good() && magic == kCheckpointFooterMagic;
    }
  }
  if (container) {
    CheckpointReader ckpt(path);
    return Mlp::Load(ckpt.payload());
  }
  BinaryReader reader(path);
  return Mlp::Load(&reader);
}

InferenceServer::InferenceServer(InferenceServerConfig config) : config_(std::move(config)) {
  actor_ = std::make_unique<Mlp>(LoadActorFile(config_.model_path));
  model_input_dim_.store(actor_->input_size(), std::memory_order_release);
  if (actor_->input_size() > static_cast<int>(kMaxStateDim)) {
    throw std::runtime_error("actor input dim exceeds serving slot capacity");
  }

  listen_fd_ = ipc::ListenUnix(config_.socket_path);
  if (listen_fd_ < 0) {
    throw std::runtime_error("cannot listen on serve socket: " + config_.socket_path);
  }
  event_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (event_fd_ < 0 || epoll_fd_ < 0) {
    throw std::runtime_error("cannot create serve wakeup fds");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = event_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);

  MetricsRegistry& reg = MetricsRegistry::Global();
  requests_total_ = &reg.GetCounter("serve.requests_total");
  batches_total_ = &reg.GetCounter("serve.batches_total");
  bad_requests_total_ = &reg.GetCounter("serve.bad_requests_total");
  responses_dropped_total_ = &reg.GetCounter("serve.responses_dropped_total");
  reloads_total_ = &reg.GetCounter("serve.reloads_total");
  reload_errors_total_ = &reg.GetCounter("serve.reload_errors_total");
  clients_gauge_ = &reg.GetGauge("serve.clients");
  queue_depth_gauge_ = &reg.GetGauge("serve.queue_depth");
  batch_size_hist_ = &reg.GetHistogram("serve.batch_size");
  service_latency_hist_ = &reg.GetHistogram("serve.service_latency_seconds");
}

InferenceServer::~InferenceServer() {
  for (auto& client : clients_) {
    if (client->sock >= 0) {
      close(client->sock);
    }
  }
  if (epoll_fd_ >= 0) {
    close(epoll_fd_);
  }
  if (event_fd_ >= 0) {
    close(event_fd_);
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    unlink(config_.socket_path.c_str());
  }
}

void InferenceServer::Run() {
  while (!stop_.load(std::memory_order_acquire)) {
    MaybeReload();
    AcceptClients();
    DrainRequests();
    if (pending_.empty()) {
      IdleWait();
      continue;
    }
    const TimeNs now = ipc::MonotonicNowNs();
    const TimeNs deadline = pending_.front().enqueue_ns + config_.batch_window;
    // Clients are synchronous (one outstanding request each), so once every
    // live client has a request pending, no more can arrive: flush now
    // instead of burning the rest of the batch window on a full batch.
    size_t live = 0;
    for (const auto& client : clients_) {
      live += client->dead ? 0 : 1;
    }
    if (pending_.size() >= config_.max_batch || pending_.size() >= live || now >= deadline) {
      FlushBatch();
    } else {
      // Sub-window spin: keep draining so late arrivals join this batch. The
      // yield bounds CPU burn without giving up sub-millisecond reactivity.
      std::this_thread::yield();
    }
  }
}

void InferenceServer::AcceptClients() {
  while (true) {
    const int sock = ipc::AcceptNonBlocking(listen_fd_);
    if (sock < 0) {
      return;
    }
    ClientHello hello{};
    int fds[2] = {-1, -1};
    size_t nfds = 0;
    const bool got = ipc::RecvWithFds(sock, &hello, sizeof(hello), fds, 2, &nfds,
                                      config_.handshake_timeout);
    for (size_t i = 1; i < nfds; ++i) {
      close(fds[i]);  // protocol sends exactly one fd; drop extras
    }
    if (!got || nfds < 1) {
      if (nfds >= 1) {
        close(fds[0]);
      }
      close(sock);
      continue;
    }
    const bool hello_ok = hello.magic == kProtocolMagic && hello.version == kProtocolVersion &&
                          hello.ring_slots == ipc::kRingSlots &&
                          hello.slot_payload_bytes == ipc::kSlotPayloadBytes;
    ipc::MappedRegion region;
    if (hello_ok) {
      region = ipc::MapRegion(fds[0]);
    }
    ServerHello reply{};
    reply.magic = kProtocolMagic;
    reply.version = kProtocolVersion;
    reply.accepted = region ? 1 : 0;
    reply.model_input_dim = static_cast<uint32_t>(model_input_dim_.load());
    if (!region) {
      close(fds[0]);
      ipc::SendWithFds(sock, &reply, sizeof(reply), nullptr, 0);
      close(sock);
      continue;
    }
    if (!ipc::SendWithFds(sock, &reply, sizeof(reply), &event_fd_, 1)) {
      close(sock);
      continue;  // region unmapped+closed by its destructor
    }
    auto client = std::make_unique<Client>();
    client->sock = sock;
    client->region = std::move(region);
    clients_.push_back(std::move(client));
    client_count_.store(clients_.size(), std::memory_order_release);
    clients_gauge_->Set(static_cast<double>(clients_.size()));
    ASTRAEA_LOG(Info) << "serve: client connected (" << clients_.size() << " active)";
  }
}

void InferenceServer::RespondError(Client* client, uint64_t req_id, uint32_t status) {
  ResponseRecord resp{};
  resp.req_id = req_id;
  resp.status = status;
  resp.action = 0.0f;
  resp.crc = ResponseCrc(resp);
  if (!client->region->response.TryPush(&resp, sizeof(resp))) {
    responses_dropped_total_->Increment();
  }
  ipc::WakeConsumer(&client->region->response);
}

void InferenceServer::DrainRequests() {
  const int dim = model_input_dim_.load(std::memory_order_relaxed);
  const TimeNs now = ipc::MonotonicNowNs();
  for (size_t c = 0; c < clients_.size(); ++c) {
    Client* client = clients_[c].get();
    if (client->dead) {
      continue;
    }
    RequestRecord req{};
    while (pending_.size() < config_.max_batch &&
           client->region->request.TryPop(&req, sizeof(req))) {
      requests_total_->Increment();
      if (!ValidRequest(req) || req.state_dim != static_cast<uint32_t>(dim)) {
        bad_requests_total_->Increment();
        RespondError(client, req.req_id, static_cast<uint32_t>(ResponseStatus::kBadRequest));
        continue;
      }
      batch_states_.insert(batch_states_.end(), req.state, req.state + req.state_dim);
      pending_.push_back(Pending{c, req.req_id, now});
    }
  }
}

void InferenceServer::FlushBatch() {
  // A crash injected here is the worst case for clients: their requests have
  // been consumed from the rings but no response will ever be written.
  ASTRAEA_FAILPOINT("serve.flush.mid_batch");
  const size_t n = pending_.size();
  queue_depth_gauge_->Set(static_cast<double>(n));
  batch_size_hist_->Observe(static_cast<double>(n));

  bool infer_ok = true;
  std::span<const float> out;
  try {
    out = actor_->InferBatchSpan(batch_states_, n);
  } catch (const std::exception& e) {
    ASTRAEA_LOG(Warning) << "serve: batched inference failed: " << e.what();
    infer_ok = false;
  }
  const size_t out_dim = static_cast<size_t>(actor_->output_size());

  const TimeNs now = ipc::MonotonicNowNs();
  std::unordered_set<size_t> touched;
  for (size_t i = 0; i < n; ++i) {
    const Pending& p = pending_[i];
    Client* client = clients_[p.client_index].get();
    ResponseRecord resp{};
    resp.req_id = p.req_id;
    if (infer_ok) {
      resp.status = static_cast<uint32_t>(ResponseStatus::kOk);
      resp.action = std::clamp(out[i * out_dim], -1.0f, 1.0f);
    } else {
      resp.status = static_cast<uint32_t>(ResponseStatus::kServerError);
      resp.action = 0.0f;
    }
    resp.crc = ResponseCrc(resp);
    try {
      ASTRAEA_FAILPOINT("serve.respond.corrupt");
    } catch (const failpoint::Injected&) {
      resp.crc ^= 0xA5A5A5A5u;  // deliberate CRC damage: client must reject it
    }
    if (!client->region->response.TryPush(&resp, sizeof(resp))) {
      responses_dropped_total_->Increment();
    }
    service_latency_hist_->Observe(ToSeconds(std::max<TimeNs>(now - p.enqueue_ns, 0)));
    touched.insert(p.client_index);
  }
  for (const size_t c : touched) {
    ipc::WakeConsumer(&clients_[c]->region->response);
  }
  served_total_.fetch_add(n, std::memory_order_acq_rel);
  batches_total_->Increment();
  pending_.clear();
  batch_states_.clear();
}

void InferenceServer::MaybeReload() {
  if (!reload_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  try {
    Mlp next = LoadActorFile(config_.model_path);
    if (next.input_size() > static_cast<int>(kMaxStateDim)) {
      throw SerializationError("reloaded actor input dim exceeds serving slot capacity");
    }
    actor_ = std::make_unique<Mlp>(std::move(next));
    model_input_dim_.store(actor_->input_size(), std::memory_order_release);
    reloads_total_->Increment();
    reloads_done_.fetch_add(1, std::memory_order_acq_rel);
    ASTRAEA_LOG(Info) << "serve: reloaded model from " << config_.model_path;
  } catch (const std::exception& e) {
    // Keep serving the previous actor; a bad swap must not take the service down.
    reload_errors_total_->Increment();
    ASTRAEA_LOG(Warning) << "serve: model reload failed (" << e.what()
                         << "); keeping previous actor";
  }
}

void InferenceServer::ReapDeadClients() {
  bool changed = false;
  for (auto it = clients_.begin(); it != clients_.end();) {
    if ((*it)->dead || !ipc::PeerAlive((*it)->sock)) {
      close((*it)->sock);
      it = clients_.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }
  if (changed) {
    client_count_.store(clients_.size(), std::memory_order_release);
    clients_gauge_->Set(static_cast<double>(clients_.size()));
    ASTRAEA_LOG(Info) << "serve: client disconnected (" << clients_.size() << " active)";
  }
}

void InferenceServer::IdleWait() {
  // Only safe when pending_ is empty: reaping renumbers client indices.
  ReapDeadClients();

  // Arm the parked flags, then re-check every ring: a request published
  // between the drain and the park must be noticed before we sleep.
  for (auto& client : clients_) {
    client->region->request.consumer_parked.store(1, std::memory_order_seq_cst);
  }
  std::atomic_thread_fence(std::memory_order_seq_cst);
  bool work = false;
  for (auto& client : clients_) {
    if (client->region->request.SizeApprox() > 0) {
      work = true;
      break;
    }
  }
  if (!work) {
    epoll_event events[4];
    const int timeout_ms = static_cast<int>(
        std::clamp<TimeNs>(config_.idle_wait / kNanosPerMilli, 1, 1000));
    epoll_wait(epoll_fd_, events, 4, timeout_ms);
  }
  for (auto& client : clients_) {
    client->region->request.consumer_parked.store(0, std::memory_order_release);
  }
  // Drain the eventfd counter so the next doorbell write re-arms epoll.
  uint64_t drained;
  while (read(event_fd_, &drained, sizeof(drained)) > 0) {
  }
}

}  // namespace serve
}  // namespace astraea
