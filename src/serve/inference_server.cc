#include "src/serve/inference_server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <unordered_set>

#include "src/ipc/uds.h"
#include "src/serve/serve_metrics.h"
#include "src/serve/serve_protocol.h"
#include "src/util/checkpoint.h"
#include "src/util/failpoint.h"
#include "src/util/logging.h"
#include "src/util/metrics.h"

namespace astraea {
namespace serve {

Mlp LoadActorFile(const std::string& path) {
  // Sniff the trailing footer magic to decide between the durable checkpoint
  // container (Learner::SaveState-style) and the raw actor stream that
  // astraea_train --out writes.
  bool container = false;
  {
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    if (!f) {
      throw SerializationError("cannot open actor checkpoint: " + path);
    }
    const std::streamoff size = f.tellg();
    if (size >= static_cast<std::streamoff>(kCheckpointFooterSize)) {
      f.seekg(size - 4);
      uint32_t magic = 0;
      f.read(reinterpret_cast<char*>(&magic), sizeof(magic));
      container = f.good() && magic == kCheckpointFooterMagic;
    }
  }
  if (container) {
    CheckpointReader ckpt(path);
    return Mlp::Load(ckpt.payload());
  }
  BinaryReader reader(path);
  return Mlp::Load(&reader);
}

InferenceServer::InferenceServer(InferenceServerConfig config) : config_(std::move(config)) {
  actor_ = std::make_unique<Mlp>(LoadActorFile(config_.model_path));
  model_input_dim_.store(actor_->input_size(), std::memory_order_release);
  if (actor_->input_size() > static_cast<int>(kMaxStateDim)) {
    throw std::runtime_error("actor input dim exceeds serving slot capacity");
  }

  listen_fd_ = ipc::ListenUnix(config_.socket_path);
  if (listen_fd_ < 0) {
    throw std::runtime_error("cannot listen on serve socket: " + config_.socket_path);
  }
  event_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (event_fd_ < 0 || epoll_fd_ < 0) {
    throw std::runtime_error("cannot create serve wakeup fds");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = event_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);

  // Every serve.* name (both sides of the boundary) exists zero-valued from
  // this point on — scrapes taken before the first request still have keys.
  RegisterServeMetrics();
  MetricsRegistry& reg = MetricsRegistry::Global();
  requests_total_ = &reg.GetCounter("serve.requests_total");
  batches_total_ = &reg.GetCounter("serve.batches_total");
  bad_requests_total_ = &reg.GetCounter("serve.bad_requests_total");
  responses_dropped_total_ = &reg.GetCounter("serve.responses_dropped_total");
  reloads_total_ = &reg.GetCounter("serve.reloads_total");
  reload_errors_total_ = &reg.GetCounter("serve.reload_errors_total");
  shed_total_ = &reg.GetCounter("serve.shed_total");
  drain_rounds_total_ = &reg.GetCounter("serve.drain_rounds");
  clients_gauge_ = &reg.GetGauge("serve.clients");
  queue_depth_gauge_ = &reg.GetGauge("serve.queue_depth");
  est_batch_latency_gauge_ = &reg.GetGauge("serve.est_batch_latency_seconds");
  batch_size_hist_ = &reg.GetHistogram("serve.batch_size");
  service_latency_hist_ = &reg.GetHistogram("serve.service_latency_seconds");
}

InferenceServer::~InferenceServer() {
  for (auto& client : clients_) {
    if (client->sock >= 0) {
      close(client->sock);
    }
  }
  if (epoll_fd_ >= 0) {
    close(epoll_fd_);
  }
  if (event_fd_ >= 0) {
    close(event_fd_);
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    unlink(config_.socket_path.c_str());
  }
}

void InferenceServer::Run() {
  while (!stop_.load(std::memory_order_acquire)) {
    if (pending_.empty()) {
      // Never reload over a queued remainder: batch_states_ rows are sized by
      // the current model's input dim, and a reload may change it. Backlog
      // drains at max_batch per flush, so the reload lands within a few
      // iterations even under overload.
      MaybeReload();
    }
    AcceptClients();
    DrainRequests();
    if (pending_.empty()) {
      IdleWait();
      continue;
    }
    const TimeNs now = ipc::MonotonicNowNs();
    const TimeNs deadline = pending_.front().enqueue_ns + config_.batch_window;
    // Clients are synchronous (one outstanding request each), so once every
    // live client has a request pending, no more can arrive: flush now
    // instead of burning the rest of the batch window on a full batch.
    size_t live = 0;
    for (const auto& client : clients_) {
      live += client->dead ? 0 : 1;
    }
    if (pending_.size() >= config_.max_batch || pending_.size() >= live || now >= deadline) {
      FlushBatch();
    } else {
      // Sub-window spin: keep draining so late arrivals join this batch. The
      // yield bounds CPU burn without giving up sub-millisecond reactivity.
      std::this_thread::yield();
    }
  }
}

void InferenceServer::AcceptClients() {
  while (true) {
    const int sock = ipc::AcceptNonBlocking(listen_fd_);
    if (sock < 0) {
      return;
    }
    ClientHello hello{};
    int fds[2] = {-1, -1};
    size_t nfds = 0;
    const bool got = ipc::RecvWithFds(sock, &hello, sizeof(hello), fds, 2, &nfds,
                                      config_.handshake_timeout);
    for (size_t i = 1; i < nfds; ++i) {
      close(fds[i]);  // protocol sends exactly one fd; drop extras
    }
    if (!got || nfds < 1) {
      if (nfds >= 1) {
        close(fds[0]);
      }
      close(sock);
      continue;
    }
    const bool hello_ok = hello.magic == kProtocolMagic && hello.version == kProtocolVersion &&
                          hello.ring_slots == ipc::kRingSlots &&
                          hello.slot_payload_bytes == ipc::kSlotPayloadBytes;
    ipc::MappedRegion region;
    if (hello_ok) {
      region = ipc::MapRegion(fds[0]);
    }
    ServerHello reply{};
    reply.magic = kProtocolMagic;
    reply.version = kProtocolVersion;
    reply.accepted = region ? 1 : 0;
    reply.model_input_dim = static_cast<uint32_t>(model_input_dim_.load());
    if (!region) {
      close(fds[0]);
      ipc::SendWithFds(sock, &reply, sizeof(reply), nullptr, 0);
      close(sock);
      continue;
    }
    if (!ipc::SendWithFds(sock, &reply, sizeof(reply), &event_fd_, 1)) {
      close(sock);
      continue;  // region unmapped+closed by its destructor
    }
    auto client = std::make_unique<Client>();
    client->sock = sock;
    client->region = std::move(region);
    clients_.push_back(std::move(client));
    client_count_.store(clients_.size(), std::memory_order_release);
    clients_gauge_->Set(static_cast<double>(clients_.size()));
    ASTRAEA_LOG(Info) << "serve: client connected (" << clients_.size() << " active)";
  }
}

void InferenceServer::RespondError(Client* client, uint64_t req_id, uint32_t status) {
  ResponseRecord resp{};
  resp.req_id = req_id;
  resp.status = status;
  resp.action = 0.0f;
  resp.crc = ResponseCrc(resp);
  if (!client->region->response.TryPush(&resp, sizeof(resp))) {
    responses_dropped_total_->Increment();
  }
  ipc::WakeConsumer(&client->region->response);
}

void InferenceServer::DrainRequests() {
  const size_t n = clients_.size();
  if (n == 0) {
    return;
  }
  const int dim = model_input_dim_.load(std::memory_order_relaxed);
  const TimeNs now = ipc::MonotonicNowNs();
  // Per-flush cost estimate for the admission projection below. Zero until
  // the first flush has been measured — a cold server never sheds.
  const TimeNs unit =
      static_cast<TimeNs>(config_.shed_margin * static_cast<double>(est_flush_ns_));
  // Backstop on admitted backlog, NOT the shed mechanism: requests carrying
  // deadlines self-limit the queue (past a few batches of depth the
  // projection sheds them), so this cap only binds for deadline-less clients.
  // It is deliberately generous — an un-drained request ages invisibly in its
  // ring and can then only slow-fail, which defeats admission control.
  const size_t cap = std::max<size_t>(16 * config_.max_batch, 4096);

  // Round-robin: one request per live client per round, rotating which client
  // goes first across passes, so a single hot client can neither starve the
  // others out of a batch nor monopolize the drain loop. Rejections (bad or
  // shed requests) do not occupy batch slots, so one pass can fast-fail an
  // arbitrary backlog while still filling the batch with viable work.
  const size_t start = drain_cursor_ % n;
  drain_cursor_ = (start + 1) % n;
  // Bounded rounds per pass: with enough clients, one scan round takes longer
  // than the mean arrival interval, so "loop until a round pops nothing"
  // never exits — the drain chases arrivals forever, no flush ever runs, and
  // admitted requests rot in a queue that the admission projection assumed
  // was being served. Eight rounds empties any realistic backlog (synchronous
  // clients queue at most one each); whatever is left waits one flush.
  constexpr uint64_t kMaxRoundsPerPass = 8;
  uint64_t rounds = 0;
  uint64_t drained = 0;
  bool any = true;
  while (any && rounds < kMaxRoundsPerPass && pending_.size() < cap) {
    any = false;
    ++rounds;
    for (size_t k = 0; k < n && pending_.size() < cap; ++k) {
      const size_t c = (start + k) % n;
      Client* client = clients_[c].get();
      if (client->dead) {
        continue;
      }
      RequestRecord req{};
      if (!client->region->request.TryPop(&req, sizeof(req))) {
        continue;
      }
      any = true;
      ++drained;
      requests_total_->Increment();
      if (!ValidRequest(req) || req.state_dim != static_cast<uint32_t>(dim)) {
        bad_requests_total_->Increment();
        RespondError(client, req.req_id, static_cast<uint32_t>(ResponseStatus::kBadRequest));
        continue;
      }
      if (config_.shed_margin > 0.0 && req.deadline_ns != 0 && est_flush_ns_ > 0) {
        // Queue-position-aware projection: the request joins behind
        // pending_/max_batch full batches, each costing ~est_flush. Without
        // the position term, a backlogged server would admit everything and
        // deadlines would only be discovered by timeout — slow-fail.
        const TimeNs batches_ahead =
            static_cast<TimeNs>(pending_.size() / config_.max_batch);
        const TimeNs projected_done = now + unit * (batches_ahead + 1);
        if (projected_done > static_cast<TimeNs>(req.deadline_ns)) {
          // Cannot be served before its deadline: shed it NOW so the client
          // falls back immediately instead of discovering the miss by timeout.
          shed_total_->Increment();
          shed_total_count_.fetch_add(1, std::memory_order_acq_rel);
          RespondError(client, req.req_id, static_cast<uint32_t>(ResponseStatus::kRejected));
          continue;
        }
      }
      batch_states_.insert(batch_states_.end(), req.state, req.state + req.state_dim);
      pending_.push_back(Pending{c, req.req_id, now});
    }
  }
  if (drained > 0) {
    drain_rounds_total_->Increment(rounds);
  }
}

void InferenceServer::FlushBatch() {
  // A crash injected here is the worst case for clients: their requests have
  // been consumed from the rings but no response will ever be written. The
  // "stall" action at the same site models a scheduler pause instead.
  const TimeNs flush_start = ipc::MonotonicNowNs();
  ASTRAEA_FAILPOINT("serve.flush.mid_batch");
  // Serve at most one max_batch chunk per flush; the remainder stays queued
  // (and counted by the admission projection) for the next pass. Flushing the
  // whole backlog in one giant forward pass would make the flush-latency
  // estimate meaningless and starve newly arrived requests of drain cycles.
  queue_depth_gauge_->Set(static_cast<double>(pending_.size()));
  const size_t n = std::min(pending_.size(), config_.max_batch);
  const size_t dim = static_cast<size_t>(model_input_dim_.load(std::memory_order_relaxed));
  batch_size_hist_->Observe(static_cast<double>(n));

  bool infer_ok = true;
  std::span<const float> out;
  try {
    out = actor_->InferBatchSpan(std::span<const float>(batch_states_.data(), n * dim), n);
  } catch (const std::exception& e) {
    ASTRAEA_LOG(Warning) << "serve: batched inference failed: " << e.what();
    infer_ok = false;
  }
  const size_t out_dim = static_cast<size_t>(actor_->output_size());

  const TimeNs now = ipc::MonotonicNowNs();
  std::unordered_set<size_t> touched;
  for (size_t i = 0; i < n; ++i) {
    const Pending& p = pending_[i];
    Client* client = clients_[p.client_index].get();
    ResponseRecord resp{};
    resp.req_id = p.req_id;
    if (infer_ok) {
      resp.status = static_cast<uint32_t>(ResponseStatus::kOk);
      resp.action = std::clamp(out[i * out_dim], -1.0f, 1.0f);
    } else {
      resp.status = static_cast<uint32_t>(ResponseStatus::kServerError);
      resp.action = 0.0f;
    }
    resp.crc = ResponseCrc(resp);
    try {
      ASTRAEA_FAILPOINT("serve.respond.corrupt");
    } catch (const failpoint::Injected&) {
      resp.crc ^= 0xA5A5A5A5u;  // deliberate CRC damage: client must reject it
    }
    if (!client->region->response.TryPush(&resp, sizeof(resp))) {
      responses_dropped_total_->Increment();
    }
    service_latency_hist_->Observe(ToSeconds(std::max<TimeNs>(now - p.enqueue_ns, 0)));
    touched.insert(p.client_index);
  }
  for (const size_t c : touched) {
    ipc::WakeConsumer(&clients_[c]->region->response);
  }
  served_total_.fetch_add(n, std::memory_order_acq_rel);
  batches_total_->Increment();
  pending_.erase(pending_.begin(), pending_.begin() + static_cast<ptrdiff_t>(n));
  batch_states_.erase(batch_states_.begin(),
                      batch_states_.begin() + static_cast<ptrdiff_t>(n * dim));

  // Fold this flush's wall time into the admission estimate. A slow flush
  // (big batch, stalled inference) raises the estimate and starts shedding
  // requests that could no longer make their deadlines; recovery lowers it
  // back and admission widens again. The stall failpoint above lands inside
  // the measured window on purpose.
  const TimeNs flush_cost = std::max<TimeNs>(ipc::MonotonicNowNs() - flush_start, 0);
  est_flush_ns_ = est_flush_ns_ == 0 ? flush_cost : (est_flush_ns_ * 7 + flush_cost) / 8;
  est_batch_latency_gauge_->Set(ToSeconds(est_flush_ns_));
}

void InferenceServer::MaybeReload() {
  if (!reload_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  try {
    Mlp next = LoadActorFile(config_.model_path);
    if (next.input_size() > static_cast<int>(kMaxStateDim)) {
      throw SerializationError("reloaded actor input dim exceeds serving slot capacity");
    }
    actor_ = std::make_unique<Mlp>(std::move(next));
    model_input_dim_.store(actor_->input_size(), std::memory_order_release);
    reloads_total_->Increment();
    reloads_done_.fetch_add(1, std::memory_order_acq_rel);
    ASTRAEA_LOG(Info) << "serve: reloaded model from " << config_.model_path;
  } catch (const std::exception& e) {
    // Keep serving the previous actor; a bad swap must not take the service down.
    reload_errors_total_->Increment();
    ASTRAEA_LOG(Warning) << "serve: model reload failed (" << e.what()
                         << "); keeping previous actor";
  }
}

void InferenceServer::ReapDeadClients() {
  bool changed = false;
  for (auto it = clients_.begin(); it != clients_.end();) {
    if ((*it)->dead || !ipc::PeerAlive((*it)->sock)) {
      close((*it)->sock);
      it = clients_.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }
  if (changed) {
    client_count_.store(clients_.size(), std::memory_order_release);
    clients_gauge_->Set(static_cast<double>(clients_.size()));
    ASTRAEA_LOG(Info) << "serve: client disconnected (" << clients_.size() << " active)";
  }
}

void InferenceServer::IdleWait() {
  // Only safe when pending_ is empty: reaping renumbers client indices.
  ReapDeadClients();

  // Arm the parked flags, then re-check every ring: a request published
  // between the drain and the park must be noticed before we sleep.
  for (auto& client : clients_) {
    client->region->request.consumer_parked.store(1, std::memory_order_seq_cst);
  }
  std::atomic_thread_fence(std::memory_order_seq_cst);
  bool work = false;
  for (auto& client : clients_) {
    if (client->region->request.SizeApprox() > 0) {
      work = true;
      break;
    }
  }
  if (!work) {
    epoll_event events[4];
    const int timeout_ms = static_cast<int>(
        std::clamp<TimeNs>(config_.idle_wait / kNanosPerMilli, 1, 1000));
    epoll_wait(epoll_fd_, events, 4, timeout_ms);
  }
  for (auto& client : clients_) {
    client->region->request.consumer_parked.store(0, std::memory_order_release);
  }
  // Drain the eventfd counter so the next doorbell write re-arms epoll.
  uint64_t drained;
  while (read(event_fd_, &drained, sizeof(drained)) > 0) {
  }
}

}  // namespace serve
}  // namespace astraea
