// Out-of-process inference server (paper §4, Fig. 16's serving boundary).
//
// One thread owns everything: it accepts clients over the unix-socket control
// channel, maps their shared-memory ring pairs, and runs a deadline batcher —
// requests drained from all client rings are flushed through one batched
// forward pass when either `max_batch` requests are pending or the oldest
// pending request has waited `batch_window`. This is the same
// flush-on-occupancy-or-deadline policy as the in-process InferenceService,
// applied across process boundaries.
//
// Hot reload: RequestReload() (wired to SIGHUP in tools/astraea_serve) makes
// the loop re-load the actor from `model_path` between batches — never
// mid-batch — so an atomic-symlink swap of the checkpoint upgrades the model
// with zero dropped requests. A failed load keeps the old actor serving.
//
// Failure injection (src/util/failpoint.h):
//   serve.flush.mid_batch   after requests are consumed from client rings,
//                           before any response is written — a crash here is
//                           the worst case for clients (requests swallowed),
//                           and must degrade every one of them to their local
//                           fallback policy.
//   serve.respond.corrupt   "throw" action corrupts one response record's CRC
//                           instead of throwing — exercises the client-side
//                           validation path end to end.
//
// Admission control (overload shed): every request carries the client's
// absolute deadline. At drain time the server projects the request's
// completion from its queue position: it joins behind pending/max_batch full
// batches, each costing ~EWMA(flush latency), so
//   projected = now + shed_margin * EWMA(flush) * (batches_ahead + 1).
// A request that cannot make its deadline — because the batcher is backlogged
// or inference got slow — gets an immediate kRejected response instead of
// being served late, so the client falls back at once rather than burning its
// whole rpc_timeout. The drain consumes every ring (bounded by a generous
// backstop cap), because a request left in its ring ages invisibly and can
// then only slow-fail; each flush serves one max_batch chunk and leaves the
// remainder queued. Requests are drained round-robin, one per client per
// round, so one hot client cannot starve the rest out of a batch. Rejections
// do not consume batch slots.
//
// Metrics (MetricsRegistry::Global()):
//   serve.requests_total / serve.batches_total / serve.bad_requests_total /
//   serve.responses_dropped_total / serve.reloads_total /
//   serve.reload_errors_total / serve.shed_total / serve.drain_rounds
//   (counters)
//   serve.clients / serve.queue_depth / serve.est_batch_latency_seconds
//   (gauges)
//   serve.batch_size / serve.service_latency_seconds (histograms; latency is
//   ring-enqueue-drain to response-publish, i.e. the server-side component of
//   a decision's end-to-end latency)
// All serve.* names are pre-registered (zero-valued) at construction — see
// serve_metrics.h.

#ifndef SRC_SERVE_INFERENCE_SERVER_H_
#define SRC_SERVE_INFERENCE_SERVER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/ipc/shm_ring.h"
#include "src/nn/mlp.h"
#include "src/util/time.h"

namespace astraea {

class Counter;
class Gauge;
class Histogram;

namespace serve {

// Loads an actor network from `path`, accepting either a PR-2 checkpoint
// container (CRC32 footer; detected by its trailing magic) or a raw
// BinaryWriter stream (tools/astraea_train --out format). Throws
// SerializationError when the file is missing or corrupt.
Mlp LoadActorFile(const std::string& path);

struct InferenceServerConfig {
  std::string socket_path;
  std::string model_path;
  TimeNs batch_window = Microseconds(500);
  size_t max_batch = 64;
  // How long the accept path may wait for a client's hello message.
  TimeNs handshake_timeout = Milliseconds(200);
  // Idle park duration per wait (bounded so Stop() is prompt).
  TimeNs idle_wait = Milliseconds(5);
  // Admission control: a drained request is shed (kRejected) when its
  // queue-position projection, now + shed_margin * EWMA(flush latency) *
  // (batches_ahead + 1), exceeds its deadline. 0 disables deadline shedding
  // (requests with deadline 0 are never shed either).
  double shed_margin = 1.0;
};

class InferenceServer {
 public:
  // Binds the socket and loads the model; throws std::runtime_error /
  // SerializationError on failure.
  explicit InferenceServer(InferenceServerConfig config);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  // Serves until Stop(). Run this on a dedicated thread (or as the main
  // thread of astraea_serve).
  void Run();

  // Async-signal-safe: both only store an atomic flag read by the loop.
  void Stop() { stop_.store(true, std::memory_order_release); }
  void RequestReload() { reload_.store(true, std::memory_order_release); }

  const InferenceServerConfig& config() const { return config_; }
  int model_input_dim() const { return model_input_dim_.load(std::memory_order_acquire); }
  // Observable progress for tests / the CLI status line.
  uint64_t served_total() const { return served_total_.load(std::memory_order_acquire); }
  size_t client_count() const { return client_count_.load(std::memory_order_acquire); }
  uint64_t reload_count() const { return reloads_done_.load(std::memory_order_acquire); }
  uint64_t shed_count() const { return shed_total_count_.load(std::memory_order_acquire); }

 private:
  struct Client {
    int sock = -1;
    ipc::MappedRegion region;
    bool dead = false;
  };
  struct Pending {
    size_t client_index;
    uint64_t req_id;
    TimeNs enqueue_ns;  // monotonic receive time on the server
  };

  void AcceptClients();
  void DrainRequests();
  void FlushBatch();
  void MaybeReload();
  void IdleWait();
  void ReapDeadClients();
  void RespondError(Client* client, uint64_t req_id, uint32_t status);

  InferenceServerConfig config_;
  std::unique_ptr<Mlp> actor_;
  std::atomic<int> model_input_dim_{0};

  int listen_fd_ = -1;
  int event_fd_ = -1;
  int epoll_fd_ = -1;

  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<Pending> pending_;
  std::vector<float> batch_states_;  // row-major [pending x model_input_dim]
  size_t drain_cursor_ = 0;          // round-robin start, rotated every pass
  // EWMA of recent flush (inference + publish) wall time; the admission
  // policy's estimate of how long a newly admitted request will wait.
  TimeNs est_flush_ns_ = 0;

  std::atomic<bool> stop_{false};
  std::atomic<bool> reload_{false};
  std::atomic<uint64_t> served_total_{0};
  std::atomic<size_t> client_count_{0};
  std::atomic<uint64_t> reloads_done_{0};
  std::atomic<uint64_t> shed_total_count_{0};

  // Cached metric handles (registry references are stable).
  Counter* requests_total_;
  Counter* batches_total_;
  Counter* bad_requests_total_;
  Counter* responses_dropped_total_;
  Counter* reloads_total_;
  Counter* reload_errors_total_;
  Counter* shed_total_;
  Counter* drain_rounds_total_;
  Gauge* clients_gauge_;
  Gauge* queue_depth_gauge_;
  Gauge* est_batch_latency_gauge_;
  Histogram* batch_size_hist_;
  Histogram* service_latency_hist_;
};

}  // namespace serve
}  // namespace astraea

#endif  // SRC_SERVE_INFERENCE_SERVER_H_
