#include "src/serve/remote_policy.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>

#include "src/ipc/uds.h"
#include "src/serve/serve_metrics.h"
#include "src/serve/serve_protocol.h"
#include "src/util/logging.h"
#include "src/util/metrics.h"

namespace astraea {
namespace serve {

std::unique_ptr<ServeClient> ServeClient::Connect(const ServeClientConfig& config) {
  ipc::MappedRegion region = ipc::CreateRegion();
  if (!region) {
    return nullptr;
  }
  const int sock = ipc::ConnectUnix(config.socket_path);
  if (sock < 0) {
    return nullptr;
  }
  ClientHello hello{};
  hello.magic = kProtocolMagic;
  hello.version = kProtocolVersion;
  hello.ring_slots = ipc::kRingSlots;
  hello.slot_payload_bytes = ipc::kSlotPayloadBytes;
  const int region_fd = region.fd();
  if (!ipc::SendWithFds(sock, &hello, sizeof(hello), &region_fd, 1)) {
    close(sock);
    return nullptr;
  }
  ServerHello reply{};
  int fds[2] = {-1, -1};
  size_t nfds = 0;
  if (!ipc::RecvWithFds(sock, &reply, sizeof(reply), fds, 2, &nfds, config.connect_timeout)) {
    close(sock);
    return nullptr;
  }
  for (size_t i = 1; i < nfds; ++i) {
    close(fds[i]);
  }
  if (reply.magic != kProtocolMagic || reply.version != kProtocolVersion ||
      reply.accepted == 0 || nfds < 1) {
    if (nfds >= 1) {
      close(fds[0]);
    }
    close(sock);
    return nullptr;
  }
  return std::unique_ptr<ServeClient>(new ServeClient(
      config, std::move(region), sock, fds[0], static_cast<int>(reply.model_input_dim)));
}

ServeClient::ServeClient(ServeClientConfig config, ipc::MappedRegion region, int sock,
                         int event_fd, int model_input_dim)
    : config_(std::move(config)),
      region_(std::move(region)),
      sock_(sock),
      event_fd_(event_fd),
      model_input_dim_(model_input_dim) {
  RegisterServeMetrics();
  MetricsRegistry& reg = MetricsRegistry::Global();
  requests_total_ = &reg.GetCounter("serve.client.requests_total");
  timeouts_total_ = &reg.GetCounter("serve.client.timeouts_total");
  corrupt_total_ = &reg.GetCounter("serve.client.corrupt_total");
  rejected_total_ = &reg.GetCounter("serve.client.rejected_total");
  outstanding_gauge_ = &reg.GetGauge("serve.client.outstanding");
  latency_hist_ = &reg.GetHistogram("serve.client.latency_seconds");
}

ServeClient::~ServeClient() {
  if (sock_ >= 0) {
    close(sock_);
  }
  if (event_fd_ >= 0) {
    close(event_fd_);
  }
}

bool ServeClient::healthy() const { return healthy_; }

void ServeClient::MarkDead() {
  if (healthy_) {
    healthy_ = false;
    ASTRAEA_LOG(Warning) << "serve: server unreachable; degrading to local fallback policy";
  }
}

bool ServeClient::CheckServerAlive() {
  if (!ipc::PeerAlive(sock_)) {
    MarkDead();
    return false;
  }
  return true;
}

std::optional<double> ServeClient::Request(std::span<const float> state) {
  const RequestResult result = RequestDetailed(state);
  if (!result.ok()) {
    return std::nullopt;
  }
  return result.action;
}

RequestResult ServeClient::RequestDetailed(std::span<const float> state) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!healthy_) {
    return {RequestOutcome::kDead, 0.0};
  }
  if (state.empty() || state.size() > kMaxStateDim) {
    return {RequestOutcome::kError, 0.0};
  }
  requests_total_->Increment();
  const uint64_t id = ++next_req_id_;
  const TimeNs t0 = ipc::MonotonicNowNs();
  const TimeNs deadline = t0 + std::max<TimeNs>(config_.rpc_timeout, 0);
  RequestRecord req{};
  req.req_id = id;
  req.deadline_ns = static_cast<uint64_t>(deadline);
  req.state_dim = static_cast<uint32_t>(state.size());
  std::copy(state.begin(), state.end(), req.state);
  req.crc = RequestCrc(req);

  if (!region_->request.TryPush(&req, sizeof(req))) {
    // Ring full: the server has not consumed anything for a whole ring's
    // worth of requests — check whether it is still there at all.
    CheckServerAlive();
    timeouts_total_->Increment();
    return {RequestOutcome::kTimeout, 0.0};
  }
  outstanding_gauge_->Add(1.0);
  // Dekker handshake with the server's idle park (see SpscRing docs): the
  // push's doorbell bump must be globally visible before the parked-flag
  // read, and a parked server is woken through its shared eventfd.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (region_->request.consumer_parked.load(std::memory_order_relaxed) != 0) {
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = write(event_fd_, &one, sizeof(one));
  }

  uint32_t seen = region_->response.doorbell.load(std::memory_order_acquire);
  while (true) {
    ResponseRecord resp{};
    while (region_->response.TryPop(&resp, sizeof(resp))) {
      if (!ValidResponse(resp)) {
        // A record that fails its CRC means the region can no longer be
        // trusted; stop using it rather than risk acting on garbage.
        corrupt_total_->Increment();
        MarkDead();
        outstanding_gauge_->Add(-1.0);
        return {RequestOutcome::kCorrupt, 0.0};
      }
      if (resp.req_id < id) {
        continue;  // stale answer to a request we already gave up on
      }
      outstanding_gauge_->Add(-1.0);
      if (resp.req_id != id) {
        return {RequestOutcome::kError, 0.0};
      }
      if (resp.status == static_cast<uint32_t>(ResponseStatus::kRejected)) {
        // Admission shed: the server told us *now* it cannot make the
        // deadline. The serving path is alive and healthy — this is load,
        // not failure — so fall back for this decision only, cheaply.
        rejected_total_->Increment();
        return {RequestOutcome::kRejected, 0.0};
      }
      if (resp.status != static_cast<uint32_t>(ResponseStatus::kOk) ||
          !std::isfinite(resp.action)) {
        return {RequestOutcome::kError, 0.0};
      }
      latency_hist_->Observe(ToSeconds(ipc::MonotonicNowNs() - t0));
      return {RequestOutcome::kOk, std::clamp(static_cast<double>(resp.action), -1.0, 1.0)};
    }
    const TimeNs now = ipc::MonotonicNowNs();
    if (now >= deadline) {
      ++timeouts_;
      timeouts_total_->Increment();
      outstanding_gauge_->Add(-1.0);
      // Distinguish "slow" (per-request fallback, keep trying) from "dead"
      // (permanent fallback, stop paying the timeout on every decision).
      CheckServerAlive();
      return {RequestOutcome::kTimeout, 0.0};
    }
    seen = ipc::WaitDoorbell(&region_->response, seen, deadline - now);
  }
}

RemotePolicy::RemotePolicy(std::unique_ptr<ServeClient> client,
                           std::shared_ptr<const Policy> fallback,
                           std::optional<ReconnectConfig> reconnect)
    : client_(std::move(client)),
      fallback_(std::move(fallback)),
      reconnect_(std::move(reconnect)),
      backoff_(reconnect_ ? reconnect_->backoff : BackoffConfig{},
               reconnect_ ? reconnect_->seed : 1) {
  RegisterServeMetrics();
  MetricsRegistry& reg = MetricsRegistry::Global();
  fallback_total_ = &reg.GetCounter("serve.fallback_total");
  reconnects_total_ = &reg.GetCounter("serve.client.reconnects_total");
}

uint64_t RemotePolicy::reconnects() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reconnects_;
}

std::shared_ptr<ServeClient> RemotePolicy::HealthyClient() const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (client_ != nullptr && client_->healthy()) {
      return client_;  // shared_ptr copy: safe against a concurrent swap
    }
    if (!reconnect_) {
      return client_;  // no healing configured; a dead client fails fast
    }
    const TimeNs now = ipc::MonotonicNowNs();
    if (now < next_probe_ns_) {
      return nullptr;  // between probes: fallback at zero per-decision cost
    }
    // Advance the schedule *before* probing and drop the lock for the
    // Connect() itself: a half-up server can hold a probe for the full
    // connect_timeout, and concurrent Act() callers must keep falling back
    // instantly instead of queueing on the mutex behind it.
    next_probe_ns_ = now + backoff_.NextDelay();
  }
  std::unique_ptr<ServeClient> fresh = ServeClient::Connect(reconnect_->client);
  if (fresh == nullptr) {
    return nullptr;  // schedule already advanced; nothing else to do
  }
  std::lock_guard<std::mutex> lock(mu_);
  client_ = std::shared_ptr<ServeClient>(std::move(fresh));
  backoff_.Reset();
  next_probe_ns_ = 0;
  ++reconnects_;
  reconnects_total_->Increment();
  ASTRAEA_LOG(Info) << "serve: (re)attached to inference server at "
                    << reconnect_->client.socket_path << " (attach #" << reconnects_ << ")";
  return client_;
}

double RemotePolicy::Act(const StateView& view) const {
  if (const std::shared_ptr<ServeClient> client = HealthyClient()) {
    const RequestResult result = client->RequestDetailed(view.state_vector);
    if (result.ok()) {
      return result.action;
    }
  }
  fallback_total_->Increment();
  return fallback_->Act(view);
}

std::shared_ptr<const Policy> MakeServedPolicy(const std::string& socket_path,
                                               TimeNs rpc_timeout,
                                               std::shared_ptr<const Policy> fallback,
                                               TimeNs connect_timeout) {
  if (fallback == nullptr) {
    fallback = LoadDefaultPolicy();
  }
  ServeClientConfig config;
  config.socket_path = socket_path;
  config.rpc_timeout = rpc_timeout;
  config.connect_timeout = connect_timeout;
  std::unique_ptr<ServeClient> client = ServeClient::Connect(config);
  if (client == nullptr) {
    ASTRAEA_LOG(Warning) << "serve: cannot reach inference server at " << socket_path
                         << "; decisions use the local fallback until one appears";
  }
  ReconnectConfig reconnect;
  reconnect.client = config;
  // Decorrelate probe jitter across processes sharing a socket path.
  reconnect.seed = std::hash<std::string>{}(socket_path) ^
                   (static_cast<uint64_t>(getpid()) << 32) ^ 0x5DEECE66DULL;
  return std::make_shared<RemotePolicy>(std::move(client), std::move(fallback),
                                        std::move(reconnect));
}

}  // namespace serve
}  // namespace astraea
