#include "src/serve/remote_policy.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>

#include "src/ipc/uds.h"
#include "src/serve/serve_protocol.h"
#include "src/util/logging.h"
#include "src/util/metrics.h"

namespace astraea {
namespace serve {

std::unique_ptr<ServeClient> ServeClient::Connect(const ServeClientConfig& config) {
  ipc::MappedRegion region = ipc::CreateRegion();
  if (!region) {
    return nullptr;
  }
  const int sock = ipc::ConnectUnix(config.socket_path);
  if (sock < 0) {
    return nullptr;
  }
  ClientHello hello{};
  hello.magic = kProtocolMagic;
  hello.version = kProtocolVersion;
  hello.ring_slots = ipc::kRingSlots;
  hello.slot_payload_bytes = ipc::kSlotPayloadBytes;
  const int region_fd = region.fd();
  if (!ipc::SendWithFds(sock, &hello, sizeof(hello), &region_fd, 1)) {
    close(sock);
    return nullptr;
  }
  ServerHello reply{};
  int fds[2] = {-1, -1};
  size_t nfds = 0;
  if (!ipc::RecvWithFds(sock, &reply, sizeof(reply), fds, 2, &nfds, config.connect_timeout)) {
    close(sock);
    return nullptr;
  }
  for (size_t i = 1; i < nfds; ++i) {
    close(fds[i]);
  }
  if (reply.magic != kProtocolMagic || reply.version != kProtocolVersion ||
      reply.accepted == 0 || nfds < 1) {
    if (nfds >= 1) {
      close(fds[0]);
    }
    close(sock);
    return nullptr;
  }
  return std::unique_ptr<ServeClient>(new ServeClient(
      config, std::move(region), sock, fds[0], static_cast<int>(reply.model_input_dim)));
}

ServeClient::ServeClient(ServeClientConfig config, ipc::MappedRegion region, int sock,
                         int event_fd, int model_input_dim)
    : config_(std::move(config)),
      region_(std::move(region)),
      sock_(sock),
      event_fd_(event_fd),
      model_input_dim_(model_input_dim) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  requests_total_ = &reg.GetCounter("serve.client.requests_total");
  timeouts_total_ = &reg.GetCounter("serve.client.timeouts_total");
  corrupt_total_ = &reg.GetCounter("serve.client.corrupt_total");
  outstanding_gauge_ = &reg.GetGauge("serve.client.outstanding");
  latency_hist_ = &reg.GetHistogram("serve.client.latency_seconds");
}

ServeClient::~ServeClient() {
  if (sock_ >= 0) {
    close(sock_);
  }
  if (event_fd_ >= 0) {
    close(event_fd_);
  }
}

bool ServeClient::healthy() const { return healthy_; }

void ServeClient::MarkDead() {
  if (healthy_) {
    healthy_ = false;
    ASTRAEA_LOG(Warning) << "serve: server unreachable; degrading to local fallback policy";
  }
}

bool ServeClient::CheckServerAlive() {
  if (!ipc::PeerAlive(sock_)) {
    MarkDead();
    return false;
  }
  return true;
}

std::optional<double> ServeClient::Request(std::span<const float> state) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!healthy_) {
    return std::nullopt;
  }
  if (state.empty() || state.size() > kMaxStateDim) {
    return std::nullopt;
  }
  requests_total_->Increment();
  const uint64_t id = ++next_req_id_;
  RequestRecord req{};
  req.req_id = id;
  req.state_dim = static_cast<uint32_t>(state.size());
  std::copy(state.begin(), state.end(), req.state);
  req.crc = RequestCrc(req);

  const TimeNs t0 = ipc::MonotonicNowNs();
  if (!region_->request.TryPush(&req, sizeof(req))) {
    // Ring full: the server has not consumed anything for a whole ring's
    // worth of requests — check whether it is still there at all.
    CheckServerAlive();
    timeouts_total_->Increment();
    return std::nullopt;
  }
  outstanding_gauge_->Add(1.0);
  // Dekker handshake with the server's idle park (see SpscRing docs): the
  // push's doorbell bump must be globally visible before the parked-flag
  // read, and a parked server is woken through its shared eventfd.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (region_->request.consumer_parked.load(std::memory_order_relaxed) != 0) {
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = write(event_fd_, &one, sizeof(one));
  }

  const TimeNs deadline = t0 + std::max<TimeNs>(config_.rpc_timeout, 0);
  uint32_t seen = region_->response.doorbell.load(std::memory_order_acquire);
  while (true) {
    ResponseRecord resp{};
    while (region_->response.TryPop(&resp, sizeof(resp))) {
      if (!ValidResponse(resp)) {
        // A record that fails its CRC means the region can no longer be
        // trusted; stop using it rather than risk acting on garbage.
        corrupt_total_->Increment();
        MarkDead();
        outstanding_gauge_->Add(-1.0);
        return std::nullopt;
      }
      if (resp.req_id < id) {
        continue;  // stale answer to a request we already gave up on
      }
      outstanding_gauge_->Add(-1.0);
      if (resp.req_id != id || resp.status != static_cast<uint32_t>(ResponseStatus::kOk) ||
          !std::isfinite(resp.action)) {
        return std::nullopt;
      }
      latency_hist_->Observe(ToSeconds(ipc::MonotonicNowNs() - t0));
      return std::clamp(static_cast<double>(resp.action), -1.0, 1.0);
    }
    const TimeNs now = ipc::MonotonicNowNs();
    if (now >= deadline) {
      ++timeouts_;
      timeouts_total_->Increment();
      outstanding_gauge_->Add(-1.0);
      // Distinguish "slow" (per-request fallback, keep trying) from "dead"
      // (permanent fallback, stop paying the timeout on every decision).
      CheckServerAlive();
      return std::nullopt;
    }
    seen = ipc::WaitDoorbell(&region_->response, seen, deadline - now);
  }
}

RemotePolicy::RemotePolicy(std::unique_ptr<ServeClient> client,
                           std::shared_ptr<const Policy> fallback)
    : client_(std::move(client)), fallback_(std::move(fallback)) {
  fallback_total_ = &MetricsRegistry::Global().GetCounter("serve.fallback_total");
}

double RemotePolicy::Act(const StateView& view) const {
  if (client_ != nullptr) {
    if (const std::optional<double> action = client_->Request(view.state_vector)) {
      return *action;
    }
  }
  fallback_total_->Increment();
  return fallback_->Act(view);
}

std::shared_ptr<const Policy> MakeServedPolicy(const std::string& socket_path,
                                               TimeNs rpc_timeout,
                                               std::shared_ptr<const Policy> fallback) {
  if (fallback == nullptr) {
    fallback = LoadDefaultPolicy();
  }
  ServeClientConfig config;
  config.socket_path = socket_path;
  config.rpc_timeout = rpc_timeout;
  std::unique_ptr<ServeClient> client = ServeClient::Connect(config);
  if (client == nullptr) {
    ASTRAEA_LOG(Warning) << "serve: cannot reach inference server at " << socket_path
                         << "; every decision will use the local fallback policy";
  }
  return std::make_shared<RemotePolicy>(std::move(client), std::move(fallback));
}

}  // namespace serve
}  // namespace astraea
