// Client side of the inference-serving subsystem.
//
// `ServeClient` owns one shared-memory ring pair against a running
// `astraea_serve` (it creates the memfd region, hands it over during the
// unix-socket handshake, and keeps the socket open purely for death
// detection). `Request()` is synchronous with a hard per-request deadline:
// the caller gets either the served action or std::nullopt — never a stall.
// Every request carries its absolute deadline so the server's admission
// policy can shed it (kRejected) the moment it becomes unservable; a shed
// request resolves in a fraction of the rpc timeout instead of all of it.
//
// `RemotePolicy` adapts that to the existing `Policy` interface so
// AstraeaController / run_scenario / astraea_eval can switch between
// in-process and served inference with one flag. Degradation is graceful by
// construction — any timeout, corruption, rejection, or server death makes
// Act() fall back to a local policy — and, when constructed with a reconnect
// config, *self-healing*: after the server dies (or was never up) the policy
// serves from the fallback at zero per-decision cost while probing the
// socket on a jittered exponential-backoff schedule (src/util/backoff.h),
// and re-attaches automatically when a server returns. The degradation state
// machine is served -> shed -> fallback -> reconnect -> served (DESIGN.md
// §12).
//
// Client-side metrics: serve.client.requests_total,
// serve.client.timeouts_total, serve.client.corrupt_total,
// serve.client.rejected_total, serve.client.reconnects_total,
// serve.fallback_total (counters); serve.client.outstanding (gauge);
// serve.client.latency_seconds (end-to-end decision latency histogram). All
// pre-registered zero-valued at construction (serve_metrics.h).

#ifndef SRC_SERVE_REMOTE_POLICY_H_
#define SRC_SERVE_REMOTE_POLICY_H_

#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>

#include "src/core/policy.h"
#include "src/ipc/shm_ring.h"
#include "src/util/backoff.h"
#include "src/util/time.h"

namespace astraea {

class Counter;
class Gauge;
class Histogram;

namespace serve {

struct ServeClientConfig {
  std::string socket_path;
  // Per-request deadline; on expiry the caller falls back locally.
  TimeNs rpc_timeout = Milliseconds(20);
  TimeNs connect_timeout = Milliseconds(500);
};

// How a single served request resolved, for callers (bench_serve_overload,
// soak tests) that need to distinguish a fast-fail shed from a burned
// timeout.
enum class RequestOutcome {
  kOk,        // served action
  kRejected,  // shed by server admission control (fast fail; client healthy)
  kTimeout,   // no answer within rpc_timeout
  kCorrupt,   // CRC-invalid response; rings no longer trusted (client dead)
  kDead,      // server known dead / rings poisoned before the request
  kError,     // served an explicit error (bad request / inference failure)
};

struct RequestResult {
  RequestOutcome outcome = RequestOutcome::kDead;
  double action = 0.0;  // valid iff outcome == kOk
  bool ok() const { return outcome == RequestOutcome::kOk; }
};

class ServeClient {
 public:
  // Connects and completes the handshake. Returns nullptr on any failure
  // (no server, protocol mismatch, handshake timeout).
  static std::unique_ptr<ServeClient> Connect(const ServeClientConfig& config);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  // Blocking round trip, bounded by rpc_timeout. Returns the action in
  // [-1, 1], or nullopt on timeout / corruption / rejection / dead server.
  // Serialized internally (the ring is single-producer), so a shared client
  // is safe to call from multiple threads, one request at a time.
  std::optional<double> Request(std::span<const float> state);

  // Same round trip with the failure mode surfaced.
  RequestResult RequestDetailed(std::span<const float> state);

  // False once the server has been observed dead (socket EOF) or the rings
  // are untrusted (corrupt record seen); Request() then fails immediately.
  bool healthy() const;

  int model_input_dim() const { return model_input_dim_; }
  uint64_t timeouts() const { return timeouts_; }

  // Test hook: direct access to the shared region (e.g. to inject
  // corruption). The region stays valid for the client's lifetime.
  ipc::ShmRegion* region_for_test() { return region_.get(); }

 private:
  ServeClient(ServeClientConfig config, ipc::MappedRegion region, int sock, int event_fd,
              int model_input_dim);

  void MarkDead();
  bool CheckServerAlive();

  ServeClientConfig config_;
  ipc::MappedRegion region_;
  int sock_ = -1;
  int event_fd_ = -1;  // server's doorbell (shared across clients)
  int model_input_dim_ = 0;

  std::mutex mu_;  // serializes Request(): SPSC ring, one producer at a time
  uint64_t next_req_id_ = 0;
  uint64_t timeouts_ = 0;
  bool healthy_ = true;

  Counter* requests_total_;
  Counter* timeouts_total_;
  Counter* corrupt_total_;
  Counter* rejected_total_;
  Gauge* outstanding_gauge_;
  Histogram* latency_hist_;
};

// Reconnection behaviour for a self-healing RemotePolicy.
struct ReconnectConfig {
  ServeClientConfig client;  // how to (re)connect, incl. timeouts
  BackoffConfig backoff{Milliseconds(10), Seconds(2.0), 2.0, 0.25};
  uint64_t seed = 1;  // jitter stream; derive per client to avoid stampedes
};

// Policy adapter: served inference with graceful local fallback and optional
// self-healing reconnection.
class RemotePolicy : public Policy {
 public:
  // `client` may be nullptr (e.g. the server was unreachable at startup);
  // the policy is then a pure pass-through to `fallback`, still counting
  // each miss in serve.fallback_total. With `reconnect` set, a dead or
  // absent client is re-established on a jittered backoff probe schedule:
  // probes are free when no socket exists (immediate connect failure) and
  // bounded by connect_timeout when a server is half-up.
  RemotePolicy(std::unique_ptr<ServeClient> client, std::shared_ptr<const Policy> fallback,
               std::optional<ReconnectConfig> reconnect = std::nullopt);

  double Act(const StateView& view) const override;
  std::string name() const override { return "astraea-remote"; }

  const ServeClient* client() const { return client_.get(); }
  ServeClient* mutable_client() { return client_.get(); }
  const Policy& fallback() const { return *fallback_; }
  uint64_t reconnects() const;

 private:
  // Returns the client to use for this decision, probing for a new one first
  // when the current one is dead/absent and a probe is due.
  std::shared_ptr<ServeClient> HealthyClient() const;

  mutable std::mutex mu_;  // guards client_ swaps and the probe schedule
  mutable std::shared_ptr<ServeClient> client_;
  std::shared_ptr<const Policy> fallback_;
  std::optional<ReconnectConfig> reconnect_;
  mutable ExponentialBackoff backoff_;
  mutable TimeNs next_probe_ns_ = 0;  // monotonic; 0 = probe immediately
  mutable uint64_t reconnects_ = 0;
  Counter* fallback_total_;
  Counter* reconnects_total_;
};

// Convenience: connect to `socket_path` and wrap the result in a
// self-healing RemotePolicy over `fallback` (default: LoadDefaultPolicy()).
// Logs a warning when the server is unreachable — callers always get a
// usable policy that will attach (or re-attach) whenever a server appears.
std::shared_ptr<const Policy> MakeServedPolicy(const std::string& socket_path,
                                               TimeNs rpc_timeout,
                                               std::shared_ptr<const Policy> fallback = nullptr,
                                               TimeNs connect_timeout = Milliseconds(500));

}  // namespace serve
}  // namespace astraea

#endif  // SRC_SERVE_REMOTE_POLICY_H_
