#include "src/serve/serve_metrics.h"

#include "src/util/metrics.h"

namespace astraea {
namespace serve {

void RegisterServeMetrics() {
  MetricsRegistry& reg = MetricsRegistry::Global();
  // Server side.
  reg.GetCounter("serve.requests_total");
  reg.GetCounter("serve.batches_total");
  reg.GetCounter("serve.bad_requests_total");
  reg.GetCounter("serve.responses_dropped_total");
  reg.GetCounter("serve.reloads_total");
  reg.GetCounter("serve.reload_errors_total");
  reg.GetCounter("serve.shed_total");
  reg.GetCounter("serve.drain_rounds");
  reg.GetCounter("serve.supervisor.restarts_total");
  reg.GetGauge("serve.clients");
  reg.GetGauge("serve.queue_depth");
  reg.GetGauge("serve.est_batch_latency_seconds");
  reg.GetHistogram("serve.batch_size");
  reg.GetHistogram("serve.service_latency_seconds");
  // Client side.
  reg.GetCounter("serve.client.requests_total");
  reg.GetCounter("serve.client.timeouts_total");
  reg.GetCounter("serve.client.corrupt_total");
  reg.GetCounter("serve.client.rejected_total");
  reg.GetCounter("serve.client.reconnects_total");
  reg.GetCounter("serve.fallback_total");
  reg.GetGauge("serve.client.outstanding");
  reg.GetHistogram("serve.client.latency_seconds");
}

}  // namespace serve
}  // namespace astraea
