// Pre-registration of every serving metric, matching the PR-5/PR-6 convention
// for invariants.violations_total: registering a name zero-values it, so a
// scrape (dashboard, bench JSON, CI assertion) taken before the first
// request/shed/reconnect still contains the key instead of silently missing
// it. Both sides of the serving boundary call this at construction — the
// server registers the client-side names too (and vice versa) because a
// metrics dump from either process is read by the same tooling.

#ifndef SRC_SERVE_SERVE_METRICS_H_
#define SRC_SERVE_SERVE_METRICS_H_

namespace astraea {
namespace serve {

// Idempotent; cheap after the first call (registry lookups by name).
void RegisterServeMetrics();

}  // namespace serve
}  // namespace astraea

#endif  // SRC_SERVE_SERVE_METRICS_H_
