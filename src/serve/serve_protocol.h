// Wire protocol between `astraea_serve` and its clients.
//
// Control channel (unix stream socket): one fixed-size hello each way.
//   client -> server: ClientHello + SCM_RIGHTS{memfd of the ShmRegion}
//   server -> client: ServerHello + SCM_RIGHTS{server doorbell eventfd}
// After the handshake the socket carries no payload; it exists so either side
// can detect the other's death (EOF) cheaply.
//
// Data path (shared memory, see ipc/shm_ring.h): fixed-size request/response
// records. Every record carries a CRC32 over its meaningful bytes, so a
// bit-flipped slot is detected and dropped rather than interpreted — the
// receiving side's reaction to corruption is always "treat as missing",
// which the client converts into a local-policy fallback at its deadline.

#ifndef SRC_SERVE_SERVE_PROTOCOL_H_
#define SRC_SERVE_SERVE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "src/ipc/shm_ring.h"
#include "src/util/checkpoint.h"

namespace astraea {
namespace serve {

inline constexpr uint32_t kProtocolMagic = 0x41535256;  // "ASRV"
// v2: RequestRecord carries an absolute deadline, ResponseStatus adds
// kRejected (server-side admission shed). Mismatched peers refuse each other
// at the handshake rather than mis-parsing records.
inline constexpr uint32_t kProtocolVersion = 2;

// Largest state vector a request slot can carry. The paper's deployed model
// consumes 40 floats (8 features x w=5); 60 leaves headroom for deeper
// history windows without changing the slot layout.
inline constexpr size_t kMaxStateDim = 60;

struct ClientHello {
  uint32_t magic;
  uint32_t version;
  uint32_t ring_slots;          // must equal ipc::kRingSlots
  uint32_t slot_payload_bytes;  // must equal ipc::kSlotPayloadBytes
};

struct ServerHello {
  uint32_t magic;
  uint32_t version;
  uint32_t accepted;  // 0 = rejected (mismatched protocol/ring layout)
  uint32_t model_input_dim;
};

struct RequestRecord {
  uint64_t req_id;  // client-local, strictly increasing
  // Absolute CLOCK_MONOTONIC deadline (ipc::MonotonicNowNs time base) by
  // which the client needs its answer; 0 = no deadline. Client and server
  // share a host (shm transport), so the clocks are directly comparable.
  // The server's admission policy sheds a request it cannot serve in time.
  uint64_t deadline_ns;
  uint32_t state_dim;  // number of valid floats in `state`
  uint32_t crc;        // CRC32 over req_id, deadline_ns, state_dim, state[0..state_dim)
  float state[kMaxStateDim];
};

enum class ResponseStatus : uint32_t {
  kOk = 0,
  kBadRequest = 1,   // CRC/dim validation failed server-side
  kServerError = 2,  // inference failed
  kRejected = 3,     // shed by admission control: fall back NOW, don't wait
};

struct ResponseRecord {
  uint64_t req_id;
  uint32_t status;  // ResponseStatus
  uint32_t crc;     // CRC32 over req_id, status, action
  float action;
  float reserved[3];
};

static_assert(sizeof(RequestRecord) <= ipc::kSlotPayloadBytes);
static_assert(sizeof(ResponseRecord) <= ipc::kSlotPayloadBytes);

inline uint32_t RequestCrc(const RequestRecord& r) {
  // CRC the fixed header fields and only the *valid* prefix of the state, so
  // garbage beyond state_dim can't affect the checksum.
  unsigned char buf[2 * sizeof(uint64_t) + sizeof(uint32_t) + sizeof(r.state)];
  std::memcpy(buf, &r.req_id, sizeof(r.req_id));
  std::memcpy(buf + sizeof(r.req_id), &r.deadline_ns, sizeof(r.deadline_ns));
  size_t off = sizeof(r.req_id) + sizeof(r.deadline_ns);
  std::memcpy(buf + off, &r.state_dim, sizeof(r.state_dim));
  off += sizeof(r.state_dim);
  const size_t dim = r.state_dim <= kMaxStateDim ? r.state_dim : 0;
  std::memcpy(buf + off, r.state, dim * sizeof(float));
  return Crc32(buf, off + dim * sizeof(float));
}

inline uint32_t ResponseCrc(const ResponseRecord& r) {
  unsigned char buf[sizeof(uint64_t) + sizeof(uint32_t) + sizeof(float)];
  std::memcpy(buf, &r.req_id, sizeof(r.req_id));
  std::memcpy(buf + sizeof(r.req_id), &r.status, sizeof(r.status));
  std::memcpy(buf + sizeof(r.req_id) + sizeof(r.status), &r.action, sizeof(r.action));
  return Crc32(buf, sizeof(buf));
}

inline bool ValidRequest(const RequestRecord& r) {
  return r.state_dim >= 1 && r.state_dim <= kMaxStateDim && r.crc == RequestCrc(r);
}

inline bool ValidResponse(const ResponseRecord& r) {
  return r.status <= static_cast<uint32_t>(ResponseStatus::kRejected) &&
         r.crc == ResponseCrc(r);
}

}  // namespace serve
}  // namespace astraea

#endif  // SRC_SERVE_SERVE_PROTOCOL_H_
