#include "src/serve/supervisor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "src/ipc/shm_ring.h"
#include "src/serve/serve_metrics.h"
#include "src/util/logging.h"
#include "src/util/metrics.h"

namespace astraea {
namespace serve {

namespace {

// Child-side: undo whatever handlers the supervising parent installed so the
// serving loop starts from default dispositions (the tool re-installs its
// own).
void ResetSignals() {
  struct sigaction sa;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sa.sa_handler = SIG_DFL;
  sigaction(SIGHUP, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

bool CleanExit(int status) { return WIFEXITED(status) && WEXITSTATUS(status) == 0; }

int ExitCode(int status) {
  if (WIFEXITED(status)) {
    return WEXITSTATUS(status);
  }
  if (WIFSIGNALED(status)) {
    return 128 + WTERMSIG(status);
  }
  return 1;
}

}  // namespace

Supervisor::Supervisor(SupervisorConfig config, std::function<int(TimeNs elapsed)> child_main)
    : config_(config),
      child_main_(std::move(child_main)),
      backoff_(config.restart_backoff, config.seed) {
  RegisterServeMetrics();
}

int Supervisor::Run() {
  Counter& restarts_total = MetricsRegistry::Global().GetCounter("serve.supervisor.restarts_total");
  const TimeNs start = ipc::MonotonicNowNs();
  int last_status = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    const TimeNs spawn = ipc::MonotonicNowNs();
    const pid_t pid = fork();
    if (pid < 0) {
      ASTRAEA_LOG(Error) << "supervisor: fork failed: " << std::strerror(errno);
      return 1;
    }
    if (pid == 0) {
      ResetSignals();
      _exit(child_main_(spawn - start));
    }
    child_pid_.store(pid, std::memory_order_release);

    int status = 0;
    while (waitpid(pid, &status, 0) < 0) {
      if (errno != EINTR) {
        status = 0;
        break;
      }
      // A Stop() from a signal handler lands here: make sure the child is
      // going down, then keep waiting so it never outlives us unreaped.
      if (stop_.load(std::memory_order_acquire)) {
        kill(pid, SIGTERM);
      }
    }
    child_pid_.store(-1, std::memory_order_release);
    last_status = ExitCode(status);
    const TimeNs uptime = ipc::MonotonicNowNs() - spawn;

    if (CleanExit(status) || stop_.load(std::memory_order_acquire)) {
      return stop_.load(std::memory_order_acquire) ? 0 : last_status;
    }
    // Abnormal exit: restart (with brake), unless the budget ran out.
    if (config_.max_restarts >= 0 &&
        restarts_.load(std::memory_order_acquire) >= static_cast<uint64_t>(config_.max_restarts)) {
      ASTRAEA_LOG(Error) << "supervisor: child died (status " << last_status << ") and the "
                         << config_.max_restarts << "-restart budget is spent; giving up";
      return last_status;
    }
    const uint64_t n = restarts_.fetch_add(1, std::memory_order_acq_rel) + 1;
    restarts_total.Increment();
    if (uptime >= config_.healthy_uptime) {
      backoff_.Reset();
    }
    const TimeNs delay = backoff_.NextDelay();
    ASTRAEA_LOG(Warning) << "supervisor: child died (status " << last_status << ", uptime "
                         << FormatTime(uptime) << "); restart #" << n << " in "
                         << FormatTime(delay);
    // Interruptible backoff sleep: Stop() must not wait out a 5 s brake.
    const TimeNs until = ipc::MonotonicNowNs() + delay;
    while (!stop_.load(std::memory_order_acquire) && ipc::MonotonicNowNs() < until) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  return last_status;
}

void Supervisor::Stop() {
  stop_.store(true, std::memory_order_release);
  const pid_t pid = child_pid_.load(std::memory_order_acquire);
  if (pid > 0) {
    kill(pid, SIGTERM);
  }
}

void Supervisor::SignalChild(int signum) {
  const pid_t pid = child_pid_.load(std::memory_order_acquire);
  if (pid > 0) {
    kill(pid, signum);
  }
}

}  // namespace serve
}  // namespace astraea
