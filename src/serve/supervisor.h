// Supervised restarts for astraea_serve (`--supervise`).
//
// The supervisor is a tiny fork/exec-free process manager: it forks the
// serving loop into a child, waits, and — when the child dies abnormally
// (crash failpoint, OOM kill, SIGSEGV) — restarts it after a jittered
// exponential backoff (src/util/backoff.h) so a crash-looping model can't
// peg a core with fork storms. A child that stays up for `healthy_uptime`
// resets the backoff, so the brake only binds on *loops*, not on isolated
// crashes hours apart.
//
// Each (re)start invokes `child_main(elapsed)` in the fresh child, where
// `elapsed` is wall time since the supervisor itself started — a chaos
// schedule (src/util/chaos.h) passes this as its resume offset so an
// injected storm continues mid-timeline across restarts instead of replaying
// from zero.
//
// Signal contract (wired in tools/astraea_serve): the parent forwards SIGHUP
// to the child (hot reload still works under supervision); SIGINT/SIGTERM
// call Stop(), which terminates the child and makes Run() return instead of
// restarting. Restarts are counted in serve.supervisor.restarts_total.

#ifndef SRC_SERVE_SUPERVISOR_H_
#define SRC_SERVE_SUPERVISOR_H_

#include <sys/types.h>

#include <atomic>
#include <functional>

#include "src/util/backoff.h"
#include "src/util/time.h"

namespace astraea {
namespace serve {

struct SupervisorConfig {
  // Crash-loop brake: delay before restart #n, doubling up to the cap.
  BackoffConfig restart_backoff{Milliseconds(50), Seconds(5.0), 2.0, 0.25};
  // A child alive at least this long is "healthy": the next crash restarts
  // from the base delay again.
  TimeNs healthy_uptime = Seconds(5.0);
  // Give up after this many restarts (-1 = never). Run() then returns the
  // last child's status, like an un-supervised crash.
  int max_restarts = -1;
  uint64_t seed = 1;  // restart-jitter stream
};

class Supervisor {
 public:
  // `child_main` runs in the forked child with default signal dispositions;
  // its return value becomes the child's exit code. It receives the elapsed
  // time since Run() began (monotonic), for resuming time-based state.
  Supervisor(SupervisorConfig config, std::function<int(TimeNs elapsed)> child_main);

  // Forks and supervises until the child exits cleanly (exit code 0), the
  // restart budget is exhausted, or Stop() is called. Returns the last
  // child's exit code (0 on a clean or Stop()-initiated shutdown).
  int Run();

  // Async-signal-safe: flags the loop and SIGTERMs the current child.
  void Stop();
  // Async-signal-safe: forward a signal (e.g. SIGHUP for hot reload) to the
  // current child, if one is running.
  void SignalChild(int signum);

  pid_t child_pid() const { return child_pid_.load(std::memory_order_acquire); }
  uint64_t restarts() const { return restarts_.load(std::memory_order_acquire); }

 private:
  SupervisorConfig config_;
  std::function<int(TimeNs elapsed)> child_main_;
  ExponentialBackoff backoff_;
  std::atomic<pid_t> child_pid_{-1};
  std::atomic<uint64_t> restarts_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace serve
}  // namespace astraea

#endif  // SRC_SERVE_SUPERVISOR_H_
