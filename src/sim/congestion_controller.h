// The congestion-control interface every scheme in the comparison set
// implements. The simulator's sender drives it with three kinds of events:
//
//  * OnAck    — one call per acknowledged data packet (loss-/delay-based TCPs).
//  * OnLoss   — a batch of packets declared lost (dup-ACK gap or RTO).
//  * OnMtpTick — once per Monitoring Time Period with aggregated statistics
//                (the interval-driven learning schemes: Vivace, Aurora, Orca,
//                Astraea; see paper §3.3).
//
// The sender reads back cwnd_bytes() after every event, and pacing_bps() to
// decide packet spacing (ACK-clocked when absent).

#ifndef SRC_SIM_CONGESTION_CONTROLLER_H_
#define SRC_SIM_CONGESTION_CONTROLLER_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/sim/trace.h"
#include "src/util/time.h"

namespace astraea {

struct AckEvent {
  TimeNs now = 0;
  TimeNs rtt = 0;              // sample from this ACK
  TimeNs srtt = 0;             // sender's smoothed RTT
  TimeNs min_rtt = 0;          // lowest RTT ever observed by this flow
  uint64_t acked_bytes = 0;
  uint64_t inflight_bytes = 0;  // after this ACK was processed
  double delivery_rate_bps = 0.0;  // recent goodput estimate (BBR-style)
  // Receiver echoed a CE mark for this packet (ECN-enabled bottlenecks only;
  // always false on paths without an EcnMarkingQueue).
  bool ecn_ce = false;
};

struct LossEvent {
  TimeNs now = 0;
  uint64_t lost_bytes = 0;
  bool is_timeout = false;     // RTO (vs. dup-ACK-style gap detection)
  uint64_t inflight_bytes = 0;
};

// Aggregated per-MTP statistics, matching the packet statistics the paper's
// state block consumes (§3.3).
struct MtpReport {
  TimeNs now = 0;
  TimeNs mtp = 0;               // interval length
  double thr_bps = 0.0;         // delivered (ACKed) rate over the interval
  double loss_bps = 0.0;        // rate of bytes declared lost over the interval
  double loss_ratio = 0.0;      // lost / (lost + acked), 0 when idle
  TimeNs avg_rtt = 0;           // mean RTT of ACKs in the interval (0 if none)
  TimeNs srtt = 0;
  TimeNs min_rtt = 0;           // lowest RTT ever observed
  uint64_t inflight_bytes = 0;
  uint64_t inflight_packets = 0;
  uint64_t cwnd_bytes = 0;
  double pacing_bps = 0.0;      // pacing rate in force during the interval
  uint64_t acked_packets = 0;
  // True when no ACK arrived in the interval. avg_rtt is then a lower-bound
  // estimate (max of srtt and the silence elapsed since the last ACK), not a
  // measurement: a stalled flow must not feed the policy a zero-throughput
  // row that still claims a healthy latency.
  bool stalled = false;
  // ECN accounting over the interval: CE-marked ACKed bytes, and their share
  // of all ACKed bytes (0 on paths without an EcnMarkingQueue).
  uint64_t ecn_ce_bytes = 0;
  double ecn_ce_ratio = 0.0;
};

class CongestionController {
 public:
  virtual ~CongestionController() = default;

  virtual void OnFlowStart(TimeNs /*now*/, uint32_t /*mss*/) {}
  virtual void OnAck(const AckEvent& /*ev*/) {}
  virtual void OnLoss(const LossEvent& /*ev*/) {}
  virtual void OnMtpTick(const MtpReport& /*report*/) {}

  // Current congestion window. The sender never lets inflight exceed this.
  virtual uint64_t cwnd_bytes() const = 0;

  // When set, the sender paces packets at this rate (subject to cwnd).
  virtual std::optional<double> pacing_bps() const { return std::nullopt; }

  virtual std::string name() const = 0;

  // Whether the scheme reacts to CE marks. The sender sets ECT on outgoing
  // packets only when this is true, so ECN-blind schemes keep today's
  // drop/delay signal byte-for-byte (the marking queue never touches
  // non-ECT packets).
  virtual bool EcnCapable() const { return false; }

  // Optional event tracing: the sender forwards its tracer (and flow id) so
  // learning controllers can record per-decision events (kAction). The base
  // implementation ignores it; schemes that trace override.
  virtual void set_tracer(Tracer* /*tracer*/, int32_t /*flow_id*/) {}
};

}  // namespace astraea

#endif  // SRC_SIM_CONGESTION_CONTROLLER_H_
