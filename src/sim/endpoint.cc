#include "src/sim/endpoint.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <utility>

#include "src/sim/invariants.h"
#include "src/util/logging.h"

namespace astraea {

namespace {
// Every kDeepAuditPeriod-th check also recounts in-flight bytes against the
// outstanding list (O(window)); the per-event checks stay O(1).
constexpr uint64_t kDeepAuditPeriod = 256;
// Generous cwnd ceiling: 1 TiB in flight means the controller's arithmetic
// overflowed or went negative, not that the network is fast.
constexpr uint64_t kMaxSaneCwndBytes = 1ULL << 40;
}  // namespace

void Receiver::Accept(PacketRef ref) {
  // Copy the ACK fields out and return the slot: the packet's life ends here.
  const Packet& pkt = pool_->Get(ref);
  const uint64_t seq = pkt.seq;
  const TimeNs sent = pkt.sent_time;
  const uint32_t size = pkt.size_bytes;
  const bool ecn_ce = pkt.ecn_ce;
  pool_->Release(ref);
  received_bytes_ += size;
  if (sender_ == nullptr) {
    return;
  }
  // The reverse path is uncongested: deliver the ACK after a pure delay. The
  // lambda holds only a weak handle — if the sender is torn down before the
  // ACK lands, the handle has expired and the ACK is silently discarded.
  std::weak_ptr<Sender*> weak = sender_->weak_handle();
  events_->ScheduleAfter(ack_return_delay_, [weak, seq, sent, size, ecn_ce] {
    if (auto alive = weak.lock()) {
      (*alive)->OnAckArrival(seq, sent, size, ecn_ce);
    }
  });
}

Sender::Sender(EventQueue* events, PacketPool* pool, int flow_id, Route data_route,
               std::unique_ptr<CongestionController> cc, SenderConfig config)
    : events_(events),
      pool_(pool),
      flow_id_(flow_id),
      route_(std::move(data_route)),
      cc_(std::move(cc)),
      config_(config),
      meter_(config.min_rtt_window) {
  ASTRAEA_CHECK(!route_.empty());
  ASTRAEA_CHECK(pool_ != nullptr);
  ASTRAEA_CHECK(cc_ != nullptr);
}

Sender::~Sender() = default;

void Sender::VerifyInvariants(const char* where, bool deep) const {
  if (!invariants::Enabled()) {
    return;
  }
  // Conservation: every sent byte is acked, declared lost, or still in
  // flight. Wire/queue drops live in "in flight" until the ACK gap or the
  // RTO writes them off, so this holds at every instant.
  if (stats_.bytes_sent != stats_.bytes_acked + stats_.bytes_lost + inflight_bytes_) {
    invariants::Report("flow.conservation",
                       std::string(where) + " flow " + std::to_string(flow_id_) + ": sent " +
                           std::to_string(stats_.bytes_sent) + " B != acked " +
                           std::to_string(stats_.bytes_acked) + " + lost " +
                           std::to_string(stats_.bytes_lost) + " + inflight " +
                           std::to_string(inflight_bytes_) + " B");
  }
  // Controllers may legitimately report cwnd 0 before Start() or after a
  // Stop() collapse, so the zero check only applies while the flow transmits.
  const uint64_t cwnd = cc_->cwnd_bytes();
  if ((cwnd == 0 && running_) || cwnd > kMaxSaneCwndBytes) {
    invariants::Report("cc.cwnd_range", std::string(where) + " flow " +
                                            std::to_string(flow_id_) + " (" + cc_->name() +
                                            "): cwnd " + std::to_string(cwnd) + " B");
  }
  if (const std::optional<double> pacing = cc_->pacing_bps(); pacing.has_value()) {
    if (!std::isfinite(*pacing) || *pacing < 0.0 || (*pacing == 0.0 && running_)) {
      invariants::Report("cc.pacing_range", std::string(where) + " flow " +
                                                std::to_string(flow_id_) + " (" + cc_->name() +
                                                "): pacing " + std::to_string(*pacing) + " bps");
    }
  }
  // Note: min_rtt can transiently exceed srtt after the windowed min expires
  // while the EWMA is still converging, so only sign sanity is checked here.
  if (meter_.srtt() < 0 || meter_.min_rtt() < 0) {
    invariants::Report("flow.rtt_estimators",
                       std::string(where) + " flow " + std::to_string(flow_id_) + ": srtt " +
                           std::to_string(meter_.srtt()) + " ns, min_rtt " +
                           std::to_string(meter_.min_rtt()) + " ns");
  }
  if (deep) {
    uint64_t recount = 0;
    for (const Outstanding& o : outstanding_) {
      recount += o.size_bytes;
    }
    if (recount != inflight_bytes_) {
      invariants::Report("flow.inflight_audit",
                         std::string(where) + " flow " + std::to_string(flow_id_) +
                             ": inflight counter " + std::to_string(inflight_bytes_) +
                             " B != outstanding-list total " + std::to_string(recount) + " B");
    }
  }
}

void Sender::set_tracer(Tracer* tracer) {
  tracer_ = tracer;
  cc_->set_tracer(tracer, flow_id_);
}

void Sender::Start() {
  ASTRAEA_CHECK(!running_);
  running_ = true;
  stats_.started_at = events_->now();
  last_ack_time_ = events_->now();
  cc_->OnFlowStart(events_->now(), config_.mss);
  next_send_time_ = events_->now();

  // Arm the MTP clock.
  const uint64_t gen = ++mtp_generation_;
  std::weak_ptr<Sender*> weak = alive_;
  events_->ScheduleAfter(config_.mtp, [weak, gen] {
    auto alive = weak.lock();
    if (!alive) {
      return;
    }
    Sender* self = *alive;
    if (gen == self->mtp_generation_ && self->running_) {
      self->MtpTick();
    }
  });

  if (cc_->pacing_bps().has_value()) {
    SchedulePacedSend();
  } else {
    TrySend();
  }
  ArmRtoTimer();
}

void Sender::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  stats_.stopped_at = events_->now();
  ++mtp_generation_;  // disarm MTP clock
  ++rto_generation_;  // disarm RTO
}

uint64_t Sender::EffectiveCwnd() const {
  // Never let the controller deadlock the flow: at least 2 MSS in flight.
  return std::max<uint64_t>(cc_->cwnd_bytes(), 2ULL * config_.mss);
}

bool Sender::BudgetExhausted() const {
  return config_.max_transfer_bytes > 0 && stats_.bytes_sent >= config_.max_transfer_bytes;
}

void Sender::MaybeComplete() {
  if (config_.max_transfer_bytes == 0 || stats_.completed_at >= 0 || !BudgetExhausted() ||
      inflight_bytes_ != 0) {
    return;
  }
  stats_.completed_at = events_->now();
  Stop();
}

void Sender::TrySend() {
  while (running_ && !BudgetExhausted() && inflight_bytes_ + config_.mss <= EffectiveCwnd()) {
    SendPacket();
  }
}

void Sender::SchedulePacedSend() {
  if (!running_ || pace_pending_ || BudgetExhausted()) {
    return;
  }
  if (inflight_bytes_ + config_.mss > EffectiveCwnd()) {
    return;  // cwnd-limited; resumed by the next ACK/loss/MTP event
  }
  const TimeNs now = events_->now();
  next_send_time_ = std::max(next_send_time_, now);
  pace_pending_ = true;
  std::weak_ptr<Sender*> weak = alive_;
  events_->Schedule(next_send_time_, [weak] {
    auto alive = weak.lock();
    if (!alive) {
      return;
    }
    Sender* self = *alive;
    self->pace_pending_ = false;
    if (!self->running_ || self->BudgetExhausted() ||
        self->inflight_bytes_ + self->config_.mss > self->EffectiveCwnd()) {
      return;
    }
    self->SendPacket();
    const double rate = self->cc_->pacing_bps().value_or(0.0);
    if (rate > 0.0) {
      self->next_send_time_ += TransmissionDelay(self->config_.mss, rate);
    }
    self->SchedulePacedSend();
  });
}

void Sender::SendPacket() {
  const PacketRef ref = pool_->Acquire();
  Packet& pkt = pool_->Get(ref);
  pkt.flow_id = flow_id_;
  pkt.seq = next_seq_++;
  pkt.size_bytes = config_.mss;
  pkt.sent_time = events_->now();
  pkt.route = &route_;
  pkt.hop = 0;
  // Pool slots recycle; both ECN fields must be re-initialized every send.
  pkt.ecn_capable = cc_->EcnCapable();
  pkt.ecn_ce = false;
  outstanding_.push_back({pkt.seq, pkt.sent_time, pkt.size_bytes});
  inflight_bytes_ += pkt.size_bytes;
  stats_.bytes_sent += pkt.size_bytes;
  meter_.OnPacketSent(pkt.size_bytes);
  if (tracer_ != nullptr) {
    tracer_->Record(pkt.sent_time, TraceEventType::kSend, flow_id_, -1, pkt.seq,
                    static_cast<double>(pkt.size_bytes),
                    static_cast<double>(inflight_bytes_));
  }
  route_[0]->Accept(ref);
}

void Sender::DetectGapLosses(uint64_t acked_seq) {
  // FIFO network: every still-outstanding packet older than the ACKed one was
  // dropped (congestive or wire loss).
  uint64_t lost = 0;
  while (!outstanding_.empty() && outstanding_.front().seq < acked_seq) {
    lost += outstanding_.front().size_bytes;
    outstanding_.pop_front();
  }
  if (lost > 0) {
    ASTRAEA_CHECK(inflight_bytes_ >= lost);
    inflight_bytes_ -= lost;
    stats_.bytes_lost += lost;
    meter_.OnBytesLost(lost);
    if (tracer_ != nullptr) {
      tracer_->Record(events_->now(), TraceEventType::kLoss, flow_id_, -1, acked_seq,
                      static_cast<double>(lost), static_cast<double>(inflight_bytes_));
    }
    LossEvent ev;
    ev.now = events_->now();
    ev.lost_bytes = lost;
    ev.is_timeout = false;
    ev.inflight_bytes = inflight_bytes_;
    cc_->OnLoss(ev);
  }
}

void Sender::OnAckArrival(uint64_t seq, TimeNs data_sent_time, uint32_t size_bytes,
                          bool ecn_ce) {
  // ACKs arriving after Stop() still update accounting so inflight drains.
  const TimeNs now = events_->now();
  DetectGapLosses(seq);
  if (outstanding_.empty() || outstanding_.front().seq != seq) {
    MaybeComplete();  // the gap write-off may have resolved the last bytes
    return;           // already written off by an RTO; ignore the late ACK
  }
  outstanding_.pop_front();
  ASTRAEA_CHECK(inflight_bytes_ >= size_bytes);
  inflight_bytes_ -= size_bytes;
  stats_.bytes_acked += size_bytes;
  interval_acked_bytes_ += size_bytes;
  if (ecn_ce) {
    stats_.bytes_ce_marked += size_bytes;
    interval_ce_bytes_ += size_bytes;
  }
  last_ack_time_ = now;

  const TimeNs rtt = now - data_sent_time;
  meter_.OnPacketAcked(now, rtt, size_bytes);
  if (tracer_ != nullptr) {
    tracer_->Record(now, TraceEventType::kAck, flow_id_, -1, seq, ToMillis(rtt),
                    static_cast<double>(inflight_bytes_));
  }

  if (running_) {
    AckEvent ev;
    ev.now = now;
    ev.rtt = rtt;
    ev.srtt = meter_.srtt();
    ev.min_rtt = meter_.min_rtt();
    ev.acked_bytes = size_bytes;
    ev.inflight_bytes = inflight_bytes_;
    ev.delivery_rate_bps = meter_.WindowedDeliveryRate(now);
    ev.ecn_ce = ecn_ce;
    cc_->OnAck(ev);

    if (cc_->pacing_bps().has_value()) {
      SchedulePacedSend();
    } else {
      TrySend();
    }
    ArmRtoTimer();
  }
  MaybeComplete();
  if (invariants::Enabled()) {
    VerifyInvariants("OnAckArrival", ++audit_tick_ % kDeepAuditPeriod == 0);
  }
}

TimeNs Sender::CurrentRto() const {
  if (meter_.srtt() == 0) {
    // No RTT sample yet: RFC 6298's conservative initial RTO, so long-RTT
    // paths (satellite: 800ms) are not written off before the first ACK.
    return Seconds(1.0);
  }
  return std::max(config_.min_rto, meter_.srtt() + 4 * meter_.rttvar());
}

void Sender::ArmRtoTimer() {
  const uint64_t gen = ++rto_generation_;
  std::weak_ptr<Sender*> weak = alive_;
  events_->ScheduleAfter(CurrentRto(), [weak, gen] {
    if (auto alive = weak.lock()) {
      (*alive)->OnRtoCheck(gen);
    }
  });
}

void Sender::OnRtoCheck(uint64_t generation) {
  if (generation != rto_generation_ || !running_) {
    return;
  }
  if (outstanding_.empty()) {
    return;  // nothing in flight; next send re-arms the timer via its ACK
  }
  if (events_->now() - last_ack_time_ < CurrentRto()) {
    ArmRtoTimer();
    return;
  }
  if (std::getenv("ASTRAEA_DEBUG_RTO") != nullptr) {
    std::fprintf(stderr, "RTO fire t=%.3f last_ack=%.3f rto=%.3f srtt=%.1fms outstanding=%zu\n",
                 ToSeconds(events_->now()), ToSeconds(last_ack_time_),
                 ToSeconds(CurrentRto()), ToMillis(meter_.srtt()), outstanding_.size());
  }
  // Timeout: write off everything outstanding.
  uint64_t lost = 0;
  for (const Outstanding& o : outstanding_) {
    lost += o.size_bytes;
  }
  outstanding_.clear();
  inflight_bytes_ = 0;
  stats_.bytes_lost += lost;
  meter_.OnBytesLost(lost);
  if (tracer_ != nullptr) {
    tracer_->Record(events_->now(), TraceEventType::kRtoFire, flow_id_, -1, next_seq_,
                    static_cast<double>(lost), ToMillis(CurrentRto()));
  }

  LossEvent ev;
  ev.now = events_->now();
  ev.lost_bytes = lost;
  ev.is_timeout = true;
  ev.inflight_bytes = 0;
  cc_->OnLoss(ev);

  last_ack_time_ = events_->now();
  if (cc_->pacing_bps().has_value()) {
    SchedulePacedSend();
  } else {
    TrySend();
  }
  ArmRtoTimer();
  MaybeComplete();
  if (invariants::Enabled()) {
    VerifyInvariants("OnRtoCheck", ++audit_tick_ % kDeepAuditPeriod == 0);
  }
}

void Sender::MtpTick() {
  const TimeNs now = events_->now();

  MtpReport report = meter_.BuildReport(now, config_.mtp, last_ack_time_, inflight_bytes_,
                                        outstanding_.size(), *cc_);
  // ECN accounting is patched on after BuildReport so the FlowMeter itself
  // stays identical between the simulator and the real UDP data plane.
  report.ecn_ce_bytes = interval_ce_bytes_;
  report.ecn_ce_ratio = interval_acked_bytes_ > 0
                            ? static_cast<double>(interval_ce_bytes_) /
                                  static_cast<double>(interval_acked_bytes_)
                            : 0.0;
  interval_ce_bytes_ = 0;
  interval_acked_bytes_ = 0;
  last_report_ = report;

  stats_.throughput_mbps.Add(now, ToMbps(report.thr_bps));
  if (meter_.interval_acked_packets() > 0) {
    stats_.rtt_ms.Add(now, meter_.interval_rtt_sum_ms() /
                               static_cast<double>(meter_.interval_acked_packets()));
  }
  stats_.cwnd_packets.Add(now, static_cast<double>(report.cwnd_bytes) / config_.mss);
  stats_.sending_mbps.Add(now, ToMbps(static_cast<double>(meter_.interval_sent_bytes()) * 8.0 /
                                      ToSeconds(config_.mtp)));

  meter_.ResetInterval();

  cc_->OnMtpTick(report);
  if (tracer_ != nullptr) {
    // Post-decision cwnd/pacing, one record per MTP.
    tracer_->Record(now, TraceEventType::kCwnd, flow_id_, -1, mtp_generation_,
                    static_cast<double>(cc_->cwnd_bytes()),
                    cc_->pacing_bps().value_or(0.0));
  }

  // The controller may have changed cwnd/pacing: give it a chance to send.
  if (cc_->pacing_bps().has_value()) {
    SchedulePacedSend();
  } else {
    TrySend();
  }

  const uint64_t gen = mtp_generation_;
  std::weak_ptr<Sender*> weak = alive_;
  events_->ScheduleAfter(config_.mtp, [weak, gen] {
    auto alive = weak.lock();
    if (!alive) {
      return;
    }
    Sender* self = *alive;
    if (gen == self->mtp_generation_ && self->running_) {
      self->MtpTick();
    }
  });
  if (invariants::Enabled()) {
    VerifyInvariants("MtpTick", ++audit_tick_ % kDeepAuditPeriod == 0);
  }
}

}  // namespace astraea
