// Flow endpoints: a bulk-transfer Sender driven by a CongestionController and
// its paired Receiver. The receiver acknowledges every data packet; ACKs
// return over an uncongested reverse path modelled as a pure delay (the
// Mahimahi/Pantheon-tunnel setup the paper trains and evaluates in).
//
// Loss detection: queues are FIFO and there is a single path, so a gap in the
// acknowledged sequence space reliably identifies drops (perfect-SACK
// equivalent of 3-dup-ACK detection); an RTO fallback covers tail losses.

#ifndef SRC_SIM_ENDPOINT_H_
#define SRC_SIM_ENDPOINT_H_

#include <deque>
#include <memory>
#include <string>

#include "src/sim/congestion_controller.h"
#include "src/sim/event_queue.h"
#include "src/sim/flow_meter.h"
#include "src/sim/packet.h"
#include "src/sim/packet_pool.h"
#include "src/util/stats.h"
#include "src/util/time.h"

namespace astraea {

class Sender;

// Terminal sink of a data route: acknowledges each packet back to the sender
// after the configured reverse-path delay. The ACK-delivery lambda holds a
// weak handle to the sender, so a sender destroyed while ACKs are in flight
// (teardown mid-simulation) silently expires them instead of dangling.
class Receiver : public PacketSink {
 public:
  Receiver(EventQueue* events, PacketPool* pool, Sender* sender, TimeNs ack_return_delay)
      : events_(events), pool_(pool), sender_(sender), ack_return_delay_(ack_return_delay) {}

  // Terminal hop: copies out the ACK fields and releases the packet slot.
  void Accept(PacketRef ref) override;

  // Late binding used by Network: the receiver must exist before the sender
  // (the data route ends with the receiver), so the back-pointer is set after
  // both are constructed.
  void set_sender(Sender* sender) { sender_ = sender; }

  uint64_t received_bytes() const { return received_bytes_; }

 private:
  EventQueue* events_;
  PacketPool* pool_;
  Sender* sender_;
  TimeNs ack_return_delay_;
  uint64_t received_bytes_ = 0;
};

struct SenderConfig {
  uint32_t mss = 1500;
  uint32_t initial_cwnd_packets = 10;
  TimeNs mtp = Milliseconds(30);      // Monitoring Time Period (Table 4)
  TimeNs min_rto = Milliseconds(200);
  // Request/response transfers (incast): stop emitting new data once this
  // many bytes have been sent, and record FlowStats::completed_at when the
  // last outstanding byte is ACKed or written off. 0 = unlimited bulk
  // transfer (the default; existing scenarios are unaffected).
  uint64_t max_transfer_bytes = 0;
  // min-RTT is maintained over a sliding window (kernel-style) so routing
  // changes do not pin a stale floor forever. The window is long (the kernel
  // uses minutes) because controllers re-anchor it with explicit drain
  // probes; a short window lets a standing queue corrupt the floor, which
  // turns delay-based control into a positive feedback loop.
  TimeNs min_rtt_window = Seconds(60.0);
};

// Per-flow measurements collected at MTP granularity.
struct FlowStats {
  TimeSeries throughput_mbps;  // ACKed rate per MTP
  TimeSeries rtt_ms;           // mean ACK RTT per MTP (skipped when idle)
  TimeSeries cwnd_packets;
  TimeSeries sending_mbps;     // transmitted rate per MTP
  uint64_t bytes_sent = 0;
  uint64_t bytes_acked = 0;
  uint64_t bytes_lost = 0;
  // ACKed bytes whose data packet carried a CE mark (ECN bottlenecks only).
  uint64_t bytes_ce_marked = 0;
  TimeNs started_at = -1;
  TimeNs stopped_at = -1;
  // Budgeted transfers only (SenderConfig::max_transfer_bytes > 0): when the
  // whole request was resolved (every sent byte ACKed or declared lost).
  TimeNs completed_at = -1;
};

class Sender {
 public:
  // `data_route` must end with this flow's Receiver. The route is copied and
  // owned by the sender. Data packets are acquired from `pool`.
  Sender(EventQueue* events, PacketPool* pool, int flow_id, Route data_route,
         std::unique_ptr<CongestionController> cc, SenderConfig config);
  ~Sender();

  Sender(const Sender&) = delete;
  Sender& operator=(const Sender&) = delete;

  void Start();             // begins transmitting now
  void Stop();              // stops transmitting now (inflight drains silently)
  bool running() const { return running_; }

  // Called by the Receiver when an ACK arrives back. `ecn_ce` echoes the CE
  // mark of the data packet (RFC 3168 ECE, immediate per-packet feedback as
  // in DCTCP); the default keeps every non-ECN call site unchanged.
  void OnAckArrival(uint64_t seq, TimeNs data_sent_time, uint32_t size_bytes,
                    bool ecn_ce = false);

  int flow_id() const { return flow_id_; }
  const FlowStats& stats() const { return stats_; }
  CongestionController& cc() { return *cc_; }
  const CongestionController& cc() const { return *cc_; }

  uint64_t inflight_bytes() const { return inflight_bytes_; }
  TimeNs srtt() const { return meter_.srtt(); }
  TimeNs min_rtt() const { return meter_.min_rtt(); }
  const MtpReport& last_report() const { return last_report_; }

  // Liveness token: scheduled lambdas (ACK delivery, timers) capture this
  // weakly and no-op once the sender is destroyed. Expires in ~Sender().
  std::weak_ptr<Sender*> weak_handle() const { return alive_; }

  // Attaches an event tracer recording send/ack/loss/rto-fire/cwnd for this
  // flow, and forwards it to the controller (kAction decisions). Null detaches.
  void set_tracer(Tracer* tracer);

  // Invariant-checker entry point (no-op unless invariants::Enabled()): flow
  // byte conservation (sent = acked + lost + in-flight), controller
  // cwnd/pacing sanity and — on deep audits — the O(n) recount of in-flight
  // bytes against the outstanding list. Called internally after every
  // ACK/loss/MTP event and by Network at the end of Run().
  void VerifyInvariants(const char* where, bool deep) const;

 private:
  struct Outstanding {
    uint64_t seq;
    TimeNs sent_time;
    uint32_t size_bytes;
  };

  uint64_t EffectiveCwnd() const;
  // Budgeted transfers: true once max_transfer_bytes have been emitted.
  bool BudgetExhausted() const;
  // Budgeted transfers: records completed_at (once) when every sent byte has
  // been resolved, and stops the flow so its timers disarm.
  void MaybeComplete();
  void TrySend();                    // ACK-clocked burst send
  void SchedulePacedSend();          // paced send loop
  void SendPacket();
  void DetectGapLosses(uint64_t acked_seq);
  TimeNs CurrentRto() const;
  void ArmRtoTimer();
  void OnRtoCheck(uint64_t generation);
  void MtpTick();

  EventQueue* events_;
  PacketPool* pool_;
  int flow_id_;
  Route route_;
  std::unique_ptr<CongestionController> cc_;
  SenderConfig config_;
  Tracer* tracer_ = nullptr;

  // See weak_handle(). shared_ptr-to-self-pointer rather than
  // enable_shared_from_this because senders are held by unique_ptr/value.
  std::shared_ptr<Sender*> alive_ = std::make_shared<Sender*>(this);

  bool running_ = false;
  uint64_t next_seq_ = 0;
  std::deque<Outstanding> outstanding_;
  uint64_t inflight_bytes_ = 0;

  // RTT estimators, delivery-rate window and per-MTP accumulators — the
  // measurement engine shared with the real UDP data plane (src/net).
  FlowMeter meter_;
  // ECN interval accumulators live beside the meter (not inside it) so the
  // FlowMeter stays bit-equivalent with the real UDP data plane, which has
  // no ECN feedback channel.
  uint64_t interval_ce_bytes_ = 0;
  uint64_t interval_acked_bytes_ = 0;
  TimeNs last_ack_time_ = 0;
  uint64_t rto_generation_ = 0;

  // Paced-mode bookkeeping.
  bool pace_pending_ = false;
  TimeNs next_send_time_ = 0;

  // Invariant-checker deep-audit tick (only advances when the checker is on).
  mutable uint64_t audit_tick_ = 0;

  uint64_t mtp_generation_ = 0;
  MtpReport last_report_;

  FlowStats stats_;
};

}  // namespace astraea

#endif  // SRC_SIM_ENDPOINT_H_
