#include "src/sim/event_queue.h"

#include <algorithm>
#include <limits>
#include <string>

#include "src/sim/invariants.h"

namespace astraea {

EventQueue::EventQueue() {
  bucket_head_.assign(num_buckets_, kNil);
  bucket_tail_.assign(num_buckets_, kNil);
  occupied_.assign(num_buckets_ / 64, 0);
}

uint32_t EventQueue::AcquireSlot() {
  if (free_head_ != kNil) {
    const uint32_t idx = free_head_;
    free_head_ = slot(idx).next;
    ++recycled_;
    return idx;
  }
  if ((size_t{allocated_} >> kChunkShift) == chunks_.size()) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
  return allocated_++;
}

void EventQueue::FreeSlot(uint32_t idx) {
  Slot& s = slot(idx);
  ++s.gen;  // stale handles (Cancel after fire, double cancel) stop matching
  s.cancelled = false;
  s.fn = Callback();  // release captured state promptly
  s.next = free_head_;
  free_head_ = idx;
}

uint64_t EventQueue::Schedule(TimeNs when, Callback fn) {
  // Causality: nothing may be scheduled in the past. With the invariant
  // checker on this is a reportable (and in fatal mode, throwable) violation;
  // the ASTRAEA_CHECK below stays as the unconditional backstop.
  if (when < now_ && invariants::Enabled()) {
    invariants::Report("event.schedule_in_past",
                       "event scheduled at " + std::to_string(when) + " ns with clock at " +
                           std::to_string(now_) + " ns");
  }
  ASTRAEA_CHECK(when >= now_);

  // Grow the calendar when the population outruns the bucket array, and
  // garbage-collect when lazily-cancelled slots dominate the live ones.
  const size_t population = live_ + cancelled_pending_;
  if ((population + 1 > 2 * num_buckets_ && num_buckets_ < kMaxBuckets) ||
      (cancelled_pending_ > 64 && cancelled_pending_ > 2 * live_)) {
    Rebuild();
  }

  const uint32_t idx = AcquireSlot();
  Slot& s = slot(idx);
  s.when = when;
  s.seq = next_seq_++;
  s.cancelled = false;
  s.fn = std::move(fn);
  ++live_;
  InsertActive(idx);
  return (static_cast<uint64_t>(s.gen) << 32) | idx;
}

void EventQueue::InsertActive(uint32_t idx) {
  int64_t day = DayOf(slot(idx).when);
  if (day < base_day_) {
    // Only possible after a rotation jumped the window ahead of the clock and
    // a nearer-term event arrived behind it: re-anchor the window at now.
    Rebuild();
    day = DayOf(slot(idx).when);  // width may have changed
  }
  if (day - base_day_ >= static_cast<int64_t>(num_buckets_)) {
    PushOverflow(idx, day);
  } else {
    InsertBucket(idx, day);
  }
}

void EventQueue::InsertBucket(uint32_t idx, int64_t day) {
  const size_t mask = num_buckets_ - 1;
  const size_t b = static_cast<size_t>(day) & mask;
  Slot& s = slot(idx);
  ++calendar_count_;
  if (bucket_head_[b] == kNil) {
    s.next = kNil;
    bucket_head_[b] = bucket_tail_[b] = idx;
    occupied_[b >> 6] |= (1ULL << (b & 63));
    return;
  }
  // Fast path: sequence numbers increase monotonically, so same-time events
  // and in-order schedules append at the tail in O(1).
  Slot& tail = slot(bucket_tail_[b]);
  if (tail.when < s.when || (tail.when == s.when && tail.seq < s.seq)) {
    s.next = kNil;
    tail.next = idx;
    bucket_tail_[b] = idx;
    return;
  }
  // Out-of-order (earlier `when`): sorted insert keeps the bucket in strict
  // (when, seq) order so dispatch remains the global FIFO-tie-broken order.
  uint32_t prev = kNil;
  uint32_t cur = bucket_head_[b];
  while (cur != kNil) {
    const Slot& c = slot(cur);
    if (c.when > s.when || (c.when == s.when && c.seq > s.seq)) {
      break;
    }
    prev = cur;
    cur = c.next;
  }
  s.next = cur;
  if (prev == kNil) {
    bucket_head_[b] = idx;
  } else {
    slot(prev).next = idx;
  }
  if (cur == kNil) {
    bucket_tail_[b] = idx;
  }
}

void EventQueue::PushOverflow(uint32_t idx, int64_t day) {
  slot(idx).next = overflow_head_;
  overflow_head_ = idx;
  if (overflow_count_ == 0 || day < overflow_min_day_) {
    overflow_min_day_ = day;
  }
  ++overflow_count_;
}

void EventQueue::PullOverflow() {
  const int64_t window_end = base_day_ + static_cast<int64_t>(num_buckets_);
  uint32_t cur = overflow_head_;
  overflow_head_ = kNil;
  overflow_count_ = 0;
  uint32_t keep_head = kNil;
  size_t keep_count = 0;
  int64_t keep_min = 0;
  while (cur != kNil) {
    const uint32_t next = slot(cur).next;
    const int64_t day = DayOf(slot(cur).when);
    if (day < window_end) {
      ASTRAEA_CHECK(day >= base_day_);
      InsertBucket(cur, day);
    } else {
      slot(cur).next = keep_head;
      keep_head = cur;
      if (keep_count == 0 || day < keep_min) {
        keep_min = day;
      }
      ++keep_count;
    }
    cur = next;
  }
  overflow_head_ = keep_head;
  overflow_count_ = keep_count;
  overflow_min_day_ = keep_min;
}

int64_t EventQueue::ScanForDay() const {
  const size_t mask = num_buckets_ - 1;
  const size_t start = static_cast<size_t>(base_day_) & mask;
  const size_t words = occupied_.size();
  const size_t w0 = start >> 6;
  const size_t b0 = start & 63;
  for (size_t i = 0; i <= words; ++i) {
    const size_t w = (w0 + i) % words;
    uint64_t word = occupied_[w];
    if (i == 0) {
      word &= ~0ULL << b0;
    } else if (i == words) {
      word &= b0 == 0 ? 0 : ((1ULL << b0) - 1);  // wrap: the bits before start
    }
    if (word != 0) {
      const size_t bucket = (w << 6) | static_cast<size_t>(__builtin_ctzll(word));
      const size_t dist = (bucket + num_buckets_ - start) & mask;
      return base_day_ + static_cast<int64_t>(dist);
    }
  }
  ASTRAEA_CHECK(false && "ScanForDay on an empty calendar");
  return 0;
}

uint32_t EventQueue::PopReady(TimeNs limit) {
  for (;;) {
    if (calendar_count_ == 0) {
      if (overflow_count_ == 0) {
        return kNil;
      }
      // Rotation: the window has fully drained; jump it to the overflow
      // ladder's earliest day and pull the now-in-window events in.
      base_day_ = overflow_min_day_;
      ++rotations_;
      PullOverflow();
      continue;
    }
    if (num_buckets_ > kMinBuckets && live_ + cancelled_pending_ < num_buckets_ / 8) {
      Rebuild();
      continue;
    }
    const int64_t day = ScanForDay();
    if (overflow_count_ > 0 && overflow_min_day_ <= day) {
      // An overflow event is due no later than the calendar candidate; pull
      // it in before deciding the minimum.
      PullOverflow();
      continue;
    }
    const size_t b = static_cast<size_t>(day) & (num_buckets_ - 1);
    const uint32_t idx = bucket_head_[b];
    Slot& s = slot(idx);
    if (s.when > limit) {
      return kNil;
    }
    bucket_head_[b] = s.next;
    if (s.next == kNil) {
      bucket_tail_[b] = kNil;
      occupied_[b >> 6] &= ~(1ULL << (b & 63));
    }
    --calendar_count_;
    base_day_ = day;  // all remaining events are on this day or later
    if (s.cancelled) {
      --cancelled_pending_;
      FreeSlot(idx);
      continue;
    }
    return idx;
  }
}

void EventQueue::Rebuild() {
  ++rebuilds_;
  std::vector<uint32_t> items;
  items.reserve(live_);
  const auto collect = [&](uint32_t head) {
    for (uint32_t cur = head; cur != kNil;) {
      const uint32_t next = slot(cur).next;
      if (slot(cur).cancelled) {
        --cancelled_pending_;
        FreeSlot(cur);
      } else {
        items.push_back(cur);
      }
      cur = next;
    }
  };
  for (size_t b = 0; b < num_buckets_; ++b) {
    collect(bucket_head_[b]);
  }
  collect(overflow_head_);

  TimeNs max_when = now_;
  for (const uint32_t idx : items) {
    max_when = std::max(max_when, slot(idx).when);
  }

  size_t target = kMinBuckets;
  while (target < 2 * items.size() && target < kMaxBuckets) {
    target <<= 1;
  }
  num_buckets_ = target;
  // Width spans the full pending horizon, so after a rebuild every event fits
  // the window and the overflow ladder starts empty.
  width_ = (max_when - now_) / static_cast<TimeNs>(num_buckets_) + 1;
  base_day_ = DayOf(now_);
  bucket_head_.assign(num_buckets_, kNil);
  bucket_tail_.assign(num_buckets_, kNil);
  occupied_.assign(num_buckets_ / 64, 0);
  calendar_count_ = 0;
  overflow_head_ = kNil;
  overflow_count_ = 0;
  overflow_min_day_ = 0;

  for (const uint32_t idx : items) {
    const int64_t day = DayOf(slot(idx).when);
    if (day - base_day_ >= static_cast<int64_t>(num_buckets_)) {
      PushOverflow(idx, day);
    } else {
      InsertBucket(idx, day);
    }
  }
}

void EventQueue::Cancel(uint64_t handle) {
  const uint32_t idx = static_cast<uint32_t>(handle & 0xFFFFFFFFu);
  const uint32_t gen = static_cast<uint32_t>(handle >> 32);
  if (idx >= allocated_) {
    return;
  }
  Slot& s = slot(idx);
  if (s.gen != gen || s.cancelled) {
    return;  // stale handle: the event already ran, was cancelled, or the
             // slot was recycled for a newer event
  }
  s.cancelled = true;
  --live_;
  ++cancelled_pending_;
}

void EventQueue::Dispatch(uint32_t idx) {
  Slot& s = slot(idx);
  // Monotone dispatch: the calendar can only hand out nondecreasing times. A
  // violation here means the queue ordering itself is corrupt.
  if (s.when < now_ && invariants::Enabled()) {
    invariants::Report("event.monotone_dispatch",
                       "dispatching event at " + std::to_string(s.when) +
                           " ns after clock reached " + std::to_string(now_) + " ns");
  }
  now_ = s.when;
  ++executed_;
  --live_;
  // Move the closure out and free the slot *before* invoking: the callback
  // may schedule new events, which may legitimately recycle this very slot.
  Callback fn = std::move(s.fn);
  FreeSlot(idx);
  fn();
}

void EventQueue::RunUntil(TimeNs until) {
  for (;;) {
    const uint32_t idx = PopReady(until);
    if (idx == kNil) {
      break;
    }
    Dispatch(idx);
  }
  now_ = std::max(now_, until);
}

void EventQueue::RunAll() {
  for (;;) {
    const uint32_t idx = PopReady(std::numeric_limits<TimeNs>::max());
    if (idx == kNil) {
      break;
    }
    Dispatch(idx);
  }
}

}  // namespace astraea
