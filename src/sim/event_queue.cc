#include "src/sim/event_queue.h"

#include <algorithm>
#include <string>

#include "src/sim/invariants.h"

namespace astraea {

uint64_t EventQueue::Schedule(TimeNs when, Callback fn) {
  // Causality: nothing may be scheduled in the past. With the invariant
  // checker on this is a reportable (and in fatal mode, throwable) violation;
  // the ASTRAEA_CHECK below stays as the unconditional backstop.
  if (when < now_ && invariants::Enabled()) {
    invariants::Report("event.schedule_in_past",
                       "event scheduled at " + std::to_string(when) + " ns with clock at " +
                           std::to_string(now_) + " ns");
  }
  ASTRAEA_CHECK(when >= now_);
  const uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq, std::move(fn)});
  return seq;
}

void EventQueue::Cancel(uint64_t id) {
  cancelled_.push_back(id);
  ++cancelled_count_;
}

bool EventQueue::IsCancelled(uint64_t seq) const {
  return std::find(cancelled_.begin(), cancelled_.end(), seq) != cancelled_.end();
}

void EventQueue::RunUntil(TimeNs until) {
  while (!heap_.empty() && heap_.top().when <= until) {
    Entry entry = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    if (!cancelled_.empty() && IsCancelled(entry.seq)) {
      cancelled_.erase(std::remove(cancelled_.begin(), cancelled_.end(), entry.seq),
                       cancelled_.end());
      --cancelled_count_;
      continue;
    }
    // Monotone dispatch: the heap can only hand out nondecreasing times. A
    // violation here means the heap ordering itself is corrupt.
    if (entry.when < now_ && invariants::Enabled()) {
      invariants::Report("event.monotone_dispatch",
                         "dispatching event at " + std::to_string(entry.when) +
                             " ns after clock reached " + std::to_string(now_) + " ns");
    }
    now_ = entry.when;
    ++executed_;
    entry.fn();
  }
  now_ = std::max(now_, until);
}

void EventQueue::RunAll() {
  while (!heap_.empty()) {
    RunUntil(heap_.top().when);
  }
}

}  // namespace astraea
