#include "src/sim/event_queue.h"

#include <algorithm>

namespace astraea {

uint64_t EventQueue::Schedule(TimeNs when, Callback fn) {
  ASTRAEA_CHECK(when >= now_);
  const uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq, std::move(fn)});
  return seq;
}

void EventQueue::Cancel(uint64_t id) {
  cancelled_.push_back(id);
  ++cancelled_count_;
}

bool EventQueue::IsCancelled(uint64_t seq) const {
  return std::find(cancelled_.begin(), cancelled_.end(), seq) != cancelled_.end();
}

void EventQueue::RunUntil(TimeNs until) {
  while (!heap_.empty() && heap_.top().when <= until) {
    Entry entry = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    if (!cancelled_.empty() && IsCancelled(entry.seq)) {
      cancelled_.erase(std::remove(cancelled_.begin(), cancelled_.end(), entry.seq),
                       cancelled_.end());
      --cancelled_count_;
      continue;
    }
    now_ = entry.when;
    ++executed_;
    entry.fn();
  }
  now_ = std::max(now_, until);
}

void EventQueue::RunAll() {
  while (!heap_.empty()) {
    RunUntil(heap_.top().when);
  }
}

}  // namespace astraea
