// Discrete-event scheduler: a calendar queue over a slab-allocated event pool.
//
// Events are (time, sequence, closure) triples executed in nondecreasing time
// order; the monotonically increasing sequence number breaks ties FIFO, which
// makes whole-simulation behaviour deterministic for a given seed. That total
// order is the contract the golden traces pin down — any correct scheduler
// implementation must dispatch in exactly this order.
//
// Implementation (see DESIGN.md §11 for the full layout):
//  * Event slots live in chunked slabs recycled through a freelist, so a
//    schedule/dispatch pair costs index arithmetic — no allocation. Closures
//    are stored inline in the slot (InlineFunction), so no malloc either.
//  * Schedule() returns a generation-stamped handle; Cancel() is an O(1)
//    stamp check + flag write (the seed implementation kept a vector of
//    cancelled ids and scanned it linearly on every dispatch — O(n²) under
//    churny retransmit timers).
//  * Pending events sit in a calendar: num_buckets_ (power of two) buckets of
//    width_ nanoseconds each, covering the "window" of days
//    [base_day_, base_day_ + num_buckets_). Each in-window day maps to a
//    unique bucket; buckets are kept sorted by (when, seq) with an O(1)
//    append fast path for the common monotone/tied insertion pattern.
//    Events beyond the window wait in an unsorted overflow ladder and are
//    pulled in a rotation when the window reaches them. An occupancy bitmap
//    makes "find next nonempty bucket" a few word scans.
//  * The calendar rebuilds (new bucket count/width from the live event count
//    and time span) when the event population outgrows or undershoots the
//    bucket array; amortized O(1) per operation.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/util/inline_function.h"
#include "src/util/logging.h"
#include "src/util/time.h"

namespace astraea {

class EventQueue {
 public:
  using Callback = InlineFunction<48>;

  EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` at absolute time `when` (>= now). Returns a handle that can
  // be passed to Cancel().
  uint64_t Schedule(TimeNs when, Callback fn);
  uint64_t ScheduleAfter(TimeNs delay, Callback fn) { return Schedule(now_ + delay, std::move(fn)); }

  // O(1) cancel of a pending event. A handle whose event already ran (or was
  // already cancelled) is stale — its slot generation no longer matches — and
  // the call is a no-op, so cancelling twice or late is always safe.
  void Cancel(uint64_t handle);

  // Runs events until the queue is empty or the next event is after `until`.
  // The clock lands exactly on `until` when the queue drains early.
  void RunUntil(TimeNs until);

  // Runs until the queue is fully drained (the clock stays on the last event).
  void RunAll();

  TimeNs now() const { return now_; }
  size_t pending() const { return live_; }
  uint64_t executed() const { return executed_; }

  // Pool / calendar statistics for the sim.pool.* metrics gauges.
  size_t slot_capacity() const { return allocated_; }
  uint64_t slots_recycled() const { return recycled_; }
  uint64_t calendar_rotations() const { return rotations_; }
  uint64_t calendar_rebuilds() const { return rebuilds_; }
  size_t bucket_count() const { return num_buckets_; }

 private:
  static constexpr uint32_t kNil = 0xFFFFFFFFu;
  static constexpr size_t kChunkShift = 12;  // 4096 slots per slab
  static constexpr size_t kChunkSize = size_t{1} << kChunkShift;
  static constexpr size_t kMinBuckets = 64;
  static constexpr size_t kMaxBuckets = size_t{1} << 20;

  struct Slot {
    TimeNs when = 0;
    uint64_t seq = 0;    // FIFO tie-break, globally increasing
    uint32_t next = kNil;  // intrusive link: bucket chain / overflow / freelist
    uint32_t gen = 0;    // bumped on every free; stamps Cancel handles
    bool cancelled = false;
    Callback fn;
  };

  Slot& slot(uint32_t idx) { return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)]; }
  const Slot& slot(uint32_t idx) const {
    return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }

  int64_t DayOf(TimeNs when) const { return static_cast<int64_t>(when / width_); }

  uint32_t AcquireSlot();
  void FreeSlot(uint32_t idx);

  // Places an active slot into its bucket (sorted) or the overflow ladder.
  void InsertActive(uint32_t idx);
  void InsertBucket(uint32_t idx, int64_t day);
  void PushOverflow(uint32_t idx, int64_t day);

  // Moves every overflow event whose day now falls inside the window into its
  // bucket and recomputes the overflow minimum.
  void PullOverflow();

  // Pops the globally minimal (when, seq) event with when <= limit, skipping
  // and freeing cancelled slots. Returns kNil when none qualifies.
  uint32_t PopReady(TimeNs limit);

  // Rebuilds the calendar: re-derives bucket count and width from the live
  // population and its time span, drops cancelled slots, reinserts the rest.
  void Rebuild();

  // Dispatch loop shared by RunUntil/RunAll.
  void Dispatch(uint32_t idx);

  // Finds the first occupied bucket at circular distance >= base_day_'s
  // bucket; requires calendar_count_ > 0. Returns the day it represents.
  int64_t ScanForDay() const;

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  uint32_t free_head_ = kNil;
  uint32_t allocated_ = 0;  // high-water slot count

  std::vector<uint32_t> bucket_head_;
  std::vector<uint32_t> bucket_tail_;
  std::vector<uint64_t> occupied_;  // bitmap over buckets
  size_t num_buckets_ = kMinBuckets;
  TimeNs width_ = 1;
  int64_t base_day_ = 0;  // window start; every bucketed event's day is in
                          // [base_day_, base_day_ + num_buckets_)
  size_t calendar_count_ = 0;  // slots in buckets (incl. cancelled)

  uint32_t overflow_head_ = kNil;
  size_t overflow_count_ = 0;
  int64_t overflow_min_day_ = 0;  // valid when overflow_count_ > 0

  size_t live_ = 0;  // scheduled, not cancelled, not yet executed
  size_t cancelled_pending_ = 0;

  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  uint64_t recycled_ = 0;
  uint64_t rotations_ = 0;
  uint64_t rebuilds_ = 0;
};

}  // namespace astraea

#endif  // SRC_SIM_EVENT_QUEUE_H_
