// Discrete-event scheduler.
//
// Events are (time, sequence, closure) triples executed in nondecreasing time
// order; the monotonically increasing sequence number breaks ties FIFO, which
// makes whole-simulation behaviour deterministic for a given seed.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/util/logging.h"
#include "src/util/time.h"

namespace astraea {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Schedules `fn` at absolute time `when` (>= now). Returns an id that can be
  // passed to Cancel().
  uint64_t Schedule(TimeNs when, Callback fn);
  uint64_t ScheduleAfter(TimeNs delay, Callback fn) { return Schedule(now_ + delay, std::move(fn)); }

  // Lazily cancels a pending event (it is skipped when popped).
  void Cancel(uint64_t id);

  // Runs events until the queue is empty or the next event is after `until`.
  // The clock lands exactly on `until` when the queue drains early.
  void RunUntil(TimeNs until);

  // Runs until the queue is fully drained.
  void RunAll();

  TimeNs now() const { return now_; }
  size_t pending() const { return heap_.size() - cancelled_count_; }
  uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    TimeNs when;
    uint64_t seq;
    Callback fn;
    bool operator>(const Entry& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  bool IsCancelled(uint64_t seq) const;

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::vector<uint64_t> cancelled_;  // sorted insertion not needed; small
  size_t cancelled_count_ = 0;
  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace astraea

#endif  // SRC_SIM_EVENT_QUEUE_H_
