// FlowMeter: the per-flow measurement engine behind every MtpReport/AckEvent
// a CongestionController sees — RFC 6298 integer RTT estimators plus a
// windowed min-RTT floor, a BBR-style windowed delivery-rate estimate, and
// the per-MTP accumulators (acked/sent/lost bytes, RTT sum).
//
// It is deliberately transport-agnostic: the discrete-event Sender
// (src/sim/endpoint.cc) drives it with virtual timestamps and the real UDP
// data plane (src/net/udp_sender.cc) drives it with CLOCK_MONOTONIC ones.
// Keeping both planes on this one implementation is the sim-vs-real
// equivalence contract (DESIGN.md §13): a controller cannot tell which plane
// produced its reports, so behavior validated in simulation transfers to real
// sockets modulo the physics the simulator abstracts away.

#ifndef SRC_SIM_FLOW_METER_H_
#define SRC_SIM_FLOW_METER_H_

#include <algorithm>
#include <deque>
#include <utility>

#include "src/sim/congestion_controller.h"
#include "src/util/time.h"
#include "src/util/windowed_filter.h"

namespace astraea {

class FlowMeter {
 public:
  explicit FlowMeter(TimeNs min_rtt_window) : min_rtt_filter_(min_rtt_window) {}

  // One ACKed data packet: updates the RTT estimators, the delivery-rate
  // window and the per-interval accumulators.
  void OnPacketAcked(TimeNs now, TimeNs rtt, uint32_t acked_bytes) {
    min_rtt_filter_.Update(now, rtt);
    min_rtt_ = min_rtt_filter_.Peek(now, rtt);
    if (srtt_ == 0) {
      srtt_ = rtt;
      rttvar_ = rtt / 2;
    } else {
      const TimeNs err = rtt > srtt_ ? rtt - srtt_ : srtt_ - rtt;
      rttvar_ = (3 * rttvar_ + err) / 4;
      srtt_ = (7 * srtt_ + rtt) / 8;
    }

    // Maintain the windowed goodput estimate (window = max(srtt, 50ms)).
    delivered_window_.emplace_back(now, acked_bytes);
    delivered_window_bytes_ += acked_bytes;
    const TimeNs window = std::max<TimeNs>(srtt_, Milliseconds(50));
    while (!delivered_window_.empty() && delivered_window_.front().first < now - window) {
      delivered_window_bytes_ -= delivered_window_.front().second;
      delivered_window_.pop_front();
    }

    interval_acked_bytes_ += acked_bytes;
    interval_acked_packets_ += 1;
    interval_rtt_sum_ms_ += ToMillis(rtt);
  }

  void OnPacketSent(uint32_t bytes) { interval_sent_bytes_ += bytes; }
  void OnBytesLost(uint64_t bytes) { interval_lost_bytes_ += bytes; }

  double WindowedDeliveryRate(TimeNs now) const {
    if (delivered_window_.empty()) {
      return 0.0;
    }
    const TimeNs span = now - delivered_window_.front().first;
    if (span <= 0) {
      return 0.0;
    }
    return static_cast<double>(delivered_window_bytes_) * 8.0 / ToSeconds(span);
  }

  // Assembles the per-MTP report from the interval accumulators. Does not
  // reset them (callers may also feed their FlowStats series from the
  // accessors below); call ResetInterval() once the interval is consumed.
  //
  // A zero-ACK interval is marked stalled, and its avg_rtt is the lower bound
  // implied by the silence — every outstanding packet has been in flight at
  // least `now - last_ack_time` — rather than the stale srtt, so the policy
  // never sees a (zero-throughput, healthy-latency) feature row.
  MtpReport BuildReport(TimeNs now, TimeNs mtp, TimeNs last_ack_time, uint64_t inflight_bytes,
                        uint64_t inflight_packets, const CongestionController& cc) const {
    MtpReport report;
    report.now = now;
    report.mtp = mtp;
    report.thr_bps = static_cast<double>(interval_acked_bytes_) * 8.0 / ToSeconds(mtp);
    report.loss_bps = static_cast<double>(interval_lost_bytes_) * 8.0 / ToSeconds(mtp);
    const uint64_t acked_plus_lost = interval_acked_bytes_ + interval_lost_bytes_;
    report.loss_ratio = acked_plus_lost == 0
                            ? 0.0
                            : static_cast<double>(interval_lost_bytes_) /
                                  static_cast<double>(acked_plus_lost);
    if (interval_acked_packets_ == 0) {
      report.stalled = true;
      report.avg_rtt = std::max(srtt_, now - last_ack_time);
    } else {
      report.avg_rtt =
          static_cast<TimeNs>(interval_rtt_sum_ms_ / static_cast<double>(interval_acked_packets_) *
                              static_cast<double>(kNanosPerMilli));
    }
    report.srtt = srtt_;
    report.min_rtt = min_rtt_;
    report.inflight_bytes = inflight_bytes;
    report.inflight_packets = inflight_packets;
    report.cwnd_bytes = cc.cwnd_bytes();
    report.pacing_bps = cc.pacing_bps().value_or(0.0);
    report.acked_packets = interval_acked_packets_;
    return report;
  }

  void ResetInterval() {
    interval_acked_bytes_ = 0;
    interval_sent_bytes_ = 0;
    interval_lost_bytes_ = 0;
    interval_acked_packets_ = 0;
    interval_rtt_sum_ms_ = 0.0;
  }

  TimeNs srtt() const { return srtt_; }
  TimeNs rttvar() const { return rttvar_; }
  TimeNs min_rtt() const { return min_rtt_; }

  uint64_t interval_acked_bytes() const { return interval_acked_bytes_; }
  uint64_t interval_sent_bytes() const { return interval_sent_bytes_; }
  uint64_t interval_lost_bytes() const { return interval_lost_bytes_; }
  uint64_t interval_acked_packets() const { return interval_acked_packets_; }
  double interval_rtt_sum_ms() const { return interval_rtt_sum_ms_; }

 private:
  TimeNs srtt_ = 0;
  TimeNs rttvar_ = 0;
  TimeNs min_rtt_ = 0;  // windowed floor (SenderConfig::min_rtt_window)
  WindowedMin<TimeNs> min_rtt_filter_;

  std::deque<std::pair<TimeNs, uint64_t>> delivered_window_;
  uint64_t delivered_window_bytes_ = 0;

  uint64_t interval_acked_bytes_ = 0;
  uint64_t interval_sent_bytes_ = 0;
  uint64_t interval_lost_bytes_ = 0;
  uint64_t interval_acked_packets_ = 0;
  double interval_rtt_sum_ms_ = 0.0;
};

}  // namespace astraea

#endif  // SRC_SIM_FLOW_METER_H_
