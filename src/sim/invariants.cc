#include "src/sim/invariants.h"

#include <cstdlib>
#include <cstring>

#include "src/util/logging.h"
#include "src/util/metrics.h"

namespace astraea {
namespace invariants {

std::atomic<int> g_mode{-1};

int InitFromEnv() {
  Mode mode = Mode::kOff;
  if (const char* env = std::getenv("ASTRAEA_CHECK_INVARIANTS"); env != nullptr) {
    if (std::strcmp(env, "1") == 0 || std::strcmp(env, "fatal") == 0) {
      mode = Mode::kFatal;
    } else if (std::strcmp(env, "report") == 0) {
      mode = Mode::kReport;
    } else if (std::strcmp(env, "0") != 0 && env[0] != '\0') {
      std::fprintf(stderr,
                   "ASTRAEA_CHECK_INVARIANTS=%s not recognized "
                   "(use 1|fatal, report or 0); checker stays off\n",
                   env);
    }
  }
  // First-wins against a concurrent Configure(): only replace the
  // uninitialized sentinel.
  int expected = -1;
  g_mode.compare_exchange_strong(expected, static_cast<int>(mode));
  return g_mode.load(std::memory_order_relaxed);
}

Mode CurrentMode() {
  int m = g_mode.load(std::memory_order_relaxed);
  if (m < 0) {
    m = InitFromEnv();
  }
  return static_cast<Mode>(m);
}

void Configure(Mode mode) { g_mode.store(static_cast<int>(mode), std::memory_order_relaxed); }

uint64_t ViolationCount() {
  return MetricsRegistry::Global().GetCounter("invariants.violations_total").Value();
}

void Report(const char* check, const std::string& detail) {
  MetricsRegistry::Global().GetCounter("invariants.violations_total").Increment();
  MetricsRegistry::Global().GetCounter(std::string("invariants.") + check).Increment();
  ASTRAEA_LOG(Error) << "invariant violated [" << check << "]: " << detail;
  if (CurrentMode() == Mode::kFatal) {
    throw Violation(std::string("invariant violated [") + check + "]: " + detail);
  }
}

ScopedMode::ScopedMode(Mode mode) : prev_(CurrentMode()) { Configure(mode); }

ScopedMode::~ScopedMode() { Configure(prev_); }

}  // namespace invariants
}  // namespace astraea
