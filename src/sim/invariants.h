// Always-compiled, runtime-toggled invariant checker for the simulator.
//
// Every number this repo reproduces rides on the packet-level emulator; a
// silent accounting bug in src/sim would skew every benchmark at once. This
// layer verifies the simulator's own physics while it runs:
//
//   * conservation of packets — sent = delivered + dropped + in-flight, both
//     per link (Link::VerifyInvariants) and per flow (Sender),
//   * event-queue causality — nothing scheduled in the past, dispatch times
//     monotone (EventQueue),
//   * queue-occupancy bounds and byte-count audits for DropTail/RED/CoDel
//     (QueueDiscipline::VerifyInvariants + per-discipline extras),
//   * FIFO delivery order per link per flow,
//   * cwnd/pacing sanity for every congestion controller after each decision.
//
// Mirrors the failpoint registry pattern (failpoint.h): sites are compiled
// into every build and cost one relaxed atomic load when the checker is off,
// so the exact shipping binaries can be checked. Runtime toggle:
//
//   ASTRAEA_CHECK_INVARIANTS=1|fatal   checks on; a violation throws
//                                      invariants::Violation (hard fail —
//                                      the mode CI and tests run under)
//   ASTRAEA_CHECK_INVARIANTS=report    checks on; violations are counted and
//                                      logged but the simulation continues
//   unset | 0                          off (default)
//
// Programmatic control for tests: invariants::Configure(Mode) or the RAII
// invariants::ScopedMode. Every violation — in either mode — increments
// MetricsRegistry counters `invariants.violations_total` and
// `invariants.<check>`, so a report-mode sweep can be scraped for a zero
// total afterwards.
//
// Checks are read-only observers: they never touch RNG streams or the event
// queue, so a checked run is bit-identical to an unchecked run of the same
// seed (tests/invariants_test.cc asserts this).

#ifndef SRC_SIM_INVARIANTS_H_
#define SRC_SIM_INVARIANTS_H_

#include <atomic>
#include <stdexcept>
#include <string>

namespace astraea {
namespace invariants {

enum class Mode : int { kOff = 0, kReport = 1, kFatal = 2 };

// Thrown on a violation in kFatal mode. logic_error: the simulation's own
// bookkeeping is broken, continuing would produce garbage numbers.
class Violation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

// Current mode; parses ASTRAEA_CHECK_INVARIANTS on the first call.
Mode CurrentMode();

// Programmatic override (replaces whatever the environment said).
void Configure(Mode mode);

// Process-wide count of violations observed (all checks, both modes).
// Equals the `invariants.violations_total` counter.
uint64_t ViolationCount();

// Records a violation against `check` (a metric suffix like
// "link.conservation"): bumps `invariants.violations_total` and
// `invariants.<check>`, logs one line, and throws Violation in kFatal mode.
void Report(const char* check, const std::string& detail);

// Fast path. -1 means "not yet initialized from the environment".
extern std::atomic<int> g_mode;
int InitFromEnv();

inline bool Enabled() {
  int m = g_mode.load(std::memory_order_relaxed);
  if (m < 0) {
    m = InitFromEnv();
  }
  return m != static_cast<int>(Mode::kOff);
}

// RAII mode override for tests; restores the previous mode on destruction.
class ScopedMode {
 public:
  explicit ScopedMode(Mode mode);
  ~ScopedMode();

  ScopedMode(const ScopedMode&) = delete;
  ScopedMode& operator=(const ScopedMode&) = delete;

 private:
  Mode prev_;
};

}  // namespace invariants
}  // namespace astraea

#endif  // SRC_SIM_INVARIANTS_H_
