#include "src/sim/link.h"

#include <utility>

namespace astraea {

Link::Link(EventQueue* events, LinkConfig config, Rng rng)
    : events_(events), config_(std::move(config)), rng_(rng) {
  if (config_.trace != nullptr) {
    provider_ = config_.trace;
  } else {
    provider_ = std::make_shared<ConstantRate>(config_.rate);
  }
  if (config_.queue_factory) {
    queue_ = config_.queue_factory(rng_.Fork());
  } else {
    queue_ = std::make_unique<DropTailQueue>(config_.buffer_bytes);
  }
}

void Link::set_tracer(Tracer* tracer, int32_t link_id) {
  tracer_ = tracer;
  trace_link_id_ = link_id;
  queue_->set_tracer(tracer, link_id);
}

void Link::Accept(Packet pkt) {
  accepted_bytes_ += pkt.size_bytes;
  if (!busy_) {
    StartService(pkt);
    return;
  }
  // Enqueue (or drop, per the discipline): dropped packets silently vanish;
  // senders infer the loss from the ACK gap. The discipline traces drops.
  if (queue_->Enqueue(pkt, events_->now()) && tracer_ != nullptr) {
    tracer_->Record(events_->now(), TraceEventType::kEnqueue, pkt.flow_id, trace_link_id_,
                    pkt.seq, static_cast<double>(pkt.size_bytes),
                    static_cast<double>(queue_->queued_bytes()));
  }
}

void Link::StartService(Packet pkt) {
  busy_ = true;
  const RateBps rate = provider_->RateAt(events_->now());
  const TimeNs tx = TransmissionDelay(pkt.size_bytes, rate);
  events_->ScheduleAfter(tx, [this, pkt] { FinishService(pkt); });
}

void Link::FinishService(Packet pkt) {
  delivered_bytes_ += pkt.size_bytes;
  if (config_.random_loss > 0.0 && rng_.Bernoulli(config_.random_loss)) {
    wire_lost_bytes_ += pkt.size_bytes;
  } else {
    events_->ScheduleAfter(config_.propagation_delay, [pkt] { ForwardToNextHop(pkt); });
  }
  std::optional<Packet> next = queue_->Dequeue(events_->now());
  if (next.has_value()) {
    if (tracer_ != nullptr) {
      tracer_->Record(events_->now(), TraceEventType::kDequeue, next->flow_id, trace_link_id_,
                      next->seq, static_cast<double>(next->size_bytes),
                      static_cast<double>(queue_->queued_bytes()));
    }
    StartService(*next);
  } else {
    busy_ = false;
  }
}

}  // namespace astraea
