#include "src/sim/link.h"

#include <string>
#include <utility>

#include "src/sim/invariants.h"
#include "src/util/failpoint.h"

namespace astraea {

namespace {
// Every kDeepAuditPeriod-th service completion also recounts the queue's
// bytes (O(n)) and runs discipline-specific extras; the per-packet checks
// stay O(1).
constexpr uint64_t kDeepAuditPeriod = 256;
}  // namespace

Link::Link(EventQueue* events, LinkConfig config, Rng rng, PacketPool* pool)
    : events_(events), config_(std::move(config)), rng_(rng), pool_(pool) {
  ASTRAEA_CHECK(pool_ != nullptr);
  if (config_.trace != nullptr) {
    provider_ = config_.trace;
  } else {
    provider_ = std::make_shared<ConstantRate>(config_.rate);
  }
  if (config_.queue_factory) {
    queue_ = config_.queue_factory(rng_.Fork());
  } else {
    queue_ = std::make_unique<DropTailQueue>(config_.buffer_bytes);
  }
  queue_->set_pool(pool_);
}

void Link::set_tracer(Tracer* tracer, int32_t link_id) {
  tracer_ = tracer;
  trace_link_id_ = link_id;
  queue_->set_tracer(tracer, link_id);
}

void Link::VerifyInvariants(const char* where, bool deep) const {
  if (!invariants::Enabled()) {
    return;
  }
  // Conservation: every accepted byte is accounted for exactly once — it was
  // delivered into the wire, dropped by the discipline, still queued, or in
  // the service process right now.
  const uint64_t accounted =
      delivered_bytes_ + queue_->dropped_bytes() + queue_->queued_bytes() + in_service_bytes_;
  if (accepted_bytes_ != accounted) {
    invariants::Report(
        "link.conservation",
        std::string(where) + " link '" + config_.name + "': accepted " +
            std::to_string(accepted_bytes_) + " B != delivered " +
            std::to_string(delivered_bytes_) + " + dropped " +
            std::to_string(queue_->dropped_bytes()) + " + queued " +
            std::to_string(queue_->queued_bytes()) + " + in-service " +
            std::to_string(in_service_bytes_) + " B");
  }
  // Wire loss is applied to packets that completed service, so it can never
  // exceed the delivered total.
  if (wire_lost_bytes_ > delivered_bytes_) {
    invariants::Report("link.wire_loss_bound",
                       std::string(where) + " link '" + config_.name + "': wire-lost " +
                           std::to_string(wire_lost_bytes_) + " B exceeds delivered " +
                           std::to_string(delivered_bytes_) + " B");
  }
  queue_->VerifyInvariants(deep);
}

void Link::Accept(PacketRef ref) {
  const Packet& pkt = pool_->Get(ref);
  accepted_bytes_ += pkt.size_bytes;
  // Injectable simulator bug for the correctness harness (see failpoint.h):
  // while armed, the packet silently vanishes without being counted as a
  // drop. The invariant checker flags the broken link conservation and the
  // golden-trace diff flags the altered flow dynamics. The pool slot is still
  // released — the injected bug is in the byte accounting, not a slot leak.
  if (failpoint::g_any_armed.load(std::memory_order_relaxed) &&
      failpoint::IsArmed("sim.queue.drop_uncounted")) {
    pool_->Release(ref);
    VerifyInvariants("Accept", false);
    return;
  }
  if (!busy_) {
    StartService(ref);
    return;
  }
  // Enqueue (or drop, per the discipline): dropped packets silently vanish;
  // senders infer the loss from the ACK gap. The discipline traces drops.
  const int flow_id = pkt.flow_id;
  const uint64_t seq = pkt.seq;
  const uint32_t size = pkt.size_bytes;
  if (queue_->Enqueue(ref, events_->now()) && tracer_ != nullptr) {
    tracer_->Record(events_->now(), TraceEventType::kEnqueue, flow_id, trace_link_id_,
                    seq, static_cast<double>(size),
                    static_cast<double>(queue_->queued_bytes()));
  }
  if (invariants::Enabled()) {
    VerifyInvariants("Accept", false);
  }
}

void Link::StartService(PacketRef ref) {
  busy_ = true;
  in_service_bytes_ = pool_->Get(ref).size_bytes;
  const RateBps rate = provider_->RateAt(events_->now());
  const TimeNs tx = TransmissionDelay(in_service_bytes_, rate);
  events_->ScheduleAfter(tx, [this, ref] { FinishService(ref); });
}

void Link::FinishService(PacketRef ref) {
  const Packet& pkt = pool_->Get(ref);
  const uint32_t size = pkt.size_bytes;
  const int flow_id = pkt.flow_id;
  const uint64_t seq = pkt.seq;
  delivered_bytes_ += size;
  in_service_bytes_ = 0;
  if (config_.random_loss > 0.0 && rng_.Bernoulli(config_.random_loss)) {
    wire_lost_bytes_ += size;
    pool_->Release(ref);
  } else {
    events_->ScheduleAfter(config_.propagation_delay,
                           [this, ref] { ForwardToNextHop(*pool_, ref); });
  }
  if (invariants::Enabled()) {
    // FIFO per flow: this link must deliver a flow's packets in the order the
    // flow sent them (sequence numbers are strictly increasing, never reused).
    uint64_t& last = last_delivered_seq_[flow_id];
    if (last != 0 && seq <= last - 1) {
      invariants::Report("link.fifo_order",
                         "link '" + config_.name + "' delivered seq " + std::to_string(seq) +
                             " of flow " + std::to_string(flow_id) + " after seq " +
                             std::to_string(last - 1));
    }
    last = seq + 1;  // store seq+1 so seq 0 is distinguishable from "none"
  }
  std::optional<PacketRef> next = queue_->Dequeue(events_->now());
  if (next.has_value()) {
    if (tracer_ != nullptr) {
      const Packet& np = pool_->Get(*next);
      tracer_->Record(events_->now(), TraceEventType::kDequeue, np.flow_id, trace_link_id_,
                      np.seq, static_cast<double>(np.size_bytes),
                      static_cast<double>(queue_->queued_bytes()));
    }
    StartService(*next);
  } else {
    busy_ = false;
  }
  if (invariants::Enabled()) {
    VerifyInvariants("FinishService", ++audit_tick_ % kDeepAuditPeriod == 0);
  }
}

}  // namespace astraea
