#include "src/sim/link.h"

#include <utility>

namespace astraea {

Link::Link(EventQueue* events, LinkConfig config, Rng rng)
    : events_(events), config_(std::move(config)), rng_(rng) {
  if (config_.trace != nullptr) {
    provider_ = config_.trace;
  } else {
    provider_ = std::make_shared<ConstantRate>(config_.rate);
  }
  if (config_.queue_factory) {
    queue_ = config_.queue_factory(rng_.Fork());
  } else {
    queue_ = std::make_unique<DropTailQueue>(config_.buffer_bytes);
  }
}

void Link::Accept(Packet pkt) {
  accepted_bytes_ += pkt.size_bytes;
  if (!busy_) {
    StartService(pkt);
    return;
  }
  // Enqueue (or drop, per the discipline): dropped packets silently vanish;
  // senders infer the loss from the ACK gap.
  queue_->Enqueue(pkt, events_->now());
}

void Link::StartService(Packet pkt) {
  busy_ = true;
  const RateBps rate = provider_->RateAt(events_->now());
  const TimeNs tx = TransmissionDelay(pkt.size_bytes, rate);
  events_->ScheduleAfter(tx, [this, pkt] { FinishService(pkt); });
}

void Link::FinishService(Packet pkt) {
  delivered_bytes_ += pkt.size_bytes;
  if (config_.random_loss > 0.0 && rng_.Bernoulli(config_.random_loss)) {
    wire_lost_bytes_ += pkt.size_bytes;
  } else {
    events_->ScheduleAfter(config_.propagation_delay, [pkt] { ForwardToNextHop(pkt); });
  }
  std::optional<Packet> next = queue_->Dequeue(events_->now());
  if (next.has_value()) {
    StartService(*next);
  } else {
    busy_ = false;
  }
}

}  // namespace astraea
