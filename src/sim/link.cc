#include "src/sim/link.h"

#include <string>
#include <utility>

#include "src/sim/invariants.h"
#include "src/util/failpoint.h"

namespace astraea {

namespace {
// Every kDeepAuditPeriod-th service completion also recounts the queue's
// bytes (O(n)) and runs discipline-specific extras; the per-packet checks
// stay O(1).
constexpr uint64_t kDeepAuditPeriod = 256;
}  // namespace

Link::Link(EventQueue* events, LinkConfig config, Rng rng)
    : events_(events), config_(std::move(config)), rng_(rng) {
  if (config_.trace != nullptr) {
    provider_ = config_.trace;
  } else {
    provider_ = std::make_shared<ConstantRate>(config_.rate);
  }
  if (config_.queue_factory) {
    queue_ = config_.queue_factory(rng_.Fork());
  } else {
    queue_ = std::make_unique<DropTailQueue>(config_.buffer_bytes);
  }
}

void Link::set_tracer(Tracer* tracer, int32_t link_id) {
  tracer_ = tracer;
  trace_link_id_ = link_id;
  queue_->set_tracer(tracer, link_id);
}

void Link::VerifyInvariants(const char* where, bool deep) const {
  if (!invariants::Enabled()) {
    return;
  }
  // Conservation: every accepted byte is accounted for exactly once — it was
  // delivered into the wire, dropped by the discipline, still queued, or in
  // the service process right now.
  const uint64_t accounted =
      delivered_bytes_ + queue_->dropped_bytes() + queue_->queued_bytes() + in_service_bytes_;
  if (accepted_bytes_ != accounted) {
    invariants::Report(
        "link.conservation",
        std::string(where) + " link '" + config_.name + "': accepted " +
            std::to_string(accepted_bytes_) + " B != delivered " +
            std::to_string(delivered_bytes_) + " + dropped " +
            std::to_string(queue_->dropped_bytes()) + " + queued " +
            std::to_string(queue_->queued_bytes()) + " + in-service " +
            std::to_string(in_service_bytes_) + " B");
  }
  // Wire loss is applied to packets that completed service, so it can never
  // exceed the delivered total.
  if (wire_lost_bytes_ > delivered_bytes_) {
    invariants::Report("link.wire_loss_bound",
                       std::string(where) + " link '" + config_.name + "': wire-lost " +
                           std::to_string(wire_lost_bytes_) + " B exceeds delivered " +
                           std::to_string(delivered_bytes_) + " B");
  }
  queue_->VerifyInvariants(deep);
}

void Link::Accept(Packet pkt) {
  accepted_bytes_ += pkt.size_bytes;
  // Injectable simulator bug for the correctness harness (see failpoint.h):
  // while armed, the packet silently vanishes without being counted as a
  // drop. The invariant checker flags the broken link conservation and the
  // golden-trace diff flags the altered flow dynamics.
  if (failpoint::g_any_armed.load(std::memory_order_relaxed) &&
      failpoint::IsArmed("sim.queue.drop_uncounted")) {
    VerifyInvariants("Accept", false);
    return;
  }
  if (!busy_) {
    StartService(pkt);
    return;
  }
  // Enqueue (or drop, per the discipline): dropped packets silently vanish;
  // senders infer the loss from the ACK gap. The discipline traces drops.
  if (queue_->Enqueue(pkt, events_->now()) && tracer_ != nullptr) {
    tracer_->Record(events_->now(), TraceEventType::kEnqueue, pkt.flow_id, trace_link_id_,
                    pkt.seq, static_cast<double>(pkt.size_bytes),
                    static_cast<double>(queue_->queued_bytes()));
  }
  if (invariants::Enabled()) {
    VerifyInvariants("Accept", false);
  }
}

void Link::StartService(Packet pkt) {
  busy_ = true;
  in_service_bytes_ = pkt.size_bytes;
  const RateBps rate = provider_->RateAt(events_->now());
  const TimeNs tx = TransmissionDelay(pkt.size_bytes, rate);
  events_->ScheduleAfter(tx, [this, pkt] { FinishService(pkt); });
}

void Link::FinishService(Packet pkt) {
  delivered_bytes_ += pkt.size_bytes;
  in_service_bytes_ = 0;
  if (config_.random_loss > 0.0 && rng_.Bernoulli(config_.random_loss)) {
    wire_lost_bytes_ += pkt.size_bytes;
  } else {
    events_->ScheduleAfter(config_.propagation_delay, [pkt] { ForwardToNextHop(pkt); });
  }
  if (invariants::Enabled()) {
    // FIFO per flow: this link must deliver a flow's packets in the order the
    // flow sent them (sequence numbers are strictly increasing, never reused).
    uint64_t& last = last_delivered_seq_[pkt.flow_id];
    if (last != 0 && pkt.seq <= last - 1) {
      invariants::Report("link.fifo_order",
                         "link '" + config_.name + "' delivered seq " + std::to_string(pkt.seq) +
                             " of flow " + std::to_string(pkt.flow_id) + " after seq " +
                             std::to_string(last - 1));
    }
    last = pkt.seq + 1;  // store seq+1 so seq 0 is distinguishable from "none"
  }
  std::optional<Packet> next = queue_->Dequeue(events_->now());
  if (next.has_value()) {
    if (tracer_ != nullptr) {
      tracer_->Record(events_->now(), TraceEventType::kDequeue, next->flow_id, trace_link_id_,
                      next->seq, static_cast<double>(next->size_bytes),
                      static_cast<double>(queue_->queued_bytes()));
    }
    StartService(*next);
  } else {
    busy_ = false;
  }
  if (invariants::Enabled()) {
    VerifyInvariants("FinishService", ++audit_tick_ % kDeepAuditPeriod == 0);
  }
}

}  // namespace astraea
