// A unidirectional bottleneck link: DropTail byte-capacity queue, a service
// process at a (possibly time-varying) rate, fixed propagation delay and
// optional iid non-congestive loss applied on the wire.

#ifndef SRC_SIM_LINK_H_
#define SRC_SIM_LINK_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "src/sim/event_queue.h"
#include "src/sim/packet.h"
#include "src/sim/packet_pool.h"
#include "src/sim/queue_disc.h"
#include "src/sim/rate_provider.h"
#include "src/sim/trace.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace astraea {

struct LinkConfig {
  std::string name = "link";
  RateBps rate = Mbps(100);                   // used when `trace` is null
  TimeNs propagation_delay = Milliseconds(10);  // one-way
  uint64_t buffer_bytes = 375'000;            // DropTail capacity (excl. pkt in service)
  double random_loss = 0.0;                   // iid wire-loss probability
  std::shared_ptr<RateProvider> trace;        // overrides `rate` when set
  // Custom AQM (RED, CoDel, ...). Defaults to DropTail(buffer_bytes).
  QueueFactory queue_factory;
};

class Link : public PacketSink {
 public:
  Link(EventQueue* events, LinkConfig config, Rng rng, PacketPool* pool);

  // PacketSink: enqueue (or DropTail-drop) an arriving packet. Takes
  // ownership of the ref; drops release it back to the pool.
  void Accept(PacketRef ref) override;

  // Instantaneous state.
  uint64_t queue_bytes() const { return queue_->queued_bytes(); }
  size_t queue_packets() const { return queue_->queued_packets(); }
  RateBps current_rate() const { return provider_->RateAt(events_->now()); }
  // Bytes of the packet currently in the service process (0 when idle).
  uint64_t in_service_bytes() const { return in_service_bytes_; }

  // Cumulative counters.
  uint64_t delivered_bytes() const { return delivered_bytes_; }
  uint64_t dropped_bytes() const { return queue_->dropped_bytes(); }  // AQM drops
  uint64_t wire_lost_bytes() const { return wire_lost_bytes_; }       // random loss
  uint64_t accepted_bytes() const { return accepted_bytes_; }

  const LinkConfig& config() const { return config_; }
  const RateProvider& provider() const { return *provider_; }
  const QueueDiscipline& queue() const { return *queue_; }

  // Attaches an event tracer recording enqueue/dequeue/drop at this link.
  // Null detaches; when off the per-packet cost is one pointer test.
  void set_tracer(Tracer* tracer, int32_t link_id);

  // Invariant-checker entry point (no-op unless invariants::Enabled()):
  // byte conservation (accepted = delivered + AQM-dropped + queued +
  // in-service), wire-loss bound, queue-occupancy bounds and — on deep
  // audits — the O(n) queue byte recount. Called internally at every packet
  // transition and by Network at the end of Run().
  void VerifyInvariants(const char* where, bool deep) const;

 private:
  void StartService(PacketRef ref);
  void FinishService(PacketRef ref);

  EventQueue* events_;
  LinkConfig config_;
  std::shared_ptr<RateProvider> provider_;
  Rng rng_;
  PacketPool* pool_;

  std::unique_ptr<QueueDiscipline> queue_;
  bool busy_ = false;
  Tracer* tracer_ = nullptr;
  int32_t trace_link_id_ = -1;

  uint64_t accepted_bytes_ = 0;
  uint64_t delivered_bytes_ = 0;
  uint64_t wire_lost_bytes_ = 0;
  uint64_t in_service_bytes_ = 0;

  // Invariant-checker state (only touched when the checker is enabled):
  // last sequence number each flow had delivered by this link, for the
  // per-flow FIFO-order check, plus a tick driving the periodic deep audit.
  mutable std::unordered_map<int32_t, uint64_t> last_delivered_seq_;
  mutable uint64_t audit_tick_ = 0;
};

}  // namespace astraea

#endif  // SRC_SIM_LINK_H_
