#include "src/sim/link_trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "src/util/serialization.h"

namespace astraea {

LinkRateTrace ParseLinkRateTrace(const void* data, size_t size) {
  const char* bytes = static_cast<const char*>(data);
  LinkRateTrace trace;
  size_t pos = 0;
  size_t line_no = 0;
  while (pos < size) {
    size_t eol = pos;
    while (eol < size && bytes[eol] != '\n') {
      ++eol;
    }
    size_t len = eol - pos;
    if (len > 0 && bytes[pos + len - 1] == '\r') {
      --len;  // CRLF
    }
    ++line_no;
    const char* line = bytes + pos;
    pos = eol + 1;
    if (len == 0 || line[0] == '#') {
      continue;
    }
    int64_t value = 0;
    for (size_t i = 0; i < len; ++i) {
      const char c = line[i];
      if (c < '0' || c > '9') {
        throw SerializationError("link trace line " + std::to_string(line_no) +
                                 ": non-digit byte in timestamp");
      }
      value = value * 10 + (c - '0');
      if (value > kMaxLinkTraceMs) {
        throw SerializationError("link trace line " + std::to_string(line_no) +
                                 ": timestamp exceeds " + std::to_string(kMaxLinkTraceMs) +
                                 " ms");
      }
    }
    if (!trace.opportunities_ms.empty() && value < trace.opportunities_ms.back()) {
      throw SerializationError("link trace line " + std::to_string(line_no) +
                               ": timestamp " + std::to_string(value) +
                               " ms decreases (previous " +
                               std::to_string(trace.opportunities_ms.back()) + " ms)");
    }
    if (trace.opportunities_ms.size() >= kMaxLinkTraceOpportunities) {
      throw SerializationError("link trace exceeds " +
                               std::to_string(kMaxLinkTraceOpportunities) + " opportunities");
    }
    trace.opportunities_ms.push_back(value);
  }
  if (trace.opportunities_ms.empty()) {
    throw SerializationError("link trace has no delivery opportunities");
  }
  return trace;
}

std::string CanonicalLinkRateTrace(const LinkRateTrace& trace) {
  std::string out;
  out.reserve(trace.opportunities_ms.size() * 8);
  char buf[32];
  for (const int64_t ms : trace.opportunities_ms) {
    const int n = std::snprintf(buf, sizeof(buf), "%lld\n", static_cast<long long>(ms));
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

LinkRateTrace LoadLinkRateTraceFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SerializationError("cannot open trace file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    throw SerializationError("trace read failed: " + path);
  }
  const std::string contents = buf.str();
  try {
    return ParseLinkRateTrace(contents.data(), contents.size());
  } catch (const SerializationError& e) {
    throw SerializationError(path + ": " + e.what());
  }
}

void SaveLinkRateTraceFile(const LinkRateTrace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw SerializationError("cannot open trace file for writing: " + path);
  }
  const std::string text = CanonicalLinkRateTrace(trace);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.flush();
  if (!out.good()) {
    throw SerializationError("trace write failed (disk full?): " + path);
  }
}

RateTrace ToRateTrace(const LinkRateTrace& trace, uint32_t mtu_bytes, TimeNs granularity) {
  // Identical bucketing to the original LoadMahimahiTrace: count
  // opportunities per slot, floor empty slots at 1 Kbps.
  std::map<int64_t, int64_t> slot_counts;
  int64_t max_ms = 0;
  for (const int64_t ms : trace.opportunities_ms) {
    max_ms = std::max(max_ms, ms);
    slot_counts[Milliseconds(ms) / granularity] += 1;
  }
  const int64_t slots = Milliseconds(max_ms) / granularity + 1;
  std::vector<std::pair<TimeNs, RateBps>> steps;
  steps.reserve(static_cast<size_t>(slots));
  const double slot_seconds = ToSeconds(granularity);
  for (int64_t s = 0; s < slots; ++s) {
    const auto it = slot_counts.find(s);
    const double pkts = it != slot_counts.end() ? static_cast<double>(it->second) : 0.0;
    const double bps = std::max(pkts * mtu_bytes * 8.0 / slot_seconds, Kbps(1.0));
    steps.emplace_back(s * granularity, bps);
  }
  return RateTrace(std::move(steps));
}

LinkRateTrace FromRateTrace(const RateTrace& trace, TimeNs duration, uint32_t mtu_bytes) {
  // 1 ms credit walk mirroring SaveMahimahiTrace: one opportunity per
  // accumulated MTU of capacity.
  LinkRateTrace out;
  double credit_bits = 0.0;
  const double bits_per_pkt = mtu_bytes * 8.0;
  for (TimeNs t = 0; t < duration; t += Milliseconds(1)) {
    credit_bits += trace.RateAt(t) * ToSeconds(Milliseconds(1));
    while (credit_bits >= bits_per_pkt) {
      out.opportunities_ms.push_back(t / kNanosPerMilli);
      credit_bits -= bits_per_pkt;
    }
  }
  return out;
}

}  // namespace astraea
