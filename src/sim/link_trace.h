// Mahimahi-compatible link trace: a list of packet delivery opportunities,
// one integer millisecond timestamp per line (duplicates = several
// opportunities in the same millisecond). This is the interchange format of
// the trace-driven scenario family — the bundled cellular/satellite captures
// under traces/ and everything `--trace` modes load.
//
// Like every serialized surface in this repo the parser is hostile-byte-safe
// (fuzz/fuzz_link_trace.cc): arbitrary input either yields a valid trace or
// throws SerializationError — garbage lines, non-monotone timestamps,
// overflow and oversized inputs are all rejected rather than silently
// coerced. A parsed trace has a canonical text form; Parse(Canonical(t)) is
// the identity, which is the fuzzer's round-trip property.
//
// (Named LinkRateTrace because network.h already uses LinkTrace for the
// per-link sampling series.)

#ifndef SRC_SIM_LINK_TRACE_H_
#define SRC_SIM_LINK_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/rate_provider.h"
#include "src/util/time.h"

namespace astraea {

struct LinkRateTrace {
  // Non-decreasing delivery-opportunity timestamps in milliseconds. Each
  // opportunity delivers one MTU-sized packet.
  std::vector<int64_t> opportunities_ms;

  bool operator==(const LinkRateTrace& other) const {
    return opportunities_ms == other.opportunities_ms;
  }
};

// Hard limits enforced by the parser (hostile-input bounds).
inline constexpr int64_t kMaxLinkTraceMs = 86'400'000;      // 24 hours
inline constexpr size_t kMaxLinkTraceOpportunities = 1 << 22;  // ~4M lines

// Parses the text format from an in-memory buffer. Accepts LF or CRLF line
// endings, blank lines and '#' comments. Throws SerializationError on a
// non-digit byte in a timestamp, a timestamp above kMaxLinkTraceMs, a
// decreasing timestamp, more than kMaxLinkTraceOpportunities lines, or a
// trace with no opportunities at all.
LinkRateTrace ParseLinkRateTrace(const void* data, size_t size);

// Canonical text form: one "%lld\n" per opportunity, no comments. Parsing it
// back yields an equal trace (round-trip identity).
std::string CanonicalLinkRateTrace(const LinkRateTrace& trace);

// File wrappers around Parse/Canonical. Load throws SerializationError on
// I/O failure or any parse error; Save writes the canonical form atomically
// enough for test use (plain write + flush check).
LinkRateTrace LoadLinkRateTraceFile(const std::string& path);
void SaveLinkRateTraceFile(const LinkRateTrace& trace, const std::string& path);

// Buckets opportunities into per-`granularity` rate slots for the simulator's
// piecewise-constant RateTrace (rates floored at 1 Kbps so outage slots keep
// finite service times). This is the RateProvider integration point:
// LoadMahimahiTrace == ToRateTrace(LoadLinkRateTraceFile(path)).
RateTrace ToRateTrace(const LinkRateTrace& trace, uint32_t mtu_bytes = 1500,
                      TimeNs granularity = Milliseconds(20));

// Exports `duration` worth of a RateTrace as delivery opportunities (1 ms
// credit walk). When every slot rate is an integer number of MTUs per slot
// the export is exact, so ToRateTrace(FromRateTrace(t)) reproduces t — the
// bit-identity property tests/rate_provider_test.cc checks end to end.
LinkRateTrace FromRateTrace(const RateTrace& trace, TimeNs duration, uint32_t mtu_bytes = 1500);

}  // namespace astraea

#endif  // SRC_SIM_LINK_TRACE_H_
