#include "src/sim/network.h"

#include <cstdlib>
#include <string>
#include <utility>

#include "src/sim/invariants.h"
#include "src/util/logging.h"
#include "src/util/metrics.h"

namespace astraea {

Network::Network(uint64_t seed) : rng_(seed) {}

Network::~Network() = default;

size_t Network::AddLink(LinkConfig config) {
  ASTRAEA_CHECK(!started_);
  links_.push_back(std::make_unique<Link>(&events_, std::move(config), rng_.Fork(), &pool_));
  link_traces_.emplace_back();
  link_prev_delivered_.push_back(0);
  return links_.size() - 1;
}

int Network::AddFlow(FlowSpec spec) {
  ASTRAEA_CHECK(!started_);
  ASTRAEA_CHECK(spec.make_cc != nullptr);
  ASTRAEA_CHECK(!spec.link_path.empty());

  const int flow_id = static_cast<int>(flows_.size());
  FlowRecord record;
  record.spec = spec;

  // ACK return delay: one-way propagation back over the same distance plus
  // the flow's heterogeneity delay. Queuing happens only on the data path.
  TimeNs return_delay = spec.extra_one_way_delay;
  for (size_t idx : spec.link_path) {
    ASTRAEA_CHECK(idx < links_.size());
    return_delay += links_[idx]->config().propagation_delay;
  }

  // Receiver is created first (without its sender), so the data route can end
  // with it; the back-pointer is wired up right after the sender exists.
  record.receiver = std::make_unique<Receiver>(&events_, &pool_, nullptr, return_delay);

  Route route;
  for (size_t idx : spec.link_path) {
    route.push_back(links_[idx].get());
  }
  route.push_back(record.receiver.get());

  record.sender = std::make_unique<Sender>(&events_, &pool_, flow_id, std::move(route),
                                           spec.make_cc(), spec.sender);
  record.receiver->set_sender(record.sender.get());
  flows_.push_back(std::move(record));
  return flow_id;
}

void Network::EnableLinkSampling(TimeNs interval) {
  ASTRAEA_CHECK(!started_);
  sample_interval_ = interval;
}

void Network::SampleLinks() {
  const TimeNs now = events_.now();
  for (size_t i = 0; i < links_.size(); ++i) {
    link_traces_[i].queue_packets.Add(now, static_cast<double>(links_[i]->queue_packets()));
    const uint64_t delivered = links_[i]->delivered_bytes();
    const double mbps = ToMbps(static_cast<double>(delivered - link_prev_delivered_[i]) * 8.0 /
                               ToSeconds(sample_interval_));
    link_traces_[i].delivered_mbps.Add(now, mbps);
    link_prev_delivered_[i] = delivered;
  }
  events_.ScheduleAfter(sample_interval_, [this] { SampleLinks(); });
}

void Network::SetTracer(Tracer* tracer) {
  tracer_ = tracer;
  for (size_t i = 0; i < links_.size(); ++i) {
    links_[i]->set_tracer(tracer, static_cast<int32_t>(i));
  }
  for (auto& record : flows_) {
    record.sender->set_tracer(tracer);
  }
}

void Network::Run(TimeNs until) {
  if (!started_) {
    started_ = true;
    // CI hook: force every Record() path on without writing any file, to
    // verify tracing cannot perturb results (see .github/workflows/ci.yml).
    if (tracer_ == nullptr && std::getenv("ASTRAEA_FORCE_TRACE") != nullptr) {
      forced_tracer_ = std::make_unique<Tracer>("", Tracer::Format::kNone);
      SetTracer(forced_tracer_.get());
    }
    for (auto& record : flows_) {
      Sender* sender = record.sender.get();
      events_.Schedule(record.spec.start, [sender] { sender->Start(); });
      if (record.spec.duration >= 0) {
        events_.Schedule(record.spec.start + record.spec.duration, [sender] { sender->Stop(); });
      }
    }
    if (sample_interval_ > 0) {
      events_.ScheduleAfter(sample_interval_, [this] { SampleLinks(); });
    }
  }
  events_.RunUntil(until);
  PublishPoolMetrics();

  if (invariants::Enabled()) {
    // End-of-run audit: full (deep) conservation recount on every link and
    // flow, plus the sender/receiver cross-check — the sender can never have
    // had more bytes ACKed than the receiver actually took delivery of.
    for (size_t i = 0; i < links_.size(); ++i) {
      links_[i]->VerifyInvariants("Network::Run", /*deep=*/true);
    }
    for (size_t i = 0; i < flows_.size(); ++i) {
      const FlowRecord& record = flows_[i];
      record.sender->VerifyInvariants("Network::Run", /*deep=*/true);
      if (record.sender->stats().bytes_acked > record.receiver->received_bytes()) {
        invariants::Report(
            "flow.ack_receipt_bound",
            "flow " + std::to_string(i) + ": sender has " +
                std::to_string(record.sender->stats().bytes_acked) +
                " B acked but receiver only took delivery of " +
                std::to_string(record.receiver->received_bytes()) + " B");
      }
    }
  }
}

void Network::PublishPoolMetrics() const {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.GetGauge("sim.pool.packets_live").Set(static_cast<double>(pool_.live()));
  metrics.GetGauge("sim.pool.packets_capacity").Set(static_cast<double>(pool_.capacity()));
  metrics.GetGauge("sim.pool.packets_recycled_total").Set(static_cast<double>(pool_.recycled()));
  metrics.GetGauge("sim.pool.events_pending").Set(static_cast<double>(events_.pending()));
  metrics.GetGauge("sim.pool.events_capacity").Set(static_cast<double>(events_.slot_capacity()));
  metrics.GetGauge("sim.pool.events_recycled_total")
      .Set(static_cast<double>(events_.slots_recycled()));
  metrics.GetGauge("sim.pool.calendar_buckets").Set(static_cast<double>(events_.bucket_count()));
  metrics.GetGauge("sim.pool.calendar_rotations")
      .Set(static_cast<double>(events_.calendar_rotations()));
  metrics.GetGauge("sim.pool.calendar_rebuilds")
      .Set(static_cast<double>(events_.calendar_rebuilds()));
  // Pre-register the invariant counters so a clean scrape shows explicit
  // zeros rather than missing keys (the checker only registers on first
  // violation).
  metrics.GetCounter("invariants.violations_total");
}

std::vector<int> Network::ActiveFlowIds() const {
  std::vector<int> ids;
  for (size_t i = 0; i < flows_.size(); ++i) {
    if (flows_[i].sender->running()) {
      ids.push_back(static_cast<int>(i));
    }
  }
  return ids;
}

TimeNs Network::BaseRtt(int flow_id) const {
  const FlowRecord& record = flows_[flow_id];
  TimeNs prop = 0;
  for (size_t idx : record.spec.link_path) {
    prop += links_[idx]->config().propagation_delay;
  }
  // Data path propagation + (propagation + heterogeneity delay) on the return.
  return 2 * prop + record.spec.extra_one_way_delay;
}

}  // namespace astraea
