// Network: a runnable scenario — links, flows and their schedules.
//
// A Network owns the event queue, all links and all endpoints. Flows are
// described by FlowSpec (scheme factory, start time, duration, path through
// the links, RTT-heterogeneity extra delay) and started/stopped by scheduled
// events. This is the Runtime module of the paper's training environment
// (§3.2); the Astraea-specific Observer/Enforcer layers live in src/core.

#ifndef SRC_SIM_NETWORK_H_
#define SRC_SIM_NETWORK_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/endpoint.h"
#include "src/sim/event_queue.h"
#include "src/sim/link.h"
#include "src/sim/packet_pool.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace astraea {

using CcFactory = std::function<std::unique_ptr<CongestionController>()>;

struct FlowSpec {
  std::string scheme = "unnamed";
  CcFactory make_cc;
  TimeNs start = 0;
  TimeNs duration = -1;              // -1: run until the scenario ends
  TimeNs extra_one_way_delay = 0;    // appended to the ACK return path
  std::vector<size_t> link_path{0};  // indices into the Network's links
  SenderConfig sender;
};

// Periodic samples of per-link state for utilization/queue plots.
struct LinkTrace {
  TimeSeries queue_packets;
  TimeSeries delivered_mbps;
};

class Network {
 public:
  explicit Network(uint64_t seed);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Adds a link; returns its index (used in FlowSpec::link_path).
  size_t AddLink(LinkConfig config);

  // Adds a flow; returns its id. All flows must be added before Run().
  int AddFlow(FlowSpec spec);

  // Begins periodic link sampling (call before Run).
  void EnableLinkSampling(TimeNs interval);

  // Attaches an event tracer to every link (enqueue/dequeue/drop), sender
  // (send/ack/loss/rto/cwnd) and controller (action). Tracing is purely
  // observational: the event schedule and RNG streams are untouched, so a
  // traced run is bit-identical to an untraced one. Null detaches.
  void SetTracer(Tracer* tracer);

  // Runs the scenario until `until` (simulated time).
  void Run(TimeNs until);

  EventQueue& events() { return events_; }
  const EventQueue& events() const { return events_; }
  PacketPool& packet_pool() { return pool_; }
  TimeNs now() const { return events_.now(); }

  size_t link_count() const { return links_.size(); }
  Link& link(size_t i) { return *links_[i]; }
  const Link& link(size_t i) const { return *links_[i]; }
  const LinkTrace& link_trace(size_t i) const { return link_traces_[i]; }

  size_t flow_count() const { return flows_.size(); }
  Sender& sender(int flow_id) { return *flows_[flow_id].sender; }
  const Sender& sender(int flow_id) const { return *flows_[flow_id].sender; }
  const FlowStats& flow_stats(int flow_id) const { return flows_[flow_id].sender->stats(); }
  const FlowSpec& flow_spec(int flow_id) const { return flows_[flow_id].spec; }

  // Flows currently transmitting.
  std::vector<int> ActiveFlowIds() const;

  // Sum of basic one-way propagation delays along a flow's path plus its ACK
  // return delay — i.e. the flow's base RTT (zero queuing).
  TimeNs BaseRtt(int flow_id) const;

 private:
  struct FlowRecord {
    FlowSpec spec;
    std::unique_ptr<Receiver> receiver;
    std::unique_ptr<Sender> sender;
  };

  void SampleLinks();

  // Publishes sim.pool.* gauges (and pre-registers invariants counters) to
  // the global MetricsRegistry; called at the end of every Run() so
  // --metrics-out scrapes see pool health without extra plumbing.
  void PublishPoolMetrics() const;

  // Declared before links/flows so packets outlive the components that hold
  // refs into the pool during teardown.
  PacketPool pool_;
  EventQueue events_;
  Rng rng_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<LinkTrace> link_traces_;
  std::vector<uint64_t> link_prev_delivered_;
  std::vector<FlowRecord> flows_;
  TimeNs sample_interval_ = 0;
  bool started_ = false;
  Tracer* tracer_ = nullptr;
  // Owned in-memory tracer when ASTRAEA_FORCE_TRACE is set (CI perturbation
  // check): exercises every Record() path without touching the filesystem.
  std::unique_ptr<Tracer> forced_tracer_;
};

}  // namespace astraea

#endif  // SRC_SIM_NETWORK_H_
