// Packet representation and the hop-to-hop delivery interface.
//
// Packets are owned by a PacketPool (see packet_pool.h) and travel the
// network as PacketRef handles; the Packet struct itself never moves once
// acquired.

#ifndef SRC_SIM_PACKET_H_
#define SRC_SIM_PACKET_H_

#include <cstdint>
#include <vector>

#include "src/util/time.h"

namespace astraea {

class PacketSink;

// A route is an ordered list of sinks (links, then the receiving endpoint).
// The route object is owned by the flow and outlives all its packets.
using Route = std::vector<PacketSink*>;

struct Packet {
  int flow_id = 0;
  uint64_t seq = 0;           // per-flow data sequence number (in packets)
  uint32_t size_bytes = 0;
  TimeNs sent_time = 0;       // when the data packet left the sender
  const Route* route = nullptr;
  size_t hop = 0;             // index of the sink currently holding the packet
  // ECN: the sender sets ecn_capable (ECT) when its controller reacts to
  // marks; an EcnMarkingQueue sets ecn_ce (CE) instead of dropping, and the
  // receiver echoes CE back on the ACK. Pool slots are recycled, so the
  // sender must reinitialize both on every acquire.
  bool ecn_capable = false;
  bool ecn_ce = false;
};

// Generation-stamped handle to a pooled Packet. Copying the ref does not copy
// the packet; resolving a ref whose packet was released is a checked error.
struct PacketRef {
  uint32_t idx = 0xFFFFFFFFu;
  uint32_t gen = 0;
};

// Anything that can accept a packet: a link or a receiving endpoint.
// Accept() transfers ownership of the ref — the sink must eventually forward
// or release it.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void Accept(PacketRef ref) = 0;
};

}  // namespace astraea

#endif  // SRC_SIM_PACKET_H_
