// Packet representation and the hop-to-hop delivery interface.

#ifndef SRC_SIM_PACKET_H_
#define SRC_SIM_PACKET_H_

#include <cstdint>
#include <vector>

#include "src/util/time.h"

namespace astraea {

class PacketSink;

// A route is an ordered list of sinks (links, then the receiving endpoint).
// The route object is owned by the flow and outlives all its packets.
using Route = std::vector<PacketSink*>;

struct Packet {
  int flow_id = 0;
  uint64_t seq = 0;           // per-flow data sequence number (in packets)
  uint32_t size_bytes = 0;
  TimeNs sent_time = 0;       // when the data packet left the sender
  const Route* route = nullptr;
  size_t hop = 0;             // index of the sink currently holding the packet
};

// Anything that can accept a packet: a link or a receiving endpoint.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void Accept(Packet pkt) = 0;
};

// Forwards `pkt` to the next sink on its route. Called by links after the
// propagation delay elapses.
inline void ForwardToNextHop(Packet pkt) {
  pkt.hop += 1;
  PacketSink* next = (*pkt.route)[pkt.hop];
  next->Accept(pkt);
}

}  // namespace astraea

#endif  // SRC_SIM_PACKET_H_
