// Slab-allocated packet pool: packets live in chunked slabs and travel the
// network as 8-byte generation-stamped references instead of 56-byte values.
//
// The seed simulator copied `Packet` by value into every closure and at every
// hop; at 10⁵–10⁶ flows those copies (and the std::function allocations they
// forced) dominate the run. With the pool, a send acquires a slot, every hop
// forwards the same PacketRef, and the terminal owner (receiver, AQM drop,
// wire loss) releases it back to the freelist — per-packet cost is index
// arithmetic.
//
// Ownership protocol: exactly one owner per live ref. Accept() transfers
// ownership to the sink; a sink that drops a packet (queue drop, wire loss,
// failpoint) must Release() it. The generation stamp turns use-after-release
// into an immediate ASTRAEA_CHECK failure instead of silent corruption, and
// PacketPool::live() makes leaks visible (`sim.pool.packets_live` gauge).

#ifndef SRC_SIM_PACKET_POOL_H_
#define SRC_SIM_PACKET_POOL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/packet.h"
#include "src/util/logging.h"

namespace astraea {

class PacketPool {
 public:
  PacketPool() = default;

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  // Hands out a slot (recycled if possible). Fields hold whatever the
  // previous use left; the caller must initialize them.
  PacketRef Acquire() {
    uint32_t idx;
    if (free_head_ != kNil) {
      idx = free_head_;
      free_head_ = next_[idx];
      ++recycled_;
    } else {
      idx = static_cast<uint32_t>(next_.size());
      if ((static_cast<size_t>(idx) >> kChunkShift) == chunks_.size()) {
        chunks_.push_back(std::make_unique<Packet[]>(kChunkSize));
      }
      next_.push_back(kNil);
      gen_.push_back(0);
    }
    ++live_;
    return PacketRef{idx, gen_[idx]};
  }

  // The Packet& stays valid (slabs never move) until Release().
  Packet& Get(PacketRef ref) {
    ASTRAEA_CHECK(ref.idx < next_.size() && gen_[ref.idx] == ref.gen);
    return chunks_[ref.idx >> kChunkShift][ref.idx & (kChunkSize - 1)];
  }
  const Packet& Get(PacketRef ref) const {
    ASTRAEA_CHECK(ref.idx < next_.size() && gen_[ref.idx] == ref.gen);
    return chunks_[ref.idx >> kChunkShift][ref.idx & (kChunkSize - 1)];
  }

  void Release(PacketRef ref) {
    ASTRAEA_CHECK(ref.idx < next_.size() && gen_[ref.idx] == ref.gen);
    ++gen_[ref.idx];  // stale refs stop matching
    next_[ref.idx] = free_head_;
    free_head_ = ref.idx;
    --live_;
  }

  size_t live() const { return live_; }
  size_t capacity() const { return next_.size(); }
  uint64_t recycled() const { return recycled_; }

 private:
  static constexpr uint32_t kNil = 0xFFFFFFFFu;
  static constexpr size_t kChunkShift = 12;  // 4096 packets per slab
  static constexpr size_t kChunkSize = size_t{1} << kChunkShift;

  std::vector<std::unique_ptr<Packet[]>> chunks_;
  // Struct-of-arrays metadata: freelist links and generation stamps.
  std::vector<uint32_t> next_;
  std::vector<uint32_t> gen_;
  uint32_t free_head_ = kNil;
  size_t live_ = 0;
  uint64_t recycled_ = 0;
};

// Forwards `ref` to the next sink on its route. Called by links after the
// propagation delay elapses. Ownership moves to the next sink.
inline void ForwardToNextHop(PacketPool& pool, PacketRef ref) {
  Packet& pkt = pool.Get(ref);
  pkt.hop += 1;
  PacketSink* next = (*pkt.route)[pkt.hop];
  next->Accept(ref);
}

}  // namespace astraea

#endif  // SRC_SIM_PACKET_POOL_H_
