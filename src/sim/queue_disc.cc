#include "src/sim/queue_disc.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/sim/invariants.h"
#include "src/util/logging.h"

namespace astraea {

void QueueDiscipline::VerifyInvariants(bool deep) const {
  const uint64_t bytes = queued_bytes();
  if (bytes > capacity_bytes()) {
    invariants::Report("queue.occupancy",
                       "queued " + std::to_string(bytes) + " B exceeds capacity " +
                           std::to_string(capacity_bytes()) + " B");
  }
  if ((bytes == 0) != (queued_packets() == 0)) {
    invariants::Report("queue.empty_consistency",
                       "queued_bytes=" + std::to_string(bytes) +
                           " but queued_packets=" + std::to_string(queued_packets()));
  }
  if (deep) {
    const uint64_t recount = RecountQueuedBytes();
    if (recount != bytes) {
      invariants::Report("queue.byte_audit", "maintained counter " + std::to_string(bytes) +
                                                 " B != recounted " + std::to_string(recount) +
                                                 " B");
    }
    VerifyExtraInvariants();
  }
}

// ---------------------------------------------------------------- DropTail

bool DropTailQueue::Enqueue(PacketRef ref, TimeNs now) {
  const uint32_t size = pool_->Get(ref).size_bytes;
  if (bytes_ + size > capacity_) {
    dropped_ += size;
    DropPacket(ref, now, bytes_);
    return false;
  }
  bytes_ += size;
  queue_.push_back(ref);
  return true;
}

std::optional<PacketRef> DropTailQueue::Dequeue(TimeNs /*now*/) {
  if (queue_.empty()) {
    return std::nullopt;
  }
  const PacketRef ref = queue_.front();
  queue_.pop_front();
  bytes_ -= pool_->Get(ref).size_bytes;
  return ref;
}

uint64_t DropTailQueue::RecountQueuedBytes() const {
  uint64_t total = 0;
  for (const PacketRef ref : queue_) {
    total += pool_->Get(ref).size_bytes;
  }
  return total;
}

// --------------------------------------------------------------------- RED

bool RedQueue::Enqueue(PacketRef ref, TimeNs now) {
  const uint32_t size = pool_->Get(ref).size_bytes;
  // Floyd/Jacobson idle-time correction: while the queue sat empty the EWMA
  // saw no arrivals and froze at its last (possibly high) value. Decay it as
  // if m = idle / idle_pkt_tx_time packets had departed during the gap, so a
  // burst after an idle period is not greeted with stale-high drop pressure.
  if (queue_.empty() && idle_since_ >= 0 && now > idle_since_) {
    const double m = static_cast<double>(now - idle_since_) /
                     static_cast<double>(std::max<TimeNs>(config_.idle_pkt_tx_time, 1));
    avg_ *= std::pow(1.0 - config_.ewma_weight, m);
  }
  idle_since_ = -1;

  // EWMA of the instantaneous queue size (per arriving packet).
  avg_ = (1.0 - config_.ewma_weight) * avg_ + config_.ewma_weight * static_cast<double>(bytes_);

  const double min_th = config_.min_threshold_frac * static_cast<double>(config_.capacity_bytes);
  const double max_th = config_.max_threshold_frac * static_cast<double>(config_.capacity_bytes);

  bool drop = false;
  if (bytes_ + size > config_.capacity_bytes) {
    drop = true;  // hard limit
  } else if (avg_ >= max_th) {
    drop = true;
  } else if (avg_ > min_th) {
    // Linear ramp of drop probability, amplified by the packets accepted
    // since the last drop (the Floyd/Jacobson "count" correction).
    const double base_p = config_.max_drop_probability * (avg_ - min_th) / (max_th - min_th);
    const double p = std::min(1.0, base_p / std::max(1e-9, 1.0 - count_since_drop_ * base_p));
    drop = rng_.Bernoulli(p);
  }
  if (drop) {
    dropped_ += size;
    count_since_drop_ = 0;
    DropPacket(ref, now, bytes_);
    if (queue_.empty()) {
      idle_since_ = now;  // the drop left the queue empty: idle clock restarts
    }
    return false;
  }
  ++count_since_drop_;
  bytes_ += size;
  queue_.push_back(ref);
  return true;
}

std::optional<PacketRef> RedQueue::Dequeue(TimeNs now) {
  if (queue_.empty()) {
    return std::nullopt;
  }
  const PacketRef ref = queue_.front();
  queue_.pop_front();
  bytes_ -= pool_->Get(ref).size_bytes;
  if (queue_.empty()) {
    idle_since_ = now;
  }
  return ref;
}

uint64_t RedQueue::RecountQueuedBytes() const {
  uint64_t total = 0;
  for (const PacketRef ref : queue_) {
    total += pool_->Get(ref).size_bytes;
  }
  return total;
}

void RedQueue::VerifyExtraInvariants() const {
  // The EWMA averages instantaneous queue sizes, so it can never leave
  // [0, capacity] (idle decay only shrinks it toward zero).
  if (!(avg_ >= 0.0) || avg_ > static_cast<double>(config_.capacity_bytes)) {
    invariants::Report("queue.red_ewma", "EWMA queue size " + std::to_string(avg_) +
                                             " outside [0, " +
                                             std::to_string(config_.capacity_bytes) + "]");
  }
}

// ------------------------------------------------------------------- CoDel

bool CoDelQueue::Enqueue(PacketRef ref, TimeNs now) {
  const uint32_t size = pool_->Get(ref).size_bytes;
  if (bytes_ + size > config_.capacity_bytes) {
    dropped_ += size;
    DropPacket(ref, now, bytes_);
    return false;
  }
  bytes_ += size;
  queue_.push_back({ref, now});
  return true;
}

bool CoDelQueue::OkToDrop(TimeNs now) {
  if (queue_.empty()) {
    first_above_time_ = 0;
    return false;
  }
  const TimeNs sojourn = now - queue_.front().enqueued_at;
  if (sojourn < config_.target || bytes_ <= config_.mtu) {
    first_above_time_ = 0;
    return false;
  }
  if (first_above_time_ == 0) {
    first_above_time_ = now + config_.interval;
    return false;
  }
  return now >= first_above_time_;
}

std::optional<PacketRef> CoDelQueue::Dequeue(TimeNs now) {
  while (!queue_.empty()) {
    const bool ok_to_drop = OkToDrop(now);
    if (dropping_) {
      if (!ok_to_drop) {
        dropping_ = false;
      } else if (now >= drop_next_) {
        // Drop the head and stay in dropping state with sqrt-spaced schedule.
        const Entry victim = queue_.front();
        queue_.pop_front();
        const uint32_t size = pool_->Get(victim.ref).size_bytes;
        bytes_ -= size;
        dropped_ += size;
        DropPacket(victim.ref, now, bytes_);
        ++drop_count_;
        drop_next_ = now + static_cast<TimeNs>(static_cast<double>(config_.interval) /
                                               std::sqrt(static_cast<double>(drop_count_)));
        continue;
      }
    } else if (ok_to_drop) {
      // Enter dropping state: drop one packet now.
      const Entry victim = queue_.front();
      queue_.pop_front();
      const uint32_t size = pool_->Get(victim.ref).size_bytes;
      bytes_ -= size;
      dropped_ += size;
      DropPacket(victim.ref, now, bytes_);
      dropping_ = true;
      // Restart the schedule, faster if we were dropping recently.
      drop_count_ = drop_count_ > 2 ? drop_count_ - 2 : 1;
      drop_next_ = now + static_cast<TimeNs>(static_cast<double>(config_.interval) /
                                             std::sqrt(static_cast<double>(drop_count_)));
      continue;
    }
    const Entry entry = queue_.front();
    queue_.pop_front();
    bytes_ -= pool_->Get(entry.ref).size_bytes;
    return entry.ref;
  }
  return std::nullopt;
}

uint64_t CoDelQueue::RecountQueuedBytes() const {
  uint64_t total = 0;
  for (const Entry& entry : queue_) {
    total += pool_->Get(entry.ref).size_bytes;
  }
  return total;
}

void CoDelQueue::VerifyExtraInvariants() const {
  // Sojourn timestamps must be FIFO: a later arrival can never sit in front
  // of an earlier one.
  for (size_t i = 1; i < queue_.size(); ++i) {
    if (queue_[i].enqueued_at < queue_[i - 1].enqueued_at) {
      invariants::Report("queue.codel_sojourn_order",
                         "entry " + std::to_string(i) + " enqueued at " +
                             std::to_string(queue_[i].enqueued_at) + " ns before its predecessor (" +
                             std::to_string(queue_[i - 1].enqueued_at) + " ns)");
      return;
    }
  }
  if (dropping_ && drop_count_ < 1) {
    invariants::Report("queue.codel_drop_state",
                       "dropping state with drop_count=" + std::to_string(drop_count_));
  }
}

// --------------------------------------------------------------------- ECN

EcnMarkingQueue::EcnMarkingQueue(std::unique_ptr<QueueDiscipline> inner, EcnConfig config)
    : inner_(std::move(inner)), config_(config) {
  ASTRAEA_CHECK(inner_ != nullptr);
  ASTRAEA_CHECK(config_.mark_threshold_bytes > 0);
}

void EcnMarkingQueue::set_pool(PacketPool* pool) {
  QueueDiscipline::set_pool(pool);
  inner_->set_pool(pool);
}

void EcnMarkingQueue::set_tracer(Tracer* tracer, int32_t link_id) {
  QueueDiscipline::set_tracer(tracer, link_id);
  inner_->set_tracer(tracer, link_id);
}

bool EcnMarkingQueue::Enqueue(PacketRef ref, TimeNs now) {
  ++enqueued_packets_;
  Packet& pkt = pool_->Get(ref);
  if (pkt.ecn_capable) {
    ++ect_packets_;
    // DCTCP instantaneous-depth rule: mark when the backlog including this
    // arrival crosses K. The decision reads the inner queue but never drops,
    // so byte conservation is solely the inner discipline's business.
    if (!pkt.ecn_ce && inner_->queued_bytes() + pkt.size_bytes > config_.mark_threshold_bytes) {
      pkt.ecn_ce = true;
      ++marked_packets_;
      if (tracer_ != nullptr) {
        tracer_->Record(now, TraceEventType::kEcnMark, pkt.flow_id, trace_link_id_, pkt.seq,
                        static_cast<double>(pkt.size_bytes),
                        static_cast<double>(inner_->queued_bytes()));
      }
    }
  }
  return inner_->Enqueue(ref, now);
}

void EcnMarkingQueue::VerifyExtraInvariants() const {
  if (marked_packets_ > ect_packets_ || ect_packets_ > enqueued_packets_) {
    invariants::Report("queue.ecn_mark_accounting",
                       "marked " + std::to_string(marked_packets_) + " > ect " +
                           std::to_string(ect_packets_) + " or ect > enqueued " +
                           std::to_string(enqueued_packets_));
  }
  // Deep audit cascades to the wrapped discipline's own occupancy/byte checks.
  inner_->VerifyInvariants(true);
}

}  // namespace astraea
