// Queue disciplines for the bottleneck link. The paper's environment supports
// "user-defined queuing policies" (§3.2); this is that extension point.
//
//  * DropTail — the default FIFO with a byte capacity.
//  * RED      — random early detection on the EWMA queue size (Floyd/Jacobson
//               1993), probabilistic drops between min/max thresholds.
//  * CoDel    — controlled delay (Nichols/Jacobson 2012): drops at dequeue
//               when sojourn time stays above `target` for an `interval`,
//               with the sqrt-spaced drop schedule.
//
// Disciplines hold PacketRef handles into the owning network's PacketPool
// (attach it with set_pool before the first Enqueue). Ownership: Enqueue
// transfers the ref to the discipline; a false return means the packet was
// dropped AND released. Dequeue transfers ownership back to the caller.
// Internal drops (CoDel at dequeue) release their victims directly.

#ifndef SRC_SIM_QUEUE_DISC_H_
#define SRC_SIM_QUEUE_DISC_H_

#include <deque>
#include <functional>
#include <memory>
#include <optional>

#include "src/sim/packet.h"
#include "src/sim/packet_pool.h"
#include "src/sim/trace.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace astraea {

class QueueDiscipline {
 public:
  virtual ~QueueDiscipline() = default;

  // Attempts to enqueue; returns false if the packet was dropped (in which
  // case the discipline has already released the ref).
  virtual bool Enqueue(PacketRef ref, TimeNs now) = 0;
  // Pops the next packet to serve; may drop packets internally (CoDel) and
  // returns nullopt when empty.
  virtual std::optional<PacketRef> Dequeue(TimeNs now) = 0;

  virtual uint64_t queued_bytes() const = 0;
  virtual size_t queued_packets() const = 0;
  // Bytes dropped by the discipline (at enqueue or dequeue).
  virtual uint64_t dropped_bytes() const = 0;
  // Hard byte limit of the discipline (DropTail capacity / RED / CoDel hard
  // limit). The invariant checker asserts queued_bytes() never exceeds it.
  virtual uint64_t capacity_bytes() const = 0;

  // Recomputes the queued byte total by walking the backing store (O(n)).
  // Deep audits compare it against the maintained queued_bytes() counter.
  virtual uint64_t RecountQueuedBytes() const = 0;

  // Occupancy bound + counter-consistency checks, called by the Link at every
  // queue transition when the invariant checker is enabled; `deep` adds the
  // O(n) byte recount and discipline-specific extras (RED EWMA bounds, CoDel
  // drop-schedule sanity).
  void VerifyInvariants(bool deep) const;

  // Attaches the pool the refs resolve against. Must be called (by the Link,
  // or directly in tests) before the first Enqueue. Virtual so decorators
  // (EcnMarkingQueue) can forward the pool to the wrapped discipline.
  virtual void set_pool(PacketPool* pool) { pool_ = pool; }

 protected:
  // Discipline-specific extra checks run on deep audits only.
  virtual void VerifyExtraInvariants() const {}

 public:

  // Attaches an event tracer (drop events carry the owning link's id). The
  // discipline records only drops; enqueue/dequeue events come from the Link.
  virtual void set_tracer(Tracer* tracer, int32_t link_id) {
    tracer_ = tracer;
    trace_link_id_ = link_id;
  }

 protected:
  void TraceDrop(TimeNs now, const Packet& pkt, uint64_t queued_bytes_now) {
    if (tracer_ != nullptr) {
      tracer_->Record(now, TraceEventType::kDrop, pkt.flow_id, trace_link_id_, pkt.seq,
                      static_cast<double>(pkt.size_bytes), static_cast<double>(queued_bytes_now));
    }
  }

  // Drop accounting + trace + release, shared by every discipline.
  void DropPacket(PacketRef ref, TimeNs now, uint64_t queued_bytes_now) {
    const Packet& pkt = pool_->Get(ref);
    TraceDrop(now, pkt, queued_bytes_now);
    pool_->Release(ref);
  }

  PacketPool* pool_ = nullptr;
  Tracer* tracer_ = nullptr;
  int32_t trace_link_id_ = -1;
};

using QueueFactory = std::function<std::unique_ptr<QueueDiscipline>(Rng rng)>;

class DropTailQueue : public QueueDiscipline {
 public:
  explicit DropTailQueue(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

  bool Enqueue(PacketRef ref, TimeNs now) override;
  std::optional<PacketRef> Dequeue(TimeNs now) override;
  uint64_t queued_bytes() const override { return bytes_; }
  size_t queued_packets() const override { return queue_.size(); }
  uint64_t dropped_bytes() const override { return dropped_; }
  uint64_t capacity_bytes() const override { return capacity_; }
  uint64_t RecountQueuedBytes() const override;

 private:
  uint64_t capacity_;
  std::deque<PacketRef> queue_;
  uint64_t bytes_ = 0;
  uint64_t dropped_ = 0;
};

struct RedConfig {
  uint64_t capacity_bytes = 375'000;  // hard limit
  double min_threshold_frac = 0.2;    // of capacity
  double max_threshold_frac = 0.6;
  double max_drop_probability = 0.1;
  double ewma_weight = 0.002;
  // Floyd/Jacobson idle-time correction: the typical transmission time of one
  // packet at line rate. After an idle period of length T the EWMA is decayed
  // by (1-w)^m with m = T / idle_pkt_tx_time — the packets that *could* have
  // departed while the queue sat empty. Default: 1500 B at 100 Mbps.
  TimeNs idle_pkt_tx_time = Microseconds(120);
};

class RedQueue : public QueueDiscipline {
 public:
  RedQueue(RedConfig config, Rng rng) : config_(config), rng_(rng) {}

  bool Enqueue(PacketRef ref, TimeNs now) override;
  std::optional<PacketRef> Dequeue(TimeNs now) override;
  uint64_t queued_bytes() const override { return bytes_; }
  size_t queued_packets() const override { return queue_.size(); }
  uint64_t dropped_bytes() const override { return dropped_; }
  uint64_t capacity_bytes() const override { return config_.capacity_bytes; }
  uint64_t RecountQueuedBytes() const override;
  double average_queue_bytes() const { return avg_; }

 protected:
  void VerifyExtraInvariants() const override;

 private:
  RedConfig config_;
  Rng rng_;
  std::deque<PacketRef> queue_;
  uint64_t bytes_ = 0;
  uint64_t dropped_ = 0;
  double avg_ = 0.0;
  int count_since_drop_ = 0;
  TimeNs idle_since_ = 0;  // start of the current idle period; -1 while busy
};

struct CoDelConfig {
  uint64_t capacity_bytes = 1'500'000;  // hard limit (CoDel still needs one)
  TimeNs target = Milliseconds(5);
  TimeNs interval = Milliseconds(100);
  // One-MTU exit condition: dropping never engages while the backlog is at or
  // below a single maximum-size packet. Must match the simulation's MSS for
  // non-1500-byte configurations (RFC 8289 §4.4).
  uint32_t mtu = 1500;
};

class CoDelQueue : public QueueDiscipline {
 public:
  explicit CoDelQueue(CoDelConfig config) : config_(config) {}

  bool Enqueue(PacketRef ref, TimeNs now) override;
  std::optional<PacketRef> Dequeue(TimeNs now) override;
  uint64_t queued_bytes() const override { return bytes_; }
  size_t queued_packets() const override { return queue_.size(); }
  uint64_t dropped_bytes() const override { return dropped_; }
  uint64_t capacity_bytes() const override { return config_.capacity_bytes; }
  uint64_t RecountQueuedBytes() const override;
  bool dropping() const { return dropping_; }

 protected:
  void VerifyExtraInvariants() const override;

 private:
  struct Entry {
    PacketRef ref;
    TimeNs enqueued_at;
  };

  // Returns true when the head packet's sojourn says we should drop.
  bool OkToDrop(TimeNs now);

  CoDelConfig config_;
  std::deque<Entry> queue_;
  uint64_t bytes_ = 0;
  uint64_t dropped_ = 0;

  TimeNs first_above_time_ = 0;
  bool dropping_ = false;
  TimeNs drop_next_ = 0;
  int drop_count_ = 0;
};

// DCTCP-style threshold marking as a decorator over any inner discipline
// (RFC 3168 CE + the DCTCP instantaneous-depth rule). Keeping marking out of
// DropTail/RED/CoDel means their byte accounting, RNG draws and drop
// schedules are untouched: with no ECT traffic (or marking disabled) a
// wrapped queue is event-for-event identical to the bare inner queue, which
// is what keeps the pre-ECN goldens bit-exact.
//
// Delay-signal fallback: non-ECT packets pass through unmarked and still see
// the inner discipline's queueing delay and drops, so ECN-blind schemes get
// the same congestion signal they always had.
struct EcnConfig {
  // Mark CE when the instantaneous backlog (including the arriving packet)
  // exceeds this. DCTCP's K; choose well below the hard capacity so marks
  // land before taildrop.
  uint64_t mark_threshold_bytes = 37'500;
};

class EcnMarkingQueue : public QueueDiscipline {
 public:
  EcnMarkingQueue(std::unique_ptr<QueueDiscipline> inner, EcnConfig config);

  bool Enqueue(PacketRef ref, TimeNs now) override;
  std::optional<PacketRef> Dequeue(TimeNs now) override { return inner_->Dequeue(now); }
  uint64_t queued_bytes() const override { return inner_->queued_bytes(); }
  size_t queued_packets() const override { return inner_->queued_packets(); }
  uint64_t dropped_bytes() const override { return inner_->dropped_bytes(); }
  uint64_t capacity_bytes() const override { return inner_->capacity_bytes(); }
  uint64_t RecountQueuedBytes() const override { return inner_->RecountQueuedBytes(); }

  void set_pool(PacketPool* pool) override;
  void set_tracer(Tracer* tracer, int32_t link_id) override;

  uint64_t marked_packets() const { return marked_packets_; }
  uint64_t ect_packets() const { return ect_packets_; }
  const EcnConfig& config() const { return config_; }
  QueueDiscipline& inner() { return *inner_; }

 protected:
  void VerifyExtraInvariants() const override;

 private:
  std::unique_ptr<QueueDiscipline> inner_;
  EcnConfig config_;
  uint64_t marked_packets_ = 0;
  uint64_t ect_packets_ = 0;
  uint64_t enqueued_packets_ = 0;
};

}  // namespace astraea

#endif  // SRC_SIM_QUEUE_DISC_H_
