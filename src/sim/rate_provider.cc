#include "src/sim/rate_provider.h"

#include <algorithm>
#include <cmath>

#include "src/sim/link_trace.h"
#include "src/util/logging.h"
#include "src/util/serialization.h"

namespace astraea {

RateTrace::RateTrace(std::vector<std::pair<TimeNs, RateBps>> steps) : steps_(std::move(steps)) {
  ASTRAEA_CHECK(!steps_.empty());
  ASTRAEA_CHECK(std::is_sorted(steps_.begin(), steps_.end(),
                               [](const auto& a, const auto& b) { return a.first < b.first; }));
  slot_ = steps_.size() >= 2 ? steps_[1].first - steps_[0].first : Milliseconds(1);
  if (slot_ <= 0) {
    slot_ = Milliseconds(1);
  }
  duration_ = steps_.back().first + slot_;
}

RateBps RateTrace::RateAtWrapped(TimeNs t) const {
  // Binary search for the last step with start <= t.
  auto it = std::upper_bound(steps_.begin(), steps_.end(), t,
                             [](TimeNs v, const auto& s) { return v < s.first; });
  if (it == steps_.begin()) {
    return steps_.front().second;
  }
  return std::prev(it)->second;
}

RateBps RateTrace::RateAt(TimeNs t) const {
  if (t < 0) {
    return steps_.front().second;
  }
  return RateAtWrapped(t % duration_);
}

double RateTrace::CapacityBits(TimeNs begin, TimeNs end) const {
  // Step through slot boundaries; traces are coarse (>= 1ms slots) so this is
  // cheap relative to the interval lengths used for utilization accounting.
  double bits = 0.0;
  TimeNs t = begin;
  while (t < end) {
    const TimeNs slot_end = std::min(end, ((t / slot_) + 1) * slot_);
    bits += RateAt(t) * ToSeconds(slot_end - t);
    t = slot_end;
  }
  return bits;
}

RateTrace MakeLteLikeTrace(TimeNs duration, TimeNs granularity, RateBps floor, RateBps ceil,
                           Rng* rng) {
  ASTRAEA_CHECK(granularity > 0 && duration >= granularity);
  std::vector<std::pair<TimeNs, RateBps>> steps;
  double log_rate = std::log(std::sqrt(floor * ceil));
  const double log_floor = std::log(floor);
  const double log_ceil = std::log(ceil);
  for (TimeNs t = 0; t < duration; t += granularity) {
    // Mean-reverting multiplicative walk: sigma chosen so capacity commonly
    // moves tens of percent within a few slots, like the Sprout LTE traces.
    const double mid = (log_floor + log_ceil) / 2.0;
    log_rate += 0.05 * (mid - log_rate) + rng->Normal(0.0, 0.15);
    if (rng->Bernoulli(0.01)) {
      // Abrupt jump: handover or deep fade.
      log_rate = rng->Uniform(log_floor, log_ceil);
    }
    log_rate = std::clamp(log_rate, log_floor, log_ceil);
    steps.emplace_back(t, std::exp(log_rate));
  }
  return RateTrace(std::move(steps));
}

RateTrace MakeSquareWaveTrace(TimeNs duration, TimeNs period, RateBps low, RateBps high) {
  ASTRAEA_CHECK(period > 0 && duration >= period);
  std::vector<std::pair<TimeNs, RateBps>> steps;
  bool is_high = true;
  for (TimeNs t = 0; t < duration; t += period) {
    steps.emplace_back(t, is_high ? high : low);
    is_high = !is_high;
  }
  return RateTrace(std::move(steps));
}

RateTrace LoadMahimahiTrace(const std::string& path, uint32_t mtu_bytes, TimeNs granularity) {
  // Strict load-then-bucket via the hostile-byte-safe parser (link_trace.h):
  // unlike the original strtoll loop, garbage lines and non-monotone
  // timestamps are rejected instead of silently coerced to zero.
  return ToRateTrace(LoadLinkRateTraceFile(path), mtu_bytes, granularity);
}

void SaveMahimahiTrace(const RateTrace& trace, const std::string& path, TimeNs duration,
                       uint32_t mtu_bytes) {
  SaveLinkRateTraceFile(FromRateTrace(trace, duration, mtu_bytes), path);
}

}  // namespace astraea
