#include "src/sim/rate_provider.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>

#include "src/util/logging.h"
#include "src/util/serialization.h"

namespace astraea {

RateTrace::RateTrace(std::vector<std::pair<TimeNs, RateBps>> steps) : steps_(std::move(steps)) {
  ASTRAEA_CHECK(!steps_.empty());
  ASTRAEA_CHECK(std::is_sorted(steps_.begin(), steps_.end(),
                               [](const auto& a, const auto& b) { return a.first < b.first; }));
  slot_ = steps_.size() >= 2 ? steps_[1].first - steps_[0].first : Milliseconds(1);
  if (slot_ <= 0) {
    slot_ = Milliseconds(1);
  }
  duration_ = steps_.back().first + slot_;
}

RateBps RateTrace::RateAtWrapped(TimeNs t) const {
  // Binary search for the last step with start <= t.
  auto it = std::upper_bound(steps_.begin(), steps_.end(), t,
                             [](TimeNs v, const auto& s) { return v < s.first; });
  if (it == steps_.begin()) {
    return steps_.front().second;
  }
  return std::prev(it)->second;
}

RateBps RateTrace::RateAt(TimeNs t) const {
  if (t < 0) {
    return steps_.front().second;
  }
  return RateAtWrapped(t % duration_);
}

double RateTrace::CapacityBits(TimeNs begin, TimeNs end) const {
  // Step through slot boundaries; traces are coarse (>= 1ms slots) so this is
  // cheap relative to the interval lengths used for utilization accounting.
  double bits = 0.0;
  TimeNs t = begin;
  while (t < end) {
    const TimeNs slot_end = std::min(end, ((t / slot_) + 1) * slot_);
    bits += RateAt(t) * ToSeconds(slot_end - t);
    t = slot_end;
  }
  return bits;
}

RateTrace MakeLteLikeTrace(TimeNs duration, TimeNs granularity, RateBps floor, RateBps ceil,
                           Rng* rng) {
  ASTRAEA_CHECK(granularity > 0 && duration >= granularity);
  std::vector<std::pair<TimeNs, RateBps>> steps;
  double log_rate = std::log(std::sqrt(floor * ceil));
  const double log_floor = std::log(floor);
  const double log_ceil = std::log(ceil);
  for (TimeNs t = 0; t < duration; t += granularity) {
    // Mean-reverting multiplicative walk: sigma chosen so capacity commonly
    // moves tens of percent within a few slots, like the Sprout LTE traces.
    const double mid = (log_floor + log_ceil) / 2.0;
    log_rate += 0.05 * (mid - log_rate) + rng->Normal(0.0, 0.15);
    if (rng->Bernoulli(0.01)) {
      // Abrupt jump: handover or deep fade.
      log_rate = rng->Uniform(log_floor, log_ceil);
    }
    log_rate = std::clamp(log_rate, log_floor, log_ceil);
    steps.emplace_back(t, std::exp(log_rate));
  }
  return RateTrace(std::move(steps));
}

RateTrace MakeSquareWaveTrace(TimeNs duration, TimeNs period, RateBps low, RateBps high) {
  ASTRAEA_CHECK(period > 0 && duration >= period);
  std::vector<std::pair<TimeNs, RateBps>> steps;
  bool is_high = true;
  for (TimeNs t = 0; t < duration; t += period) {
    steps.emplace_back(t, is_high ? high : low);
    is_high = !is_high;
  }
  return RateTrace(std::move(steps));
}

RateTrace LoadMahimahiTrace(const std::string& path, uint32_t mtu_bytes, TimeNs granularity) {
  std::ifstream in(path);
  if (!in) {
    throw SerializationError("cannot open trace file: " + path);
  }
  // Count delivery opportunities per granularity slot.
  std::map<int64_t, int64_t> slot_counts;
  int64_t max_ms = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const int64_t ms = std::strtoll(line.c_str(), nullptr, 10);
    max_ms = std::max(max_ms, ms);
    slot_counts[Milliseconds(ms) / granularity] += 1;
  }
  if (slot_counts.empty()) {
    throw SerializationError("empty trace file: " + path);
  }
  const int64_t slots = Milliseconds(max_ms) / granularity + 1;
  std::vector<std::pair<TimeNs, RateBps>> steps;
  steps.reserve(static_cast<size_t>(slots));
  const double slot_seconds = ToSeconds(granularity);
  for (int64_t s = 0; s < slots; ++s) {
    const auto it = slot_counts.find(s);
    const double pkts = it != slot_counts.end() ? static_cast<double>(it->second) : 0.0;
    // Clamp to a tiny positive floor so service time stays finite in outages.
    const double bps = std::max(pkts * mtu_bytes * 8.0 / slot_seconds, Kbps(1.0));
    steps.emplace_back(s * granularity, bps);
  }
  return RateTrace(std::move(steps));
}

void SaveMahimahiTrace(const RateTrace& trace, const std::string& path, TimeNs duration,
                       uint32_t mtu_bytes) {
  std::ofstream out(path);
  if (!out) {
    throw SerializationError("cannot open trace file for writing: " + path);
  }
  // Walk in 1ms steps, emitting one line per accumulated MTU of capacity.
  double credit_bits = 0.0;
  for (TimeNs t = 0; t < duration; t += Milliseconds(1)) {
    credit_bits += trace.RateAt(t) * ToSeconds(Milliseconds(1));
    const double bits_per_pkt = mtu_bytes * 8.0;
    while (credit_bits >= bits_per_pkt) {
      out << (t / kNanosPerMilli) << "\n";
      credit_bits -= bits_per_pkt;
    }
    if (!out.good()) {
      throw SerializationError("trace write failed (disk full?): " + path);
    }
  }
  out.flush();
  if (!out.good()) {
    throw SerializationError("trace flush failed (disk full?): " + path);
  }
}

}  // namespace astraea
