// Link service-rate models: constant rate and trace-driven (piecewise
// constant) rate, plus a synthetic LTE-like trace generator used by the
// cellular experiments (substitute for the Verizon traces, see DESIGN.md).

#ifndef SRC_SIM_RATE_PROVIDER_H_
#define SRC_SIM_RATE_PROVIDER_H_

#include <string>
#include <utility>
#include <vector>

#include "src/util/rng.h"
#include "src/util/time.h"

namespace astraea {

class RateProvider {
 public:
  virtual ~RateProvider() = default;
  virtual RateBps RateAt(TimeNs t) const = 0;
  // Integral of the rate over [begin, end), in bits. Used for utilization
  // accounting on time-varying links.
  virtual double CapacityBits(TimeNs begin, TimeNs end) const = 0;
};

class ConstantRate : public RateProvider {
 public:
  explicit ConstantRate(RateBps rate) : rate_(rate) {}
  RateBps RateAt(TimeNs) const override { return rate_; }
  double CapacityBits(TimeNs begin, TimeNs end) const override {
    return rate_ * ToSeconds(end - begin);
  }

 private:
  RateBps rate_;
};

// Piecewise-constant rate trace. Steps are (start_time, rate) pairs sorted by
// time; the rate before the first step is the first step's rate, and the trace
// repeats from the beginning once exhausted (standard Mahimahi behaviour).
class RateTrace : public RateProvider {
 public:
  explicit RateTrace(std::vector<std::pair<TimeNs, RateBps>> steps);

  RateBps RateAt(TimeNs t) const override;
  double CapacityBits(TimeNs begin, TimeNs end) const override;

  TimeNs duration() const { return duration_; }
  const std::vector<std::pair<TimeNs, RateBps>>& steps() const { return steps_; }

 private:
  RateBps RateAtWrapped(TimeNs t) const;

  std::vector<std::pair<TimeNs, RateBps>> steps_;
  TimeNs duration_ = 0;  // wrap period (last step start + one slot)
  TimeNs slot_ = 0;      // inferred step granularity
};

// Generates an LTE-like capacity trace: a bounded multiplicative random walk
// with occasional abrupt capacity jumps (handover / fading events), matching
// the "drastic variation within milliseconds" the paper evaluates against.
RateTrace MakeLteLikeTrace(TimeNs duration, TimeNs granularity, RateBps floor, RateBps ceil,
                           Rng* rng);

// Deterministic square-wave trace alternating between `low` and `high` every
// `period` — handy for responsiveness tests.
RateTrace MakeSquareWaveTrace(TimeNs duration, TimeNs period, RateBps low, RateBps high);

// Mahimahi trace-file interoperability. The format is one integer millisecond
// timestamp per line; each line grants one MTU-sized (default 1500 B) packet
// delivery opportunity at that time. Loading buckets opportunities into
// per-`granularity` rate slots; saving emits opportunities matching the
// trace's rate integral.
RateTrace LoadMahimahiTrace(const std::string& path, uint32_t mtu_bytes = 1500,
                            TimeNs granularity = Milliseconds(20));
void SaveMahimahiTrace(const RateTrace& trace, const std::string& path, TimeNs duration,
                       uint32_t mtu_bytes = 1500);

}  // namespace astraea

#endif  // SRC_SIM_RATE_PROVIDER_H_
