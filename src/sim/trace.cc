#include "src/sim/trace.h"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "src/util/logging.h"

namespace astraea {

namespace {

constexpr uint32_t kTraceMagic = 0x43'52'54'41;  // "ATRC" little-endian
constexpr uint32_t kTraceVersion = 1;
// time(8) + type(1) + flow(4) + link(4) + seq(8) + a(8) + b(8)
constexpr uint32_t kRecordSize = 41;

void PutBytes(std::FILE* f, const void* p, size_t n) {
  if (std::fwrite(p, 1, n, f) != n) {
    // Tracing must never abort a simulation; the stream error flag is checked
    // once at Close() by the caller if it cares.
  }
}

template <typename T>
void Put(std::FILE* f, T v) {
  PutBytes(f, &v, sizeof(v));
}

}  // namespace

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kEnqueue:
      return "enqueue";
    case TraceEventType::kDequeue:
      return "dequeue";
    case TraceEventType::kDrop:
      return "drop";
    case TraceEventType::kSend:
      return "send";
    case TraceEventType::kAck:
      return "ack";
    case TraceEventType::kLoss:
      return "loss";
    case TraceEventType::kRtoFire:
      return "rto";
    case TraceEventType::kCwnd:
      return "cwnd";
    case TraceEventType::kAction:
      return "action";
    case TraceEventType::kEcnMark:
      return "ecn_mark";
  }
  return "unknown";
}

Tracer::Tracer(std::string path, Format format, size_t ring_capacity)
    : path_(std::move(path)), format_(format), capacity_(ring_capacity == 0 ? 1 : ring_capacity) {
  ring_.reserve(capacity_);
  if (format_ != Format::kNone) {
    ASTRAEA_CHECK(!path_.empty());
    file_ = std::fopen(path_.c_str(), "wb");
    if (file_ == nullptr) {
      throw std::runtime_error("cannot open trace sink: " + path_);
    }
    WriteHeader();
  }
}

Tracer::~Tracer() { Close(); }

void Tracer::WriteHeader() {
  if (format_ != Format::kBinary) {
    return;
  }
  Put(file_, kTraceMagic);
  Put(file_, kTraceVersion);
  Put(file_, kRecordSize);
}

void Tracer::Record(TimeNs time, TraceEventType type, int32_t flow_id, int32_t link_id,
                    uint64_t seq, double a, double b) {
  if (closed_) {
    return;
  }
  TraceEvent ev;
  ev.time = time;
  ev.type = type;
  ev.flow_id = flow_id;
  ev.link_id = link_id;
  ev.seq = seq;
  ev.a = a;
  ev.b = b;
  ++recorded_;
  if (format_ == Format::kNone) {
    // Overwrite-oldest ring: keeps the tail of the run for post-mortems.
    if (ring_.size() < capacity_) {
      ring_.push_back(ev);
    } else {
      ring_[ring_next_] = ev;
      ring_next_ = (ring_next_ + 1) % capacity_;
      ring_wrapped_ = true;
    }
    return;
  }
  ring_.push_back(ev);
  if (ring_.size() >= capacity_) {
    Flush();
  }
}

void Tracer::WriteOut(const TraceEvent& ev) {
  if (format_ == Format::kBinary) {
    Put(file_, static_cast<int64_t>(ev.time));
    Put(file_, static_cast<uint8_t>(ev.type));
    Put(file_, ev.flow_id);
    Put(file_, ev.link_id);
    Put(file_, ev.seq);
    Put(file_, ev.a);
    Put(file_, ev.b);
    return;
  }
  std::fprintf(file_,
               "{\"t\":%lld,\"ev\":\"%s\",\"flow\":%d,\"link\":%d,\"seq\":%llu,"
               "\"a\":%.9g,\"b\":%.9g}\n",
               static_cast<long long>(ev.time), TraceEventTypeName(ev.type), ev.flow_id,
               ev.link_id, static_cast<unsigned long long>(ev.seq), ev.a, ev.b);
}

void Tracer::Flush() {
  if (format_ == Format::kNone || file_ == nullptr) {
    return;
  }
  for (const TraceEvent& ev : ring_) {
    WriteOut(ev);
  }
  ring_.clear();
  std::fflush(file_);
}

void Tracer::Close() {
  if (closed_) {
    return;
  }
  Flush();
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  closed_ = true;
}

std::vector<TraceEvent> Tracer::BufferedEvents() const {
  if (!ring_wrapped_) {
    return ring_;
  }
  // Rotate so the oldest retained event comes first.
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(ring_next_), ring_.end());
  out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(ring_next_));
  return out;
}

std::vector<TraceEvent> ParseBinaryTrace(const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  size_t off = 0;
  auto take = [&](void* out, size_t n, const char* what) {
    if (size - off < n) {
      throw std::runtime_error(std::string("truncated trace file (") + what + ")");
    }
    std::memcpy(out, p + off, n);
    off += n;
  };
  uint32_t magic = 0, version = 0, record_size = 0;
  take(&magic, sizeof(magic), "magic");
  take(&version, sizeof(version), "version");
  take(&record_size, sizeof(record_size), "record size");
  if (magic != kTraceMagic || version != kTraceVersion || record_size != kRecordSize) {
    throw std::runtime_error("not an astraea binary trace (bad header)");
  }
  std::vector<TraceEvent> events;
  while (off < size) {
    TraceEvent ev;
    int64_t time = 0;
    take(&time, sizeof(time), "record");
    ev.time = time;
    uint8_t type = 0;
    take(&type, sizeof(type), "record");
    if (type > static_cast<uint8_t>(TraceEventType::kEcnMark)) {
      throw std::runtime_error("unknown trace event type " + std::to_string(type));
    }
    ev.type = static_cast<TraceEventType>(type);
    take(&ev.flow_id, sizeof(ev.flow_id), "record");
    take(&ev.link_id, sizeof(ev.link_id), "record");
    take(&ev.seq, sizeof(ev.seq), "record");
    take(&ev.a, sizeof(ev.a), "record");
    take(&ev.b, sizeof(ev.b), "record");
    events.push_back(ev);
  }
  return events;
}

std::vector<TraceEvent> ReadBinaryTrace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
  std::string blob;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    blob.append(buf, got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    throw std::runtime_error("failed reading trace file: " + path);
  }
  try {
    return ParseBinaryTrace(blob.data(), blob.size());
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string(e.what()) + ": " + path);
  }
}

}  // namespace astraea
