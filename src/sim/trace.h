// Opt-in per-event tracing for the simulator: packet enqueue/dequeue/drop at
// every link, send/ACK/loss/RTO at every sender, and per-MTP cwnd/pacing and
// agent-action decisions. Events carry the simulated timestamp, the flow id,
// the link id (queue events) and two type-dependent doubles.
//
// Cost model: tracing is OFF unless a Tracer is attached (Network::SetTracer
// or the ASTRAEA_FORCE_TRACE env var); every instrumentation site is a single
// null-pointer test when off. When on, Record() appends to a pre-sized ring
// buffer and flushes to the sink only when the ring fills — no allocation, no
// RNG use and no event-queue interaction, so a traced run is bit-identical to
// an untraced run of the same seed (tests/trace_test.cc asserts this).
//
// Sinks: kBinary (fixed 41-byte little-endian records behind a magic+version
// header; see tools/trace_dump.cc), kJsonl (one object per line), kNone (ring
// only, keeps the most recent events in memory — used by the force-trace CI
// run and by tests).

#ifndef SRC_SIM_TRACE_H_
#define SRC_SIM_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/util/time.h"

namespace astraea {

enum class TraceEventType : uint8_t {
  kEnqueue = 0,   // packet entered a link queue        a=size_bytes b=queued_bytes after
  kDequeue = 1,   // packet left the queue for service  a=size_bytes b=queued_bytes after
  kDrop = 2,      // queue discipline dropped a packet  a=size_bytes b=queued_bytes
  kSend = 3,      // sender emitted a data packet       a=size_bytes b=inflight_bytes after
  kAck = 4,       // ACK processed by the sender        a=rtt_ms     b=inflight_bytes after
  kLoss = 5,      // gap-detected loss batch            a=lost_bytes b=inflight_bytes after
  kRtoFire = 6,   // retransmission timeout fired       a=lost_bytes b=rto_ms
  kCwnd = 7,      // per-MTP window/pacing decision     a=cwnd_bytes b=pacing_bps
  kAction = 8,    // learning-agent action applied      a=action     b=cwnd_bytes after
  kEcnMark = 9,   // queue set CE on an ECT packet      a=size_bytes b=queued_bytes
};

// Stable lowercase name used in JSONL/CSV output.
const char* TraceEventTypeName(TraceEventType type);

struct TraceEvent {
  TimeNs time = 0;
  TraceEventType type = TraceEventType::kEnqueue;
  int32_t flow_id = -1;  // -1 when not attributable to a flow
  int32_t link_id = -1;  // -1 for endpoint events
  uint64_t seq = 0;      // packet sequence number, 0 when n/a
  double a = 0.0;
  double b = 0.0;
};

class Tracer {
 public:
  enum class Format { kBinary, kJsonl, kNone };

  // kBinary/kJsonl flush the ring to `path` whenever it fills and on Close();
  // kNone ignores `path` and keeps the most recent `ring_capacity` events.
  explicit Tracer(std::string path, Format format = Format::kBinary,
                  size_t ring_capacity = 1 << 16);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Record(TimeNs time, TraceEventType type, int32_t flow_id, int32_t link_id, uint64_t seq,
              double a, double b);

  // Writes buffered events to the sink (no-op for kNone) and flushes the file.
  void Flush();
  // Flush + close the sink. Further Record() calls are dropped. Called by the
  // destructor; explicit Close() lets callers observe completion before
  // reading the file back.
  void Close();

  uint64_t recorded() const { return recorded_; }
  Format format() const { return format_; }
  const std::string& path() const { return path_; }

  // The in-memory ring (kNone: most recent events, oldest first; file formats:
  // events not yet flushed). Primarily for tests and the force-trace mode.
  std::vector<TraceEvent> BufferedEvents() const;

 private:
  void WriteOut(const TraceEvent& ev);
  void WriteHeader();

  std::string path_;
  Format format_;
  size_t capacity_;
  std::vector<TraceEvent> ring_;
  size_t ring_next_ = 0;    // kNone: next overwrite position once saturated
  bool ring_wrapped_ = false;
  std::FILE* file_ = nullptr;
  bool closed_ = false;
  uint64_t recorded_ = 0;
};

// Parses an in-memory kBinary trace image (header + records). Throws
// std::runtime_error on a bad magic/version/record-size header, a truncated
// record or an unknown event type. ReadBinaryTrace is this plus the file
// read; the split exists so the parser itself can be fuzzed
// (fuzz/fuzz_trace.cc).
std::vector<TraceEvent> ParseBinaryTrace(const void* data, size_t size);

// Reads a kBinary trace file back into memory. Throws std::runtime_error on a
// bad magic/version or a truncated record. Shared by tools/trace_dump and the
// tests.
std::vector<TraceEvent> ReadBinaryTrace(const std::string& path);

}  // namespace astraea

#endif  // SRC_SIM_TRACE_H_
