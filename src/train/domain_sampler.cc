#include "src/train/domain_sampler.h"

#include <algorithm>
#include <memory>

namespace astraea {

DomainRanges DomainRanges::TableThree() { return DomainRanges{}; }

DomainRanges DomainRanges::Extended() {
  DomainRanges r;
  r.loss_probability = 0.3;
  r.red_probability = 0.15;
  r.codel_probability = 0.15;
  r.trace_probability = 0.2;
  return r;
}

DomainSampler::Draw DomainSampler::SampleDraw(Rng* rng) const {
  Draw draw;
  draw.config = SampleEpisode(ranges_.base, rng);
  EnvEpisodeConfig& config = draw.config;
  config.episode_length = ranges_.episode_length;

  // When no extension family is enabled (TableThree), consume no extra draws
  // at all — the stream stays byte-identical to the plain SampleEpisode()
  // path the serial Learner uses, so this refactor re-blesses nothing.
  const bool any_extension = ranges_.loss_probability > 0.0 || ranges_.red_probability > 0.0 ||
                             ranges_.codel_probability > 0.0 || ranges_.trace_probability > 0.0;
  if (!any_extension) {
    draw.family = "droptail";
    return draw;
  }

  bool lossy = false;
  if (rng->Bernoulli(ranges_.loss_probability)) {
    lossy = true;
    config.random_loss = rng->Uniform(ranges_.loss_lo, ranges_.loss_hi);
  }

  // 2. AQM selector: one uniform draw splits [0,1) into RED / CoDel / DropTail
  //    bands, so enabling one family does not shift another family's stream.
  std::string qdisc = "droptail";
  const double aqm = rng->Uniform();
  const uint64_t capacity = std::max<uint64_t>(
      static_cast<uint64_t>(config.buffer_bdp *
                            static_cast<double>(BdpBytes(config.bandwidth, config.base_rtt))),
      3000);
  if (aqm < ranges_.red_probability) {
    qdisc = "red";
    config.queue_factory = [capacity](Rng red_rng) -> std::unique_ptr<QueueDiscipline> {
      RedConfig red;
      red.capacity_bytes = capacity;
      return std::make_unique<RedQueue>(red, red_rng);
    };
  } else if (aqm < ranges_.red_probability + ranges_.codel_probability) {
    qdisc = "codel";
    config.queue_factory = [capacity](Rng) -> std::unique_ptr<QueueDiscipline> {
      CoDelConfig codel;
      codel.capacity_bytes = capacity;
      return std::make_unique<CoDelQueue>(codel);
    };
  }

  // 3. Rate-variation gate: an LTE-like trace oscillating below the sampled
  //    bandwidth. The trace is generated from a stream forked off the episode
  //    seed (not the sampler stream) so its length does not depend on
  //    granularity draws — one gate draw + one granularity draw, always.
  bool traced = false;
  if (rng->Bernoulli(ranges_.trace_probability)) {
    traced = true;
    const TimeNs granularity =
        Milliseconds(static_cast<int64_t>(rng->UniformInt(100, 500)));
    const RateBps floor = config.bandwidth * std::max(0.0, 1.0 - ranges_.rate_variation);
    Rng trace_rng(Rng::DeriveSeed(config.seed, 0x7E2CEull));
    config.trace = std::make_shared<RateTrace>(MakeLteLikeTrace(
        config.episode_length + Seconds(60.0), granularity, floor, config.bandwidth, &trace_rng));
  }

  draw.family = traced ? "lte-trace" : qdisc;
  if (lossy) {
    draw.family += "+loss";
  }
  return draw;
}

}  // namespace astraea
