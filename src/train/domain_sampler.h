// Domain randomization for generalist training (paper §3.2 / ROADMAP item 5).
//
// SampleEpisode() covers Table 3 (bandwidth, RTT, buffer, flow count/arrival
// randomization); the DomainSampler layers the rest of the repo's scenario
// families on top so one policy trains across everything the bench suite
// evaluates: iid random loss (lossy goldens, fig. 9), RED and CoDel AQMs
// (bench_aqm_interaction), and LTE-like time-varying rate traces
// (bench_fig13_cellular / fig20 satellite). Every draw comes from the
// caller's Rng in a fixed, documented order, so a sampler shared by N actor
// streams is exactly as deterministic as the streams themselves.

#ifndef SRC_TRAIN_DOMAIN_SAMPLER_H_
#define SRC_TRAIN_DOMAIN_SAMPLER_H_

#include <string>

#include "src/core/multi_flow_env.h"
#include "src/core/training_config.h"
#include "src/util/rng.h"

namespace astraea {

struct DomainRanges {
  TrainingEnvRanges base;  // Table 3

  // Probability an episode carries iid wire loss; when it does, the rate is
  // Uniform(loss_lo, loss_hi). Mirrors the lossy golden family.
  double loss_probability = 0.0;
  double loss_lo = 0.001;
  double loss_hi = 0.02;

  // AQM selection: with these probabilities the bottleneck runs RED or CoDel
  // instead of DropTail (capacity always mirrors the DropTail sizing).
  double red_probability = 0.0;
  double codel_probability = 0.0;

  // Probability the bottleneck rate follows an LTE-like trace oscillating in
  // [bandwidth * (1 - rate_variation), bandwidth] instead of a constant.
  double trace_probability = 0.0;
  double rate_variation = 0.5;

  // Length stamped on every sampled episode (and the horizon rate traces are
  // generated for). The trainer sets this from its own config.
  TimeNs episode_length = Seconds(30.0);

  // Table 3 only — what the serial Learner trains on today.
  static DomainRanges TableThree();
  // Full scenario-family coverage (astraea_train --randomize).
  static DomainRanges Extended();
};

class DomainSampler {
 public:
  explicit DomainSampler(DomainRanges ranges) : ranges_(ranges) {}

  struct Draw {
    EnvEpisodeConfig config;
    std::string family;  // "droptail", "droptail+loss", "red", "codel", "lte-trace", ...
  };

  // Draw order (fixed; tests pin it): base episode via SampleEpisode, then
  // loss gate [+ rate], then one uniform AQM selector draw, then trace gate
  // [+ granularity]. A given Rng stream therefore yields the same episode
  // sequence whatever worker executes it.
  Draw SampleDraw(Rng* rng) const;
  EnvEpisodeConfig Sample(Rng* rng) const { return SampleDraw(rng).config; }

  const DomainRanges& ranges() const { return ranges_; }

 private:
  DomainRanges ranges_;
};

}  // namespace astraea

#endif  // SRC_TRAIN_DOMAIN_SAMPLER_H_
