#include "src/train/promotion.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "src/cc/newreno.h"
#include "src/cc/udp_blast.h"
#include "src/core/astraea_controller.h"
#include "src/sim/network.h"
#include "src/sim/rate_provider.h"
#include "src/util/metrics.h"
#include "src/util/stats.h"

namespace astraea {

namespace {

// Composite the verdict compares: reward-shaped but dimensionless. Latency
// only penalizes past the reward block's (1+beta) grace band, in units of
// the base RTT; loss is weighted like the Eq. 4 loss term relative to
// throughput.
double ScoreComposite(const ScenarioScore& s, TimeNs base_rtt, double beta) {
  const double base_ms = static_cast<double>(base_rtt) / 1e6;
  const double lat_pen = std::max(0.0, s.p95_delay_ms / base_ms - (1.0 + beta));
  return s.utilization + s.jain - 0.25 * lat_pen - 2.0 * s.loss_rate;
}

}  // namespace

std::vector<GateScenario> GoldenGateSuite() {
  std::vector<GateScenario> suite;
  // Mirrors the golden-trace trio (tools/golden_trace.cc): a clean DropTail
  // dumbbell, a lossy deep-buffer path, and a RED bottleneck — each as a
  // 3-flow staggered fairness scenario.
  GateScenario clean;
  clean.name = "clean";
  suite.push_back(clean);

  GateScenario lossy;
  lossy.name = "lossy";
  lossy.bandwidth = Mbps(48);
  lossy.base_rtt = Milliseconds(60);
  lossy.buffer_bdp = 2.0;
  lossy.random_loss = 0.01;
  lossy.seed = 2;
  suite.push_back(lossy);

  GateScenario red;
  red.name = "red";
  red.bandwidth = Mbps(96);
  red.base_rtt = Milliseconds(30);
  red.buffer_bdp = 2.0;
  red.red = true;
  red.seed = 3;
  suite.push_back(red);
  return suite;
}

std::vector<GateScenario> UniverseGateSuite(const std::string& traces_dir) {
  std::vector<GateScenario> suite;
  // Shallow-buffer ECN bottleneck: the datacenter regime, scaled to the
  // gate's second-scale runtime (the candidate must keep delay low without
  // starving when the queue marks instead of dropping).
  GateScenario shallow;
  shallow.name = "shallow-ecn";
  shallow.bandwidth = Mbps(96);
  shallow.base_rtt = Milliseconds(10);
  shallow.buffer_bdp = 0.5;
  shallow.ecn = true;
  shallow.seed = 11;
  suite.push_back(shallow);

  // Trace replay: the bundled cellular capture (swinging capacity, deep
  // buffer) — the regime where latency inflation is easiest to buy.
  GateScenario cellular;
  cellular.name = "cellular";
  cellular.trace_path = traces_dir + "/cellular.trace";
  cellular.buffer_bdp = 8.0;
  cellular.flows = 2;
  cellular.seed = 12;
  suite.push_back(cellular);

  // Contested link: a NewReno competitor from t=0 and an unresponsive blast
  // through the middle of the scoring window.
  GateScenario contested;
  contested.name = "contested";
  contested.bandwidth = Mbps(48);
  contested.base_rtt = Milliseconds(30);
  contested.buffer_bdp = 2.0;
  contested.flows = 2;
  contested.cross_traffic = true;
  contested.seed = 13;
  suite.push_back(contested);
  return suite;
}

PromotionGate::PromotionGate(GateOptions options) : options_(std::move(options)) {
  if (options_.suite.empty()) {
    options_.suite = GoldenGateSuite();
  }
  // Pre-register verdict metrics at construction (PR-6/PR-7 convention).
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("train.promote.accepted_total");
  reg.GetCounter("train.promote.rejected_total");
  reg.GetCounter("train.promote.scenarios_total");
}

ScenarioScore PromotionGate::Evaluate(const GateScenario& scenario,
                                      std::shared_ptr<const Policy> policy) const {
  Network network(scenario.seed);

  // When a trace drives the link, its long-run mean rate replaces the nominal
  // bandwidth for buffer sizing and utilization scoring — the 96 Mbps default
  // against a ~12 Mbps cellular capture would both oversize the buffer into a
  // bufferbloat trap and make full utilization unreachable for any policy.
  std::shared_ptr<RateProvider> trace;
  RateBps effective_rate = scenario.bandwidth;
  if (!scenario.trace_path.empty()) {
    trace = std::make_shared<RateTrace>(LoadMahimahiTrace(scenario.trace_path));
    effective_rate = trace->CapacityBits(0, scenario.until) / ToSeconds(scenario.until);
  }

  LinkConfig link;
  link.name = "gate-bottleneck";
  link.rate = scenario.bandwidth;
  link.propagation_delay = scenario.base_rtt / 2;
  link.buffer_bytes = std::max<uint64_t>(
      static_cast<uint64_t>(scenario.buffer_bdp *
                            static_cast<double>(BdpBytes(effective_rate, scenario.base_rtt))),
      3000);
  link.random_loss = scenario.random_loss;
  link.trace = trace;
  if (scenario.red) {
    const uint64_t capacity = link.buffer_bytes;
    link.queue_factory = [capacity](Rng rng) -> std::unique_ptr<QueueDiscipline> {
      RedConfig red;
      red.capacity_bytes = capacity;
      return std::make_unique<RedQueue>(red, rng);
    };
  } else if (scenario.ecn) {
    const uint64_t capacity = link.buffer_bytes;
    const uint64_t threshold = scenario.ecn_threshold_bytes;
    link.queue_factory = [capacity, threshold](Rng) -> std::unique_ptr<QueueDiscipline> {
      EcnConfig ecn;
      ecn.mark_threshold_bytes = threshold;
      return std::make_unique<EcnMarkingQueue>(std::make_unique<DropTailQueue>(capacity), ecn);
    };
  }
  network.AddLink(link);

  const AstraeaHyperparameters hp = options_.hp;
  for (int i = 0; i < scenario.flows; ++i) {
    FlowSpec spec;
    spec.scheme = "astraea-gate";
    spec.start = scenario.stagger * i;
    spec.duration = -1;
    spec.link_path = {0};
    spec.make_cc = [policy, hp] { return std::make_unique<AstraeaController>(policy, hp); };
    network.AddFlow(spec);
  }
  if (scenario.cross_traffic) {
    // Scored flows are [0, scenario.flows); the environment traffic rides
    // behind them: a NewReno competitor for the whole run and an
    // unresponsive blast through the middle of the scoring window.
    FlowSpec competitor;
    competitor.scheme = "newreno";
    competitor.start = 0;
    competitor.duration = -1;
    competitor.link_path = {0};
    competitor.make_cc = [] { return std::make_unique<NewReno>(); };
    network.AddFlow(competitor);

    const double blast_bps = 0.4 * scenario.bandwidth;
    FlowSpec blast;
    blast.scheme = "blast";
    blast.start = scenario.until / 2 + scenario.until / 8;
    blast.duration = scenario.until / 8;
    blast.link_path = {0};
    blast.make_cc = [blast_bps] { return std::make_unique<UdpBlast>(blast_bps); };
    network.AddFlow(blast);
  }
  network.Run(scenario.until);

  // Score over the second half of the run: every flow is active and the
  // transient from staggered starts has passed.
  const TimeNs begin = scenario.until / 2;
  const TimeNs end = scenario.until;

  ScenarioScore score;
  double total_mbps = 0.0;
  std::vector<double> rtt_samples;
  uint64_t bytes_sent = 0;
  uint64_t bytes_lost = 0;
  // Only the Astraea flows are scored; cross traffic (when present) is
  // environment, not candidate output.
  const size_t scored = static_cast<size_t>(scenario.flows);
  for (size_t i = 0; i < scored; ++i) {
    const FlowStats& stats = network.flow_stats(static_cast<int>(i));
    total_mbps += stats.throughput_mbps.MeanOver(begin, end);
    for (const auto& [t, rtt_ms] : stats.rtt_ms.points()) {
      if (t >= begin && t < end) {
        rtt_samples.push_back(rtt_ms);
      }
    }
    bytes_sent += stats.bytes_sent;
    bytes_lost += stats.bytes_lost;
  }
  score.utilization =
      total_mbps /
      (trace ? trace->CapacityBits(begin, end) / (ToSeconds(end - begin) * 1e6)
             : scenario.bandwidth / 1e6);

  std::vector<double> rates;
  double jain_sum = 0.0;
  int slots = 0;
  for (TimeNs t = begin; t + Seconds(1.0) <= end; t += Seconds(1.0)) {
    rates.clear();
    for (size_t i = 0; i < scored; ++i) {
      rates.push_back(network.flow_stats(static_cast<int>(i)).throughput_mbps.MeanOver(
          t, t + Seconds(1.0)));
    }
    jain_sum += JainIndex(rates);
    ++slots;
  }
  score.jain = slots > 0 ? jain_sum / slots : 1.0;
  score.p95_delay_ms = rtt_samples.empty() ? 0.0 : Percentile(std::move(rtt_samples), 95.0);
  score.loss_rate =
      bytes_sent > 0 ? static_cast<double>(bytes_lost) / static_cast<double>(bytes_sent) : 0.0;
  score.composite = ScoreComposite(score, scenario.base_rtt, options_.hp.reward.beta);
  return score;
}

GateReport PromotionGate::Compare(std::shared_ptr<const Policy> candidate,
                                  std::shared_ptr<const Policy> incumbent) const {
  constexpr double kTieTolerance = 1e-6;
  GateReport report;
  MetricsRegistry& reg = MetricsRegistry::Global();
  double worst_regression = 0.0;
  std::string worst_scenario;
  for (const GateScenario& scenario : options_.suite) {
    GateScenarioResult result;
    result.name = scenario.name;
    result.candidate = Evaluate(scenario, candidate);
    result.incumbent = Evaluate(scenario, incumbent);
    reg.GetCounter("train.promote.scenarios_total").Increment(2);
    report.candidate_total += result.candidate.composite;
    report.incumbent_total += result.incumbent.composite;
    const double delta = result.candidate.composite - result.incumbent.composite;
    if (delta > kTieTolerance) {
      ++report.wins;
    } else if (delta < -kTieTolerance) {
      ++report.losses;
      if (-delta > worst_regression) {
        worst_regression = -delta;
        worst_scenario = scenario.name;
      }
    }
    report.scenarios.push_back(std::move(result));
  }

  if (worst_regression > options_.max_scenario_regression) {
    report.accepted = false;
    std::ostringstream reason;
    reason << "regression of " << worst_regression << " composite points on '" << worst_scenario
           << "' exceeds the " << options_.max_scenario_regression << " budget";
    report.reason = reason.str();
  } else if (report.candidate_total > report.incumbent_total + kTieTolerance) {
    report.accepted = true;
    report.reason = "candidate total beats incumbent";
  } else {
    report.accepted = false;
    report.reason = "candidate total does not beat incumbent (ties keep the incumbent)";
  }
  reg.GetCounter(report.accepted ? "train.promote.accepted_total"
                                 : "train.promote.rejected_total")
      .Increment();
  return report;
}

GateReport PromotionGate::CompareFiles(const std::string& candidate_path,
                                       const std::string& incumbent_path) const {
  // The candidate must be a real trained network; LoadFromFile throws
  // SerializationError otherwise (no silent distilled fallback here).
  std::shared_ptr<const Policy> candidate = MlpPolicy::LoadFromFile(candidate_path);
  std::shared_ptr<const Policy> incumbent;
  try {
    incumbent = MlpPolicy::LoadFromFile(incumbent_path);
  } catch (const SerializationError&) {
    incumbent = std::make_shared<DistilledPolicy>();
  }
  return Compare(std::move(candidate), std::move(incumbent));
}

std::string GateReport::ToJson() const {
  std::ostringstream os;
  os << "{\"accepted\":" << (accepted ? "true" : "false") << ",\"reason\":\"" << reason
     << "\",\"wins\":" << wins << ",\"losses\":" << losses
     << ",\"candidate_total\":" << candidate_total << ",\"incumbent_total\":" << incumbent_total
     << ",\"scenarios\":[";
  for (size_t i = 0; i < scenarios.size(); ++i) {
    const GateScenarioResult& r = scenarios[i];
    auto emit = [&os](const char* who, const ScenarioScore& s) {
      os << "\"" << who << "\":{\"utilization\":" << s.utilization << ",\"jain\":" << s.jain
         << ",\"p95_delay_ms\":" << s.p95_delay_ms << ",\"loss_rate\":" << s.loss_rate
         << ",\"composite\":" << s.composite << "}";
    };
    os << (i > 0 ? "," : "") << "{\"name\":\"" << r.name << "\",";
    emit("candidate", r.candidate);
    os << ",";
    emit("incumbent", r.incumbent);
    os << "}";
  }
  os << "]}";
  return os.str();
}

void AtomicInstall(const std::string& candidate_path, const std::string& install_path) {
  std::ifstream in(candidate_path, std::ios::binary);
  if (!in) {
    throw SerializationError("cannot read candidate for install: " + candidate_path);
  }
  std::ostringstream blob;
  blob << in.rdbuf();
  const std::string bytes = blob.str();

  const std::string tmp = install_path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw SerializationError("cannot open " + tmp + ": " + std::strerror(errno));
  }
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      const int saved = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw SerializationError("write to " + tmp + " failed: " + std::strerror(saved));
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw SerializationError("fsync/close of " + tmp + " failed");
  }
  if (::rename(tmp.c_str(), install_path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    throw SerializationError("rename to " + install_path + " failed: " + std::strerror(saved));
  }
  std::string dir = install_path;
  const size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? "." : dir.substr(0, slash + 1);
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
}

}  // namespace astraea
