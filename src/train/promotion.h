// Checkpoint promotion gate (DESIGN.md §14): a candidate policy replaces the
// incumbent only after beating it on the golden scenario trio — the same
// link configurations the 27 golden traces pin (clean / lossy / RED), each
// run as a staggered multi-flow dumbbell and scored on utilization, Jain
// fairness and p95 delay. tools/astraea_promote wraps this in a CLI whose
// accept path installs the candidate with the checkpoint container's atomic
// tmp+fsync+rename protocol, so astraea_serve's SIGHUP hot-reload (PR 4)
// only ever sees a fully written, gate-approved artifact.

#ifndef SRC_TRAIN_PROMOTION_H_
#define SRC_TRAIN_PROMOTION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/policy.h"
#include "src/core/training_config.h"
#include "src/sim/queue_disc.h"
#include "src/util/time.h"

namespace astraea {

// One gate scenario: a dumbbell the candidate must not regress on.
struct GateScenario {
  std::string name;
  RateBps bandwidth = Mbps(96);
  TimeNs base_rtt = Milliseconds(40);
  double buffer_bdp = 1.0;
  double random_loss = 0.0;
  bool red = false;     // RED bottleneck instead of DropTail
  int flows = 3;        // Astraea flows, staggered by `stagger`
  TimeNs stagger = Seconds(1.0);
  TimeNs until = Seconds(8.0);
  uint64_t seed = 1;
  // Universe extensions (--suite=universe). Scores always cover the Astraea
  // flows only, so cross traffic shapes the environment without polluting
  // the utilization/Jain columns.
  std::string trace_path;             // Mahimahi capture drives the link rate
  bool ecn = false;                   // wrap the bottleneck in EcnMarkingQueue
  uint64_t ecn_threshold_bytes = 30'000;
  bool cross_traffic = false;         // NewReno competitor + mid-run UDP blast
};

// The golden trio (clean / lossy / red) as multi-flow fairness scenarios.
std::vector<GateScenario> GoldenGateSuite();

// The scenario-universe gate (astraea_promote --suite=universe): a
// shallow-buffer ECN incast-style bottleneck, the bundled cellular trace
// replay, and a contested link with a NewReno competitor plus a mid-run
// unresponsive blast. `traces_dir` locates the bundled Mahimahi captures.
std::vector<GateScenario> UniverseGateSuite(const std::string& traces_dir);

struct ScenarioScore {
  double utilization = 0.0;   // aggregate goodput / link rate over the window
  double jain = 1.0;          // mean Jain over 1s slots in the scoring window
  double p95_delay_ms = 0.0;  // p95 of all flows' per-MTP RTT samples
  double loss_rate = 0.0;     // bytes lost / bytes sent
  // utilization + jain - latency/loss penalties; the scalar the verdict
  // compares. See ScoreComposite() in promotion.cc for the exact formula.
  double composite = 0.0;
};

struct GateScenarioResult {
  std::string name;
  ScenarioScore candidate;
  ScenarioScore incumbent;
};

struct GateReport {
  std::vector<GateScenarioResult> scenarios;
  double candidate_total = 0.0;
  double incumbent_total = 0.0;
  int wins = 0;    // scenarios where the candidate's composite is higher
  int losses = 0;  // ... lower by more than the tie tolerance
  bool accepted = false;
  std::string reason;
  std::string ToJson() const;
};

struct GateOptions {
  AstraeaHyperparameters hp;
  // Accept requires candidate_total > incumbent_total AND no single scenario
  // regressing by more than max_scenario_regression (composite points).
  double max_scenario_regression = 0.10;
  std::vector<GateScenario> suite;  // empty: GoldenGateSuite()
};

class PromotionGate {
 public:
  explicit PromotionGate(GateOptions options = {});

  // Scores one policy on one scenario (deterministic: fixed seeds).
  ScenarioScore Evaluate(const GateScenario& scenario,
                         std::shared_ptr<const Policy> policy) const;

  // Full gate run; bumps train.promote.{accepted,rejected}_total.
  GateReport Compare(std::shared_ptr<const Policy> candidate,
                     std::shared_ptr<const Policy> incumbent) const;

  // File-level wrapper: the candidate must parse as a trained Mlp checkpoint
  // (a candidate that silently fell back to the distilled policy could
  // "beat" a real incumbent without containing a network — exactly the
  // ROADMAP 1d failure mode). Throws SerializationError if it does not.
  // A missing/unreadable incumbent is scored as the distilled fallback, so
  // first-ever promotions have a meaningful bar to clear.
  GateReport CompareFiles(const std::string& candidate_path,
                          const std::string& incumbent_path) const;

  const GateOptions& options() const { return options_; }

 private:
  GateOptions options_;
};

// Installs `candidate_path`'s bytes at `install_path` with the durability
// protocol of src/util/checkpoint.h (tmp + fsync + rename + dir fsync), so a
// serving process hot-reloading on SIGHUP can never observe a torn artifact.
// Throws SerializationError on any I/O failure.
void AtomicInstall(const std::string& candidate_path, const std::string& install_path);

}  // namespace astraea

#endif  // SRC_TRAIN_PROMOTION_H_
