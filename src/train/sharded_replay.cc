#include "src/train/sharded_replay.h"

#include <algorithm>

#include "src/util/logging.h"

namespace astraea {

ShardedReplayBuffer::ShardedReplayBuffer(size_t capacity, size_t shards) {
  ASTRAEA_CHECK(capacity > 0);
  ASTRAEA_CHECK(shards > 0);
  const size_t per_shard = (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    shards_.emplace_back(per_shard);
  }
}

void ShardedReplayBuffer::DrainInterleaved(std::vector<std::vector<Transition>>* staged) {
  const size_t queues = staged->size();
  if (queues == 0) {
    return;
  }
  // Per-queue read offsets for this drain; the persistent cursor only tracks
  // which queue the next visit lands on.
  std::vector<size_t> read(queues, 0);
  size_t remaining = 0;
  for (const auto& q : *staged) {
    remaining += q.size();
  }
  while (remaining > 0) {
    const size_t q = static_cast<size_t>(cursor_ % queues);
    cursor_ = (cursor_ + 1) % queues;
    std::vector<Transition>& src = (*staged)[q];
    if (read[q] >= src.size()) {
      ++stalls_;
      continue;
    }
    shards_[static_cast<size_t>(global_seq_ % shards_.size())].Add(std::move(src[read[q]]));
    ++read[q];
    ++global_seq_;
    --remaining;
  }
  for (auto& q : *staged) {
    q.clear();
  }
}

size_t ShardedReplayBuffer::size() const {
  size_t total = 0;
  for (const ReplayBuffer& s : shards_) {
    total += s.size();
  }
  return total;
}

size_t ShardedReplayBuffer::capacity() const {
  size_t total = 0;
  for (const ReplayBuffer& s : shards_) {
    total += s.capacity();
  }
  return total;
}

const Transition& ShardedReplayBuffer::at(size_t i) const {
  for (const ReplayBuffer& s : shards_) {
    if (i < s.size()) {
      return s.at(i);
    }
    i -= s.size();
  }
  ASTRAEA_CHECK(false && "ShardedReplayBuffer::at out of range");
  return shards_.front().at(0);  // unreachable
}

std::vector<size_t> ShardedReplayBuffer::SampleIndices(size_t n, Rng* rng) const {
  const size_t total = size();
  ASTRAEA_CHECK(total > 0);
  std::vector<size_t> out(n);
  for (auto& idx : out) {
    idx = static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(total) - 1));
  }
  return out;
}

void ShardedReplayBuffer::Save(BinaryWriter* writer) const {
  writer->WriteU64(shards_.size());
  writer->WriteU64(global_seq_);
  writer->WriteU64(cursor_);
  writer->WriteU64(stalls_);
  for (const ReplayBuffer& s : shards_) {
    s.Save(writer);
  }
}

void ShardedReplayBuffer::Load(BinaryReader* reader) {
  const uint64_t shards = reader->ReadU64();
  if (shards != shards_.size()) {
    throw SerializationError("sharded replay checkpoint has " + std::to_string(shards) +
                             " shards, this trainer is configured for " +
                             std::to_string(shards_.size()));
  }
  const uint64_t global_seq = reader->ReadU64();
  const uint64_t cursor = reader->ReadU64();
  const uint64_t stalls = reader->ReadU64();
  std::vector<ReplayBuffer> loaded;
  loaded.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    ReplayBuffer shard(shards_[s].capacity());
    shard.Load(reader);
    loaded.push_back(std::move(shard));
  }
  shards_ = std::move(loaded);
  global_seq_ = global_seq;
  cursor_ = cursor;
  stalls_ = stalls;
}

}  // namespace astraea
