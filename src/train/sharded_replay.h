// Sharded replay buffer with a deterministic actor-queue interleave.
//
// N parallel actors each stage the transitions of one model-update segment
// into a private vector; at the barrier the trainer drains all staging
// queues through DrainInterleaved(), which deals transitions one at a time
// in round-robin actor order starting from a persistent cursor. The global
// arrival sequence — and therefore which shard each transition lands in,
// what gets evicted, and what a uniform sample returns — is a pure function
// of (per-actor episode streams, cursor), never of worker count or
// scheduling. That is the whole determinism argument: parallelism moves the
// *production* of transitions, the interleave fixes their *order*.
//
// The cursor, per-shard rings and the global sequence counter all serialize,
// so a training run killed between rounds resumes mid-interleave exactly
// where it stopped (DESIGN.md §14).

#ifndef SRC_TRAIN_SHARDED_REPLAY_H_
#define SRC_TRAIN_SHARDED_REPLAY_H_

#include <cstddef>
#include <vector>

#include "src/rl/replay_buffer.h"

namespace astraea {

class ShardedReplayBuffer : public ReplaySource {
 public:
  // `capacity` is the total across shards; each shard is an independent ring
  // of capacity/shards (rounded up). Shard count is a fixed configuration
  // choice — it must NOT track worker count, or resharding would change
  // eviction order between runs with different parallelism.
  ShardedReplayBuffer(size_t capacity, size_t shards);

  // Deals one transition per visit from the staging queues in round-robin
  // order starting at the persistent cursor; empty queues that still have
  // non-empty peers count as interleave stalls (exposed for metrics — a
  // persistently stalling actor means an unbalanced domain sample). Consumed
  // queues are cleared. Destination shard = global_sequence % shards.
  void DrainInterleaved(std::vector<std::vector<Transition>>* staged);

  // ReplaySource: global index i resolves shard-major (shard 0's entries
  // first). Sampling draws the same count of Rng values as the serial
  // ReplayBuffer for a same-size buffer.
  size_t size() const override;
  const Transition& at(size_t i) const override;
  std::vector<size_t> SampleIndices(size_t n, Rng* rng) const override;

  size_t shard_count() const { return shards_.size(); }
  size_t shard_size(size_t s) const { return shards_[s].size(); }
  size_t capacity() const;
  uint64_t total_added() const { return global_seq_; }
  uint64_t interleave_cursor() const { return cursor_; }
  uint64_t interleave_stalls() const { return stalls_; }

  // Serializes shard rings (in shard-index order), the interleave cursor,
  // the stall counter and the global sequence. Load validates the shard
  // count against this instance and throws SerializationError on mismatch.
  void Save(BinaryWriter* writer) const;
  void Load(BinaryReader* reader);

 private:
  std::vector<ReplayBuffer> shards_;
  uint64_t global_seq_ = 0;  // lifetime transitions; also the shard selector
  uint64_t cursor_ = 0;      // next actor queue the round-robin deal visits
  uint64_t stalls_ = 0;
};

}  // namespace astraea

#endif  // SRC_TRAIN_SHARDED_REPLAY_H_
