#include "src/train/vectorized_trainer.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "src/util/checkpoint.h"
#include "src/util/failpoint.h"
#include "src/util/logging.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"

namespace astraea {

namespace {

constexpr uint32_t kVectorizedStateMagic = 0x41'53'54'56;  // "ASTV"
constexpr uint32_t kVectorizedStateVersion = 1;

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

VectorizedTrainer::Metrics VectorizedTrainer::RegisterMetrics(size_t shards) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Metrics m{reg.GetCounter("train.episodes_total"),
            reg.GetCounter("train.rounds_total"),
            reg.GetCounter("train.env_steps_total"),
            reg.GetCounter("train.actor_steps_total"),
            reg.GetCounter("train.interleave_stalls_total"),
            reg.GetGauge("train.replay_size"),
            reg.GetGauge("train.exploration_noise"),
            reg.GetHistogram("train.round_seconds"),
            reg.GetHistogram("train.update_seconds"),
            {}};
  for (size_t s = 0; s < shards; ++s) {
    m.shard_occupancy.push_back(
        &reg.GetGauge("train.replay_shard_occupancy." + std::to_string(s)));
  }
  return m;
}

VectorizedTrainer::VectorizedTrainer(VectorizedTrainerConfig config)
    : config_(config),
      sampler_([&config] {
        DomainRanges r = config.domain;
        r.episode_length = config.episode_length;
        return r;
      }()),
      learner_rng_(config.seed),
      metrics_(RegisterMetrics(config.replay_shards)) {
  ASTRAEA_CHECK(config_.num_envs >= 1);
  Td3Config td3;
  td3.local_state_dim = LocalStateDim(config_.hp);
  td3.global_state_dim = kGlobalFeatures;
  td3.action_dim = 1;
  td3.actor_lr = static_cast<float>(config_.hp.learning_rate);
  td3.critic_lr = static_cast<float>(config_.hp.learning_rate);
  td3.gamma = static_cast<float>(config_.hp.gamma);
  td3.batch_size = static_cast<size_t>(config_.hp.batch_size);
  trainer_ = std::make_unique<Td3Trainer>(td3, &learner_rng_);
  replay_ = std::make_unique<ShardedReplayBuffer>(config_.replay_capacity, config_.replay_shards);

  // Actor i's stream is a pure function of (seed, i) — never of worker count
  // or spawn order — which is what makes episode sampling and exploration
  // noise schedule-independent.
  const uint64_t actor_base = Rng::DeriveSeed(kTrainActorSeedStream, config_.seed);
  slots_.reserve(static_cast<size_t>(config_.num_envs));
  staged_.resize(static_cast<size_t>(config_.num_envs));
  for (int i = 0; i < config_.num_envs; ++i) {
    slots_.emplace_back(Rng::DeriveSeed(actor_base, static_cast<uint64_t>(i)));
    ActorSlot& slot = slots_.back();
    slot.actor = std::make_unique<Mlp>(trainer_->actor());
    slot.policy = std::make_shared<SnapshotActorPolicy>(slot.actor.get());
    slot.sink = std::make_unique<VectorSink>(&staged_[static_cast<size_t>(i)]);
  }
}

double VectorizedTrainer::NoiseForEpisode(int global_episode) const {
  const double frac =
      decay_horizon_ > 1
          ? std::min(1.0, static_cast<double>(global_episode) / (decay_horizon_ - 1))
          : 1.0;
  return config_.exploration_noise +
         frac * (config_.exploration_noise_final - config_.exploration_noise);
}

void VectorizedTrainer::Train(
    int episodes, const std::function<void(const EpisodeDiagnostics&)>& on_episode) {
  if (decay_horizon_ == 0) {
    decay_horizon_ =
        config_.exploration_decay_episodes > 0 ? config_.exploration_decay_episodes : episodes;
  }
  for (int e = 0; e < episodes; ++e) {
    ASTRAEA_FAILPOINT("train.episode");
    const double noise = NoiseForEpisode(episodes_done_);
    metrics_.exploration_noise.Set(noise);

    // Every actor samples its next episode from its own stream and starts a
    // fresh environment acting through its snapshot policy.
    for (ActorSlot& slot : slots_) {
      const EnvEpisodeConfig env_config = sampler_.Sample(&slot.rng);
      slot.env = std::make_unique<MultiFlowEnv>(env_config, config_.hp, slot.policy,
                                                slot.sink.get(), noise, &slot.rng);
      ++slot.episodes_started;
    }

    // Round loop: snapshot weights, advance all actors one model-update
    // interval in parallel, barrier, deal staged transitions in deterministic
    // interleave order, then the learner's gradient steps. Episodes share one
    // length, so every actor finishes after the same number of rounds.
    Td3Diagnostics last_td3;
    for (;;) {
      const auto round_start = std::chrono::steady_clock::now();
      for (ActorSlot& slot : slots_) {
        slot.actor->CopyParamsFrom(trainer_->actor());
      }
      const std::vector<int> advanced = ParallelMap(
          slots_.size(),
          [this](size_t i) -> int { return slots_[i].env->AdvanceOneInterval() ? 1 : 0; },
          config_.workers);
      if (advanced[0] == 0) {
        break;  // lockstep: all actors reach the horizon together
      }
      metrics_.rounds.Increment();
      metrics_.env_steps.Increment(slots_.size());

      uint64_t staged_count = 0;
      for (const auto& q : staged_) {
        staged_count += q.size();
      }
      replay_->DrainInterleaved(&staged_);
      total_env_steps_ += staged_count;
      metrics_.actor_steps.Increment(staged_count);
      metrics_.interleave_stalls.Increment(replay_->interleave_stalls() - counted_stalls_);
      counted_stalls_ = replay_->interleave_stalls();
      metrics_.round_seconds.Observe(SecondsSince(round_start));

      const auto update_start = std::chrono::steady_clock::now();
      for (int step = 0; step < config_.hp.model_update_steps; ++step) {
        last_td3 = trainer_->Update(*replay_, &learner_rng_);
      }
      metrics_.update_seconds.Observe(SecondsSince(update_start));
    }

    // Finish the residual tail (serial, actor order) and fold the per-actor
    // means into one diagnostic row. Tail decisions are drained too, so the
    // staging queues are provably empty at every checkpoint boundary.
    EpisodeStats total;
    for (ActorSlot& slot : slots_) {
      const EpisodeStats s = slot.env->Finish();
      slot.env.reset();
      total.mean_reward += s.mean_reward;
      total.mean_r_fair += s.mean_r_fair;
      total.mean_r_thr += s.mean_r_thr;
      total.mean_r_lat += s.mean_r_lat;
      total.mean_r_loss += s.mean_r_loss;
      total.mean_r_stab += s.mean_r_stab;
      total.decisions += s.decisions;
    }
    const double inv = 1.0 / static_cast<double>(slots_.size());
    total.mean_reward *= inv;
    total.mean_r_fair *= inv;
    total.mean_r_thr *= inv;
    total.mean_r_lat *= inv;
    total.mean_r_loss *= inv;
    total.mean_r_stab *= inv;
    uint64_t tail = 0;
    for (const auto& q : staged_) {
      tail += q.size();
    }
    replay_->DrainInterleaved(&staged_);
    total_env_steps_ += tail;
    metrics_.actor_steps.Increment(tail);

    ++episodes_done_;
    metrics_.episodes.Increment();
    metrics_.replay_size.Set(static_cast<double>(replay_->size()));
    for (size_t s = 0; s < replay_->shard_count(); ++s) {
      metrics_.shard_occupancy[s]->Set(static_cast<double>(replay_->shard_size(s)));
    }

    EpisodeDiagnostics diag;
    diag.episode = episodes_done_;
    diag.env = total;
    diag.td3 = last_td3;
    diag.replay_size = replay_->size();
    diag.exploration_noise = noise;
    if (episodes_done_ % 10 == 0) {
      diag.eval_jain = EvaluateFairness();
    }
    if (on_episode) {
      on_episode(diag);
    }
  }
}

double VectorizedTrainer::EvaluateFairness() {
  EnvEpisodeConfig config;
  config.bandwidth = Mbps(100);
  config.base_rtt = Milliseconds(40);
  config.buffer_bdp = 1.0;
  config.episode_length = Seconds(24.0);
  config.seed = 42;
  for (int i = 0; i < 3; ++i) {
    FlowSchedule f;
    f.start = Seconds(4.0 * i);
    f.duration = -1;
    config.flows.push_back(f);
  }
  // Deterministic policy snapshot, throwaway staging, and a stream keyed by
  // the episode index: evaluation is repeatable and invisible to training.
  Mlp eval_actor(trainer_->actor());
  auto policy = std::make_shared<SnapshotActorPolicy>(&eval_actor);
  Rng eval_rng(Rng::DeriveSeed(kTrainEvalSeedStream, static_cast<uint64_t>(episodes_done_)));
  std::vector<Transition> scratch;
  VectorSink sink(&scratch);
  MultiFlowEnv env(config, config_.hp, policy, &sink, /*noise_std=*/0.0, &eval_rng);
  env.Run({});

  std::vector<double> rates;
  const Network& net = env.network();
  double jain_sum = 0.0;
  int slots = 0;
  for (TimeNs t = Seconds(9.0); t + Seconds(1.0) <= config.episode_length; t += Seconds(1.0)) {
    rates.clear();
    for (size_t i = 0; i < net.flow_count(); ++i) {
      rates.push_back(
          net.flow_stats(static_cast<int>(i)).throughput_mbps.MeanOver(t, t + Seconds(1.0)));
    }
    jain_sum += JainIndex(rates);
    ++slots;
  }
  return slots > 0 ? jain_sum / slots : 0.0;
}

void VectorizedTrainer::SerializeState(BinaryWriter* w) const {
  for (const auto& q : staged_) {
    ASTRAEA_CHECK(q.empty());  // checkpoints only happen at episode boundaries
  }
  WriteSchemaHeader(w, {kVectorizedStateMagic, kVectorizedStateVersion});
  w->WriteU32(static_cast<uint32_t>(episodes_done_));
  w->WriteU32(static_cast<uint32_t>(decay_horizon_));
  w->WriteU64(total_env_steps_);
  learner_rng_.SaveState(w);
  trainer_->SaveState(w);
  replay_->Save(w);
  w->WriteU64(slots_.size());
  for (const ActorSlot& slot : slots_) {
    slot.rng.SaveState(w);
    w->WriteU64(slot.episodes_started);
  }
}

void VectorizedTrainer::SaveState(const std::string& path) const {
  CheckpointWriter ckpt(path);
  SerializeState(ckpt.payload());
  ckpt.Commit();
}

void VectorizedTrainer::LoadState(const std::string& path) {
  CheckpointReader ckpt(path);
  BinaryReader* r = ckpt.payload();
  ReadSchemaHeader(r, kVectorizedStateMagic, kVectorizedStateVersion, kVectorizedStateVersion,
                   "vectorized training-state (" + path + ")");
  const int episodes_done = static_cast<int>(r->ReadU32());
  const int decay_horizon = static_cast<int>(r->ReadU32());
  const uint64_t total_env_steps = r->ReadU64();
  learner_rng_.LoadState(r);
  trainer_->LoadState(r);
  replay_->Load(r);
  const uint64_t actors = r->ReadU64();
  if (actors != slots_.size()) {
    throw SerializationError("vectorized checkpoint has " + std::to_string(actors) +
                             " actors, this trainer is configured for " +
                             std::to_string(slots_.size()) + ": " + path);
  }
  for (ActorSlot& slot : slots_) {
    slot.rng.LoadState(r);
    slot.episodes_started = r->ReadU64();
  }
  episodes_done_ = episodes_done;
  decay_horizon_ = decay_horizon;
  total_env_steps_ = total_env_steps;
  counted_stalls_ = replay_->interleave_stalls();
}

uint32_t VectorizedTrainer::StateFingerprint() const {
  std::ostringstream buf;
  BinaryWriter w(&buf);
  SerializeState(&w);
  const std::string bytes = buf.str();
  return Crc32(bytes.data(), bytes.size());
}

}  // namespace astraea
