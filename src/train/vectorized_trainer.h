// Vectorized actor/learner training (DESIGN.md §14, ROADMAP item 5).
//
// N MultiFlowEnv actors run one model-update segment at a time on the PR-1
// thread pool, each acting through a private snapshot of the shared actor
// and drawing exploration noise from its own persistent splitmix-derived
// stream. At the round barrier their staged transitions are dealt into the
// sharded replay buffer by a deterministic round-robin interleave, then the
// single TD3 learner performs its gradient steps from a central stream.
// Because (a) per-actor randomness is keyed by actor index, not schedule,
// (b) actors act on identical frozen weights within a round, and (c) the
// interleave fixes the global transition order, training is bit-identical
// for any worker count — the same argument PR-1/PR-6 use for the experiment
// harness and sharded scenarios, applied to learning.
//
// Checkpoints (magic "ASTV") carry the learner stream, trainer state,
// sharded buffer with its interleave cursor, and every actor's stream +
// episode cursor, so PR-2's kill-and-resume bit-identity survives
// vectorization.

#ifndef SRC_TRAIN_VECTORIZED_TRAINER_H_
#define SRC_TRAIN_VECTORIZED_TRAINER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/learner.h"
#include "src/core/multi_flow_env.h"
#include "src/train/domain_sampler.h"
#include "src/train/sharded_replay.h"
#include "src/util/metrics.h"

namespace astraea {

// Seed streams (Rng::DeriveSeed) for the training subsystem. Actor i's
// persistent stream is DeriveSeed(DeriveSeed(kTrainActorSeedStream, seed), i);
// evaluation episodes use kTrainEvalSeedStream keyed by the episode index so
// they never perturb a training stream.
inline constexpr uint64_t kTrainActorSeedStream = 0xA57AEA04;
inline constexpr uint64_t kTrainEvalSeedStream = 0xA57AEA05;

struct VectorizedTrainerConfig {
  AstraeaHyperparameters hp;
  DomainRanges domain;  // DomainRanges::TableThree() or ::Extended()
  size_t replay_capacity = 200'000;
  size_t replay_shards = 8;
  double exploration_noise = 0.15;
  double exploration_noise_final = 0.03;
  TimeNs episode_length = Seconds(30.0);
  int num_envs = 4;     // parallel actors (paper Appendix A uses 4)
  size_t workers = 1;   // threads; results are identical for any value
  uint64_t seed = 7;
  int exploration_decay_episodes = 0;  // 0: horizon of the first Train() call
};

class VectorizedTrainer {
 public:
  explicit VectorizedTrainer(VectorizedTrainerConfig config);

  // Runs `episodes` super-episodes (every actor completes one episode per
  // super-episode); invokes `on_episode` after each with stats averaged
  // across actors.
  void Train(int episodes, const std::function<void(const EpisodeDiagnostics&)>& on_episode);

  // Deterministic 3-flow fairness evaluation (same scenario as
  // Learner::EvaluateFairness) on a stream derived from the episode index —
  // running it never perturbs training streams, so diagnostics cadence
  // cannot change training results.
  double EvaluateFairness();

  Td3Trainer& trainer() { return *trainer_; }
  const ShardedReplayBuffer& replay() const { return *replay_; }
  const VectorizedTrainerConfig& config() const { return config_; }
  int episodes_done() const { return episodes_done_; }
  uint64_t total_env_steps() const { return total_env_steps_; }

  // Deployment artifact (actor weights, MlpPolicy::LoadFromFile format).
  void SaveCheckpoint(const std::string& path) const { trainer_->SaveActor(path); }

  // Full training state in the atomic CRC-footer container. Only legal at a
  // super-episode boundary (no live simulator state exists there).
  void SaveState(const std::string& path) const;
  void LoadState(const std::string& path);

  // CRC-32 of the serialized training state — the bit-identity probe used by
  // the 1-vs-N-worker tests, bench_train_scale and the CI train-scale job.
  uint32_t StateFingerprint() const;

 private:
  struct ActorSlot {
    Rng rng;                      // persistent stream: episode draws + noise
    uint64_t episodes_started = 0;  // the actor's episode cursor
    std::unique_ptr<Mlp> actor;   // per-round snapshot of the shared actor
    std::shared_ptr<const Policy> policy;  // SnapshotActorPolicy over `actor`
    std::unique_ptr<VectorSink> sink;      // stages into staged_[i]
    std::unique_ptr<MultiFlowEnv> env;     // live within a super-episode
    explicit ActorSlot(uint64_t seed) : rng(seed) {}
  };

  void SerializeState(BinaryWriter* writer) const;
  double NoiseForEpisode(int global_episode) const;

  VectorizedTrainerConfig config_;
  DomainSampler sampler_;
  Rng learner_rng_;  // weight init + TD3 batch sampling, like the serial Learner
  std::unique_ptr<Td3Trainer> trainer_;
  std::unique_ptr<ShardedReplayBuffer> replay_;
  std::vector<ActorSlot> slots_;
  std::vector<std::vector<Transition>> staged_;  // index = actor
  int episodes_done_ = 0;
  int decay_horizon_ = 0;
  uint64_t total_env_steps_ = 0;  // lifetime transitions collected
  uint64_t counted_stalls_ = 0;   // stalls already exported to the counter

  // All train.* metrics are registered at construction, so scrapes never
  // race first-use (PR-6/PR-7 convention).
  struct Metrics {
    Counter& episodes;
    Counter& rounds;
    Counter& env_steps;
    Counter& actor_steps;
    Counter& interleave_stalls;
    Gauge& replay_size;
    Gauge& exploration_noise;
    Histogram& round_seconds;
    Histogram& update_seconds;
    std::vector<Gauge*> shard_occupancy;
  };
  static Metrics RegisterMetrics(size_t shards);
  Metrics metrics_;
};

}  // namespace astraea

#endif  // SRC_TRAIN_VECTORIZED_TRAINER_H_
