// Jittered exponential backoff for retry/reconnect loops.
//
// The client side of the serving stack uses this to probe a dead
// `astraea_serve`: the first probe is cheap and almost immediate, successive
// failures double the wait up to a cap, and every delay is jittered so a
// fleet of clients that lost the same server at the same instant does not
// reconnect in one synchronized stampede. The supervisor in
// tools/astraea_serve reuses it as a crash-loop brake.
//
// Deterministic by construction: the jitter stream is seeded, so tests can
// assert exact schedules, and two backoffs with different seeds decorrelate.

#ifndef SRC_UTIL_BACKOFF_H_
#define SRC_UTIL_BACKOFF_H_

#include <algorithm>
#include <cstdint>

#include "src/util/time.h"

namespace astraea {

struct BackoffConfig {
  TimeNs base = Milliseconds(10);  // first delay (before jitter)
  TimeNs cap = Seconds(2.0);       // delays never exceed this (before jitter)
  double multiplier = 2.0;         // growth per consecutive failure
  // Each delay is scaled by a uniform factor in [1-jitter, 1+jitter].
  double jitter = 0.25;
};

class ExponentialBackoff {
 public:
  explicit ExponentialBackoff(BackoffConfig config, uint64_t seed = 1)
      : config_(config), state_(seed ? seed : 0x9E3779B97F4A7C15ULL) {}

  // Delay to wait before the next attempt; each call advances the schedule
  // (call once per failure).
  TimeNs NextDelay() {
    const TimeNs capped = std::min(current_, config_.cap);
    const double scaled = static_cast<double>(current_) * config_.multiplier;
    current_ = scaled >= static_cast<double>(config_.cap)
                   ? config_.cap
                   : static_cast<TimeNs>(scaled);
    const double factor = 1.0 + config_.jitter * (2.0 * NextUniform() - 1.0);
    const TimeNs jittered = static_cast<TimeNs>(static_cast<double>(capped) * factor);
    return std::max<TimeNs>(jittered, 1);
  }

  // Back to the initial delay (call on success).
  void Reset() { current_ = config_.base; }

  uint32_t failures() const { return failures_; }
  void RecordFailure() { ++failures_; }

 private:
  // SplitMix64 step: small, seedable, and independent of std::rand.
  double NextUniform() {
    state_ += 0x9E3779B97F4A7C15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
  }

  BackoffConfig config_;
  TimeNs current_ = config_.base;
  uint32_t failures_ = 0;
  uint64_t state_;
};

}  // namespace astraea

#endif  // SRC_UTIL_BACKOFF_H_
