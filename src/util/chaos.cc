#include "src/util/chaos.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <stdexcept>

#include "src/util/cli_flags.h"
#include "src/util/failpoint.h"
#include "src/util/logging.h"

namespace astraea {
namespace chaos {

namespace {

// SplitMix64 step shared with ExponentialBackoff: seedable determinism
// without dragging in <random>.
uint64_t Mix(uint64_t* state) {
  *state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = *state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double MixUniform(uint64_t* state) {
  return static_cast<double>(Mix(state) >> 11) * 0x1.0p-53;
}

}  // namespace

ChaosSchedule::ChaosSchedule(std::vector<ChaosEvent> events) : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) { return a.at < b.at; });
}

ChaosSchedule ChaosSchedule::Parse(const std::string& text) {
  std::vector<ChaosEvent> events;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t end = text.find(';', pos);
    if (end == std::string::npos) {
      end = text.size();
    }
    const std::string item = text.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) {
      if (pos > text.size()) {
        break;
      }
      continue;
    }
    const size_t at_sep = item.find('@');
    if (at_sep == std::string::npos || at_sep == 0) {
      throw std::invalid_argument("chaos event missing '<delay>@<spec>': " + item);
    }
    ChaosEvent ev;
    std::string why;
    if (!cli::TryParseDuration(item.substr(0, at_sep).c_str(), 0, Seconds(86400.0), &ev.at,
                               &why)) {
      throw std::invalid_argument("bad chaos delay in '" + item + "' (" + why + ")");
    }
    const std::string spec = item.substr(at_sep + 1);
    if (spec != "-") {
      failpoint::Validate(spec);  // reject typos at parse time, not mid-soak
      ev.spec = spec;
    }
    events.push_back(std::move(ev));
  }
  return ChaosSchedule(std::move(events));
}

ChaosSchedule ChaosSchedule::RandomServeStorm(uint64_t seed, TimeNs duration,
                                              TimeNs mean_period) {
  uint64_t state = seed ? seed : 0xA57AEA0C4A05ULL;
  std::vector<ChaosEvent> events;
  TimeNs t = 0;
  bool first = true;
  while (true) {
    // Jittered inter-event gap in [0.5, 1.5] x mean_period.
    t += static_cast<TimeNs>(static_cast<double>(mean_period) * (0.5 + MixUniform(&state)));
    if (t >= duration) {
      break;
    }
    ChaosEvent ev;
    ev.at = t;
    // The first event is always a crash so every storm exercises the
    // supervisor-restart + client-reconnect path at least once.
    const double pick = first ? 0.0 : MixUniform(&state);
    first = false;
    if (pick < 0.45) {
      ev.spec = "serve.flush.mid_batch=1";  // hard crash mid-flush
    } else if (pick < 0.70) {
      ev.spec = "serve.respond.corrupt=1:throw";  // one damaged response CRC
    } else {
      ev.spec = "serve.flush.mid_batch=1:stall:25ms";  // scheduler-style stall
    }
    events.push_back(std::move(ev));
  }
  events.push_back(ChaosEvent{duration, ""});  // storm over: disarm everything
  return ChaosSchedule(std::move(events));
}

std::string ChaosSchedule::ToString() const {
  std::string out;
  char buf[32];
  for (const ChaosEvent& ev : events_) {
    if (!out.empty()) {
      out += ';';
    }
    std::snprintf(buf, sizeof(buf), "%" PRId64 "ns@", ev.at);
    out += buf;
    out += ev.spec.empty() ? "-" : ev.spec;
  }
  return out;
}

ChaosRunner::ChaosRunner(ChaosSchedule schedule, TimeNs offset)
    : schedule_(std::move(schedule)), thread_([this, offset] { RunLoop(offset); }) {}

ChaosRunner::~ChaosRunner() { Stop(); }

void ChaosRunner::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void ChaosRunner::RunLoop(TimeNs offset) {
  const auto start = std::chrono::steady_clock::now();
  for (const ChaosEvent& ev : schedule_.events()) {
    if (ev.at < offset) {
      continue;  // fired in a previous incarnation of this process
    }
    const auto when = start + std::chrono::nanoseconds(ev.at - offset);
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (cv_.wait_until(lock, when, [this] { return stop_; })) {
        return;
      }
    }
    try {
      failpoint::Configure(ev.spec);
    } catch (const std::invalid_argument& e) {
      // Schedules are validated at parse time; keep the storm going anyway.
      ASTRAEA_LOG(Warning) << "chaos: bad event spec skipped: " << e.what();
      continue;
    }
    applied_.fetch_add(1, std::memory_order_acq_rel);
    ASTRAEA_LOG(Info) << "chaos: applied t+" << FormatTime(ev.at) << " \""
                      << (ev.spec.empty() ? "-" : ev.spec) << "\"";
  }
}

}  // namespace chaos
}  // namespace astraea
