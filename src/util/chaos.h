// Seeded, deterministic chaos schedules for fault-injection soaks.
//
// A ChaosSchedule is a timeline of failpoint reconfigurations: at offset T
// from schedule start, replace the failpoint registry with a given spec
// (src/util/failpoint.h grammar), or disarm everything. The serving soak
// harness uses it to crash, corrupt and stall `astraea_serve` on a script the
// test can reason about, and — because schedules are plain data built from a
// seed — the same storm replays identically across runs and machines.
//
// Text format (Parse/ToString): semicolon-separated events, each
//   <delay>@<failpoint-spec>     arm exactly this spec at <delay>
//   <delay>@-                    disarm all failpoints at <delay>
// where <delay> is a cli_flags duration ("500ms", "2s") measured from
// schedule start. Example:
//   "2s@serve.flush.mid_batch=1;5s@serve.respond.corrupt=1:throw;8s@-"
// Events are kept sorted by time; each event *replaces* the whole registry
// (failpoint::Configure semantics), so an event's spec must name everything
// that should be armed from that instant on.
//
// A ChaosRunner applies a schedule on a background thread, starting from an
// optional offset — a supervised server that crashed and restarted resumes
// the storm mid-timeline instead of replaying it from zero (the supervisor
// passes the elapsed time down, see serve/supervisor.h).

#ifndef SRC_UTIL_CHAOS_H_
#define SRC_UTIL_CHAOS_H_

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/util/time.h"

namespace astraea {
namespace chaos {

struct ChaosEvent {
  TimeNs at = 0;     // offset from schedule start
  std::string spec;  // failpoint spec; empty = disarm everything
};

class ChaosSchedule {
 public:
  ChaosSchedule() = default;
  explicit ChaosSchedule(std::vector<ChaosEvent> events);

  // Parses the text format above. Throws std::invalid_argument on malformed
  // delays or failpoint specs (specs are validated eagerly, so a typo fails
  // at parse time rather than mid-soak).
  static ChaosSchedule Parse(const std::string& text);

  // Deterministic random storm for the serving stack: every ~`mean_period`
  // (jittered by `seed`) one of {crash at flush, corrupt one response, stall
  // one flush} is armed, and the storm disarms at `duration`. Same seed, same
  // storm.
  static ChaosSchedule RandomServeStorm(uint64_t seed, TimeNs duration, TimeNs mean_period);

  std::string ToString() const;
  const std::vector<ChaosEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  // Time of the last event (0 when empty) — soak harnesses run past this.
  TimeNs end() const { return events_.empty() ? 0 : events_.back().at; }

 private:
  std::vector<ChaosEvent> events_;  // sorted by `at`
};

// Applies a schedule in real time on its own thread: event i fires
// failpoint::Configure(events[i].spec) at start + (events[i].at - offset).
// Events with at < offset already happened in a previous incarnation and are
// skipped. Stop() (or destruction) halts promptly without firing the rest.
class ChaosRunner {
 public:
  explicit ChaosRunner(ChaosSchedule schedule, TimeNs offset = 0);
  ~ChaosRunner();

  ChaosRunner(const ChaosRunner&) = delete;
  ChaosRunner& operator=(const ChaosRunner&) = delete;

  void Stop();
  // Number of events applied so far (for tests / status lines).
  size_t applied() const { return applied_.load(std::memory_order_acquire); }

 private:
  void RunLoop(TimeNs offset);

  ChaosSchedule schedule_;
  std::atomic<size_t> applied_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace chaos
}  // namespace astraea

#endif  // SRC_UTIL_CHAOS_H_
