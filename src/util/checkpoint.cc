#include "src/util/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "src/util/failpoint.h"

namespace astraea {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

// write(2) loop that survives partial writes and EINTR.
void WriteAllOrThrow(int fd, const char* data, size_t n, const std::string& path) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw SerializationError(Errno("checkpoint write to " + path + " failed"));
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
}

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::string ReadAndVerify(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SerializationError("cannot open checkpoint: " + path);
  }
  std::string blob((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    throw SerializationError("failed reading checkpoint: " + path);
  }
  return VerifyCheckpointBlob(std::move(blob), path);
}

}  // namespace

std::string VerifyCheckpointBlob(std::string blob, const std::string& name) {
  if (blob.size() < kCheckpointFooterSize) {
    throw SerializationError("checkpoint too short for footer: " + name);
  }
  const char* footer = blob.data() + blob.size() - kCheckpointFooterSize;
  uint64_t payload_size;
  uint32_t crc;
  uint32_t magic;
  std::memcpy(&payload_size, footer, sizeof(payload_size));
  std::memcpy(&crc, footer + 8, sizeof(crc));
  std::memcpy(&magic, footer + 12, sizeof(magic));
  if (magic != kCheckpointFooterMagic) {
    throw SerializationError("bad checkpoint footer magic: " + name);
  }
  if (payload_size != blob.size() - kCheckpointFooterSize) {
    throw SerializationError("checkpoint payload size mismatch (truncated?): " + name);
  }
  if (Crc32(blob.data(), payload_size) != crc) {
    throw SerializationError("checkpoint CRC mismatch (corrupt): " + name);
  }
  blob.resize(payload_size);
  return blob;
}

uint32_t Crc32(const void* data, size_t len) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t ReadSchemaHeader(BinaryReader* reader, uint32_t magic, uint32_t min_version,
                          uint32_t max_version, const std::string& what) {
  if (reader->ReadU32() != magic) {
    throw SerializationError("not a " + what + " checkpoint (bad magic)");
  }
  const uint32_t version = reader->ReadU32();
  if (version < min_version || version > max_version) {
    throw SerializationError("unsupported " + what + " checkpoint version " +
                             std::to_string(version));
  }
  return version;
}

CheckpointWriter::CheckpointWriter(std::string path)
    : path_(std::move(path)), writer_(&buf_) {}

void CheckpointWriter::Commit() {
  if (committed_) {
    throw SerializationError("checkpoint already committed: " + path_);
  }
  std::string blob = buf_.str();
  const uint64_t payload_size = blob.size();
  const uint32_t crc = Crc32(blob.data(), blob.size());
  PutU64(&blob, payload_size);
  PutU32(&blob, crc);
  PutU32(&blob, kCheckpointFooterMagic);

  const std::string tmp = path_ + ".tmp";
  ASTRAEA_FAILPOINT("ckpt.commit.begin");
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw SerializationError(Errno("cannot create checkpoint tmp file " + tmp));
  }
  // Two half-writes with a failpoint between them let tests inject a torn
  // write — the on-disk state a real crash mid-write(2) would leave behind.
  const size_t half = blob.size() / 2;
  WriteAllOrThrow(fd, blob.data(), half, tmp);
  ASTRAEA_FAILPOINT("ckpt.commit.torn_write");
  WriteAllOrThrow(fd, blob.data() + half, blob.size() - half, tmp);
  ASTRAEA_FAILPOINT("ckpt.commit.before_fsync");
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw SerializationError(Errno("fsync of checkpoint tmp file " + tmp + " failed"));
  }
  if (::close(fd) != 0) {
    throw SerializationError(Errno("close of checkpoint tmp file " + tmp + " failed"));
  }
  ASTRAEA_FAILPOINT("ckpt.commit.before_rename");
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    throw SerializationError(Errno("rename " + tmp + " -> " + path_ + " failed"));
  }
  ASTRAEA_FAILPOINT("ckpt.commit.before_dirsync");
  // Make the directory entry durable too; without this the rename itself can
  // be lost on power failure even though both files' contents were synced.
  std::string dir = path_;
  const size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? "." : dir.substr(0, slash + 1);
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd < 0) {
    throw SerializationError(Errno("cannot open checkpoint directory " + dir));
  }
  if (::fsync(dirfd) != 0) {
    const int saved = errno;
    ::close(dirfd);
    errno = saved;
    throw SerializationError(Errno("fsync of checkpoint directory " + dir + " failed"));
  }
  ::close(dirfd);
  committed_ = true;
}

CheckpointReader::CheckpointReader(const std::string& path)
    : buf_(ReadAndVerify(path)), reader_(&buf_) {}

}  // namespace astraea
