// Durable, corruption-evident checkpoint container.
//
// A checkpoint file is [payload bytes][footer]; the footer is
//   u64 payload_size | u32 crc32(payload) | u32 kFooterMagic
// (16 bytes, little-endian). The payload is an ordinary BinaryWriter stream;
// the container does not interpret it.
//
// Durability protocol (CheckpointWriter::Commit):
//   1. write payload+footer to "<path>.tmp"
//   2. fsync the tmp file
//   3. rename(tmp, path)        — atomic on POSIX
//   4. fsync the parent directory
// A crash at any step leaves either the previous checkpoint intact (steps
// 1-3) or the new one fully in place (step 4); a torn write is caught by the
// CRC/footer check on load. Every step is failpoint-instrumented (see
// failpoint.h) so tests can prove this.
//
// CheckpointReader verifies footer magic, size and CRC up front and throws
// SerializationError on any mismatch — a corrupt checkpoint never parses.

#ifndef SRC_UTIL_CHECKPOINT_H_
#define SRC_UTIL_CHECKPOINT_H_

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "src/util/serialization.h"

namespace astraea {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the zlib convention:
// Crc32("123456789") == 0xCBF43926.
uint32_t Crc32(const void* data, size_t len);

// Payload schema header: every checkpoint payload leads with a u32 magic (the
// subsystem) and a u32 version. The helpers below are the one place the
// magic/version handshake lives, so every subsystem rejects foreign or
// future checkpoints with the same message shape. Byte-compatible with the
// hand-rolled WriteU32(magic)/WriteU32(version) pairs they replaced.
struct CheckpointSchema {
  uint32_t magic = 0;
  uint32_t version = 0;
};

inline void WriteSchemaHeader(BinaryWriter* writer, CheckpointSchema schema) {
  writer->WriteU32(schema.magic);
  writer->WriteU32(schema.version);
}

// Validates the magic and that version is in [min_version, max_version];
// returns the version read (so callers can branch on older layouts). `what`
// labels the error, typically "<subsystem> training-state (path)".
uint32_t ReadSchemaHeader(BinaryReader* reader, uint32_t magic, uint32_t min_version,
                          uint32_t max_version, const std::string& what);

inline constexpr uint32_t kCheckpointFooterMagic = 0x4153434Bu;  // "ASCK"
inline constexpr size_t kCheckpointFooterSize = 16;

// Verifies a whole checkpoint image (payload + footer) in memory — footer
// magic, payload size, CRC — and returns the payload bytes; throws
// SerializationError on any mismatch. `name` labels error messages (a path
// for files). CheckpointReader is the file read plus this; the split exists
// so the container format can be fuzzed (fuzz/fuzz_checkpoint.cc).
std::string VerifyCheckpointBlob(std::string blob, const std::string& name);

class CheckpointWriter {
 public:
  explicit CheckpointWriter(std::string path);

  // Payload sink; buffered in memory until Commit().
  BinaryWriter* payload() { return &writer_; }

  // Runs the durability protocol above. Throws SerializationError on any I/O
  // failure (the previous checkpoint at `path`, if any, is left untouched).
  // Must be called at most once.
  void Commit();

 private:
  std::string path_;
  std::ostringstream buf_;
  BinaryWriter writer_;
  bool committed_ = false;
};

class CheckpointReader {
 public:
  // Reads the whole file and verifies footer magic, payload size and CRC;
  // throws SerializationError if anything is off.
  explicit CheckpointReader(const std::string& path);

  BinaryReader* payload() { return &reader_; }

 private:
  std::istringstream buf_;  // must be initialized before reader_
  BinaryReader reader_;
};

}  // namespace astraea

#endif  // SRC_UTIL_CHECKPOINT_H_
