// Strict numeric parsing for tool command lines.
//
// The tools historically used bare atoi/atof, which silently turn
// "--episodes banana" into 0 and accept out-of-range values. These helpers
// require the whole token to parse and the value to sit inside a
// caller-declared range.
//
// Two layers: the TryParse* cores validate without any side effect and
// report the reason on failure (fuzzable — fuzz/fuzz_cli_flags.cc drives
// them with arbitrary bytes); the Parse* wrappers keep the historical CLI
// contract of printing one clear line to stderr and exit(1)-ing. CLI-only by
// design — library code should never exit.

#ifndef SRC_UTIL_CLI_FLAGS_H_
#define SRC_UTIL_CLI_FLAGS_H_

#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/util/time.h"

namespace astraea {
namespace cli {

[[noreturn]] inline void FlagError(const char* flag, const char* value, const char* why) {
  std::fprintf(stderr, "invalid value for %s: '%s' (%s)\n", flag, value, why);
  std::exit(1);
}

namespace internal {
inline void SetWhy(std::string* why, const char* message) {
  if (why != nullptr) {
    *why = message;
  }
}
}  // namespace internal

// Each TryParse* returns false (with `*why` describing the reason, when
// non-null) instead of exiting; `*out` is untouched on failure.

inline bool TryParseInt(const char* value, int64_t lo, int64_t hi, int64_t* out,
                        std::string* why = nullptr) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0') {
    internal::SetWhy(why, "not an integer");
    return false;
  }
  if (errno == ERANGE || v < lo || v > hi) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "must be in [%" PRId64 ", %" PRId64 "]", lo, hi);
    internal::SetWhy(why, buf);
    return false;
  }
  *out = v;
  return true;
}

inline bool TryParseU64(const char* value, uint64_t* out, std::string* why = nullptr) {
  errno = 0;
  char* end = nullptr;
  if (value[0] == '-') {
    internal::SetWhy(why, "must be non-negative");
    return false;
  }
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    internal::SetWhy(why, "not an integer");
    return false;
  }
  if (errno == ERANGE) {
    internal::SetWhy(why, "out of range for uint64");
    return false;
  }
  *out = v;
  return true;
}

inline bool TryParseDouble(const char* value, double lo, double hi, double* out,
                           std::string* why = nullptr) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    internal::SetWhy(why, "not a number");
    return false;
  }
  if (errno == ERANGE || !(v >= lo && v <= hi)) {  // !(>=) also rejects NaN
    char buf[96];
    std::snprintf(buf, sizeof(buf), "must be in [%g, %g]", lo, hi);
    internal::SetWhy(why, buf);
    return false;
  }
  *out = v;
  return true;
}

// Parses a human-readable duration — a nonnegative decimal number immediately
// followed by one of the suffixes "ns", "us", "ms", "s" (e.g. "500us", "5ms",
// "1.5s") — into nanoseconds. The suffix is mandatory: a bare number would
// silently mean different things to different flags. The result must land in
// [lo, hi] nanoseconds.
inline bool TryParseDuration(const char* value, TimeNs lo, TimeNs hi, TimeNs* out,
                             std::string* why = nullptr) {
  errno = 0;
  char* end = nullptr;
  const double magnitude = std::strtod(value, &end);
  if (end == value) {
    internal::SetWhy(why, "not a duration (expected e.g. 500us, 5ms, 1s)");
    return false;
  }
  if (errno == ERANGE || !(magnitude >= 0.0) || !std::isfinite(magnitude)) {
    internal::SetWhy(why, "duration must be a finite nonnegative number");
    return false;
  }
  double scale = 0.0;
  if (std::strcmp(end, "ns") == 0) {
    scale = 1.0;
  } else if (std::strcmp(end, "us") == 0) {
    scale = static_cast<double>(kNanosPerMicro);
  } else if (std::strcmp(end, "ms") == 0) {
    scale = static_cast<double>(kNanosPerMilli);
  } else if (std::strcmp(end, "s") == 0) {
    scale = static_cast<double>(kNanosPerSec);
  } else {
    internal::SetWhy(why, "missing or unknown unit (use ns, us, ms or s)");
    return false;
  }
  const double ns = magnitude * scale;
  if (ns > static_cast<double>(INT64_MAX)) {
    internal::SetWhy(why, "duration overflows the nanosecond range");
    return false;
  }
  const TimeNs result = static_cast<TimeNs>(std::llround(ns));
  if (result < lo || result > hi) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "must be in [%" PRId64 "ns, %" PRId64 "ns]", lo, hi);
    internal::SetWhy(why, buf);
    return false;
  }
  *out = result;
  return true;
}

inline int64_t ParseInt(const char* flag, const char* value, int64_t lo, int64_t hi) {
  int64_t out = 0;
  std::string why;
  if (!TryParseInt(value, lo, hi, &out, &why)) {
    FlagError(flag, value, why.c_str());
  }
  return out;
}

inline uint64_t ParseU64(const char* flag, const char* value) {
  uint64_t out = 0;
  std::string why;
  if (!TryParseU64(value, &out, &why)) {
    FlagError(flag, value, why.c_str());
  }
  return out;
}

inline double ParseDouble(const char* flag, const char* value, double lo, double hi) {
  double out = 0.0;
  std::string why;
  if (!TryParseDouble(value, lo, hi, &out, &why)) {
    FlagError(flag, value, why.c_str());
  }
  return out;
}

inline TimeNs ParseDuration(const char* flag, const char* value, TimeNs lo, TimeNs hi) {
  TimeNs out = 0;
  std::string why;
  if (!TryParseDuration(value, lo, hi, &out, &why)) {
    FlagError(flag, value, why.c_str());
  }
  return out;
}

// Strictly positive duration: "0ms" (and anything negative, which
// TryParseDuration already refuses) gets a clear rejection instead of
// silently configuring a zero window/timeout that busy-loops or never waits.
// The serving flags (--batch-window, --rpc-timeout, --connect-timeout) all
// parse through here.
inline TimeNs ParsePositiveDuration(const char* flag, const char* value, TimeNs hi) {
  TimeNs out = 0;
  std::string why;
  if (!TryParseDuration(value, 1, hi, &out, &why)) {
    if (TryParseDuration(value, 0, hi, &out)) {
      FlagError(flag, value, "must be a positive duration");
    }
    FlagError(flag, value, why.c_str());
  }
  return out;
}

}  // namespace cli
}  // namespace astraea

#endif  // SRC_UTIL_CLI_FLAGS_H_
