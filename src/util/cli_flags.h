// Strict numeric parsing for tool command lines.
//
// The tools historically used bare atoi/atof, which silently turn
// "--episodes banana" into 0 and accept out-of-range values. These helpers
// require the whole token to parse and the value to sit inside a
// caller-declared range; on violation they print one clear line to stderr
// and exit(1). CLI-only by design — library code should never exit.

#ifndef SRC_UTIL_CLI_FLAGS_H_
#define SRC_UTIL_CLI_FLAGS_H_

#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/util/time.h"

namespace astraea {
namespace cli {

[[noreturn]] inline void FlagError(const char* flag, const char* value, const char* why) {
  std::fprintf(stderr, "invalid value for %s: '%s' (%s)\n", flag, value, why);
  std::exit(1);
}

inline int64_t ParseInt(const char* flag, const char* value, int64_t lo, int64_t hi) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0') {
    FlagError(flag, value, "not an integer");
  }
  if (errno == ERANGE || v < lo || v > hi) {
    char why[96];
    std::snprintf(why, sizeof(why), "must be in [%" PRId64 ", %" PRId64 "]", lo, hi);
    FlagError(flag, value, why);
  }
  return v;
}

inline uint64_t ParseU64(const char* flag, const char* value) {
  errno = 0;
  char* end = nullptr;
  if (value[0] == '-') {
    FlagError(flag, value, "must be non-negative");
  }
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    FlagError(flag, value, "not an integer");
  }
  if (errno == ERANGE) {
    FlagError(flag, value, "out of range for uint64");
  }
  return v;
}

inline double ParseDouble(const char* flag, const char* value, double lo, double hi) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    FlagError(flag, value, "not a number");
  }
  if (errno == ERANGE || !(v >= lo && v <= hi)) {  // !(>=) also rejects NaN
    char why[96];
    std::snprintf(why, sizeof(why), "must be in [%g, %g]", lo, hi);
    FlagError(flag, value, why);
  }
  return v;
}

// Parses a human-readable duration — a nonnegative decimal number immediately
// followed by one of the suffixes "ns", "us", "ms", "s" (e.g. "500us", "5ms",
// "1.5s") — into nanoseconds. The suffix is mandatory: a bare number would
// silently mean different things to different flags. The result must land in
// [lo, hi] nanoseconds.
inline TimeNs ParseDuration(const char* flag, const char* value, TimeNs lo, TimeNs hi) {
  errno = 0;
  char* end = nullptr;
  const double magnitude = std::strtod(value, &end);
  if (end == value) {
    FlagError(flag, value, "not a duration (expected e.g. 500us, 5ms, 1s)");
  }
  if (errno == ERANGE || !(magnitude >= 0.0) || !std::isfinite(magnitude)) {
    FlagError(flag, value, "duration must be a finite nonnegative number");
  }
  double scale = 0.0;
  if (std::strcmp(end, "ns") == 0) {
    scale = 1.0;
  } else if (std::strcmp(end, "us") == 0) {
    scale = static_cast<double>(kNanosPerMicro);
  } else if (std::strcmp(end, "ms") == 0) {
    scale = static_cast<double>(kNanosPerMilli);
  } else if (std::strcmp(end, "s") == 0) {
    scale = static_cast<double>(kNanosPerSec);
  } else {
    FlagError(flag, value, "missing or unknown unit (use ns, us, ms or s)");
  }
  const double ns = magnitude * scale;
  if (ns > static_cast<double>(INT64_MAX)) {
    FlagError(flag, value, "duration overflows the nanosecond range");
  }
  const TimeNs result = static_cast<TimeNs>(std::llround(ns));
  if (result < lo || result > hi) {
    char why[96];
    std::snprintf(why, sizeof(why), "must be in [%" PRId64 "ns, %" PRId64 "ns]", lo, hi);
    FlagError(flag, value, why);
  }
  return result;
}

}  // namespace cli
}  // namespace astraea

#endif  // SRC_UTIL_CLI_FLAGS_H_
