// Strict numeric parsing for tool command lines.
//
// The tools historically used bare atoi/atof, which silently turn
// "--episodes banana" into 0 and accept out-of-range values. These helpers
// require the whole token to parse and the value to sit inside a
// caller-declared range; on violation they print one clear line to stderr
// and exit(1). CLI-only by design — library code should never exit.

#ifndef SRC_UTIL_CLI_FLAGS_H_
#define SRC_UTIL_CLI_FLAGS_H_

#include <cerrno>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace astraea {
namespace cli {

[[noreturn]] inline void FlagError(const char* flag, const char* value, const char* why) {
  std::fprintf(stderr, "invalid value for %s: '%s' (%s)\n", flag, value, why);
  std::exit(1);
}

inline int64_t ParseInt(const char* flag, const char* value, int64_t lo, int64_t hi) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0') {
    FlagError(flag, value, "not an integer");
  }
  if (errno == ERANGE || v < lo || v > hi) {
    char why[96];
    std::snprintf(why, sizeof(why), "must be in [%" PRId64 ", %" PRId64 "]", lo, hi);
    FlagError(flag, value, why);
  }
  return v;
}

inline uint64_t ParseU64(const char* flag, const char* value) {
  errno = 0;
  char* end = nullptr;
  if (value[0] == '-') {
    FlagError(flag, value, "must be non-negative");
  }
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    FlagError(flag, value, "not an integer");
  }
  if (errno == ERANGE) {
    FlagError(flag, value, "out of range for uint64");
  }
  return v;
}

inline double ParseDouble(const char* flag, const char* value, double lo, double hi) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    FlagError(flag, value, "not a number");
  }
  if (errno == ERANGE || !(v >= lo && v <= hi)) {  // !(>=) also rejects NaN
    char why[96];
    std::snprintf(why, sizeof(why), "must be in [%g, %g]", lo, hi);
    FlagError(flag, value, why);
  }
  return v;
}

}  // namespace cli
}  // namespace astraea

#endif  // SRC_UTIL_CLI_FLAGS_H_
