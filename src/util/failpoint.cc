#include "src/util/failpoint.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "src/util/cli_flags.h"
#include "src/util/time.h"

namespace astraea {
namespace failpoint {

std::atomic<bool> g_any_armed{false};

namespace {

struct Entry {
  long remaining = 0;  // trigger when a hit decrements this to zero
  enum class Action { kCrash, kThrow, kStall } action = Action::kCrash;
  TimeNs stall = 0;  // sleep duration for kStall
};

std::mutex& RegistryMutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, Entry>& Registry() {
  static std::map<std::string, Entry> r;
  return r;
}

void RecomputeArmed() {
  bool armed = false;
  for (const auto& [name, e] : Registry()) {
    if (e.remaining > 0) {
      armed = true;
      break;
    }
  }
  g_any_armed.store(armed, std::memory_order_relaxed);
}

std::map<std::string, Entry> ParseSpec(const std::string& spec) {
  std::map<std::string, Entry> parsed;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) {
      end = spec.size();
    }
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) {
      continue;
    }
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("failpoint spec item missing 'site=N': " + item);
    }
    const std::string site = item.substr(0, eq);
    std::string count = item.substr(eq + 1);
    Entry e;
    const size_t colon = count.find(':');
    if (colon != std::string::npos) {
      const std::string action = count.substr(colon + 1);
      count.resize(colon);
      if (action == "throw") {
        e.action = Entry::Action::kThrow;
      } else if (action == "crash") {
        e.action = Entry::Action::kCrash;
      } else if (action == "stall" || action.rfind("stall:", 0) == 0) {
        e.action = Entry::Action::kStall;
        e.stall = Milliseconds(10);
        if (action.size() > 6) {
          std::string why;
          if (!cli::TryParseDuration(action.c_str() + 6, 1, Seconds(60.0), &e.stall, &why)) {
            throw std::invalid_argument("bad stall duration in: " + item + " (" + why + ")");
          }
        }
      } else {
        throw std::invalid_argument("unknown failpoint action: " + action);
      }
    }
    char* parse_end = nullptr;
    e.remaining = std::strtol(count.c_str(), &parse_end, 10);
    if (parse_end == count.c_str() || *parse_end != '\0' || e.remaining <= 0) {
      throw std::invalid_argument("bad failpoint count in: " + item);
    }
    parsed[site] = e;
  }
  return parsed;
}

void ConfigureLocked(const std::string& spec) {
  Registry() = ParseSpec(spec);
  RecomputeArmed();
}

// Parse ASTRAEA_FAILPOINTS before main so the g_any_armed fast path can never
// miss an env-armed site.
struct EnvInit {
  EnvInit() {
    const char* env = std::getenv("ASTRAEA_FAILPOINTS");
    if (env != nullptr && env[0] != '\0') {
      try {
        std::lock_guard<std::mutex> lock(RegistryMutex());
        ConfigureLocked(env);
      } catch (const std::invalid_argument& e) {
        // Runs before main: exit cleanly instead of letting the exception
        // escape a static initializer and terminate().
        std::fprintf(stderr, "bad ASTRAEA_FAILPOINTS: %s\n", e.what());
        std::exit(2);
      }
    }
  }
};
const EnvInit g_env_init;

}  // namespace

void Configure(const std::string& spec) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  ConfigureLocked(spec);
}

void Validate(const std::string& spec) { ParseSpec(spec); }

void Clear() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  Registry().clear();
  RecomputeArmed();
}

bool IsArmed(const char* site) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  const auto it = Registry().find(site);
  return it != Registry().end() && it->second.remaining > 0;
}

void Hit(const char* site) {
  Entry::Action action = Entry::Action::kCrash;
  TimeNs stall = 0;
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    const auto it = Registry().find(site);
    if (it == Registry().end() || it->second.remaining <= 0) {
      return;
    }
    if (--it->second.remaining > 0) {
      return;
    }
    action = it->second.action;
    stall = it->second.stall;
    RecomputeArmed();
  }
  switch (action) {
    case Entry::Action::kThrow:
      throw Injected(std::string("failpoint triggered: ") + site);
    case Entry::Action::kStall:
      // Outside the registry lock: a stalled site must not block Configure()
      // (the chaos runner keeps rescheduling while a stall is in progress).
      std::this_thread::sleep_for(std::chrono::nanoseconds(stall));
      return;
    case Entry::Action::kCrash:
      break;
  }
  // Hard crash: no stream flushing, no atexit handlers, no destructors —
  // whatever is not already durable on disk is lost, as in a real kill.
  ::_exit(kCrashExitCode);
}

}  // namespace failpoint
}  // namespace astraea
