#include "src/util/failpoint.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

namespace astraea {
namespace failpoint {

std::atomic<bool> g_any_armed{false};

namespace {

struct Entry {
  long remaining = 0;  // trigger when a hit decrements this to zero
  bool throws = false;
};

std::mutex& RegistryMutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, Entry>& Registry() {
  static std::map<std::string, Entry> r;
  return r;
}

void RecomputeArmed() {
  bool armed = false;
  for (const auto& [name, e] : Registry()) {
    if (e.remaining > 0) {
      armed = true;
      break;
    }
  }
  g_any_armed.store(armed, std::memory_order_relaxed);
}

void ConfigureLocked(const std::string& spec) {
  Registry().clear();
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) {
      end = spec.size();
    }
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) {
      continue;
    }
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("failpoint spec item missing 'site=N': " + item);
    }
    const std::string site = item.substr(0, eq);
    std::string count = item.substr(eq + 1);
    Entry e;
    const size_t colon = count.find(':');
    if (colon != std::string::npos) {
      const std::string action = count.substr(colon + 1);
      count.resize(colon);
      if (action == "throw") {
        e.throws = true;
      } else if (action != "crash") {
        throw std::invalid_argument("unknown failpoint action: " + action);
      }
    }
    char* parse_end = nullptr;
    e.remaining = std::strtol(count.c_str(), &parse_end, 10);
    if (parse_end == count.c_str() || *parse_end != '\0' || e.remaining <= 0) {
      throw std::invalid_argument("bad failpoint count in: " + item);
    }
    Registry()[site] = e;
  }
  RecomputeArmed();
}

// Parse ASTRAEA_FAILPOINTS before main so the g_any_armed fast path can never
// miss an env-armed site.
struct EnvInit {
  EnvInit() {
    const char* env = std::getenv("ASTRAEA_FAILPOINTS");
    if (env != nullptr && env[0] != '\0') {
      try {
        std::lock_guard<std::mutex> lock(RegistryMutex());
        ConfigureLocked(env);
      } catch (const std::invalid_argument& e) {
        // Runs before main: exit cleanly instead of letting the exception
        // escape a static initializer and terminate().
        std::fprintf(stderr, "bad ASTRAEA_FAILPOINTS: %s\n", e.what());
        std::exit(2);
      }
    }
  }
};
const EnvInit g_env_init;

}  // namespace

void Configure(const std::string& spec) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  ConfigureLocked(spec);
}

void Clear() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  Registry().clear();
  RecomputeArmed();
}

bool IsArmed(const char* site) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  const auto it = Registry().find(site);
  return it != Registry().end() && it->second.remaining > 0;
}

void Hit(const char* site) {
  bool do_throw = false;
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    const auto it = Registry().find(site);
    if (it == Registry().end() || it->second.remaining <= 0) {
      return;
    }
    if (--it->second.remaining > 0) {
      return;
    }
    do_throw = it->second.throws;
    RecomputeArmed();
  }
  if (do_throw) {
    throw Injected(std::string("failpoint triggered: ") + site);
  }
  // Hard crash: no stream flushing, no atexit handlers, no destructors —
  // whatever is not already durable on disk is lost, as in a real kill.
  ::_exit(kCrashExitCode);
}

}  // namespace failpoint
}  // namespace astraea
