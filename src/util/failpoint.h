// Always-compiled failpoint registry for fault-injection testing.
//
// A failpoint is a named site in production code where a test can inject a
// hard crash (simulating a kill -9 / OOM-kill / power cut) or a thrown error.
// Sites cost one relaxed atomic load when no failpoint is armed, so they are
// compiled into every build — crash-safety is verified on the exact binaries
// that ship, not on a special instrumented build.
//
// Configuration, either:
//   - environment: ASTRAEA_FAILPOINTS="ckpt.commit.before_rename=1" (parsed
//     once, at the first site evaluation), or
//   - programmatic: failpoint::Configure("learner.episode=4") — replaces the
//     whole registry; the tool for test children after fork().
//
// Spec grammar:  site=N[:action] [, site=N[:action]]...
//   N        trigger on the Nth execution of the site (1 = first hit)
//   action   "crash" (default): _exit(kCrashExitCode) without flushing
//            anything — the closest user-space approximation of a hard kill;
//            "throw": throw failpoint::Injected once, then disarm;
//            "stall" / "stall:<duration>": sleep that long at the site (default
//            10ms), then disarm — models a GC pause / scheduler stall / page
//            fault storm rather than a death, for soak tests that must prove
//            deadlines hold when the process is merely slow.
//
// Named sites in this codebase (grep ASTRAEA_FAILPOINT for ground truth):
//   ckpt.commit.begin          before the checkpoint tmp file is created
//   ckpt.commit.torn_write     after half the payload bytes hit the tmp file
//   ckpt.commit.before_fsync   payload fully written, not yet durable
//   ckpt.commit.before_rename  tmp durable, final path still the old file
//   ckpt.commit.before_dirsync renamed, directory entry not yet fsynced
//   learner.episode            top of each Learner::Train episode
//   inference.flush            entry of InferenceService::Flush
//   serve.flush.mid_batch      astraea_serve: requests drained from client
//                              rings, no response written yet (worst case)
//   serve.respond.corrupt      astraea_serve: ":throw" corrupts one response
//                              CRC instead, exercising client validation
//   sim.queue.drop_uncounted   Link::Accept: while armed, the arriving packet
//                              silently vanishes without being counted as a
//                              drop — an intentionally injectable simulator
//                              bug that the invariant checker (broken link
//                              conservation) and the golden-trace diff must
//                              both catch. Unlike the sites above, this one
//                              acts as a level trigger: the bug is live for
//                              every packet while armed, not on the Nth hit.

#ifndef SRC_UTIL_FAILPOINT_H_
#define SRC_UTIL_FAILPOINT_H_

#include <atomic>
#include <stdexcept>
#include <string>

namespace astraea {
namespace failpoint {

// Exit code used by the "crash" action, distinguishable from asserts/aborts
// in the parent's waitpid status.
inline constexpr int kCrashExitCode = 86;

// Thrown by the "throw" action.
class Injected : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Replaces the registry with `spec` (see grammar above). An empty spec
// disarms everything. Throws std::invalid_argument on malformed specs.
void Configure(const std::string& spec);

// Parses `spec` exactly as Configure would, throwing std::invalid_argument on
// any malformed item, without touching the registry. Lets schedule builders
// (src/util/chaos.h) reject typos eagerly instead of mid-soak.
void Validate(const std::string& spec);

// Disarms all failpoints.
void Clear();

// True if `site` has an armed (not yet exhausted) entry.
bool IsArmed(const char* site);

// Slow path: counts down the site's entry and performs its action when the
// countdown reaches zero. Called via ASTRAEA_FAILPOINT only when armed.
void Hit(const char* site);

// Fast-path flag: true iff any failpoint entry is armed.
extern std::atomic<bool> g_any_armed;

inline void MaybeHit(const char* site) {
  if (g_any_armed.load(std::memory_order_relaxed)) {
    Hit(site);
  }
}

}  // namespace failpoint
}  // namespace astraea

// The one macro production code uses.
#define ASTRAEA_FAILPOINT(site) ::astraea::failpoint::MaybeHit(site)

#endif  // SRC_UTIL_FAILPOINT_H_
