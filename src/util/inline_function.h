// InlineFunction: a move-only std::function<void()> replacement whose small
// closures live in a fixed inline buffer instead of on the heap.
//
// The simulator schedules hundreds of millions of events per run; with
// std::function every closure larger than the library's tiny SBO (16 bytes on
// libstdc++ — smaller than a captured weak handle) costs a malloc/free pair on
// the hottest path in the repo. All simulator closures capture at most a few
// pointers and integers, so a 48-byte inline buffer erases those allocations
// entirely; oversized callables transparently fall back to the heap.

#ifndef SRC_UTIL_INLINE_FUNCTION_H_
#define SRC_UTIL_INLINE_FUNCTION_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace astraea {

template <size_t kInlineBytes = 48>
class InlineFunction {
 public:
  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      vt_ = &InlineOps<D>::vtable;
    } else {
      *reinterpret_cast<D**>(buf_) = new D(std::forward<F>(fn));
      vt_ = &HeapOps<D>::vtable;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  void operator()() { vt_->invoke(buf_); }

  explicit operator bool() const { return vt_ != nullptr; }

 private:
  struct VTable {
    void (*invoke)(void*);
    // Move-constructs into raw `dst` storage and destroys the `src` object.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename D>
  struct InlineOps {
    static void Invoke(void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); }
    static void Relocate(void* dst, void* src) {
      D* s = std::launder(reinterpret_cast<D*>(src));
      ::new (dst) D(std::move(*s));
      s->~D();
    }
    static void Destroy(void* p) { std::launder(reinterpret_cast<D*>(p))->~D(); }
    static constexpr VTable vtable{&Invoke, &Relocate, &Destroy};
  };

  template <typename D>
  struct HeapOps {
    static D* Ptr(void* p) { return *reinterpret_cast<D**>(p); }
    static void Invoke(void* p) { (*Ptr(p))(); }
    static void Relocate(void* dst, void* src) {
      // The heap object itself does not move; only the pointer does.
      std::memcpy(dst, src, sizeof(D*));
    }
    static void Destroy(void* p) { delete Ptr(p); }
    static constexpr VTable vtable{&Invoke, &Relocate, &Destroy};
  };

  void MoveFrom(InlineFunction& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  void Reset() {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

}  // namespace astraea

#endif  // SRC_UTIL_INLINE_FUNCTION_H_
