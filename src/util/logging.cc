#include "src/util/logging.h"

#include <cstring>

namespace astraea {

namespace {

LogLevel ParseEnvLevel() {
  const char* env = std::getenv("ASTRAEA_LOG");
  if (env == nullptr) {
    return LogLevel::kWarning;
  }
  if (std::strcmp(env, "debug") == 0) {
    return LogLevel::kDebug;
  }
  if (std::strcmp(env, "info") == 0) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(env, "error") == 0) {
    return LogLevel::kError;
  }
  return LogLevel::kWarning;
}

LogLevel g_level = ParseEnvLevel();

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel GlobalLogLevel() { return g_level; }
void SetGlobalLogLevel(LogLevel level) { g_level = level; }

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelName(level) << " " << (base != nullptr ? base + 1 : file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  (void)level_;
}

}  // namespace astraea
