// Minimal leveled logging. Defaults to WARNING so simulations stay quiet;
// set ASTRAEA_LOG=info|debug for more. Not thread-safe by design: the
// simulator and trainer are single-threaded event loops.

#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace astraea {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level (initialized from ASTRAEA_LOG on first use).
LogLevel GlobalLogLevel();
void SetGlobalLogLevel(LogLevel level);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace astraea

#define ASTRAEA_LOG(level)                                                     \
  if (::astraea::LogLevel::k##level < ::astraea::GlobalLogLevel()) {           \
  } else                                                                       \
    ::astraea::LogMessage(::astraea::LogLevel::k##level, __FILE__, __LINE__).stream()

// Fatal invariant check, active in all build modes. The simulator relies on
// these to catch conservation violations early in development.
#define ASTRAEA_CHECK(cond)                                                    \
  do {                                                                         \
    if (!(cond)) {                                                             \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__, __LINE__, #cond); \
      std::abort();                                                            \
    }                                                                          \
  } while (0)

#endif  // SRC_UTIL_LOGGING_H_
