#include "src/util/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace astraea {

// ----------------------------------------------------------------- Counter

size_t Counter::ThreadSlot() {
  // Distinct threads get consecutive slots; with more than kCounterShards
  // live threads some share a cell, which is still correct (atomic adds),
  // just occasionally contended.
  static std::atomic<size_t> next{0};
  thread_local const size_t slot = next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return slot;
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Cell& c : cells_) {
    total += c.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Cell& c : cells_) {
    c.v.store(0, std::memory_order_relaxed);
  }
}

// ------------------------------------------------------------------- Gauge

void Gauge::Add(double delta) {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

// --------------------------------------------------------------- Histogram

int Histogram::BucketFor(double v) {
  if (!(v > 0.0)) {
    return 0;  // zero, negatives and NaN all land in the floor bucket
  }
  const int e = std::ilogb(v);  // floor(log2(v)) for normal doubles
  // Values exactly on a power of two belong to the lower bucket (upper bound
  // is inclusive), so bump only when v is strictly above 2^e.
  const int adj = (std::exp2(e) < v) ? 1 : 0;
  return std::clamp(e + adj + kZeroExponent + 1, 0, kBuckets - 1);
}

double Histogram::BucketUpperBound(int b) { return std::exp2(b - kZeroExponent - 1); }

void Histogram::Observe(double v) {
  buckets_[static_cast<size_t>(BucketFor(v))].fetch_add(1, std::memory_order_relaxed);
  const uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
  if (n == 0) {
    // First observation seeds min/max; racing observers fix it up below.
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  double mn = min_.load(std::memory_order_relaxed);
  while (v < mn && !min_.compare_exchange_weak(mn, v, std::memory_order_relaxed)) {
  }
  double mx = max_.load(std::memory_order_relaxed);
  while (v > mx && !max_.compare_exchange_weak(mx, v, std::memory_order_relaxed)) {
  }
}

double Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }
double Histogram::Min() const { return min_.load(std::memory_order_relaxed); }
double Histogram::Max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::Mean() const {
  const uint64_t n = Count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

double Histogram::Quantile(double q) const {
  const uint64_t n = Count();
  if (n == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n - 1));
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
    if (seen > rank) {
      // Clip the coarse bucket bound to the observed extremes so single-value
      // histograms report the value itself rather than the next power of two.
      return std::clamp(BucketUpperBound(b), Min(), Max());
    }
  }
  return Max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------- Registry

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

namespace {

// Compact numeric rendering that round-trips and never emits bare "nan"/"inf"
// (invalid JSON); metrics should never produce those, but a sink must not be
// corrupted if one does.
void AppendNumber(std::ostringstream* os, double v) {
  if (!std::isfinite(v)) {
    *os << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  *os << buf;
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{";
  bool first = true;
  auto sep = [&] {
    if (!first) {
      os << ",";
    }
    first = false;
  };
  for (const auto& [name, c] : counters_) {
    sep();
    os << "\"" << name << "\":{\"type\":\"counter\",\"value\":" << c->Value() << "}";
  }
  for (const auto& [name, g] : gauges_) {
    sep();
    os << "\"" << name << "\":{\"type\":\"gauge\",\"value\":";
    AppendNumber(&os, g->Value());
    os << "}";
  }
  for (const auto& [name, h] : histograms_) {
    sep();
    os << "\"" << name << "\":{\"type\":\"histogram\",\"count\":" << h->Count() << ",\"sum\":";
    AppendNumber(&os, h->Sum());
    os << ",\"min\":";
    AppendNumber(&os, h->Min());
    os << ",\"max\":";
    AppendNumber(&os, h->Max());
    os << ",\"mean\":";
    AppendNumber(&os, h->Mean());
    os << ",\"p50\":";
    AppendNumber(&os, h->Quantile(0.50));
    os << ",\"p95\":";
    AppendNumber(&os, h->Quantile(0.95));
    os << ",\"p99\":";
    AppendNumber(&os, h->Quantile(0.99));
    os << "}";
  }
  os << "}";
  return os.str();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    c->Reset();
  }
  for (auto& [name, g] : gauges_) {
    g->Reset();
  }
  for (auto& [name, h] : histograms_) {
    h->Reset();
  }
}

}  // namespace astraea
