// Process-wide metrics registry: named counters, gauges and histograms that
// any subsystem (learner, inference service, benches, tools) can bump without
// owning plumbing to a sink.
//
// Design:
//  * Counters are sharded over cache-line-padded relaxed atomics indexed by a
//    per-thread slot, so the hot path is a single uncontended fetch_add
//    (lock-free; threads only collide when more than kCounterShards of them
//    hash to the same cell). Shards are merged on scrape.
//  * Gauges are a single atomic double (last-write-wins set, CAS add).
//  * Histograms bucket observations on a log2 scale (atomic bucket counts)
//    and track count/sum/min/max, giving O(1) lock-free Observe() and
//    bucket-resolution quantile estimates on scrape.
//  * The registry itself takes a mutex only on name lookup and scrape; call
//    sites cache the returned reference (stable for process lifetime).
//
// Export: MetricsRegistry::ToJson() renders every metric as one JSON object,
// suitable for a JSONL line per scrape (astraea_train --metrics-out).

#ifndef SRC_UTIL_METRICS_H_
#define SRC_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace astraea {

// Monotonically increasing integer metric.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    cells_[ThreadSlot()].v.fetch_add(n, std::memory_order_relaxed);
  }
  // Merged total across all thread shards.
  uint64_t Value() const;
  void Reset();

 private:
  static constexpr size_t kCounterShards = 16;
  static size_t ThreadSlot();

  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kCounterShards> cells_{};
};

// Point-in-time double metric.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Log2-bucketed distribution of nonnegative observations. Bucket b holds
// values in (2^(b-kZeroExponent-1), 2^(b-kZeroExponent)]; bucket 0 holds
// everything <= 2^-kZeroExponent (including zero), so the useful range spans
// ~1e-9 .. ~1e9 in units of the caller's choosing.
class Histogram {
 public:
  void Observe(double v);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;
  double Min() const;  // 0 when empty
  double Max() const;  // 0 when empty
  double Mean() const;
  // Bucket-resolution quantile estimate (upper bound of the bucket containing
  // the q-th observation), q in [0, 1]. 0 when empty.
  double Quantile(double q) const;
  void Reset();

 private:
  static constexpr int kBuckets = 64;
  static constexpr int kZeroExponent = 31;  // bucket 0 covers <= 2^-31
  static int BucketFor(double v);
  static double BucketUpperBound(int b);

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

// Name -> metric registry. References returned by Get* are stable for the
// lifetime of the registry; the intended pattern is to look up once and cache.
class MetricsRegistry {
 public:
  // The process-wide instance used by production code. Tests may construct
  // their own registries for isolation.
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  // One JSON object with every registered metric, e.g.
  //   {"train.episodes":{"type":"counter","value":12}, ...}
  // Histograms render count/sum/min/max/mean and p50/p95/p99 estimates.
  std::string ToJson() const;

  // Zeroes every metric value (registrations and references stay valid).
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace astraea

#endif  // SRC_UTIL_METRICS_H_
