// Deterministic random number generation.
//
// Every stochastic component (flow generator, random loss, exploration noise,
// weight init) owns an Rng forked from a scenario-level seed, so results are
// reproducible and components do not perturb each other's streams.

#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <sstream>

#include "src/util/serialization.h"

namespace astraea {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Forks an independent stream; the child is decorrelated from the parent by
  // hashing the parent's next output with a distinct constant.
  Rng Fork() {
    const uint64_t s = engine_() * 0x9E3779B97F4A7C15ULL + 0xBF58476D1CE4E5B9ULL;
    return Rng(s);
  }

  // Stateless splittable seed derivation (SplitMix64 finalizer): maps a
  // (stream, index) pair to a decorrelated 64-bit seed. Unlike additive bases
  // (stream_base + index), two distinct streams can never collide however
  // large the index grows, and the result does not depend on call order — the
  // property the parallel experiment harness relies on for rep seeds.
  static uint64_t DeriveSeed(uint64_t stream, uint64_t index) {
    uint64_t z = stream + 0x9E3779B97F4A7C15ULL * (index + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  double Uniform() { return uniform_(engine_); }  // [0, 1)
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  // Uniform integer in [lo, hi], inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(engine_);
  }

  double Normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  // Exponential inter-arrival sample with the given mean (for Poisson flows).
  double Exponential(double mean) {
    std::exponential_distribution<double> d(1.0 / mean);
    return d(engine_);
  }

  bool Bernoulli(double p) { return Uniform() < p; }

  std::mt19937_64& engine() { return engine_; }

  // Full stream-state capture for deterministic resume: serializes the
  // mt19937_64 engine and the cached uniform distribution via their standard
  // text representations (exact — engine state is integral).
  void SaveState(BinaryWriter* writer) const {
    std::ostringstream os;
    os << engine_ << ' ' << uniform_;
    writer->WriteString(os.str());
  }

  void LoadState(BinaryReader* reader) {
    std::istringstream is(reader->ReadString());
    is >> engine_ >> uniform_;
    if (!is) {
      throw SerializationError("corrupt RNG state in checkpoint");
    }
  }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
};

}  // namespace astraea

#endif  // SRC_UTIL_RNG_H_
