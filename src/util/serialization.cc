#include "src/util/serialization.h"

#include <istream>
#include <ostream>

namespace astraea {

BinaryWriter::BinaryWriter(const std::string& path)
    : file_(path, std::ios::binary), out_(&file_) {
  if (!file_) {
    throw SerializationError("cannot open for writing: " + path);
  }
}

BinaryWriter::BinaryWriter(std::ostream* out) : out_(out) {
  if (out_ == nullptr || !out_->good()) {
    throw SerializationError("bad output stream for BinaryWriter");
  }
}

void BinaryWriter::WriteBytes(const void* data, size_t n) {
  out_->write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  if (!out_->good()) {
    throw SerializationError("checkpoint write failed (disk full or closed stream?)");
  }
}

void BinaryWriter::WriteU32(uint32_t v) { WriteBytes(&v, sizeof(v)); }
void BinaryWriter::WriteU64(uint64_t v) { WriteBytes(&v, sizeof(v)); }
void BinaryWriter::WriteF32(float v) { WriteBytes(&v, sizeof(v)); }
void BinaryWriter::WriteF64(double v) { WriteBytes(&v, sizeof(v)); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  if (!s.empty()) {
    WriteBytes(s.data(), s.size());
  }
}

void BinaryWriter::WriteFloatVec(const std::vector<float>& v) {
  WriteU64(v.size());
  if (!v.empty()) {
    WriteBytes(v.data(), v.size() * sizeof(float));
  }
}

void BinaryWriter::WriteDoubleVec(const std::vector<double>& v) {
  WriteU64(v.size());
  if (!v.empty()) {
    WriteBytes(v.data(), v.size() * sizeof(double));
  }
}

void BinaryWriter::Flush() {
  out_->flush();
  if (!out_->good()) {
    throw SerializationError("checkpoint flush failed (disk full?)");
  }
}

namespace {

uint64_t StreamSize(std::istream* in) {
  const std::streampos cur = in->tellg();
  in->seekg(0, std::ios::end);
  const std::streampos end = in->tellg();
  in->seekg(cur == std::streampos(-1) ? std::streampos(0) : cur);
  if (end == std::streampos(-1) || !in->good()) {
    throw SerializationError("cannot determine checkpoint size (unseekable stream)");
  }
  return static_cast<uint64_t>(end);
}

}  // namespace

BinaryReader::BinaryReader(const std::string& path)
    : file_(path, std::ios::binary), in_(&file_) {
  if (!file_) {
    throw SerializationError("cannot open for reading: " + path);
  }
  size_ = StreamSize(in_);
}

BinaryReader::BinaryReader(std::istream* in) : in_(in) {
  if (in_ == nullptr || !in_->good()) {
    throw SerializationError("bad input stream for BinaryReader");
  }
  size_ = StreamSize(in_);
}

uint64_t BinaryReader::remaining() {
  const std::streampos cur = in_->tellg();
  if (cur == std::streampos(-1)) {
    return 0;
  }
  const uint64_t offset = static_cast<uint64_t>(cur);
  return offset >= size_ ? 0 : size_ - offset;
}

void BinaryReader::CheckAvailable(uint64_t count, uint64_t elem_size, const char* what) {
  // Divide instead of multiplying so a forged 64-bit count cannot overflow.
  if (count > remaining() / elem_size) {
    throw SerializationError(std::string("checkpoint length prefix for ") + what +
                             " exceeds remaining file size (corrupt checkpoint)");
  }
}

template <typename T>
T BinaryReader::ReadPod() {
  T v{};
  in_->read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in_->good()) {
    throw SerializationError("unexpected end of checkpoint");
  }
  return v;
}

uint32_t BinaryReader::ReadU32() { return ReadPod<uint32_t>(); }
uint64_t BinaryReader::ReadU64() { return ReadPod<uint64_t>(); }
float BinaryReader::ReadF32() { return ReadPod<float>(); }
double BinaryReader::ReadF64() { return ReadPod<double>(); }

std::string BinaryReader::ReadString() {
  const uint64_t n = ReadU64();
  CheckAvailable(n, 1, "string");
  std::string s(n, '\0');
  if (n != 0) {
    in_->read(s.data(), static_cast<std::streamsize>(n));
    if (!in_->good()) {
      throw SerializationError("unexpected end of checkpoint");
    }
  }
  return s;
}

std::vector<float> BinaryReader::ReadFloatVec() {
  const uint64_t n = ReadU64();
  CheckAvailable(n, sizeof(float), "float vector");
  std::vector<float> v(n);
  if (n != 0) {
    in_->read(reinterpret_cast<char*>(v.data()),
              static_cast<std::streamsize>(n * sizeof(float)));
    if (!in_->good()) {
      throw SerializationError("unexpected end of checkpoint");
    }
  }
  return v;
}

std::vector<double> BinaryReader::ReadDoubleVec() {
  const uint64_t n = ReadU64();
  CheckAvailable(n, sizeof(double), "double vector");
  std::vector<double> v(n);
  if (n != 0) {
    in_->read(reinterpret_cast<char*>(v.data()),
              static_cast<std::streamsize>(n * sizeof(double)));
    if (!in_->good()) {
      throw SerializationError("unexpected end of checkpoint");
    }
  }
  return v;
}

}  // namespace astraea
