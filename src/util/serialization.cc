#include "src/util/serialization.h"

namespace astraea {

BinaryWriter::BinaryWriter(const std::string& path) : out_(path, std::ios::binary) {
  if (!out_) {
    throw SerializationError("cannot open for writing: " + path);
  }
}

void BinaryWriter::WriteU32(uint32_t v) { out_.write(reinterpret_cast<const char*>(&v), sizeof(v)); }
void BinaryWriter::WriteU64(uint64_t v) { out_.write(reinterpret_cast<const char*>(&v), sizeof(v)); }
void BinaryWriter::WriteF32(float v) { out_.write(reinterpret_cast<const char*>(&v), sizeof(v)); }
void BinaryWriter::WriteF64(double v) { out_.write(reinterpret_cast<const char*>(&v), sizeof(v)); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  out_.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void BinaryWriter::WriteFloatVec(const std::vector<float>& v) {
  WriteU64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(float)));
}

void BinaryWriter::WriteDoubleVec(const std::vector<double>& v) {
  WriteU64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(double)));
}

BinaryReader::BinaryReader(const std::string& path) : in_(path, std::ios::binary) {
  if (!in_) {
    throw SerializationError("cannot open for reading: " + path);
  }
}

template <typename T>
T BinaryReader::ReadPod() {
  T v{};
  in_.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in_) {
    throw SerializationError("unexpected end of checkpoint");
  }
  return v;
}

uint32_t BinaryReader::ReadU32() { return ReadPod<uint32_t>(); }
uint64_t BinaryReader::ReadU64() { return ReadPod<uint64_t>(); }
float BinaryReader::ReadF32() { return ReadPod<float>(); }
double BinaryReader::ReadF64() { return ReadPod<double>(); }

std::string BinaryReader::ReadString() {
  const uint64_t n = ReadU64();
  if (n > (1ULL << 30)) {
    throw SerializationError("implausible string length in checkpoint");
  }
  std::string s(n, '\0');
  in_.read(s.data(), static_cast<std::streamsize>(n));
  if (!in_) {
    throw SerializationError("unexpected end of checkpoint");
  }
  return s;
}

std::vector<float> BinaryReader::ReadFloatVec() {
  const uint64_t n = ReadU64();
  if (n > (1ULL << 30)) {
    throw SerializationError("implausible vector length in checkpoint");
  }
  std::vector<float> v(n);
  in_.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(n * sizeof(float)));
  if (!in_) {
    throw SerializationError("unexpected end of checkpoint");
  }
  return v;
}

std::vector<double> BinaryReader::ReadDoubleVec() {
  const uint64_t n = ReadU64();
  if (n > (1ULL << 30)) {
    throw SerializationError("implausible vector length in checkpoint");
  }
  std::vector<double> v(n);
  in_.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(n * sizeof(double)));
  if (!in_) {
    throw SerializationError("unexpected end of checkpoint");
  }
  return v;
}

}  // namespace astraea
