// Tiny binary (de)serialization for model checkpoints.
//
// Format: little-endian PODs written in call order, preceded by a caller
// supplied magic + version pair so checkpoints fail loudly when the layout
// changes. No compression, no alignment games — checkpoints are small (a few
// hundred KB of float32 weights, plus the replay buffer for full training
// state).
//
// Error discipline: every Write* throws SerializationError as soon as the
// underlying stream goes bad (disk full, closed fd), and every Read* throws
// on EOF, on corrupt length prefixes, and on length prefixes that exceed the
// bytes actually remaining in the file — a corrupted checkpoint can never be
// silently truncated on write nor silently misread (or turned into a multi-GB
// allocation) on load.

#ifndef SRC_UTIL_SERIALIZATION_H_
#define SRC_UTIL_SERIALIZATION_H_

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

namespace astraea {

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);
  // Writes into a caller-owned stream (e.g. the in-memory payload buffer of
  // CheckpointWriter). The stream must outlive the writer.
  explicit BinaryWriter(std::ostream* out);

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteF32(float v);
  void WriteF64(double v);
  void WriteString(const std::string& s);
  void WriteFloatVec(const std::vector<float>& v);
  void WriteDoubleVec(const std::vector<double>& v);

  // Flushes buffered bytes to the OS and throws SerializationError if the
  // stream is not healthy afterwards. File-backed savers must call this (or
  // rely on a throwing Write*) before declaring a checkpoint durable:
  // ofstream buffers internally, so a disk-full condition may only surface
  // at flush time.
  void Flush();

  bool ok() const { return out_->good(); }

 private:
  void WriteBytes(const void* data, size_t n);

  std::ofstream file_;       // used by the path constructor
  std::ostream* out_;        // always valid; points at file_ or a caller stream
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);
  // Reads from a caller-owned seekable stream (e.g. a checkpoint payload
  // held in memory). The stream must outlive the reader.
  explicit BinaryReader(std::istream* in);

  uint32_t ReadU32();
  uint64_t ReadU64();
  float ReadF32();
  double ReadF64();
  std::string ReadString();
  std::vector<float> ReadFloatVec();
  std::vector<double> ReadDoubleVec();

  // Bytes left between the read cursor and end-of-stream. Length prefixes
  // are validated against this before any allocation.
  uint64_t remaining();

  bool ok() const { return in_->good(); }

 private:
  template <typename T>
  T ReadPod();
  // Throws unless at least `count * elem_size` bytes remain (overflow-safe).
  void CheckAvailable(uint64_t count, uint64_t elem_size, const char* what);

  std::ifstream file_;       // used by the path constructor
  std::istream* in_;         // always valid; points at file_ or a caller stream
  uint64_t size_ = 0;        // total stream size in bytes
};

// Thrown on checkpoint corruption / magic mismatch / failed writes.
class SerializationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace astraea

#endif  // SRC_UTIL_SERIALIZATION_H_
