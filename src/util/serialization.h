// Tiny binary (de)serialization for model checkpoints.
//
// Format: little-endian PODs written in call order, preceded by a caller
// supplied magic + version pair so checkpoints fail loudly when the layout
// changes. No compression, no alignment games — checkpoints are small (a few
// hundred KB of float32 weights).

#ifndef SRC_UTIL_SERIALIZATION_H_
#define SRC_UTIL_SERIALIZATION_H_

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace astraea {

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteF32(float v);
  void WriteF64(double v);
  void WriteString(const std::string& s);
  void WriteFloatVec(const std::vector<float>& v);
  void WriteDoubleVec(const std::vector<double>& v);

  bool ok() const { return out_.good(); }

 private:
  std::ofstream out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  uint32_t ReadU32();
  uint64_t ReadU64();
  float ReadF32();
  double ReadF64();
  std::string ReadString();
  std::vector<float> ReadFloatVec();
  std::vector<double> ReadDoubleVec();

  bool ok() const { return in_.good(); }

 private:
  template <typename T>
  T ReadPod();

  std::ifstream in_;
};

// Thrown on checkpoint corruption / magic mismatch.
class SerializationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace astraea

#endif  // SRC_UTIL_SERIALIZATION_H_
