#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace astraea {

double JainIndex(std::span<const double> values) {
  if (values.empty()) {
    return 1.0;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq <= 0.0) {
    return 1.0;
  }
  const double n = static_cast<double>(values.size());
  return (sum * sum) / (n * sum_sq);
}

double Mean(std::span<const double> values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double StdDev(std::span<const double> values) {
  if (values.size() < 2) {
    return 0.0;
  }
  const double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) {
    acc += (v - mean) * (v - mean);
  }
  return std::sqrt(acc / static_cast<double>(values.size()));
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  // Out-of-range p saturates at the extremes; without the clamp a negative
  // rank cast to size_t is undefined behavior (and p > 100 reads past the end).
  p = std::clamp(p, 0.0, 100.0);
  std::sort(values.begin(), values.end());
  const double rank = (p / 100.0) * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::Fraction(double x) const {
  if (sorted_.empty()) {
    return 0.0;
  }
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::Quantile(double q) const {
  if (sorted_.empty()) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

void TimeSeries::Add(TimeNs t, double v) { points_.emplace_back(t, v); }

double TimeSeries::MeanOver(TimeNs begin, TimeNs end) const {
  double sum = 0.0;
  size_t n = 0;
  for (const auto& [t, v] : points_) {
    if (t >= begin && t < end) {
      sum += v;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double TimeSeries::StdDevOver(TimeNs begin, TimeNs end) const {
  std::vector<double> window;
  for (const auto& [t, v] : points_) {
    if (t >= begin && t < end) {
      window.push_back(v);
    }
  }
  return StdDev(window);
}

double TimeSeries::ValueAt(TimeNs t) const {
  double last = 0.0;
  for (const auto& [pt, v] : points_) {
    if (pt > t) {
      break;
    }
    last = v;
  }
  return last;
}

TimeNs TimeSeries::FirstStableEntry(TimeNs from, double target, double tol, TimeNs hold) const {
  const double lo = target * (1.0 - tol);
  const double hi = target * (1.0 + tol);
  TimeNs candidate = -1;
  for (const auto& [t, v] : points_) {
    if (t < from) {
      continue;
    }
    const bool inside = (v >= lo && v <= hi);
    if (inside) {
      if (candidate < 0) {
        candidate = t;
      }
      if (t - candidate >= hold) {
        return candidate;
      }
    } else {
      candidate = -1;
    }
  }
  // A run that stays inside until the end of the series also counts as
  // converged, even if shorter than `hold` (the flow simply ended).
  return candidate;
}

}  // namespace astraea
