// Statistics helpers used by the reward block, the benchmark harness and tests:
// Jain's fairness index, running moments, percentiles, CDFs and time-weighted
// averages over (timestamp, value) series.

#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "src/util/time.h"

namespace astraea {

// Jain's fairness index: (sum x)^2 / (n * sum x^2). Returns 1.0 for an empty or
// all-zero allocation (degenerate but conventional: nothing is unfair about
// nothing).
double JainIndex(std::span<const double> values);

double Mean(std::span<const double> values);
double StdDev(std::span<const double> values);  // population stddev

// Linear-interpolation percentile, p in [0, 100]. Input need not be sorted.
double Percentile(std::vector<double> values, double p);

// Welford online mean/variance accumulator.
class RunningStat {
 public:
  void Add(double x);
  size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Empirical CDF: sorted samples with query helpers. Used by the Fig. 7 bench.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  // Fraction of samples <= x.
  double Fraction(double x) const;
  // Value at quantile q in [0, 1].
  double Quantile(double q) const;
  size_t size() const { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
};

// A (time, value) series, e.g. a flow's throughput sampled per MTP. Provides
// the windowed statistics the evaluation section needs (convergence time,
// post-convergence stability, time-sliced Jain indices).
class TimeSeries {
 public:
  void Add(TimeNs t, double v);

  const std::vector<std::pair<TimeNs, double>>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  // Mean of samples with t in [begin, end).
  double MeanOver(TimeNs begin, TimeNs end) const;
  // Population stddev of samples with t in [begin, end).
  double StdDevOver(TimeNs begin, TimeNs end) const;
  // Value of the last sample at or before t (0.0 if none).
  double ValueAt(TimeNs t) const;

  // First time >= `from` at which every subsequent sample within `hold` stays
  // inside [target*(1-tol), target*(1+tol)]. Returns -1 if never. This is the
  // paper's convergence-time definition (rate within +-10% of fair share).
  TimeNs FirstStableEntry(TimeNs from, double target, double tol, TimeNs hold) const;

 private:
  std::vector<std::pair<TimeNs, double>> points_;  // sorted by construction
};

}  // namespace astraea

#endif  // SRC_UTIL_STATS_H_
