// A deliberately simple fixed-size worker pool (no work stealing): one shared
// FIFO queue, a mutex and two condition variables. The experiment harness fans
// independent scenario reps out over it; each rep carries its own
// deterministically derived seed (see Rng::DeriveSeed), so results are
// identical regardless of worker count or scheduling order.
//
// ParallelMap is the only pattern the harness needs: run fn(0..n-1), collect
// results in index order. With `workers <= 1` (or n == 1) it runs inline on
// the calling thread, which is what the determinism tests compare against.

#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace astraea {

class ThreadPool {
 public:
  // `workers` = 0 picks DefaultWorkerCount().
  explicit ThreadPool(size_t workers = 0) {
    if (workers == 0) {
      workers = DefaultWorkerCount();
    }
    threads_.reserve(workers);
    for (size_t i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stopping_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& t : threads_) {
      t.join();
    }
  }

  size_t worker_count() const { return threads_.size(); }

  void Submit(std::function<void()> fn) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_.push_back(std::move(fn));
      ++outstanding_;
    }
    work_ready_.notify_one();
  }

  // Blocks until every submitted task has finished executing.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return outstanding_ == 0; });
  }

  // Worker-count policy: the ASTRAEA_WORKERS environment variable when set to
  // a positive integer, otherwise std::thread::hardware_concurrency().
  static size_t DefaultWorkerCount() {
    if (const char* env = std::getenv("ASTRAEA_WORKERS")) {
      const long v = std::atol(env);
      if (v > 0) {
        return static_cast<size_t>(v);
      }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
          return;  // stopping_ and drained
        }
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (--outstanding_ == 0) {
          all_done_.notify_all();
        }
      }
    }
  }

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t outstanding_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

// Runs fn(i) for every i in [0, n) and returns the results in index order —
// the caller's aggregation is therefore independent of scheduling. `workers`
// = 0 uses ThreadPool::DefaultWorkerCount(); 1 runs inline with no threads.
template <typename Fn>
auto ParallelMap(size_t n, Fn&& fn, size_t workers = 0)
    -> std::vector<decltype(fn(size_t{0}))> {
  using R = decltype(fn(size_t{0}));
  std::vector<R> results(n);
  if (workers == 0) {
    workers = ThreadPool::DefaultWorkerCount();
  }
  if (workers <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      results[i] = fn(i);
    }
    return results;
  }
  ThreadPool pool(std::min(workers, n));
  for (size_t i = 0; i < n; ++i) {
    pool.Submit([&results, &fn, i] { results[i] = fn(i); });
  }
  pool.Wait();
  return results;
}

}  // namespace astraea

#endif  // SRC_UTIL_THREAD_POOL_H_
