#include "src/util/time.h"

#include <cstdio>

namespace astraea {

std::string FormatTime(TimeNs t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", ToSeconds(t));
  return buf;
}

}  // namespace astraea
