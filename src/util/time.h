// Time and rate value types shared across the simulator, agents and benches.
//
// The simulator is a deterministic discrete-event system: all times are integer
// nanoseconds since simulation start. Using integers (rather than doubles)
// guarantees reproducible event ordering regardless of accumulated rounding.

#ifndef SRC_UTIL_TIME_H_
#define SRC_UTIL_TIME_H_

#include <cstdint>
#include <string>

namespace astraea {

// Simulation timestamp / duration, in nanoseconds. A plain alias keeps
// arithmetic natural; helpers below build values from human units.
using TimeNs = int64_t;

constexpr TimeNs kNanosPerMicro = 1'000;
constexpr TimeNs kNanosPerMilli = 1'000'000;
constexpr TimeNs kNanosPerSec = 1'000'000'000;

constexpr TimeNs Nanoseconds(int64_t ns) { return ns; }
constexpr TimeNs Microseconds(int64_t us) { return us * kNanosPerMicro; }
constexpr TimeNs Milliseconds(int64_t ms) { return ms * kNanosPerMilli; }
constexpr TimeNs Seconds(double s) { return static_cast<TimeNs>(s * static_cast<double>(kNanosPerSec)); }

constexpr double ToSeconds(TimeNs t) { return static_cast<double>(t) / static_cast<double>(kNanosPerSec); }
constexpr double ToMillis(TimeNs t) { return static_cast<double>(t) / static_cast<double>(kNanosPerMilli); }

// Link / sending rates are doubles in bits per second. They are inputs to the
// simulator, never used for event ordering, so floating point is fine.
using RateBps = double;

constexpr RateBps Kbps(double v) { return v * 1e3; }
constexpr RateBps Mbps(double v) { return v * 1e6; }
constexpr RateBps Gbps(double v) { return v * 1e9; }

constexpr double ToMbps(RateBps r) { return r / 1e6; }

// Transmission (serialization) delay of `bytes` at `rate`. Rounds up to a whole
// nanosecond so zero-length service never happens for nonzero payloads.
constexpr TimeNs TransmissionDelay(uint64_t bytes, RateBps rate) {
  const double seconds = static_cast<double>(bytes) * 8.0 / rate;
  const double ns = seconds * static_cast<double>(kNanosPerSec);
  const TimeNs whole = static_cast<TimeNs>(ns);
  return (static_cast<double>(whole) < ns) ? whole + 1 : whole;
}

// Bandwidth-delay product in bytes for a rate and a round-trip time.
constexpr uint64_t BdpBytes(RateBps rate, TimeNs rtt) {
  return static_cast<uint64_t>(rate * ToSeconds(rtt) / 8.0);
}

// Formats a time as "12.345s" (benchmark output helper).
std::string FormatTime(TimeNs t);

}  // namespace astraea

#endif  // SRC_UTIL_TIME_H_
