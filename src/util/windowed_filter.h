// Sliding-window min/max filter (monotonic deque), used by BBR's bandwidth
// and RTT filters and Copa's standing-RTT estimator.

#ifndef SRC_UTIL_WINDOWED_FILTER_H_
#define SRC_UTIL_WINDOWED_FILTER_H_

#include <deque>
#include <utility>

#include "src/util/time.h"

namespace astraea {

// Compare = std::less<T> keeps the window minimum, std::greater<T> the maximum.
template <typename T, typename Compare>
class WindowedFilter {
 public:
  explicit WindowedFilter(TimeNs window) : window_(window) {}

  void Update(TimeNs now, T value) {
    const Compare better;
    while (!samples_.empty() && !better(samples_.back().second, value)) {
      samples_.pop_back();
    }
    samples_.emplace_back(now, value);
    Expire(now);
  }

  // Best (min or max) value within the window; `fallback` when empty.
  T Get(TimeNs now, T fallback) {
    Expire(now);
    return samples_.empty() ? fallback : samples_.front().second;
  }

  bool empty() const { return samples_.empty(); }
  void set_window(TimeNs window) { window_ = window; }
  void Clear() { samples_.clear(); }

 private:
  void Expire(TimeNs now) {
    while (!samples_.empty() && samples_.front().first < now - window_) {
      samples_.pop_front();
    }
  }

  TimeNs window_;
  std::deque<std::pair<TimeNs, T>> samples_;
};

template <typename T>
using WindowedMin = WindowedFilter<T, std::less<T>>;
template <typename T>
using WindowedMax = WindowedFilter<T, std::greater<T>>;

}  // namespace astraea

#endif  // SRC_UTIL_WINDOWED_FILTER_H_
