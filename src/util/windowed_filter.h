// Sliding-window min/max filter (monotonic deque), used by BBR's bandwidth
// and RTT filters and Copa's standing-RTT estimator.

#ifndef SRC_UTIL_WINDOWED_FILTER_H_
#define SRC_UTIL_WINDOWED_FILTER_H_

#include <deque>
#include <utility>

#include "src/util/time.h"

namespace astraea {

// Compare = std::less<T> keeps the window minimum, std::greater<T> the maximum.
template <typename T, typename Compare>
class WindowedFilter {
 public:
  explicit WindowedFilter(TimeNs window) : window_(window) {}

  void Update(TimeNs now, T value) {
    const Compare better;
    while (!samples_.empty() && !better(samples_.back().second, value)) {
      samples_.pop_back();
    }
    samples_.emplace_back(now, value);
    Expire(now);
  }

  // Best (min or max) value within the window; `fallback` when empty or when
  // every retained sample has aged out. Expires stale samples as a side
  // effect — use Peek from code that must not mutate the filter.
  T Get(TimeNs now, T fallback) {
    Expire(now);
    return samples_.empty() ? fallback : samples_.front().second;
  }

  // Same answer as Get (skips samples that Get would expire) without touching
  // the deque, so it is safe from const contexts — invariant checks,
  // accessors, logging.
  T Peek(TimeNs now, T fallback) const {
    for (const std::pair<TimeNs, T>& sample : samples_) {
      if (!Expired(sample.first, now)) {
        return sample.second;
      }
    }
    return fallback;
  }

  bool empty() const { return samples_.empty(); }
  void set_window(TimeNs window) { window_ = window; }
  void Clear() { samples_.clear(); }

 private:
  // A sample taken exactly `window_` ago is still in the window (strict <):
  // callers that Update and Get at a fixed cadence equal to the window would
  // otherwise see their freshest surviving sample flap out.
  bool Expired(TimeNs sample_time, TimeNs now) const { return sample_time < now - window_; }

  void Expire(TimeNs now) {
    while (!samples_.empty() && Expired(samples_.front().first, now)) {
      samples_.pop_front();
    }
  }

  TimeNs window_;
  std::deque<std::pair<TimeNs, T>> samples_;
};

template <typename T>
using WindowedMin = WindowedFilter<T, std::less<T>>;
template <typename T>
using WindowedMax = WindowedFilter<T, std::greater<T>>;

}  // namespace astraea

#endif  // SRC_UTIL_WINDOWED_FILTER_H_
