#include <gtest/gtest.h>

#include "src/core/astraea_controller.h"
#include "src/sim/network.h"

namespace astraea {
namespace {

std::shared_ptr<const Policy> Distilled() { return std::make_shared<DistilledPolicy>(); }

TEST(AstraeaControllerTest, StartsInSlowStart) {
  AstraeaController cc(Distilled());
  cc.OnFlowStart(0, 1500);
  EXPECT_TRUE(cc.in_slow_start());
  EXPECT_EQ(cc.cwnd_bytes(), 10u * 1500u);
}

TEST(AstraeaControllerTest, SlowStartGrowsPerAck) {
  AstraeaController cc(Distilled());
  cc.OnFlowStart(0, 1500);
  AckEvent ev;
  ev.now = Milliseconds(30);
  ev.rtt = Milliseconds(30);
  ev.srtt = Milliseconds(30);
  ev.min_rtt = Milliseconds(30);
  ev.acked_bytes = 1500;
  const uint64_t w0 = cc.cwnd_bytes();
  cc.OnAck(ev);
  EXPECT_EQ(cc.cwnd_bytes(), w0 + 1500);
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(AstraeaControllerTest, QueueingEndsSlowStart) {
  AstraeaController cc(Distilled());
  cc.OnFlowStart(0, 1500);
  AckEvent ev;
  ev.now = Milliseconds(30);
  ev.rtt = Milliseconds(40);  // >25% above the 30ms floor
  ev.srtt = Milliseconds(40);
  ev.min_rtt = Milliseconds(30);
  ev.acked_bytes = 1500;
  cc.OnAck(ev);
  EXPECT_FALSE(cc.in_slow_start());
}

TEST(AstraeaControllerTest, LossEndsSlowStartWithBackoff) {
  AstraeaController cc(Distilled());
  cc.OnFlowStart(0, 1500);
  const uint64_t w0 = cc.cwnd_bytes();
  LossEvent loss;
  loss.now = Milliseconds(10);
  loss.lost_bytes = 1500;
  cc.OnLoss(loss);
  EXPECT_FALSE(cc.in_slow_start());
  EXPECT_LT(cc.cwnd_bytes(), w0);
}

TEST(AstraeaControllerTest, AgentAppliesEq3PerMtp) {
  AstraeaController cc(Distilled());
  cc.OnFlowStart(0, 1500);
  // Leave slow start.
  LossEvent loss;
  loss.now = Milliseconds(10);
  cc.OnLoss(loss);
  const uint64_t w0 = cc.cwnd_bytes();

  MtpReport report;
  report.now = Milliseconds(300);  // outside the epoch-aligned drain window
  report.mtp = Milliseconds(30);
  report.thr_bps = Mbps(10);
  report.avg_rtt = Milliseconds(30);
  report.srtt = Milliseconds(30);
  report.min_rtt = Milliseconds(30);
  report.cwnd_bytes = w0;
  report.acked_packets = 10;
  cc.OnMtpTick(report);
  // Empty queue -> distilled action +1 -> cwnd * 1.025.
  EXPECT_NEAR(static_cast<double>(cc.cwnd_bytes()), w0 * 1.025, 2.0);
  EXPECT_DOUBLE_EQ(cc.last_action(), 1.0);
}

TEST(AstraeaControllerTest, ActionHookOverridesPolicy) {
  AstraeaController cc(Distilled());
  cc.set_action_hook([](const StateView&, double) { return -1.0; });
  cc.OnFlowStart(0, 1500);
  LossEvent loss;
  loss.now = Milliseconds(10);
  cc.OnLoss(loss);
  const uint64_t w0 = cc.cwnd_bytes();

  MtpReport report;
  report.now = Milliseconds(300);  // outside the epoch-aligned drain window
  report.mtp = Milliseconds(30);
  report.avg_rtt = Milliseconds(30);
  report.srtt = Milliseconds(30);
  report.min_rtt = Milliseconds(30);
  report.cwnd_bytes = w0;
  report.acked_packets = 10;
  cc.OnMtpTick(report);
  EXPECT_LT(cc.cwnd_bytes(), w0);
  EXPECT_DOUBLE_EQ(cc.last_action(), -1.0);
}

TEST(AstraeaControllerTest, DrainsOncePerEpochInAlignedWindow) {
  AstraeaHyperparameters hp;
  AstraeaController cc(Distilled(), hp);
  cc.OnFlowStart(0, 1500);
  LossEvent loss;
  loss.now = Milliseconds(10);
  cc.OnLoss(loss);

  MtpReport report;
  report.mtp = hp.mtp;
  report.avg_rtt = Milliseconds(60);
  report.srtt = Milliseconds(60);
  report.min_rtt = Milliseconds(30);
  report.cwnd_bytes = cc.cwnd_bytes();
  report.acked_packets = 10;

  int drain_starts = 0;
  bool was_draining = false;
  const int ticks = 200;  // 6s of MTPs = 2+ epochs
  for (int i = 1; i <= ticks; ++i) {
    report.now = hp.mtp * i;
    cc.OnMtpTick(report);
    if (cc.draining() && !was_draining) {
      ++drain_starts;
      // Drain starts must fall inside the epoch-aligned window.
      EXPECT_LT(report.now % hp.probe_epoch, hp.drain_window + hp.mtp);
    }
    was_draining = cc.draining();
  }
  // One drain per epoch boundary crossed (6s / 2.5s ~ 2-3 epochs).
  EXPECT_GE(drain_starts, 2);
  EXPECT_LE(drain_starts, 3);
}

// Regression for the last_min_refresh_ dead-state bug: the refresh timestamp
// was recorded on every near-floor ACK but never consulted, so the epoch
// drain fired even when the latency floor had just been re-anchored. With
// skip_drain_on_fresh_floor set, a flow whose floor was refreshed within the
// last epoch must not drain.
TEST(AstraeaControllerTest, FreshFloorSkipsEpochDrainWhenEnabled) {
  for (const bool skip : {false, true}) {
    AstraeaHyperparameters hp;
    hp.skip_drain_on_fresh_floor = skip;
    AstraeaController cc(Distilled(), hp);
    cc.OnFlowStart(0, 1500);
    LossEvent loss;
    loss.now = Milliseconds(10);
    cc.OnLoss(loss);

    // A near-floor RTT sample just before the epoch boundary re-anchors the
    // floor (rtt within 5%/2ms tolerance of min_rtt).
    AckEvent ack;
    ack.now = hp.probe_epoch - hp.mtp;
    ack.rtt = Milliseconds(30);
    ack.srtt = Milliseconds(30);
    ack.min_rtt = Milliseconds(30);
    ack.acked_bytes = 1500;
    cc.OnAck(ack);

    // First MTP tick inside the next epoch's drain window.
    MtpReport report;
    report.mtp = hp.mtp;
    report.now = hp.probe_epoch + hp.mtp;  // (now % epoch) = 30ms < 150ms window
    report.avg_rtt = Milliseconds(60);
    report.srtt = Milliseconds(60);
    report.min_rtt = Milliseconds(30);
    report.cwnd_bytes = cc.cwnd_bytes();
    report.acked_packets = 10;
    const uint64_t full_window = cc.cwnd_bytes();
    cc.OnMtpTick(report);
    if (skip) {
      EXPECT_FALSE(cc.draining());
      EXPECT_GE(cc.cwnd_bytes(), full_window * 17 / 20);
    } else {
      EXPECT_TRUE(cc.draining());
    }
  }
}

TEST(AstraeaControllerTest, StaleFloorStillDrainsWithSkipEnabled) {
  AstraeaHyperparameters hp;
  hp.skip_drain_on_fresh_floor = true;
  AstraeaController cc(Distilled(), hp);
  cc.OnFlowStart(0, 1500);
  LossEvent loss;
  loss.now = Milliseconds(10);
  cc.OnLoss(loss);

  // Floor refreshed early in flow life, then nothing near the floor for more
  // than an epoch: the drain must fire (that is the probe's whole purpose).
  AckEvent ack;
  ack.now = Milliseconds(40);
  ack.rtt = Milliseconds(30);
  ack.srtt = Milliseconds(30);
  ack.min_rtt = Milliseconds(30);
  ack.acked_bytes = 1500;
  cc.OnAck(ack);

  MtpReport report;
  report.mtp = hp.mtp;
  report.now = 2 * hp.probe_epoch + hp.mtp;
  report.avg_rtt = Milliseconds(60);
  report.srtt = Milliseconds(60);
  report.min_rtt = Milliseconds(30);
  report.cwnd_bytes = cc.cwnd_bytes();
  report.acked_packets = 10;
  cc.OnMtpTick(report);
  EXPECT_TRUE(cc.draining());
}

TEST(AstraeaControllerTest, DrainShrinksWindowAndRecovers) {
  AstraeaHyperparameters hp;
  AstraeaController cc(Distilled(), hp);
  cc.OnFlowStart(0, 1500);
  LossEvent loss;
  loss.now = Milliseconds(10);
  cc.OnLoss(loss);

  MtpReport report;
  report.mtp = hp.mtp;
  report.avg_rtt = Milliseconds(60);
  report.srtt = Milliseconds(60);
  report.min_rtt = Milliseconds(30);
  report.cwnd_bytes = cc.cwnd_bytes();
  report.acked_packets = 10;

  uint64_t pre_drain = 0;
  bool saw_shrink = false;
  for (int i = 1; i <= 200; ++i) {
    report.now = hp.mtp * i;
    const uint64_t before = cc.cwnd_bytes();
    cc.OnMtpTick(report);
    if (cc.draining()) {
      if (pre_drain == 0) {
        pre_drain = before;
      }
      // Exposed window shrinks to ~85% while draining.
      EXPECT_LT(cc.cwnd_bytes(), pre_drain);
      saw_shrink = true;
    } else if (saw_shrink && pre_drain > 0) {
      // After the drain, the agent window is exposed again (>= 85% level).
      EXPECT_GE(cc.cwnd_bytes() + 1, pre_drain * 17 / 20);
      pre_drain = 0;
    }
  }
  EXPECT_TRUE(saw_shrink);
}

TEST(AstraeaControllerTest, FailedDrainsEscalateCompetitiveAppetite) {
  AstraeaHyperparameters hp;
  AstraeaController cc(Distilled(), hp);
  cc.OnFlowStart(0, 1500);
  LossEvent loss;
  loss.now = Milliseconds(10);
  cc.OnLoss(loss);

  MtpReport report;
  report.mtp = hp.mtp;
  report.avg_rtt = Milliseconds(90);  // pinned queue: drains never succeed
  report.srtt = Milliseconds(90);
  report.min_rtt = Milliseconds(30);
  report.cwnd_bytes = cc.cwnd_bytes();
  report.acked_packets = 10;
  for (int i = 1; i <= 400; ++i) {  // ~12s: several failed drains
    report.now = hp.mtp * i;
    cc.OnMtpTick(report);
  }
  EXPECT_GT(cc.backlog_target_scale(), 1.0);
  EXPECT_LE(cc.backlog_target_scale(), 8.0);  // bounded: never monopolizes

  // Once drains start succeeding (near-floor RTT observed mid-drain), the
  // appetite relaxes back to 1 over a few epochs.
  for (int i = 401; i <= 1200 && cc.backlog_target_scale() > 1.0; ++i) {
    report.now = hp.mtp * i;
    report.avg_rtt = Milliseconds(31);
    report.srtt = Milliseconds(31);
    cc.OnMtpTick(report);
    if (cc.draining()) {
      AckEvent ev;
      ev.now = report.now;
      ev.rtt = Milliseconds(30);
      ev.srtt = Milliseconds(30);
      ev.min_rtt = Milliseconds(30);
      ev.acked_bytes = 1500;
      cc.OnAck(ev);
    }
  }
  EXPECT_DOUBLE_EQ(cc.backlog_target_scale(), 1.0);
}

TEST(AstraeaControllerTest, EndToEndSingleFlowFillsLink) {
  Network net(1);
  LinkConfig link;
  link.rate = Mbps(100);
  link.propagation_delay = Milliseconds(15);
  link.buffer_bytes = 375'000;
  net.AddLink(link);
  FlowSpec spec;
  spec.scheme = "astraea";
  spec.make_cc = [] { return std::make_unique<AstraeaController>(Distilled()); };
  net.AddFlow(spec);
  net.Run(Seconds(20.0));
  const double thr = net.flow_stats(0).throughput_mbps.MeanOver(Seconds(5.0), Seconds(20.0));
  EXPECT_GT(thr, 92.0);
  const double rtt = net.flow_stats(0).rtt_ms.MeanOver(Seconds(5.0), Seconds(20.0));
  EXPECT_LT(rtt, 40.0);  // small standing queue (K packets)
}

}  // namespace
}  // namespace astraea
