#include <gtest/gtest.h>

#include "src/cc/bbr.h"
#include "src/cc/copa.h"
#include "src/cc/cubic.h"
#include "src/cc/newreno.h"
#include "src/cc/vegas.h"
#include "src/sim/network.h"

namespace astraea {
namespace {

AckEvent MakeAck(TimeNs now, TimeNs rtt, TimeNs min_rtt, uint64_t bytes = 1500,
                 double delivery_bps = 0.0) {
  AckEvent ev;
  ev.now = now;
  ev.rtt = rtt;
  ev.srtt = rtt;
  ev.min_rtt = min_rtt;
  ev.acked_bytes = bytes;
  ev.delivery_rate_bps = delivery_bps;
  return ev;
}

// ---------- NewReno unit behaviour ----------

TEST(NewRenoTest, SlowStartDoublesPerWindow) {
  NewReno cc;
  cc.OnFlowStart(0, 1500);
  const uint64_t w0 = cc.cwnd_bytes();
  // ACK one full window: slow start adds acked bytes -> doubles.
  for (uint64_t acked = 0; acked < w0; acked += 1500) {
    cc.OnAck(MakeAck(Milliseconds(10), Milliseconds(30), Milliseconds(30)));
  }
  EXPECT_EQ(cc.cwnd_bytes(), 2 * w0);
}

TEST(NewRenoTest, LossHalvesWindowOncePerEpisode) {
  NewReno cc;
  cc.OnFlowStart(0, 1500);
  cc.OnAck(MakeAck(Milliseconds(1), Milliseconds(30), Milliseconds(30)));
  const uint64_t before = cc.cwnd_bytes();
  LossEvent loss;
  loss.now = Milliseconds(10);
  loss.lost_bytes = 1500;
  cc.OnLoss(loss);
  EXPECT_EQ(cc.cwnd_bytes(), before / 2);
  // Second loss in the same RTT is part of the same episode: no extra halving.
  loss.now = Milliseconds(12);
  cc.OnLoss(loss);
  EXPECT_EQ(cc.cwnd_bytes(), before / 2);
}

TEST(NewRenoTest, TimeoutCollapsesWindow) {
  NewReno cc;
  cc.OnFlowStart(0, 1500);
  LossEvent loss;
  loss.now = Milliseconds(10);
  loss.is_timeout = true;
  cc.OnLoss(loss);
  EXPECT_EQ(cc.cwnd_bytes(), 2u * 1500u);
}

TEST(NewRenoTest, CongestionAvoidanceAddsOneMssPerRtt) {
  NewReno cc;
  cc.OnFlowStart(0, 1500);
  // Force out of slow start.
  LossEvent loss;
  loss.now = Milliseconds(1);
  cc.OnLoss(loss);
  const uint64_t w = cc.cwnd_bytes();
  // ACK a full window at 100ms (past recovery).
  for (uint64_t acked = 0; acked < w; acked += 1500) {
    cc.OnAck(MakeAck(Milliseconds(100), Milliseconds(30), Milliseconds(30)));
  }
  EXPECT_NEAR(static_cast<double>(cc.cwnd_bytes()), static_cast<double>(w + 1500), 1500.0);
}

// ---------- CUBIC unit behaviour ----------

TEST(CubicTest, LossMultiplicativeDecreaseByBeta) {
  Cubic cc;
  cc.OnFlowStart(0, 1500);
  cc.OnAck(MakeAck(Milliseconds(1), Milliseconds(30), Milliseconds(30)));
  const uint64_t before = cc.cwnd_bytes();
  LossEvent loss;
  loss.now = Milliseconds(50);
  cc.OnLoss(loss);
  EXPECT_NEAR(static_cast<double>(cc.cwnd_bytes()), 0.7 * static_cast<double>(before), 1500.0);
}

TEST(CubicTest, RegrowsTowardWmax) {
  Cubic cc;
  cc.OnFlowStart(0, 1500);
  // Get to 100 packets, then lose.
  while (cc.cwnd_bytes() < 100ULL * 1500ULL) {
    cc.OnAck(MakeAck(Milliseconds(1), Milliseconds(30), Milliseconds(30)));
  }
  LossEvent loss;
  loss.now = Milliseconds(100);
  cc.OnLoss(loss);
  const uint64_t after_loss = cc.cwnd_bytes();
  // Feed ACKs over simulated seconds; CUBIC should climb back toward w_max.
  for (int ms = 200; ms < 10'000; ms += 2) {
    cc.OnAck(MakeAck(Milliseconds(ms), Milliseconds(30), Milliseconds(30)));
  }
  EXPECT_GT(cc.cwnd_bytes(), after_loss);
  EXPECT_GE(cc.cwnd_bytes(), static_cast<uint64_t>(cc.w_max_packets() * 1500 * 0.95));
}

// ---------- Vegas unit behaviour ----------

TEST(VegasTest, QueueEstimateMatchesLittlesLaw) {
  Vegas cc;
  cc.OnFlowStart(0, 1500);
  // cwnd=10 pkts, base 30ms, rtt 36ms: expected-actual = 10/0.03*(1-30/36)
  // * 0.03 = 10*(1-30/36) = 1.667 packets.
  const double diff = cc.QueueEstimate(Milliseconds(36), Milliseconds(30));
  EXPECT_NEAR(diff, 10.0 * (1.0 - 30.0 / 36.0), 0.05);
}

TEST(VegasTest, HoldsQueueBetweenAlphaAndBeta) {
  // End-to-end: a single Vegas flow should keep 2-4 packets in the queue.
  Network net(1);
  LinkConfig link;
  link.rate = Mbps(60);
  link.propagation_delay = Milliseconds(20);
  link.buffer_bytes = 600'000;
  net.AddLink(link);
  FlowSpec spec;
  spec.scheme = "vegas";
  spec.make_cc = [] { return std::make_unique<Vegas>(); };
  net.AddFlow(spec);
  net.EnableLinkSampling(Milliseconds(100));
  net.Run(Seconds(30.0));
  const double queue_pkts =
      net.link_trace(0).queue_packets.MeanOver(Seconds(20.0), Seconds(30.0));
  EXPECT_GE(queue_pkts, 0.5);
  EXPECT_LE(queue_pkts, 8.0);
  const double thr = net.flow_stats(0).throughput_mbps.MeanOver(Seconds(20.0), Seconds(30.0));
  EXPECT_GT(thr, 55.0);  // full-ish utilization with a tiny queue
}

// ---------- BBR behaviour ----------

TEST(BbrTest, StartupExitsToProbeBw) {
  Network net(1);
  LinkConfig link;
  link.rate = Mbps(100);
  link.propagation_delay = Milliseconds(15);
  link.buffer_bytes = 750'000;
  net.AddLink(link);
  Bbr* bbr = nullptr;
  FlowSpec spec;
  spec.scheme = "bbr";
  spec.make_cc = [&bbr] {
    auto cc = std::make_unique<Bbr>();
    bbr = cc.get();
    return cc;
  };
  net.AddFlow(spec);
  net.Run(Seconds(5.0));
  ASSERT_NE(bbr, nullptr);
  EXPECT_TRUE(bbr->mode() == Bbr::Mode::kProbeBw || bbr->mode() == Bbr::Mode::kProbeRtt);
  EXPECT_NEAR(bbr->bw_estimate_bps() / Mbps(100), 1.0, 0.15);
}

TEST(BbrTest, SteadyStateUtilizationAndBoundedQueue) {
  Network net(2);
  LinkConfig link;
  link.rate = Mbps(100);
  link.propagation_delay = Milliseconds(15);
  link.buffer_bytes = 4 * 375'000;
  net.AddLink(link);
  FlowSpec spec;
  spec.scheme = "bbr";
  spec.make_cc = [] { return std::make_unique<Bbr>(); };
  net.AddFlow(spec);
  net.Run(Seconds(20.0));
  const double thr = net.flow_stats(0).throughput_mbps.MeanOver(Seconds(5.0), Seconds(20.0));
  EXPECT_GT(thr, 85.0);
  // BBR should not sit on a full buffer: mean RTT well below the 4-BDP fill.
  const double rtt = net.flow_stats(0).rtt_ms.MeanOver(Seconds(5.0), Seconds(20.0));
  EXPECT_LT(rtt, 70.0);
}

// ---------- Copa behaviour ----------

TEST(CopaTest, LowStandingQueueAtEquilibrium) {
  Network net(3);
  LinkConfig link;
  link.rate = Mbps(100);
  link.propagation_delay = Milliseconds(15);
  link.buffer_bytes = 750'000;
  net.AddLink(link);
  FlowSpec spec;
  spec.scheme = "copa";
  spec.make_cc = [] { return std::make_unique<Copa>(); };
  net.AddFlow(spec);
  net.Run(Seconds(20.0));
  const double thr = net.flow_stats(0).throughput_mbps.MeanOver(Seconds(10.0), Seconds(20.0));
  const double rtt = net.flow_stats(0).rtt_ms.MeanOver(Seconds(10.0), Seconds(20.0));
  EXPECT_GT(thr, 85.0);
  EXPECT_LT(rtt, 45.0);  // delay-based: small standing queue
}

TEST(CopaTest, TwoFlowsConvergeToFairShare) {
  Network net(4);
  LinkConfig link;
  link.rate = Mbps(100);
  link.propagation_delay = Milliseconds(15);
  link.buffer_bytes = 375'000;
  net.AddLink(link);
  FlowSpec spec;
  spec.scheme = "copa";
  spec.make_cc = [] { return std::make_unique<Copa>(); };
  net.AddFlow(spec);
  spec.start = Seconds(5.0);
  net.AddFlow(spec);
  net.Run(Seconds(30.0));
  const double thr0 = net.flow_stats(0).throughput_mbps.MeanOver(Seconds(20.0), Seconds(30.0));
  const double thr1 = net.flow_stats(1).throughput_mbps.MeanOver(Seconds(20.0), Seconds(30.0));
  const double jain = JainIndex(std::vector<double>{thr0, thr1});
  EXPECT_GT(jain, 0.9);
}

// Property sweep: every classic scheme must achieve reasonable utilization on
// a clean mid-range path without catastrophic loss.
class ClassicUtilization : public ::testing::TestWithParam<const char*> {};

TEST_P(ClassicUtilization, FillsCleanLink) {
  Network net(5);
  LinkConfig link;
  link.rate = Mbps(80);
  link.propagation_delay = Milliseconds(20);
  link.buffer_bytes = BdpBytes(Mbps(80), Milliseconds(40));
  net.AddLink(link);
  const std::string name = GetParam();
  FlowSpec spec;
  spec.scheme = name;
  spec.make_cc = [name]() -> std::unique_ptr<CongestionController> {
    if (name == "newreno") {
      return std::make_unique<NewReno>();
    }
    if (name == "cubic") {
      return std::make_unique<Cubic>();
    }
    if (name == "vegas") {
      return std::make_unique<Vegas>();
    }
    if (name == "bbr") {
      return std::make_unique<Bbr>();
    }
    return std::make_unique<Copa>();
  };
  net.AddFlow(spec);
  net.Run(Seconds(30.0));
  const double thr = net.flow_stats(0).throughput_mbps.MeanOver(Seconds(10.0), Seconds(30.0));
  EXPECT_GT(thr / 80.0, 0.75) << name;
  const double loss = static_cast<double>(net.flow_stats(0).bytes_lost) /
                      std::max<uint64_t>(net.flow_stats(0).bytes_sent, 1);
  EXPECT_LT(loss, 0.05) << name;
}

INSTANTIATE_TEST_SUITE_P(Schemes, ClassicUtilization,
                         ::testing::Values("newreno", "cubic", "vegas", "bbr", "copa"));

}  // namespace
}  // namespace astraea
