#include <gtest/gtest.h>

#include "src/cc/aurora.h"
#include "src/cc/cubic.h"
#include "src/cc/orca.h"
#include "src/cc/remy.h"
#include "src/cc/vivace.h"
#include "src/sim/network.h"

namespace astraea {
namespace {

std::unique_ptr<Network> MakeDumbbell(uint64_t seed, RateBps rate, TimeNs rtt,
                                       double buffer_bdp) {
  auto net = std::make_unique<Network>(seed);
  LinkConfig link;
  link.rate = rate;
  link.propagation_delay = rtt / 2;
  link.buffer_bytes = static_cast<uint64_t>(buffer_bdp * BdpBytes(rate, rtt));
  net->AddLink(link);
  return net;
}

// ---------- Vivace ----------

TEST(VivaceTest, ReachesHighUtilizationEventually) {
  auto net = MakeDumbbell(1, Mbps(100), Milliseconds(30), 1.0);
  FlowSpec spec;
  spec.scheme = "vivace";
  spec.make_cc = [] { return std::make_unique<Vivace>(); };
  net->AddFlow(spec);
  net->Run(Seconds(40.0));
  const double thr = net->flow_stats(0).throughput_mbps.MeanOver(Seconds(25.0), Seconds(40.0));
  EXPECT_GT(thr, 80.0);
}

TEST(VivaceTest, KeepsLatencyNearFloor) {
  auto net = MakeDumbbell(2, Mbps(100), Milliseconds(30), 2.0);
  FlowSpec spec;
  spec.scheme = "vivace";
  spec.make_cc = [] { return std::make_unique<Vivace>(); };
  net->AddFlow(spec);
  net->Run(Seconds(40.0));
  const double rtt = net->flow_stats(0).rtt_ms.MeanOver(Seconds(20.0), Seconds(40.0));
  EXPECT_LT(rtt, 40.0);  // latency-aware utility avoids bufferbloat
}

TEST(VivaceTest, UtilityGradientStepsAreBounded) {
  // Unit-level: the dynamic boundary caps per-decision rate changes.
  VivaceConfig config;
  config.omega_base = 0.05;
  config.omega_step = 0.05;
  Vivace cc(config);
  cc.OnFlowStart(0, 1500);
  const double r0 = cc.rate_bps();
  MtpReport report;
  report.mtp = Milliseconds(30);
  report.srtt = Milliseconds(30);
  report.thr_bps = r0;
  report.avg_rtt = Milliseconds(30);
  report.min_rtt = Milliseconds(30);
  report.acked_packets = 100;
  // Drive many MTPs; between consecutive decisions the rate must never jump
  // by more than a factor of 2 (the starting phase's doubling).
  double prev = cc.rate_bps();
  for (int i = 0; i < 200; ++i) {
    report.now = Milliseconds(30) * (i + 1);
    report.thr_bps = cc.rate_bps();
    cc.OnMtpTick(report);
    const double now_rate = cc.rate_bps();
    EXPECT_LE(now_rate / prev, 2.001);
    EXPECT_GE(now_rate / prev, 0.45);
    prev = now_rate;
  }
}

TEST(VivaceTest, TunedThetaConvergesFasterButOscillatesInSmallRtt) {
  // The Fig. 2 phenomenon, unit-scale: enlarged theta0 raises rate variance
  // on a 12ms-RTT path relative to default theta0.
  auto run = [](double theta0, TimeNs rtt) {
    auto net = MakeDumbbell(3, Mbps(100), rtt, 1.0);
    VivaceConfig config;
    config.theta0 = theta0;
    FlowSpec spec;
    spec.scheme = "vivace";
    spec.make_cc = [config] { return std::make_unique<Vivace>(config); };
    net->AddFlow(spec);
    net->Run(Seconds(30.0));
    return net->flow_stats(0).throughput_mbps.StdDevOver(Seconds(15.0), Seconds(30.0));
  };
  const double stddev_default = run(0.8, Milliseconds(12));
  const double stddev_tuned = run(8.0, Milliseconds(12));
  EXPECT_GT(stddev_tuned, stddev_default);
}

// ---------- Aurora ----------

TEST(AuroraTest, FillsTheLinkAggressively) {
  auto net = MakeDumbbell(4, Mbps(80), Milliseconds(60), 4.0);
  FlowSpec spec;
  spec.scheme = "aurora";
  spec.make_cc = [] { return std::make_unique<Aurora>(); };
  net->AddFlow(spec);
  net->Run(Seconds(30.0));
  const double thr = net->flow_stats(0).throughput_mbps.MeanOver(Seconds(15.0), Seconds(30.0));
  EXPECT_GT(thr, 60.0);
  // Aurora inflates latency (buffer filling), unlike the delay-based schemes.
  const double rtt = net->flow_stats(0).rtt_ms.MeanOver(Seconds(15.0), Seconds(30.0));
  EXPECT_GT(rtt, 80.0);
}

TEST(AuroraTest, IncumbentStarvesNewcomer) {
  // The Fig. 1a result: a second Aurora flow gets (almost) nothing.
  auto net = MakeDumbbell(5, Mbps(80), Milliseconds(60), 8.0);
  FlowSpec spec;
  spec.scheme = "aurora";
  spec.make_cc = [] { return std::make_unique<Aurora>(); };
  net->AddFlow(spec);
  spec.start = Seconds(10.0);
  net->AddFlow(spec);
  net->Run(Seconds(40.0));
  const double thr0 = net->flow_stats(0).throughput_mbps.MeanOver(Seconds(25.0), Seconds(40.0));
  const double thr1 = net->flow_stats(1).throughput_mbps.MeanOver(Seconds(25.0), Seconds(40.0));
  EXPECT_GT(thr0, 8.0 * std::max(thr1, 0.1));  // wildly unfair
}

TEST(AuroraTest, StateVectorHasFixedLayout) {
  Aurora cc;
  cc.OnFlowStart(0, 1500);
  MtpReport report;
  report.now = Milliseconds(30);
  report.mtp = Milliseconds(30);
  report.thr_bps = Mbps(10);
  report.avg_rtt = Milliseconds(40);
  report.min_rtt = Milliseconds(30);
  report.srtt = Milliseconds(40);
  report.acked_packets = 10;
  cc.OnMtpTick(report);
  const auto state = cc.CurrentState();
  EXPECT_EQ(state.size(), static_cast<size_t>(kAuroraStateDim));
  // Newest latency ratio is 40/30.
  EXPECT_NEAR(state[state.size() - 2], 40.0f / 30.0f, 1e-3f);
}

// ---------- Orca ----------

TEST(OrcaTest, TracksCubicButDampsBufferFilling) {
  auto cubic_net = MakeDumbbell(6, Mbps(100), Milliseconds(30), 4.0);
  FlowSpec cubic_spec;
  cubic_spec.scheme = "cubic";
  cubic_spec.make_cc = [] { return std::make_unique<Cubic>(); };
  cubic_net->AddFlow(cubic_spec);
  cubic_net->Run(Seconds(30.0));

  auto orca_net = MakeDumbbell(6, Mbps(100), Milliseconds(30), 4.0);
  FlowSpec orca_spec;
  orca_spec.scheme = "orca";
  orca_spec.make_cc = [] { return std::make_unique<Orca>(); };
  orca_net->AddFlow(orca_spec);
  orca_net->Run(Seconds(30.0));

  const double cubic_rtt =
      cubic_net->flow_stats(0).rtt_ms.MeanOver(Seconds(10.0), Seconds(30.0));
  const double orca_rtt =
      orca_net->flow_stats(0).rtt_ms.MeanOver(Seconds(10.0), Seconds(30.0));
  const double orca_thr =
      orca_net->flow_stats(0).throughput_mbps.MeanOver(Seconds(10.0), Seconds(30.0));
  EXPECT_LT(orca_rtt, cubic_rtt);  // the agent damps CUBIC's buffer filling
  EXPECT_GT(orca_thr, 85.0);
}

TEST(OrcaTest, ModulationStaysWithinOneOctave) {
  Orca cc;
  cc.OnFlowStart(0, 1500);
  MtpReport report;
  report.now = Milliseconds(30);
  report.mtp = Milliseconds(30);
  report.avg_rtt = Milliseconds(90);
  report.min_rtt = Milliseconds(30);
  report.acked_packets = 5;
  cc.OnMtpTick(report);
  EXPECT_GE(cc.modulation(), 0.5);
  EXPECT_LE(cc.modulation(), 2.0);
}

// ---------- Remy ----------

TEST(RemyTest, PerformsInsideDesignRange) {
  auto net = MakeDumbbell(7, Mbps(100), Milliseconds(30), 1.0);
  FlowSpec spec;
  spec.scheme = "remy";
  spec.make_cc = [] { return std::make_unique<Remy>(); };
  net->AddFlow(spec);
  net->Run(Seconds(30.0));
  const double thr = net->flow_stats(0).throughput_mbps.MeanOver(Seconds(10.0), Seconds(30.0));
  EXPECT_GT(thr, 75.0);
}

TEST(RemyTest, RuleMatchingUsesRttRatio) {
  Remy cc;
  cc.OnFlowStart(0, 1500);
  const uint64_t w0 = cc.cwnd_bytes();
  // Deep bufferbloat rule shrinks the window once per RTT.
  AckEvent ev;
  ev.now = Milliseconds(200);  // past one sRTT since flow start
  ev.rtt = Milliseconds(120);
  ev.srtt = Milliseconds(120);
  ev.min_rtt = Milliseconds(30);
  ev.acked_bytes = 1500;
  cc.OnAck(ev);
  EXPECT_LT(cc.cwnd_bytes(), w0);
}

}  // namespace
}  // namespace astraea
