// Cross-scheme property sweeps: every congestion controller, across a grid of
// network conditions, must satisfy the basic contract — make progress on a
// clean link, never exceed physical capacity, keep loss bounded on adequate
// buffers, and recover after capacity changes.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "src/core/schemes.h"
#include "src/sim/invariants.h"
#include "src/sim/network.h"
#include "src/sim/queue_disc.h"

namespace astraea {
namespace {

struct GridPoint {
  std::string scheme;
  double bw_mbps;
  int rtt_ms;
};

class SchemeGridProperty : public ::testing::TestWithParam<GridPoint> {};

TEST_P(SchemeGridProperty, MakesProgressWithinPhysicalBounds) {
  const GridPoint& p = GetParam();
  Network net(13);
  LinkConfig link;
  link.rate = Mbps(p.bw_mbps);
  link.propagation_delay = Milliseconds(p.rtt_ms) / 2;
  link.buffer_bytes =
      std::max<uint64_t>(BdpBytes(link.rate, Milliseconds(p.rtt_ms)), 6000);
  net.AddLink(link);
  SchemeOptions options;
  FlowSpec spec;
  spec.scheme = p.scheme;
  spec.make_cc = MakeSchemeFactory(p.scheme, &options);
  net.AddFlow(spec);

  const TimeNs until = Seconds(20.0);
  net.Run(until);
  const FlowStats& stats = net.flow_stats(0);

  // Progress floor: most schemes achieve far more. Vegas' +1-MSS/RTT probing
  // and Remy's fixed design-range table are legitimately slow at 400 Mbps x
  // 80 ms (a 2700-packet BDP) — their floors reflect those known weaknesses.
  const bool slow_at_big_bdp =
      (p.scheme == "vegas" || p.scheme == "remy") && p.bw_mbps >= 400.0;
  const double floor = slow_at_big_bdp ? 0.05 : 0.25;
  const double thr = stats.throughput_mbps.MeanOver(until / 2, until);
  EXPECT_GT(thr / p.bw_mbps, floor) << p.scheme;
  // Physical bound.
  EXPECT_LE(static_cast<double>(stats.bytes_acked) * 8.0,
            net.link(0).provider().CapacityBits(0, until) * 1.01);
  // Sanity: loss stays below 20% even for the aggressive schemes.
  const double loss = static_cast<double>(stats.bytes_lost) /
                      std::max<uint64_t>(stats.bytes_sent, 1);
  EXPECT_LT(loss, 0.2) << p.scheme;
  // RTT never collapses below the propagation floor.
  const double min_rtt_ms = ToMillis(net.sender(0).min_rtt());
  EXPECT_GE(min_rtt_ms, p.rtt_ms - 1.0) << p.scheme;
}

std::vector<GridPoint> MakeGrid() {
  std::vector<GridPoint> grid;
  for (const std::string& scheme :
       {"newreno", "cubic", "vegas", "bbr", "copa", "vivace", "aurora", "orca", "remy",
        "astraea"}) {
    for (const auto& [bw, rtt] : std::vector<std::pair<double, int>>{
             {20.0, 10}, {100.0, 40}, {400.0, 80}}) {
      grid.push_back({scheme, bw, rtt});
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Grid, SchemeGridProperty, ::testing::ValuesIn(MakeGrid()),
                         [](const ::testing::TestParamInfo<GridPoint>& info) {
                           return info.param.scheme + "_" +
                                  std::to_string(static_cast<int>(info.param.bw_mbps)) + "M_" +
                                  std::to_string(info.param.rtt_ms) + "ms";
                         });

// Two homogeneous flows of every scheme: long-run Jain must clear a per-family
// floor (loss-based AIMD is rough but never starves a same-RTT peer).
class HomogeneousFairness : public ::testing::TestWithParam<const char*> {};

TEST_P(HomogeneousFairness, SameRttPeersShareWithoutStarvation) {
  const std::string scheme = GetParam();
  Network net(17);
  LinkConfig link;
  link.rate = Mbps(100);
  link.propagation_delay = Milliseconds(20);
  link.buffer_bytes = BdpBytes(Mbps(100), Milliseconds(40));
  net.AddLink(link);
  SchemeOptions options;
  for (int i = 0; i < 2; ++i) {
    FlowSpec spec;
    spec.scheme = scheme;
    spec.make_cc = MakeSchemeFactory(scheme, &options);
    net.AddFlow(spec);
  }
  net.Run(Seconds(60.0));
  const double thr0 = net.flow_stats(0).throughput_mbps.MeanOver(Seconds(30.0), Seconds(60.0));
  const double thr1 = net.flow_stats(1).throughput_mbps.MeanOver(Seconds(30.0), Seconds(60.0));
  const double jain = JainIndex(std::vector<double>{thr0, thr1});
  // Vivace's online gradient steps make its (provable) fairness asymptotic —
  // 60s is not enough to clear the general floor (the §2/Fig. 1b phenomenon).
  const double floor = scheme == "vivace" ? 0.4 : 0.7;
  EXPECT_GT(jain, floor) << scheme << ": " << thr0 << " vs " << thr1;
}

// Aurora is deliberately excluded: its fairness failure is the paper's point.
INSTANTIATE_TEST_SUITE_P(Schemes, HomogeneousFairness,
                         ::testing::Values("newreno", "cubic", "vegas", "bbr", "copa",
                                           "vivace", "orca", "remy", "astraea"));

// Randomized invariant sweep: every controller across 20 random
// parameterizations of 3 topology families (DropTail dumbbell with two flows,
// RED + wire loss, two-hop DropTail path), each run with the invariant checker
// in hard-fail mode. The checker throws on the first conservation / causality /
// FIFO / queue-bound / cwnd-sanity slip, so passing means every step of every
// run kept the simulator's books balanced. Parameters derive from
// Rng::DeriveSeed so the sweep is reproducible and each (rep, topology) cell is
// decorrelated; the SCOPED_TRACE names the cell on failure.
class SchemeInvariantSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(SchemeInvariantSweep, RandomizedTopologiesRunCleanUnderFatalChecker) {
  const std::string scheme = GetParam();
  invariants::ScopedMode fatal(invariants::Mode::kFatal);
  const uint64_t violations_before = invariants::ViolationCount();

  constexpr int kReps = 20;
  constexpr uint64_t kSweepStream = 0xA57AEA5EEDULL;
  for (int rep = 0; rep < kReps; ++rep) {
    for (int topology = 0; topology < 3; ++topology) {
      const uint64_t seed = Rng::DeriveSeed(kSweepStream, rep * 3 + topology);
      SCOPED_TRACE(scheme + " rep=" + std::to_string(rep) + " topology=" +
                   std::to_string(topology) + " seed=" + std::to_string(seed));
      Rng rng(seed);
      const double bw_mbps = rng.Uniform(3.0, 50.0);
      const TimeNs rtt = Seconds(rng.Uniform(10.0, 100.0) / 1e3);
      const double buffer_bdps = rng.Uniform(0.5, 2.0);

      Network net(seed);
      LinkConfig link;
      link.rate = Mbps(bw_mbps);
      link.propagation_delay = rtt / 2;
      link.buffer_bytes = std::max<uint64_t>(
          static_cast<uint64_t>(buffer_bdps * BdpBytes(link.rate, rtt)), 6000);
      int flows = 1;
      switch (topology) {
        case 0:  // DropTail dumbbell, two competing flows.
          net.AddLink(link);
          flows = 2;
          break;
        case 1: {  // RED bottleneck with iid wire loss.
          link.random_loss = rng.Uniform(0.0, 0.02);
          RedConfig red;
          red.capacity_bytes = link.buffer_bytes;
          link.queue_factory = [red](Rng q) {
            return std::make_unique<RedQueue>(red, q);
          };
          net.AddLink(link);
          break;
        }
        case 2: {  // Two-hop path; the first hop is the bottleneck.
          net.AddLink(link);
          LinkConfig fast = link;
          fast.queue_factory = nullptr;
          fast.rate = Mbps(bw_mbps * rng.Uniform(1.5, 3.0));
          net.AddLink(fast);
          break;
        }
      }
      SchemeOptions options;
      for (int f = 0; f < flows; ++f) {
        FlowSpec spec;
        spec.scheme = scheme;
        spec.make_cc = MakeSchemeFactory(scheme, &options);
        if (topology == 2) {
          spec.link_path = {0, 1};
        }
        net.AddFlow(spec);
      }
      net.Run(Seconds(2.0));
      // The run must have been a real workload, not a stalled no-op.
      EXPECT_GT(net.flow_stats(0).bytes_acked, 0u);
    }
  }
  EXPECT_EQ(invariants::ViolationCount(), violations_before);
}

INSTANTIATE_TEST_SUITE_P(Schemes, SchemeInvariantSweep,
                         ::testing::Values("newreno", "cubic", "vegas", "bbr", "copa",
                                           "vivace", "aurora", "orca", "remy",
                                           "astraea"));

}  // namespace
}  // namespace astraea
