// Tests for the durable checkpoint container (src/util/checkpoint.h), the
// hardened serialization layer, and the failpoint registry.

#include "src/util/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/inference_service.h"
#include "src/nn/mlp.h"
#include "src/util/failpoint.h"
#include "src/util/rng.h"
#include "src/util/serialization.h"

namespace astraea {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// Writes a small structured checkpoint whose payload is parameterized by
// `marker`, and returns nothing; readable back via ReadMarkerCheckpoint.
void WriteMarkerCheckpoint(const std::string& path, uint32_t marker) {
  CheckpointWriter ckpt(path);
  BinaryWriter* w = ckpt.payload();
  w->WriteU32(marker);
  w->WriteString("astraea checkpoint test payload");
  std::vector<float> weights(37);
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = static_cast<float>(i) * 0.25f + static_cast<float>(marker);
  }
  w->WriteFloatVec(weights);
  w->WriteU64(0xDEADBEEFCAFEF00DULL);
  ckpt.Commit();
}

uint32_t ReadMarkerCheckpoint(const std::string& path) {
  CheckpointReader ckpt(path);
  BinaryReader* r = ckpt.payload();
  const uint32_t marker = r->ReadU32();
  EXPECT_EQ(r->ReadString(), "astraea checkpoint test payload");
  const std::vector<float> weights = r->ReadFloatVec();
  EXPECT_EQ(weights.size(), 37u);
  EXPECT_EQ(r->ReadU64(), 0xDEADBEEFCAFEF00DULL);
  return marker;
}

TEST(Crc32Test, KnownVectors) {
  const std::string check = "123456789";
  EXPECT_EQ(Crc32(check.data(), check.size()), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
}

TEST(CheckpointTest, RoundTrip) {
  const std::string path = "/tmp/astraea_ckpt_roundtrip.ckpt";
  WriteMarkerCheckpoint(path, 7);
  EXPECT_EQ(ReadMarkerCheckpoint(path), 7u);
}

TEST(CheckpointTest, UncommittedWriterLeavesOldCheckpointIntact) {
  const std::string path = "/tmp/astraea_ckpt_abandon.ckpt";
  WriteMarkerCheckpoint(path, 1);
  {
    CheckpointWriter abandoned(path);
    abandoned.payload()->WriteU32(999);
    // no Commit()
  }
  EXPECT_EQ(ReadMarkerCheckpoint(path), 1u);
  // A later successful commit overwrites both the file and any stale tmp.
  WriteMarkerCheckpoint(path, 2);
  EXPECT_EQ(ReadMarkerCheckpoint(path), 2u);
}

TEST(CheckpointTest, DoubleCommitThrows) {
  const std::string path = "/tmp/astraea_ckpt_double.ckpt";
  CheckpointWriter ckpt(path);
  ckpt.payload()->WriteU32(1);
  ckpt.Commit();
  EXPECT_THROW(ckpt.Commit(), SerializationError);
}

TEST(CheckpointTest, CommitIntoMissingDirectoryThrows) {
  CheckpointWriter ckpt("/tmp/astraea_no_such_dir_xyz/file.ckpt");
  ckpt.payload()->WriteU32(1);
  EXPECT_THROW(ckpt.Commit(), SerializationError);
}

TEST(CheckpointTest, MissingFileThrows) {
  EXPECT_THROW(CheckpointReader r("/tmp/astraea_ckpt_does_not_exist.ckpt"),
               SerializationError);
}

// Satellite: fuzz-style corruption coverage. Every byte-truncation and every
// strided bit-flip of a valid checkpoint must throw SerializationError —
// never crash, never load silently.
TEST(CheckpointCorruptionTest, EveryTruncationThrows) {
  const std::string path = "/tmp/astraea_ckpt_trunc.ckpt";
  const std::string mutant = "/tmp/astraea_ckpt_trunc_mutant.ckpt";
  WriteMarkerCheckpoint(path, 3);
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), kCheckpointFooterSize);
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteFileBytes(mutant, bytes.substr(0, len));
    EXPECT_THROW(CheckpointReader r(mutant), SerializationError) << "length " << len;
  }
}

TEST(CheckpointCorruptionTest, EveryBitFlipThrows) {
  const std::string path = "/tmp/astraea_ckpt_flip.ckpt";
  const std::string mutant = "/tmp/astraea_ckpt_flip_mutant.ckpt";
  WriteMarkerCheckpoint(path, 4);
  const std::string bytes = ReadFileBytes(path);
  for (size_t off = 0; off < bytes.size(); ++off) {
    for (int bit : {0, 3, 7}) {
      std::string corrupted = bytes;
      corrupted[off] = static_cast<char>(corrupted[off] ^ (1 << bit));
      WriteFileBytes(mutant, corrupted);
      EXPECT_THROW(CheckpointReader r(mutant), SerializationError)
          << "offset " << off << " bit " << bit;
    }
  }
}

// The legacy actor-only format (no CRC) still has to fail loudly on
// truncation: the reader's bounds checks must throw, never return garbage
// vectors or attempt absurd allocations.
TEST(CheckpointCorruptionTest, LegacyActorTruncationThrows) {
  const std::string path = "/tmp/astraea_legacy_actor.ckpt";
  const std::string mutant = "/tmp/astraea_legacy_actor_mutant.ckpt";
  Rng rng(3);
  Mlp net({4, 8, 8, 1}, OutputActivation::kTanh, &rng);
  {
    BinaryWriter w(path);
    net.Save(&w);
    w.Flush();
  }
  const std::string bytes = ReadFileBytes(path);
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteFileBytes(mutant, bytes.substr(0, len));
    BinaryReader r(mutant);
    EXPECT_THROW(Mlp::Load(&r), SerializationError) << "length " << len;
  }
}

TEST(SerializationBoundsTest, HugeLengthPrefixRejectedBeforeAllocation) {
  const std::string path = "/tmp/astraea_huge_len.bin";
  {
    BinaryWriter w(path);
    // Claims ~2^61 floats but the file ends right after the prefix.
    w.WriteU64(0x2000'0000'0000'0000ULL);
    w.Flush();
  }
  BinaryReader r(path);
  EXPECT_THROW(r.ReadFloatVec(), SerializationError);

  BinaryReader r2(path);
  EXPECT_THROW(r2.ReadString(), SerializationError);
}

TEST(SerializationBoundsTest, LengthJustPastEofRejected) {
  const std::string path = "/tmp/astraea_off_by_one.bin";
  {
    BinaryWriter w(path);
    w.WriteU64(3);  // claims 3 floats
    w.WriteF32(1.0f);
    w.WriteF32(2.0f);  // only 2 present
    w.Flush();
  }
  BinaryReader r(path);
  EXPECT_THROW(r.ReadFloatVec(), SerializationError);
}

TEST(SerializationBoundsTest, RemainingTracksCursor) {
  const std::string path = "/tmp/astraea_remaining.bin";
  {
    BinaryWriter w(path);
    w.WriteU32(1);
    w.WriteU64(2);
    w.Flush();
  }
  BinaryReader r(path);
  EXPECT_EQ(r.remaining(), 12u);
  r.ReadU32();
  EXPECT_EQ(r.remaining(), 8u);
  r.ReadU64();
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SerializationTest, WriterToFullDeviceThrows) {
  // /dev/full returns ENOSPC on write — the canonical disk-full simulation.
  // Skip quietly on systems without it.
  std::ofstream probe("/dev/full");
  if (!probe.good()) {
    GTEST_SKIP() << "/dev/full not available";
  }
  BinaryWriter w("/dev/full");
  EXPECT_THROW(
      {
        for (int i = 0; i < 100000; ++i) {
          w.WriteU64(static_cast<uint64_t>(i));
        }
        w.Flush();
      },
      SerializationError);
}

TEST(FailpointTest, ThrowActionTriggersOnNthHitThenDisarms) {
  failpoint::Configure("test.site=2:throw");
  EXPECT_TRUE(failpoint::IsArmed("test.site"));
  ASTRAEA_FAILPOINT("test.site");  // hit 1 of 2: passes
  EXPECT_THROW(ASTRAEA_FAILPOINT("test.site"), failpoint::Injected);
  // Exhausted: further hits pass.
  ASTRAEA_FAILPOINT("test.site");
  EXPECT_FALSE(failpoint::IsArmed("test.site"));
  failpoint::Clear();
}

TEST(FailpointTest, UnrelatedSitesDoNotTrigger) {
  failpoint::Configure("test.other=1:throw");
  ASTRAEA_FAILPOINT("test.site");  // different site: no-op
  EXPECT_TRUE(failpoint::IsArmed("test.other"));
  failpoint::Clear();
  ASTRAEA_FAILPOINT("test.other");  // cleared: no-op
}

TEST(FailpointTest, MalformedSpecThrows) {
  EXPECT_THROW(failpoint::Configure("nocount"), std::invalid_argument);
  EXPECT_THROW(failpoint::Configure("site=banana"), std::invalid_argument);
  EXPECT_THROW(failpoint::Configure("site=0"), std::invalid_argument);
  EXPECT_THROW(failpoint::Configure("site=1:detonate"), std::invalid_argument);
  failpoint::Clear();
}

TEST(FailpointTest, InjectedFlushErrorLosesNoRequests) {
  Rng rng(9);
  Mlp actor({3, 8, 1}, OutputActivation::kTanh, &rng);
  InferenceService service(std::move(actor));

  int served = 0;
  service.Submit({0.1f, 0.2f, 0.3f}, [&](double) { ++served; });
  service.Submit({0.4f, 0.5f, 0.6f}, [&](double) { ++served; });

  failpoint::Configure("inference.flush=1:throw");
  EXPECT_THROW(service.Flush(), failpoint::Injected);
  // The failure hit before the queues were swapped: nothing was dropped.
  EXPECT_EQ(service.pending(), 2u);
  EXPECT_EQ(served, 0);

  failpoint::Clear();
  EXPECT_EQ(service.Flush(), 2u);
  EXPECT_EQ(served, 2);
}

}  // namespace
}  // namespace astraea
