// Focused corner cases across controllers and the sender that the broader
// suites do not pin down: paced-send resume, BBR's PROBE_RTT entry, Copa's
// velocity reset, Orca's once-per-RTT write-back, Vivace's starting phase.

#include <gtest/gtest.h>

#include "src/cc/bbr.h"
#include "src/cc/copa.h"
#include "src/cc/orca.h"
#include "src/cc/vivace.h"
#include "src/core/astraea_controller.h"
#include "src/sim/network.h"

namespace astraea {
namespace {

TEST(BbrCornersTest, EntersProbeRttAfterTenSecondsWithoutNewMin) {
  Network net(1);
  LinkConfig link;
  link.rate = Mbps(50);
  link.propagation_delay = Milliseconds(15);
  link.buffer_bytes = 4 * BdpBytes(Mbps(50), Milliseconds(30));
  net.AddLink(link);
  Bbr* bbr = nullptr;
  FlowSpec spec;
  spec.scheme = "bbr";
  spec.make_cc = [&bbr] {
    auto cc = std::make_unique<Bbr>();
    bbr = cc.get();
    return cc;
  };
  net.AddFlow(spec);

  // Watch for a PROBE_RTT visit within 25 s (BBR's 10 s min-RTT expiry, plus
  // startup time; BBR's own cycling keeps the queue nonempty so the floor
  // sample must come from PROBE_RTT itself).
  bool seen_probe_rtt = false;
  for (TimeNs t = Seconds(1.0); t <= Seconds(25.0); t += Milliseconds(50)) {
    net.Run(t);
    if (bbr->mode() == Bbr::Mode::kProbeRtt) {
      seen_probe_rtt = true;
      break;
    }
  }
  EXPECT_TRUE(seen_probe_rtt);
}

TEST(CopaCornersTest, VelocityResetsOnDirectionFlip) {
  Copa copa;
  copa.OnFlowStart(0, 1500);
  AckEvent ev;
  ev.srtt = Milliseconds(30);
  ev.min_rtt = Milliseconds(30);
  ev.acked_bytes = 1500;
  // Drive upward long enough for velocity doubling to engage.
  for (int i = 0; i < 600; ++i) {
    ev.now = Milliseconds(30) + Microseconds(500) * i;
    ev.rtt = Milliseconds(30);  // empty queue: direction up
    copa.OnAck(ev);
  }
  EXPECT_GT(copa.velocity(), 1.0);
  // A large queue flips the direction: velocity resets to 1.
  ev.now += Milliseconds(30);
  ev.rtt = Milliseconds(90);
  copa.OnAck(ev);
  EXPECT_DOUBLE_EQ(copa.velocity(), 1.0);
}

TEST(OrcaCornersTest, WritebackAtMostOncePerRtt) {
  Orca orca;
  orca.OnFlowStart(0, 1500);
  MtpReport report;
  report.mtp = Milliseconds(30);
  report.srtt = Milliseconds(300);  // long RTT: several MTPs per RTT
  report.avg_rtt = Milliseconds(300);
  report.min_rtt = Milliseconds(300);
  report.acked_packets = 10;

  report.now = Milliseconds(30);
  orca.OnMtpTick(report);
  const uint64_t after_first = orca.cwnd_bytes();
  // Ticks within the same RTT must not compound the modulation.
  for (int i = 2; i <= 9; ++i) {
    report.now = Milliseconds(30) * i;
    orca.OnMtpTick(report);
  }
  EXPECT_EQ(orca.cwnd_bytes(), after_first);
  // Past one sRTT, the next application may move the window again.
  report.now = Milliseconds(30) + Milliseconds(310);
  orca.OnMtpTick(report);
  EXPECT_NE(orca.cwnd_bytes(), 0u);
}

TEST(VivaceCornersTest, StartingPhaseDoublesUntilUtilityDrops) {
  Vivace vivace;
  vivace.OnFlowStart(0, 1500);
  const double r0 = vivace.rate_bps();
  EXPECT_EQ(vivace.phase(), Vivace::Phase::kStarting);

  MtpReport report;
  report.mtp = Milliseconds(30);
  report.srtt = Milliseconds(30);
  report.avg_rtt = Milliseconds(30);
  report.min_rtt = Milliseconds(30);
  report.acked_packets = 50;
  // Deliver exactly what it sends: utility keeps rising, rate keeps doubling.
  for (int i = 1; i <= 40 && vivace.phase() == Vivace::Phase::kStarting; ++i) {
    report.now = Milliseconds(30) * i;
    report.thr_bps = vivace.rate_bps();
    vivace.OnMtpTick(report);
  }
  EXPECT_GT(vivace.rate_bps(), 4.0 * r0);
}

TEST(SenderCornersTest, PacedFlowResumesAfterCwndLimit) {
  // A paced controller that is briefly cwnd-limited must resume sending when
  // the window reopens (regression guard for the pace_pending_ machinery).
  class PacedSqueeze : public CongestionController {
   public:
    void OnMtpTick(const MtpReport& report) override {
      // Squeeze the window shut between t=1s and t=2s, then reopen.
      squeezed_ = report.now > Seconds(1.0) && report.now < Seconds(2.0);
    }
    uint64_t cwnd_bytes() const override { return squeezed_ ? 3000 : 300'000; }
    std::optional<double> pacing_bps() const override { return Mbps(30); }
    std::string name() const override { return "paced-squeeze"; }

   private:
    bool squeezed_ = false;
  };

  Network net(1);
  LinkConfig link;
  link.rate = Mbps(100);
  link.propagation_delay = Milliseconds(10);
  link.buffer_bytes = 250'000;
  net.AddLink(link);
  FlowSpec spec;
  spec.scheme = "paced-squeeze";
  spec.make_cc = [] { return std::make_unique<PacedSqueeze>(); };
  net.AddFlow(spec);
  net.Run(Seconds(4.0));

  const double before = net.flow_stats(0).throughput_mbps.MeanOver(0, Seconds(1.0));
  const double during = net.flow_stats(0).throughput_mbps.MeanOver(Seconds(1.2), Seconds(2.0));
  const double after = net.flow_stats(0).throughput_mbps.MeanOver(Seconds(2.5), Seconds(4.0));
  EXPECT_GT(before, 25.0);
  EXPECT_LT(during, 5.0);
  EXPECT_GT(after, 25.0);  // resumed
}

TEST(AstraeaCornersTest, RtoReentersSlowStart) {
  AstraeaController cc(std::make_shared<DistilledPolicy>());
  cc.OnFlowStart(0, 1500);
  AckEvent ev;
  ev.now = Milliseconds(30);
  ev.rtt = Milliseconds(40);
  ev.srtt = Milliseconds(40);
  ev.min_rtt = Milliseconds(30);
  ev.acked_bytes = 1500;
  cc.OnAck(ev);
  EXPECT_FALSE(cc.in_slow_start());

  LossEvent rto;
  rto.now = Seconds(1.0);
  rto.is_timeout = true;
  cc.OnLoss(rto);
  EXPECT_TRUE(cc.in_slow_start());
  EXPECT_EQ(cc.cwnd_bytes(), 2u * 1500u);
}

TEST(AstraeaCornersTest, PacingFollowsCwndOverSrtt) {
  AstraeaController cc(std::make_shared<DistilledPolicy>());
  cc.OnFlowStart(0, 1500);
  AckEvent ev;
  ev.now = Milliseconds(30);
  ev.rtt = Milliseconds(30);
  ev.srtt = Milliseconds(30);
  ev.min_rtt = Milliseconds(30);
  ev.acked_bytes = 1500;
  cc.OnAck(ev);
  const double expected = 1.2 * static_cast<double>(cc.cwnd_bytes()) * 8.0 / 0.030;
  EXPECT_NEAR(cc.pacing_bps().value(), expected, expected * 0.01);
}

}  // namespace
}  // namespace astraea
