// ECN marking property tests (src/sim/queue_disc.h EcnMarkingQueue +
// src/cc/dctcp.h): the decorator must be invisible when it never marks, must
// never break packet conservation when it does, and DCTCP must actually use
// the signal (marks observed, lower standing queue than a loss-based scheme
// on the same bottleneck).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/harness/metrics.h"
#include "bench/harness/scenario.h"
#include "bench/harness/scenario_universe.h"
#include "src/sim/invariants.h"
#include "src/sim/queue_disc.h"
#include "src/sim/trace.h"

namespace astraea {
namespace {

bool SameEvent(const TraceEvent& x, const TraceEvent& y) {
  return x.time == y.time && x.type == y.type && x.flow_id == y.flow_id &&
         x.link_id == y.link_id && x.seq == y.seq && x.a == y.a && x.b == y.b;
}

std::vector<TraceEvent> RunTraced(bool wrap_ecn, uint64_t mark_threshold,
                                  const std::string& scheme) {
  DumbbellConfig config;
  config.bandwidth = Mbps(20);
  config.base_rtt = Milliseconds(20);
  config.seed = 5;
  const uint64_t buffer = 50'000;
  if (wrap_ecn) {
    const EcnConfig ecn{mark_threshold};
    config.queue_factory = [buffer, ecn](Rng) -> std::unique_ptr<QueueDiscipline> {
      return std::make_unique<EcnMarkingQueue>(std::make_unique<DropTailQueue>(buffer), ecn);
    };
  } else {
    config.queue_factory = [buffer](Rng) -> std::unique_ptr<QueueDiscipline> {
      return std::make_unique<DropTailQueue>(buffer);
    };
  }
  DumbbellScenario scenario(std::move(config));
  scenario.AddFlow(scheme, 0);
  scenario.AddFlow(scheme, Milliseconds(100));
  Tracer tracer("", Tracer::Format::kNone, 1 << 20);
  scenario.network().SetTracer(&tracer);
  scenario.Run(Seconds(1.0));
  return tracer.BufferedEvents();
}

// With a threshold the queue can never reach, the decorator is a pure
// pass-through: the full event stream — timings, seqs, queue depths — is
// bit-identical to the bare DropTail run. This is the mechanism that keeps
// the 27 pre-ECN goldens valid without re-blessing.
TEST(EcnMarkingQueueTest, NeverMarkingDecoratorIsBitIdentical) {
  const auto bare = RunTraced(false, 0, "cubic");
  const auto wrapped = RunTraced(true, /*mark_threshold=*/1'000'000'000, "cubic");
  ASSERT_EQ(bare.size(), wrapped.size());
  for (size_t i = 0; i < bare.size(); ++i) {
    ASSERT_TRUE(SameEvent(bare[i], wrapped[i])) << "diverged at record " << i;
  }
}

// An ECN-blind scheme on a marking queue: no ECT packets, so no marks and no
// CE bytes reported, even with an aggressive threshold.
TEST(EcnMarkingQueueTest, EcnBlindSchemeSeesNoMarks) {
  DumbbellConfig config;
  config.bandwidth = Mbps(20);
  config.base_rtt = Milliseconds(20);
  config.seed = 5;
  const EcnConfig ecn{3'000};
  config.queue_factory = [ecn](Rng) -> std::unique_ptr<QueueDiscipline> {
    return std::make_unique<EcnMarkingQueue>(std::make_unique<DropTailQueue>(50'000), ecn);
  };
  DumbbellScenario scenario(std::move(config));
  scenario.AddFlow("cubic", 0);
  scenario.Run(Seconds(1.0));
  const auto* queue = dynamic_cast<const EcnMarkingQueue*>(&scenario.network().link(0).queue());
  ASSERT_NE(queue, nullptr);
  EXPECT_EQ(queue->ect_packets(), 0u);
  EXPECT_EQ(queue->marked_packets(), 0u);
  EXPECT_EQ(scenario.network().flow_stats(0).bytes_ce_marked, 0u);
}

// DCTCP on a congested marking bottleneck: marks happen, the sender echoes
// them into its stats, and the standing queue stays below what cubic builds
// on the identical link — the point of the ECN signal.
TEST(DctcpTest, MarksObservedAndDelayBeatsCubic) {
  invariants::ScopedMode fatal(invariants::Mode::kFatal);
  auto run = [](const std::string& scheme) {
    DumbbellConfig config;
    config.bandwidth = Mbps(50);
    config.base_rtt = Milliseconds(10);
    config.seed = 9;
    const EcnConfig ecn{30'000};
    config.queue_factory = [ecn](Rng) -> std::unique_ptr<QueueDiscipline> {
      return std::make_unique<EcnMarkingQueue>(std::make_unique<DropTailQueue>(200'000), ecn);
    };
    auto scenario = std::make_unique<DumbbellScenario>(std::move(config));
    scenario->AddFlow(scheme, 0);
    scenario->AddFlow(scheme, 0);
    scenario->Run(Seconds(2.0));
    return scenario;
  };
  auto dctcp = run("dctcp");
  auto cubic = run("cubic");

  const auto* queue = dynamic_cast<const EcnMarkingQueue*>(&dctcp->network().link(0).queue());
  ASSERT_NE(queue, nullptr);
  EXPECT_GT(queue->ect_packets(), 0u);
  EXPECT_GT(queue->marked_packets(), 0u);
  EXPECT_GT(dctcp->network().flow_stats(0).bytes_ce_marked +
                dctcp->network().flow_stats(1).bytes_ce_marked,
            0u);

  const double dctcp_p95 = P95RttMs(dctcp->network(), Milliseconds(500), Seconds(2.0));
  const double cubic_p95 = P95RttMs(cubic->network(), Milliseconds(500), Seconds(2.0));
  EXPECT_LT(dctcp_p95, cubic_p95);
  // And DCTCP still uses the link: at least half of what cubic delivers.
  const double dctcp_thr = FlowMeanThroughputs(dctcp->network(), Seconds(1.0), Seconds(2.0))[0] +
                           FlowMeanThroughputs(dctcp->network(), Seconds(1.0), Seconds(2.0))[1];
  EXPECT_GT(dctcp_thr, 20.0);
}

// Marking mutates only the CE bit — never drops, duplicates or reorders — so
// every conservation invariant must hold under fatal checking on a heavily
// marking incast. (kFatal would throw out of Run on the first violation.)
TEST(EcnInvariantsTest, MarkingPreservesConservation) {
  invariants::ScopedMode fatal(invariants::Mode::kFatal);
  const uint64_t before = invariants::ViolationCount();
  IncastConfig config;
  config.fan_in = 16;
  config.waves = 2;
  config.scheme = "dctcp";
  config.ecn = true;
  config.seed = 3;
  const IncastResult result = RunIncast(config);
  EXPECT_EQ(invariants::ViolationCount(), before);
  EXPECT_GT(result.ecn_marked, 0u);
  // The marker itself never drops: every loss is the inner DropTail's.
  EXPECT_GT(result.completed, 0u);
}

// The marker's own accounting (marked <= ect <= enqueued) is wired into deep
// audits; a full fatal-mode run over the ECN incast exercises it at every
// queue transition. Also check the counters are exposed coherently.
TEST(EcnInvariantsTest, MarkAccountingCoherent) {
  invariants::ScopedMode fatal(invariants::Mode::kFatal);
  IncastConfig config;
  config.fan_in = 8;
  config.waves = 1;
  config.scheme = "dctcp";
  config.ecn = true;
  config.seed = 4;
  auto scenario = BuildIncast(config);
  scenario->Run(IncastHorizon(config));
  const auto* queue = dynamic_cast<const EcnMarkingQueue*>(&scenario->network().link(0).queue());
  ASSERT_NE(queue, nullptr);
  EXPECT_LE(queue->marked_packets(), queue->ect_packets());
}

}  // namespace
}  // namespace astraea
